package zynqfusion

import (
	"fmt"

	"zynqfusion/internal/bt656"
	"zynqfusion/internal/camera"
)

// SystemConfig describes a full capture-to-display fusion system (Fig. 6/7
// of the paper): a synthetic scene observed by a webcam and a thermal
// camera whose stream travels the BT.656 decode path.
type SystemConfig struct {
	// W, H is the fusion frame geometry (default 88x72, the paper's full
	// frame size set by the longwave sensor).
	W, H int
	// Seed drives the deterministic synthetic scene.
	Seed int64
	// Fuser options.
	Options Options
}

// System wires cameras, capture path and fuser together.
type System struct {
	Scene   *camera.Scene
	Webcam  *camera.Webcam
	Thermal *camera.Thermal
	Fuser   *Fuser
}

// Result is one fused step of the system.
type Result struct {
	Visible *Frame
	Thermal *Frame
	Fused   *Frame
	Stats   Stats
}

// NewSystem builds the full system.
func NewSystem(cfg SystemConfig) (*System, error) {
	if cfg.W == 0 && cfg.H == 0 {
		cfg.W, cfg.H = 88, 72
	}
	if cfg.W <= 0 || cfg.H <= 0 {
		return nil, fmt.Errorf("zynqfusion: bad system geometry %dx%d", cfg.W, cfg.H)
	}
	cfg.Options.IncludeIO = true
	scene := camera.NewScene(cfg.W, cfg.H, cfg.Seed)
	thermal, err := camera.NewThermal(scene, cfg.W, cfg.H)
	if err != nil {
		return nil, err
	}
	fuser, err := New(cfg.Options)
	if err != nil {
		return nil, err
	}
	return &System{
		Scene:   scene,
		Webcam:  camera.NewWebcam(scene),
		Thermal: thermal,
		Fuser:   fuser,
	}, nil
}

// Step advances the scene, captures both cameras and fuses the pair.
func (s *System) Step() (Result, error) {
	s.Scene.Advance()
	vis, err := s.Webcam.Capture()
	if err != nil {
		return Result{}, err
	}
	ir, err := s.Thermal.Capture()
	if err != nil {
		return Result{}, err
	}
	fused, st, err := s.Fuser.Fuse(vis, ir)
	if err != nil {
		return Result{}, err
	}
	return Result{Visible: vis, Thermal: ir, Fused: fused, Stats: st}, nil
}

// CaptureStats exposes the BT.656 decoder statistics of the thermal path.
func (s *System) CaptureStats() bt656.DecoderStats { return s.Thermal.Stats() }

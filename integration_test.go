package zynqfusion

// Cross-module integration and failure-injection tests: the full system
// exercised through corrupted capture streams, backpressure, engine
// switching mid-stream, and golden-property checks on the fused output.

import (
	"math"
	"testing"

	"zynqfusion/internal/bt656"
	"zynqfusion/internal/camera"
	"zynqfusion/internal/engine"
	"zynqfusion/internal/frame"
	"zynqfusion/internal/fusion"
	"zynqfusion/internal/pipeline"
	"zynqfusion/internal/sched"
)

func TestCorruptedBT656StreamIsDetectedAndSurvived(t *testing.T) {
	// Corrupt random bits of a multi-field stream: the decoder must count
	// errors, never panic, and later clean fields must decode intact.
	scene := camera.NewScene(64, 48, 77)
	var enc bt656.Encoder
	up := bt656.Scaler{OutW: 720, OutH: 243, Bilinear: true}
	var stream []byte
	for i := 0; i < 3; i++ {
		scene.Advance()
		field, err := up.Scale(scene.Thermal())
		if err != nil {
			t.Fatal(err)
		}
		stream = enc.Encode(stream, field)
	}
	// Flip bits in payload (undetectable by the protection scheme, must
	// degrade gracefully) and in several XY control words (must be
	// detected and counted).
	for i := 101; i < 2*len(stream)/3; i += 9973 {
		bt656.CorruptBit(stream, i, i%8)
	}
	corrupted := 0
	for i := 0; i+3 < 2*len(stream)/3 && corrupted < 5; i++ {
		if stream[i] == 0xFF && stream[i+1] == 0 && stream[i+2] == 0 {
			bt656.CorruptBit(stream, i+3, 6)
			corrupted++
			i += 5000
		}
	}
	dec := bt656.NewDecoder(720)
	if _, err := dec.Write(stream); err != nil {
		t.Fatal(err)
	}
	dec.Flush()
	frames := 0
	for {
		f, ok := dec.NextFrame()
		if !ok {
			break
		}
		frames++
		for _, v := range f.Pix {
			if math.IsNaN(float64(v)) || v < 0 || v > 255 {
				t.Fatal("corrupted stream produced out-of-range samples")
			}
		}
	}
	if frames == 0 {
		t.Fatal("no frames survived corruption")
	}
	st := dec.Stats
	if st.ProtectionErrors+st.LengthErrors+st.Resyncs == 0 {
		t.Error("corruption went completely undetected")
	}
}

func TestFIFOBackpressureSurfacesAsError(t *testing.T) {
	scene := camera.NewScene(32, 24, 5)
	cam, err := camera.NewThermal(scene, 32, 24)
	if err != nil {
		t.Fatal(err)
	}
	// Occupy the handshake FIFO, simulating a stalled consumer.
	cam.FIFO().Push(frame.New(32, 24))
	if _, err := cam.Capture(); err == nil {
		t.Error("capture into a full FIFO should fail (frame handshake)")
	}
	// After the consumer drains, capture works again.
	cam.FIFO().Pop()
	if _, err := cam.Capture(); err != nil {
		t.Errorf("capture after drain: %v", err)
	}
}

func TestEngineSwitchMidStreamKeepsResults(t *testing.T) {
	// Fuse the same pair on every engine in sequence; outputs must agree
	// to float tolerance (numerical consistency across the whole stack).
	scene := camera.NewScene(40, 40, 31)
	vis := scene.Visible()
	ir := scene.Thermal()
	var ref *Frame
	for _, kind := range []EngineKind{EngineARM, EngineNEON, EngineFPGA, EngineAdaptive} {
		f, err := New(Options{Engine: kind})
		if err != nil {
			t.Fatal(err)
		}
		out, _, err := f.Fuse(vis, ir)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if ref == nil {
			ref = out
			continue
		}
		d, _ := frame.MaxAbsDiff(ref, out)
		if d > 0.1 {
			t.Errorf("%s output deviates from ARM by %g", kind, d)
		}
	}
}

func TestTenFrameProtocolMatchesPaperScale(t *testing.T) {
	// The paper's protocol: 10 frames decomposed, fused and reconstructed
	// continuously at 88x72. ARM-only should land near the paper's ~1.75s
	// total (we calibrate to ~1.78s) and ~5.7 fps.
	e := engine.NewARM()
	vis, ir := camera.NewScene(88, 72, 1).Visible(), camera.NewScene(88, 72, 2).Thermal()
	fu := pipeline.New(e, pipeline.Config{IncludeIO: true})
	var total pipeline.StageTimes
	for i := 0; i < 10; i++ {
		_, st, err := fu.FuseFrames(vis, ir)
		if err != nil {
			t.Fatal(err)
		}
		total.Add(st)
	}
	if s := total.Total.Seconds(); s < 1.5 || s > 2.1 {
		t.Errorf("ARM 10-frame total %0.3fs outside the paper's scale (~1.75s)", s)
	}
}

func TestAdaptiveRoutingReportIsConsistent(t *testing.T) {
	a := sched.NewAdaptive(sched.Threshold{})
	fu := pipeline.New(a, pipeline.Config{})
	scene := camera.NewScene(88, 72, 17)
	if _, _, err := fu.FuseFrames(scene.Visible(), scene.Thermal()); err != nil {
		t.Fatal(err)
	}
	var rows int64
	for _, n := range a.RoutedRows {
		rows += n
	}
	// 4 tree combos x 2 sources forward + 4 combos inverse, three levels
	// of row+column passes each: the row count must be substantial and
	// every routed row accounted once.
	if rows < 1000 {
		t.Errorf("only %d rows routed; expected the full transform workload", rows)
	}
	var routedTime int64
	for _, tm := range a.RoutedTime {
		routedTime += int64(tm)
	}
	if routedTime <= 0 {
		t.Error("routed time not accounted")
	}
}

func TestFusionQualityBeatsSingleSource(t *testing.T) {
	// Golden property: on the surveillance scene, the fused image scores
	// higher on combined-information metrics than either source alone.
	scene := camera.NewScene(88, 72, 123)
	vis := scene.Visible()
	ir := scene.Thermal()
	f, err := New(Options{Engine: EngineARM})
	if err != nil {
		t.Fatal(err)
	}
	fused, _, err := f.Fuse(vis, ir)
	if err != nil {
		t.Fatal(err)
	}
	// The fused image must correlate with each source better than the
	// sources correlate with each other: it carries content of both.
	crossCorr := pearson(vis, ir)
	if cf := pearson(fused, vis); cf <= crossCorr {
		t.Errorf("fused/visible correlation %.3f not above cross-source %.3f", cf, crossCorr)
	}
	if cf := pearson(fused, ir); cf <= crossCorr {
		t.Errorf("fused/thermal correlation %.3f not above cross-source %.3f", cf, crossCorr)
	}
	// And it must not collapse information: QABF above the mid-scale.
	q, err := fusion.QABF(vis, ir, fused)
	if err != nil {
		t.Fatal(err)
	}
	if q < 0.3 {
		t.Errorf("fusion QABF %.3f too low", q)
	}
}

func pearson(a, b *frame.Frame) float64 {
	ma, mb := a.Mean(), b.Mean()
	var num, va, vb float64
	for i := range a.Pix {
		da := float64(a.Pix[i]) - ma
		db := float64(b.Pix[i]) - mb
		num += da * db
		va += da * da
		vb += db * db
	}
	if va == 0 || vb == 0 {
		return 0
	}
	return num / math.Sqrt(va*vb)
}

func TestLongRunStability(t *testing.T) {
	// 60 frames through the full system on the online-adaptive engine:
	// no drift, no error accumulation, monotone simulated time.
	sys, err := NewSystem(SystemConfig{W: 64, H: 48, Seed: 888,
		Options: Options{Engine: EngineAdaptiveOnline}})
	if err != nil {
		t.Fatal(err)
	}
	var prevTotal Time
	for i := 0; i < 60; i++ {
		res, err := sys.Step()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if res.Stats.Total <= 0 {
			t.Fatalf("frame %d: empty accounting", i)
		}
		_ = prevTotal
		prevTotal = res.Stats.Total
		lo, hi := res.Fused.MinMax()
		if math.IsNaN(float64(lo)) || math.IsNaN(float64(hi)) {
			t.Fatalf("frame %d: NaN in output", i)
		}
	}
	if st := sys.CaptureStats(); st.Frames != 60 || st.ProtectionErrors != 0 {
		t.Errorf("capture stats after 60 frames: %+v", st)
	}
}

// Command benchgate compares freshly generated BENCH_<id>.json records
// against the committed baselines under bench/baseline and fails the
// build on structural regressions.
//
// Wall-clock figures are properties of whatever machine ran the bench, so
// the gate is deliberately asymmetric: correctness pins (bit-identical
// pixels and modeled stage records, planes elided by operator fusion,
// steady-state allocation counts) are enforced tightly, while speedup
// ratios only have to clear a generous fraction of the baseline's — enough
// to catch an optimization being wired out entirely without flaking on a
// noisy or differently-shaped CI host.
//
// Usage:
//
//	benchgate -baseline bench/baseline -current out kernel-speedup mem-steadystate
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"zynqfusion/internal/bench"
)

// ratioFloor is the fraction of a baseline speedup ratio the current run
// must clear. Host differences legitimately move ratios; losing more than
// half of one means the fast path stopped running.
const ratioFloor = 0.5

// allocSlack is the absolute allocs/frame headroom over the baseline.
// The pooled paths sit at or near zero; a couple of runtime-internal
// allocations must not flake the gate, a reintroduced per-frame plane
// (hundreds of allocs) must fail it.
const allocSlack = 2.0

func main() {
	baseline := flag.String("baseline", "bench/baseline", "directory holding committed BENCH_<id>.json baselines")
	current := flag.String("current", "out", "directory holding freshly generated BENCH_<id>.json records")
	flag.Parse()
	ids := flag.Args()
	if len(ids) == 0 {
		ids = []string{"kernel-speedup", "mem-steadystate"}
	}
	var issues []string
	for _, id := range ids {
		got, err := gateOne(*baseline, *current, id)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %s: %v\n", id, err)
			os.Exit(2)
		}
		issues = append(issues, got...)
	}
	if len(issues) > 0 {
		fmt.Fprintf(os.Stderr, "benchgate: %d regression(s):\n", len(issues))
		for _, s := range issues {
			fmt.Fprintf(os.Stderr, "  - %s\n", s)
		}
		os.Exit(1)
	}
	fmt.Printf("benchgate: %v clean against %s\n", ids, *baseline)
}

func gateOne(baseDir, curDir, id string) ([]string, error) {
	switch id {
	case "kernel-speedup":
		var base, cur bench.KernelSpeedupResult
		if err := loadPair(baseDir, curDir, id, &base, &cur); err != nil {
			return nil, err
		}
		return gateKernelSpeedup(base, cur), nil
	case "mem-steadystate":
		var base, cur bench.MemSteadyStateResult
		if err := loadPair(baseDir, curDir, id, &base, &cur); err != nil {
			return nil, err
		}
		return gateMemSteadyState(base, cur), nil
	default:
		return nil, fmt.Errorf("no gate defined for experiment %q", id)
	}
}

func loadPair(baseDir, curDir, id string, base, cur any) error {
	if err := loadJSON(baseDir, id, base); err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	if err := loadJSON(curDir, id, cur); err != nil {
		return fmt.Errorf("current: %w", err)
	}
	return nil
}

func loadJSON(dir, id string, v any) error {
	b, err := os.ReadFile(filepath.Join(dir, "BENCH_"+id+".json"))
	if err != nil {
		return err
	}
	return json.Unmarshal(b, v)
}

// gateKernelSpeedup pins the kernel-speedup record: every identity column
// must hold, operator fusion must elide at least as much as the baseline
// run did, and the speedups must clear ratioFloor of the baseline's.
// Cells are matched by frame size; a baseline cell with no counterpart in
// the current record is itself a regression (coverage shrank).
func gateKernelSpeedup(base, cur bench.KernelSpeedupResult) []string {
	var issues []string
	if cur.Schema != bench.ResultSchema {
		issues = append(issues, fmt.Sprintf("kernel-speedup: schema %q, want %q", cur.Schema, bench.ResultSchema))
	}
	cells := make(map[string]bench.KernelSpeedupCell, len(cur.Cells))
	for _, c := range cur.Cells {
		cells[c.Size] = c
		if !c.PixelsIdentical || !c.StagesIdentical {
			issues = append(issues, fmt.Sprintf("kernel-speedup %s: tiled outputs diverged from the scalar baseline", c.Size))
		}
		if !c.FusedPixelsIdentical || !c.FusedStagesIdentical {
			issues = append(issues, fmt.Sprintf("kernel-speedup %s: fused outputs diverged from the tiled reference", c.Size))
		}
	}
	for _, b := range base.Cells {
		c, ok := cells[b.Size]
		if !ok {
			issues = append(issues, fmt.Sprintf("kernel-speedup %s: cell present in baseline, missing from current run", b.Size))
			continue
		}
		if c.FusedPlanesElided < b.FusedPlanesElided {
			issues = append(issues, fmt.Sprintf("kernel-speedup %s: fusion elided %d planes, baseline elided %d",
				c.Size, c.FusedPlanesElided, b.FusedPlanesElided))
		}
		if c.Speedup < b.Speedup*ratioFloor {
			issues = append(issues, fmt.Sprintf("kernel-speedup %s: tiled speedup %.2fx below %.0f%% of baseline %.2fx",
				c.Size, c.Speedup, ratioFloor*100, b.Speedup))
		}
		if c.FusedOverTiled < b.FusedOverTiled*ratioFloor {
			issues = append(issues, fmt.Sprintf("kernel-speedup %s: fused-over-tiled %.2fx below %.0f%% of baseline %.2fx",
				c.Size, c.FusedOverTiled, ratioFloor*100, b.FusedOverTiled))
		}
	}
	return issues
}

// gateMemSteadyState pins the steady-state allocation record: every
// pooled cell must stay within allocSlack of the baseline's allocs/frame.
// The allocating-mode cells are the experiment's own control and are not
// gated.
func gateMemSteadyState(base, cur bench.MemSteadyStateResult) []string {
	var issues []string
	if cur.Schema != bench.ResultSchema {
		issues = append(issues, fmt.Sprintf("mem-steadystate: schema %q, want %q", cur.Schema, bench.ResultSchema))
	}
	fuser := make(map[string]bench.MemFuserCell, len(cur.Fuser))
	for _, c := range cur.Fuser {
		fuser[fmt.Sprintf("%s/depth%d", c.Mode, c.Depth)] = c
	}
	for _, b := range base.Fuser {
		if b.Mode != "pooled" {
			continue
		}
		key := fmt.Sprintf("%s/depth%d", b.Mode, b.Depth)
		c, ok := fuser[key]
		if !ok {
			issues = append(issues, fmt.Sprintf("mem-steadystate %s: cell present in baseline, missing from current run", key))
			continue
		}
		if c.AllocsPerFrame > b.AllocsPerFrame+allocSlack {
			issues = append(issues, fmt.Sprintf("mem-steadystate %s: %.1f allocs/frame, baseline %.1f (+%.0f slack)",
				key, c.AllocsPerFrame, b.AllocsPerFrame, allocSlack))
		}
	}
	farm := make(map[int]bench.MemFarmCell, len(cur.Farm))
	for _, c := range cur.Farm {
		farm[c.Streams] = c
	}
	for _, b := range base.Farm {
		c, ok := farm[b.Streams]
		if !ok {
			issues = append(issues, fmt.Sprintf("mem-steadystate farm/%d: cell present in baseline, missing from current run", b.Streams))
			continue
		}
		if c.AllocsPerFrame > b.AllocsPerFrame+allocSlack {
			issues = append(issues, fmt.Sprintf("mem-steadystate farm/%d: %.1f allocs/frame, baseline %.1f (+%.0f slack)",
				b.Streams, c.AllocsPerFrame, b.AllocsPerFrame, allocSlack))
		}
	}
	return issues
}

package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"zynqfusion/internal/bench"
)

func speedupFixture() bench.KernelSpeedupResult {
	return bench.KernelSpeedupResult{
		Schema: bench.ResultSchema,
		Cells: []bench.KernelSpeedupCell{{
			Size: "320x180", Frames: 3, Workers: 4,
			Speedup: 4.0, FusedOverTiled: 1.4,
			PixelsIdentical: true, StagesIdentical: true,
			FusedPixelsIdentical: true, FusedStagesIdentical: true,
			FusedPlanesElided: 72, FusedBytesSaved: 1 << 20,
		}},
	}
}

func memFixture() bench.MemSteadyStateResult {
	return bench.MemSteadyStateResult{
		Schema: bench.ResultSchema,
		Fuser: []bench.MemFuserCell{
			{Mode: "pooled", Depth: 2, AllocsPerFrame: 0.2},
			{Mode: "allocating", Depth: 2, AllocsPerFrame: 900},
		},
		Farm: []bench.MemFarmCell{{Streams: 4, AllocsPerFrame: 1.0}},
	}
}

func TestGateKernelSpeedupClean(t *testing.T) {
	if issues := gateKernelSpeedup(speedupFixture(), speedupFixture()); len(issues) != 0 {
		t.Fatalf("identical records flagged: %v", issues)
	}
}

func TestGateKernelSpeedupRegressions(t *testing.T) {
	base := speedupFixture()
	for name, mutate := range map[string]func(*bench.KernelSpeedupCell){
		"pixels":        func(c *bench.KernelSpeedupCell) { c.FusedPixelsIdentical = false },
		"stages":        func(c *bench.KernelSpeedupCell) { c.StagesIdentical = false },
		"planes elided": func(c *bench.KernelSpeedupCell) { c.FusedPlanesElided = 0 },
		"tiled ratio":   func(c *bench.KernelSpeedupCell) { c.Speedup = base.Cells[0].Speedup * 0.4 },
		"fused ratio":   func(c *bench.KernelSpeedupCell) { c.FusedOverTiled = base.Cells[0].FusedOverTiled * 0.4 },
	} {
		cur := speedupFixture()
		mutate(&cur.Cells[0])
		if issues := gateKernelSpeedup(base, cur); len(issues) == 0 {
			t.Errorf("%s regression passed the gate", name)
		}
	}
	// Ratio noise within the floor must pass.
	cur := speedupFixture()
	cur.Cells[0].Speedup *= 0.7
	cur.Cells[0].FusedOverTiled *= 0.7
	if issues := gateKernelSpeedup(base, cur); len(issues) != 0 {
		t.Fatalf("in-tolerance ratio drift flagged: %v", issues)
	}
	// A vanished cell is a coverage regression.
	cur = speedupFixture()
	cur.Cells = nil
	if issues := gateKernelSpeedup(base, cur); len(issues) == 0 {
		t.Fatal("missing cell passed the gate")
	}
}

func TestGateMemSteadyState(t *testing.T) {
	if issues := gateMemSteadyState(memFixture(), memFixture()); len(issues) != 0 {
		t.Fatalf("identical records flagged: %v", issues)
	}
	cur := memFixture()
	cur.Fuser[0].AllocsPerFrame = 400 // a reintroduced per-frame plane
	if issues := gateMemSteadyState(memFixture(), cur); len(issues) == 0 {
		t.Fatal("pooled alloc regression passed the gate")
	}
	// The allocating-mode control is not gated.
	cur = memFixture()
	cur.Fuser[1].AllocsPerFrame = 5000
	if issues := gateMemSteadyState(memFixture(), cur); len(issues) != 0 {
		t.Fatalf("allocating-mode control flagged: %v", issues)
	}
	cur = memFixture()
	cur.Farm[0].AllocsPerFrame = 50
	if issues := gateMemSteadyState(memFixture(), cur); len(issues) == 0 {
		t.Fatal("farm alloc regression passed the gate")
	}
}

func TestGateOneEndToEnd(t *testing.T) {
	dir := t.TempDir()
	baseDir := filepath.Join(dir, "baseline")
	curDir := filepath.Join(dir, "out")
	for _, d := range []string{baseDir, curDir} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	write := func(dir, id string, v any) {
		b, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "BENCH_"+id+".json"), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write(baseDir, "kernel-speedup", speedupFixture())
	cur := speedupFixture()
	cur.Cells[0].FusedStagesIdentical = false
	write(curDir, "kernel-speedup", cur)
	issues, err := gateOne(baseDir, curDir, "kernel-speedup")
	if err != nil {
		t.Fatal(err)
	}
	if len(issues) != 1 || !strings.Contains(issues[0], "fused outputs diverged") {
		t.Fatalf("issues = %v", issues)
	}
	if _, err := gateOne(baseDir, curDir, "mem-steadystate"); err == nil {
		t.Fatal("missing baseline file did not error")
	}
	if _, err := gateOne(baseDir, curDir, "nope"); err == nil {
		t.Fatal("unknown experiment did not error")
	}
}

// Command waveinspect visualizes the wavelet decompositions behind the
// fusion algorithm: the Fig. 1 subband layout of the 2-D DWT, per-subband
// energies, and the orientation selectivity of the DT-CWT's six complex
// subbands.
//
// Usage:
//
//	waveinspect -levels 3 -in image.pgm -mosaic mosaic.pgm
//	waveinspect -levels 3            # synthetic scene input
package main

import (
	"flag"
	"fmt"
	"os"

	"zynqfusion/internal/camera"
	"zynqfusion/internal/frame"
	"zynqfusion/internal/signal"
	"zynqfusion/internal/wavelet"
)

func main() {
	levels := flag.Int("levels", 3, "decomposition levels")
	in := flag.String("in", "", "input PGM (default: synthetic 88x72 scene)")
	mosaic := flag.String("mosaic", "", "write the Fig. 1 subband mosaic PGM here")
	flag.Parse()

	var img *frame.Frame
	if *in != "" {
		f, err := frame.LoadPGM(*in)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		img = f
	} else {
		img = camera.NewScene(88, 72, 1).Visible()
	}
	if *levels < 1 || *levels > wavelet.MaxLevels(img.W, img.H) {
		fmt.Fprintf(os.Stderr, "levels %d out of range (max %d for %dx%d)\n",
			*levels, wavelet.MaxLevels(img.W, img.H), img.W, img.H)
		os.Exit(2)
	}

	xf := wavelet.NewXfm(signal.RefKernel{})
	banks := make([]*wavelet.Bank, *levels)
	for i := range banks {
		banks[i] = wavelet.CDF97
	}
	d, err := wavelet.Forward2D(xf, banks, banks, img, *levels)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("2-D DWT of %dx%d, %d levels (Fig. 1 layout)\n", img.W, img.H, *levels)
	fmt.Printf("%-8s %-8s %12s %12s %12s\n", "level", "size", "HL energy", "LH energy", "HH energy")
	for lv, b := range d.Levels {
		fmt.Printf("%-8d %dx%-5d %12.2f %12.2f %12.2f\n", lv+1, b.HL.W, b.HL.H,
			wavelet.BandEnergy(b.HL), wavelet.BandEnergy(b.LH), wavelet.BandEnergy(b.HH))
	}
	fmt.Printf("%-8s %dx%-5d %12.2f\n", "LL", d.LL.W, d.LL.H, wavelet.BandEnergy(d.LL))

	if *mosaic != "" {
		if err := d.Mosaic().SavePGM(*mosaic); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println("wrote", *mosaic)
	}

	dt := wavelet.NewDTCWT(xf, wavelet.DefaultTreeBanks())
	p, err := dt.Forward(img, *levels)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("\nDT-CWT oriented subband energies (level %d)\n", *levels)
	for i, b := range p.Levels[*levels-1].Bands {
		fmt.Printf("  %+4d deg: %12.2f\n", wavelet.Orientations[i], b.Energy())
	}
}

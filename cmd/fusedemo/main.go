// Command fusedemo runs the complete capture-to-display fusion system
// (Fig. 6/7 of the paper) on the synthetic scene and writes the Fig. 8
// demonstration triplet — visible frame, thermal frame, fused frame — as
// PGM images, printing per-frame performance and energy.
//
// Usage:
//
//	fusedemo -frames 10 -engine adaptive -out ./out
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"zynqfusion"
)

func main() {
	frames := flag.Int("frames", 10, "number of frames to fuse")
	engine := flag.String("engine", "adaptive", "arm|neon|fpga|adaptive|adaptive-online")
	w := flag.Int("w", 88, "frame width")
	h := flag.Int("h", 72, "frame height")
	seed := flag.Int64("seed", 1, "scene seed")
	out := flag.String("out", ".", "output directory for PGM images")
	flag.Parse()

	sys, err := zynqfusion.NewSystem(zynqfusion.SystemConfig{
		W: *w, H: *h, Seed: *seed,
		Options: zynqfusion.Options{Engine: zynqfusion.EngineKind(*engine)},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	var total zynqfusion.Stats
	var last zynqfusion.Result
	for i := 0; i < *frames; i++ {
		res, err := sys.Step()
		if err != nil {
			fmt.Fprintf(os.Stderr, "frame %d: %v\n", i, err)
			os.Exit(1)
		}
		total.Add(res.Stats)
		last = res
		fmt.Printf("frame %2d: total %-12s forward %-12s inverse %-12s energy %s\n",
			i, res.Stats.Total, res.Stats.Forward, res.Stats.Inverse, res.Stats.Energy)
	}

	fps := float64(*frames) / total.Total.Seconds()
	fmt.Printf("\n%d frames on %s: %s simulated (%.1f fps), %s\n",
		*frames, *engine, total.Total, fps, total.Energy)
	st := sys.CaptureStats()
	fmt.Printf("BT.656 path: %d fields, %d lines, %d protection errors\n",
		st.Frames, st.Lines, st.ProtectionErrors)

	save := func(name string, f *zynqfusion.Frame) {
		g := f.Clone()
		g.Normalize()
		path := filepath.Join(*out, name)
		if err := g.SavePGM(path); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println("wrote", path)
	}
	save("fig8a_visible.pgm", last.Visible)
	save("fig8b_thermal.pgm", last.Thermal)
	save("fig8c_fused.pgm", last.Fused)
}

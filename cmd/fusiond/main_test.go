package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"zynqfusion/internal/farm"
	"zynqfusion/internal/fleet"
)

func TestNewDaemonSmoke(t *testing.T) {
	fm, handler, err := newDaemon(options{queueCap: 4, streams: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer fm.Close()

	get := func(path string) *httptest.ResponseRecorder {
		t.Helper()
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		return rec
	}

	if rec := get("/healthz"); rec.Code != http.StatusOK || rec.Body.String() != "ok\n" {
		t.Errorf("healthz = %d %q", rec.Code, rec.Body.String())
	}

	var m farm.Metrics
	rec := get("/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics status %d", rec.Code)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &m); err != nil {
		t.Fatalf("metrics JSON: %v", err)
	}
	if m.Aggregate.Streams != 1 {
		t.Errorf("boot streams = %d, want 1", m.Aggregate.Streams)
	}

	rec = get("/dvfs")
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "533MHz") {
		t.Errorf("dvfs endpoint = %d %q", rec.Code, rec.Body.String())
	}

	// Submit a bounded deadline-paced stream through the HTTP surface.
	body := strings.NewReader(`{"w":64,"h":48,"seed":2,"engine":"neon","frames":1,
		"deadline_ms":1000,"dvfs_policy":"deadline-pace"}`)
	rec = httptest.NewRecorder()
	handler.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/streams", body))
	if rec.Code != http.StatusCreated {
		t.Fatalf("submit status %d: %s", rec.Code, rec.Body.String())
	}
	var tele farm.StreamTelemetry
	if err := json.Unmarshal(rec.Body.Bytes(), &tele); err != nil {
		t.Fatalf("submit JSON: %v", err)
	}
	if tele.DVFSPolicy != "deadline-pace" {
		t.Errorf("submitted policy = %q", tele.DVFSPolicy)
	}
	s, ok := fm.Get(tele.ID)
	if !ok {
		t.Fatalf("stream %q not in farm", tele.ID)
	}
	<-s.Done()
	if got := s.Telemetry(); got.Fused != 1 || got.DeadlineMisses != 0 {
		t.Errorf("stream finished with %+v", got)
	}
}

// TestGracefulDrain exercises the SIGTERM/SIGINT path below the signal:
// drain stops every stream, flips /healthz to draining (503), and flushes
// the final farm metrics so the run's accounting is not lost with the
// process.
func TestGracefulDrain(t *testing.T) {
	fm, handler, err := newDaemon(options{queueCap: 4, streams: 2})
	if err != nil {
		t.Fatal(err)
	}
	get := func(path string) *httptest.ResponseRecorder {
		t.Helper()
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		return rec
	}
	if rec := get("/healthz"); rec.Code != http.StatusOK {
		t.Fatalf("healthz before drain = %d", rec.Code)
	}

	var out strings.Builder
	if err := drain(fm, nil, &out); err != nil {
		t.Fatalf("drain: %v", err)
	}

	// Streams are stopped and the readiness probe reports draining.
	for _, s := range fm.List() {
		select {
		case <-s.Done():
		default:
			t.Errorf("stream %s still running after drain", s.ID())
		}
	}
	if rec := get("/healthz"); rec.Code != http.StatusServiceUnavailable ||
		!strings.Contains(rec.Body.String(), "draining") {
		t.Errorf("healthz after drain = %d %q", rec.Code, rec.Body.String())
	}
	if _, err := fm.Submit(farm.StreamConfig{}); err == nil {
		t.Error("drained farm accepted a stream")
	}

	// The flushed metrics are parseable and carry the final stream count.
	flushed := out.String()
	if !strings.Contains(flushed, "drained 2 streams") {
		t.Errorf("drain summary missing: %q", flushed)
	}
	var m farm.Metrics
	if err := json.Unmarshal([]byte(flushed[strings.Index(flushed, "{"):]), &m); err != nil {
		t.Fatalf("flushed metrics not JSON: %v", err)
	}
	if m.Aggregate.Streams != 2 || m.Aggregate.Active != 0 {
		t.Errorf("flushed aggregate = %+v", m.Aggregate)
	}
	// The final flush carries the runtime memory telemetry, and every
	// frame-store lease has come home: the drained process reports a clean
	// arena next to its heap and GC figures.
	if m.Memory.HeapAllocBytes == 0 || m.Memory.Mallocs == 0 {
		t.Errorf("flushed memory telemetry empty: %+v", m.Memory)
	}
	if m.Memory.Pool.Outstanding != 0 {
		t.Errorf("drained farm still holds %d frame-store leases", m.Memory.Pool.Outstanding)
	}
	if m.Memory.Pool.Gets > 0 && m.Memory.PoolHitRate <= 0 {
		t.Errorf("pool hit rate missing from flush: %+v", m.Memory)
	}
}

func TestNewDaemonFarmOwnership(t *testing.T) {
	// The caller owns the returned farm: after Close it must refuse
	// further submissions.
	fm, _, err := newDaemon(options{queueCap: 4, streams: 0})
	if err != nil {
		t.Fatal(err)
	}
	fm.Close()
	if _, err := fm.Submit(farm.StreamConfig{}); err == nil {
		t.Error("closed farm accepted a stream")
	}
}

// TestPprofGate: the Go profiler is served only when the operator passed
// -pprof; the default daemon must not expose /debug/pprof/ at all, and
// the opt-in mux must keep every farm endpoint reachable.
func TestPprofGate(t *testing.T) {
	get := func(h http.Handler, path string) int {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		return rec.Code
	}

	fm, handler, err := newDaemon(options{queueCap: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer fm.Close()
	if code := get(handler, "/debug/pprof/"); code != http.StatusNotFound {
		t.Fatalf("pprof exposed without -pprof: status %d", code)
	}

	fm2, handler2, err := newDaemon(options{queueCap: 4, pprof: true})
	if err != nil {
		t.Fatal(err)
	}
	defer fm2.Close()
	if code := get(handler2, "/debug/pprof/"); code != http.StatusOK {
		t.Fatalf("pprof index with -pprof: status %d", code)
	}
	if code := get(handler2, "/healthz"); code != http.StatusOK {
		t.Fatalf("farm endpoints lost behind the pprof mux: status %d", code)
	}
}

// TestSLOFlag: -slo loads the rules file at boot, wires the engine into
// the farm (visible through /slo), and rejects an unreadable or invalid
// file before the daemon comes up.
func TestSLOFlag(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "rules.json")
	rules := `{
		"window_scale": 0.001,
		"default": {"p99_latency_ms": 1000},
		"streams": {"cam0": {"p99_latency_ms": 500}}
	}`
	if err := os.WriteFile(path, []byte(rules), 0o644); err != nil {
		t.Fatal(err)
	}

	fm, handler, err := newDaemon(options{queueCap: 4, sloPath: path})
	if err != nil {
		t.Fatal(err)
	}
	defer fm.Close()

	body := strings.NewReader(`{"id":"cam0","w":32,"h":24,"seed":1,"frames":2}`)
	rec := httptest.NewRecorder()
	handler.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/streams", body))
	if rec.Code != http.StatusCreated {
		t.Fatalf("submit status %d: %s", rec.Code, rec.Body.String())
	}
	fm.Wait()

	rec = httptest.NewRecorder()
	handler.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/slo", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/slo status %d", rec.Code)
	}
	var got struct {
		Farm    *farm.SLOTelemetry `json:"farm"`
		Streams []struct {
			ID string `json:"id"`
		} `json:"streams"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatalf("/slo JSON: %v", err)
	}
	if got.Farm == nil || got.Farm.StreamsWithSLO != 1 {
		t.Fatalf("/slo farm rollup: %+v", got.Farm)
	}
	if len(got.Streams) != 1 || got.Streams[0].ID != "cam0" {
		t.Fatalf("/slo streams: %+v", got.Streams)
	}

	// A missing file and a bad file both fail boot with a diagnosable error.
	if _, _, err := newDaemon(options{sloPath: filepath.Join(dir, "missing.json")}); err == nil {
		t.Error("missing rules file accepted")
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"default": {"p99_latency_ms": -1}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := newDaemon(options{sloPath: bad}); err == nil {
		t.Error("invalid rules file accepted")
	}
}

// TestNewFleetDaemonSmoke boots the --fleet variant: the coordinator
// places the boot streams, /fleet serves the rollup, -budget-mw is
// arbitrated fleet-wide, and drainFleet flushes a decodable rollup.
func TestNewFleetDaemonSmoke(t *testing.T) {
	fl, handler, err := newFleetDaemon(options{queueCap: 4, streams: 3, fleet: 2, budgetMW: 4000})
	if err != nil {
		t.Fatal(err)
	}
	defer fl.Close()

	get := func(path string) *httptest.ResponseRecorder {
		t.Helper()
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		return rec
	}

	if rec := get("/healthz"); rec.Code != http.StatusOK {
		t.Errorf("healthz = %d", rec.Code)
	}
	var r fleet.Telemetry
	rec := get("/fleet")
	if rec.Code != http.StatusOK {
		t.Fatalf("/fleet status %d", rec.Code)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &r); err != nil {
		t.Fatalf("/fleet JSON: %v", err)
	}
	if r.Totals.Boards != 2 || r.Totals.Streams != 3 {
		t.Fatalf("rollup totals: %+v", r.Totals)
	}
	if r.Totals.PowerBudget != 4 {
		t.Fatalf("fleet power budget %v, want 4W", r.Totals.PowerBudget)
	}
	if rec := get("/metrics?format=prometheus"); rec.Code != http.StatusOK ||
		!strings.Contains(rec.Body.String(), "fleet_boards 2") {
		t.Fatalf("prometheus rollup: %d", rec.Code)
	}

	for _, p := range r.Placements {
		if err := fl.Stop(p.Stream); err != nil {
			t.Fatal(err)
		}
	}
	var out strings.Builder
	if err := drainFleet(fl, nil, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "drained fleet of 2 boards") {
		t.Fatalf("drain banner: %q", out.String())
	}
	var flushed fleet.Telemetry
	body := out.String()[strings.Index(out.String(), "{"):]
	if err := json.Unmarshal([]byte(body), &flushed); err != nil {
		t.Fatalf("flushed rollup: %v", err)
	}
	if err := fl.CheckLeaks(); err != nil {
		t.Fatal(err)
	}
}

// Command fusiond serves a multi-stream fusion farm over HTTP: submit,
// list and stop capture→fuse→display streams, read farm-wide metrics and
// the DVFS operating-point table, and fetch per-stream fused-frame
// snapshots.
//
// Usage:
//
//	fusiond -addr :8080
//	fusiond -addr :8080 -budget-mw 2200 -streams 4 -pool-stream-mb 8
//	fusiond -addr :8080 -slo rules.json
//	fusiond -addr :8080 -fleet 8 -budget-mw 16000
//
// With -fleet N the daemon serves N modeled boards behind one
// coordinator instead of a single farm: streams are placed by
// consistent hashing with bounded load, -budget-mw becomes the
// fleet-wide arbitrated power budget, and the API switches to the
// fleet surface — GET /fleet (rollup + Prometheus fleet_* families on
// /metrics), POST /streams/{id}/migrate, POST /boards/{id}/kill and
// /restore, GET /boards/{id} — while stream submit/list/stop and
// snapshot endpoints keep their shapes.
//
// API:
//
//	GET    /healthz
//	GET    /metrics                  (?format=prometheus for text exposition)
//	GET    /trace?stream=ID&frames=N Chrome trace_event JSON
//	GET    /events?stream=ID&n=N     structured event log
//	GET    /events?since=SEQ&n=N     cursor pagination ({"events":…,"next_seq":N})
//	GET    /slo                      SLO status: health scores, budgets, burn rates
//	GET    /alerts                   active burn-rate alerts + recent fire/clear events
//	GET    /dvfs
//	POST   /streams        {"w":88,"h":72,"seed":1,"engine":"adaptive","frames":0,
//	                        "deadline_ms":120,"dvfs_policy":"deadline-pace"}
//	GET    /streams
//	GET    /streams/{id}
//	DELETE /streams/{id}
//	GET    /streams/{id}/snapshot.pgm
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"zynqfusion/internal/bufpool"
	"zynqfusion/internal/farm"
	"zynqfusion/internal/fleet"
	"zynqfusion/internal/sim"
	"zynqfusion/internal/slo"
)

// options carries the daemon's flag-settable configuration.
type options struct {
	budgetMW     float64 // aggregate power budget in mW (0 = unlimited)
	queueCap     int     // default per-stream capture queue depth
	streams      int     // demo streams to start at boot
	poolCapMB    float64 // frame-store arena ceiling in MB (0 = unbounded)
	poolStreamMB float64 // per-stream sub-pool ceiling in MB (0 = unbounded)
	pprof        bool    // expose net/http/pprof under /debug/pprof/
	sloPath      string  // SLO rules file (JSON); empty disables the SLO engine
	fleet        int     // board count; > 0 serves a fleet coordinator instead of one farm
}

// farmConfig resolves the per-board (or single-farm) template from the
// options.
func farmConfig(opt options) (farm.Config, error) {
	var rules *slo.Rules
	if opt.sloPath != "" {
		r, err := slo.LoadRules(opt.sloPath)
		if err != nil {
			return farm.Config{}, fmt.Errorf("slo rules: %w", err)
		}
		rules = r
	}
	return farm.Config{
		PowerBudget:     sim.Watts(opt.budgetMW / 1e3),
		DefaultQueueCap: opt.queueCap,
		BufferPool: bufpool.Budget{
			CapBytes:  int64(opt.poolCapMB * (1 << 20)),
			PerStream: int64(opt.poolStreamMB * (1 << 20)),
		},
		SLO: rules,
	}, nil
}

// newFleetDaemon builds the --fleet variant: a coordinator over
// opt.fleet boards, each board a farm built from the same template the
// single-farm path uses. -budget-mw becomes the *fleet-wide* arbitrated
// power budget. The caller owns the returned fleet and must Close it.
func newFleetDaemon(opt options) (*fleet.Fleet, http.Handler, error) {
	tmpl, err := farmConfig(opt)
	if err != nil {
		return nil, nil, err
	}
	budget := tmpl.PowerBudget
	tmpl.PowerBudget = 0 // per-board caps come from arbitration
	c, err := fleet.New(fleet.Config{Boards: opt.fleet, PowerBudget: budget, Board: tmpl})
	if err != nil {
		return nil, nil, err
	}
	for i := 0; i < opt.streams; i++ {
		if _, _, err := c.Submit(farm.StreamConfig{Seed: int64(i + 1)}); err != nil {
			c.Close()
			return nil, nil, fmt.Errorf("boot stream %d: %w", i+1, err)
		}
	}
	return c, withPprof(fleet.NewServer(c), opt.pprof), nil
}

// drainFleet mirrors drain for --fleet: shut the listener, close every
// board (flipping /healthz to draining first), and flush the final
// fleet rollup.
func drainFleet(c *fleet.Fleet, srv *http.Server, out io.Writer) error {
	if srv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}
	c.Close()
	r := c.Rollup()
	fmt.Fprintf(out, "fusiond: drained fleet of %d boards: %d streams, fused %d, %d migrations, final rollup:\n",
		r.Totals.Boards, len(r.Placements), r.Totals.Fused, r.Totals.Migrations)
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// newDaemon builds the farm and its HTTP handler from the options: the
// whole service except the listener, so tests can drive the handler
// directly. The caller owns the returned farm and must Close it.
func newDaemon(opt options) (*farm.Farm, http.Handler, error) {
	cfg, err := farmConfig(opt)
	if err != nil {
		return nil, nil, err
	}
	fm := farm.New(cfg)
	for i := 0; i < opt.streams; i++ {
		if _, err := fm.Submit(farm.StreamConfig{Seed: int64(i + 1)}); err != nil {
			fm.Close()
			return nil, nil, fmt.Errorf("boot stream %d: %w", i+1, err)
		}
	}
	return fm, withPprof(farm.NewServer(fm), opt.pprof), nil
}

// withPprof optionally mounts the Go profiler above a handler. Hosted
// explicitly on a parent mux instead of relying on the DefaultServeMux
// side-effect registration: the profiler is only reachable when the
// operator opted in with -pprof, never by default on a daemon that
// binds a routable address.
func withPprof(handler http.Handler, enabled bool) http.Handler {
	if !enabled {
		return handler
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/", handler)
	return mux
}

// drain is the graceful-shutdown path: stop accepting HTTP work, stop and
// wait out every stream (Close flips /healthz to draining first, so load
// balancers see the readiness change while in-flight frames finish), then
// flush the final farm metrics so the run's accounting survives the
// process. srv may be nil in tests that drive the handler directly.
func drain(fm *farm.Farm, srv *http.Server, out io.Writer) error {
	if srv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}
	fm.Close()
	m := fm.Metrics()
	fmt.Fprintf(out, "fusiond: drained %d streams: fused %d, dropped %d, %s, final metrics:\n",
		m.Aggregate.Streams, m.Aggregate.Fused, m.Aggregate.Dropped, m.Aggregate.Energy)
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	opt := options{}
	flag.Float64Var(&opt.budgetMW, "budget-mw", 0, "aggregate power budget in mW (0 = unlimited)")
	flag.IntVar(&opt.queueCap, "queue", 4, "default per-stream capture queue depth")
	flag.IntVar(&opt.streams, "streams", 0, "demo streams to start at boot")
	flag.Float64Var(&opt.poolCapMB, "pool-cap-mb", 0, "frame-store arena ceiling in MB across all streams (0 = unbounded)")
	flag.Float64Var(&opt.poolStreamMB, "pool-stream-mb", 0, "per-stream frame-store budget in MB (0 = unbounded)")
	flag.BoolVar(&opt.pprof, "pprof", false, "expose Go profiling endpoints under /debug/pprof/ (off by default)")
	flag.StringVar(&opt.sloPath, "slo", "", "SLO rules file (JSON); enables burn-rate alerting, degradation and admission control")
	flag.IntVar(&opt.fleet, "fleet", 0, "serve a fleet of N modeled boards behind one coordinator (0 = single farm)")
	flag.Parse()

	var handler http.Handler
	var fm *farm.Farm
	var fl *fleet.Fleet
	var err error
	if opt.fleet > 0 {
		fl, handler, err = newFleetDaemon(opt)
	} else {
		fm, handler, err = newDaemon(opt)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "fusiond:", err)
		os.Exit(1)
	}

	srv := &http.Server{Addr: *addr, Handler: handler}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	if fl != nil {
		fmt.Printf("fusiond: serving fleet of %d boards on %s (budget %s, %d streams)\n",
			opt.fleet, *addr, sim.Watts(opt.budgetMW/1e3), opt.streams)
	} else {
		fmt.Printf("fusiond: serving on %s (budget %s, %d streams)\n",
			*addr, sim.Watts(opt.budgetMW/1e3), opt.streams)
	}

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "fusiond:", err)
			os.Exit(1)
		}
	case sig := <-sigCh:
		fmt.Printf("fusiond: %s, draining\n", sig)
		if fl != nil {
			err = drainFleet(fl, srv, os.Stdout)
		} else {
			err = drain(fm, srv, os.Stdout)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "fusiond: metrics flush:", err)
			os.Exit(1)
		}
	}
}

// Command fusiond serves a multi-stream fusion farm over HTTP: submit,
// list and stop capture→fuse→display streams, read farm-wide metrics, and
// fetch per-stream fused-frame snapshots.
//
// Usage:
//
//	fusiond -addr :8080
//	fusiond -addr :8080 -budget-mw 2200 -streams 4
//
// API:
//
//	GET    /healthz
//	GET    /metrics
//	POST   /streams        {"w":88,"h":72,"seed":1,"engine":"adaptive","frames":0}
//	GET    /streams
//	GET    /streams/{id}
//	DELETE /streams/{id}
//	GET    /streams/{id}/snapshot.pgm
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"zynqfusion/internal/farm"
	"zynqfusion/internal/sim"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	budgetMW := flag.Float64("budget-mw", 0, "aggregate power budget in mW (0 = unlimited)")
	queueCap := flag.Int("queue", 4, "default per-stream capture queue depth")
	streams := flag.Int("streams", 0, "demo streams to start at boot")
	flag.Parse()

	fm := farm.New(farm.Config{
		PowerBudget:     sim.Watts(*budgetMW / 1e3),
		DefaultQueueCap: *queueCap,
	})
	for i := 0; i < *streams; i++ {
		if _, err := fm.Submit(farm.StreamConfig{Seed: int64(i + 1)}); err != nil {
			fmt.Fprintln(os.Stderr, "fusiond:", err)
			os.Exit(1)
		}
	}

	srv := &http.Server{Addr: *addr, Handler: farm.NewServer(fm)}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	fmt.Printf("fusiond: serving on %s (budget %s, %d streams)\n",
		*addr, sim.Watts(*budgetMW/1e3), *streams)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "fusiond:", err)
			os.Exit(1)
		}
	case sig := <-sigCh:
		fmt.Printf("fusiond: %s, draining\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		fm.Close()
	}
}

// Command fusionbench regenerates the tables and figures of the paper's
// evaluation from the modeled system.
//
// Usage:
//
//	fusionbench -exp all
//	fusionbench -exp fig9a
//	fusionbench -list
package main

import (
	"flag"
	"fmt"
	"os"

	"zynqfusion/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (see -list) or 'all'")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-18s %s\n", e.ID, e.Title)
		}
		return
	}

	run := func(e bench.Experiment) error {
		fmt.Printf("=== %s: %s ===\n", e.ID, e.Title)
		if err := e.Run(os.Stdout); err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		fmt.Println()
		return nil
	}

	if *exp == "all" {
		for _, e := range bench.All() {
			if err := run(e); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		return
	}
	e, ok := bench.Find(*exp)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *exp)
		os.Exit(2)
	}
	if err := run(e); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

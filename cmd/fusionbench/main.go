// Command fusionbench regenerates the tables and figures of the paper's
// evaluation from the modeled system.
//
// Usage:
//
//	fusionbench -exp all
//	fusionbench -exp fig9a
//	fusionbench -exp split-frontier -short -json out/
//	fusionbench -list
//
// With -json, experiments that produce structured records additionally
// write BENCH_<id>.json into the given directory: stable schema field,
// deterministic key order, reviewable diffs across PRs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"zynqfusion/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (see -list) or 'all'")
	list := flag.Bool("list", false, "list experiment ids and exit")
	short := flag.Bool("short", false, "trim sweeps to smoke-sized grids")
	jsonDir := flag.String("json", "", "also write BENCH_<id>.json records into this directory")
	tracePath := flag.String("trace", "", "run a demo pipelined farm and write its Chrome trace JSON to this file, then exit")
	flag.Parse()
	bench.Short = *short

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-18s %s\n", e.ID, e.Title)
		}
		return
	}

	if *tracePath != "" {
		out, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "trace:", err)
			os.Exit(1)
		}
		err = bench.TraceDemo(out)
		if cerr := out.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "trace:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (load in Perfetto or chrome://tracing)\n", *tracePath)
		return
	}

	run := func(e bench.Experiment) error {
		fmt.Printf("=== %s: %s ===\n", e.ID, e.Title)
		if err := e.Run(os.Stdout); err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		if *jsonDir != "" && e.JSON != nil {
			if err := writeResult(*jsonDir, e); err != nil {
				return fmt.Errorf("%s: %w", e.ID, err)
			}
		}
		fmt.Println()
		return nil
	}

	if *exp == "all" {
		for _, e := range bench.All() {
			if err := run(e); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		return
	}
	e, ok := bench.Find(*exp)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *exp)
		os.Exit(2)
	}
	if err := run(e); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// writeResult emits one experiment's structured record. json.Marshal
// serializes struct fields in declaration order and sorts map keys, so
// repeated runs of an unchanged model produce byte-identical files.
func writeResult(dir string, e bench.Experiment) error {
	v, err := e.JSON()
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, "BENCH_"+e.ID+".json")
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

package zynqfusion

import (
	"strings"
	"testing"
)

func splitSourcePair(t *testing.T, w, h int) (*Frame, *Frame) {
	t.Helper()
	vis := NewFrame(w, h)
	ir := NewFrame(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			vis.Set(x, y, float32((x*7+y*3)%251))
			ir.Set(x, y, float32((x*x+y)%199))
		}
	}
	return vis, ir
}

func TestOptionsSplitPolicyNames(t *testing.T) {
	for _, name := range []string{SplitOracle, SplitAdaptive, SplitEnergy, "0.4", "0", "1"} {
		if _, err := New(Options{SplitPolicy: name}); err != nil {
			t.Errorf("SplitPolicy %q refused: %v", name, err)
		}
	}
	for _, name := range []string{"optimal", "-0.1", "1.5", "40%", "NaN", "+Inf"} {
		if _, err := New(Options{SplitPolicy: name}); err == nil {
			t.Errorf("SplitPolicy %q accepted", name)
		}
	}
	// A split needs both lanes of the adaptive engine.
	_, err := New(Options{Engine: EngineNEON, SplitPolicy: SplitOracle})
	if err == nil || !strings.Contains(err.Error(), "adaptive") {
		t.Errorf("SplitPolicy on a static engine: err = %v", err)
	}
}

// TestSplitPolicyDegenerateIsExclusive pins the API-level compatibility
// contract: the "0" and "1" shares keep the classic exclusive accounting —
// a single busy lane, no overlap, nothing charged for merging. (The
// bit-for-bit comparison against the pre-refactor static routing lives in
// internal/sched's golden tests.)
func TestSplitPolicyDegenerateIsExclusive(t *testing.T) {
	vis, ir := splitSourcePair(t, 64, 48)
	for _, share := range []string{"0", "1"} {
		fu, err := New(Options{SplitPolicy: share, IncludeIO: true})
		if err != nil {
			t.Fatal(err)
		}
		_, st, err := fu.Fuse(vis, ir)
		if err != nil {
			t.Fatal(err)
		}
		if st.Overlap != 0 {
			t.Errorf("share %s: overlap %v, want 0", share, st.Overlap)
		}
		if share == "0" && st.FPGABusy != 0 {
			t.Errorf("share 0: FPGA lane busy %v", st.FPGABusy)
		}
		if share == "1" && st.FPGABusy == 0 {
			t.Errorf("share 1: FPGA lane idle")
		}
		if got := st.CPUBusy + st.FPGABusy; got != st.Total {
			t.Errorf("share %s: lanes %v + %v != total %v", share, st.CPUBusy, st.FPGABusy, st.Total)
		}
	}
}

// TestSplitPolicyCooperativeDominates is the public-API view of the
// refactor's payoff: the oracle split fuses strictly faster than both
// degenerate shares and with less energy than the faster one.
func TestSplitPolicyCooperativeDominates(t *testing.T) {
	vis, ir := splitSourcePair(t, 88, 72)
	run := func(policy string) Stats {
		fu, err := New(Options{SplitPolicy: policy, IncludeIO: true})
		if err != nil {
			t.Fatal(err)
		}
		_, st, err := fu.Fuse(vis, ir)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	neon, fpga, coop := run("0"), run("1"), run(SplitOracle)
	if coop.Total >= neon.Total || coop.Total >= fpga.Total {
		t.Errorf("oracle %v should beat NEON-only %v and FPGA-only %v",
			coop.Total, neon.Total, fpga.Total)
	}
	faster := fpga
	if neon.Total < fpga.Total {
		faster = neon
	}
	if coop.Energy >= faster.Energy {
		t.Errorf("oracle energy %v should beat faster exclusive %v", coop.Energy, faster.Energy)
	}
	if coop.Overlap <= 0 || coop.CPUBusy <= 0 || coop.FPGABusy <= 0 {
		t.Errorf("cooperative lane accounting missing: %+v", coop)
	}
	if got := coop.CPUBusy + coop.FPGABusy - coop.Overlap; got != coop.Total {
		t.Errorf("lane identity broken: %v + %v - %v != %v",
			coop.CPUBusy, coop.FPGABusy, coop.Overlap, coop.Total)
	}
}

// Fusionquality: compare the coefficient fusion rules on the standard
// image-fusion quality measures (entropy, spatial frequency, mutual
// information, Q^AB/F), the evaluation style of the related work the
// paper cites (Mohamed & El-Den).
package main

import (
	"fmt"
	"log"

	"zynqfusion"
	"zynqfusion/internal/camera"
	"zynqfusion/internal/fusion"
)

func main() {
	scene := camera.NewScene(88, 72, 99)
	vis := scene.Visible()
	ir := scene.Thermal()

	rules := []struct {
		name string
		rule zynqfusion.Rule
	}{
		{"max-magnitude", zynqfusion.RuleMaxMagnitude},
		{"window-energy", zynqfusion.RuleWindowEnergy},
		{"average", zynqfusion.RuleAverage},
	}

	fmt.Printf("%-14s %9s %9s %9s %9s\n", "rule", "QABF", "MI", "entropy", "sp.freq")
	for _, r := range rules {
		fuser, err := zynqfusion.New(zynqfusion.Options{
			Engine: zynqfusion.EngineARM,
			Rule:   r.rule,
		})
		if err != nil {
			log.Fatal(err)
		}
		fused, _, err := fuser.Fuse(vis, ir)
		if err != nil {
			log.Fatal(err)
		}
		q, err := fusion.QABF(vis, ir, fused)
		if err != nil {
			log.Fatal(err)
		}
		mi, err := fusion.FusionMI(vis, ir, fused)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s %9.4f %9.3f %9.3f %9.2f\n",
			r.name, q, mi, fusion.Entropy(fused), fusion.SpatialFrequency(fused))
	}
	fmt.Println("\nselection rules (max-magnitude, window-energy) should beat plain averaging")
	fmt.Println("on edge transfer (QABF) and sharpness (spatial frequency).")
}

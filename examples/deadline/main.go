// Deadline: fuse one stream under a tight and a loose per-frame deadline
// with the deadline-pace DVFS governor, and print the J/frame difference
// against racing to idle. The loose deadline lets the governor stretch
// frames into their slack at a low-voltage operating point, where energy
// over the frame period scales with V² — same frames, same deadline,
// strictly fewer joules.
package main

import (
	"fmt"
	"log"

	"zynqfusion"
)

const frames = 6

// run fuses one bounded stream and returns its telemetry.
func run(policy string, deadlineMS float64) zynqfusion.StreamTelemetry {
	fm := zynqfusion.NewFarm(zynqfusion.FarmConfig{})
	defer fm.Close()
	s, err := fm.Submit(zynqfusion.StreamConfig{
		W: 64, H: 48, Seed: 1,
		Engine:     "adaptive",
		Frames:     frames,
		QueueCap:   frames,
		DeadlineMS: deadlineMS,
		DVFSPolicy: policy,
	})
	if err != nil {
		log.Fatal(err)
	}
	fm.Wait()
	return s.Telemetry()
}

func main() {
	// Probe the nominal frame time to pick deadlines relative to it:
	// "tight" barely fits the 533 MHz point, "loose" leaves 3x slack.
	probe := run("nominal", 0)
	nominalMS := probe.Stages.Total.Milliseconds() / frames
	fmt.Printf("uncontended frame time at 533MHz: %.3f ms\n\n", nominalMS)

	for _, sc := range []struct {
		name   string
		factor float64
	}{{"tight", 1.15}, {"loose", 3.0}} {
		deadlineMS := nominalMS * sc.factor
		race := run(zynqfusion.DVFSRaceToIdle, deadlineMS)
		pace := run(zynqfusion.DVFSDeadlinePace, deadlineMS)
		saved := (1 - float64(pace.EnergyPerPeriod)/float64(race.EnergyPerPeriod)) * 100
		fmt.Printf("%s deadline (%.3f ms, %.1f fps):\n", sc.name, deadlineMS, 1e3/deadlineMS)
		fmt.Printf("  race-to-idle:  %8.4f mJ/frame at %s (%d misses)\n",
			race.EnergyPerPeriod.Millijoules(), race.Point, race.DeadlineMisses)
		fmt.Printf("  deadline-pace: %8.4f mJ/frame at %s (%d misses)\n",
			pace.EnergyPerPeriod.Millijoules(), pace.Point, pace.DeadlineMisses)
		fmt.Printf("  pacing saves %.1f%% per frame period\n\n", saved)
	}
}

// Crossover: reproduce the paper's key finding from the public API — the
// FPGA is not always the best accelerator. Sweeping the frame size shows
// NEON winning below ~40x40 and the FPGA above it, and the adaptive
// engine tracking the better of the two everywhere.
package main

import (
	"fmt"
	"log"
	"math"

	"zynqfusion"
)

func sources(w, h int) (*zynqfusion.Frame, *zynqfusion.Frame) {
	vis := zynqfusion.NewFrame(w, h)
	ir := zynqfusion.NewFrame(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			vis.Set(x, y, float32(120+70*math.Sin(float64(x+y)/3)))
			ir.Set(x, y, float32(50+150*math.Exp(-float64((x-w/2)*(x-w/2)+(y-h/2)*(y-h/2))/40)))
		}
	}
	return vis, ir
}

func main() {
	sizes := []struct{ w, h int }{{32, 24}, {35, 35}, {40, 40}, {64, 48}, {88, 72}}
	engines := []zynqfusion.EngineKind{
		zynqfusion.EngineARM, zynqfusion.EngineNEON,
		zynqfusion.EngineFPGA, zynqfusion.EngineAdaptive,
	}
	const frames = 10 // the paper profiles 10 consecutive fusions

	fmt.Printf("%-8s", "size")
	for _, e := range engines {
		fmt.Printf(" %14s", e)
	}
	fmt.Println("   (time s / energy mJ, 10 frames)")

	for _, s := range sizes {
		vis, ir := sources(s.w, s.h)
		fmt.Printf("%dx%-5d", s.w, s.h)
		for _, kind := range engines {
			fuser, err := zynqfusion.New(zynqfusion.Options{Engine: kind, IncludeIO: true})
			if err != nil {
				log.Fatal(err)
			}
			var total zynqfusion.Stats
			for i := 0; i < frames; i++ {
				_, st, err := fuser.Fuse(vis, ir)
				if err != nil {
					log.Fatal(err)
				}
				total.Add(st)
			}
			fmt.Printf(" %6.3f/%7.1f", total.Total.Seconds(), total.Energy.Millijoules())
		}
		fmt.Println()
	}
	fmt.Println("\npaper: NEON wins below the 35x35..40x40 breaking point, the FPGA above it,")
	fmt.Println("and the adaptive engine is never worse than the better static choice.")
}

// Quickstart: fuse one visible/thermal frame pair with the default
// (adaptive) engine and print the simulated platform cost.
package main

import (
	"fmt"
	"log"
	"math"

	"zynqfusion"
)

func main() {
	// Build a pair of source frames. Any float32 raster works; here the
	// visible frame carries texture and the "thermal" frame a hotspot.
	const w, h = 88, 72
	vis := zynqfusion.NewFrame(w, h)
	ir := zynqfusion.NewFrame(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			vis.Set(x, y, float32(110+80*math.Sin(float64(x)/5)*math.Cos(float64(y)/4)))
			d2 := float64((x-60)*(x-60) + (y-30)*(y-30))
			ir.Set(x, y, float32(40+180*math.Exp(-d2/64)))
		}
	}

	fuser, err := zynqfusion.New(zynqfusion.Options{
		Engine: zynqfusion.EngineAdaptive, // run-time NEON/FPGA selection
		Levels: 3,
		Rule:   zynqfusion.RuleMaxMagnitude,
	})
	if err != nil {
		log.Fatal(err)
	}

	fused, stats, err := fuser.Fuse(vis, ir)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("fused %dx%d frame on %s\n", fused.W, fused.H, fuser.Engine())
	fmt.Printf("  forward DT-CWT: %s\n", stats.Forward)
	fmt.Printf("  fusion rule:    %s\n", stats.Fuse)
	fmt.Printf("  inverse DT-CWT: %s\n", stats.Inverse)
	fmt.Printf("  total:          %s   energy: %s\n", stats.Total, stats.Energy)

	// The hotspot must survive into the fused frame.
	fmt.Printf("  fused value at hotspot: %.0f (visible there: %.0f)\n",
		fused.At(60, 30), vis.At(60, 30))

	for _, out := range []struct {
		name string
		f    *zynqfusion.Frame
	}{{"visible.pgm", vis}, {"thermal.pgm", ir}, {"fused.pgm", fused}} {
		g := out.f.Clone()
		g.Normalize()
		if err := g.SavePGM(out.name); err != nil {
			log.Fatal(err)
		}
		fmt.Println("wrote", out.name)
	}
}

// Surveillance: the paper's motivating scenario. A multi-sensor rig (the
// modeled webcam and BT.656 thermal camera) watches a scene with warm
// moving objects; the system fuses every frame pair so both the visible
// texture and the thermal hotspots appear in one video stream.
//
// This example exercises the full capture path of Fig. 7 — BT.656
// serialization, decoder state machine, video scaler, handshake FIFO —
// and reports the throughput and energy of the whole system.
package main

import (
	"fmt"
	"log"

	"zynqfusion"
)

func main() {
	sys, err := zynqfusion.NewSystem(zynqfusion.SystemConfig{
		W: 88, H: 72, // the paper's full frame geometry
		Seed: 2026,
		Options: zynqfusion.Options{
			Engine: zynqfusion.EngineAdaptive,
			Rule:   zynqfusion.RuleWindowEnergy, // noise-robust rule for surveillance
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	const frames = 25
	var total zynqfusion.Stats
	var last zynqfusion.Result
	for i := 0; i < frames; i++ {
		res, err := sys.Step()
		if err != nil {
			log.Fatalf("frame %d: %v", i, err)
		}
		total.Add(res.Stats)
		last = res
	}

	fmt.Printf("surveillance run: %d frames at 88x72\n", frames)
	fmt.Printf("  simulated time:  %s (%.1f fps)\n", total.Total,
		float64(frames)/total.Total.Seconds())
	fmt.Printf("  simulated energy: %s (%.2f mJ/frame)\n", total.Energy,
		total.Energy.Millijoules()/frames)
	st := sys.CaptureStats()
	fmt.Printf("  BT.656 thermal path: %d fields, %d lines, %d protection errors, %d resyncs\n",
		st.Frames, st.Lines, st.ProtectionErrors, st.Resyncs)

	for _, out := range []struct {
		name string
		f    *zynqfusion.Frame
	}{
		{"surveillance_visible.pgm", last.Visible},
		{"surveillance_thermal.pgm", last.Thermal},
		{"surveillance_fused.pgm", last.Fused},
	} {
		g := out.f.Clone()
		g.Normalize()
		if err := g.SavePGM(out.name); err != nil {
			log.Fatal(err)
		}
		fmt.Println("wrote", out.name)
	}
}

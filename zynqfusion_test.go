package zynqfusion

import (
	"math"
	"testing"

	"zynqfusion/internal/fusion"
)

func TestNewDefaultsToAdaptive(t *testing.T) {
	f, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if f.Engine() != EngineAdaptive {
		t.Errorf("default engine %q, want adaptive", f.Engine())
	}
}

func TestNewRejectsUnknownEngine(t *testing.T) {
	if _, err := New(Options{Engine: "gpu"}); err == nil {
		t.Error("unknown engine should fail")
	}
}

func TestFuseAllEnginesEndToEnd(t *testing.T) {
	sys, err := NewSystem(SystemConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Step()
	if err != nil {
		t.Fatal(err)
	}
	vis, ir := res.Visible, res.Thermal
	for _, kind := range []EngineKind{EngineARM, EngineNEON, EngineFPGA, EngineAdaptive, EngineAdaptiveOnline} {
		f, err := New(Options{Engine: kind})
		if err != nil {
			t.Fatal(err)
		}
		fused, st, err := f.Fuse(vis, ir)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if fused.W != vis.W || fused.H != vis.H {
			t.Fatalf("%s: fused %dx%d", kind, fused.W, fused.H)
		}
		if st.Total <= 0 || st.Energy <= 0 {
			t.Errorf("%s: missing accounting %+v", kind, st)
		}
		for _, v := range fused.Pix {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				t.Fatalf("%s: non-finite output", kind)
			}
		}
	}
}

func TestFusedFrameCarriesBothBands(t *testing.T) {
	// The fused output must contain the thermal hotspots AND the visible
	// texture: the core demonstration of Fig. 8.
	sys, err := NewSystem(SystemConfig{Seed: 5, Options: Options{Engine: EngineAdaptive}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Step()
	if err != nil {
		t.Fatal(err)
	}
	// Hotspot transfer: at the thermal maximum the fused frame must stand
	// clearly above its own mean (the hotspot survives fusion).
	hotIdx := 0
	for i, v := range res.Thermal.Pix {
		if v > res.Thermal.Pix[hotIdx] {
			hotIdx = i
		}
	}
	hx, hy := hotIdx%res.Thermal.W, hotIdx/res.Thermal.W
	if got, mean := float64(res.Fused.At(hx, hy)), res.Fused.Mean(); got < mean+20 {
		t.Errorf("hotspot lost in fusion: fused %.1f at (%d,%d), mean %.1f", got, hx, hy, mean)
	}
	// Texture transfer: fused keeps most of the visible spatial frequency.
	sfFused := fusion.SpatialFrequency(res.Fused)
	sfThermal := fusion.SpatialFrequency(res.Thermal)
	if sfFused <= sfThermal {
		t.Errorf("fused SF %.2f should exceed thermal SF %.2f (texture must transfer)", sfFused, sfThermal)
	}
}

func TestSystemStepSequence(t *testing.T) {
	sys, err := NewSystem(SystemConfig{W: 64, H: 48, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := sys.Step(); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
	if st := sys.CaptureStats(); st.Frames != 3 {
		t.Errorf("thermal path decoded %d fields, want 3", st.Frames)
	}
}

func TestSystemValidatesGeometry(t *testing.T) {
	if _, err := NewSystem(SystemConfig{W: -1, H: 10}); err == nil {
		t.Error("negative geometry should fail")
	}
}

func TestMaxLevelsExported(t *testing.T) {
	if MaxLevels(88, 72) < 3 {
		t.Errorf("MaxLevels(88,72)=%d, want >=3", MaxLevels(88, 72))
	}
}

func TestRuleSelection(t *testing.T) {
	sys, _ := NewSystem(SystemConfig{W: 48, H: 48, Seed: 2})
	res, err := sys.Step()
	if err != nil {
		t.Fatal(err)
	}
	fa, _ := New(Options{Engine: EngineARM, Rule: RuleMaxMagnitude})
	fb, _ := New(Options{Engine: EngineARM, Rule: RuleAverage})
	a, _, err := fa.Fuse(res.Visible, res.Thermal)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := fb.Fuse(res.Visible, res.Thermal)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Pix {
		if a.Pix[i] != b.Pix[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different rules should change the output")
	}
}

package zynqfusion

// One benchmark per table/figure of the paper's evaluation. Each bench
// runs the real Go implementation (so b.N timings measure this library)
// and reports the modeled ZC702 platform metrics — simulated milliseconds
// and millijoules — via b.ReportMetric, which is what reproduces the
// paper's numbers. See EXPERIMENTS.md for the side-by-side record.

import (
	"fmt"
	"testing"

	"zynqfusion/internal/bench"
	"zynqfusion/internal/engine"
	"zynqfusion/internal/hls"
	"zynqfusion/internal/neon"
	"zynqfusion/internal/pipeline"
	"zynqfusion/internal/profiler"
	"zynqfusion/internal/signal"
	"zynqfusion/internal/wavelet"
)

// benchSizes are the Fig. 9/10 frame sizes.
var benchSizes = bench.PaperSizes

// benchKinds are the paper's three engine configurations.
var benchKinds = []bench.EngineKind{bench.KindARM, bench.KindNEON, bench.KindFPGA}

// runFusion measures one (engine, size) cell: per-iteration it fuses one
// frame pair; modeled per-frame time/energy are attached as metrics.
func runFusion(b *testing.B, kind bench.EngineKind, s bench.Size) pipeline.StageTimes {
	b.Helper()
	e, err := bench.NewEngine(kind)
	if err != nil {
		b.Fatal(err)
	}
	vis, ir := bench.SourcePair(s)
	fu := pipeline.New(e, pipeline.Config{IncludeIO: true})
	var last pipeline.StageTimes
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, st, err := fu.FuseFrames(vis, ir)
		if err != nil {
			b.Fatal(err)
		}
		last = st
	}
	b.StopTimer()
	return last
}

// BenchmarkFig9aForward regenerates Fig. 9a: forward DT-CWT time by
// engine and frame size.
func BenchmarkFig9aForward(b *testing.B) {
	for _, kind := range benchKinds {
		for _, s := range benchSizes {
			b.Run(fmt.Sprintf("%s/%s", kind, s), func(b *testing.B) {
				st := runFusion(b, kind, s)
				b.ReportMetric(st.Forward.Milliseconds(), "model-ms/frame")
			})
		}
	}
}

// BenchmarkFig9bTotal regenerates Fig. 9b: total fusion time.
func BenchmarkFig9bTotal(b *testing.B) {
	for _, kind := range benchKinds {
		for _, s := range benchSizes {
			b.Run(fmt.Sprintf("%s/%s", kind, s), func(b *testing.B) {
				st := runFusion(b, kind, s)
				b.ReportMetric(st.Total.Milliseconds(), "model-ms/frame")
			})
		}
	}
}

// BenchmarkFig9cInverse regenerates Fig. 9c: inverse DT-CWT time.
func BenchmarkFig9cInverse(b *testing.B) {
	for _, kind := range benchKinds {
		for _, s := range benchSizes {
			b.Run(fmt.Sprintf("%s/%s", kind, s), func(b *testing.B) {
				st := runFusion(b, kind, s)
				b.ReportMetric(st.Inverse.Milliseconds(), "model-ms/frame")
			})
		}
	}
}

// BenchmarkFig10Energy regenerates Fig. 10: total energy by engine and
// frame size.
func BenchmarkFig10Energy(b *testing.B) {
	for _, kind := range benchKinds {
		for _, s := range benchSizes {
			b.Run(fmt.Sprintf("%s/%s", kind, s), func(b *testing.B) {
				st := runFusion(b, kind, s)
				b.ReportMetric(st.Energy.Millijoules(), "model-mJ/frame")
			})
		}
	}
}

// BenchmarkFig2Profile regenerates the Fig. 2 stage profile on the ARM
// engine, reporting the dominant stage's share.
func BenchmarkFig2Profile(b *testing.B) {
	st := runFusion(b, bench.KindARM, bench.Size{W: 88, H: 72})
	p := profiler.FromStages(st)
	b.ReportMetric(p.Share("forward DT-CWT")*100, "fwd-%")
	b.ReportMetric(p.Share("inverse DT-CWT")*100, "inv-%")
}

// BenchmarkFig3SIMDKernels measures the emulated NEON kernels against the
// scalar reference (the Fig. 3 vectorizations), in real Go ns/op.
func BenchmarkFig3SIMDKernels(b *testing.B) {
	bank := wavelet.CDF97
	m := 44
	px := make([]float32, 2*m+signal.TapCount)
	for i := range px {
		px[i] = float32(i % 97)
	}
	lo := make([]float32, m)
	hi := make([]float32, m)
	b.Run("scalar", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			signal.AnalyzeRef(&bank.AL, &bank.AH, px, lo, hi)
		}
	})
	b.Run("neon-manual", func(b *testing.B) {
		u := &neon.Unit{}
		for i := 0; i < b.N; i++ {
			neon.AnalyzeManual(u, &bank.AL, &bank.AH, px, lo, hi)
		}
	})
	b.Run("neon-auto", func(b *testing.B) {
		u := &neon.Unit{}
		for i := 0; i < b.N; i++ {
			neon.AnalyzeAuto(u, &bank.AL, &bank.AH, px, lo, hi)
		}
	})
}

// BenchmarkFig5Buffering regenerates the Fig. 5 ablation: double versus
// single buffering on the FPGA path.
func BenchmarkFig5Buffering(b *testing.B) {
	for _, double := range []bool{true, false} {
		name := "double"
		if !double {
			name = "single"
		}
		variant := engine.FPGAVariant{DoubleBuffered: double}
		b.Run(name, func(b *testing.B) {
			e := engine.NewFPGAVariant(variant)
			vis, ir := bench.SourcePair(bench.Size{W: 88, H: 72})
			fu := pipeline.New(e, pipeline.Config{IncludeIO: true})
			var last pipeline.StageTimes
			for i := 0; i < b.N; i++ {
				_, st, err := fu.FuseFrames(vis, ir)
				if err != nil {
					b.Fatal(err)
				}
				last = st
			}
			b.ReportMetric(last.Total.Milliseconds(), "model-ms/frame")
		})
	}
}

// BenchmarkTableIResources measures the resource estimator (Table I).
func BenchmarkTableIResources(b *testing.B) {
	var r hls.Resources
	for i := 0; i < b.N; i++ {
		r = hls.EstimateWaveEngine()
	}
	b.ReportMetric(float64(r.Registers), "registers")
	b.ReportMetric(float64(r.LUTs), "luts")
	b.ReportMetric(float64(r.Slices), "slices")
}

// BenchmarkAdaptivePolicy regenerates the extension experiment: the
// adaptive selectors against the static engines at the full frame size.
func BenchmarkAdaptivePolicy(b *testing.B) {
	kinds := []bench.EngineKind{bench.KindNEON, bench.KindFPGA, bench.KindAdaptive, bench.KindAdaptiveOnline}
	for _, kind := range kinds {
		b.Run(string(kind), func(b *testing.B) {
			st := runFusion(b, kind, bench.Size{W: 88, H: 72})
			b.ReportMetric(st.Total.Milliseconds(), "model-ms/frame")
			b.ReportMetric(st.Energy.Millijoules(), "model-mJ/frame")
		})
	}
}

// BenchmarkBT656CapturePath measures the thermal capture path (Fig. 7)
// end to end in real Go throughput.
func BenchmarkBT656CapturePath(b *testing.B) {
	sys, err := NewSystem(SystemConfig{W: 88, H: 72, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Thermal.Capture(); err != nil {
			b.Fatal(err)
		}
	}
}

package driver

import (
	"errors"
	"math/rand"
	"testing"

	"zynqfusion/internal/axi"
	"zynqfusion/internal/hls"
	"zynqfusion/internal/signal"
	"zynqfusion/internal/wavelet"
	"zynqfusion/internal/zynq"
)

func testConfig(double bool) Config {
	return Config{
		PS:                    zynq.PS(),
		UserCopyCyclesPerWord: 1.5,
		SyscallCycles:         3000,
		StatusPolls:           2,
		DoubleBuffered:        double,
	}
}

func openDevice(t *testing.T, double bool) *Device {
	t.Helper()
	pl := zynq.PL()
	eng := hls.New(zynq.PS(), pl, axi.NewACP(pl))
	b := wavelet.CDF97
	eng.LoadCoeffs(&b.AL, &b.AH, &b.SL, &b.SH)
	d, err := Open(eng, testConfig(double))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func randRow(rng *rand.Rand, n int) []float32 {
	s := make([]float32, n)
	for i := range s {
		s[i] = float32(rng.Float64()*200 - 100)
	}
	return s
}

func TestForwardRowMatchesReference(t *testing.T) {
	d := openDevice(t, true)
	rng := rand.New(rand.NewSource(51))
	b := wavelet.CDF97
	for _, m := range []int{4, 11, 44} {
		px := randRow(rng, 2*m+signal.TapCount)
		lo := make([]float32, m)
		hi := make([]float32, m)
		if err := d.ForwardRow(px, lo, hi); err != nil {
			t.Fatal(err)
		}
		wantLo := make([]float32, m)
		wantHi := make([]float32, m)
		signal.AnalyzeRef(&b.AL, &b.AH, px, wantLo, wantHi)
		for i := range lo {
			if lo[i] != wantLo[i] || hi[i] != wantHi[i] {
				t.Fatalf("m=%d i=%d: (%g,%g) want (%g,%g)", m, i, lo[i], hi[i], wantLo[i], wantHi[i])
			}
		}
	}
}

func TestInverseRowMatchesReference(t *testing.T) {
	d := openDevice(t, true)
	rng := rand.New(rand.NewSource(52))
	b := wavelet.CDF97
	m := 16
	plo := randRow(rng, m+signal.SynthesisPad)
	phi := randRow(rng, m+signal.SynthesisPad)
	out := make([]float32, 2*m)
	if err := d.InverseRow(plo, phi, out); err != nil {
		t.Fatal(err)
	}
	want := make([]float32, 2*m)
	signal.SynthesizeRef(&b.SL, &b.SH, plo, phi, want)
	for i := range out {
		if out[i] != want[i] {
			t.Fatalf("i=%d: %g want %g", i, out[i], want[i])
		}
	}
}

func TestDoubleBufferingBeatsSingle(t *testing.T) {
	// The Fig. 5 motivation: with two areas, user copies overlap hardware
	// processing, so a batch of rows finishes sooner than the sequential
	// single-buffer schedule.
	rng := rand.New(rand.NewSource(53))
	run := func(double bool) (makespan int64) {
		d := openDevice(t, double)
		m := 64
		for k := 0; k < 32; k++ {
			px := randRow(rng, 2*m+signal.TapCount)
			if err := d.ForwardRow(px, make([]float32, m), make([]float32, m)); err != nil {
				t.Fatal(err)
			}
		}
		return int64(d.Elapsed())
	}
	double := run(true)
	single := run(false)
	if double >= single {
		t.Errorf("double-buffered %d >= single-buffered %d", double, single)
	}
	// The win should be material, not rounding noise.
	if float64(single-double)/float64(single) < 0.05 {
		t.Errorf("double buffering saves only %.2f%%", 100*float64(single-double)/float64(single))
	}
}

func TestElapsedIncludesDrain(t *testing.T) {
	d := openDevice(t, true)
	m := 32
	px := randRow(rand.New(rand.NewSource(54)), 2*m+signal.TapCount)
	if err := d.ForwardRow(px, make([]float32, m), make([]float32, m)); err != nil {
		t.Fatal(err)
	}
	e1 := d.Elapsed()
	if e1 <= 0 {
		t.Fatal("elapsed should be positive")
	}
	// Elapsed must cover CPU busy and HW busy (they partially overlap, so
	// the makespan is at least the max of the two).
	if e1 < d.CPUBusy || e1 < d.HWBusy {
		t.Errorf("makespan %v below busy times cpu=%v hw=%v", e1, d.CPUBusy, d.HWBusy)
	}
	if got := d.Reset(); got != e1 {
		t.Errorf("Reset returned %v, want %v", got, e1)
	}
	if d.Elapsed() != 0 {
		t.Error("timeline should be clear after Reset")
	}
}

func TestMmapAliasesKernelBuffer(t *testing.T) {
	d := openDevice(t, true)
	in, out := d.Mmap()
	if len(in) != 2*hls.BRAMArea || len(out) != 2*hls.BRAMArea {
		t.Fatalf("mmap sizes %d/%d", len(in), len(out))
	}
	in[0] = 42
	in2, _ := d.Mmap()
	if in2[0] != 42 {
		t.Error("mmap views must alias the same kernel memory")
	}
}

func TestIoctlValidation(t *testing.T) {
	d := openDevice(t, true)
	if err := d.Ioctl(SetReadOffset, 100); err != nil {
		t.Errorf("valid offset: %v", err)
	}
	if err := d.Ioctl(SetWriteOffset, -1); !errors.Is(err, ErrBadOffset) {
		t.Errorf("negative offset: %v", err)
	}
	if err := d.Ioctl(SetReadOffset, 2*hls.BRAMArea); !errors.Is(err, ErrBadOffset) {
		t.Errorf("out-of-range offset: %v", err)
	}
	if err := d.Ioctl(IoctlReq(99), 0); err == nil {
		t.Error("unknown ioctl should fail")
	}
}

func TestClosedDeviceRejectsWork(t *testing.T) {
	d := openDevice(t, true)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); !errors.Is(err, ErrClosed) {
		t.Errorf("double close: %v", err)
	}
	m := 8
	err := d.ForwardRow(make([]float32, 2*m+signal.TapCount), make([]float32, m), make([]float32, m))
	if !errors.Is(err, ErrClosed) {
		t.Errorf("work on closed device: %v", err)
	}
	if err := d.Ioctl(SetReadOffset, 0); !errors.Is(err, ErrClosed) {
		t.Errorf("ioctl on closed device: %v", err)
	}
}

func TestRowTooWideRejected(t *testing.T) {
	d := openDevice(t, true)
	m := hls.BRAMArea // output of 2m words cannot fit an area
	err := d.ForwardRow(make([]float32, 2*m+signal.TapCount), make([]float32, m), make([]float32, m))
	if !errors.Is(err, ErrRowSize) {
		t.Errorf("oversized row: %v", err)
	}
}

func TestOpenValidatesConfig(t *testing.T) {
	pl := zynq.PL()
	eng := hls.New(zynq.PS(), pl, axi.NewACP(pl))
	if _, err := Open(nil, testConfig(true)); err == nil {
		t.Error("nil engine should fail")
	}
	bad := testConfig(true)
	bad.UserCopyCyclesPerWord = 0
	if _, err := Open(eng, bad); err == nil {
		t.Error("zero copy cost should fail")
	}
}

func TestMakespanScalesWithRows(t *testing.T) {
	// Twice the rows must land within [1x, 2x+slack] of the single-batch
	// time and be strictly larger — a sanity property of the timeline.
	rng := rand.New(rand.NewSource(55))
	run := func(rows int) int64 {
		d := openDevice(t, true)
		m := 44
		for k := 0; k < rows; k++ {
			px := randRow(rng, 2*m+signal.TapCount)
			if err := d.ForwardRow(px, make([]float32, m), make([]float32, m)); err != nil {
				t.Fatal(err)
			}
		}
		return int64(d.Elapsed())
	}
	t8, t16 := run(8), run(16)
	if t16 <= t8 {
		t.Errorf("16 rows (%d) not slower than 8 rows (%d)", t16, t8)
	}
	if t16 > 2*t8+t8/4 {
		t.Errorf("16 rows (%d) superlinear vs 8 rows (%d)", t16, t8)
	}
}

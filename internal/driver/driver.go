// Package driver models the paper's custom kernel-level Linux driver: a
// kmalloc'd physically-contiguous buffer that the accelerator reaches with
// physical addresses and the application reaches through mmap'd virtual
// addresses, ioctl-controlled read/write offsets, and the two-area double
// buffering of Fig. 5 that overlaps user-space memcpy with hardware
// processing.
//
// All timing is simulated: the device keeps a CPU cursor and a hardware
// cursor and advances them exactly as the Fig. 5 schedule does, so the
// makespan of a row sequence reflects the copy/compute overlap (or its
// absence, in single-buffered mode, which exists for the ablation study).
package driver

import (
	"errors"
	"fmt"

	"zynqfusion/internal/hls"
	"zynqfusion/internal/sim"
)

// Config carries the calibrated host-side cost constants (set by the
// engine cost model).
type Config struct {
	// PS is the processing-system clock.
	PS sim.Clock
	// UserCopyCyclesPerWord is the PS cost of the user-level memcpy into
	// or out of the mmap'd kernel buffer, per 32-bit word.
	UserCopyCyclesPerWord float64
	// SyscallCycles is the fixed PS cost of one driver round trip (ioctl,
	// command setup, completion check loop).
	SyscallCycles int64
	// StatusPolls is the average number of AXI-Lite status reads before
	// the done flag is observed.
	StatusPolls int
	// DoubleBuffered selects the Fig. 5 two-area schedule; false gives the
	// sequential single-buffer baseline.
	DoubleBuffered bool
	// CmdQueueDepth amortizes the driver round trip (SyscallCycles) over
	// this many consecutive rows. 1 (or 0) is the paper's per-row ioctl;
	// larger depths model the command-queue optimization suggested by the
	// paper's future work, which shifts the FPGA/NEON crossover toward
	// smaller frames. The AXI-Lite command writes themselves remain per
	// row.
	CmdQueueDepth int
}

// Ioctl request codes, mirroring the driver's read/write offset controls.
type IoctlReq int

// Supported ioctl requests.
const (
	SetReadOffset IoctlReq = iota + 1
	SetWriteOffset
)

// Errors returned by the device.
var (
	ErrClosed    = errors.New("driver: device closed")
	ErrBadOffset = errors.New("driver: offset outside kernel buffer")
	ErrRowSize   = errors.New("driver: row does not fit buffer area")
)

// Device is one open handle to the wavelet accelerator.
type Device struct {
	eng *hls.WaveEngine
	cfg Config

	// kmem is the kmalloc'd buffer: input areas first, output areas after.
	// Each direction holds two hls.BRAMArea-sized areas.
	kmem              []float32
	readOff, writeOff int
	closed            bool

	// Timeline cursors (simulated time since Open/Reset).
	cpu     sim.Time    // when the CPU is next free
	hwFree  sim.Time    // when the hardware is next free
	bufFree [2]sim.Time // when each buffer area may be overwritten
	// The copy-out of row k overlaps the hardware run of row k+1 in the
	// Fig. 5 schedule. Data is delivered to the caller immediately (the
	// simulated result already exists); only its time accounting is
	// deferred until the next row is issued or the device drains.
	pendOut sim.Time // completion time of the row awaiting copy-out
	pendLen int      // words awaiting copy-out accounting (0 = none)
	rows    int64

	// CPUBusy and HWBusy accumulate busy (not wall) time for reporting.
	CPUBusy, HWBusy sim.Time

	// rowScratch is the reusable staging buffer for the interleaved
	// (hp, lp) row format at the accelerator boundary. On the real system
	// the pack/unpack works in the fixed kernel buffer; allocating it per
	// row was pure Go-side churn.
	rowScratch []float32
}

// Open attaches to the wave engine and allocates the kernel buffers.
func Open(eng *hls.WaveEngine, cfg Config) (*Device, error) {
	if eng == nil {
		return nil, errors.New("driver: nil engine")
	}
	if cfg.UserCopyCyclesPerWord <= 0 || cfg.SyscallCycles < 0 {
		return nil, fmt.Errorf("driver: invalid config %+v", cfg)
	}
	return &Device{
		eng:  eng,
		cfg:  cfg,
		kmem: make([]float32, 4*hls.BRAMArea),
	}, nil
}

// Mmap returns the user-space views of the input and output halves of the
// kernel buffer. The views alias the same memory the hardware model reads
// and writes, exactly as the remapped virtual addresses do on the real
// system.
func (d *Device) Mmap() (in, out []float32) {
	return d.kmem[:2*hls.BRAMArea], d.kmem[2*hls.BRAMArea:]
}

// Ioctl adjusts the driver's data-movement offsets.
func (d *Device) Ioctl(req IoctlReq, val int) error {
	if d.closed {
		return ErrClosed
	}
	if val < 0 || val >= 2*hls.BRAMArea {
		return ErrBadOffset
	}
	switch req {
	case SetReadOffset:
		d.readOff = val
	case SetWriteOffset:
		d.writeOff = val
	default:
		return fmt.Errorf("driver: unknown ioctl request %d", req)
	}
	return nil
}

// Close drains pending work and releases the handle.
func (d *Device) Close() error {
	if d.closed {
		return ErrClosed
	}
	d.drain()
	d.closed = true
	return nil
}

// scratch returns the n-word staging buffer, grown as needed. Its previous
// contents are dead by the time it is reused: runRow copies it into (or
// fills it from) the kernel buffer synchronously before returning.
func (d *Device) scratch(n int) []float32 {
	if cap(d.rowScratch) < n {
		d.rowScratch = make([]float32, n)
	}
	return d.rowScratch[:n]
}

// copyCost returns the modeled user-memcpy time for n words.
func (d *Device) copyCost(n int) sim.Time {
	return d.cfg.PS.CyclesF(d.cfg.UserCopyCyclesPerWord * float64(n))
}

// cmdCost returns the per-row driver and command overhead. With a command
// queue, the syscall round trip is paid once per CmdQueueDepth rows.
func (d *Device) cmdCost() sim.Time {
	t := d.eng.CommandTime(d.cfg.StatusPolls)
	depth := d.cfg.CmdQueueDepth
	if depth < 1 {
		depth = 1
	}
	if d.rows%int64(depth) == 0 {
		t += d.cfg.PS.Cycles(d.cfg.SyscallCycles)
	}
	return t
}

// ForwardRow pushes one analysis row through the accelerator: user memcpy
// into a buffer area, command, hardware run, and (overlapped with the next
// row in double-buffered mode) user memcpy of the previous row's results.
// px holds 2m+12 samples; lo and hi receive m coefficients each.
func (d *Device) ForwardRow(px []float32, lo, hi []float32) error {
	if d.closed {
		return ErrClosed
	}
	m := len(lo)
	out := d.scratch(2 * m)
	if err := d.runRow(px, out, true); err != nil {
		return err
	}
	// The engine emits interleaved (hp, lp) pairs; unpacking them is host
	// work charged to the CPU cursor.
	for i := 0; i < m; i++ {
		hi[i] = out[2*i]
		lo[i] = out[2*i+1]
	}
	d.chargeCPUWords(m)
	return nil
}

// InverseRow pushes one synthesis row: plo/phi hold m+5 padded coefficient
// pairs, out receives 2m samples.
func (d *Device) InverseRow(plo, phi []float32, out []float32) error {
	if d.closed {
		return ErrClosed
	}
	pairs := len(plo)
	if len(phi) != pairs {
		return fmt.Errorf("%w: plo=%d phi=%d", ErrRowSize, pairs, len(phi))
	}
	in := d.scratch(2 * pairs)
	for i := 0; i < pairs; i++ {
		in[2*i] = plo[i]
		in[2*i+1] = phi[i]
	}
	d.chargeCPUWords(pairs)
	return d.runRow(in, out, false)
}

// runRow advances the Fig. 5 timeline for one hardware invocation.
func (d *Device) runRow(in, out []float32, forward bool) error {
	if len(in) > hls.BRAMArea || len(out) > hls.BRAMArea {
		return fmt.Errorf("%w: in=%d out=%d", ErrRowSize, len(in), len(out))
	}
	area := int(d.rows) % 2
	if !d.cfg.DoubleBuffered {
		area = 0
		// Single buffer: the previous row must be fully drained first.
		d.drain()
	}
	// The application steers the double buffering through the driver's
	// offset ioctls ("we used this to create different read and write
	// offsets to the kernel allocated memory"); the syscall cost is part
	// of cmdCost.
	if err := d.Ioctl(SetReadOffset, area*hls.BRAMArea); err != nil {
		return err
	}
	if err := d.Ioctl(SetWriteOffset, area*hls.BRAMArea); err != nil {
		return err
	}

	// User memcpy into the input area (must wait until the hardware has
	// finished reading the area's previous contents).
	start := maxTime(d.cpu, d.bufFree[area])
	cin := d.copyCost(len(in))
	d.cpu = start + cin
	d.CPUBusy += cin
	inArea := d.kmem[d.readOff : d.readOff+len(in)]
	copy(inArea, in)

	// Command issue.
	cc := d.cmdCost()
	d.cpu += cc
	d.CPUBusy += cc

	// Hardware run.
	outBase := 2*hls.BRAMArea + d.writeOff
	outArea := d.kmem[outBase : outBase+len(out)]
	var ht sim.Time
	var err error
	if forward {
		ht, err = d.eng.Forward(inArea, outArea)
	} else {
		ht, err = d.eng.Inverse(inArea, outArea)
	}
	if err != nil {
		return err
	}
	hwStart := maxTime(d.hwFree, d.cpu)
	hwEnd := hwStart + ht
	d.hwFree = hwEnd
	d.bufFree[area] = hwEnd
	d.HWBusy += ht

	// Deliver the data now; account the copy-out when the next row issues
	// (it overlaps that row's hardware run) or at drain time.
	copy(out, outArea)
	d.drainPrevious()
	d.pendOut = hwEnd
	d.pendLen = len(out)
	d.rows++
	return nil
}

// drainPrevious charges the pending copy-out, overlapping current hardware
// work where the schedule allows.
func (d *Device) drainPrevious() {
	if d.pendLen == 0 {
		return
	}
	start := maxTime(d.cpu, d.pendOut)
	cout := d.copyCost(d.pendLen)
	d.cpu = start + cout
	d.CPUBusy += cout
	d.pendLen = 0
}

// drain finishes all outstanding work (end of a batch).
func (d *Device) drain() {
	d.drainPrevious()
	if d.cpu < d.hwFree {
		d.cpu = d.hwFree
	}
}

// ChargeHost advances the CPU cursor by host-side application work that
// executes between accelerator calls (transform structure code). It
// serializes naturally with the copy-in of the next row, exactly as it
// does on the real system.
func (d *Device) ChargeHost(t sim.Time) {
	d.cpu += t
	d.CPUBusy += t
}

// chargeCPUWords charges pack/unpack host work at the memcpy rate.
func (d *Device) chargeCPUWords(n int) {
	t := d.copyCost(n)
	d.cpu += t
	d.CPUBusy += t
}

// Peek reports the makespan the device would have if it drained now,
// without disturbing the double-buffered schedule. Schedulers use it to
// price individual rows.
func (d *Device) Peek() sim.Time {
	cpu := d.cpu
	if d.pendLen != 0 {
		start := maxTime(cpu, d.pendOut)
		cpu = start + d.copyCost(d.pendLen)
	}
	return maxTime(cpu, d.hwFree)
}

// Elapsed drains outstanding work and reports the timeline makespan since
// Open or the last Reset.
func (d *Device) Elapsed() sim.Time {
	d.drain()
	return d.cpu
}

// Reset drains and zeroes the timeline, returning the prior makespan.
func (d *Device) Reset() sim.Time {
	d.drain()
	t := d.cpu
	d.cpu, d.hwFree = 0, 0
	d.bufFree = [2]sim.Time{}
	d.CPUBusy, d.HWBusy = 0, 0
	d.rows = 0
	return t
}

// Rows reports how many hardware invocations have run since Open/Reset.
func (d *Device) Rows() int64 { return d.rows }

func maxTime(a, b sim.Time) sim.Time {
	if a > b {
		return a
	}
	return b
}

package driver

import (
	"math/rand"
	"testing"

	"zynqfusion/internal/axi"
	"zynqfusion/internal/hls"
	"zynqfusion/internal/signal"
	"zynqfusion/internal/wavelet"
	"zynqfusion/internal/zynq"
)

func openWithQueue(t *testing.T, depth int) *Device {
	t.Helper()
	pl := zynq.PL()
	eng := hls.New(zynq.PS(), pl, axi.NewACP(pl))
	b := wavelet.CDF97
	eng.LoadCoeffs(&b.AL, &b.AH, &b.SL, &b.SH)
	cfg := testConfig(true)
	cfg.CmdQueueDepth = depth
	d, err := Open(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func runRows(t *testing.T, d *Device, rows, m int) int64 {
	t.Helper()
	rng := rand.New(rand.NewSource(61))
	for k := 0; k < rows; k++ {
		px := randRow(rng, 2*m+signal.TapCount)
		if err := d.ForwardRow(px, make([]float32, m), make([]float32, m)); err != nil {
			t.Fatal(err)
		}
	}
	return int64(d.Elapsed())
}

func TestCmdQueueReducesMakespan(t *testing.T) {
	base := runRows(t, openWithQueue(t, 1), 32, 16)
	queued := runRows(t, openWithQueue(t, 4), 32, 16)
	if queued >= base {
		t.Errorf("queue depth 4 (%d) not faster than per-row ioctl (%d)", queued, base)
	}
	// The saving should approach 3/4 of the syscall share.
	if float64(base-queued)/float64(base) < 0.3 {
		t.Errorf("queue saved only %.1f%%", 100*float64(base-queued)/float64(base))
	}
}

func TestCmdQueueStillPaysFirstSyscall(t *testing.T) {
	// One row always pays one full round trip regardless of depth.
	a := runRows(t, openWithQueue(t, 1), 1, 16)
	b := runRows(t, openWithQueue(t, 8), 1, 16)
	if a != b {
		t.Errorf("single-row cost differs with queue depth: %d vs %d", a, b)
	}
}

func TestPeekDoesNotDisturbSchedule(t *testing.T) {
	d := openDevice(t, true)
	rng := rand.New(rand.NewSource(62))
	m := 32
	var peeked []int64
	for k := 0; k < 8; k++ {
		px := randRow(rng, 2*m+signal.TapCount)
		if err := d.ForwardRow(px, make([]float32, m), make([]float32, m)); err != nil {
			t.Fatal(err)
		}
		peeked = append(peeked, int64(d.Peek()))
	}
	withPeek := int64(d.Elapsed())

	d2 := openDevice(t, true)
	rng = rand.New(rand.NewSource(62))
	for k := 0; k < 8; k++ {
		px := randRow(rng, 2*m+signal.TapCount)
		if err := d2.ForwardRow(px, make([]float32, m), make([]float32, m)); err != nil {
			t.Fatal(err)
		}
	}
	noPeek := int64(d2.Elapsed())
	if withPeek != noPeek {
		t.Errorf("Peek changed the makespan: %d vs %d", withPeek, noPeek)
	}
	for i := 1; i < len(peeked); i++ {
		if peeked[i] < peeked[i-1] {
			t.Errorf("Peek not monotone at %d", i)
		}
	}
	if peeked[len(peeked)-1] > withPeek {
		t.Errorf("final peek %d above drained makespan %d", peeked[len(peeked)-1], withPeek)
	}
}

func TestBusyCountersConsistent(t *testing.T) {
	d := openDevice(t, true)
	runRows(t, d, 8, 24)
	if d.CPUBusy <= 0 || d.HWBusy <= 0 {
		t.Fatalf("busy counters empty: cpu=%v hw=%v", d.CPUBusy, d.HWBusy)
	}
	if d.Rows() != 8 {
		t.Errorf("rows=%d", d.Rows())
	}
}

package farm

import (
	"math"
	"sync"
	"testing"
)

// TestFarmStressConcurrentStreams drives ≥8 streams concurrently while
// hammering the telemetry surfaces from other goroutines. Run under
// `go test -race` it is the subsystem's data-race proof; its assertions
// check the two farm invariants: FPGA exclusivity (granted spans never
// overlap across streams on the shared timeline) and energy conservation
// (farm aggregate == sum of per-stream drained energy == governor ledger).
func TestFarmStressConcurrentStreams(t *testing.T) {
	const streams, frames = 12, 3
	fm := New(Config{})
	for i := 0; i < streams; i++ {
		engine := "adaptive"
		switch i % 4 {
		case 1:
			engine = "fpga"
		case 2:
			engine = "neon"
		case 3:
			engine = "adaptive-online"
		}
		if _, err := fm.Submit(StreamConfig{
			W: 32, H: 24, Seed: int64(i + 1),
			Engine: engine, Frames: frames, QueueCap: 2,
		}); err != nil {
			t.Fatal(err)
		}
	}

	// Concurrent readers: metrics, listings, snapshots, governor stats.
	stopPoll := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stopPoll:
					return
				default:
				}
				m := fm.Metrics()
				if m.Aggregate.Streams != streams {
					t.Errorf("metrics sees %d streams", m.Aggregate.Streams)
					return
				}
				for _, s := range fm.List() {
					s.Telemetry()
					s.Snapshot()
				}
				fm.Governor().Stats()
				fm.Governor().Spans()
			}
		}()
	}

	fm.Wait()
	close(stopPoll)
	wg.Wait()

	// Invariant 1: FPGA exclusivity — spans on the shared timeline are
	// strictly ordered, never overlapping, each attributed to one stream.
	spans := fm.Governor().Spans()
	for i, sp := range spans {
		if sp.End < sp.Start || sp.Stream == "" {
			t.Fatalf("malformed span %+v", sp)
		}
		if i > 0 && sp.Start < spans[i-1].End {
			t.Fatalf("FPGA spans overlap: %+v then %+v", spans[i-1], sp)
		}
	}

	// Invariant 2: energy conservation across the three ledgers.
	m := fm.Metrics()
	var sum float64
	var fused int64
	for _, s := range m.Streams {
		if s.Err != "" {
			t.Fatalf("stream %s failed: %s", s.ID, s.Err)
		}
		sum += float64(s.Stages.Energy)
		fused += s.Fused
	}
	if fused+m.Aggregate.Dropped != m.Aggregate.Captured {
		t.Fatalf("frame conservation: fused %d + dropped %d != captured %d",
			fused, m.Aggregate.Dropped, m.Aggregate.Captured)
	}
	if sum <= 0 {
		t.Fatal("no energy accounted")
	}
	if rel := math.Abs(sum-float64(m.Aggregate.Energy)) / sum; rel > 1e-12 {
		t.Fatalf("aggregate energy %v != per-stream sum %v", m.Aggregate.Energy, sum)
	}
	_, govEnergy := fm.Governor().Totals()
	if rel := math.Abs(sum-float64(govEnergy)) / sum; rel > 1e-12 {
		t.Fatalf("governor energy %v != per-stream sum %v", govEnergy, sum)
	}

	fm.Close()
}

// TestFarmBackpressureDropsOldest forces a slow consumer by flooding a
// depth-1 queue and checks that drops are counted and the stream still
// finishes cleanly.
func TestFarmBackpressureDropsOldest(t *testing.T) {
	fm := New(Config{})
	s, err := fm.Submit(StreamConfig{
		W: 88, H: 72, Frames: 8, QueueCap: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	fm.Wait()
	tele := s.Telemetry()
	if tele.Captured != 8 {
		t.Fatalf("captured = %d, want 8", tele.Captured)
	}
	if tele.Fused+tele.Dropped != tele.Captured {
		t.Fatalf("fused %d + dropped %d != captured %d", tele.Fused, tele.Dropped, tele.Captured)
	}
	if tele.Fused == 0 {
		t.Fatal("nothing fused")
	}
	fm.Close()
}

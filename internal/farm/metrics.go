package farm

import (
	"zynqfusion/internal/pipeline"
	"zynqfusion/internal/sim"
)

// StageTimesJSON is the JSON shape of a pipeline.StageTimes record:
// stage spans in modeled picoseconds plus the drained energy in joules.
type StageTimesJSON struct {
	Capture sim.Time   `json:"capture_ps"`
	Forward sim.Time   `json:"forward_ps"`
	Fuse    sim.Time   `json:"fuse_ps"`
	Inverse sim.Time   `json:"inverse_ps"`
	Display sim.Time   `json:"display_ps"`
	Total   sim.Time   `json:"total_ps"`
	Energy  sim.Joules `json:"energy_joules"`
}

func stageJSON(st pipeline.StageTimes) StageTimesJSON {
	return StageTimesJSON{
		Capture: st.Capture,
		Forward: st.Forward,
		Fuse:    st.Fuse,
		Inverse: st.Inverse,
		Display: st.Display,
		Total:   st.Total,
		Energy:  st.Energy,
	}
}

// StreamTelemetry is one stream's accumulated record.
type StreamTelemetry struct {
	ID     string `json:"id"`
	Engine string `json:"engine"`
	W      int    `json:"w"`
	H      int    `json:"h"`
	Levels int    `json:"levels"`

	// Running is false once the stream finished or was stopped.
	Running bool `json:"running"`

	// Frame counters: Captured pairs produced by the source, Fused pairs
	// completed, Dropped pairs evicted by backpressure or shutdown.
	Captured   int64 `json:"captured"`
	Fused      int64 `json:"fused"`
	Dropped    int64 `json:"dropped"`
	QueueDepth int   `json:"queue_depth"`

	// Stages accumulates modeled stage times and energy over every fused
	// frame.
	Stages StageTimesJSON `json:"stages"`

	// EnergyPerFrame is Stages.Energy / Fused (modeled J per fused frame).
	EnergyPerFrame sim.Joules `json:"energy_per_frame_joules"`
	// MeanPower is Stages.Energy / Stages.Total.
	MeanPower sim.Watts `json:"mean_power_watts"`
	// FusedPerSecond is the modeled throughput: Fused / Stages.Total.
	FusedPerSecond float64 `json:"fused_per_second"`

	// Routed row statistics from the adaptive engine, keyed by engine
	// name ("arm", "neon", "fpga").
	RoutedRows map[string]int64    `json:"routed_rows"`
	RoutedTime map[string]sim.Time `json:"routed_time_ps"`
	// FPGAShare is the fraction of routed kernel time spent on the wave
	// engine.
	FPGAShare float64 `json:"fpga_share"`

	// FPGAGrants and FPGADenials count this stream's frame-level lease
	// outcomes.
	FPGAGrants  int64 `json:"fpga_grants"`
	FPGADenials int64 `json:"fpga_denials"`

	// Err records a terminal stream error, if any.
	Err string `json:"error,omitempty"`
}

// AggregateTelemetry is the farm-wide rollup.
type AggregateTelemetry struct {
	Streams  int   `json:"streams"`
	Active   int   `json:"active"`
	Captured int64 `json:"captured"`
	Fused    int64 `json:"fused"`
	Dropped  int64 `json:"dropped"`

	// Busy sums every stream's pipeline time; WallTime is the farm's
	// modeled makespan (streams run in parallel, so it is the max).
	Busy     sim.Time `json:"busy_ps"`
	WallTime sim.Time `json:"wall_ps"`

	Energy         sim.Joules `json:"energy_joules"`
	EnergyPerFrame sim.Joules `json:"energy_per_frame_joules"`
	// FusedPerSecond is modeled farm throughput: Fused / WallTime.
	FusedPerSecond float64 `json:"fused_per_second"`
	// AggregatePower is the sum of the still-running streams' mean
	// powers — the farm's current modeled board draw.
	AggregatePower sim.Watts `json:"aggregate_power_watts"`
}

// Metrics is the full farm snapshot served by /metrics.
type Metrics struct {
	Streams   []StreamTelemetry  `json:"streams"`
	Aggregate AggregateTelemetry `json:"aggregate"`
	Governor  GovernorStats      `json:"governor"`
}

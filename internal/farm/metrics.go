package farm

import (
	"zynqfusion/internal/bufpool"
	"zynqfusion/internal/obs"
	"zynqfusion/internal/pipeline"
	"zynqfusion/internal/sim"
	"zynqfusion/internal/slo"
)

// StageTimesJSON is the JSON shape of a pipeline.StageTimes record:
// stage spans in modeled picoseconds plus the drained energy in joules
// and the cooperative-split lane accounting (zero unless the stream
// partitions levels across NEON and the wave engine).
type StageTimesJSON struct {
	Capture sim.Time   `json:"capture_ps"`
	Forward sim.Time   `json:"forward_ps"`
	Fuse    sim.Time   `json:"fuse_ps"`
	Inverse sim.Time   `json:"inverse_ps"`
	Display sim.Time   `json:"display_ps"`
	Total   sim.Time   `json:"total_ps"`
	Energy  sim.Joules `json:"energy_joules"`

	// CPUBusy and FPGABusy are the per-lane busy times of cooperative
	// split execution; Overlap is the concurrently-run span already netted
	// out of Total.
	CPUBusy  sim.Time `json:"cpu_busy_ps,omitempty"`
	FPGABusy sim.Time `json:"fpga_busy_ps,omitempty"`
	Overlap  sim.Time `json:"overlap_ps,omitempty"`

	// Latency is the summed end-to-end frame latency (equal to Total for
	// sequential streams); PipelineOverlap is the summed span the stream's
	// stage work ran concurrently with neighbouring frames' stages under
	// the pipelined executor.
	Latency         sim.Time `json:"latency_ps,omitempty"`
	PipelineOverlap sim.Time `json:"pipeline_overlap_ps,omitempty"`
}

func stageJSON(st pipeline.StageTimes) StageTimesJSON {
	return StageTimesJSON{
		Capture:         st.Capture,
		Forward:         st.Forward,
		Fuse:            st.Fuse,
		Inverse:         st.Inverse,
		Display:         st.Display,
		Total:           st.Total,
		Energy:          st.Energy,
		CPUBusy:         st.CPUBusy,
		FPGABusy:        st.FPGABusy,
		Overlap:         st.Overlap,
		Latency:         st.Latency,
		PipelineOverlap: st.PipelineOverlap,
	}
}

// StreamTelemetry is one stream's accumulated record.
type StreamTelemetry struct {
	ID     string `json:"id"`
	Engine string `json:"engine"`
	W      int    `json:"w"`
	H      int    `json:"h"`
	Levels int    `json:"levels"`

	// DVFSPolicy is the stream's operating-point governor name and
	// DeadlineMS its per-frame deadline in modeled milliseconds (0 =
	// none).
	DVFSPolicy string  `json:"dvfs_policy"`
	DeadlineMS float64 `json:"deadline_ms,omitempty"`

	// Running is false once the stream finished or was stopped.
	Running bool `json:"running"`

	// Frame counters: Captured pairs produced by the source, Fused pairs
	// completed, Dropped pairs evicted by backpressure or shutdown.
	Captured   int64 `json:"captured"`
	Fused      int64 `json:"fused"`
	Dropped    int64 `json:"dropped"`
	QueueDepth int   `json:"queue_depth"`

	// Stages accumulates modeled stage times and energy over every fused
	// frame.
	Stages StageTimesJSON `json:"stages"`

	// EnergyPerFrame is Stages.Energy / Fused (modeled J per fused frame,
	// active spans only).
	EnergyPerFrame sim.Joules `json:"energy_per_frame_joules"`
	// EnergyPerPeriod is (Stages.Energy + SlackEnergy) / Fused: modeled J
	// per frame *period* for deadline streams, including the quiescent
	// power spent idling out each frame's deadline slack. Zero when the
	// stream has no deadline.
	EnergyPerPeriod sim.Joules `json:"energy_per_period_joules,omitempty"`
	// MeanPower is the board draw over the stream's modeled period:
	// (Stages.Energy + SlackEnergy) / (Stages.Total + SlackTime).
	MeanPower sim.Watts `json:"mean_power_watts"`
	// FusedPerSecond is the modeled throughput over the same period:
	// Fused / (Stages.Total + SlackTime). For streams without a deadline
	// both reduce to the active-span figures.
	FusedPerSecond float64 `json:"fused_per_second"`

	// Point is the operating point of the most recent frame; OpResidency
	// and OpFrames break fusion time and frame counts down by the
	// operating point the DVFS governor chose.
	Point       string              `json:"operating_point,omitempty"`
	OpResidency map[string]sim.Time `json:"op_residency_ps,omitempty"`
	OpFrames    map[string]int64    `json:"op_frames,omitempty"`

	// DeadlineMisses counts frames whose fusion overran the deadline;
	// SlackTime and SlackEnergy accumulate the idled-out remainder of the
	// frames that met it. DVFSBoost is how many points above the
	// governor's pick a deadline-paced stream has escalated after misses.
	DeadlineMisses int64      `json:"deadline_misses"`
	SlackTime      sim.Time   `json:"slack_ps"`
	SlackEnergy    sim.Joules `json:"slack_energy_joules"`
	DVFSBoost      int        `json:"dvfs_boost,omitempty"`

	// Routed row statistics from the adaptive engine, keyed by engine
	// name ("arm", "neon", "fpga").
	RoutedRows map[string]int64    `json:"routed_rows"`
	RoutedTime map[string]sim.Time `json:"routed_time_ps"`
	// FPGAShare is the fraction of routed kernel time spent on the wave
	// engine.
	FPGAShare float64 `json:"fpga_share"`
	// SplitRatio is the most recent frame's FPGA row share: the fraction
	// of its kernel rows that ran on the wave engine. Under a cooperative
	// split policy holding the lease it is the live partition; per-width
	// routing (the adaptive threshold) also yields fractional values, so
	// pair it with Stages.Overlap > 0 to detect genuinely concurrent
	// execution.
	SplitRatio float64 `json:"split_ratio"`

	// FPGAGrants and FPGADenials count this stream's lease outcomes —
	// per frame for sequential schedules, per wavelet stage (3x per
	// frame) for overlapped pipelined streams, whose arbitration really
	// is per stage.
	FPGAGrants  int64 `json:"fpga_grants"`
	FPGADenials int64 `json:"fpga_denials"`

	// Pipelined marks streams configured for the inter-frame pipelined
	// executor; PipelineDepth is the in-flight frame budget. Depth 1 is
	// the documented degenerate case: it runs the sequential schedule
	// bit-for-bit, keeps the per-frame lease, and records no stage
	// occupancy. PipelineInFlight is the time-averaged number of frames
	// in flight (Little's law: summed latency over summed periods; 1 for
	// sequential schedules), PipelineFill the first frame's completion
	// latency before overlap began, and StageOccupancy each station's
	// busy share of the stream's pipeline timeline — the bottleneck
	// station's share approaches 1 as the pipeline saturates.
	Pipelined        bool               `json:"pipelined,omitempty"`
	PipelineDepth    int                `json:"pipeline_depth,omitempty"`
	PipelineInFlight float64            `json:"pipeline_in_flight,omitempty"`
	PipelineFill     sim.Time           `json:"pipeline_fill_ps,omitempty"`
	StageOccupancy   map[string]float64 `json:"stage_occupancy,omitempty"`

	// Per-frame distributions (nil until the first frame fuses): latency
	// and deadline slack in modeled milliseconds, energy in modeled
	// millijoules, capture-queue depth at fuse admission. Each carries
	// p50/p95/p99 plus the full cumulative bucket vector; the latency and
	// energy summaries are deterministic for a bounded free-running stream
	// (they record modeled time, not wall time), the queue-depth one is
	// not (admission depth depends on host scheduling). SlackHist is nil
	// without a deadline.
	LatencyHist    *obs.Summary `json:"latency_hist,omitempty"`
	EnergyHist     *obs.Summary `json:"energy_hist,omitempty"`
	QueueDepthHist *obs.Summary `json:"queue_depth_hist,omitempty"`
	SlackHist      *obs.Summary `json:"slack_hist,omitempty"`

	// SLO is the stream's service-level-objective snapshot — health
	// score, per-SLI budgets, window burn rates and alert states — and
	// Degradation the closed-loop controller's current posture. Both nil
	// for streams without declared objectives.
	SLO         *slo.Status           `json:"slo,omitempty"`
	Degradation *DegradationTelemetry `json:"degradation,omitempty"`

	// Fusion is the operator-fusion pass's record — frames the planner
	// ran fused, intermediate planes and bytes its kernels never
	// materialized, plan-cache hit/miss counts — summed across the
	// stream's per-operating-point executors. Nil unless the stream was
	// submitted with KernelFusion.
	Fusion *FusionTelemetry `json:"kernel_fusion,omitempty"`

	// Pool is the stream's budgeted frame-store sub-pool telemetry: hit
	// rate, outstanding leases, high-water footprint. Nil for streams
	// predating the pool (never in practice).
	Pool *bufpool.Stats `json:"pool,omitempty"`

	// Err records a terminal stream error, if any.
	Err string `json:"error,omitempty"`
}

// FusionTelemetry is one stream's operator-fusion record: how many frames
// the per-shape planner ran fused, the intermediate complex planes (and
// their bytes) the fused kernels never materialized, and the plan cache's
// hit/miss counts. All counters are zero while the planner vetoes every
// presented shape (e.g. a non-tiling engine), which is itself signal: the
// stream asked for fusion and the planner proved it illegal.
type FusionTelemetry struct {
	Enabled      bool  `json:"enabled"`
	FusedFrames  int64 `json:"fused_frames"`
	PlanesElided int64 `json:"planes_elided"`
	BytesSaved   int64 `json:"bytes_saved"`
	PlanHits     int64 `json:"plan_hits"`
	PlanMisses   int64 `json:"plan_misses"`
}

// AggregateTelemetry is the farm-wide rollup.
type AggregateTelemetry struct {
	Streams  int   `json:"streams"`
	Active   int   `json:"active"`
	Captured int64 `json:"captured"`
	Fused    int64 `json:"fused"`
	Dropped  int64 `json:"dropped"`

	// Busy sums every stream's pipeline time; WallTime is the farm's
	// modeled makespan (streams run in parallel, so it is the max).
	Busy     sim.Time `json:"busy_ps"`
	WallTime sim.Time `json:"wall_ps"`

	Energy         sim.Joules `json:"energy_joules"`
	EnergyPerFrame sim.Joules `json:"energy_per_frame_joules"`
	// FusedPerSecond is modeled farm throughput: Fused / WallTime.
	FusedPerSecond float64 `json:"fused_per_second"`
	// AggregatePower is the sum of the still-running streams' mean
	// powers — the farm's current modeled board draw.
	AggregatePower sim.Watts `json:"aggregate_power_watts"`
	// DeadlineMisses and SlackEnergy roll up the deadline accounting of
	// every stream that has one.
	DeadlineMisses int64      `json:"deadline_misses"`
	SlackEnergy    sim.Joules `json:"slack_energy_joules"`

	// LatencyHist and EnergyHist merge every stream's per-frame latency
	// (ms) and energy (mJ) distributions bucket-for-bucket — the layouts
	// are shared — so farm-wide p50/p95/p99 are exact with respect to the
	// bucketing, not averages of per-stream quantiles. Nil until a frame
	// has fused.
	LatencyHist *obs.Summary `json:"latency_hist,omitempty"`
	EnergyHist  *obs.Summary `json:"energy_hist,omitempty"`
}

// DegradationTelemetry is one stream's degradation-controller posture.
type DegradationTelemetry struct {
	// Stage is the number of ladder rungs currently applied.
	Stage int `json:"stage"`
	// DepthDemotions, DVFSDownclock, QueueCap and ShedEvery are the
	// concrete levers as they stand: pipeline-depth steps below the
	// configured depth, operating-point steps below the governor's pick,
	// the live capture-queue bound, and the shed modulus (0/1 = off).
	DepthDemotions int `json:"depth_demotions,omitempty"`
	DVFSDownclock  int `json:"dvfs_downclock,omitempty"`
	QueueCap       int `json:"queue_cap"`
	ShedEvery      int `json:"shed_every,omitempty"`
	// ShedDropped counts frames dropped by the shed rung.
	ShedDropped int64 `json:"shed_dropped,omitempty"`
	// Actions counts every controller decision, keyed
	// "degrade:<action>" / "restore:<action>".
	Actions map[string]int64 `json:"actions,omitempty"`
}

// SLOTelemetry is the farm-wide SLO rollup.
type SLOTelemetry struct {
	// Health is the fused-frame-weighted mean of the per-stream health
	// scores (100 when no stream declares objectives yet).
	Health float64 `json:"health"`
	// Burning reports an active page alert anywhere in the farm — while
	// true, new-stream admission is refused (unless disabled by rules).
	Burning        bool `json:"burning"`
	StreamsWithSLO int  `json:"streams_with_slo"`
	// ActivePageAlerts and ActiveTicketAlerts count firing (stream, SLI)
	// alert pairs by severity.
	ActivePageAlerts   int `json:"active_page_alerts"`
	ActiveTicketAlerts int `json:"active_ticket_alerts"`
	// AdmissionRefused counts submissions refused while burning.
	AdmissionRefused int64 `json:"admission_refused_total"`
	// DegradeActions totals controller decisions across all streams.
	DegradeActions int64 `json:"degrade_actions_total"`
}

// MemoryTelemetry is the farm's runtime-memory snapshot: Go heap and GC
// figures next to the frame-store arena's ledger, so the zero-copy win is
// visible to operators (near-flat Mallocs and GC cycles under load once
// the pool is warm).
type MemoryTelemetry struct {
	HeapAllocBytes uint64 `json:"heap_alloc_bytes"`
	HeapSysBytes   uint64 `json:"heap_sys_bytes"`
	// Mallocs counts cumulative heap allocations of the whole process.
	Mallocs uint64 `json:"mallocs"`
	// GCCycles and GCPauseTotalNS summarize collector activity.
	GCCycles       uint32 `json:"gc_cycles"`
	GCPauseTotalNS uint64 `json:"gc_pause_total_ns"`
	// Pool is the shared frame-store arena's ledger and PoolHitRate its
	// fraction of acquires served without allocating (an explicit 1.0
	// before any acquire — vacuously perfect, never NaN or a misleading 0).
	Pool        bufpool.Stats `json:"pool"`
	PoolHitRate float64       `json:"pool_hit_rate"`
}

// Metrics is the full farm snapshot served by /metrics.
type Metrics struct {
	Streams   []StreamTelemetry  `json:"streams"`
	Aggregate AggregateTelemetry `json:"aggregate"`
	Governor  GovernorStats      `json:"governor"`
	Memory    MemoryTelemetry    `json:"memory"`
	// SLO is the farm-wide SLO rollup; nil when neither the farm config
	// nor any stream declares objectives.
	SLO *SLOTelemetry `json:"slo,omitempty"`
}

package farm

import (
	"fmt"
	"testing"

	"zynqfusion/internal/obs"
	"zynqfusion/internal/slo"
)

// TestSLOSoak is the CI -race soak: a six-stream farm where one stream is
// deliberately deadline-starved (a bound below any achievable frame time)
// while five healthy peers run with generous deadlines. The starved
// stream must page and draw degradation actions; the healthy streams'
// deadline-hit record must stay spotless — the closed loop punishes the
// offender, not the neighborhood.
func TestSLOSoak(t *testing.T) {
	fm := New(Config{})
	defer fm.Close()

	decl := &slo.SLO{DeadlineHitRatio: 0.95, WindowScale: 1e-3}
	starved := StreamConfig{
		ID: "starved", Seed: 99, W: 32, H: 24, Frames: 80,
		Pipelined: true, Depth: 4, DeadlineMS: 1, SLO: decl,
	}
	if _, err := fm.Submit(starved); err != nil {
		t.Fatal(err)
	}
	healthy := make([]*Stream, 0, 5)
	for i := 0; i < 5; i++ {
		cfg := StreamConfig{
			ID: fmt.Sprintf("ok%d", i), Seed: int64(i + 1), W: 32, H: 24,
			Frames: 40, DeadlineMS: 500, SLO: decl,
		}
		s, err := fm.Submit(cfg)
		if err != nil {
			t.Fatal(err)
		}
		healthy = append(healthy, s)
	}
	fm.Wait()

	var fired, degraded bool
	for _, ev := range fm.Events("starved", 0) {
		switch ev.Kind {
		case obs.EventAlertFire:
			fired = true
		case obs.EventDegrade:
			degraded = true
		}
	}
	if !fired {
		t.Fatal("starved stream never fired an alert")
	}
	if !degraded {
		t.Fatal("starved stream drew no degradation action")
	}

	for _, s := range healthy {
		st, ok := s.SLOStatus()
		if !ok {
			t.Fatalf("%s carries no SLO status", s.Telemetry().ID)
		}
		for _, si := range st.SLIs {
			if si.Name == slo.SLIDeadline && si.Bad != 0 {
				t.Fatalf("healthy stream %s missed %d deadlines under the starved neighbor",
					s.Telemetry().ID, si.Bad)
			}
		}
	}

	m := fm.Metrics()
	if m.SLO == nil || m.SLO.StreamsWithSLO != 6 {
		t.Fatalf("farm SLO rollup: %+v", m.SLO)
	}
	if m.SLO.DegradeActions < 1 {
		t.Fatalf("rollup lost the degradation actions: %+v", m.SLO)
	}
}

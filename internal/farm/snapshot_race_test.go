package farm

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

// TestSnapshotEncodeSurvivesStop hammers AppendSnapshotPGM from several
// goroutines while the stream fuses, is stopped mid-run, and finishes —
// the regression for the materialize-at-stream-end path: Stop must not
// return the display frame store to the pool while a PGM encode still
// reads it. The encode now pins the store with its own lease reference,
// so every returned encoding is a complete, well-formed PGM and the pool
// leak detector still reports zero outstanding leases after the stream
// ends. Run under -race this also proves the encode path is synchronized
// against the snapshot swap and the end-of-stream materialize.
func TestSnapshotEncodeSurvivesStop(t *testing.T) {
	fm := New(Config{})
	const w, h, frames = 32, 24, 60
	s, err := fm.Submit(StreamConfig{
		ID: "snap", W: w, H: h, Seed: 7,
		Frames: frames, QueueCap: frames,
	})
	if err != nil {
		t.Fatal(err)
	}

	header := fmt.Sprintf("P5\n%d %d\n255\n", w, h)
	wantLen := len(header) + w*h

	var wg sync.WaitGroup
	errCh := make(chan error, 4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var buf []byte
			for {
				select {
				case <-s.Done():
					return
				default:
				}
				var ok bool
				buf, ok = s.AppendSnapshotPGM(buf[:0])
				if !ok {
					continue // nothing fused yet
				}
				if len(buf) != wantLen || !bytes.HasPrefix(buf, []byte(header)) {
					errCh <- fmt.Errorf("malformed snapshot PGM: %d bytes, want %d", len(buf), wantLen)
					return
				}
			}
		}()
	}

	// Stop lands mid-run for any realistic host timing; if the stream
	// already finished, the encoders exercised the post-finish plain
	// snapshot instead, which is also part of the contract.
	for s.LastFusedSeq() < 3 {
		select {
		case <-s.Done():
		default:
			continue
		}
		break
	}
	s.Stop()
	<-s.Done()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	// The encoders' lease references are all dropped: the stream holds
	// zero pool bytes, exactly as if no snapshot had ever been served.
	if err := fm.Pool().CheckLeaks(); err != nil {
		t.Fatalf("pool leak after stop under concurrent snapshot encodes: %v", err)
	}

	// The post-stop snapshot stays servable (materialized plain copy).
	if buf, ok := s.AppendSnapshotPGM(nil); !ok || len(buf) != wantLen {
		t.Fatalf("post-stop snapshot: ok=%v len=%d, want %d", ok, len(buf), wantLen)
	}
	fm.Close()
}

// TestStreamResumeStartSeq pins the StartSeq contract migration depends
// on: a stream resumed at seq k produces exactly the frames k..Frames-1
// of the original run, so its final snapshot is bit-identical to the
// uninterrupted stream's.
func TestStreamResumeStartSeq(t *testing.T) {
	const frames, k = 9, 4
	run := func(start int64) ([]byte, StreamTelemetry) {
		fm := New(Config{})
		defer fm.Close()
		s, err := fm.Submit(StreamConfig{
			ID: "r", W: 32, H: 24, Seed: 11, Engine: "neon",
			Frames: frames, StartSeq: start, QueueCap: frames,
		})
		if err != nil {
			t.Fatal(err)
		}
		<-s.Done()
		pgm, ok := s.AppendSnapshotPGM(nil)
		if !ok {
			t.Fatalf("start=%d: no snapshot", start)
		}
		return pgm, s.Telemetry()
	}
	full, ft := run(0)
	resumed, rt := run(k)
	if !bytes.Equal(full, resumed) {
		t.Fatalf("resumed run's final frame differs from the full run's")
	}
	if ft.Fused != frames || rt.Fused != frames-k {
		t.Fatalf("fused = %d/%d, want %d/%d", ft.Fused, rt.Fused, frames, frames-k)
	}
}

package farm

import (
	"zynqfusion/internal/camera"
	"zynqfusion/internal/frame"
)

// Source produces visible/infrared frame pairs for one stream.
// Implementations need not be safe for concurrent use: a source is driven
// by exactly one producer goroutine.
type Source interface {
	// Next captures the next pair.
	Next() (vis, ir *frame.Frame, err error)
}

// SyntheticSource drives the repo's full modeled capture chain — the
// deterministic scene, the RGB webcam path and the BT.656 thermal path —
// exactly as zynqfusion.System does, one instance per stream.
type SyntheticSource struct {
	scene   *camera.Scene
	webcam  *camera.Webcam
	thermal *camera.Thermal
}

// NewSyntheticSource builds a synthetic capture chain at the given fusion
// geometry, seeded deterministically.
func NewSyntheticSource(w, h int, seed int64) (*SyntheticSource, error) {
	scene := camera.NewScene(w, h, seed)
	thermal, err := camera.NewThermal(scene, w, h)
	if err != nil {
		return nil, err
	}
	return &SyntheticSource{
		scene:   scene,
		webcam:  camera.NewWebcam(scene),
		thermal: thermal,
	}, nil
}

// Next implements Source.
func (s *SyntheticSource) Next() (*frame.Frame, *frame.Frame, error) {
	s.scene.Advance()
	vis := s.webcam.Capture()
	ir, err := s.thermal.Capture()
	if err != nil {
		return nil, nil, err
	}
	return vis, ir, nil
}

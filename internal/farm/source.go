package farm

import (
	"zynqfusion/internal/bufpool"
	"zynqfusion/internal/camera"
	"zynqfusion/internal/frame"
)

// Source produces visible/infrared frame pairs for one stream.
// Implementations need not be safe for concurrent use: a source is driven
// by exactly one producer goroutine. Pairs may be leased from a stream's
// buffer pool; the consumer releases them after fusion (and the queue
// releases evicted ones).
type Source interface {
	// Next captures the next pair.
	Next() (vis, ir *frame.Frame, err error)
}

// SyntheticSource drives the repo's full modeled capture chain — the
// deterministic scene, the RGB webcam path and the BT.656 thermal path —
// exactly as zynqfusion.System does, one instance per stream.
type SyntheticSource struct {
	scene   *camera.Scene
	webcam  *camera.Webcam
	thermal *camera.Thermal
}

// NewSyntheticSource builds a synthetic capture chain at the given fusion
// geometry, seeded deterministically. Captured frames are fresh plain
// allocations; NewSyntheticSourcePooled is the zero-copy form.
func NewSyntheticSource(w, h int, seed int64) (*SyntheticSource, error) {
	return NewSyntheticSourcePooled(w, h, seed, nil)
}

// NewSyntheticSourcePooled builds the capture chain with both cameras
// delivering leased frames from pool (pass nil for plain allocation): the
// camera writes into a pooled capture frame store and the fusion consumer
// releases it, so a steady-state stream captures without allocating —
// the VDMA frame-store handoff of the paper's system.
func NewSyntheticSourcePooled(w, h int, seed int64, pool *bufpool.Pool) (*SyntheticSource, error) {
	scene := camera.NewScene(w, h, seed)
	thermal, err := camera.NewThermal(scene, w, h)
	if err != nil {
		return nil, err
	}
	webcam := camera.NewWebcam(scene)
	if pool != nil {
		webcam.SetPool(pool)
		thermal.SetPool(pool)
	}
	return &SyntheticSource{
		scene:   scene,
		webcam:  webcam,
		thermal: thermal,
	}, nil
}

// Skip fast-forwards the capture chain past n frames without rendering
// them: the scene advances deterministically, so the next Next returns
// exactly the pair a fresh source would have produced as its (n+1)-th
// capture. Fleet migration uses it to resume a stream's deterministic
// scene at the handoff frame on the target board.
func (s *SyntheticSource) Skip(n int64) {
	for i := int64(0); i < n; i++ {
		s.scene.Advance()
	}
}

// Next implements Source.
func (s *SyntheticSource) Next() (*frame.Frame, *frame.Frame, error) {
	s.scene.Advance()
	vis, err := s.webcam.Capture()
	if err != nil {
		return nil, nil, err
	}
	ir, err := s.thermal.Capture()
	if err != nil {
		vis.Release()
		return nil, nil, err
	}
	return vis, ir, nil
}

// Package farm runs many independent capture→fuse→display streams over a
// pool of per-worker fusion pipelines while arbitrating the resources the
// modeled ZC702 board has only one of. Each stream owns its pipeline
// (engines are not safe for concurrent use), frames flow through bounded
// queues with a drop-oldest policy, and a global energy governor decides
// which stream may route rows to the single shared FPGA wave engine.
package farm

import (
	"sort"
	"sync"

	"zynqfusion/internal/pipeline"
	"zynqfusion/internal/power"
	"zynqfusion/internal/sim"
)

// Span is one exclusive occupation of the shared wave engine on the
// governor's global FPGA timeline. Spans are granted under a lease, so by
// construction they never overlap; tests verify that invariant
// independently.
type Span struct {
	Stream string   `json:"stream"`
	Start  sim.Time `json:"start"`
	End    sim.Time `json:"end"`
}

// GovernorStats is the arbiter's aggregate view.
type GovernorStats struct {
	// Grants and Denials count FPGA lease decisions. BudgetDenials is the
	// subset of denials caused by the power budget rather than contention.
	Grants        int64 `json:"grants"`
	Denials       int64 `json:"denials"`
	BudgetDenials int64 `json:"budget_denials"`
	// Holder is the stream currently holding the wave engine ("" if free).
	Holder string `json:"holder,omitempty"`
	// FPGABusy is the total busy time granted on the shared FPGA timeline.
	FPGABusy sim.Time `json:"fpga_busy"`
	// Energy and Busy are the farm-wide accumulated modeled energy and
	// per-stream busy time (summed across streams).
	Energy sim.Joules `json:"energy_joules"`
	Busy   sim.Time   `json:"busy"`
	// AggregatePower is the sum of the still-running streams' mean powers
	// — the modeled board draw with those streams running in parallel.
	AggregatePower sim.Watts `json:"aggregate_power_watts"`
	// PowerBudget is the configured cap (0 = unlimited).
	PowerBudget sim.Watts `json:"power_budget_watts"`
}

// Governor owns the two farm-wide concerns: exclusive access to the single
// modeled wave engine, and aggregate energy accounting against an optional
// power budget. All methods are safe for concurrent use.
type Governor struct {
	mu sync.Mutex

	// FPGA lease state.
	holder string
	clock  sim.Time // global modeled FPGA timeline; advances by granted busy spans
	spans  []Span

	grants        int64
	denials       int64
	budgetDenials int64

	// Per-stream accumulated accounting.
	budget   sim.Watts
	accounts map[string]*account

	// onLease observes every TryAcquire outcome (set before any stream
	// runs; called outside g.mu).
	onLease func(stream string, granted, budget bool)
}

type account struct {
	busy   sim.Time
	energy sim.Joules
	frames int64
	done   bool // stream finished: keep the ledger, stop counting its draw
}

// NewGovernor returns a governor with the given aggregate power budget
// (0 disables budget enforcement; contention arbitration always applies).
func NewGovernor(budget sim.Watts) *Governor {
	return &Governor{budget: budget, accounts: make(map[string]*account)}
}

// SetBudget rebinds the aggregate power budget (0 disables enforcement).
// Leases already granted are unaffected; the next TryAcquire sees the new
// cap. Fleet-wide arbitration adjusts per-board budgets through it as
// board demand shifts.
func (g *Governor) SetBudget(w sim.Watts) {
	g.mu.Lock()
	g.budget = w
	g.mu.Unlock()
}

// SetLeaseObserver installs a callback notified of every TryAcquire
// outcome (granted or denied, with the budget flag marking budget-caused
// denials). Install it before the farm starts streams; the observer runs
// outside the governor lock, on the acquiring stream's goroutine.
func (g *Governor) SetLeaseObserver(fn func(stream string, granted, budget bool)) {
	g.mu.Lock()
	g.onLease = fn
	g.mu.Unlock()
}

// TryAcquire attempts to take the FPGA lease for one fused frame. It fails
// when another stream holds the engine, or when granting it would push the
// aggregate modeled power past the budget (the wave engine adds
// power.FPGADelta while active).
func (g *Governor) TryAcquire(stream string) bool {
	g.mu.Lock()
	granted, overBudget := false, false
	switch {
	case g.holder != "":
		g.denials++
	case g.budget > 0 && g.aggregatePowerLocked()+power.FPGADelta > g.budget:
		g.denials++
		g.budgetDenials++
		overBudget = true
	default:
		g.holder = stream
		g.grants++
		granted = true
	}
	observe := g.onLease
	g.mu.Unlock()
	if observe != nil {
		observe(stream, granted, overBudget)
	}
	return granted
}

// Release returns the lease, recording the FPGA busy time the holder
// consumed as a span on the global timeline. Releasing a lease the caller
// does not hold panics: that is a farm logic error, not a runtime
// condition.
func (g *Governor) Release(stream string, busy sim.Time) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.holder != stream {
		panic("farm: Release of FPGA lease not held by " + stream)
	}
	g.holder = ""
	if busy > 0 {
		g.spans = append(g.spans, Span{Stream: stream, Start: g.clock, End: g.clock + busy})
		g.clock += busy
	}
}

// AddFrame accounts one fused frame's modeled cost against the stream.
func (g *Governor) AddFrame(stream string, st pipeline.StageTimes) {
	g.mu.Lock()
	defer g.mu.Unlock()
	a := g.accounts[stream]
	if a == nil {
		a = &account{}
		g.accounts[stream] = a
	}
	a.busy += st.Total
	a.energy += st.Energy
	a.frames++
}

// AddIdle accounts deadline slack: the board idles at the quiescent power
// for t while the stream waits out the remainder of a frame period. The
// span joins the stream's accounted period, so its mean power — and the
// aggregate draw the power budget checks — reflects the true board draw
// of a paced stream, not just its active spans. It returns the idle
// energy charged, so stream telemetry stays lock-step with the ledger.
func (g *Governor) AddIdle(stream string, t sim.Time) sim.Joules {
	if t <= 0 {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	a := g.accounts[stream]
	if a == nil {
		a = &account{}
		g.accounts[stream] = a
	}
	e := sim.EnergyOver(power.Idle, t)
	a.busy += t
	a.energy += e
	return e
}

// StreamDone marks a stream finished: its energy stays on the ledger but
// it no longer contributes to the aggregate power draw the budget checks.
func (g *Governor) StreamDone(stream string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if a := g.accounts[stream]; a != nil {
		a.done = true
	}
}

// aggregatePowerLocked sums mean powers of the streams still running.
// Live streams run in parallel on the modeled farm, so the board draw is
// additive; finished streams draw nothing.
func (g *Governor) aggregatePowerLocked() sim.Watts {
	var p sim.Watts
	for _, a := range g.accounts {
		if !a.done && a.busy > 0 {
			p += sim.Watts(float64(a.energy) / a.busy.Seconds())
		}
	}
	return p
}

// Totals returns the farm-wide accumulated busy time and energy, summed
// over streams. The busy total counts each stream's own pipeline time;
// because streams run in parallel the farm's modeled wall time is the max,
// which Metrics reports separately.
func (g *Governor) Totals() (sim.Time, sim.Joules) {
	g.mu.Lock()
	defer g.mu.Unlock()
	var t sim.Time
	var e sim.Joules
	for _, a := range g.accounts {
		t += a.busy
		e += a.energy
	}
	return t, e
}

// StreamEnergy returns the accumulated energy drained by one stream.
func (g *Governor) StreamEnergy(stream string) sim.Joules {
	g.mu.Lock()
	defer g.mu.Unlock()
	if a := g.accounts[stream]; a != nil {
		return a.energy
	}
	return 0
}

// Spans returns a copy of the granted FPGA spans in grant order.
func (g *Governor) Spans() []Span {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]Span, len(g.spans))
	copy(out, g.spans)
	return out
}

// Stats snapshots the governor.
func (g *Governor) Stats() GovernorStats {
	g.mu.Lock()
	defer g.mu.Unlock()
	var busy sim.Time
	var energy sim.Joules
	for _, a := range g.accounts {
		busy += a.busy
		energy += a.energy
	}
	return GovernorStats{
		Grants:         g.grants,
		Denials:        g.denials,
		BudgetDenials:  g.budgetDenials,
		Holder:         g.holder,
		FPGABusy:       g.clock,
		Energy:         energy,
		Busy:           busy,
		AggregatePower: g.aggregatePowerLocked(),
		PowerBudget:    g.budget,
	}
}

// EnergyByStream returns per-stream accumulated energy in stream-name
// order.
func (g *Governor) EnergyByStream() []power.LabeledEnergy {
	g.mu.Lock()
	defer g.mu.Unlock()
	names := make([]string, 0, len(g.accounts))
	for n := range g.accounts {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]power.LabeledEnergy, len(names))
	for i, n := range names {
		out[i] = power.LabeledEnergy{Label: n, E: g.accounts[n].energy}
	}
	return out
}

// gate is the per-stream sched.Gate handle: the stream worker flips it
// around each fused frame according to the lease it obtained.
type gate struct {
	mu   sync.Mutex
	held bool
}

// FPGAGranted implements sched.Gate.
func (s *gate) FPGAGranted() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.held
}

func (s *gate) set(v bool) {
	s.mu.Lock()
	s.held = v
	s.mu.Unlock()
}

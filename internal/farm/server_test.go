package farm

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"zynqfusion/internal/frame"
)

func postStream(t *testing.T, url string, cfg StreamConfig) StreamTelemetry {
	t.Helper()
	body, _ := json.Marshal(cfg)
	resp, err := http.Post(url+"/streams", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST /streams: status %d", resp.StatusCode)
	}
	var tele StreamTelemetry
	if err := json.NewDecoder(resp.Body).Decode(&tele); err != nil {
		t.Fatal(err)
	}
	return tele
}

func getJSON(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

// TestFusiondServes16ConcurrentStreams is the acceptance test: 16 streams
// submitted concurrently over HTTP, all fused end-to-end, with metrics,
// snapshots and stream lifecycle all exercised while workers run.
func TestFusiondServes16ConcurrentStreams(t *testing.T) {
	fm := New(Config{})
	defer fm.Close()
	srv := httptest.NewServer(NewServer(fm))
	defer srv.Close()

	const streams, frames = 16, 3
	var wg sync.WaitGroup
	for i := 0; i < streams; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tele := postStream(t, srv.URL, StreamConfig{
				ID: fmt.Sprintf("cam%02d", i), W: 32, H: 24,
				Seed: int64(i + 1), Frames: frames, QueueCap: frames,
			})
			if tele.ID != fmt.Sprintf("cam%02d", i) {
				t.Errorf("submitted id %q", tele.ID)
			}
		}(i)
	}
	wg.Wait()

	// Poll /metrics until every stream finished.
	deadline := time.Now().Add(30 * time.Second)
	var m Metrics
	for {
		if code := getJSON(t, srv.URL+"/metrics", &m); code != http.StatusOK {
			t.Fatalf("/metrics status %d", code)
		}
		if m.Aggregate.Streams == streams && m.Aggregate.Active == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("streams never finished: %+v", m.Aggregate)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if m.Aggregate.Fused != streams*frames {
		t.Fatalf("fused = %d, want %d", m.Aggregate.Fused, streams*frames)
	}
	if m.Aggregate.Energy <= 0 || m.Aggregate.EnergyPerFrame <= 0 {
		t.Fatalf("metrics missing energy: %+v", m.Aggregate)
	}
	if m.Governor.Grants == 0 {
		t.Fatal("governor never granted the FPGA")
	}

	// Per-stream endpoints.
	var tele StreamTelemetry
	if code := getJSON(t, srv.URL+"/streams/cam00", &tele); code != http.StatusOK {
		t.Fatalf("GET stream status %d", code)
	}
	if tele.Fused != frames || tele.RoutedRows == nil {
		t.Fatalf("stream telemetry incomplete: %+v", tele)
	}

	// Snapshot round-trips as a valid PGM at the stream geometry.
	resp, err := http.Get(srv.URL + "/streams/cam00/snapshot.pgm")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot status %d", resp.StatusCode)
	}
	img, err := frame.ReadPGM(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if img.W != 32 || img.H != 24 {
		t.Fatalf("snapshot %dx%d, want 32x24", img.W, img.H)
	}

	// Listing covers all streams.
	var list []StreamTelemetry
	if code := getJSON(t, srv.URL+"/streams", &list); code != http.StatusOK || len(list) != streams {
		t.Fatalf("GET /streams: code %d, %d entries", code, len(list))
	}
}

func TestFusiondLifecycleAndErrors(t *testing.T) {
	fm := New(Config{})
	defer fm.Close()
	srv := httptest.NewServer(NewServer(fm))
	defer srv.Close()

	if code := getJSON(t, srv.URL+"/healthz", nil); code != http.StatusOK {
		t.Fatalf("healthz status %d", code)
	}

	// Unknown stream endpoints 404.
	if code := getJSON(t, srv.URL+"/streams/nope", nil); code != http.StatusNotFound {
		t.Fatalf("missing stream status %d", code)
	}
	if code := getJSON(t, srv.URL+"/streams/nope/snapshot.pgm", nil); code != http.StatusNotFound {
		t.Fatalf("missing snapshot status %d", code)
	}

	// Invalid config 400s.
	resp, err := http.Post(srv.URL+"/streams", "application/json",
		bytes.NewReader([]byte(`{"engine":"gpu"}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad engine status %d", resp.StatusCode)
	}

	// Submit an unbounded stream, then DELETE stops it.
	postStream(t, srv.URL, StreamConfig{ID: "live", W: 32, H: 24, IntervalMS: 1})
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/streams/live", nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var tele StreamTelemetry
	if err := json.NewDecoder(dresp.Body).Decode(&tele); err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK || tele.Running {
		t.Fatalf("DELETE: status %d, running=%v", dresp.StatusCode, tele.Running)
	}

	// Duplicate id conflicts.
	body, _ := json.Marshal(StreamConfig{ID: "live", W: 32, H: 24, Frames: 1})
	cresp, err := http.Post(srv.URL+"/streams", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	cresp.Body.Close()
	if cresp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate id status %d", cresp.StatusCode)
	}
}

package farm

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"zynqfusion/internal/obs"
)

// runObsFarm runs a small farm with one stream per interesting telemetry
// shape — sequential adaptive with a deadline (slack histogram), pipelined
// cooperative split (stage-overlap trace), NEON-only (no FPGA series) —
// to completion and returns it still open for scraping.
func runObsFarm(t *testing.T) *Farm {
	t.Helper()
	fm := New(Config{})
	t.Cleanup(fm.Close)
	cfgs := []StreamConfig{
		{ID: "seq", Engine: "adaptive", Seed: 1, W: 32, H: 24, Frames: 4, QueueCap: 4, DeadlineMS: 1000},
		{ID: "pipe", Engine: "split-oracle", Seed: 2, W: 32, H: 24, Frames: 4, QueueCap: 4, Pipelined: true, Depth: 3},
		{ID: "neon", Engine: "neon", Seed: 3, W: 32, H: 24, Frames: 4, QueueCap: 4},
	}
	for _, cfg := range cfgs {
		if _, err := fm.Submit(cfg); err != nil {
			t.Fatal(err)
		}
	}
	fm.Wait()
	return fm
}

// --- Prometheus text format 0.0.4: strict parse + lint -------------------

var (
	promNameRe  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	promLabelRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

type promSample struct {
	name   string
	labels map[string]string
	value  float64
}

// series renders the sample's identity (name + canonically ordered label
// set) for duplicate detection.
func (s promSample) series() string {
	keys := make([]string, 0, len(s.labels))
	for k := range s.labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(s.name)
	for _, k := range keys {
		fmt.Fprintf(&b, `,%s=%q`, k, s.labels[k])
	}
	return b.String()
}

// parsePromText is a strict parser for the Prometheus text exposition
// format 0.0.4. Any malformation — a sample without a preceding TYPE,
// duplicate HELP/TYPE, an invalid metric or label name, an unparsable
// value, a duplicate series — fails the test.
func parsePromText(t *testing.T, text string) (map[string]string, []promSample) {
	t.Helper()
	types := map[string]string{} // family -> counter|gauge|histogram
	help := map[string]bool{}
	sampled := map[string]bool{} // families that have emitted samples
	seen := map[string]bool{}    // duplicate-series detection
	var samples []promSample

	family := func(name string) string {
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			base, ok := strings.CutSuffix(name, suf)
			if ok && types[base] == "histogram" {
				return base
			}
		}
		return name
	}

	for ln, line := range strings.Split(text, "\n") {
		ln++
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			name, _, ok := strings.Cut(rest, " ")
			if !ok || !promNameRe.MatchString(name) {
				t.Fatalf("line %d: malformed HELP: %q", ln, line)
			}
			if help[name] {
				t.Fatalf("line %d: duplicate HELP for %s", ln, name)
			}
			help[name] = true
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, typ, ok := strings.Cut(rest, " ")
			if !ok || !promNameRe.MatchString(name) {
				t.Fatalf("line %d: malformed TYPE: %q", ln, line)
			}
			switch typ {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("line %d: unknown type %q for %s", ln, typ, name)
			}
			if _, dup := types[name]; dup {
				t.Fatalf("line %d: duplicate TYPE for %s", ln, name)
			}
			if sampled[name] {
				t.Fatalf("line %d: TYPE for %s after its samples", ln, name)
			}
			types[name] = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // comment
		}

		// Sample line: name[{labels}] value
		s := promSample{labels: map[string]string{}}
		rest := line
		if i := strings.IndexAny(rest, "{ "); i < 0 {
			t.Fatalf("line %d: malformed sample: %q", ln, line)
		} else {
			s.name = rest[:i]
			rest = rest[i:]
		}
		if !promNameRe.MatchString(s.name) {
			t.Fatalf("line %d: invalid metric name %q", ln, s.name)
		}
		if strings.HasPrefix(rest, "{") {
			end := strings.Index(rest, "}")
			if end < 0 {
				t.Fatalf("line %d: unterminated label set: %q", ln, line)
			}
			for _, pair := range strings.Split(rest[1:end], ",") {
				k, v, ok := strings.Cut(pair, "=")
				if !ok || !promLabelRe.MatchString(k) {
					t.Fatalf("line %d: malformed label %q", ln, pair)
				}
				unq, err := strconv.Unquote(v)
				if err != nil {
					t.Fatalf("line %d: label value %s not quoted: %v", ln, v, err)
				}
				if _, dup := s.labels[k]; dup {
					t.Fatalf("line %d: duplicate label %q", ln, k)
				}
				s.labels[k] = unq
			}
			rest = rest[end+1:]
		}
		val := strings.TrimSpace(rest)
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			t.Fatalf("line %d: bad value %q: %v", ln, val, err)
		}
		s.value = f

		fam := family(s.name)
		if _, ok := types[fam]; !ok {
			t.Fatalf("line %d: sample %s has no preceding TYPE", ln, s.name)
		}
		if !help[fam] {
			t.Fatalf("line %d: family %s has no HELP", ln, fam)
		}
		sampled[fam] = true
		if key := s.series(); seen[key] {
			t.Fatalf("line %d: duplicate series %s", ln, key)
		} else {
			seen[key] = true
		}
		samples = append(samples, s)
	}
	return types, samples
}

// lintPromHistograms checks every exported histogram family for text-format
// coherence: cumulative non-decreasing buckets ending in le="+Inf", whose
// count equals the family's _count, plus a _sum for the same label set.
func lintPromHistograms(t *testing.T, types map[string]string, samples []promSample) {
	t.Helper()
	strip := func(s promSample, drop string) string {
		cp := promSample{name: "", labels: map[string]string{}}
		for k, v := range s.labels {
			if k != drop {
				cp.labels[k] = v
			}
		}
		return cp.series()
	}
	for fam, typ := range types {
		if typ != "histogram" {
			continue
		}
		type group struct {
			les    []float64
			counts []float64
			sum    bool
			count  float64
			hasCnt bool
		}
		groups := map[string]*group{}
		get := func(key string) *group {
			g, ok := groups[key]
			if !ok {
				g = &group{}
				groups[key] = g
			}
			return g
		}
		for _, s := range samples {
			switch s.name {
			case fam + "_bucket":
				le, ok := s.labels["le"]
				if !ok {
					t.Fatalf("%s_bucket without le label", fam)
				}
				f, err := strconv.ParseFloat(le, 64)
				if err != nil {
					t.Fatalf("%s_bucket: bad le %q", fam, le)
				}
				g := get(strip(s, "le"))
				g.les = append(g.les, f)
				g.counts = append(g.counts, s.value)
			case fam + "_sum":
				get(strip(s, "")).sum = true
			case fam + "_count":
				g := get(strip(s, ""))
				g.count, g.hasCnt = s.value, true
			}
		}
		if len(groups) == 0 {
			t.Fatalf("histogram family %s exported no series", fam)
		}
		for key, g := range groups {
			if !g.sum || !g.hasCnt {
				t.Fatalf("%s{%s}: missing _sum or _count", fam, key)
			}
			if len(g.les) == 0 {
				t.Fatalf("%s{%s}: no buckets", fam, key)
			}
			for i := 1; i < len(g.les); i++ {
				if g.les[i] <= g.les[i-1] {
					t.Fatalf("%s{%s}: le not ascending at %v", fam, key, g.les[i])
				}
				if g.counts[i] < g.counts[i-1] {
					t.Fatalf("%s{%s}: bucket counts not cumulative", fam, key)
				}
			}
			if last := g.les[len(g.les)-1]; !math.IsInf(last, 1) {
				t.Fatalf("%s{%s}: last bucket le=%v, want +Inf", fam, key, last)
			}
			if got := g.counts[len(g.counts)-1]; got != g.count {
				t.Fatalf("%s{%s}: +Inf bucket %v != _count %v", fam, key, got, g.count)
			}
		}
	}
}

// TestPrometheusTextFormat round-trips a real farm snapshot through a
// strict text-format parser: every family has HELP and TYPE, every name
// and label is well-formed, no series repeats, and every histogram's
// buckets are coherent with its _sum/_count.
func TestPrometheusTextFormat(t *testing.T) {
	fm := runObsFarm(t)
	var buf strings.Builder
	if err := WritePrometheus(&buf, fm.Metrics()); err != nil {
		t.Fatal(err)
	}
	types, samples := parsePromText(t, buf.String())
	lintPromHistograms(t, types, samples)

	// Spot-check the layer's load-bearing series and labels.
	find := func(name string, labels map[string]string) *promSample {
		for i := range samples {
			s := &samples[i]
			if s.name != name {
				continue
			}
			match := true
			for k, v := range labels {
				if s.labels[k] != v {
					match = false
					break
				}
			}
			if match {
				return s
			}
		}
		return nil
	}
	if s := find("farm_stream_fused_total", map[string]string{"stream": "seq"}); s == nil || s.value != 4 {
		t.Fatalf("farm_stream_fused_total{stream=seq} = %+v, want 4", s)
	}
	if s := find("farm_stream_stage_time_ps", map[string]string{"stream": "pipe", "stage": "fuse"}); s == nil || s.value <= 0 {
		t.Fatalf("stage-labeled series missing: %+v", s)
	}
	if s := find("farm_stream_routed_rows_total", map[string]string{"stream": "neon", "engine": "neon"}); s == nil || s.value <= 0 {
		t.Fatalf("engine-labeled series missing: %+v", s)
	}
	if s := find("farm_stream_op_frames_total", map[string]string{"stream": "seq", "point": "533MHz"}); s == nil || s.value != 4 {
		t.Fatalf("point-labeled series missing: %+v", s)
	}
	if s := find("farm_stream_latency_ms_count", map[string]string{"stream": "seq"}); s == nil || s.value != 4 {
		t.Fatalf("latency histogram count = %+v, want 4", s)
	}
	if s := find("farm_stream_slack_ms_count", map[string]string{"stream": "seq"}); s == nil || s.value != 4 {
		t.Fatalf("slack histogram missing for deadline stream: %+v", s)
	}
	if s := find("farm_pool_hit_rate", nil); s == nil || s.value <= 0 || s.value > 1 {
		t.Fatalf("farm_pool_hit_rate = %+v, want (0,1]", s)
	}
}

// --- /trace: well-formed Chrome trace JSON with monotone tracks ----------

type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s"`
	Args map[string]any `json:"args"`
}

// TestTraceEndpoint validates /trace output as Chrome trace_event JSON:
// the container parses, every event carries a known phase, metadata names
// every process and thread before use, and within each (pid, tid) track
// the duration spans are monotone and non-overlapping — a station
// processes one frame at a time, so any overlap is a recorder bug.
func TestTraceEndpoint(t *testing.T) {
	fm := runObsFarm(t)
	srv := httptest.NewServer(NewServer(fm))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/trace?frames=1000")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/trace status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("/trace content-type %q", ct)
	}
	var file struct {
		TraceEvents     []chromeEvent `json:"traceEvents"`
		DisplayTimeUnit string        `json:"displayTimeUnit"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&file); err != nil {
		t.Fatalf("trace JSON: %v", err)
	}
	if len(file.TraceEvents) == 0 {
		t.Fatal("empty trace")
	}

	type track struct{ pid, tid int }
	procNamed := map[int]string{}
	trackNamed := map[track]string{}
	spans := map[track][]chromeEvent{}
	for _, ev := range file.TraceEvents {
		switch ev.Ph {
		case "M":
			name, _ := ev.Args["name"].(string)
			switch ev.Name {
			case "process_name":
				procNamed[ev.Pid] = name
			case "thread_name":
				trackNamed[track{ev.Pid, ev.Tid}] = name
			default:
				t.Fatalf("unknown metadata event %q", ev.Name)
			}
		case "X":
			if ev.Dur < 0 || ev.TS < 0 {
				t.Fatalf("negative span: %+v", ev)
			}
			k := track{ev.Pid, ev.Tid}
			spans[k] = append(spans[k], ev)
		case "C":
			if _, ok := ev.Args["value"]; !ok {
				t.Fatalf("counter without value: %+v", ev)
			}
		case "i":
			if ev.S != "t" {
				t.Fatalf("instant without thread scope: %+v", ev)
			}
		default:
			t.Fatalf("unknown phase %q", ev.Ph)
		}
	}

	// Every referenced process and track is named, and the farm's three
	// streams plus the governor's lease timeline all appear.
	for _, ev := range file.TraceEvents {
		if ev.Ph == "M" {
			continue
		}
		if _, ok := procNamed[ev.Pid]; !ok {
			t.Fatalf("event on unnamed pid %d", ev.Pid)
		}
		if _, ok := trackNamed[track{ev.Pid, ev.Tid}]; !ok {
			t.Fatalf("event on unnamed track %d/%d", ev.Pid, ev.Tid)
		}
	}
	want := map[string]bool{"seq": false, "pipe": false, "neon": false, "fpga-lease": false}
	for _, name := range procNamed {
		if _, ok := want[name]; ok {
			want[name] = true
		}
	}
	for name, ok := range want {
		if !ok {
			t.Fatalf("process %q missing from trace", name)
		}
	}

	// Monotone, non-overlapping spans per track.
	const eps = 1e-6
	for k, evs := range spans {
		sort.SliceStable(evs, func(i, j int) bool { return evs[i].TS < evs[j].TS })
		for i := 1; i < len(evs); i++ {
			prevEnd := evs[i-1].TS + evs[i-1].Dur
			if evs[i].TS+eps < prevEnd {
				t.Fatalf("track %s/%s: span %q at %v overlaps previous ending %v",
					procNamed[k.pid], trackNamed[k], evs[i].Name, evs[i].TS, prevEnd)
			}
		}
	}

	// Bad parameters are rejected, unknown streams 404.
	if resp, err := http.Get(srv.URL + "/trace?frames=x"); err != nil {
		t.Fatal(err)
	} else {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("bad frames: status %d", resp.StatusCode)
		}
	}
	if resp, err := http.Get(srv.URL + "/trace?stream=nope"); err != nil {
		t.Fatal(err)
	} else {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("unknown stream: status %d", resp.StatusCode)
		}
	}
}

// --- Determinism: percentiles repeat across identical runs ---------------

// TestHistogramDeterminism runs two identical bounded farms and requires
// bit-equal latency and energy summaries: the histograms record modeled
// time only, so for a contention-free configuration (NEON streams never
// touch the shared-FPGA governor) the distributions must repeat exactly.
// Queue-depth histograms are wall-clock-scheduling dependent and are
// deliberately excluded.
func TestHistogramDeterminism(t *testing.T) {
	run := func() map[string]StreamTelemetry {
		fm := New(Config{})
		defer fm.Close()
		for i := 0; i < 2; i++ {
			cfg := StreamConfig{
				ID: fmt.Sprintf("s%d", i), Engine: "neon", Seed: int64(i + 1),
				W: 32, H: 24, Frames: 6, QueueCap: 6, DeadlineMS: 1000,
			}
			if _, err := fm.Submit(cfg); err != nil {
				t.Fatal(err)
			}
		}
		fm.Wait()
		out := map[string]StreamTelemetry{}
		for _, s := range fm.Metrics().Streams {
			out[s.ID] = s
		}
		return out
	}
	a, b := run(), run()
	for id, ta := range a {
		tb := b[id]
		for _, h := range []struct {
			name string
			a, b *obs.Summary
		}{
			{"latency", ta.LatencyHist, tb.LatencyHist},
			{"energy", ta.EnergyHist, tb.EnergyHist},
			{"slack", ta.SlackHist, tb.SlackHist},
		} {
			if h.a == nil || h.b == nil {
				t.Fatalf("%s/%s: summary missing (%v, %v)", id, h.name, h.a, h.b)
			}
			if h.a.Count == 0 {
				t.Fatalf("%s/%s: empty summary", id, h.name)
			}
			if h.a.P50 != h.b.P50 || h.a.P95 != h.b.P95 || h.a.P99 != h.b.P99 ||
				h.a.Count != h.b.Count || h.a.Sum != h.b.Sum ||
				h.a.Min != h.b.Min || h.a.Max != h.b.Max {
				t.Fatalf("%s/%s: summaries differ across identical runs:\n%+v\n%+v",
					id, h.name, *h.a, *h.b)
			}
		}
	}
}

// --- Smoke: scrape the observability surface of a live 4-stream farm -----

// TestObservabilitySmoke is the CI scrape: a 4-stream farm served over
// HTTP answers /metrics?format=prometheus with well-formed text and
// /events with the streams' lifecycle events.
func TestObservabilitySmoke(t *testing.T) {
	fm := New(Config{})
	defer fm.Close()
	srv := httptest.NewServer(NewServer(fm))
	defer srv.Close()

	for i := 0; i < 4; i++ {
		cfg := StreamConfig{
			ID: fmt.Sprintf("cam%d", i), Seed: int64(i + 1),
			W: 32, H: 24, Frames: 3, QueueCap: 3,
		}
		if _, err := fm.Submit(cfg); err != nil {
			t.Fatal(err)
		}
	}
	fm.Wait()

	resp, err := http.Get(srv.URL + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics?format=prometheus status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("prometheus content-type %q", ct)
	}
	types, samples := parsePromText(t, string(body))
	lintPromHistograms(t, types, samples)
	if !strings.Contains(string(body), `farm_stream_fused_total{stream="cam0"} 3`) {
		t.Fatal("scrape missing cam0 fused counter")
	}

	var events []obs.Event
	if code := getJSON(t, srv.URL+"/events", &events); code != http.StatusOK {
		t.Fatalf("/events status %d", code)
	}
	byKind := map[string]int{}
	for i, ev := range events {
		byKind[ev.Kind]++
		if i > 0 && events[i].Seq <= events[i-1].Seq {
			t.Fatalf("event seq not increasing: %d then %d", events[i-1].Seq, events[i].Seq)
		}
	}
	if byKind[obs.EventStreamStart] != 4 || byKind[obs.EventStreamStop] != 4 {
		t.Fatalf("lifecycle events = %v, want 4 starts and 4 stops", byKind)
	}

	var one []obs.Event
	if code := getJSON(t, srv.URL+"/events?stream=cam1&n=2", &one); code != http.StatusOK {
		t.Fatalf("/events?stream status %d", code)
	}
	if len(one) != 2 {
		t.Fatalf("n=2 returned %d events", len(one))
	}
	for _, ev := range one {
		if ev.Stream != "cam1" {
			t.Fatalf("stream filter leaked event from %q", ev.Stream)
		}
	}
	if code := getJSON(t, srv.URL+"/events?n=x", nil); code != http.StatusBadRequest {
		t.Fatalf("/events?n=x status %d", code)
	}
}

// --- Allocation guard: the hot path stays allocation-free ----------------

// TestAllocGuardFarmObservability pins the farm's per-frame fusion path —
// with latency/energy/queue/slack histograms, the trace recorder and the
// event ring all live — at the repo-wide steady-state budget of <= 2
// allocations per frame. A histogram Observe, ring Push or trace Span
// that starts allocating shows up here as a hard CI failure.
func TestAllocGuardFarmObservability(t *testing.T) {
	cfg := StreamConfig{
		ID: "alloc", Engine: "adaptive", Seed: 3,
		W: 32, H: 24, Frames: 1, DeadlineMS: 1000,
	}
	s, err := newStream(cfg, NewGovernor(0), nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	// One captured pair, retained across frames: the guard measures the
	// fusion path (fuseOne and everything it feeds — histograms, trace
	// ring, event ring, governor ledgers), not the capture source.
	vis, ir, err := s.source.Next()
	if err != nil {
		t.Fatal(err)
	}
	var seq int64
	frame := func() {
		s.fuseOne(framePair{vis: vis.Retain(), ir: ir.Retain(), seq: seq})
		seq++
	}
	for i := 0; i < 8; i++ {
		frame() // warm the op fuser, pool leases and telemetry maps
	}
	if avg := testing.AllocsPerRun(100, frame); avg > 2 {
		t.Fatalf("fusion hot path with observability enabled: %.1f allocs/frame, budget 2", avg)
	}
}

package farm

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"sync"

	"zynqfusion/internal/dvfs"
	"zynqfusion/internal/obs"
	"zynqfusion/internal/sim"
	"zynqfusion/internal/slo"
)

// NewServer returns the fusiond HTTP handler over a farm.
//
//	GET    /healthz                   liveness/readiness probe (503 while draining)
//	GET    /metrics                   full farm Metrics JSON
//	GET    /metrics?format=prometheus the same snapshot in Prometheus text format
//	GET    /trace?stream=ID&frames=N  Chrome trace_event JSON (Perfetto-loadable)
//	GET    /events?stream=ID&n=N      structured event log (drops, misses, denials…)
//	GET    /events?since=SEQ&n=N      cursor pagination: oldest events after SEQ,
//	                                  wrapped as {"events": […], "next_seq": N}
//	GET    /slo                       per-stream SLO status + farm rollup
//	GET    /alerts                    active burn-rate alerts + recent alert events
//	GET    /dvfs                      PS operating points and governor names
//	POST   /streams                   submit a stream (StreamConfig JSON body)
//	GET    /streams                   list stream telemetry
//	GET    /streams/{id}              one stream's telemetry
//	DELETE /streams/{id}              stop a stream
//	GET    /streams/{id}/snapshot.pgm latest fused frame as binary PGM
func NewServer(f *Farm) http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		// Liveness and readiness in one probe: a draining farm answers but
		// refuses new work, so load balancers stop routing to it while
		// in-flight streams finish.
		if f.Closed() {
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte("draining\n"))
			return
		}
		w.Write([]byte("ok\n"))
	})

	mux.HandleFunc("GET /dvfs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{
			"points":  dvfs.List(),
			"nominal": dvfs.Nominal().Name,
			"policies": []string{
				dvfs.PolicyNominal, dvfs.PolicyRaceToIdle, dvfs.PolicyDeadlinePace,
			},
		})
	})

	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("format") == "prometheus" {
			// Render to a buffer first so an encoding error (which the
			// linting encoder treats as a bug) can still become a 500.
			var buf bytes.Buffer
			if err := WritePrometheus(&buf, f.Metrics()); err != nil {
				writeError(w, http.StatusInternalServerError, err.Error())
				return
			}
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			w.Write(buf.Bytes())
			return
		}
		writeJSON(w, http.StatusOK, f.Metrics())
	})

	mux.HandleFunc("GET /trace", func(w http.ResponseWriter, r *http.Request) {
		frames := 64
		if v := r.URL.Query().Get("frames"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil {
				writeError(w, http.StatusBadRequest, "bad frames: "+v)
				return
			}
			frames = n
		}
		views, ok := f.Trace(r.URL.Query().Get("stream"), frames)
		if !ok {
			writeError(w, http.StatusNotFound, "no such stream")
			return
		}
		w.Header().Set("Content-Type", "application/json")
		obs.WriteTrace(w, views)
	})

	mux.HandleFunc("GET /events", func(w http.ResponseWriter, r *http.Request) {
		n := 100
		if v := r.URL.Query().Get("n"); v != "" {
			parsed, err := strconv.Atoi(v)
			if err != nil {
				writeError(w, http.StatusBadRequest, "bad n: "+v)
				return
			}
			n = parsed
		}
		// With ?since=SEQ the endpoint switches to forward pagination:
		// the n *oldest* retained events after the cursor, plus the next
		// cursor, so a poller walking next_seq never drops or double-reads
		// an event between scrapes. Without it, the classic "n most
		// recent" bare array is preserved for dashboards.
		if v := r.URL.Query().Get("since"); v != "" {
			since, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				writeError(w, http.StatusBadRequest, "bad since: "+v)
				return
			}
			evs, next := f.EventsSince(r.URL.Query().Get("stream"), since, n)
			if evs == nil {
				evs = []obs.Event{}
			}
			writeJSON(w, http.StatusOK, struct {
				Events  []obs.Event `json:"events"`
				NextSeq uint64      `json:"next_seq"`
			}{evs, next})
			return
		}
		evs := f.Events(r.URL.Query().Get("stream"), n)
		if evs == nil {
			evs = []obs.Event{}
		}
		writeJSON(w, http.StatusOK, evs)
	})

	mux.HandleFunc("GET /slo", func(w http.ResponseWriter, r *http.Request) {
		m := f.Metrics()
		type streamSLO struct {
			ID          string                `json:"id"`
			SLO         *slo.Status           `json:"slo"`
			Degradation *DegradationTelemetry `json:"degradation,omitempty"`
		}
		out := struct {
			Farm    *SLOTelemetry `json:"farm"`
			Streams []streamSLO   `json:"streams"`
		}{Farm: m.SLO, Streams: []streamSLO{}}
		for _, t := range m.Streams {
			if t.SLO == nil {
				continue
			}
			out.Streams = append(out.Streams, streamSLO{t.ID, t.SLO, t.Degradation})
		}
		writeJSON(w, http.StatusOK, out)
	})

	mux.HandleFunc("GET /alerts", func(w http.ResponseWriter, r *http.Request) {
		n := 100
		if v := r.URL.Query().Get("n"); v != "" {
			parsed, err := strconv.Atoi(v)
			if err != nil {
				writeError(w, http.StatusBadRequest, "bad n: "+v)
				return
			}
			n = parsed
		}
		type activeAlert struct {
			Stream    string   `json:"stream"`
			SLI       string   `json:"sli"`
			Severity  string   `json:"severity"`
			Threshold float64  `json:"burn_threshold"`
			SincePS   sim.Time `json:"since_ps"`
		}
		out := struct {
			Active []activeAlert `json:"active"`
			Recent []obs.Event   `json:"recent"`
		}{Active: []activeAlert{}, Recent: []obs.Event{}}
		for _, t := range f.Metrics().Streams {
			if t.SLO == nil {
				continue
			}
			for _, si := range t.SLO.SLIs {
				for _, al := range si.Alerts {
					if al.Active {
						out.Active = append(out.Active, activeAlert{
							Stream: t.ID, SLI: si.Name, Severity: al.Severity,
							Threshold: al.Threshold, SincePS: al.SincePS,
						})
					}
				}
			}
		}
		// Recent alert history: the fire/clear edges still retained in the
		// event rings, newest-n across the whole farm.
		for _, ev := range f.Events("", 0) {
			if ev.Kind == obs.EventAlertFire || ev.Kind == obs.EventAlertClear {
				out.Recent = append(out.Recent, ev)
			}
		}
		if n > 0 && len(out.Recent) > n {
			out.Recent = out.Recent[len(out.Recent)-n:]
		}
		writeJSON(w, http.StatusOK, out)
	})

	mux.HandleFunc("POST /streams", func(w http.ResponseWriter, r *http.Request) {
		var cfg StreamConfig
		if err := json.NewDecoder(r.Body).Decode(&cfg); err != nil {
			writeError(w, http.StatusBadRequest, "bad stream config: "+err.Error())
			return
		}
		s, err := f.Submit(cfg)
		if err != nil {
			status := http.StatusBadRequest
			switch {
			case errors.Is(err, ErrClosed), errors.Is(err, ErrSLOBurning):
				status = http.StatusServiceUnavailable
			case errors.Is(err, ErrDuplicate):
				status = http.StatusConflict
			}
			writeError(w, status, err.Error())
			return
		}
		writeJSON(w, http.StatusCreated, s.Telemetry())
	})

	mux.HandleFunc("GET /streams", func(w http.ResponseWriter, r *http.Request) {
		m := f.Metrics()
		writeJSON(w, http.StatusOK, m.Streams)
	})

	mux.HandleFunc("GET /streams/{id}", func(w http.ResponseWriter, r *http.Request) {
		s, ok := f.Get(r.PathValue("id"))
		if !ok {
			writeError(w, http.StatusNotFound, "no such stream")
			return
		}
		writeJSON(w, http.StatusOK, s.Telemetry())
	})

	mux.HandleFunc("DELETE /streams/{id}", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		if err := f.Stop(id); err != nil {
			writeError(w, http.StatusNotFound, err.Error())
			return
		}
		s, _ := f.Get(id)
		writeJSON(w, http.StatusOK, s.Telemetry())
	})

	// PGM encode buffers recycle across snapshot requests: the frame is
	// encoded straight off the stream's display store into a reused
	// buffer — no per-request frame clone, no per-request byte slice —
	// while concurrent requests stay independent (each borrows its own
	// buffer, so a stalled client never blocks another stream's snapshot).
	snapBufs := sync.Pool{New: func() any { return new([]byte) }}
	mux.HandleFunc("GET /streams/{id}/snapshot.pgm", func(w http.ResponseWriter, r *http.Request) {
		s, ok := f.Get(r.PathValue("id"))
		if !ok {
			writeError(w, http.StatusNotFound, "no such stream")
			return
		}
		bp := snapBufs.Get().(*[]byte)
		defer snapBufs.Put(bp)
		buf, ok := s.AppendSnapshotPGM((*bp)[:0])
		*bp = buf[:0]
		if !ok {
			writeError(w, http.StatusNotFound, "no fused frame yet")
			return
		}
		w.Header().Set("Content-Type", "image/x-portable-graymap")
		// A short write means the client went away; headers are gone, so
		// there is nothing more to do.
		w.Write(buf)
	})

	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

package farm

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"zynqfusion/internal/obs"
	"zynqfusion/internal/slo"
)

// sloTestFarm runs a two-stream farm to completion — one declaring an
// always-burning SLO, one SLO-free — behind an HTTP server.
func sloTestFarm(t *testing.T) (*Farm, *httptest.Server) {
	t.Helper()
	fm := New(Config{})
	srv := httptest.NewServer(NewServer(fm))
	t.Cleanup(srv.Close)
	t.Cleanup(fm.Close)
	if _, err := fm.Submit(StreamConfig{
		ID: "burn", Seed: 1, W: 32, H: 24, Frames: 40,
		SLO: &slo.SLO{LatencyBoundMS: 0.001, WindowScale: 1e-3},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := fm.Submit(StreamConfig{ID: "plain", Seed: 2, W: 32, H: 24, Frames: 5}); err != nil {
		t.Fatal(err)
	}
	fm.Wait()
	return fm, srv
}

func TestEventsSincePagination(t *testing.T) {
	fm, srv := sloTestFarm(t)

	// Walk the whole retained log through the cursor in small pages: the
	// union must be every event exactly once, in order.
	all := fm.Events("", 0)
	if len(all) == 0 {
		t.Fatal("no events to paginate")
	}
	type page struct {
		Events  []obs.Event `json:"events"`
		NextSeq uint64      `json:"next_seq"`
	}
	var walked []obs.Event
	cursor := uint64(0)
	for i := 0; i < 1000; i++ {
		var p page
		if code := getJSON(t, fmt.Sprintf("%s/events?since=%d&n=3", srv.URL, cursor), &p); code != http.StatusOK {
			t.Fatalf("/events?since=%d status %d", cursor, code)
		}
		if len(p.Events) == 0 {
			if p.NextSeq != cursor {
				t.Fatalf("empty page moved the cursor: %d -> %d", cursor, p.NextSeq)
			}
			break
		}
		if len(p.Events) > 3 {
			t.Fatalf("page holds %d events, n=3", len(p.Events))
		}
		walked = append(walked, p.Events...)
		cursor = p.NextSeq
	}
	if len(walked) != len(all) {
		t.Fatalf("cursor walk found %d events, log holds %d", len(walked), len(all))
	}
	for i := range walked {
		if walked[i].Seq != all[i].Seq {
			t.Fatalf("walk order diverges at %d: seq %d vs %d", i, walked[i].Seq, all[i].Seq)
		}
		if i > 0 && walked[i].Seq <= walked[i-1].Seq {
			t.Fatalf("cursor double-read seq %d", walked[i].Seq)
		}
	}

	// A bad cursor is a 400; the legacy bare-array shape is untouched.
	if code := getJSON(t, srv.URL+"/events?since=nope", nil); code != http.StatusBadRequest {
		t.Fatalf("bad since: status %d", code)
	}
	var bare []obs.Event
	if code := getJSON(t, srv.URL+"/events?n=5", &bare); code != http.StatusOK || len(bare) == 0 {
		t.Fatalf("legacy /events shape broke: status %d, %d events", code, len(bare))
	}
}

func TestSLOAndAlertsEndpoints(t *testing.T) {
	_, srv := sloTestFarm(t)

	var sloResp struct {
		Farm    *SLOTelemetry `json:"farm"`
		Streams []struct {
			ID          string                `json:"id"`
			SLO         *slo.Status           `json:"slo"`
			Degradation *DegradationTelemetry `json:"degradation"`
		} `json:"streams"`
	}
	if code := getJSON(t, srv.URL+"/slo", &sloResp); code != http.StatusOK {
		t.Fatalf("/slo status %d", code)
	}
	if sloResp.Farm == nil || sloResp.Farm.StreamsWithSLO != 1 {
		t.Fatalf("/slo farm rollup: %+v", sloResp.Farm)
	}
	if len(sloResp.Streams) != 1 || sloResp.Streams[0].ID != "burn" {
		t.Fatalf("/slo must list only SLO-carrying streams: %+v", sloResp.Streams)
	}
	st := sloResp.Streams[0].SLO
	if st == nil || !st.PageActive || len(st.SLIs) != 1 || st.SLIs[0].Name != slo.SLILatency {
		t.Fatalf("/slo stream status: %+v", st)
	}

	var alerts struct {
		Active []struct {
			Stream   string `json:"stream"`
			SLI      string `json:"sli"`
			Severity string `json:"severity"`
		} `json:"active"`
		Recent []obs.Event `json:"recent"`
	}
	if code := getJSON(t, srv.URL+"/alerts", &alerts); code != http.StatusOK {
		t.Fatalf("/alerts status %d", code)
	}
	var page bool
	for _, a := range alerts.Active {
		if a.Stream == "burn" && a.SLI == "latency" && a.Severity == "page" {
			page = true
		}
	}
	if !page {
		t.Fatalf("/alerts missing the active page: %+v", alerts.Active)
	}
	if len(alerts.Recent) == 0 {
		t.Fatal("/alerts recent history empty despite a fire")
	}
	for _, ev := range alerts.Recent {
		if ev.Kind != obs.EventAlertFire && ev.Kind != obs.EventAlertClear {
			t.Fatalf("/alerts recent leaked a %q event", ev.Kind)
		}
	}
}

func TestPrometheusSLOFamilies(t *testing.T) {
	_, srv := sloTestFarm(t)
	resp, err := http.Get(srv.URL + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scrape status %d", resp.StatusCode)
	}
	text := string(body)
	// The encoder self-lints (duplicate series or malformed names 500 the
	// scrape), so reaching here means the new families are well-formed;
	// still pin their presence and the shapes a dashboard keys on.
	for _, want := range []string{
		"# TYPE farm_build_info gauge",
		`farm_build_info{version="`,
		"# TYPE farm_scrape_duration_seconds gauge",
		"# TYPE farm_slo_health gauge",
		"# TYPE farm_slo_burning gauge",
		"farm_slo_burning 1",
		`farm_slo_stream_health{stream="burn"}`,
		`farm_slo_stream_burn_rate{stream="burn",sli="latency",window="5m"}`,
		`farm_alert_active{stream="burn",sli="latency",severity="page"} 1`,
		`farm_slo_stream_alerts_fired_total{stream="burn",sli="latency",severity="page"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
	// SLO-free streams must not leak into the per-stream SLO families.
	if strings.Contains(text, `farm_slo_stream_health{stream="plain"}`) {
		t.Error("SLO-free stream exported an SLO series")
	}
	types, samples := parsePromText(t, text)
	lintPromHistograms(t, types, samples)
}

package farm

import (
	"sync"
	"sync/atomic"
	"testing"

	"zynqfusion/internal/pipeline"
	"zynqfusion/internal/power"
	"zynqfusion/internal/sim"
)

func TestGovernorLeaseExclusive(t *testing.T) {
	g := NewGovernor(0)
	if !g.TryAcquire("a") {
		t.Fatal("free lease should grant")
	}
	if g.TryAcquire("b") {
		t.Fatal("held lease must deny")
	}
	g.Release("a", sim.Millisecond)
	if !g.TryAcquire("b") {
		t.Fatal("released lease should grant again")
	}
	g.Release("b", 0)
	st := g.Stats()
	if st.Grants != 2 || st.Denials != 1 {
		t.Fatalf("grants/denials = %d/%d, want 2/1", st.Grants, st.Denials)
	}
}

func TestGovernorReleaseWithoutHoldPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Release without hold must panic")
		}
	}()
	NewGovernor(0).Release("ghost", sim.Millisecond)
}

// TestGovernorConcurrentHolders hammers the lease from many goroutines and
// asserts at most one holder exists at any wall-clock instant.
func TestGovernorConcurrentHolders(t *testing.T) {
	g := NewGovernor(0)
	var holders atomic.Int32
	var wg sync.WaitGroup
	ids := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	for _, id := range ids {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				if g.TryAcquire(id) {
					if n := holders.Add(1); n != 1 {
						t.Errorf("%d concurrent FPGA holders", n)
					}
					holders.Add(-1)
					g.Release(id, sim.Microsecond)
				}
			}
		}(id)
	}
	wg.Wait()
	spans := g.Spans()
	if len(spans) == 0 {
		t.Fatal("no spans recorded")
	}
	for i := 1; i < len(spans); i++ {
		if spans[i].Start < spans[i-1].End {
			t.Fatalf("span %d overlaps predecessor: %+v / %+v", i, spans[i-1], spans[i])
		}
	}
}

func TestGovernorPowerBudgetDeniesFPGA(t *testing.T) {
	// One stream already drawing ~533 mW; a budget barely above that
	// leaves no headroom for the wave engine's +19.2 mW.
	g := NewGovernor(power.ARMActive + power.FPGADelta/2)
	g.AddFrame("s1", pipeline.StageTimes{
		Total:  sim.Second,
		Energy: sim.EnergyOver(power.ARMActive, sim.Second),
	})
	if g.TryAcquire("s1") {
		t.Fatal("budget-capped governor should deny the FPGA")
	}
	st := g.Stats()
	if st.BudgetDenials != 1 {
		t.Fatalf("BudgetDenials = %d, want 1", st.BudgetDenials)
	}
	// A generous budget grants.
	g2 := NewGovernor(2 * power.FPGAActive)
	g2.AddFrame("s1", pipeline.StageTimes{
		Total:  sim.Second,
		Energy: sim.EnergyOver(power.ARMActive, sim.Second),
	})
	if !g2.TryAcquire("s1") {
		t.Fatal("roomy budget should grant the FPGA")
	}
}

func TestGovernorBudgetIgnoresFinishedStreams(t *testing.T) {
	// A finished stream's accumulated draw must not starve later streams.
	g := NewGovernor(power.FPGAActive + power.ARMActive)
	g.AddFrame("old", pipeline.StageTimes{
		Total:  sim.Second,
		Energy: sim.EnergyOver(power.ARMActive, sim.Second),
	})
	g.AddFrame("new", pipeline.StageTimes{
		Total:  sim.Second,
		Energy: sim.EnergyOver(power.ARMActive, sim.Second),
	})
	if g.TryAcquire("new") {
		t.Fatal("two live streams should exceed the budget headroom")
	}
	g.StreamDone("old")
	if !g.TryAcquire("new") {
		t.Fatal("finished stream must stop counting against the budget")
	}
	g.Release("new", 0)
	_, energy := g.Totals()
	if want := 2 * sim.EnergyOver(power.ARMActive, sim.Second); energy != want {
		t.Fatalf("finished stream's energy left the ledger: %v != %v", energy, want)
	}
}

func TestGovernorAccounting(t *testing.T) {
	g := NewGovernor(0)
	st1 := pipeline.StageTimes{Total: 2 * sim.Millisecond, Energy: 0.002}
	st2 := pipeline.StageTimes{Total: 3 * sim.Millisecond, Energy: 0.004}
	g.AddFrame("a", st1)
	g.AddFrame("b", st2)
	busy, energy := g.Totals()
	if busy != 5*sim.Millisecond {
		t.Fatalf("busy = %s, want 5ms", busy)
	}
	if energy != 0.006 {
		t.Fatalf("energy = %v, want 0.006", energy)
	}
	if e := g.StreamEnergy("a"); e != 0.002 {
		t.Fatalf("stream a energy = %v", e)
	}
	by := g.EnergyByStream()
	if len(by) != 2 || by[0].Label != "a" || by[1].Label != "b" {
		t.Fatalf("EnergyByStream order wrong: %+v", by)
	}
}

func TestQueueDropOldest(t *testing.T) {
	q := newFrameQueue(2)
	for i := int64(0); i < 5; i++ {
		q.Push(framePair{seq: i})
	}
	if d := q.Dropped(); d != 3 {
		t.Fatalf("dropped = %d, want 3", d)
	}
	p, ok := q.Pop()
	if !ok || p.seq != 3 {
		t.Fatalf("head = %+v, want seq 3 (oldest survivors kept)", p)
	}
	p, _ = q.Pop()
	if p.seq != 4 {
		t.Fatalf("second = %+v, want seq 4", p)
	}
	q.Close()
	if _, ok := q.Pop(); ok {
		t.Fatal("closed empty queue must report done")
	}
}

func TestQueueCloseDrainsBuffered(t *testing.T) {
	q := newFrameQueue(4)
	q.Push(framePair{seq: 1})
	q.Close()
	if p, ok := q.Pop(); !ok || p.seq != 1 {
		t.Fatal("buffered pair should survive Close")
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("drained closed queue must report done")
	}
	if !q.Push(framePair{seq: 2}) {
		t.Fatal("push to closed queue counts as dropped")
	}
}

package farm

import (
	"io"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"zynqfusion/internal/obs"
)

// buildVersion resolves the module version stamped into the binary once;
// "(devel)" and unstamped test binaries both normalize to "devel" so the
// label is never empty (empty label values are legal but useless).
var buildVersion = sync.OnceValue(func() string {
	if bi, ok := debug.ReadBuildInfo(); ok {
		if v := bi.Main.Version; v != "" && v != "(devel)" {
			return v
		}
	}
	return "devel"
})

// WritePrometheus renders a Metrics snapshot in the Prometheus text
// exposition format (version 0.0.4). Every family is declared once with
// HELP/TYPE, series orders are deterministic (streams arrive sorted by id
// from Metrics; map-keyed labels are sorted here), and the obs.Prom
// encoder rejects malformed names and duplicate series, so the exporter
// is linted by construction. Histogram families carry the same cumulative
// buckets as the JSON summaries plus the +Inf bucket, _sum and _count.
func WritePrometheus(w io.Writer, m Metrics) error {
	start := time.Now()
	p := obs.NewProm(w)
	sl := func(id string) obs.Label { return obs.Label{K: "stream", V: id} }

	p.Family("farm_build_info", "gauge", "Build metadata; value is always 1.")
	p.Sample("", 1,
		obs.Label{K: "version", V: buildVersion()},
		obs.Label{K: "goversion", V: runtime.Version()})

	counter := func(name, help string, get func(t StreamTelemetry) float64) {
		p.Family(name, "counter", help)
		for _, t := range m.Streams {
			p.Sample("", get(t), sl(t.ID))
		}
	}
	gauge := func(name, help string, get func(t StreamTelemetry) float64) {
		p.Family(name, "gauge", help)
		for _, t := range m.Streams {
			p.Sample("", get(t), sl(t.ID))
		}
	}

	counter("farm_stream_captured_total", "Frame pairs produced by the stream's capture source.",
		func(t StreamTelemetry) float64 { return float64(t.Captured) })
	counter("farm_stream_fused_total", "Frame pairs fused to completion.",
		func(t StreamTelemetry) float64 { return float64(t.Fused) })
	counter("farm_stream_dropped_total", "Frame pairs dropped by backpressure or shutdown.",
		func(t StreamTelemetry) float64 { return float64(t.Dropped) })
	counter("farm_stream_deadline_misses_total", "Frames whose fusion overran the deadline.",
		func(t StreamTelemetry) float64 { return float64(t.DeadlineMisses) })
	counter("farm_stream_fpga_grants_total", "Granted FPGA lease acquisitions.",
		func(t StreamTelemetry) float64 { return float64(t.FPGAGrants) })
	counter("farm_stream_fpga_denials_total", "Denied FPGA lease acquisitions.",
		func(t StreamTelemetry) float64 { return float64(t.FPGADenials) })
	counter("farm_stream_energy_joules_total", "Accumulated modeled fusion energy.",
		func(t StreamTelemetry) float64 { return float64(t.Stages.Energy) })
	counter("farm_stream_slack_energy_joules_total", "Modeled energy idling out deadline slack.",
		func(t StreamTelemetry) float64 { return float64(t.SlackEnergy) })

	gauge("farm_stream_running", "1 while the stream is live, 0 once finished or stopped.",
		func(t StreamTelemetry) float64 {
			if t.Running {
				return 1
			}
			return 0
		})
	gauge("farm_stream_queue_depth", "Capture-queue depth at scrape time.",
		func(t StreamTelemetry) float64 { return float64(t.QueueDepth) })
	gauge("farm_stream_energy_per_frame_joules", "Modeled energy per fused frame, active spans only.",
		func(t StreamTelemetry) float64 { return float64(t.EnergyPerFrame) })
	gauge("farm_stream_mean_power_watts", "Modeled board draw over the stream's period.",
		func(t StreamTelemetry) float64 { return float64(t.MeanPower) })
	gauge("farm_stream_fused_per_second", "Modeled fusion throughput.",
		func(t StreamTelemetry) float64 { return t.FusedPerSecond })
	gauge("farm_stream_split_ratio", "FPGA row share of the most recent frame.",
		func(t StreamTelemetry) float64 { return t.SplitRatio })

	p.Family("farm_stream_stage_time_ps", "counter", "Accumulated modeled stage time by pipeline stage.")
	for _, t := range m.Streams {
		for _, st := range []struct {
			stage string
			v     float64
		}{
			{"capture", float64(t.Stages.Capture)},
			{"forward", float64(t.Stages.Forward)},
			{"fuse", float64(t.Stages.Fuse)},
			{"inverse", float64(t.Stages.Inverse)},
			{"display", float64(t.Stages.Display)},
		} {
			p.Sample("", st.v, sl(t.ID), obs.Label{K: "stage", V: st.stage})
		}
	}

	p.Family("farm_stream_routed_rows_total", "counter", "Kernel rows routed by engine.")
	for _, t := range m.Streams {
		for _, k := range sortedKeys(t.RoutedRows) {
			p.Sample("", float64(t.RoutedRows[k]), sl(t.ID), obs.Label{K: "engine", V: k})
		}
	}
	p.Family("farm_stream_routed_time_ps", "counter", "Modeled kernel time routed by engine.")
	for _, t := range m.Streams {
		for _, k := range sortedKeys(t.RoutedTime) {
			p.Sample("", float64(t.RoutedTime[k]), sl(t.ID), obs.Label{K: "engine", V: k})
		}
	}
	p.Family("farm_stream_op_residency_ps", "counter", "Modeled fusion time by DVFS operating point.")
	for _, t := range m.Streams {
		for _, k := range sortedKeys(t.OpResidency) {
			p.Sample("", float64(t.OpResidency[k]), sl(t.ID), obs.Label{K: "point", V: k})
		}
	}
	p.Family("farm_stream_op_frames_total", "counter", "Fused frames by DVFS operating point.")
	for _, t := range m.Streams {
		for _, k := range sortedKeys(t.OpFrames) {
			p.Sample("", float64(t.OpFrames[k]), sl(t.ID), obs.Label{K: "point", V: k})
		}
	}

	// Operator-fusion families, lazily declared over fusion-enabled
	// streams only (same convention as the histogram families below).
	fused := func(name, help string, get func(ft *FusionTelemetry) float64) {
		declared := false
		for _, t := range m.Streams {
			if t.Fusion == nil {
				continue
			}
			if !declared {
				p.Family(name, "counter", help)
				declared = true
			}
			p.Sample("", get(t.Fusion), sl(t.ID))
		}
	}
	fused("kernel_fused_frames_total", "Frames executed under a fused operator plan.",
		func(ft *FusionTelemetry) float64 { return float64(ft.FusedFrames) })
	fused("kernel_fused_planes_elided_total", "Intermediate complex planes the fused kernels never materialized.",
		func(ft *FusionTelemetry) float64 { return float64(ft.PlanesElided) })
	fused("kernel_fused_bytes_saved_total", "Bytes of intermediate plane traffic elided by operator fusion.",
		func(ft *FusionTelemetry) float64 { return float64(ft.BytesSaved) })
	fused("kernel_fused_plan_hits_total", "Fusion-plan cache hits.",
		func(ft *FusionTelemetry) float64 { return float64(ft.PlanHits) })
	fused("kernel_fused_plan_misses_total", "Fusion-plan cache misses (shapes replanned).",
		func(ft *FusionTelemetry) float64 { return float64(ft.PlanMisses) })

	// A histogram family is only declared when at least one stream carries
	// the distribution: an all-deadline-free farm, say, exports no slack
	// family at all rather than an empty one.
	hist := func(name, help string, get func(t StreamTelemetry) *obs.Summary) {
		declared := false
		for _, t := range m.Streams {
			s := get(t)
			if s == nil {
				continue
			}
			if !declared {
				p.Family(name, "histogram", help)
				declared = true
			}
			p.Histogram(*s, sl(t.ID))
		}
	}
	hist("farm_stream_latency_ms", "Per-frame end-to-end latency, modeled milliseconds.",
		func(t StreamTelemetry) *obs.Summary { return t.LatencyHist })
	hist("farm_stream_energy_mj", "Per-frame modeled energy, millijoules.",
		func(t StreamTelemetry) *obs.Summary { return t.EnergyHist })
	hist("farm_stream_queue_wait_depth", "Capture-queue depth observed at fuse admission.",
		func(t StreamTelemetry) *obs.Summary { return t.QueueDepthHist })
	hist("farm_stream_slack_ms", "Per-frame deadline slack, modeled milliseconds (0 on a miss).",
		func(t StreamTelemetry) *obs.Summary { return t.SlackHist })

	// Aggregate rollup.
	agg := m.Aggregate
	p.Family("farm_streams", "gauge", "Streams ever submitted.")
	p.Sample("", float64(agg.Streams))
	p.Family("farm_active_streams", "gauge", "Streams currently running.")
	p.Sample("", float64(agg.Active))
	p.Family("farm_captured_total", "counter", "Farm-wide captured frame pairs.")
	p.Sample("", float64(agg.Captured))
	p.Family("farm_fused_total", "counter", "Farm-wide fused frames.")
	p.Sample("", float64(agg.Fused))
	p.Family("farm_dropped_total", "counter", "Farm-wide dropped frame pairs.")
	p.Sample("", float64(agg.Dropped))
	p.Family("farm_deadline_misses_total", "counter", "Farm-wide deadline misses.")
	p.Sample("", float64(agg.DeadlineMisses))
	p.Family("farm_energy_joules_total", "counter", "Farm-wide accumulated modeled energy.")
	p.Sample("", float64(agg.Energy))
	p.Family("farm_wall_ps", "gauge", "Farm modeled makespan (max stream busy time).")
	p.Sample("", float64(agg.WallTime))
	p.Family("farm_fused_per_second", "gauge", "Farm-wide modeled throughput.")
	p.Sample("", agg.FusedPerSecond)
	if agg.LatencyHist != nil {
		p.Family("farm_latency_ms", "histogram", "Farm-wide per-frame latency, merged across streams.")
		p.Histogram(*agg.LatencyHist)
	}
	if agg.EnergyHist != nil {
		p.Family("farm_energy_mj", "histogram", "Farm-wide per-frame energy, merged across streams.")
		p.Histogram(*agg.EnergyHist)
	}

	// Governor.
	gov := m.Governor
	p.Family("farm_governor_grants_total", "counter", "FPGA lease grants.")
	p.Sample("", float64(gov.Grants))
	p.Family("farm_governor_denials_total", "counter", "FPGA lease denials.")
	p.Sample("", float64(gov.Denials))
	p.Family("farm_governor_budget_denials_total", "counter", "Lease denials caused by the power budget.")
	p.Sample("", float64(gov.BudgetDenials))
	p.Family("farm_governor_fpga_busy_ps", "counter", "Busy time granted on the shared FPGA timeline.")
	p.Sample("", float64(gov.FPGABusy))
	p.Family("farm_governor_aggregate_power_watts", "gauge", "Modeled board draw of the running streams.")
	p.Sample("", float64(gov.AggregatePower))
	p.Family("farm_governor_power_budget_watts", "gauge", "Configured aggregate power cap (0 = unlimited).")
	p.Sample("", float64(gov.PowerBudget))

	// Memory and the frame-store arena.
	mem := m.Memory
	p.Family("farm_pool_gets_total", "counter", "Frame-store plane acquires.")
	p.Sample("", float64(mem.Pool.Gets))
	p.Family("farm_pool_hits_total", "counter", "Acquires served from a free list.")
	p.Sample("", float64(mem.Pool.Hits))
	p.Family("farm_pool_misses_total", "counter", "Acquires that allocated fresh storage.")
	p.Sample("", float64(mem.Pool.Misses))
	p.Family("farm_pool_releases_total", "counter", "Planes returned to the arena.")
	p.Sample("", float64(mem.Pool.Releases))
	p.Family("farm_pool_blocked_gets_total", "counter", "Acquires that waited at the arena cap.")
	p.Sample("", float64(mem.Pool.BlockedGets))
	p.Family("farm_pool_hit_rate", "gauge", "Fraction of acquires served without allocating (1.0 before any acquire).")
	p.Sample("", mem.PoolHitRate)
	p.Family("farm_pool_outstanding", "gauge", "Currently leased planes.")
	p.Sample("", float64(mem.Pool.Outstanding))
	p.Family("farm_pool_outstanding_bytes", "gauge", "Footprint of currently leased planes.")
	p.Sample("", float64(mem.Pool.OutstandingBytes))
	p.Family("farm_pool_pooled_bytes", "gauge", "Free-list footprint.")
	p.Sample("", float64(mem.Pool.PooledBytes))
	p.Family("farm_pool_high_water_bytes", "gauge", "Largest arena footprint ever reached.")
	p.Sample("", float64(mem.Pool.HighWaterBytes))
	p.Family("farm_pool_cap_bytes", "gauge", "Configured arena byte cap (0 = unbounded).")
	p.Sample("", float64(mem.Pool.CapBytes))
	p.Family("farm_heap_alloc_bytes", "gauge", "Go heap in use.")
	p.Sample("", float64(mem.HeapAllocBytes))
	p.Family("farm_mallocs_total", "counter", "Cumulative process heap allocations.")
	p.Sample("", float64(mem.Mallocs))
	p.Family("farm_gc_cycles_total", "counter", "Completed GC cycles.")
	p.Sample("", float64(mem.GCCycles))
	p.Family("farm_gc_pause_ns_total", "counter", "Cumulative GC stop-the-world pause.")
	p.Sample("", float64(mem.GCPauseTotalNS))

	// SLO engine. Farm families appear once rules or per-stream SLOs
	// exist; per-stream families are lazily declared over SLO-carrying
	// streams only, mirroring the histogram convention above.
	if m.SLO != nil {
		s := m.SLO
		p.Family("farm_slo_health", "gauge", "Farm composite health score, 0-100.")
		p.Sample("", s.Health)
		p.Family("farm_slo_burning", "gauge", "1 while any stream has an active page-severity burn alert.")
		p.Sample("", b2f(s.Burning))
		p.Family("farm_slo_streams", "gauge", "Streams with an SLO declaration.")
		p.Sample("", float64(s.StreamsWithSLO))
		p.Family("farm_slo_admission_refused_total", "counter", "Stream submissions refused while the farm budget was burning.")
		p.Sample("", float64(s.AdmissionRefused))
		p.Family("farm_slo_degrade_actions_total", "counter", "Degradation ladder actions applied across the farm.")
		p.Sample("", float64(s.DegradeActions))

		sloFamily := func(name, typ, help string, emit func(t StreamTelemetry)) {
			declared := false
			for _, t := range m.Streams {
				if t.SLO == nil {
					continue
				}
				if !declared {
					p.Family(name, typ, help)
					declared = true
				}
				emit(t)
			}
		}
		sloFamily("farm_slo_stream_health", "gauge", "Per-stream composite health score, 0-100.",
			func(t StreamTelemetry) { p.Sample("", t.SLO.Health, sl(t.ID)) })
		sloFamily("farm_slo_stream_budget_remaining", "gauge", "Cumulative error-budget fraction remaining per SLI (can go negative).",
			func(t StreamTelemetry) {
				for _, si := range t.SLO.SLIs {
					p.Sample("", si.BudgetRemaining, sl(t.ID), obs.Label{K: "sli", V: si.Name})
				}
			})
		sloFamily("farm_slo_stream_good_ratio", "gauge", "Cumulative good-event fraction per SLI.",
			func(t StreamTelemetry) {
				for _, si := range t.SLO.SLIs {
					p.Sample("", si.GoodRatio, sl(t.ID), obs.Label{K: "sli", V: si.Name})
				}
			})
		sloFamily("farm_slo_stream_burn_rate", "gauge", "Error-budget burn rate per SLI sliding window.",
			func(t StreamTelemetry) {
				for _, si := range t.SLO.SLIs {
					for _, win := range si.Windows {
						p.Sample("", win.Burn, sl(t.ID),
							obs.Label{K: "sli", V: si.Name},
							obs.Label{K: "window", V: win.Window})
					}
				}
			})
		sloFamily("farm_slo_stream_alerts_fired_total", "counter", "Burn-rate alert activations per SLI and severity.",
			func(t StreamTelemetry) {
				for _, si := range t.SLO.SLIs {
					for _, al := range si.Alerts {
						p.Sample("", float64(al.Fired), sl(t.ID),
							obs.Label{K: "sli", V: si.Name},
							obs.Label{K: "severity", V: al.Severity})
					}
				}
			})
		sloFamily("farm_alert_active", "gauge", "1 while the burn-rate alert is firing.",
			func(t StreamTelemetry) {
				for _, si := range t.SLO.SLIs {
					for _, al := range si.Alerts {
						p.Sample("", b2f(al.Active), sl(t.ID),
							obs.Label{K: "sli", V: si.Name},
							obs.Label{K: "severity", V: al.Severity})
					}
				}
			})
		sloFamily("farm_slo_stream_degrade_stage", "gauge", "Depth of the stream's applied degradation ladder.",
			func(t StreamTelemetry) {
				if t.Degradation != nil {
					p.Sample("", float64(t.Degradation.Stage), sl(t.ID))
				}
			})
		sloFamily("farm_slo_stream_degrade_actions_total", "counter", "Degradation actions applied, by ladder action.",
			func(t StreamTelemetry) {
				if t.Degradation == nil {
					return
				}
				for _, k := range sortedKeys(t.Degradation.Actions) {
					p.Sample("", float64(t.Degradation.Actions[k]), sl(t.ID), obs.Label{K: "action", V: k})
				}
			})
	}

	// Sampled last so it covers the cost of encoding everything above.
	p.Family("farm_scrape_duration_seconds", "gauge", "Wall time spent rendering this exposition.")
	p.Sample("", time.Since(start).Seconds())

	return p.Flush()
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// sortedKeys returns a map's keys in sorted order, for deterministic
// series output.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

package farm

import (
	"math"
	"testing"

	"zynqfusion/internal/power"
)

func TestFarmRunsBoundedStreams(t *testing.T) {
	fm := New(Config{})
	const n, frames = 3, 4
	for i := 0; i < n; i++ {
		if _, err := fm.Submit(StreamConfig{
			W: 32, H: 24, Seed: int64(i + 1),
			Frames: frames, QueueCap: frames,
		}); err != nil {
			t.Fatal(err)
		}
	}
	fm.Wait()
	m := fm.Metrics()
	if m.Aggregate.Streams != n {
		t.Fatalf("streams = %d, want %d", m.Aggregate.Streams, n)
	}
	if m.Aggregate.Fused != n*frames {
		t.Fatalf("fused = %d, want %d", m.Aggregate.Fused, n*frames)
	}
	if m.Aggregate.Dropped != 0 {
		t.Fatalf("dropped = %d with roomy queues", m.Aggregate.Dropped)
	}
	for _, s := range m.Streams {
		if s.Err != "" {
			t.Fatalf("stream %s error: %s", s.ID, s.Err)
		}
		if s.Captured != frames || s.Fused != frames {
			t.Fatalf("stream %s captured/fused = %d/%d, want %d/%d",
				s.ID, s.Captured, s.Fused, frames, frames)
		}
		if s.Stages.Total <= 0 || s.Stages.Energy <= 0 {
			t.Fatalf("stream %s has empty accounting: %+v", s.ID, s.Stages)
		}
		if s.Running {
			t.Fatalf("stream %s still running after Wait", s.ID)
		}
	}
	fm.Close()
}

// TestFarmEnergyConservation checks the tentpole invariant: the farm's
// aggregate energy equals the sum of per-stream drained energy, and the
// governor's independent ledger agrees.
func TestFarmEnergyConservation(t *testing.T) {
	fm := New(Config{})
	const n, frames = 4, 3
	for i := 0; i < n; i++ {
		if _, err := fm.Submit(StreamConfig{
			W: 32, H: 24, Seed: int64(i + 1), Frames: frames, QueueCap: frames,
		}); err != nil {
			t.Fatal(err)
		}
	}
	fm.Wait()
	m := fm.Metrics()
	var sum float64
	for _, s := range m.Streams {
		sum += float64(s.Stages.Energy)
	}
	if rel := math.Abs(sum-float64(m.Aggregate.Energy)) / sum; rel > 1e-12 {
		t.Fatalf("aggregate energy %v != stream sum %v", m.Aggregate.Energy, sum)
	}
	_, govEnergy := fm.Governor().Totals()
	if rel := math.Abs(sum-float64(govEnergy)) / sum; rel > 1e-12 {
		t.Fatalf("governor ledger %v != stream sum %v", govEnergy, sum)
	}
	fm.Close()
}

func TestFarmStopUnboundedStream(t *testing.T) {
	fm := New(Config{})
	s, err := fm.Submit(StreamConfig{W: 32, H: 24, Frames: 0, IntervalMS: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := fm.Stop(s.ID()); err != nil {
		t.Fatal(err)
	}
	select {
	case <-s.Done():
	default:
		t.Fatal("Stop must wait for the worker to exit")
	}
	if tele := s.Telemetry(); tele.Running {
		t.Fatal("stopped stream reports running")
	}
	fm.Close()
}

func TestFarmSubmitValidation(t *testing.T) {
	fm := New(Config{})
	defer fm.Close()
	cases := []StreamConfig{
		{W: -1, H: 24},
		{W: 32, H: 24, Engine: "gpu"},
		{W: 32, H: 24, Rule: "median"},
		{W: 32, H: 24, Levels: 99},
		{W: 32, H: 24, Levels: -1},
		// Defaulted Levels (3) is over-deep for an 8x8 frame: must be
		// refused at Submit, not die on the first fused frame.
		{W: 8, H: 8},
	}
	for _, cfg := range cases {
		if _, err := fm.Submit(cfg); err == nil {
			t.Errorf("config %+v should be rejected", cfg)
		}
	}
	if _, err := fm.Submit(StreamConfig{ID: "dup", W: 32, H: 24, Frames: 1, QueueCap: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := fm.Submit(StreamConfig{ID: "dup", W: 32, H: 24, Frames: 1}); err == nil {
		t.Error("duplicate id should be rejected")
	}
}

func TestFarmAutoIDSkipsTakenIDs(t *testing.T) {
	fm := New(Config{})
	defer fm.Close()
	if _, err := fm.Submit(StreamConfig{ID: "s1", W: 32, H: 24, Frames: 1, QueueCap: 1}); err != nil {
		t.Fatal(err)
	}
	s, err := fm.Submit(StreamConfig{W: 32, H: 24, Frames: 1, QueueCap: 1})
	if err != nil {
		t.Fatalf("auto-id must skip the user-taken \"s1\": %v", err)
	}
	if s.ID() != "s2" {
		t.Fatalf("auto id = %q, want s2", s.ID())
	}
}

func TestFarmClosedRefusesSubmit(t *testing.T) {
	fm := New(Config{})
	fm.Close()
	if _, err := fm.Submit(StreamConfig{W: 32, H: 24}); err == nil {
		t.Fatal("closed farm must refuse streams")
	}
}

func TestFarmPowerBudgetForcesNEON(t *testing.T) {
	// A budget below one stream's draw plus the FPGA delta: every grant
	// after the first accounted frame is denied, so nearly all rows run
	// on NEON and the routed FPGA time stays near zero.
	fm := New(Config{PowerBudget: power.ARMActive})
	s, err := fm.Submit(StreamConfig{W: 64, H: 48, Frames: 5, QueueCap: 5, Engine: "adaptive"})
	if err != nil {
		t.Fatal(err)
	}
	fm.Wait()
	tele := s.Telemetry()
	st := fm.Governor().Stats()
	if st.BudgetDenials == 0 {
		t.Fatalf("expected budget denials, got stats %+v", st)
	}
	// The first frame may have been granted before any accounting
	// existed; after that the budget bites.
	if tele.FPGAGrants > 1 {
		t.Fatalf("FPGA grants = %d under a starvation budget", tele.FPGAGrants)
	}
	fm.Close()
}

func TestStreamSnapshotMatchesGeometry(t *testing.T) {
	fm := New(Config{})
	s, err := fm.Submit(StreamConfig{W: 40, H: 40, Frames: 2, QueueCap: 2})
	if err != nil {
		t.Fatal(err)
	}
	fm.Wait()
	snap := s.Snapshot()
	if snap == nil {
		t.Fatal("no snapshot after fused frames")
	}
	if snap.W != 40 || snap.H != 40 {
		t.Fatalf("snapshot %dx%d, want 40x40", snap.W, snap.H)
	}
	fm.Close()
}

package farm

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"zynqfusion/internal/sim"
)

// TestFarmSplitFractionalBusyMetering runs ≥4 concurrent cooperative-split
// streams against the shared wave engine (run under `go test -race` by
// CI). Under a fractional split a lease holder occupies the FPGA for only
// part of each frame, so the governor's busy-time metering must account
// the *partial* FPGA time, not whole frames: the global FPGA timeline must
// equal the sum of every stream's routed wave-engine time exactly, and the
// granted spans must stay non-overlapping.
func TestFarmSplitFractionalBusyMetering(t *testing.T) {
	const streams, frames = 6, 3
	engines := []string{"split-oracle", "split-adaptive", "split-energy"}
	fm := New(Config{})
	for i := 0; i < streams; i++ {
		if _, err := fm.Submit(StreamConfig{
			W: 64, H: 48, Seed: int64(i + 1),
			Engine: engines[i%len(engines)],
			Frames: frames, QueueCap: frames,
		}); err != nil {
			t.Fatal(err)
		}
	}

	// Hammer the telemetry surfaces while the streams fuse, so -race sees
	// the split accounting under concurrent readers.
	stopPoll := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stopPoll:
					return
				default:
				}
				for _, s := range fm.List() {
					s.Telemetry()
				}
				fm.Governor().Stats()
			}
		}()
	}
	fm.Wait()
	close(stopPoll)
	wg.Wait()
	defer fm.Close()

	m := fm.Metrics()
	var routedFPGA sim.Time
	var granted int64
	sawFractional := false
	for _, s := range m.Streams {
		if s.Err != "" {
			t.Fatalf("stream %s failed: %s", s.ID, s.Err)
		}
		if s.Fused != frames {
			t.Fatalf("stream %s fused %d of %d", s.ID, s.Fused, frames)
		}
		routedFPGA += s.RoutedTime["fpga"]
		granted += s.FPGAGrants
		// A split stream that held the lease must report a genuinely
		// fractional ratio: both lanes busy, neither exclusive.
		if s.SplitRatio > 0 && s.SplitRatio < 1 {
			sawFractional = true
			if s.Stages.Overlap <= 0 {
				t.Errorf("stream %s: fractional split %.2f but zero overlap", s.ID, s.SplitRatio)
			}
			if s.Stages.CPUBusy <= 0 || s.Stages.FPGABusy <= 0 {
				t.Errorf("stream %s: fractional split with lanes %v/%v",
					s.ID, s.Stages.CPUBusy, s.Stages.FPGABusy)
			}
			if got := s.Stages.CPUBusy + s.Stages.FPGABusy - s.Stages.Overlap; got != s.Stages.Total {
				t.Errorf("stream %s: lanes %v + %v - overlap %v != total %v",
					s.ID, s.Stages.CPUBusy, s.Stages.FPGABusy, s.Stages.Overlap, s.Stages.Total)
			}
		}
	}
	if granted == 0 {
		t.Fatal("no stream ever won the wave engine")
	}
	if !sawFractional {
		t.Fatal("no stream reported a fractional split ratio")
	}

	// Fractional busy metering: every picosecond routed to the wave engine
	// was accounted under a held lease, and only those picoseconds advance
	// the shared FPGA timeline.
	if m.Governor.FPGABusy != routedFPGA {
		t.Fatalf("governor FPGA busy %v != routed wave-engine time %v",
			m.Governor.FPGABusy, routedFPGA)
	}
	var spanSum sim.Time
	spans := fm.Governor().Spans()
	for i, sp := range spans {
		spanSum += sp.End - sp.Start
		if i > 0 && sp.Start < spans[i-1].End {
			t.Fatalf("FPGA spans overlap: %+v then %+v", spans[i-1], sp)
		}
	}
	if spanSum != m.Governor.FPGABusy {
		t.Fatalf("span sum %v != governor busy %v", spanSum, m.Governor.FPGABusy)
	}
}

// TestStreamConfigValidation is the submit-time capacity validation table:
// negative queue depths, frame budgets and capture intervals are refused
// with descriptive errors instead of silently becoming defaults, while
// zero keeps its documented use-the-default meaning.
func TestStreamConfigValidation(t *testing.T) {
	cases := []struct {
		name    string
		cfg     StreamConfig
		wantErr string // empty: submit must succeed
	}{
		{"negative queue depth", StreamConfig{Frames: 1, QueueCap: -1}, "queue_cap"},
		{"negative frame budget", StreamConfig{Frames: -3}, "frames"},
		{"negative interval", StreamConfig{Frames: 1, IntervalMS: -10}, "interval_ms"},
		{"zero queue takes default", StreamConfig{Frames: 1}, ""},
		{"explicit depth kept", StreamConfig{Frames: 1, QueueCap: 2}, ""},
		{"unknown engine still refused", StreamConfig{Frames: 1, Engine: "gpu"}, "unknown engine"},
		{"negative levels still refused", StreamConfig{Frames: 1, Levels: -1}, "level"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fm := New(Config{DefaultQueueCap: 7})
			defer fm.Close()
			s, err := fm.Submit(tc.cfg)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("submit failed: %v", err)
				}
				if got := s.Config().QueueCap; tc.cfg.QueueCap == 0 && got != 7 {
					t.Errorf("zero queue_cap became %d, want farm default 7", got)
				}
				return
			}
			if err == nil {
				t.Fatalf("submit accepted %+v", tc.cfg)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not mention %q", err, tc.wantErr)
			}
			if errors.Is(err, ErrClosed) || errors.Is(err, ErrDuplicate) {
				t.Errorf("validation error %q mis-typed as farm lifecycle error", err)
			}
		})
	}
}

package farm

import (
	"fmt"
	"runtime"
	"strings"
	"testing"
)

// TestFarmParallelKernelDeterminism runs the same bounded streams with the
// kernel worker pool pinned sequential and then sized to GOMAXPROCS, and
// requires the accumulated modeled stage times and energy to match bit for
// bit: worker count is host-side scheduling only and must never leak into
// the platform model. The streams use lease-free engines (arm, neon) so
// the comparison is not confounded by FPGA-grant ordering, and the queue
// out-sizes the frame budget so backpressure cannot drop frames.
func TestFarmParallelKernelDeterminism(t *testing.T) {
	prev := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(prev)

	run := func(kernelWorkers int) map[string]StageTimesJSON {
		f := New(Config{})
		defer f.Close()
		var streams []*Stream
		for i, tc := range []struct {
			engine, rule string
			pipelined    bool
		}{
			{"neon", "window", false},
			{"arm", "max", false},
			{"neon", "average", true},
		} {
			s, err := f.Submit(StreamConfig{
				ID:     fmt.Sprintf("det%d", i),
				Engine: tc.engine,
				Rule:   tc.rule,
				Seed:   int64(i + 1),
				W:      40, H: 32,
				Frames:        12,
				QueueCap:      16, // > Frames: no drop-oldest, fully deterministic
				Pipelined:     tc.pipelined,
				KernelWorkers: kernelWorkers,
			})
			if err != nil {
				t.Fatal(err)
			}
			streams = append(streams, s)
		}
		f.Wait()
		out := make(map[string]StageTimesJSON)
		for _, s := range streams {
			tel := s.Telemetry()
			if tel.Err != "" {
				t.Fatalf("%s: stream error: %s", tel.ID, tel.Err)
			}
			if tel.Fused != 12 {
				t.Fatalf("%s: fused %d of 12 (dropped %d)", tel.ID, tel.Fused, tel.Dropped)
			}
			out[tel.ID] = tel.Stages
		}
		return out
	}

	seq := run(1)
	par := run(0) // GOMAXPROCS-wide pools
	for id, want := range seq {
		if got := par[id]; got != want {
			t.Fatalf("%s: parallel-kernel accounting diverged\nsequential: %+v\nparallel:   %+v", id, want, got)
		}
	}
}

// TestFarmParallelKernelRaceSoak is the -race soak of the kernel worker
// pools under full farm concurrency: pipelined and sequential streams with
// mixed worker counts contending for the shared FPGA lease, some stopped
// mid-flight. The invariants are the usual farm ones — no frame lost, no
// lease leaked — with the tiled hot loops running on every stream.
func TestFarmParallelKernelRaceSoak(t *testing.T) {
	prev := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(prev)

	f := New(Config{PowerBudget: 3.0})
	defer f.Close()

	engines := []string{"adaptive", "split-oracle", "neon", "fpga", "split-energy", "adaptive-online"}
	var streams []*Stream
	for i, eng := range engines {
		s, err := f.Submit(StreamConfig{
			ID:     fmt.Sprintf("kern%d", i),
			Engine: eng,
			Rule:   []string{"max", "average", "window"}[i%3],
			Seed:   int64(i + 1),
			W:      40, H: 40,
			Frames:        30,
			Pipelined:     i%2 == 0,
			KernelWorkers: []int{0, 1, 2, 4}[i%4],
		})
		if err != nil {
			t.Fatal(err)
		}
		streams = append(streams, s)
	}
	for i, s := range streams {
		if i%3 == 1 {
			s.Stop()
		}
	}
	f.Wait()

	for i, s := range streams {
		tel := s.Telemetry()
		if tel.Err != "" {
			t.Fatalf("%s: stream error: %s", tel.ID, tel.Err)
		}
		if stopped := i%3 == 1; !stopped && tel.Captured != 30 {
			t.Fatalf("%s: captured %d of 30", tel.ID, tel.Captured)
		}
		if tel.Fused+tel.Dropped != tel.Captured {
			t.Fatalf("%s: lost frames: captured %d != fused %d + dropped %d",
				tel.ID, tel.Captured, tel.Fused, tel.Dropped)
		}
	}
	if gs := f.Governor().Stats(); gs.Holder != "" {
		t.Fatalf("lease leaked to %q after drain", gs.Holder)
	}
}

// TestFarmKernelFusionTelemetry pins the KernelFusion plumbing: a
// fusion-enabled stream carries a FusionTelemetry record and its
// kernel_fused_* Prometheus families render, while plain streams carry
// none. Farm streams run the governed adaptive engine, which vetoes
// tiling and therefore fusion — so the counters must report exactly that:
// every shape planned (cache misses > 0), zero frames fused, and stage
// accounting identical to a fusion-off twin.
func TestFarmKernelFusionTelemetry(t *testing.T) {
	f := New(Config{})
	defer f.Close()
	run := func(id string, fusion bool) StreamTelemetry {
		s, err := f.Submit(StreamConfig{
			ID: id, Engine: "neon", Seed: 3,
			W: 40, H: 32, Frames: 6, QueueCap: 8,
			KernelFusion: fusion,
		})
		if err != nil {
			t.Fatal(err)
		}
		<-s.Done()
		return s.Telemetry()
	}
	on := run("fuse-on", true)
	off := run("fuse-off", false)
	if off.Fusion != nil {
		t.Fatalf("fusion-off stream exported fusion telemetry: %+v", off.Fusion)
	}
	ft := on.Fusion
	if ft == nil || !ft.Enabled {
		t.Fatalf("fusion-on stream missing fusion telemetry: %+v", ft)
	}
	if ft.FusedFrames != 0 || ft.PlanesElided != 0 || ft.BytesSaved != 0 {
		t.Fatalf("adaptive engine must veto fusion, yet: %+v", ft)
	}
	if ft.PlanMisses == 0 {
		t.Fatalf("planner never consulted: %+v", ft)
	}
	if on.Stages != off.Stages {
		t.Fatalf("fusion flag changed accounting:\non  %+v\noff %+v", on.Stages, off.Stages)
	}

	var sb strings.Builder
	if err := WritePrometheus(&sb, f.Metrics()); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, fam := range []string{
		"kernel_fused_frames_total", "kernel_fused_planes_elided_total",
		"kernel_fused_bytes_saved_total", "kernel_fused_plan_hits_total",
		"kernel_fused_plan_misses_total",
	} {
		if !strings.Contains(text, fam+`{stream="fuse-on"}`) {
			t.Fatalf("family %s missing for fuse-on stream", fam)
		}
		if strings.Contains(text, fam+`{stream="fuse-off"}`) {
			t.Fatalf("family %s rendered for fusion-off stream", fam)
		}
	}
}

// TestFarmKernelWorkersValidation pins the Submit-time refusal of a
// negative worker count.
func TestFarmKernelWorkersValidation(t *testing.T) {
	f := New(Config{})
	defer f.Close()
	_, err := f.Submit(StreamConfig{Frames: 1, KernelWorkers: -2})
	if err == nil {
		t.Fatal("Submit accepted kernel_workers: -2")
	}
	if !strings.Contains(err.Error(), "kernel_workers must be non-negative") {
		t.Fatalf("error %q does not mention kernel_workers", err)
	}
}

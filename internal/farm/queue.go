package farm

import (
	"sync"

	"zynqfusion/internal/frame"
)

// framePair is one captured visible/infrared pair waiting to be fused.
type framePair struct {
	vis, ir *frame.Frame
	seq     int64
}

// release returns the pair's capture leases to their pool (no-ops for
// plain frames).
func (p framePair) release() {
	if p.vis != nil {
		p.vis.Release()
	}
	if p.ir != nil {
		p.ir.Release()
	}
}

// frameQueue is a bounded FIFO of captured frame pairs with a drop-oldest
// overflow policy: a capture source never blocks on a slow fuser, it
// evicts the stalest queued pair instead — the behavior of a real capture
// FIFO that overwrites unconsumed frames. Safe for concurrent use.
type frameQueue struct {
	mu       sync.Mutex
	nonEmpty *sync.Cond
	buf      []framePair
	cap      int
	closed   bool
	dropped  int64

	// onDrop, when set (before the producer starts), observes every dropped
	// pair's sequence number. It runs under q.mu, so it must only touch
	// leaf-locked state (the stream's event ring) — never the stream mutex,
	// which is taken before q.mu on the telemetry path.
	onDrop func(seq int64)
}

func newFrameQueue(capacity int) *frameQueue {
	if capacity <= 0 {
		capacity = 1
	}
	q := &frameQueue{cap: capacity}
	q.nonEmpty = sync.NewCond(&q.mu)
	return q
}

// Push enqueues p, evicting the oldest pair when full. It reports whether
// an eviction happened. Pushing to a closed queue drops p silently (the
// consumer is gone).
func (q *frameQueue) Push(p framePair) (evicted bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		q.dropped++
		if q.onDrop != nil {
			q.onDrop(p.seq)
		}
		p.release() // consumer is gone; return the capture stores
		return true
	}
	if len(q.buf) >= q.cap {
		if q.onDrop != nil {
			q.onDrop(q.buf[0].seq)
		}
		q.buf[0].release() // evicted pair's frame stores go back to the pool
		q.buf = q.buf[1:]
		q.dropped++
		evicted = true
	}
	q.buf = append(q.buf, p)
	q.nonEmpty.Signal()
	return evicted
}

// Pop blocks until a pair is available or the queue is closed and empty.
func (q *frameQueue) Pop() (framePair, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.buf) == 0 && !q.closed {
		q.nonEmpty.Wait()
	}
	if len(q.buf) == 0 {
		return framePair{}, false
	}
	p := q.buf[0]
	q.buf = q.buf[1:]
	return p, true
}

// Close wakes any blocked Pop; buffered pairs remain poppable.
func (q *frameQueue) Close() {
	q.mu.Lock()
	q.closed = true
	q.nonEmpty.Broadcast()
	q.mu.Unlock()
}

// Cap reports the current capacity bound.
func (q *frameQueue) Cap() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.cap
}

// SetCap rebounds the queue at runtime (floored at 1) — the SLO
// degradation controller's queue-shrink rung. Shrinking below the
// current depth evicts the oldest pairs immediately, drop-oldest style,
// so stale backlog stops inflating latency the moment the bound moves.
func (q *frameQueue) SetCap(n int) {
	if n < 1 {
		n = 1
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	q.cap = n
	for len(q.buf) > q.cap {
		if q.onDrop != nil {
			q.onDrop(q.buf[0].seq)
		}
		q.buf[0].release()
		q.buf = q.buf[1:]
		q.dropped++
	}
}

// Len reports the current depth.
func (q *frameQueue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.buf)
}

// Dropped reports the eviction count.
func (q *frameQueue) Dropped() int64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.dropped
}

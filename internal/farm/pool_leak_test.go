package farm

import (
	"testing"
	"time"

	"zynqfusion/internal/bufpool"
)

// TestFarmPoolLeakDetector is the lease leak detector: after streams stop
// and the farm closes, every frame-store lease — capture buffers queued or
// evicted, transform workspaces, fused display stores — must have returned
// to the shared arena. It runs under -race in CI (the TestFarm pattern),
// so the release paths are exercised across the producer, consumer and
// control goroutines concurrently.
func TestFarmPoolLeakDetector(t *testing.T) {
	f := New(Config{BufferPool: bufpool.Budget{PerStream: 64 << 20}})
	defer f.Close()

	// A mix of lifecycles: a bounded stream that finishes on its own, an
	// unbounded pipelined stream stopped mid-flight (drains its queue via
	// the shutdown-drop path), and a tiny-queue stream that forces
	// drop-oldest evictions while fusing.
	bounded, err := f.Submit(StreamConfig{Seed: 1, W: 48, H: 40, Frames: 6})
	if err != nil {
		t.Fatal(err)
	}
	piped, err := f.Submit(StreamConfig{Seed: 2, W: 48, H: 40, Pipelined: true, Depth: 2, IntervalMS: 1})
	if err != nil {
		t.Fatal(err)
	}
	evicting, err := f.Submit(StreamConfig{Seed: 3, W: 48, H: 40, Frames: 12, QueueCap: 1})
	if err != nil {
		t.Fatal(err)
	}

	<-bounded.Done()
	<-evicting.Done()
	// Let the pipelined stream fuse a few frames before stopping it.
	deadline := time.After(10 * time.Second)
	for piped.Telemetry().Fused < 3 {
		select {
		case <-deadline:
			t.Fatal("pipelined stream made no progress")
		case <-time.After(5 * time.Millisecond):
		}
	}
	piped.Stop()
	<-piped.Done()

	if err := f.Pool().CheckLeaks(); err != nil {
		t.Fatalf("leases leaked after stream stop: %v", err)
	}
	// Snapshots must survive the stream's leases being returned.
	for _, s := range []*Stream{bounded, piped, evicting} {
		if snap := s.Snapshot(); snap == nil || snap.Leased() {
			t.Fatalf("stream %s: snapshot unusable after stop", s.ID())
		}
	}
	// The pooling actually engaged: steady-state capture and fusion ran on
	// free-list hits, visible per stream and on /metrics.
	tele := piped.Telemetry()
	if tele.Pool == nil || tele.Pool.Hits == 0 {
		t.Fatalf("stream pool telemetry missing or cold: %+v", tele.Pool)
	}
	m := f.Metrics()
	if m.Memory.Pool.Outstanding != 0 {
		t.Fatalf("farm memory telemetry reports outstanding leases: %+v", m.Memory.Pool)
	}
	if m.Memory.PoolHitRate <= 0 && tele.Pool.HitRate() <= 0 {
		t.Fatal("pool hit rate never rose above zero")
	}
}

// TestFarmPoolPerStreamCeiling pins the deterministic memory ceiling: a
// stream whose per-stream budget cannot hold even its capture pair fails
// with the arena's over-cap error instead of allocating past it.
func TestFarmPoolPerStreamCeiling(t *testing.T) {
	f := New(Config{BufferPool: bufpool.Budget{PerStream: 1024}}) // under one 88x72 plane
	defer f.Close()
	s, err := f.Submit(StreamConfig{Seed: 1, Frames: 2})
	if err != nil {
		t.Fatal(err)
	}
	<-s.Done()
	tele := s.Telemetry()
	if tele.Err == "" {
		t.Fatal("undersized stream budget did not surface an error")
	}
	if tele.Fused != 0 {
		t.Fatalf("stream fused %d frames past its memory ceiling", tele.Fused)
	}
}

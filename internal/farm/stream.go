package farm

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"zynqfusion/internal/bufpool"
	"zynqfusion/internal/dvfs"
	"zynqfusion/internal/frame"
	"zynqfusion/internal/fusion"
	"zynqfusion/internal/obs"
	"zynqfusion/internal/pipeline"
	"zynqfusion/internal/sched"
	"zynqfusion/internal/sim"
	"zynqfusion/internal/slo"
	"zynqfusion/internal/split"
	"zynqfusion/internal/wavelet"
)

// StreamConfig describes one farm stream.
type StreamConfig struct {
	// ID names the stream; empty picks a farm-assigned "s<n>" id.
	ID string `json:"id"`
	// W, H is the fusion geometry (default 88x72, the paper's full frame).
	W int `json:"w"`
	H int `json:"h"`
	// Seed drives the stream's deterministic synthetic scene.
	Seed int64 `json:"seed"`
	// Engine selects the routing policy inside the stream's adaptive
	// engine: "adaptive" (default), "adaptive-online", the static "arm",
	// "neon", "fpga", or the cooperative split policies "split-oracle",
	// "split-adaptive" and "split-energy", which partition each wavelet
	// level across NEON and the wave engine concurrently. Every stream
	// runs behind the governor, so even "fpga" (or a split's FPGA share)
	// degrades to NEON while another stream holds the wave engine.
	Engine string `json:"engine"`
	// Levels is the DT-CWT decomposition depth (default 3).
	Levels int `json:"levels"`
	// Rule selects the fusion rule: "max" (default), "average", "window".
	Rule string `json:"rule"`
	// Frames bounds the stream length; 0 runs until stopped.
	Frames int64 `json:"frames"`
	// StartSeq is the first capture sequence number the stream produces.
	// The synthetic scene is fast-forwarded to it, so a stream resumed at
	// StartSeq k emits exactly the frames k, k+1, ... that the original
	// run would have — the pixels are a pure function of (Seed, seq) —
	// which is what lets fleet migration hand a stream to another board
	// bit-identically. Frames stays the absolute end bound: a bounded
	// resumed stream produces seqs StartSeq..Frames-1. Negative values
	// (or StartSeq beyond a nonzero Frames) are rejected at Submit.
	StartSeq int64 `json:"start_seq,omitempty"`
	// QueueCap is the capture queue depth before drop-oldest kicks in.
	// Zero selects the default (4, or the farm's DefaultQueueCap);
	// negative depths are rejected at Submit.
	QueueCap int `json:"queue_cap"`
	// IntervalMS paces the capture source in wall milliseconds. Zero
	// free-runs bounded streams; unbounded streams default to 100 ms so a
	// forgotten stream cannot peg the host.
	IntervalMS int `json:"interval_ms"`
	// DeadlineMS is the per-frame deadline in modeled milliseconds. A
	// frame fusing longer than the deadline counts as a miss; a frame
	// finishing early idles the board at the quiescent power for the
	// remaining slack, which is charged to the stream so J/frame reflects
	// the full frame period. Zero disables deadline accounting.
	DeadlineMS float64 `json:"deadline_ms"`
	// DVFSPolicy selects the PS operating-point governor: "" or
	// "nominal" pins the calibrated 533 MHz point (the fixed-platform
	// behavior), an operating-point name ("222MHz") pins that point,
	// "race-to-idle" runs every frame at the fastest point, and
	// "deadline-pace" picks the lowest point whose predicted frame time
	// meets DeadlineMS (which must then be set).
	DVFSPolicy string `json:"dvfs_policy"`
	// Pipelined runs the stream through the inter-frame pipelined
	// executor: the capture/forward/fuse/inverse/display stages of up to
	// Depth consecutive frames overlap, the FPGA lease is acquired per
	// wavelet stage instead of per frame, and each frame's reported Total
	// becomes its pipeline period (which is also what DeadlineMS is
	// checked against — a throughput deadline). Fused pixels are identical
	// either way.
	Pipelined bool `json:"pipelined"`
	// Depth is the pipelined in-flight frame budget: 0 selects the
	// default (2) when Pipelined is set, 1 degenerates to the sequential
	// schedule bit-for-bit, and values above pipeline.MaxDepth — or any
	// Depth without Pipelined — are rejected at Submit.
	Depth int `json:"pipeline_depth"`
	// SLO declares the stream's service-level objectives. When set it
	// wins over the farm-level slo.Rules resolution for this stream; nil
	// falls back to the farm rules (and to no SLO at all when those
	// declare nothing for this id). A declared deadline SLI requires
	// DeadlineMS.
	SLO *slo.SLO `json:"slo,omitempty"`
	// KernelWorkers sizes the goroutine pool the stream's wavelet and
	// fusion hot loops tile across: 0 selects GOMAXPROCS, 1 pins the
	// stream sequential, larger values are capped at GOMAXPROCS. Worker
	// count is host-side scheduling only — fused pixels, modeled stage
	// times and energy are bit-identical at every setting — so it trades
	// host CPU between streams without touching the platform model.
	// Negative values are rejected at Submit.
	KernelWorkers int `json:"kernel_workers"`
	// KernelFusion enables the operator-fusion pass for this stream's
	// executors. Like KernelWorkers it is host-side scheduling only —
	// fused pixels, stage times and energy are bit-identical either way.
	// The per-shape planner fuses only where legality holds; farm streams
	// run the governed adaptive engine, which vetoes tiling and therefore
	// fusion, so today this surfaces the planner's decision (and its
	// veto) through the kernel_fused_* telemetry rather than changing the
	// schedule.
	KernelFusion bool `json:"kernel_fusion"`
}

func (c StreamConfig) withDefaults() StreamConfig {
	if c.W == 0 && c.H == 0 {
		c.W, c.H = 88, 72
	}
	if c.Engine == "" {
		c.Engine = "adaptive"
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 4
	}
	if c.Frames == 0 && c.IntervalMS <= 0 {
		c.IntervalMS = 100
	}
	if c.Pipelined && c.Depth == 0 {
		c.Depth = 2
	}
	return c
}

// innerPolicyAt maps a StreamConfig engine name to the routing policy the
// stream's governed adaptive engine wraps at one operating point. The
// threshold crossover is frequency-aware: it shifts with the PS clock
// because the wave engine's PL time does not scale with the PS point.
func innerPolicyAt(engine string, op dvfs.OperatingPoint) (sched.Policy, error) {
	switch engine {
	case "adaptive":
		return sched.ThresholdForClock(op.Clock()), nil
	case "adaptive-online":
		return sched.NewOnline(2), nil
	case "arm", "neon", "fpga":
		return sched.Static{Engine: engine}, nil
	case "split-oracle":
		return sched.SplitDriven{S: split.NewOracle(op)}, nil
	case "split-adaptive":
		return sched.SplitDriven{S: split.NewAdaptiveSplit(op)}, nil
	case "split-energy":
		return sched.SplitDriven{S: split.NewEnergySplit(op)}, nil
	default:
		return nil, fmt.Errorf("farm: unknown engine %q", engine)
	}
}

func fusionRule(name string) (fusion.Rule, error) {
	switch name {
	case "", "max":
		return fusion.MaxMagnitude{}, nil
	case "average":
		return fusion.Average{}, nil
	case "window":
		return fusion.WindowEnergy{R: 1}, nil
	default:
		return nil, fmt.Errorf("farm: unknown fusion rule %q", name)
	}
}

// opKey identifies one executor in a stream's cache: the operating point
// it is pinned at and the effective pipeline depth it was built for (0
// for never-pipelined streams). Depth is part of the key because the SLO
// degradation controller demotes a burning stream's depth at runtime —
// each demotion level gets its own executor, built lazily, exactly like
// a DVFS point switch.
type opKey struct {
	op    string
	depth int
}

// opFuser is one stream's fusion pipeline pinned at one operating point.
// Streams build them lazily as the DVFS governor visits points; routed
// statistics accumulate into the stream via deltas against the last
// observed totals.
type opFuser struct {
	op         dvfs.OperatingPoint
	adaptive   *sched.Adaptive
	fuser      *pipeline.Fuser
	pipe       *pipeline.PipelinedFuser // non-nil when the stream overlaps frames (depth >= 2)
	lastRows   map[string]int64
	lastTime   map[string]sim.Time
	lastFusion pipeline.FusionStats // last observed fusion counters, for delta accumulation

	// traceBase maps this executor's private modeled timeline onto the
	// stream's trace timeline: each run of consecutive frames at this point
	// is rebased so its first frame starts at the stream's trace head (see
	// Stream.frameDone). Consumer goroutine only.
	traceBase sim.Time
}

// openGate always grants the FPGA; predictor calibration probes use it so
// a prediction reflects the uncontended cost model.
type openGate struct{}

// FPGAGranted implements sched.Gate.
func (openGate) FPGAGranted() bool { return true }

// Stream is one capture→fuse→display pipeline running inside a farm. The
// fusion engines are confined to the stream's worker goroutine; telemetry
// and snapshots are safe to read from anywhere.
type Stream struct {
	cfg  StreamConfig
	gov  *Governor
	gate *gate
	pool *bufpool.Pool // budgeted frame-store sub-pool

	dvfsGov    dvfs.Governor
	dvfsPolicy string // normalized policy name, valid dvfs.ForPolicy input
	deadline   sim.Time
	predict    dvfs.Predictor
	escalate   bool // deadline-pace: step up after a missed deadline
	rule       fusion.Rule
	levels     int // effective decomposition depth
	ops        map[opKey]*opFuser

	// tracker evaluates the stream's SLO (nil when none is declared);
	// ctrl is the staged degradation controller driven after each fused
	// frame (nil when degradation is disabled). Both are fed exclusively
	// from the consumer goroutine.
	tracker *slo.Tracker
	ctrl    *slo.Controller

	source Source
	queue  *frameQueue

	wantsFPGA bool

	// Per-stage lease state, confined to the consumer goroutine: the
	// pipelined executor's hooks acquire the wave engine around each
	// wavelet stage and release it across the CPU-only ones.
	stageHeld bool
	stageFPGA sim.Time // holder's routed FPGA time at acquisition

	// events and trace are the stream's observability sinks; both record
	// with zero allocations behind leaf locks, so the hot path and foreign
	// lock holders (the drop callback, the shed hook) can push freely.
	events *obs.EventRing
	trace  *obs.TraceRecorder

	// Trace placement state, confined to the consumer goroutine: the frame
	// being fused, the furthest span end recorded so far (per-track spans
	// never start a new run before it), and the operating point of the
	// previous frame — a change emits the op-switch event and arms
	// traceRebase, telling frameDone to re-anchor the (per-point) executor
	// timeline at the trace head.
	traceFrame  int64
	traceHead   sim.Time
	traceLastOp string
	traceRebase bool

	stopOnce sync.Once
	stopCh   chan struct{}
	done     chan struct{}
	stopped  atomic.Bool

	mu              sync.Mutex
	boost           int // operating points above the governor's pick
	captured        int64
	fused           int64
	lastFused       int64 // highest fused capture seq; StartSeq-1 until the first fusion
	droppedShutdown int64
	grants          int64
	denials         int64
	stages          pipeline.StageTimes
	routedRows      map[string]int64
	routedTime      map[string]int64 // sim.Time as int64 for copy ease
	residency       dvfs.Residency
	lastPoint       string
	lastSplit       float64          // FPGA row share of the most recent frame
	fstat           FusionTelemetry  // operator-fusion counters, summed across executors
	pipeBusy        map[string]int64 // per-stage busy (sim.Time as int64), pipelined streams
	pipeFill        sim.Time         // first frame's completion: the pipeline-fill latency
	deadlineMisses  int64
	slackTime       sim.Time
	slackEnergy     sim.Joules
	snapshot        *frame.Frame
	err             error
	running         bool

	// Degradation state. Written only from the consumer goroutine (the
	// controller's actuator callbacks), under s.mu so Telemetry reads a
	// consistent snapshot; the consumer goroutine itself may read its own
	// writes without the lock.
	demote       int              // pipeline-depth demotions below cfg.Depth
	downclock    int              // DVFS steps below the governor's pick
	shedEvery    int              // fuse only every shedEvery-th frame (0/1 = off)
	droppedShed  int64            // frames dropped by load shedding
	sloDropsSeen int64            // drops already fed to the SLO tracker
	degradeStage int              // controller rungs currently applied
	origQueueCap int              // queue bound to restore after a shrink
	degradeActs  map[string]int64 // action counts ("degrade:shed" etc.)

	// Fixed-bucket distributions recorded per fused frame (under s.mu, so
	// Telemetry snapshots are consistent). All four share their layouts
	// with every other stream's, which is what lets the farm aggregate
	// merge them bucket-for-bucket.
	latHist    *obs.Histogram // frame latency, modeled ms
	energyHist *obs.Histogram // energy per frame, modeled mJ
	queueHist  *obs.Histogram // capture-queue depth at fuse admission
	slackHist  *obs.Histogram // deadline slack, modeled ms (0 on a miss)
}

// Histogram layouts, shared by every stream so per-stream summaries merge
// bucket-for-bucket into the farm aggregate. The ms/mJ layouts span
// microsecond-scale stages up to hundred-second pathologies at four
// buckets per decade (~78% bound ratio).
func newTimeHist() *obs.Histogram   { return obs.NewLogHistogram(1e-3, 1e5, 4) }
func newEnergyHist() *obs.Histogram { return obs.NewLogHistogram(1e-3, 1e5, 4) }
func newDepthHist() *obs.Histogram  { return obs.NewLogHistogram(1, 1024, 4) }

// newStream validates the configuration and builds the stream, unstarted.
// Capacity knobs are checked on the raw config, before defaults fill in,
// so a negative queue depth or frame budget is refused with a descriptive
// error at Submit instead of silently becoming the default. pool is the
// stream's budgeted frame-store sub-pool; every capture buffer, transform
// plane and fused output the stream touches leases from it (nil builds a
// private unbounded pool). ring is the stream's slot in the farm's event
// log (nil builds a private ring, for tests that drive a bare stream).
// rules is the farm-level SLO rule set the stream's objectives resolve
// against (nil means only a StreamConfig-level declaration applies).
func newStream(cfg StreamConfig, gov *Governor, pool *bufpool.Pool, ring *obs.EventRing, rules *slo.Rules) (*Stream, error) {
	if cfg.QueueCap < 0 {
		return nil, fmt.Errorf("farm: queue_cap must be non-negative, got %d (zero selects the default depth)", cfg.QueueCap)
	}
	if cfg.Frames < 0 {
		return nil, fmt.Errorf("farm: frames must be non-negative, got %d (zero runs until stopped)", cfg.Frames)
	}
	if cfg.StartSeq < 0 {
		return nil, fmt.Errorf("farm: start_seq must be non-negative, got %d", cfg.StartSeq)
	}
	if cfg.Frames > 0 && cfg.StartSeq > cfg.Frames {
		return nil, fmt.Errorf("farm: start_seq %d beyond the frame bound %d", cfg.StartSeq, cfg.Frames)
	}
	if cfg.IntervalMS < 0 {
		return nil, fmt.Errorf("farm: interval_ms must be non-negative, got %d (zero free-runs bounded streams)", cfg.IntervalMS)
	}
	if cfg.Depth < 0 {
		return nil, fmt.Errorf("farm: pipeline_depth must be non-negative, got %d (zero selects the default when pipelined)", cfg.Depth)
	}
	if cfg.Depth > pipeline.MaxDepth {
		return nil, fmt.Errorf("farm: pipeline_depth %d exceeds the maximum %d", cfg.Depth, pipeline.MaxDepth)
	}
	if cfg.Depth > 0 && !cfg.Pipelined {
		return nil, fmt.Errorf("farm: pipeline_depth %d requires pipelined: true", cfg.Depth)
	}
	if cfg.KernelWorkers < 0 {
		return nil, fmt.Errorf("farm: kernel_workers must be non-negative, got %d (zero selects GOMAXPROCS)", cfg.KernelWorkers)
	}
	cfg = cfg.withDefaults()
	if cfg.W <= 0 || cfg.H <= 0 {
		return nil, fmt.Errorf("farm: bad stream geometry %dx%d", cfg.W, cfg.H)
	}
	if cfg.Levels < 0 {
		return nil, fmt.Errorf("farm: negative decomposition level %d", cfg.Levels)
	}
	if cfg.DeadlineMS < 0 {
		return nil, fmt.Errorf("farm: negative deadline %gms", cfg.DeadlineMS)
	}
	if _, err := innerPolicyAt(cfg.Engine, dvfs.Nominal()); err != nil {
		return nil, err
	}
	dg, err := dvfs.ForPolicy(cfg.DVFSPolicy)
	if err != nil {
		return nil, fmt.Errorf("farm: %w", err)
	}
	// Telemetry reports a policy name ForPolicy accepts back, so a stream
	// config can be round-tripped; a Fixed governor's name is its point.
	policyName := dg.Name()
	if fixed, ok := dg.(dvfs.Fixed); ok {
		policyName = fixed.Point.Name
	}
	deadline := sim.Time(cfg.DeadlineMS * float64(sim.Millisecond))
	// Both dynamic governors are defined against a frame deadline: pacing
	// needs it to pick a point, racing needs it to idle out the slack.
	switch dg.Name() {
	case dvfs.PolicyDeadlinePace, dvfs.PolicyRaceToIdle:
		if deadline <= 0 {
			return nil, fmt.Errorf("farm: dvfs policy %q requires deadline_ms > 0", dg.Name())
		}
	}
	rule, err := fusionRule(cfg.Rule)
	if err != nil {
		return nil, err
	}
	if pool == nil {
		pool = bufpool.New(bufpool.Options{})
	}
	src, err := NewSyntheticSourcePooled(cfg.W, cfg.H, cfg.Seed, pool)
	if err != nil {
		return nil, err
	}
	// A resumed stream replays its deterministic scene forward to the
	// handoff point instead of re-capturing: frame seq n is a pure
	// function of (Seed, n), so the continuation emits exactly the frames
	// the original run would have.
	src.Skip(cfg.StartSeq)
	// Validate the effective depth (the pipeline defaults Levels 0 to
	// DefaultLevels), so an over-deep stream is refused at Submit, not at
	// its first frame.
	levels := cfg.Levels
	if levels == 0 {
		levels = pipeline.DefaultLevels
	}
	if maxLv := wavelet.MaxLevels(cfg.W, cfg.H); levels > maxLv {
		return nil, fmt.Errorf("farm: %d levels exceed wavelet.MaxLevels(%d, %d) = %d",
			levels, cfg.W, cfg.H, maxLv)
	}
	s := &Stream{
		cfg:          cfg,
		gov:          gov,
		gate:         &gate{},
		pool:         pool,
		dvfsGov:      dg,
		dvfsPolicy:   policyName,
		deadline:     deadline,
		rule:         rule,
		levels:       levels,
		ops:          make(map[opKey]*opFuser),
		source:       src,
		lastFused:    cfg.StartSeq - 1,
		queue:        newFrameQueue(cfg.QueueCap),
		origQueueCap: cfg.QueueCap,
		wantsFPGA:    cfg.Engine != "arm" && cfg.Engine != "neon",
		stopCh:       make(chan struct{}),
		done:         make(chan struct{}),
		running:      true,
		latHist:      newTimeHist(),
		energyHist:   newEnergyHist(),
		queueHist:    newDepthHist(),
		slackHist:    newTimeHist(),
	}
	if ring == nil {
		ring = obs.NewEventLog(0).Ring(cfg.ID)
	}
	s.events = ring
	s.trace = obs.NewTraceRecorder(cfg.ID, 0)
	// The drop callback runs under the queue lock; the event ring is a leaf
	// lock, so pushing there is the only thing it may do (never s.mu, which
	// is taken before the queue lock on the telemetry path).
	s.queue.onDrop = func(seq int64) { ring.Push(obs.EventDrop, seq, 0, "") }
	// SLO resolution: an explicit StreamConfig declaration wins outright;
	// otherwise the farm rules resolve by stream id (per-stream entry,
	// then the default). A stream without objectives carries no tracker
	// and pays nothing.
	objectives := cfg.SLO
	if objectives == nil && rules != nil {
		if o, ok := rules.For(cfg.ID); ok {
			objectives = &o
		}
	}
	if objectives != nil && objectives.Enabled() {
		if err := objectives.Validate(); err != nil {
			return nil, fmt.Errorf("farm: stream %q: %w", cfg.ID, err)
		}
		if objectives.DeadlineHitRatio > 0 && deadline <= 0 {
			return nil, fmt.Errorf("farm: stream %q: slo deadline_hit_ratio requires deadline_ms > 0", cfg.ID)
		}
		scale := rules.Scale(*objectives) // nil-safe
		var minEvents int64
		if rules != nil {
			minEvents = rules.MinEvents
		}
		s.tracker = slo.NewTracker(*objectives, scale, minEvents)
		if rules == nil || !rules.NoDegradation {
			s.ctrl = slo.NewController(s, slo.EscalationHold(scale))
		}
	}
	if dg.Name() == dvfs.PolicyDeadlinePace {
		if s.predict, err = calibratePredictor(cfg); err != nil {
			return nil, err
		}
		// The predictor assumes an uncontended FPGA; when the stream loses
		// the lease its frames run longer than predicted, so pacing
		// recovers from misses by escalating (stickily) to faster points.
		s.escalate = true
	}
	return s, nil
}

// ProbeFrameTime fuses one uncontended frame of the stream configuration
// at an operating point and returns its modeled time — the cycle-based
// cost-model probe the deadline-pace governor calibrates its predictor
// with, exported so benchmarks and capacity planning use the same
// numbers the governor acts on. The probe frame carries the one-time
// costs (coefficient load, online exploration) that later frames
// amortize, so predictions err on the safe side of a deadline.
func ProbeFrameTime(cfg StreamConfig, op dvfs.OperatingPoint) (sim.Time, error) {
	cfg = cfg.withDefaults()
	inner, err := innerPolicyAt(cfg.Engine, op)
	if err != nil {
		return 0, err
	}
	rule, err := fusionRule(cfg.Rule)
	if err != nil {
		return 0, err
	}
	src, err := NewSyntheticSource(cfg.W, cfg.H, cfg.Seed)
	if err != nil {
		return 0, err
	}
	vis, ir, err := src.Next()
	if err != nil {
		return 0, fmt.Errorf("farm: probe capture: %w", err)
	}
	ad := sched.NewAdaptiveAt(sched.Governed{Inner: inner, Gate: openGate{}}, op)
	// KernelWorkers is pinned to 1: worker count never changes the modeled
	// prediction, and this throwaway fuser is never Closed, so a wider pool
	// would strand its parked helper goroutines.
	fu := pipeline.New(ad, pipeline.Config{Levels: cfg.Levels, Rule: rule, IncludeIO: true, KernelWorkers: 1})
	_, st, err := fu.FuseFrames(vis, ir)
	if err != nil {
		return 0, fmt.Errorf("farm: probe at %s: %w", op.Name, err)
	}
	return st.Total, nil
}

// ProbePipelinePeriod predicts the worst steady-state frame period of an
// uncontended pipelined stream at an operating point — the figure a
// pipelined stream's deadline is checked against, so it is what the
// deadline-pace predictor must be calibrated with (the sequential
// ProbeFrameTime would overstate a pipelined stream's period by the
// whole overlap and pacing would degenerate to racing). One probe frame
// measures the station durations d_i; with bottleneck b = max_i d_i and
// latency L = sum_i d_i, a bottleneck-limited pipeline (L <= depth*b)
// ticks steadily at b, while an admission-limited one oscillates between
// L-(depth-1)*b and b (a frame admitted on its depth-predecessor's
// completion sprints through partly drained stations, the next one
// queues), so the peak phase
//
//	period = max( b,  L - (depth-1)*b )
//
// is what a per-frame deadline must clear. No fill frames need to be
// fused, and the probe frame carries the one-time costs later frames
// amortize, keeping the prediction on the safe side of a deadline.
func ProbePipelinePeriod(cfg StreamConfig, op dvfs.OperatingPoint) (sim.Time, error) {
	cfg = cfg.withDefaults()
	inner, err := innerPolicyAt(cfg.Engine, op)
	if err != nil {
		return 0, err
	}
	rule, err := fusionRule(cfg.Rule)
	if err != nil {
		return 0, err
	}
	src, err := NewSyntheticSource(cfg.W, cfg.H, cfg.Seed)
	if err != nil {
		return 0, err
	}
	vis, ir, err := src.Next()
	if err != nil {
		return 0, fmt.Errorf("farm: probe capture: %w", err)
	}
	ad := sched.NewAdaptiveAt(sched.Governed{Inner: inner, Gate: openGate{}}, op)
	// KernelWorkers 1 for the same reason as ProbeFrameTime: the probe
	// fuser is never Closed.
	pp, err := pipeline.NewPipelined(pipeline.New(ad, pipeline.Config{Levels: cfg.Levels, Rule: rule, IncludeIO: true, KernelWorkers: 1}), cfg.Depth)
	if err != nil {
		return 0, fmt.Errorf("farm: probe at %s: %w", op.Name, err)
	}
	if _, _, err := pp.FuseFrames(vis, ir); err != nil {
		return 0, fmt.Errorf("farm: probe at %s: %w", op.Name, err)
	}
	var bottleneck, latency sim.Time
	for _, st := range pp.Stats().Stages {
		if st.Busy > bottleneck {
			bottleneck = st.Busy
		}
		latency += st.Busy
	}
	period := bottleneck
	if peak := latency - sim.Time(cfg.Depth-1)*bottleneck; peak > period {
		period = peak
	}
	// Split policies interleave with an error-diffusion carry, so a
	// station's duration wobbles by a row or two frame to frame; a ~1%
	// headroom keeps the prediction above that jitter.
	return period + period/128, nil
}

// calibratePredictor probes every operating point and returns a
// table-lookup predictor. Pipelined (overlapped) streams are probed
// through the pipelined executor, so the prediction is the steady frame
// period their deadline is actually checked against.
func calibratePredictor(cfg StreamConfig) (dvfs.Predictor, error) {
	probe := ProbeFrameTime
	if cfg.Pipelined && cfg.Depth >= 2 {
		probe = ProbePipelinePeriod
	}
	pred := make(map[string]sim.Time)
	for _, op := range dvfs.List() {
		t, err := probe(cfg, op)
		if err != nil {
			return nil, err
		}
		pred[op.Name] = t
	}
	return func(op dvfs.OperatingPoint) sim.Time { return pred[op.Name] }, nil
}

// effDepth is the stream's current effective pipeline depth: the
// configured depth minus the degradation controller's demotions, floored
// at 1 (0 for never-pipelined streams). Consumer goroutine only.
func (s *Stream) effDepth() int {
	if !s.cfg.Pipelined {
		return 0
	}
	d := s.cfg.Depth - s.demote
	if d < 1 {
		d = 1
	}
	return d
}

// fuserAt returns (building lazily) the stream's pipeline at an operating
// point and the current effective depth. Only the consumer goroutine
// touches the cache. A fully demoted pipelined stream (effective depth 1)
// runs the sequential executor — per-frame lease and all — which is the
// documented depth-1 degenerate behavior.
func (s *Stream) fuserAt(op dvfs.OperatingPoint) *opFuser {
	key := opKey{op: op.Name, depth: s.effDepth()}
	if of, ok := s.ops[key]; ok {
		return of
	}
	inner, err := innerPolicyAt(s.cfg.Engine, op)
	if err != nil {
		// The engine name was validated at Submit; this cannot happen.
		panic("farm: " + err.Error())
	}
	ad := sched.NewAdaptiveAt(sched.Governed{Inner: inner, Gate: s.gate}, op)
	of := &opFuser{
		op:       op,
		adaptive: ad,
		fuser: pipeline.New(ad, pipeline.Config{
			Levels: s.cfg.Levels, Rule: s.rule, IncludeIO: true,
			Pool: s.pool, KernelWorkers: s.cfg.KernelWorkers,
			KernelFusion: s.cfg.KernelFusion,
		}),
		lastRows: make(map[string]int64),
		lastTime: make(map[string]sim.Time),
	}
	if key.depth >= 2 {
		pp, err := pipeline.NewPipelined(of.fuser, key.depth)
		if err != nil {
			// Depth was validated at Submit; this cannot happen.
			panic("farm: " + err.Error())
		}
		pp.SetHooks(pipeline.Hooks{
			StageStart: func(stg pipeline.Stage, seq int64) { s.stageStart(of, stg) },
			StageEnd:   func(stg pipeline.Stage, seq int64, d sim.Time) { s.stageEnd(of, stg, d) },
			FrameDone:  func(seq int64, spans []pipeline.StageSpan) { s.frameDone(of, spans) },
		})
		of.pipe = pp
	}
	s.ops[key] = of
	return of
}

// stageStart brackets one pipelined station: wavelet stages contend for
// the frame-store-granular FPGA lease, CPU-only stages run lease-free so
// other streams' wavelet stages can interleave on the wave engine. Runs
// on the consumer goroutine.
func (s *Stream) stageStart(of *opFuser, stg pipeline.Stage) {
	if !s.wantsFPGA || !stg.Wavelet {
		return
	}
	granted := s.gov.TryAcquire(s.cfg.ID)
	s.stageHeld = granted
	s.gate.set(granted)
	s.stageFPGA = of.adaptive.RoutedTime["fpga"]
	s.mu.Lock()
	// Pipelined streams count lease outcomes per wavelet stage (the
	// arbitration really is per stage), so grants+denials advance three
	// times per frame instead of once.
	if granted {
		s.grants++
	} else {
		s.denials++
	}
	s.mu.Unlock()
}

// stageEnd closes the bracket: record the station span for occupancy
// telemetry and return the lease with the wave-engine busy time this
// stage actually consumed.
func (s *Stream) stageEnd(of *opFuser, stg pipeline.Stage, d sim.Time) {
	s.mu.Lock()
	if s.pipeBusy == nil {
		s.pipeBusy = make(map[string]int64)
	}
	s.pipeBusy[stg.Name] += int64(d)
	s.mu.Unlock()
	if !s.wantsFPGA || !stg.Wavelet {
		return
	}
	s.gate.set(false)
	if s.stageHeld {
		s.stageHeld = false
		s.gov.Release(s.cfg.ID, of.adaptive.RoutedTime["fpga"]-s.stageFPGA)
	}
}

// frameDone places a pipelined frame's station spans onto the stream's
// trace. Each operating point's executor keeps its own modeled timeline
// starting at zero, so the stream rebases the first frame of every run of
// consecutive same-point frames to start at the trace head: spans stay
// monotone per track across DVFS switches while genuine stage overlap
// within a run is preserved exactly. Runs on the consumer goroutine.
func (s *Stream) frameDone(of *opFuser, spans []pipeline.StageSpan) {
	if len(spans) == 0 {
		return
	}
	if s.traceRebase {
		earliest := spans[0].Start
		for _, sp := range spans[1:] {
			if sp.Start < earliest {
				earliest = sp.Start
			}
		}
		of.traceBase = s.traceHead - earliest
		s.traceRebase = false
	}
	for _, sp := range spans {
		start, end := sp.Start+of.traceBase, sp.End+of.traceBase
		s.trace.Span(s.traceFrame, sp.Name, sp.Name, start, end)
		if end > s.traceHead {
			s.traceHead = end
		}
	}
}

// traceSequential synthesizes back-to-back stage spans for a frame fused
// on the sequential executor, which has no pipeline timeline of its own.
// Runs on the consumer goroutine; zero allocations.
func (s *Stream) traceSequential(seq int64, st pipeline.StageTimes) {
	t := s.traceHead
	stages := [...]struct {
		name string
		d    sim.Time
	}{
		{"capture", st.Capture}, {"forward", st.Forward}, {"fuse", st.Fuse},
		{"inverse", st.Inverse}, {"display", st.Display},
	}
	for _, sp := range stages {
		if sp.d <= 0 {
			continue
		}
		s.trace.Span(seq, sp.name, sp.name, t, t+sp.d)
		t += sp.d
	}
	s.traceHead = t
}

// TraceSpans snapshots the stream's trace ring, keeping the last frames
// distinct frame numbers (<= 0 keeps everything retained).
func (s *Stream) TraceSpans(frames int) []obs.TraceSpan {
	return s.trace.Spans(frames)
}

// start launches the producer and consumer goroutines.
func (s *Stream) start() {
	s.events.Push(obs.EventStreamStart, -1, 0, "")
	go s.produce()
	go s.consume()
}

// produce captures frame pairs into the bounded queue until the frame
// budget runs out or the stream is stopped, then closes the queue.
func (s *Stream) produce() {
	defer s.queue.Close()
	interval := time.Duration(s.cfg.IntervalMS) * time.Millisecond
	for n := s.cfg.StartSeq; s.cfg.Frames == 0 || n < s.cfg.Frames; n++ {
		select {
		case <-s.stopCh:
			return
		default:
		}
		vis, ir, err := s.source.Next()
		if err != nil {
			s.fail(fmt.Errorf("farm: capture: %w", err))
			return
		}
		s.mu.Lock()
		s.captured++
		s.mu.Unlock()
		s.queue.Push(framePair{vis: vis, ir: ir, seq: n})
		if interval > 0 {
			select {
			case <-s.stopCh:
				return
			case <-time.After(interval):
			}
		}
	}
}

// consume fuses queued pairs under the governor's FPGA arbitration.
func (s *Stream) consume() {
	defer s.finish()
	for {
		p, ok := s.queue.Pop()
		if !ok {
			return
		}
		if s.stopped.Load() {
			p.release() // unfused pair's capture stores go back to the pool
			s.mu.Lock()
			s.droppedShutdown++
			s.mu.Unlock()
			continue
		}
		if s.shedNow(p.seq) {
			p.release()
			s.events.Push(obs.EventDrop, p.seq, 0, "shed")
			continue
		}
		s.fuseOne(p)
	}
}

// shedNow implements the last degradation rung: while load shedding is
// active only every shedEvery-th captured frame is fused, the rest are
// dropped at admission and counted like queue drops. Runs on the
// consumer goroutine.
func (s *Stream) shedNow(seq int64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.shedEvery > 1 && seq%int64(s.shedEvery) != 0 {
		s.droppedShed++
		return true
	}
	return false
}

func (s *Stream) fuseOne(p framePair) {
	op := s.dvfsGov.Pick(s.predict, s.deadline)
	s.mu.Lock()
	// The deadline-miss escalation boost and the SLO controller's
	// down-clock pull in opposite directions; the net step is applied
	// (dvfs.Faster clamps at both ends of the table).
	boost := s.boost - s.downclock
	s.mu.Unlock()
	if boost != 0 {
		op = dvfs.Faster(op, boost)
	}
	s.traceFrame = p.seq
	queueDepth := s.queue.Len() // pairs still waiting behind this one
	if s.traceLastOp != op.Name {
		// The switch instant lands on the trace before the new run's spans,
		// and the PS clock counter tracks the staircase. The first frame's
		// point is a switch too — from nothing — which keeps the counter
		// track anchored at t=0.
		if s.traceLastOp != "" {
			s.events.Push(obs.EventOpSwitch, p.seq, op.MHz(), op.Name)
		}
		s.trace.Instant(p.seq, "dvfs", op.Name, s.traceHead)
		s.trace.Counter(p.seq, "clock_mhz", s.traceHead, op.MHz())
		s.traceLastOp = op.Name
		s.traceRebase = true
	}
	of := s.fuserAt(op)
	var fused *frame.Frame
	var st pipeline.StageTimes
	var err error
	granted := false
	warm := false
	pipelined := of.pipe != nil
	if pipelined {
		// Frames below the executor's depth on *this executor's* timeline
		// carry the pipeline fill — at stream start, and again whenever a
		// DVFS boost, governor pick or depth demotion lands on an
		// executor whose pipeline is still cold.
		warm = of.pipe.Frames() < int64(of.pipe.Depth())
		// The per-stage hooks acquire and release the FPGA lease around
		// each wavelet station and count the grant outcomes.
		fused, st, err = of.pipe.FuseFrames(p.vis, p.ir)
	} else {
		if s.wantsFPGA {
			granted = s.gov.TryAcquire(s.cfg.ID)
			s.gate.set(granted)
		}
		fpgaBefore := of.adaptive.RoutedTime["fpga"]
		fused, st, err = of.fuser.FuseFrames(p.vis, p.ir)
		if s.wantsFPGA {
			s.gate.set(false)
			if granted {
				s.gov.Release(s.cfg.ID, of.adaptive.RoutedTime["fpga"]-fpgaBefore)
			}
		}
	}
	// The capture frame stores are consumed; hand them back for the next
	// capture regardless of how the fusion went.
	p.release()
	if err != nil {
		s.fail(fmt.Errorf("farm: fuse: %w", err))
		return
	}
	s.gov.AddFrame(s.cfg.ID, st)

	// Deadline accounting: a frame finishing early idles out its slack at
	// the quiescent board power (the race-to-idle / pace tradeoff is
	// meaningless without it); a frame overrunning counts as a miss.
	var slack sim.Time
	var slackEnergy sim.Joules
	missed := false
	if s.deadline > 0 {
		if st.Total > s.deadline {
			missed = true
		} else {
			slack = s.deadline - st.Total
			slackEnergy = s.gov.AddIdle(s.cfg.ID, slack)
		}
	}
	s.mu.Lock()
	// A fill frame's period includes the one-time ramp to steady state,
	// so an overrun there is a warm-up transient, not a deadline miss —
	// counting it (or letting it trigger the never-decaying escalation
	// below) would permanently penalize every deadline below the fill
	// latency that the steady pipeline meets easily, and would cascade
	// across operating points since each starts a cold pipeline.
	if missed && warm {
		missed = false
	}
	// Sticky escalation: a missed deadline raises the remaining frames'
	// operating point while headroom exists. It never decays — under the
	// persistent contention that causes misses, oscillating back down
	// would just alternate misses.
	if missed && s.escalate && dvfs.Faster(op, 1) != op {
		s.boost++
	}
	s.fused++
	s.lastFused = p.seq
	s.stages.Add(st)
	if s.cfg.Pipelined && s.fused == 1 {
		s.pipeFill = st.Total // first frame's completion: fill latency
	}
	if !pipelined {
		if granted {
			s.grants++
		} else if s.wantsFPGA {
			s.denials++
		}
	}
	if s.routedRows == nil {
		s.routedRows = make(map[string]int64)
		s.routedTime = make(map[string]int64)
	}
	var frameRows, frameFPGARows int64
	for k, v := range of.adaptive.RoutedRows {
		d := v - of.lastRows[k]
		s.routedRows[k] += d
		of.lastRows[k] = v
		frameRows += d
		if k == "fpga" {
			frameFPGARows += d
		}
	}
	if frameRows > 0 {
		s.lastSplit = float64(frameFPGARows) / float64(frameRows)
	}
	for k, v := range of.adaptive.RoutedTime {
		s.routedTime[k] += int64(v - of.lastTime[k])
		of.lastTime[k] = v
	}
	if s.cfg.KernelFusion {
		fs := of.fuser.FusionStats()
		s.fstat.FusedFrames += fs.FusedFrames - of.lastFusion.FusedFrames
		s.fstat.PlanesElided += fs.PlanesElided - of.lastFusion.PlanesElided
		s.fstat.BytesSaved += fs.BytesSaved - of.lastFusion.BytesSaved
		s.fstat.PlanHits += int64(fs.PlanHits - of.lastFusion.PlanHits)
		s.fstat.PlanMisses += int64(fs.PlanMisses - of.lastFusion.PlanMisses)
		of.lastFusion = fs
	}
	s.residency.Add(op, st.Total)
	s.lastPoint = op.Name
	if missed {
		s.deadlineMisses++
	}
	s.slackTime += slack
	s.slackEnergy += slackEnergy
	// Per-frame distributions, recorded with zero allocations. Latency is
	// the frame's end-to-end span (its period for sequential streams, where
	// the two coincide); energy is the modeled charge; misses observe zero
	// slack so the slack distribution covers every deadline frame.
	lat := st.Latency
	if lat == 0 {
		lat = st.Total
	}
	s.latHist.Observe(float64(lat) / float64(sim.Millisecond))
	s.energyHist.Observe(float64(st.Energy) * 1e3) // joules → mJ
	s.queueHist.Observe(float64(queueDepth))
	if s.deadline > 0 {
		s.slackHist.Observe(float64(slack) / float64(sim.Millisecond))
	}
	split := s.lastSplit
	// The stream owns the fused lease until the next frame displaces it —
	// the display frame store of the capture→fuse→display chain.
	if s.snapshot != nil {
		s.snapshot.Release()
	}
	s.snapshot = fused
	// The stream's modeled period clock — busy spans plus idled-out
	// deadline slack — is the timeline the SLO windows rotate on.
	sloNow := s.stages.Total + s.slackTime
	s.mu.Unlock()

	if !pipelined {
		s.traceSequential(p.seq, st)
	}
	s.trace.Counter(p.seq, "split_ratio", s.traceHead, split)
	if missed {
		s.events.Push(obs.EventDeadlineMiss, p.seq,
			float64(st.Total-s.deadline)/float64(sim.Millisecond), op.Name)
	}
	if s.tracker != nil {
		s.observeSLO(p.seq, sloNow, lat, st.Energy)
	}
}

// observeSLO feeds one fused frame into the SLO tracker, publishes any
// alert edges as structured events and trace instants, and advances the
// degradation controller. Runs on the consumer goroutine after the
// frame's accounting; allocation-free unless an alert transitions or an
// action applies (both rare by construction).
func (s *Stream) observeSLO(seq int64, now sim.Time, lat sim.Time, energy sim.Joules) {
	drops := s.queue.Dropped()
	s.mu.Lock()
	drops += s.droppedShutdown + s.droppedShed
	newDrops := drops - s.sloDropsSeen
	s.sloDropsSeen = drops
	s.mu.Unlock()
	o := slo.FrameObs{
		Now:       now,
		LatencyMS: float64(lat) / float64(sim.Millisecond),
		EnergyMJ:  float64(energy) * 1e3,
		Dropped:   newDrops,
	}
	if s.deadline > 0 {
		// The SLO's deadline SLI is latency-shaped on purpose: it asks
		// whether the frame itself arrived in time, not whether the
		// pipelined executor sustained its period — which is exactly what
		// depth demotion can recover.
		o.HasDeadline = true
		o.DeadlineMet = lat <= s.deadline
	}
	for _, tr := range s.tracker.Observe(o) {
		kind := obs.EventAlertClear
		if tr.Firing {
			kind = obs.EventAlertFire
		}
		label := tr.SLI + "/" + tr.Severity
		s.events.Push(kind, seq, tr.Burn, label)
		s.trace.Instant(seq, "slo", kind+":"+label, s.traceHead)
	}
	if s.ctrl == nil {
		return
	}
	sliName, burning := s.tracker.Burning()
	timeSLI := sliName == slo.SLILatency || sliName == slo.SLIDeadline
	act, escalated, ok := s.ctrl.Tick(now, burning, timeSLI)
	if !ok {
		return
	}
	kind := obs.EventRestore
	if escalated {
		kind = obs.EventDegrade
	}
	stage := s.ctrl.Stage()
	s.mu.Lock()
	s.degradeStage = stage
	if s.degradeActs == nil {
		s.degradeActs = make(map[string]int64)
	}
	s.degradeActs[kind+":"+string(act)]++
	s.mu.Unlock()
	s.events.Push(kind, seq, float64(stage), string(act))
	s.trace.Instant(seq, "slo", kind+":"+string(act), s.traceHead)
}

// ApplyAction implements slo.Actuator: one degradation rung takes
// effect. Called by the controller on the consumer goroutine; state is
// written under s.mu so Telemetry observes it consistently.
func (s *Stream) ApplyAction(a slo.Action) bool {
	switch a {
	case slo.ActionDemoteDepth:
		s.mu.Lock()
		defer s.mu.Unlock()
		if !s.cfg.Pipelined || s.cfg.Depth-s.demote <= 1 {
			return false
		}
		s.demote++
		return true
	case slo.ActionDownclock:
		s.mu.Lock()
		defer s.mu.Unlock()
		if s.downclock >= len(dvfs.List())-1 {
			return false
		}
		s.downclock++
		return true
	case slo.ActionShrinkQueue:
		if c := s.queue.Cap(); c > 1 {
			s.queue.SetCap(c / 2)
			return true
		}
		return false
	case slo.ActionShed:
		s.mu.Lock()
		defer s.mu.Unlock()
		if s.shedEvery > 1 {
			return false
		}
		s.shedEvery = 2
		return true
	}
	return false
}

// RevertAction implements slo.Actuator: undo one rung once the alerts
// have stayed clear through the recovery hold.
func (s *Stream) RevertAction(a slo.Action) bool {
	switch a {
	case slo.ActionDemoteDepth:
		s.mu.Lock()
		defer s.mu.Unlock()
		if s.demote == 0 {
			return false
		}
		s.demote--
		return true
	case slo.ActionDownclock:
		s.mu.Lock()
		defer s.mu.Unlock()
		if s.downclock == 0 {
			return false
		}
		s.downclock--
		return true
	case slo.ActionShrinkQueue:
		c := s.queue.Cap()
		if c >= s.origQueueCap {
			return false
		}
		if c *= 2; c > s.origQueueCap {
			c = s.origQueueCap
		}
		s.queue.SetCap(c)
		return true
	case slo.ActionShed:
		s.mu.Lock()
		defer s.mu.Unlock()
		if s.shedEvery == 0 {
			return false
		}
		s.shedEvery = 0
		return true
	}
	return false
}

// PageActive reports whether any of the stream's SLO page alerts is
// firing — the farm's admission gate reads it.
func (s *Stream) PageActive() bool {
	return s.tracker != nil && s.tracker.PageActive()
}

// SLOStatus snapshots the stream's SLO evaluation (zero Status and false
// when the stream declares no objectives).
func (s *Stream) SLOStatus() (slo.Status, bool) {
	if s.tracker == nil {
		return slo.Status{}, false
	}
	return s.tracker.Status(), true
}

// fail records the stream's terminal error and initiates shutdown.
func (s *Stream) fail(err error) {
	s.mu.Lock()
	first := s.err == nil
	if first {
		s.err = err
	}
	s.mu.Unlock()
	if first {
		s.events.Push(obs.EventStreamError, -1, 0, err.Error())
	}
	s.Stop()
}

func (s *Stream) finish() {
	s.mu.Lock()
	s.running = false
	// Materialize the final snapshot out of the pool: /snapshot.pgm stays
	// servable after the stream ends, while every lease — workspaces and
	// display store alike — returns, so a stopped stream holds zero pool
	// bytes (the leak detector's invariant).
	if s.snapshot != nil && s.snapshot.Leased() {
		plain := s.snapshot.Clone()
		s.snapshot.Release()
		s.snapshot = plain
	}
	s.mu.Unlock()
	// The fusion engines are confined to this (consumer) goroutine, so
	// closing the per-operating-point pipelines here is safe.
	for _, of := range s.ops {
		of.fuser.Close()
	}
	// Hand the retired stream's arena slice back to the farm: parked
	// planes are freed and the sub-pool detaches from the shared cap, so
	// stream churn never strands frame stores. Telemetry keeps reading
	// the drained pool's counters.
	s.pool.Drain()
	s.gov.StreamDone(s.cfg.ID)
	s.events.Push(obs.EventStreamStop, -1, 0, "")
	close(s.done)
}

// Stop asks the stream to shut down; queued-but-unfused pairs are counted
// as dropped. Stop is idempotent and returns immediately — use Done to
// wait.
func (s *Stream) Stop() {
	s.stopOnce.Do(func() {
		s.stopped.Store(true)
		close(s.stopCh)
	})
}

// Done is closed when the stream's worker has exited.
func (s *Stream) Done() <-chan struct{} { return s.done }

// ID returns the stream id.
func (s *Stream) ID() string { return s.cfg.ID }

// Config returns the effective stream configuration.
func (s *Stream) Config() StreamConfig { return s.cfg }

// Snapshot returns a copy of the most recent fused frame (nil before the
// first fusion completes). The copy is plain and independent, safe to
// hold for any lifetime; servers that only need the encoded bytes should
// use AppendSnapshotPGM, which skips the copy.
func (s *Stream) Snapshot() *frame.Frame {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.snapshot == nil {
		return nil
	}
	return s.snapshot.Clone()
}

// AppendSnapshotPGM appends the latest fused frame's binary PGM encoding
// to dst, reporting false (and dst unchanged) before the first fusion.
// Encoding straight off the display frame store avoids both the defensive
// Snapshot copy and a per-request byte-slice allocation: the caller hands
// the same buffer back on every request.
//
// The encode runs *outside* the stream lock under its own lease
// reference: the store cannot return to the pool mid-encode even if the
// next frame displaces the snapshot or Stop's end-of-stream materialize
// releases it concurrently — the invariant is structural (refcounts), not
// an accident of lock ordering — and a slow encode no longer stalls the
// fuse hot path.
func (s *Stream) AppendSnapshotPGM(dst []byte) ([]byte, bool) {
	s.mu.Lock()
	snap := s.snapshot
	if snap == nil {
		s.mu.Unlock()
		return dst, false
	}
	// Retain is a no-op on the plain post-finish snapshot, which nothing
	// mutates after the stream ends; a live stream's snapshot is always
	// leased and the extra reference pins its store across the encode.
	snap.Retain()
	s.mu.Unlock()
	dst = snap.AppendPGM(dst)
	snap.Release()
	return dst, true
}

// LastFusedSeq returns the highest capture sequence number fused so far
// (StartSeq-1 before the first fusion) — the resume point a fleet
// migration hands to the continuation stream on the target board.
func (s *Stream) LastFusedSeq() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastFused
}

// Telemetry snapshots the stream's accumulated record.
func (s *Stream) Telemetry() StreamTelemetry {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := StreamTelemetry{
		ID:             s.cfg.ID,
		Engine:         s.cfg.Engine,
		W:              s.cfg.W,
		H:              s.cfg.H,
		Levels:         s.levels,
		DVFSPolicy:     s.dvfsPolicy,
		DeadlineMS:     s.cfg.DeadlineMS,
		Running:        s.running,
		Captured:       s.captured,
		Fused:          s.fused,
		Dropped:        s.queue.Dropped() + s.droppedShutdown + s.droppedShed,
		QueueDepth:     s.queue.Len(),
		Stages:         stageJSON(s.stages),
		Point:          s.lastPoint,
		DeadlineMisses: s.deadlineMisses,
		SlackTime:      s.slackTime,
		SlackEnergy:    s.slackEnergy,
		DVFSBoost:      s.boost,
		FPGAGrants:     s.grants,
		FPGADenials:    s.denials,
		SplitRatio:     s.lastSplit,
	}
	if s.cfg.Pipelined {
		t.Pipelined = true
		t.PipelineDepth = s.cfg.Depth
		t.PipelineFill = s.pipeFill
		if s.stages.Total > 0 {
			// Little's law over the summed periods: mean frames in flight.
			t.PipelineInFlight = float64(s.stages.Latency) / float64(s.stages.Total)
			if len(s.pipeBusy) > 0 {
				t.StageOccupancy = make(map[string]float64, len(s.pipeBusy))
				for k, v := range s.pipeBusy {
					t.StageOccupancy[k] = float64(v) / float64(s.stages.Total)
				}
			}
		}
	}
	if s.err != nil {
		t.Err = s.err.Error()
	}
	if s.tracker != nil {
		// The tracker and queue locks are leaves, safe under s.mu (the
		// same ordering the drop path already relies on).
		st := s.tracker.Status()
		t.SLO = &st
		d := &DegradationTelemetry{
			Stage:          s.degradeStage,
			DepthDemotions: s.demote,
			DVFSDownclock:  s.downclock,
			QueueCap:       s.queue.Cap(),
			ShedEvery:      s.shedEvery,
			ShedDropped:    s.droppedShed,
		}
		if len(s.degradeActs) > 0 {
			d.Actions = make(map[string]int64, len(s.degradeActs))
			for k, v := range s.degradeActs {
				d.Actions[k] = v
			}
		}
		t.Degradation = d
	}
	if s.pool != nil {
		ps := s.pool.Stats()
		t.Pool = &ps
	}
	if s.cfg.KernelFusion {
		ft := s.fstat
		ft.Enabled = true
		t.Fusion = &ft
	}
	if s.latHist.Count() > 0 {
		lh, eh, qh := s.latHist.Snapshot(), s.energyHist.Snapshot(), s.queueHist.Snapshot()
		t.LatencyHist, t.EnergyHist, t.QueueDepthHist = &lh, &eh, &qh
		if s.deadline > 0 {
			sh := s.slackHist.Snapshot()
			t.SlackHist = &sh
		}
	}
	if s.fused > 0 {
		t.EnergyPerFrame = s.stages.Energy / sim.Joules(s.fused)
		if s.deadline > 0 {
			t.EnergyPerPeriod = (s.stages.Energy + s.slackEnergy) / sim.Joules(s.fused)
		}
	}
	// Rates and mean power are computed over the stream's full modeled
	// period — active spans plus idled-out deadline slack — so a paced
	// stream's throughput and board draw agree with the governor ledger.
	// Without a deadline the slack is zero and this is the active span.
	if period := s.stages.Total + s.slackTime; period > 0 {
		t.MeanPower = sim.Watts(float64(s.stages.Energy+s.slackEnergy) / period.Seconds())
		t.FusedPerSecond = float64(s.fused) / period.Seconds()
	}
	if res := s.residency.Time(); len(res) > 0 {
		t.OpResidency = res
		t.OpFrames = s.residency.Frames()
	}
	t.RoutedRows = make(map[string]int64, len(s.routedRows))
	t.RoutedTime = make(map[string]sim.Time, len(s.routedTime))
	var kernel, fpga int64
	for k, v := range s.routedRows {
		t.RoutedRows[k] = v
	}
	for k, v := range s.routedTime {
		t.RoutedTime[k] = sim.Time(v)
		kernel += v
		if k == "fpga" {
			fpga = v
		}
	}
	if kernel > 0 {
		t.FPGAShare = float64(fpga) / float64(kernel)
	}
	return t
}

package farm

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"zynqfusion/internal/frame"
	"zynqfusion/internal/fusion"
	"zynqfusion/internal/pipeline"
	"zynqfusion/internal/sched"
	"zynqfusion/internal/sim"
	"zynqfusion/internal/wavelet"
)

// StreamConfig describes one farm stream.
type StreamConfig struct {
	// ID names the stream; empty picks a farm-assigned "s<n>" id.
	ID string `json:"id"`
	// W, H is the fusion geometry (default 88x72, the paper's full frame).
	W int `json:"w"`
	H int `json:"h"`
	// Seed drives the stream's deterministic synthetic scene.
	Seed int64 `json:"seed"`
	// Engine selects the routing policy inside the stream's adaptive
	// engine: "adaptive" (default), "adaptive-online", or the static
	// "arm", "neon", "fpga". Every stream runs behind the governor, so
	// even "fpga" degrades to NEON while another stream holds the wave
	// engine.
	Engine string `json:"engine"`
	// Levels is the DT-CWT decomposition depth (default 3).
	Levels int `json:"levels"`
	// Rule selects the fusion rule: "max" (default), "average", "window".
	Rule string `json:"rule"`
	// Frames bounds the stream length; 0 runs until stopped.
	Frames int64 `json:"frames"`
	// QueueCap is the capture queue depth before drop-oldest kicks in
	// (default 4).
	QueueCap int `json:"queue_cap"`
	// IntervalMS paces the capture source in wall milliseconds. Zero
	// free-runs bounded streams; unbounded streams default to 100 ms so a
	// forgotten stream cannot peg the host.
	IntervalMS int `json:"interval_ms"`
}

func (c StreamConfig) withDefaults() StreamConfig {
	if c.W == 0 && c.H == 0 {
		c.W, c.H = 88, 72
	}
	if c.Engine == "" {
		c.Engine = "adaptive"
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 4
	}
	if c.Frames == 0 && c.IntervalMS <= 0 {
		c.IntervalMS = 100
	}
	return c
}

// innerPolicy maps a StreamConfig engine name to the routing policy that
// the stream's governed adaptive engine wraps.
func innerPolicy(engine string) (sched.Policy, error) {
	switch engine {
	case "adaptive":
		return sched.Threshold{}, nil
	case "adaptive-online":
		return sched.NewOnline(2), nil
	case "arm", "neon", "fpga":
		return sched.Static{Engine: engine}, nil
	default:
		return nil, fmt.Errorf("farm: unknown engine %q", engine)
	}
}

func fusionRule(name string) (fusion.Rule, error) {
	switch name {
	case "", "max":
		return fusion.MaxMagnitude{}, nil
	case "average":
		return fusion.Average{}, nil
	case "window":
		return fusion.WindowEnergy{R: 1}, nil
	default:
		return nil, fmt.Errorf("farm: unknown fusion rule %q", name)
	}
}

// Stream is one capture→fuse→display pipeline running inside a farm. The
// fusion engine is confined to the stream's worker goroutine; telemetry
// and snapshots are safe to read from anywhere.
type Stream struct {
	cfg  StreamConfig
	gov  *Governor
	gate *gate

	fuser    *pipeline.Fuser
	adaptive *sched.Adaptive
	source   Source
	queue    *frameQueue

	wantsFPGA bool

	stopOnce sync.Once
	stopCh   chan struct{}
	done     chan struct{}
	stopped  atomic.Bool

	mu              sync.Mutex
	captured        int64
	fused           int64
	droppedShutdown int64
	grants          int64
	denials         int64
	stages          pipeline.StageTimes
	routedRows      map[string]int64
	routedTime      map[string]int64 // sim.Time as int64 for copy ease
	snapshot        *frame.Frame
	err             error
	running         bool
}

// newStream validates the configuration and builds the stream, unstarted.
func newStream(cfg StreamConfig, gov *Governor) (*Stream, error) {
	cfg = cfg.withDefaults()
	if cfg.W <= 0 || cfg.H <= 0 {
		return nil, fmt.Errorf("farm: bad stream geometry %dx%d", cfg.W, cfg.H)
	}
	if cfg.Levels < 0 {
		return nil, fmt.Errorf("farm: negative decomposition level %d", cfg.Levels)
	}
	inner, err := innerPolicy(cfg.Engine)
	if err != nil {
		return nil, err
	}
	rule, err := fusionRule(cfg.Rule)
	if err != nil {
		return nil, err
	}
	src, err := NewSyntheticSource(cfg.W, cfg.H, cfg.Seed)
	if err != nil {
		return nil, err
	}
	g := &gate{}
	ad := sched.NewAdaptive(sched.Governed{Inner: inner, Gate: g})
	fu := pipeline.New(ad, pipeline.Config{Levels: cfg.Levels, Rule: rule, IncludeIO: true})
	// Validate the effective depth (the pipeline defaults Levels 0 to 3),
	// so an over-deep stream is refused at Submit, not at its first frame.
	if levels, maxLv := fu.Config().Levels, wavelet.MaxLevels(cfg.W, cfg.H); levels > maxLv {
		return nil, fmt.Errorf("farm: %d levels exceed wavelet.MaxLevels(%d, %d) = %d",
			levels, cfg.W, cfg.H, maxLv)
	}
	s := &Stream{
		cfg:       cfg,
		gov:       gov,
		gate:      g,
		fuser:     fu,
		adaptive:  ad,
		source:    src,
		queue:     newFrameQueue(cfg.QueueCap),
		wantsFPGA: cfg.Engine != "arm" && cfg.Engine != "neon",
		stopCh:    make(chan struct{}),
		done:      make(chan struct{}),
		running:   true,
	}
	return s, nil
}

// start launches the producer and consumer goroutines.
func (s *Stream) start() {
	go s.produce()
	go s.consume()
}

// produce captures frame pairs into the bounded queue until the frame
// budget runs out or the stream is stopped, then closes the queue.
func (s *Stream) produce() {
	defer s.queue.Close()
	interval := time.Duration(s.cfg.IntervalMS) * time.Millisecond
	for n := int64(0); s.cfg.Frames == 0 || n < s.cfg.Frames; n++ {
		select {
		case <-s.stopCh:
			return
		default:
		}
		vis, ir, err := s.source.Next()
		if err != nil {
			s.fail(fmt.Errorf("farm: capture: %w", err))
			return
		}
		s.mu.Lock()
		s.captured++
		s.mu.Unlock()
		s.queue.Push(framePair{vis: vis, ir: ir, seq: n})
		if interval > 0 {
			select {
			case <-s.stopCh:
				return
			case <-time.After(interval):
			}
		}
	}
}

// consume fuses queued pairs under the governor's FPGA arbitration.
func (s *Stream) consume() {
	defer s.finish()
	for {
		p, ok := s.queue.Pop()
		if !ok {
			return
		}
		if s.stopped.Load() {
			s.mu.Lock()
			s.droppedShutdown++
			s.mu.Unlock()
			continue
		}
		s.fuseOne(p)
	}
}

func (s *Stream) fuseOne(p framePair) {
	granted := false
	if s.wantsFPGA {
		granted = s.gov.TryAcquire(s.cfg.ID)
		s.gate.set(granted)
	}
	fpgaBefore := s.adaptive.RoutedTime["fpga"]
	fused, st, err := s.fuser.FuseFrames(p.vis, p.ir)
	if s.wantsFPGA {
		s.gate.set(false)
		if granted {
			s.gov.Release(s.cfg.ID, s.adaptive.RoutedTime["fpga"]-fpgaBefore)
		}
	}
	if err != nil {
		s.fail(fmt.Errorf("farm: fuse: %w", err))
		return
	}
	s.gov.AddFrame(s.cfg.ID, st)

	s.mu.Lock()
	s.fused++
	s.stages.Add(st)
	if granted {
		s.grants++
	} else if s.wantsFPGA {
		s.denials++
	}
	if s.routedRows == nil {
		s.routedRows = make(map[string]int64)
		s.routedTime = make(map[string]int64)
	}
	for k, v := range s.adaptive.RoutedRows {
		s.routedRows[k] = v
	}
	for k, v := range s.adaptive.RoutedTime {
		s.routedTime[k] = int64(v)
	}
	s.snapshot = fused
	s.mu.Unlock()
}

// fail records the stream's terminal error and initiates shutdown.
func (s *Stream) fail(err error) {
	s.mu.Lock()
	if s.err == nil {
		s.err = err
	}
	s.mu.Unlock()
	s.Stop()
}

func (s *Stream) finish() {
	s.mu.Lock()
	s.running = false
	s.mu.Unlock()
	s.gov.StreamDone(s.cfg.ID)
	close(s.done)
}

// Stop asks the stream to shut down; queued-but-unfused pairs are counted
// as dropped. Stop is idempotent and returns immediately — use Done to
// wait.
func (s *Stream) Stop() {
	s.stopOnce.Do(func() {
		s.stopped.Store(true)
		close(s.stopCh)
	})
}

// Done is closed when the stream's worker has exited.
func (s *Stream) Done() <-chan struct{} { return s.done }

// ID returns the stream id.
func (s *Stream) ID() string { return s.cfg.ID }

// Config returns the effective stream configuration.
func (s *Stream) Config() StreamConfig { return s.cfg }

// Snapshot returns a copy of the most recent fused frame (nil before the
// first fusion completes).
func (s *Stream) Snapshot() *frame.Frame {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.snapshot == nil {
		return nil
	}
	return s.snapshot.Clone()
}

// Telemetry snapshots the stream's accumulated record.
func (s *Stream) Telemetry() StreamTelemetry {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := StreamTelemetry{
		ID:          s.cfg.ID,
		Engine:      s.cfg.Engine,
		W:           s.cfg.W,
		H:           s.cfg.H,
		Levels:      s.fuser.Config().Levels,
		Running:     s.running,
		Captured:    s.captured,
		Fused:       s.fused,
		Dropped:     s.queue.Dropped() + s.droppedShutdown,
		QueueDepth:  s.queue.Len(),
		Stages:      stageJSON(s.stages),
		FPGAGrants:  s.grants,
		FPGADenials: s.denials,
	}
	if s.err != nil {
		t.Err = s.err.Error()
	}
	if s.fused > 0 {
		t.EnergyPerFrame = s.stages.Energy / sim.Joules(s.fused)
	}
	if s.stages.Total > 0 {
		t.MeanPower = sim.Watts(float64(s.stages.Energy) / s.stages.Total.Seconds())
		t.FusedPerSecond = float64(s.fused) / s.stages.Total.Seconds()
	}
	t.RoutedRows = make(map[string]int64, len(s.routedRows))
	t.RoutedTime = make(map[string]sim.Time, len(s.routedTime))
	var kernel, fpga int64
	for k, v := range s.routedRows {
		t.RoutedRows[k] = v
	}
	for k, v := range s.routedTime {
		t.RoutedTime[k] = sim.Time(v)
		kernel += v
		if k == "fpga" {
			fpga = v
		}
	}
	if kernel > 0 {
		t.FPGAShare = float64(fpga) / float64(kernel)
	}
	return t
}

package farm

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"zynqfusion/internal/bufpool"
	"zynqfusion/internal/obs"
	"zynqfusion/internal/sim"
	"zynqfusion/internal/slo"
)

// Sentinel submission errors, matchable with errors.Is.
var (
	// ErrClosed reports a Submit on a closed farm.
	ErrClosed = errors.New("farm: closed")
	// ErrDuplicate reports a Submit reusing a live stream id.
	ErrDuplicate = errors.New("farm: duplicate stream id")
	// ErrSLOBurning reports a Submit refused by SLO admission control:
	// some stream's page alert is active, and admitting more work while
	// the error budget burns would dilute the remaining budget across
	// more streams. Served as 503 so clients retry elsewhere or later.
	ErrSLOBurning = errors.New("farm: admission refused, error budget burning")
)

// Config configures a Farm.
type Config struct {
	// PowerBudget caps the aggregate modeled board power across all
	// streams; while granting the wave engine would exceed it, streams
	// fall back to NEON. Zero disables the budget.
	PowerBudget sim.Watts `json:"power_budget_watts"`
	// DefaultQueueCap overrides the per-stream capture queue depth for
	// streams that do not set their own (default 4).
	DefaultQueueCap int `json:"default_queue_cap"`
	// BufferPool sizes the farm's shared frame-store arena: CapBytes
	// bounds the whole farm's pixel-plane footprint and PerStream gives
	// each stream's budgeted sub-pool (zero = unbounded). A stream that
	// cannot fit its working set in its budget fails its frame with a
	// descriptive ErrOverCap instead of growing, so fusiond gets a
	// deterministic, configurable memory ceiling.
	BufferPool bufpool.Budget `json:"buffer_pool"`
	// SLO is the farm's service-level-objective rule set (nil disables
	// the SLO engine for streams that do not declare their own). When
	// set, stream objectives resolve against it at Submit, burning
	// streams are degraded by the closed-loop controller, and new-stream
	// admission is refused while any page alert is active.
	SLO *slo.Rules `json:"slo,omitempty"`
}

// Farm runs many fusion streams over per-worker pipelines and a shared
// energy governor. All methods are safe for concurrent use.
type Farm struct {
	cfg    Config
	gov    *Governor
	pool   *bufpool.Pool // shared frame-store arena; streams get sub-pools
	events *obs.EventLog // per-stream structured event rings

	// admissionRefused counts submissions refused by SLO admission
	// control.
	admissionRefused atomic.Int64

	mu      sync.Mutex
	streams map[string]*Stream
	pending map[string]struct{} // ids reserved by in-flight Submits
	order   []string            // submission order, for stable listings
	nextID  int64
	closed  bool
}

// New builds an empty farm.
func New(cfg Config) *Farm {
	f := &Farm{
		cfg:     cfg,
		gov:     NewGovernor(cfg.PowerBudget),
		pool:    bufpool.New(bufpool.Options{CapBytes: cfg.BufferPool.CapBytes}),
		events:  obs.NewEventLog(0),
		streams: make(map[string]*Stream),
		pending: make(map[string]struct{}),
	}
	// Denied leases become structured events on the denied stream's ring.
	// The observer runs outside the governor lock, so looking up the ring
	// (which briefly takes the event-log map lock) is safe.
	f.gov.SetLeaseObserver(func(stream string, granted, budget bool) {
		if granted {
			return
		}
		label := ""
		if budget {
			label = "budget"
		}
		f.events.Ring(stream).Push(obs.EventLeaseDenial, -1, 0, label)
	})
	return f
}

// Governor exposes the shared arbiter (read-mostly: stats and spans).
func (f *Farm) Governor() *Governor { return f.gov }

// Pool exposes the farm's shared frame-store arena (stats, leak checks).
func (f *Farm) Pool() *bufpool.Pool { return f.pool }

// Submit validates, registers and starts a stream. Stream construction —
// which for a deadline-paced stream includes the per-operating-point
// predictor calibration — runs outside the farm lock, so a slow Submit
// never stalls metrics reads or other submissions; the id is reserved
// while it builds.
func (f *Farm) Submit(cfg StreamConfig) (*Stream, error) {
	// SLO admission control runs first (it reads the stream list, so it
	// cannot hold f.mu): while any stream's page alert burns, the farm
	// sheds new work instead of spreading the remaining budget thinner.
	// The refusal is recorded on the synthetic "farm" event ring.
	if f.cfg.SLO != nil && !f.cfg.SLO.NoAdmissionControl && f.SLOBurning() {
		f.admissionRefused.Add(1)
		f.events.Ring("farm").Push(obs.EventAdmissionRefused, -1, 0, cfg.ID)
		return nil, ErrSLOBurning
	}
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil, ErrClosed
	}
	// Only an unset (zero) depth takes the farm default; a negative depth
	// must reach stream validation and be rejected, not papered over.
	if cfg.QueueCap == 0 && f.cfg.DefaultQueueCap > 0 {
		cfg.QueueCap = f.cfg.DefaultQueueCap
	}
	if cfg.ID == "" {
		// Skip over user-chosen ids that happen to look like ours.
		for {
			f.nextID++
			cfg.ID = fmt.Sprintf("s%d", f.nextID)
			if !f.idTakenLocked(cfg.ID) {
				break
			}
		}
	}
	if f.idTakenLocked(cfg.ID) {
		f.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrDuplicate, cfg.ID)
	}
	f.pending[cfg.ID] = struct{}{}
	f.mu.Unlock()

	ring := f.events.Ring(cfg.ID)
	sub := f.pool.Sub(f.cfg.BufferPool.PerStream)
	// The shed hook runs under the pool lock; pushing to the pre-resolved
	// leaf-locked ring is the only thing it may do.
	sub.SetShedHook(func(planeBytes int64) {
		ring.Push(obs.EventPoolShed, -1, float64(planeBytes), "")
	})
	s, err := newStream(cfg, f.gov, sub, ring, f.cfg.SLO)

	f.mu.Lock()
	delete(f.pending, cfg.ID)
	if err == nil && f.closed {
		err = ErrClosed
	}
	if err != nil {
		f.mu.Unlock()
		return nil, err
	}
	f.streams[cfg.ID] = s
	f.order = append(f.order, cfg.ID)
	f.mu.Unlock()
	s.start()
	return s, nil
}

// idTakenLocked reports whether an id is in use by a live or in-flight
// stream. Callers hold f.mu.
func (f *Farm) idTakenLocked(id string) bool {
	if _, live := f.streams[id]; live {
		return true
	}
	_, building := f.pending[id]
	return building
}

// Get returns a stream by id.
func (f *Farm) Get(id string) (*Stream, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.streams[id]
	return s, ok
}

// List returns the streams in submission order.
func (f *Farm) List() []*Stream {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]*Stream, 0, len(f.order))
	for _, id := range f.order {
		out = append(out, f.streams[id])
	}
	return out
}

// Stop stops one stream (and waits for its worker to exit).
func (f *Farm) Stop(id string) error {
	s, ok := f.Get(id)
	if !ok {
		return fmt.Errorf("farm: no stream %q", id)
	}
	s.Stop()
	<-s.Done()
	return nil
}

// Forget removes a *finished* stream from the farm's registry, freeing
// its id for reuse. The fleet coordinator calls it after migrating a
// stream off this board, so the same stream can later migrate back
// without colliding with its own retired segment. The governor's energy
// ledger keeps the retired segment's accounting. Forgetting a stream
// that is still running is refused.
func (f *Farm) Forget(id string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.streams[id]
	if !ok {
		return fmt.Errorf("farm: no stream %q", id)
	}
	select {
	case <-s.Done():
	default:
		return fmt.Errorf("farm: stream %q still running", id)
	}
	delete(f.streams, id)
	for i, sid := range f.order {
		if sid == id {
			f.order = append(f.order[:i], f.order[i+1:]...)
			break
		}
	}
	return nil
}

// SetPowerBudget rebinds the farm's aggregate power budget at runtime —
// the lever fleet-wide power arbitration pulls to split a fleet budget
// across boards as demand shifts. Zero disables budget enforcement.
func (f *Farm) SetPowerBudget(w sim.Watts) { f.gov.SetBudget(w) }

// Wait blocks until every currently-submitted stream has finished.
// Unbounded streams must be stopped first.
func (f *Farm) Wait() {
	for _, s := range f.List() {
		<-s.Done()
	}
}

// Close stops every stream and refuses further submissions.
func (f *Farm) Close() {
	f.mu.Lock()
	f.closed = true
	f.mu.Unlock()
	for _, s := range f.List() {
		s.Stop()
	}
	f.Wait()
}

// Closed reports whether the farm has begun shutting down: submissions are
// refused and the health endpoint flips to draining.
func (f *Farm) Closed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.closed
}

// Events returns up to n most recent structured events (n <= 0 means all
// retained), filtered to one stream when stream != "", merged across all
// streams in farm-wide order otherwise.
func (f *Farm) Events(stream string, n int) []obs.Event {
	return f.events.Events(stream, n)
}

// EventsSince returns up to n of the *oldest* retained events with
// Seq > since, plus the cursor for the next poll — the forward
// pagination behind /events?since=N.
func (f *Farm) EventsSince(stream string, since uint64, n int) ([]obs.Event, uint64) {
	return f.events.EventsSince(stream, since, n)
}

// SLOBurning reports whether any stream's page-severity SLO alert is
// currently firing.
func (f *Farm) SLOBurning() bool {
	for _, s := range f.List() {
		if s.PageActive() {
			return true
		}
	}
	return false
}

// Trace assembles the farm's Chrome-trace view: one process per stream
// (sorted by id so identical farms export identical traces), each with a
// track per pipeline station plus the dvfs/counter tracks, and one
// "fpga-lease" process whose single track shows the shared wave engine's
// granted spans labeled by holder. frames trims each stream to its last
// frames distinct frame numbers (<= 0 keeps everything retained). It
// reports false when the named stream does not exist.
func (f *Farm) Trace(stream string, frames int) ([]obs.TraceView, bool) {
	var streams []*Stream
	if stream != "" {
		s, ok := f.Get(stream)
		if !ok {
			return nil, false
		}
		streams = []*Stream{s}
	} else {
		streams = f.List()
		sort.Slice(streams, func(i, j int) bool { return streams[i].ID() < streams[j].ID() })
	}
	views := make([]obs.TraceView, 0, len(streams)+1)
	for _, s := range streams {
		views = append(views, obs.TraceView{Process: s.ID(), Spans: s.TraceSpans(frames)})
	}
	lease := obs.TraceView{Process: "fpga-lease"}
	for _, sp := range f.gov.Spans() {
		lease.Spans = append(lease.Spans, obs.TraceSpan{
			Track: "fpga", Name: sp.Stream, Start: sp.Start, End: sp.End,
		})
	}
	views = append(views, lease)
	return views, true
}

// Metrics snapshots the whole farm: per-stream telemetry sorted by id,
// the aggregate rollup, and the governor's view.
func (f *Farm) Metrics() Metrics {
	streams := f.List()
	teles := make([]StreamTelemetry, len(streams))
	for i, s := range streams {
		teles[i] = s.Telemetry()
	}
	sort.Slice(teles, func(i, j int) bool { return teles[i].ID < teles[j].ID })

	var agg AggregateTelemetry
	agg.Streams = len(teles)
	var aggLat, aggEnergy obs.Summary
	for _, t := range teles {
		if t.Running {
			agg.Active++
		}
		// Stream layouts are shared by construction, so the merges cannot
		// fail; cloning keeps the in-place fold off the stream summaries.
		if t.LatencyHist != nil {
			_ = aggLat.Merge(t.LatencyHist.Clone())
		}
		if t.EnergyHist != nil {
			_ = aggEnergy.Merge(t.EnergyHist.Clone())
		}
		agg.Captured += t.Captured
		agg.Fused += t.Fused
		agg.Dropped += t.Dropped
		agg.Busy += t.Stages.Total
		if t.Stages.Total > agg.WallTime {
			agg.WallTime = t.Stages.Total
		}
		agg.Energy += t.Stages.Energy
		agg.DeadlineMisses += t.DeadlineMisses
		agg.SlackEnergy += t.SlackEnergy
	}
	if aggLat.Count > 0 {
		agg.LatencyHist = &aggLat
	}
	if aggEnergy.Count > 0 {
		agg.EnergyHist = &aggEnergy
	}
	if agg.Fused > 0 {
		agg.EnergyPerFrame = agg.Energy / sim.Joules(agg.Fused)
	}
	if agg.WallTime > 0 {
		agg.FusedPerSecond = float64(agg.Fused) / agg.WallTime.Seconds()
	}
	gov := f.gov.Stats()
	// The governor's ledger is the single source of truth for the farm's
	// current board draw; the rollup copies it rather than re-deriving.
	agg.AggregatePower = gov.AggregatePower
	return Metrics{
		Streams:   teles,
		Aggregate: agg,
		Governor:  gov,
		Memory:    f.memoryTelemetry(),
		SLO:       f.sloRollup(teles),
	}
}

// sloRollup folds the per-stream SLO snapshots into the farm-wide view:
// fused-frame-weighted health, active alert counts, and the admission
// ledger. Nil when the SLO engine is entirely unconfigured.
func (f *Farm) sloRollup(teles []StreamTelemetry) *SLOTelemetry {
	r := SLOTelemetry{Health: 100, AdmissionRefused: f.admissionRefused.Load()}
	var weighted float64
	var weight int64
	for _, t := range teles {
		if t.SLO == nil {
			continue
		}
		r.StreamsWithSLO++
		w := t.Fused
		if w < 1 {
			w = 1 // a stream that has not fused yet still counts
		}
		weighted += t.SLO.Health * float64(w)
		weight += w
		for _, si := range t.SLO.SLIs {
			for _, al := range si.Alerts {
				if !al.Active {
					continue
				}
				if al.Severity == slo.SevPage {
					r.ActivePageAlerts++
				} else {
					r.ActiveTicketAlerts++
				}
			}
		}
		if t.Degradation != nil {
			for _, n := range t.Degradation.Actions {
				r.DegradeActions += n
			}
		}
	}
	if f.cfg.SLO == nil && r.StreamsWithSLO == 0 {
		return nil
	}
	if weight > 0 {
		r.Health = weighted / float64(weight)
	}
	r.Burning = r.ActivePageAlerts > 0
	return &r
}

// memoryTelemetry samples the Go runtime and the frame-store arena, so
// operators can watch the pooling win (allocs, GC pressure, hit rate,
// high-water footprint) live on /metrics and in the graceful-drain flush.
func (f *Farm) memoryTelemetry() MemoryTelemetry {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	ps := f.pool.Stats()
	return MemoryTelemetry{
		HeapAllocBytes: ms.HeapAlloc,
		HeapSysBytes:   ms.HeapSys,
		Mallocs:        ms.Mallocs,
		GCCycles:       ms.NumGC,
		GCPauseTotalNS: ms.PauseTotalNs,
		Pool:           ps,
		PoolHitRate:    ps.HitRate(),
	}
}

package farm

import (
	"testing"

	"zynqfusion/internal/dvfs"
	"zynqfusion/internal/sim"
)

// TestFarmPipelinedFillNotADeadlineMiss: a throughput deadline sits
// between the steady pipeline period and the fill latency, so every
// steady frame meets it while the first frame — whose period carries the
// one-time pipeline fill — overruns. That warm-up transient must not be
// counted as a deadline miss (nor trigger pace escalation): a stream the
// steady pipeline serves comfortably reports zero misses.
func TestFarmPipelinedFillNotADeadlineMiss(t *testing.T) {
	cfg := StreamConfig{
		ID: "fill", Engine: "split-oracle", Seed: 3,
		W: 64, H: 48, Frames: 10, QueueCap: 16,
		Pipelined: true, Depth: 4,
	}
	steady, err := ProbePipelinePeriod(cfg, dvfs.Nominal())
	if err != nil {
		t.Fatal(err)
	}
	cfg.DeadlineMS = 1.5 * steady.Milliseconds()

	f := New(Config{})
	defer f.Close()
	s, err := f.Submit(cfg)
	if err != nil {
		t.Fatal(err)
	}
	<-s.Done()
	tel := s.Telemetry()
	if tel.Err != "" {
		t.Fatalf("stream error: %s", tel.Err)
	}
	if tel.Fused != 10 {
		t.Fatalf("fused %d of 10", tel.Fused)
	}
	// The scenario only bites if the fill really overran the deadline.
	deadline := sim.Time(cfg.DeadlineMS * float64(sim.Millisecond))
	if tel.PipelineFill <= deadline {
		t.Fatalf("test setup: fill %v did not exceed deadline %v", tel.PipelineFill, deadline)
	}
	if tel.DeadlineMisses != 0 {
		t.Fatalf("fill transient counted as %d deadline misses", tel.DeadlineMisses)
	}
	if tel.SlackTime <= 0 {
		t.Fatal("steady frames met the deadline but recorded no slack")
	}
}

// TestProbePipelinePeriodMatchesMeasured pins the analytic peak-phase
// prediction against a measured steady state: the one-frame probe must
// bound every steady frame period from above (a per-frame deadline has
// to clear the oscillation's peak, and the probe frame carries the
// one-time costs) without overshooting the worst measured period by more
// than a few percent.
func TestProbePipelinePeriodMatchesMeasured(t *testing.T) {
	for _, depth := range []int{2, 4} {
		cfg := StreamConfig{Engine: "split-oracle", Seed: 3, W: 64, H: 48, Pipelined: true, Depth: depth}
		probe, err := ProbePipelinePeriod(cfg, dvfs.Nominal())
		if err != nil {
			t.Fatal(err)
		}
		// Measure the same uncontended configuration the slow way.
		s, err := newStream(cfg.withDefaults(), NewGovernor(0), nil, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		vis, ir, err := s.source.Next()
		if err != nil {
			t.Fatal(err)
		}
		of := s.fuserAt(dvfs.Nominal())
		s.gate.set(true) // uncontended: the probe assumes an open gate
		var worst sim.Time
		for i := 0; i < depth+6; i++ {
			_, st, err := of.pipe.FuseFrames(vis, ir)
			if err != nil {
				t.Fatal(err)
			}
			if i >= depth && st.Total > worst {
				worst = st.Total
			}
		}
		if worst > probe {
			t.Fatalf("depth %d: worst steady period %v exceeds the probe's safe-side prediction %v", depth, worst, probe)
		}
		if probe > worst+worst/20 {
			t.Fatalf("depth %d: probe %v overshoots the worst measured period %v by more than 5%%", depth, probe, worst)
		}
	}
}

// TestFarmPipelinedDeadlinePaceUsesPeriodPredictor: the deadline-pace
// governor of a pipelined stream must be calibrated on the steady
// pipeline *period*, not the sequential frame time. With a deadline the
// 333 MHz pipelined period meets (but sequential frame times at any
// point would not), pacing must settle at or below 333 MHz and never
// touch the faster points — a sequential-calibrated predictor would
// instead degenerate to racing at 667 MHz.
func TestFarmPipelinedDeadlinePaceUsesPeriodPredictor(t *testing.T) {
	cfg := StreamConfig{
		ID: "pace", Engine: "split-oracle", Seed: 5,
		W: 64, H: 48, Frames: 8, QueueCap: 16,
		Pipelined: true, Depth: 4,
		DVFSPolicy: dvfs.PolicyDeadlinePace,
	}
	op333, ok := dvfs.Lookup("333MHz")
	if !ok {
		t.Fatal("no 333MHz point")
	}
	steady333, err := ProbePipelinePeriod(cfg, op333)
	if err != nil {
		t.Fatal(err)
	}
	seq333, err := ProbeFrameTime(cfg, op333)
	if err != nil {
		t.Fatal(err)
	}
	cfg.DeadlineMS = 1.05 * steady333.Milliseconds()
	if deadline := sim.Time(cfg.DeadlineMS * float64(sim.Millisecond)); seq333 <= deadline {
		t.Fatalf("test setup: sequential 333MHz frame time %v already meets the deadline %v", seq333, deadline)
	}

	f := New(Config{})
	defer f.Close()
	s, err := f.Submit(cfg)
	if err != nil {
		t.Fatal(err)
	}
	<-s.Done()
	tel := s.Telemetry()
	if tel.Err != "" {
		t.Fatalf("stream error: %s", tel.Err)
	}
	if tel.DeadlineMisses != 0 {
		t.Fatalf("paced pipelined stream missed %d deadlines", tel.DeadlineMisses)
	}
	if tel.DVFSBoost != 0 {
		t.Fatalf("paced pipelined stream escalated %d points", tel.DVFSBoost)
	}
	for _, fast := range []string{"444MHz", "533MHz", "667MHz"} {
		if n := tel.OpFrames[fast]; n > 0 {
			t.Fatalf("pacing ran %d frames at %s; period-calibrated pacing should stay at or below 333MHz (residency %v)",
				n, fast, tel.OpFrames)
		}
	}
	if len(tel.OpFrames) == 0 {
		t.Fatal("no operating-point residency recorded")
	}
}

package farm

import (
	"strings"
	"testing"

	"zynqfusion/internal/dvfs"
)

// runDVFSStream fuses a bounded stream under one deadline/policy pair and
// returns its telemetry.
func runDVFSStream(t *testing.T, engine, policy string, deadlineMS float64, frames int64) StreamTelemetry {
	t.Helper()
	fm := New(Config{})
	defer fm.Close()
	s, err := fm.Submit(StreamConfig{
		W: 64, H: 48, Seed: 1,
		Engine:     engine,
		Frames:     frames,
		QueueCap:   int(frames),
		DeadlineMS: deadlineMS,
		DVFSPolicy: policy,
	})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	<-s.Done()
	return s.Telemetry()
}

func TestDVFSValidation(t *testing.T) {
	fm := New(Config{})
	defer fm.Close()
	if _, err := fm.Submit(StreamConfig{DVFSPolicy: "warp-speed", Frames: 1}); err == nil {
		t.Errorf("unknown DVFS policy accepted")
	}
	if _, err := fm.Submit(StreamConfig{DVFSPolicy: dvfs.PolicyDeadlinePace, Frames: 1}); err == nil {
		t.Errorf("deadline-pace without a deadline accepted")
	}
	if _, err := fm.Submit(StreamConfig{DVFSPolicy: dvfs.PolicyRaceToIdle, Frames: 1}); err == nil {
		t.Errorf("race-to-idle without a deadline accepted")
	}
	if _, err := fm.Submit(StreamConfig{DeadlineMS: -5, Frames: 1}); err == nil {
		t.Errorf("negative deadline accepted")
	}
}

func TestDVFSDefaultPinsNominal(t *testing.T) {
	// A stream with no DVFS configuration must behave exactly as the
	// pre-DVFS farm: pinned at 533 MHz, no deadline accounting.
	def := runDVFSStream(t, "adaptive", "", 0, 3)
	pinned := runDVFSStream(t, "adaptive", "533MHz", 0, 3)
	if def.Stages != pinned.Stages {
		t.Errorf("default stream diverges from pinned 533MHz:\n%+v\n%+v", def.Stages, pinned.Stages)
	}
	if def.DeadlineMisses != 0 || def.SlackTime != 0 || def.SlackEnergy != 0 {
		t.Errorf("deadline accounting active without a deadline: %+v", def)
	}
	// The reported policy must round-trip: ForPolicy(def.DVFSPolicy) is
	// valid input and resolves back to the same pinned point.
	if def.DVFSPolicy != "533MHz" {
		t.Errorf("default policy = %q, want 533MHz", def.DVFSPolicy)
	}
	if g, err := dvfs.ForPolicy(def.DVFSPolicy); err != nil || g.Pick(nil, 0) != dvfs.Nominal() {
		t.Errorf("reported policy %q does not round-trip: %v", def.DVFSPolicy, err)
	}
	if res := def.OpResidency; len(res) != 1 || res["533MHz"] != def.Stages.Total {
		t.Errorf("residency = %v, want all of %v at 533MHz", res, def.Stages.Total)
	}
}

func TestDeadlinePaceBeatsRaceToIdle(t *testing.T) {
	// The acceptance scenario: one stream with deadline slack. The paced
	// stream must fuse every frame within the deadline at a lower
	// operating point and spend strictly fewer joules per frame period
	// than racing to idle.
	const frames = 4
	// Find a deadline with real slack: 3x the nominal uncontended frame
	// time (measured through the race governor's own telemetry).
	probe := runDVFSStream(t, "neon", "nominal", 0, 1)
	deadlineMS := probe.Stages.Total.Milliseconds() * 3

	race := runDVFSStream(t, "neon", dvfs.PolicyRaceToIdle, deadlineMS, frames)
	pace := runDVFSStream(t, "neon", dvfs.PolicyDeadlinePace, deadlineMS, frames)

	if race.DeadlineMisses != 0 {
		t.Fatalf("race-to-idle missed %d deadlines", race.DeadlineMisses)
	}
	if pace.DeadlineMisses != 0 {
		t.Fatalf("deadline-pace missed %d deadlines", pace.DeadlineMisses)
	}
	if race.Point != dvfs.Max().Name {
		t.Errorf("race-to-idle ran at %s, want %s", race.Point, dvfs.Max().Name)
	}
	paceOp, ok := dvfs.Lookup(pace.Point)
	if !ok || paceOp.Hz >= dvfs.Max().Hz {
		t.Errorf("deadline-pace ran at %s, want a point below max", pace.Point)
	}
	if pace.EnergyPerPeriod <= 0 || race.EnergyPerPeriod <= 0 {
		t.Fatalf("period energies not recorded: pace=%v race=%v", pace.EnergyPerPeriod, race.EnergyPerPeriod)
	}
	if pace.EnergyPerPeriod >= race.EnergyPerPeriod {
		t.Errorf("deadline-pace J/period %v not strictly below race-to-idle %v",
			pace.EnergyPerPeriod, race.EnergyPerPeriod)
	}
	// Pacing trades slack for joules: the paced stream idles less.
	if pace.SlackTime >= race.SlackTime {
		t.Errorf("paced slack %v not below raced slack %v", pace.SlackTime, race.SlackTime)
	}
}

func TestDVFSResidencyAndMissCounters(t *testing.T) {
	// An impossible deadline forces misses at the fastest point.
	tele := runDVFSStream(t, "neon", dvfs.PolicyRaceToIdle, 0.001, 3)
	if tele.DeadlineMisses != tele.Fused {
		t.Errorf("misses = %d, want every one of %d frames", tele.DeadlineMisses, tele.Fused)
	}
	if tele.SlackTime != 0 {
		t.Errorf("missed frames accumulated slack %v", tele.SlackTime)
	}
	if got := tele.OpFrames[dvfs.Max().Name]; got != tele.Fused {
		t.Errorf("op frames = %v, want all %d at %s", tele.OpFrames, tele.Fused, dvfs.Max().Name)
	}
	if tele.EnergyPerPeriod != tele.EnergyPerFrame {
		t.Errorf("with zero slack, J/period %v should equal J/frame %v",
			tele.EnergyPerPeriod, tele.EnergyPerFrame)
	}
}

func TestDVFSPaceAcrossEngines(t *testing.T) {
	// deadline-pace must hold for the FPGA-routing engines too: frames
	// meet a loose deadline at a low point without misses.
	for _, eng := range []string{"adaptive", "fpga"} {
		probe := runDVFSStream(t, eng, "nominal", 0, 1)
		deadlineMS := probe.Stages.Total.Milliseconds() * 3
		tele := runDVFSStream(t, eng, dvfs.PolicyDeadlinePace, deadlineMS, 3)
		if tele.Err != "" {
			t.Fatalf("%s: stream error %s", eng, tele.Err)
		}
		if tele.DeadlineMisses != 0 {
			t.Errorf("%s: %d deadline misses under 3x slack", eng, tele.DeadlineMisses)
		}
		op, ok := dvfs.Lookup(tele.Point)
		if !ok || op.Hz >= dvfs.Nominal().Hz {
			t.Errorf("%s: paced at %s, want below nominal under 3x slack", eng, tele.Point)
		}
	}
}

func TestDeadlinePaceEscalatesUnderDenial(t *testing.T) {
	// The paced predictor assumes an uncontended FPGA. Starve the wave
	// engine with a tiny power budget (every TryAcquire is a budget
	// denial, deterministically) and the stream's frames run on the NEON
	// fallback — slower than predicted, missing a deadline the granted
	// path would meet. The stream must escalate to a faster point and
	// stop missing.
	probe := runDVFSStream(t, "adaptive", "nominal", 0, 1)
	deadlineMS := probe.Stages.Total.Milliseconds() * 1.15

	fm := New(Config{PowerBudget: 0.01}) // below even one stream's draw
	defer fm.Close()
	s, err := fm.Submit(StreamConfig{
		W: 64, H: 48, Seed: 1, Engine: "adaptive",
		Frames: 4, QueueCap: 4,
		DeadlineMS: deadlineMS, DVFSPolicy: dvfs.PolicyDeadlinePace,
	})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	<-s.Done()
	tele := s.Telemetry()
	if fm.Governor().Stats().BudgetDenials != tele.Fused {
		t.Fatalf("expected every frame budget-denied, got %+v", fm.Governor().Stats())
	}
	if tele.DeadlineMisses == 0 {
		t.Fatalf("denied stream never missed; deadline %.3fms too loose", deadlineMS)
	}
	if tele.DeadlineMisses >= tele.Fused {
		t.Errorf("stream never recovered: %d misses of %d frames at boost %d (residency %v)",
			tele.DeadlineMisses, tele.Fused, tele.DVFSBoost, tele.OpResidency)
	}
	if tele.DVFSBoost == 0 {
		t.Errorf("no escalation recorded after %d misses", tele.DeadlineMisses)
	}
	if len(tele.OpFrames) < 2 {
		t.Errorf("escalation should visit multiple points, got %v", tele.OpFrames)
	}
}

func TestDVFSGovernorSlackAccounting(t *testing.T) {
	// Stream slack must land on the farm governor's ledger so the
	// aggregate power reflects the true (mostly idle) board draw.
	fm := New(Config{})
	defer fm.Close()
	s, err := fm.Submit(StreamConfig{
		W: 64, H: 48, Seed: 1, Engine: "neon",
		Frames: 2, QueueCap: 2,
		DeadlineMS: 500, DVFSPolicy: dvfs.PolicyDeadlinePace,
	})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	<-s.Done()
	tele := s.Telemetry()
	if tele.SlackTime <= 0 {
		t.Fatalf("expected slack under a 500ms deadline, got %v", tele.SlackTime)
	}
	busy, energy := fm.Governor().Totals()
	wantBusy := tele.Stages.Total + tele.SlackTime
	if busy != wantBusy {
		t.Errorf("governor busy %v, want active+slack %v", busy, wantBusy)
	}
	wantEnergy := tele.Stages.Energy + tele.SlackEnergy
	if diff := float64(energy - wantEnergy); diff > 1e-12 || diff < -1e-12 {
		t.Errorf("governor energy %v, want active+slack %v", energy, wantEnergy)
	}
	m := fm.Metrics()
	if m.Aggregate.SlackEnergy != tele.SlackEnergy {
		t.Errorf("aggregate slack energy %v, want %v", m.Aggregate.SlackEnergy, tele.SlackEnergy)
	}
}

func TestDVFSSubmitErrorMentionsPolicies(t *testing.T) {
	fm := New(Config{})
	defer fm.Close()
	_, err := fm.Submit(StreamConfig{DVFSPolicy: "bogus", Frames: 1})
	if err == nil || !strings.Contains(err.Error(), dvfs.PolicyDeadlinePace) {
		t.Errorf("submit error %v should name the valid policies", err)
	}
}

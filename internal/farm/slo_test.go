package farm

import (
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"zynqfusion/internal/obs"
	"zynqfusion/internal/slo"
)

// probeLatencyMS measures a config's steady-state per-frame latency (the
// histogram p50 over a short bounded run) with no SLO attached.
func probeLatencyMS(t *testing.T, cfg StreamConfig) (p50, max float64) {
	t.Helper()
	fm := New(Config{})
	defer fm.Close()
	s, err := fm.Submit(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fm.Wait()
	h := s.Telemetry().LatencyHist
	if h == nil {
		t.Fatal("probe stream recorded no latency histogram")
	}
	return h.P50, h.Max
}

// sloEdges filters a stream's events down to the SLO engine's output —
// alert edges and degradation actions — as comparable strings.
func sloEdges(fm *Farm, stream string) []string {
	var out []string
	for _, ev := range fm.Events(stream, 0) {
		switch ev.Kind {
		case obs.EventAlertFire, obs.EventAlertClear, obs.EventDegrade, obs.EventRestore:
			out = append(out, fmt.Sprintf("%s:%s@%d", ev.Kind, ev.Label, ev.Frame))
		}
	}
	return out
}

// TestSLODegradationRecoversDeadline is the closed-loop acceptance test:
// a depth-4 pipelined stream whose end-to-end latency overruns a deadline
// that the sequential schedule meets. The deadline SLI burns, the page
// fires, the controller demotes the pipeline depth rung by rung until the
// latency drops under the bound, and the alert clears — cause and effect
// all visible in the event log. Run twice, the modeled-time closed loop
// must produce the identical alert/degradation sequence and final SLO
// status.
func TestSLODegradationRecoversDeadline(t *testing.T) {
	base := StreamConfig{Seed: 1, W: 32, H: 24, Frames: 20}
	seqCfg := base
	seqCfg.ID = "probe-seq"
	pipeCfg := base
	pipeCfg.ID = "probe-pipe"
	pipeCfg.Pipelined, pipeCfg.Depth = true, 4
	_, seqMax := probeLatencyMS(t, seqCfg)
	pipeP50, _ := probeLatencyMS(t, pipeCfg)
	if pipeP50 <= seqMax {
		t.Skipf("pipelined latency %.2fms does not exceed sequential %.2fms; premise gone", pipeP50, seqMax)
	}
	// A deadline the sequential schedule meets and the saturated deep
	// pipeline misses: demotion is exactly the recovery lever.
	bound := (seqMax + pipeP50) / 2

	run := func() ([]string, slo.Status, *DegradationTelemetry) {
		fm := New(Config{})
		defer fm.Close()
		// QueueCap above the frame count makes capture lossless: which
		// frames a smaller queue would drop is scheduling-dependent, and
		// this test is exactly about modeled-time determinism.
		cfg := StreamConfig{
			ID: "cam", Seed: 1, W: 32, H: 24, Frames: 150, QueueCap: 256,
			Pipelined: true, Depth: 4, DeadlineMS: bound,
			SLO: &slo.SLO{DeadlineHitRatio: 0.95, WindowScale: 2e-3},
		}
		s, err := fm.Submit(cfg)
		if err != nil {
			t.Fatal(err)
		}
		fm.Wait()
		st, ok := s.SLOStatus()
		if !ok {
			t.Fatal("stream carries no SLO status")
		}
		return sloEdges(fm, "cam"), st, s.Telemetry().Degradation
	}

	edges, st, deg := run()

	var firedAt, demotedAt, clearedAt = -1, -1, -1
	for i, e := range edges {
		switch {
		case strings.HasPrefix(e, "alert-fire:deadline/page@") && firedAt < 0:
			firedAt = i
		case strings.HasPrefix(e, "degrade:demote-depth@") && demotedAt < 0:
			demotedAt = i
		case strings.HasPrefix(e, "alert-clear:deadline/page@"):
			clearedAt = i
		}
	}
	if firedAt < 0 || demotedAt < 0 || clearedAt < 0 {
		t.Fatalf("missing fire/degrade/clear sequence in edges: %v", edges)
	}
	if !(firedAt < demotedAt && demotedAt < clearedAt) {
		t.Fatalf("out-of-order closed loop: fire@%d degrade@%d clear@%d: %v",
			firedAt, demotedAt, clearedAt, edges)
	}
	// The run may finish after the probe-restore (clear long enough and
	// the controller hands the depth back), so assert on the recorded
	// actions, not the final rung state.
	if deg == nil || deg.Actions["degrade:demote-depth"] < 1 {
		t.Fatalf("no depth demotion recorded: %+v", deg)
	}
	// Recovery in the record, not just the alert edge: once demoted, the
	// frames meet the deadline again, so the deadline SLI accumulates a
	// solid run of good events after the all-bad burn.
	var deadlineSLI *slo.SLIStatus
	for i := range st.SLIs {
		if st.SLIs[i].Name == slo.SLIDeadline {
			deadlineSLI = &st.SLIs[i]
		}
	}
	if deadlineSLI == nil {
		t.Fatalf("no deadline SLI in status: %+v", st)
	}
	if deadlineSLI.Good < 30 {
		t.Fatalf("deadline-hit count did not recover after demotion: %+v", deadlineSLI)
	}
	if st.PageActive {
		t.Fatal("page still active at end of run despite recovery")
	}

	// Determinism: the identical workload replays the identical alert
	// fire/clear sequence, final health score and full SLO status.
	edges2, st2, _ := run()
	if !reflect.DeepEqual(edges, edges2) {
		t.Fatalf("two runs diverged:\n%v\n%v", edges, edges2)
	}
	if !reflect.DeepEqual(st, st2) {
		t.Fatalf("two runs ended with different SLO status:\n%+v\n%+v", st, st2)
	}
}

// TestSLOAdmissionControl drives a stream into a persistent page burn
// (impossible latency bound, degradation off) and checks the farm gate:
// new submissions are refused with ErrSLOBurning, the refusal lands on
// the farm event ring, HTTP maps it to 503, and NoAdmissionControl
// disables the gate.
func TestSLOAdmissionControl(t *testing.T) {
	rules := &slo.Rules{
		WindowScale:   1e-3,
		NoDegradation: true,
		Default:       &slo.SLO{LatencyBoundMS: 0.001},
	}
	fm := New(Config{SLO: rules})
	defer fm.Close()
	srv := httptest.NewServer(NewServer(fm))
	defer srv.Close()

	s, err := fm.Submit(StreamConfig{ID: "burn", Seed: 1, W: 32, H: 24, Frames: 40})
	if err != nil {
		t.Fatal(err)
	}
	fm.Wait()
	if !s.PageActive() {
		t.Fatal("impossible latency bound did not leave the page active")
	}

	if _, err := fm.Submit(StreamConfig{ID: "late", Seed: 2}); !errors.Is(err, ErrSLOBurning) {
		t.Fatalf("Submit while burning: %v, want ErrSLOBurning", err)
	}
	var refused bool
	for _, ev := range fm.Events("farm", 0) {
		if ev.Kind == obs.EventAdmissionRefused && ev.Label == "late" {
			refused = true
		}
	}
	if !refused {
		t.Fatalf("no admission-refused event on the farm ring: %+v", fm.Events("farm", 0))
	}

	resp, err := http.Post(srv.URL+"/streams", "application/json",
		strings.NewReader(`{"id":"http-late","seed":3,"w":32,"h":24,"frames":1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("POST /streams while burning: %d, want 503", resp.StatusCode)
	}

	m := fm.Metrics()
	if m.SLO == nil || m.SLO.AdmissionRefused < 2 || !m.SLO.Burning {
		t.Fatalf("farm SLO rollup: %+v", m.SLO)
	}
	if m.SLO.Health > 25 {
		t.Fatalf("farm health %g while its only stream pages", m.SLO.Health)
	}

	open := &slo.Rules{
		WindowScale:        1e-3,
		NoDegradation:      true,
		NoAdmissionControl: true,
		Default:            &slo.SLO{LatencyBoundMS: 0.001},
	}
	fm2 := New(Config{SLO: open})
	defer fm2.Close()
	if _, err := fm2.Submit(StreamConfig{ID: "burn", Seed: 1, W: 32, H: 24, Frames: 40}); err != nil {
		t.Fatal(err)
	}
	fm2.Wait()
	if _, err := fm2.Submit(StreamConfig{ID: "late", Seed: 2, W: 32, H: 24, Frames: 1}); err != nil {
		t.Fatalf("NoAdmissionControl still refused: %v", err)
	}
	fm2.Wait()
}

// TestSLOStreamValidation: declarations are checked at Submit, not when
// they first misbehave.
func TestSLOStreamValidation(t *testing.T) {
	fm := New(Config{})
	defer fm.Close()
	if _, err := fm.Submit(StreamConfig{
		ID: "no-deadline", SLO: &slo.SLO{DeadlineHitRatio: 0.95},
	}); err == nil || !strings.Contains(err.Error(), "deadline_ms") {
		t.Fatalf("deadline SLI without deadline_ms: %v", err)
	}
	if _, err := fm.Submit(StreamConfig{
		ID: "bad-objective", SLO: &slo.SLO{LatencyBoundMS: 10, LatencyObjective: 1},
	}); err == nil {
		t.Fatal("objective of 1 accepted at Submit")
	}
}

// TestAllocGuardSLO pins the fusion hot path with the full SLO engine
// live — four SLIs scored, sliding windows rotated, controller ticked per
// frame — at the same <= 2 allocs/frame steady-state budget the
// observability guard enforces.
func TestAllocGuardSLO(t *testing.T) {
	cfg := StreamConfig{
		ID: "alloc-slo", Engine: "adaptive", Seed: 3,
		W: 32, H: 24, Frames: 1, DeadlineMS: 1000,
		SLO: &slo.SLO{
			LatencyBoundMS:   1000,
			DeadlineHitRatio: 0.95,
			EnergyPerFrameMJ: 1000,
			MaxDropRate:      0.5,
		},
	}
	s, err := newStream(cfg, NewGovernor(0), nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	vis, ir, err := s.source.Next()
	if err != nil {
		t.Fatal(err)
	}
	var seq int64
	frame := func() {
		s.fuseOne(framePair{vis: vis.Retain(), ir: ir.Retain(), seq: seq})
		seq++
	}
	for i := 0; i < 8; i++ {
		frame()
	}
	if avg := testing.AllocsPerRun(100, frame); avg > 2 {
		t.Fatalf("fusion hot path with SLO evaluation enabled: %.1f allocs/frame, budget 2", avg)
	}
}

package farm

import (
	"fmt"
	"strings"
	"testing"
)

// TestFarmPipelinedRaceSoak runs seven concurrent pipelined streams —
// depths 2..4, engines spanning the cooperative splits, static FPGA and
// the adaptive threshold — against the shared-FPGA lease and an aggregate
// energy budget, stopping some streams mid-flight. Run under -race by CI.
// The invariant: no in-flight frame is ever lost — every captured frame
// is either fused or accounted as dropped, on the drained and the stopped
// streams alike — and the governor's exclusive-lease spans never overlap.
func TestFarmPipelinedRaceSoak(t *testing.T) {
	f := New(Config{PowerBudget: 3.0})
	defer f.Close()

	engines := []string{"split-oracle", "split-adaptive", "split-energy", "fpga", "adaptive", "split-oracle", "neon"}
	var streams []*Stream
	for i, eng := range engines {
		s, err := f.Submit(StreamConfig{
			ID:     fmt.Sprintf("pipe%d", i),
			Engine: eng,
			Seed:   int64(i + 1),
			W:      40, H: 40,
			Frames:    40,
			Pipelined: true,
			Depth:     2 + i%3,
		})
		if err != nil {
			t.Fatal(err)
		}
		streams = append(streams, s)
	}
	// Stop a third of the fleet mid-flight: stop/drain must not lose the
	// frames already popped from the queue.
	for i, s := range streams {
		if i%3 == 0 {
			s.Stop()
		}
	}
	f.Wait()

	for i, s := range streams {
		tel := s.Telemetry()
		stopped := i%3 == 0
		if tel.Err != "" {
			t.Fatalf("%s: stream error: %s", tel.ID, tel.Err)
		}
		// A stream stopped right after Submit may never capture; drained
		// streams must run their whole frame budget.
		if !stopped && tel.Captured != 40 {
			t.Fatalf("%s: captured %d of 40", tel.ID, tel.Captured)
		}
		if tel.Fused+tel.Dropped != tel.Captured {
			t.Fatalf("%s: lost frames: captured %d != fused %d + dropped %d",
				tel.ID, tel.Captured, tel.Fused, tel.Dropped)
		}
		if !tel.Pipelined || tel.PipelineDepth < 2 {
			t.Fatalf("%s: telemetry not pipelined: %+v", tel.ID, tel)
		}
		if tel.Fused > 0 && tel.Engine != "neon" && tel.Engine != "arm" {
			if tel.FPGAGrants+tel.FPGADenials == 0 {
				t.Errorf("%s: no per-stage lease outcomes recorded", tel.ID)
			}
		}
		if tel.Fused > 0 && tel.PipelineInFlight <= 0 {
			t.Errorf("%s: in-flight telemetry missing", tel.ID)
		}
	}

	// The lease is exclusive: granted wave-engine spans must tile without
	// overlap on the governor's global FPGA timeline.
	spans := f.Governor().Spans()
	for i := 1; i < len(spans); i++ {
		if spans[i].Start < spans[i-1].End {
			t.Fatalf("FPGA spans overlap: %+v then %+v", spans[i-1], spans[i])
		}
	}
	if gs := f.Governor().Stats(); gs.Holder != "" {
		t.Fatalf("lease leaked to %q after drain", gs.Holder)
	}
}

// TestFarmPipelinedStreamValidation pins the Submit-time refusals of the
// pipelined stream knobs with their actionable messages.
func TestFarmPipelinedStreamValidation(t *testing.T) {
	f := New(Config{})
	defer f.Close()
	cases := []struct {
		name string
		cfg  StreamConfig
		want string
	}{
		{"negative depth", StreamConfig{Pipelined: true, Depth: -2, Frames: 1}, "pipeline_depth must be non-negative"},
		{"absurd depth", StreamConfig{Pipelined: true, Depth: 1 << 16, Frames: 1}, "exceeds the maximum"},
		{"depth without pipelined", StreamConfig{Depth: 2, Frames: 1}, "requires pipelined"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := f.Submit(tc.cfg); err == nil {
				t.Fatalf("Submit accepted %+v", tc.cfg)
			} else if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
	// Depth 0 with Pipelined defaults to 2.
	s, err := f.Submit(StreamConfig{Pipelined: true, Frames: 2, W: 32, H: 24})
	if err != nil {
		t.Fatal(err)
	}
	<-s.Done()
	if tel := s.Telemetry(); tel.PipelineDepth != 2 {
		t.Fatalf("default pipelined depth = %d, want 2", tel.PipelineDepth)
	}
}

package camera

import (
	"testing"

	"zynqfusion/internal/bufpool"
)

// TestPooledCaptureMatchesPlainAndRecycles pins the zero-copy capture
// path: with a pool installed both cameras deliver leased frames that are
// pixel-identical to the allocating path, and steady-state capture runs on
// free-list hits once the consumer releases each frame.
func TestPooledCaptureMatchesPlainAndRecycles(t *testing.T) {
	mk := func(pool *bufpool.Pool) (*Scene, *Webcam, *Thermal) {
		s := NewScene(88, 72, 77)
		w := NewWebcam(s)
		th, err := NewThermal(s, 88, 72)
		if err != nil {
			t.Fatal(err)
		}
		if pool != nil {
			w.SetPool(pool)
			th.SetPool(pool)
		}
		return s, w, th
	}
	pool := bufpool.New(bufpool.Options{})
	ps, pw, pt := mk(pool)
	rs, rw, rt := mk(nil)

	for i := 0; i < 4; i++ {
		ps.Advance()
		rs.Advance()
		pv, err := pw.Capture()
		if err != nil {
			t.Fatal(err)
		}
		rv, err := rw.Capture()
		if err != nil {
			t.Fatal(err)
		}
		pi, err := pt.Capture()
		if err != nil {
			t.Fatal(err)
		}
		ri, err := rt.Capture()
		if err != nil {
			t.Fatal(err)
		}
		if !pv.Leased() || !pi.Leased() {
			t.Fatal("pooled captures must be leased")
		}
		for j := range rv.Pix {
			if pv.Pix[j] != rv.Pix[j] {
				t.Fatalf("frame %d: visible pixel %d differs", i, j)
			}
		}
		for j := range ri.Pix {
			if pi.Pix[j] != ri.Pix[j] {
				t.Fatalf("frame %d: thermal pixel %d differs", i, j)
			}
		}
		pv.Release()
		pi.Release()
	}
	st := pool.Stats()
	if st.Hits == 0 {
		t.Fatalf("capture never reused a frame store: %+v", st)
	}
	if err := pool.CheckLeaks(); err != nil {
		t.Fatal(err)
	}
}

// TestThermalCapBoundedPoolFailsCleanly pins the deterministic ceiling at
// the capture layer.
func TestThermalCapBoundedPoolFailsCleanly(t *testing.T) {
	s := NewScene(88, 72, 1)
	th, err := NewThermal(s, 88, 72)
	if err != nil {
		t.Fatal(err)
	}
	th.SetPool(bufpool.New(bufpool.Options{CapBytes: 64})) // under one plane
	s.Advance()
	if _, err := th.Capture(); err == nil {
		t.Fatal("capture fit an impossible budget")
	}
}

package camera

import (
	"testing"

	"zynqfusion/internal/frame"
)

func TestSceneDeterministicBySeed(t *testing.T) {
	a := NewScene(88, 72, 7)
	b := NewScene(88, 72, 7)
	for i := 0; i < 3; i++ {
		a.Advance()
		b.Advance()
	}
	d, err := frame.MaxAbsDiff(a.Visible(), b.Visible())
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Errorf("same seed diverged (visible): %g", d)
	}
	d, _ = frame.MaxAbsDiff(a.Thermal(), b.Thermal())
	if d != 0 {
		t.Errorf("same seed diverged (thermal): %g", d)
	}
	c := NewScene(88, 72, 8)
	d, _ = frame.MaxAbsDiff(a.Visible(), c.Visible())
	if d == 0 {
		t.Error("different seeds produced identical scenes")
	}
}

func TestSceneHasComplementaryContent(t *testing.T) {
	s := NewScene(88, 72, 11)
	vis := s.Visible()
	ir := s.Thermal()
	// Visible band: textured (high variance); thermal: mostly flat
	// background with hotspots, so its median is low but max is high.
	if vis.Variance() < 100 {
		t.Errorf("visible band lacks texture: variance %g", vis.Variance())
	}
	lo, hi := ir.MinMax()
	if float64(hi) < 120 {
		t.Errorf("thermal band lacks hotspots: max %g", hi)
	}
	if float64(lo) > 60 {
		t.Errorf("thermal background too bright: min %g", lo)
	}
}

func TestSceneAdvanceMovesHotspots(t *testing.T) {
	s := NewScene(64, 48, 3)
	before := s.Thermal()
	for i := 0; i < 10; i++ {
		s.Advance()
	}
	after := s.Thermal()
	d, _ := frame.MaxAbsDiff(before, after)
	if d < 10 {
		t.Errorf("scene static after 10 frames: max change %g", d)
	}
}

func TestWebcamCaptureGeometryAndRange(t *testing.T) {
	s := NewScene(88, 72, 5)
	w := NewWebcam(s)
	f, err := w.Capture()
	if err != nil {
		t.Fatal(err)
	}
	if f.W != 88 || f.H != 72 {
		t.Fatalf("capture %dx%d", f.W, f.H)
	}
	lo, hi := f.MinMax()
	if lo < 0 || hi > 255 {
		t.Errorf("greyscale out of range [%g, %g]", lo, hi)
	}
	if w.Frames != 1 {
		t.Errorf("frame counter %d", w.Frames)
	}
}

func TestThermalCaptureTravelsBT656Path(t *testing.T) {
	s := NewScene(88, 72, 9)
	cam, err := NewThermal(s, 88, 72)
	if err != nil {
		t.Fatal(err)
	}
	f, err := cam.Capture()
	if err != nil {
		t.Fatal(err)
	}
	if f.W != 88 || f.H != 72 {
		t.Fatalf("capture %dx%d", f.W, f.H)
	}
	st := cam.Stats()
	if st.Frames != 1 || st.Lines == 0 {
		t.Errorf("decoder stats %+v", st)
	}
	if st.ProtectionErrors != 0 || st.LengthErrors != 0 {
		t.Errorf("clean path reported errors: %+v", st)
	}
	if cam.FIFO().Pushed != 1 || cam.FIFO().Popped != 1 {
		t.Errorf("FIFO counters %+v", *cam.FIFO())
	}
	// The hotspots must survive serialization and scaling.
	if _, hi := f.MinMax(); float64(hi) < 100 {
		t.Errorf("hotspots lost in the capture path: max %g", hi)
	}
}

func TestThermalCaptureSequence(t *testing.T) {
	s := NewScene(64, 48, 13)
	cam, err := NewThermal(s, 64, 48)
	if err != nil {
		t.Fatal(err)
	}
	var prev *frame.Frame
	for i := 0; i < 5; i++ {
		f, err := cam.Capture()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if prev != nil {
			s.Advance()
		}
		prev = f
	}
	if cam.Stats().Frames != 5 {
		t.Errorf("decoded %d fields, want 5", cam.Stats().Frames)
	}
}

func TestNewThermalValidatesTarget(t *testing.T) {
	s := NewScene(32, 24, 1)
	if _, err := NewThermal(s, 0, 10); err == nil {
		t.Error("zero target width should fail")
	}
}

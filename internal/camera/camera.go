package camera

import (
	"fmt"

	"zynqfusion/internal/bt656"
	"zynqfusion/internal/frame"
)

// Webcam models the USB visible-band camera (Logitech C160 class): it
// captures RGB frames that the PS converts to greyscale before fusion, as
// the paper does ("the original video captured by the web-camera was
// gray-scaled before fusing").
type Webcam struct {
	scene *Scene
	// Frames counts captures.
	Frames int64
}

// NewWebcam attaches a webcam to a scene.
func NewWebcam(s *Scene) *Webcam { return &Webcam{scene: s} }

// Capture returns the current greyscale frame. The RGB sensor mosaic and
// USB decode are folded into the scene's visible rendering plus the
// standard luma conversion.
func (w *Webcam) Capture() *frame.Frame {
	w.Frames++
	vis := w.scene.Visible()
	// Round-trip through interleaved RGB, as the USB path delivers it.
	rgb := make([]byte, vis.W*vis.H*3)
	for i, v := range vis.Pix {
		b := clampByte(v)
		rgb[3*i], rgb[3*i+1], rgb[3*i+2] = b, b, b
	}
	g, err := frame.GrayFromRGB(vis.W, vis.H, rgb)
	if err != nil {
		panic("camera: internal RGB conversion: " + err.Error())
	}
	return g
}

func clampByte(v float32) byte {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return byte(v)
}

// Thermal models the Thermoteknix MicroCAM-class infrared camera. Its
// output travels the full PL capture path of Fig. 7: BT.656 serialization,
// the decoder state machine, the video scaler and the frame-handshake
// output FIFO.
type Thermal struct {
	scene  *Scene
	native struct{ w, h int }
	enc    bt656.Encoder
	dec    *bt656.Decoder
	scaler bt656.Scaler
	fifo   bt656.OutputFIFO
	stream []byte

	// TargetW and TargetH are the fusion geometry (the paper fuses 88x72
	// because the longwave sensor resolution is the limit).
	TargetW, TargetH int
}

// NewThermal attaches a thermal camera to a scene. The camera renders at
// its native geometry, serializes over BT.656, decodes and scales on the
// modeled PL, and finally delivers frames at the target fusion geometry.
func NewThermal(s *Scene, targetW, targetH int) (*Thermal, error) {
	if targetW <= 0 || targetH <= 0 {
		return nil, fmt.Errorf("camera: bad target %dx%d", targetW, targetH)
	}
	t := &Thermal{scene: s, TargetW: targetW, TargetH: targetH}
	// Native field geometry of the BT.656 head (720 samples per line,
	// 243 active lines per field).
	t.native.w, t.native.h = 720, 243
	t.dec = bt656.NewDecoder(t.native.w)
	t.scaler = bt656.Scaler{OutW: targetW, OutH: targetH, Bilinear: true}
	return t, nil
}

// Stats exposes the decoder statistics (Fig. 7 status signals).
func (t *Thermal) Stats() bt656.DecoderStats { return t.dec.Stats }

// FIFO exposes the output FIFO counters.
func (t *Thermal) FIFO() *bt656.OutputFIFO { return &t.fifo }

// Capture renders the scene at the sensor, pushes it through the BT.656
// path and returns the scaled frame. It fails only if the handshake FIFO
// still holds an unconsumed frame.
func (t *Thermal) Capture() (*frame.Frame, error) {
	// Render at the native field geometry: the scene is observed at the
	// sensor's own resolution before serialization.
	ir := t.scene.Thermal()
	up := bt656.Scaler{OutW: t.native.w, OutH: t.native.h, Bilinear: true}
	field, err := up.Scale(ir)
	if err != nil {
		return nil, err
	}
	t.stream = t.enc.Encode(t.stream[:0], field)
	if _, err := t.dec.Write(t.stream); err != nil {
		return nil, err
	}
	t.dec.Flush()
	raw, ok := t.dec.NextFrame()
	if !ok {
		return nil, fmt.Errorf("camera: BT.656 decode produced no field")
	}
	scaled, err := t.scaler.Scale(raw)
	if err != nil {
		return nil, err
	}
	if !t.fifo.Push(scaled) {
		return nil, fmt.Errorf("camera: output FIFO full (previous frame not taken)")
	}
	out, _ := t.fifo.Pop()
	return out, nil
}

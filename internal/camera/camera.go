package camera

import (
	"fmt"

	"zynqfusion/internal/bt656"
	"zynqfusion/internal/bufpool"
	"zynqfusion/internal/frame"
)

// Webcam models the USB visible-band camera (Logitech C160 class): it
// captures RGB frames that the PS converts to greyscale before fusion, as
// the paper does ("the original video captured by the web-camera was
// gray-scaled before fusing").
type Webcam struct {
	scene *Scene
	// Frames counts captures.
	Frames int64

	pool   *bufpool.Pool // delivered frames lease from here when set
	sensor *frame.Frame  // reusable render buffer (the sensor's own store)
	rgb    []byte        // reusable interleaved-RGB staging buffer
}

// NewWebcam attaches a webcam to a scene.
func NewWebcam(s *Scene) *Webcam { return &Webcam{scene: s} }

// SetPool makes the webcam deliver captured frames as leases from p — the
// camera writes straight into the capture frame store, VDMA-style — and
// the consumer Releases each frame when done. Without a pool every capture
// is a fresh plain frame.
func (w *Webcam) SetPool(p *bufpool.Pool) { w.pool = p }

// Capture returns the current greyscale frame. The RGB sensor mosaic and
// USB decode are folded into the scene's visible rendering plus the
// standard luma conversion.
func (w *Webcam) Capture() (*frame.Frame, error) {
	w.Frames++
	if w.sensor == nil {
		w.sensor = frame.New(w.scene.W, w.scene.H)
	}
	w.scene.VisibleInto(w.sensor)
	vis := w.sensor
	// Round-trip through interleaved RGB, as the USB path delivers it.
	if need := vis.W * vis.H * 3; cap(w.rgb) < need {
		w.rgb = make([]byte, need)
	}
	rgb := w.rgb[:vis.W*vis.H*3]
	for i, v := range vis.Pix {
		b := clampByte(v)
		rgb[3*i], rgb[3*i+1], rgb[3*i+2] = b, b, b
	}
	g, err := w.outFrame(vis.W, vis.H)
	if err != nil {
		return nil, err
	}
	if err := frame.GrayFromRGBInto(g, rgb); err != nil {
		g.Release()
		panic("camera: internal RGB conversion: " + err.Error())
	}
	return g, nil
}

func (w *Webcam) outFrame(fw, fh int) (*frame.Frame, error) {
	if w.pool == nil {
		return frame.New(fw, fh), nil
	}
	f, err := w.pool.Get(fw, fh)
	if err != nil {
		return nil, fmt.Errorf("camera: webcam frame store: %w", err)
	}
	return f, nil
}

func clampByte(v float32) byte {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return byte(v)
}

// Thermal models the Thermoteknix MicroCAM-class infrared camera. Its
// output travels the full PL capture path of Fig. 7: BT.656 serialization,
// the decoder state machine, the video scaler and the frame-handshake
// output FIFO.
type Thermal struct {
	scene  *Scene
	native struct{ w, h int }
	enc    bt656.Encoder
	dec    *bt656.Decoder
	scaler bt656.Scaler
	fifo   bt656.OutputFIFO
	stream []byte

	pool   *bufpool.Pool // delivered frames lease from here when set
	sensor *frame.Frame  // reusable scene render at the sensor geometry
	field  *frame.Frame  // reusable native-geometry field store

	// TargetW and TargetH are the fusion geometry (the paper fuses 88x72
	// because the longwave sensor resolution is the limit).
	TargetW, TargetH int
}

// NewThermal attaches a thermal camera to a scene. The camera renders at
// its native geometry, serializes over BT.656, decodes and scales on the
// modeled PL, and finally delivers frames at the target fusion geometry.
func NewThermal(s *Scene, targetW, targetH int) (*Thermal, error) {
	if targetW <= 0 || targetH <= 0 {
		return nil, fmt.Errorf("camera: bad target %dx%d", targetW, targetH)
	}
	t := &Thermal{scene: s, TargetW: targetW, TargetH: targetH}
	// Native field geometry of the BT.656 head (720 samples per line,
	// 243 active lines per field).
	t.native.w, t.native.h = 720, 243
	t.dec = bt656.NewDecoder(t.native.w)
	t.scaler = bt656.Scaler{OutW: targetW, OutH: targetH, Bilinear: true}
	return t, nil
}

// Stats exposes the decoder statistics (Fig. 7 status signals).
func (t *Thermal) Stats() bt656.DecoderStats { return t.dec.Stats }

// FIFO exposes the output FIFO counters.
func (t *Thermal) FIFO() *bt656.OutputFIFO { return &t.fifo }

// SetPool makes the thermal camera deliver frames as leases from p (the
// consumer Releases each). Without a pool every capture is a fresh plain
// frame. The BT.656 intermediates — sensor render, native field store,
// byte stream, decoder lines — are persistent either way, mirroring the
// fixed capture buffers of the Fig. 7 chain.
func (t *Thermal) SetPool(p *bufpool.Pool) { t.pool = p }

// Capture renders the scene at the sensor, pushes it through the BT.656
// path and returns the scaled frame. It fails only if the handshake FIFO
// still holds an unconsumed frame.
func (t *Thermal) Capture() (*frame.Frame, error) {
	// Render at the native field geometry: the scene is observed at the
	// sensor's own resolution before serialization.
	if t.sensor == nil {
		t.sensor = frame.New(t.scene.W, t.scene.H)
	}
	t.scene.ThermalInto(t.sensor)
	if t.field == nil {
		t.field = frame.New(t.native.w, t.native.h)
	}
	up := bt656.Scaler{OutW: t.native.w, OutH: t.native.h, Bilinear: true}
	if err := up.ScaleInto(t.field, t.sensor); err != nil {
		return nil, err
	}
	t.stream = t.enc.Encode(t.stream[:0], t.field)
	if _, err := t.dec.Write(t.stream); err != nil {
		return nil, err
	}
	t.dec.Flush()
	raw, ok := t.dec.NextFrame()
	if !ok {
		return nil, fmt.Errorf("camera: BT.656 decode produced no field")
	}
	var scaled *frame.Frame
	if t.pool != nil {
		var err error
		if scaled, err = t.pool.Get(t.TargetW, t.TargetH); err != nil {
			return nil, fmt.Errorf("camera: thermal frame store: %w", err)
		}
	} else {
		scaled = frame.New(t.TargetW, t.TargetH)
	}
	if err := t.scaler.ScaleInto(scaled, raw); err != nil {
		scaled.Release()
		return nil, err
	}
	t.dec.Recycle(raw)
	if !t.fifo.Push(scaled) {
		scaled.Release()
		return nil, fmt.Errorf("camera: output FIFO full (previous frame not taken)")
	}
	out, _ := t.fifo.Pop()
	return out, nil
}

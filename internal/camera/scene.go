// Package camera provides the capture front end of the fusion system as
// synthetic devices: a deterministic scene generator with complementary
// visible and thermal content, a webcam model (RGB over USB, grey-scaled
// on the PS as in the paper), and a thermal camera whose output travels
// the full BT.656 encode/decode/scale/FIFO path of Fig. 7.
//
// The scene is built so that fusion is meaningful: the visible channel
// carries texture and geometry that the thermal channel cannot see, and
// the thermal channel carries hotspots (a person, a heat source) that are
// invisible in the visible band — the surveillance scenario motivating the
// paper.
package camera

import (
	"math"
	"math/rand"

	"zynqfusion/internal/frame"
)

// Scene is a deterministic synthetic world observed by both cameras. The
// same seed always produces the same sequence of frames.
type Scene struct {
	W, H int
	rng  *rand.Rand
	t    int // frame counter

	// Hotspots are warm moving objects visible only in the infrared band.
	hotspots []hotspot
	// texture is the static visible-band background texture.
	texture []float32
}

type hotspot struct {
	x, y   float64
	dx, dy float64
	r      float64
	heat   float64
}

// NewScene builds a scene with the given observation geometry and seed.
func NewScene(w, h int, seed int64) *Scene {
	rng := rand.New(rand.NewSource(seed))
	s := &Scene{W: w, H: h, rng: rng}
	// Visible background: smooth gradients plus band-limited noise, so the
	// visible channel has edges and texture at several scales.
	s.texture = make([]float32, w*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			g := 90 + 60*math.Sin(2*math.Pi*float64(x)/float64(w)) +
				40*math.Cos(2*math.Pi*3*float64(y)/float64(h))
			n := 25 * (rng.Float64() - 0.5)
			s.texture[y*w+x] = float32(g + n)
		}
	}
	// Two or three warm objects wandering the scene.
	n := 2 + rng.Intn(2)
	for i := 0; i < n; i++ {
		s.hotspots = append(s.hotspots, hotspot{
			x:    rng.Float64() * float64(w),
			y:    rng.Float64() * float64(h),
			dx:   (rng.Float64() - 0.5) * 2,
			dy:   (rng.Float64() - 0.5) * 2,
			r:    3 + rng.Float64()*float64(min(w, h))/8,
			heat: 120 + rng.Float64()*100,
		})
	}
	return s
}

// Advance moves the scene one frame forward in time.
func (s *Scene) Advance() {
	s.t++
	for i := range s.hotspots {
		h := &s.hotspots[i]
		h.x += h.dx
		h.y += h.dy
		if h.x < 0 || h.x >= float64(s.W) {
			h.dx = -h.dx
			h.x += 2 * h.dx
		}
		if h.y < 0 || h.y >= float64(s.H) {
			h.dy = -h.dy
			h.y += 2 * h.dy
		}
	}
}

// Visible renders the scene as the visible-band camera sees it: the
// textured background with faint occlusion silhouettes where the warm
// objects stand (people are visible but low-contrast in dim light).
func (s *Scene) Visible() *frame.Frame {
	f := frame.New(s.W, s.H)
	s.VisibleInto(f)
	return f
}

// VisibleInto renders the visible view into f, which must have the
// scene's geometry. Every sample is overwritten, so a reused (sensor
// double-buffer) frame renders identically to a fresh one.
func (s *Scene) VisibleInto(f *frame.Frame) {
	if f.W != s.W || f.H != s.H {
		panic("camera: VisibleInto frame geometry mismatch")
	}
	copy(f.Pix, s.texture)
	for _, h := range s.hotspots {
		s.splat(f, h, -18, 0.8) // slight darkening, soft edge
	}
	// A little per-frame sensor noise.
	nrng := rand.New(rand.NewSource(int64(s.t)*7919 + 13))
	for i := range f.Pix {
		f.Pix[i] += float32(4 * (nrng.Float64() - 0.5))
	}
}

// Thermal renders the infrared view: a cool, nearly featureless
// background with bright hotspots.
func (s *Scene) Thermal() *frame.Frame {
	f := frame.New(s.W, s.H)
	s.ThermalInto(f)
	return f
}

// ThermalInto renders the infrared view into f (every sample written),
// the reusable-frame form of Thermal.
func (s *Scene) ThermalInto(f *frame.Frame) {
	if f.W != s.W || f.H != s.H {
		panic("camera: ThermalInto frame geometry mismatch")
	}
	for y := 0; y < s.H; y++ {
		for x := 0; x < s.W; x++ {
			f.Set(x, y, float32(35+10*math.Sin(2*math.Pi*float64(x+y)/float64(s.W+s.H))))
		}
	}
	for _, h := range s.hotspots {
		s.splat(f, h, h.heat, 0.6)
	}
	nrng := rand.New(rand.NewSource(int64(s.t)*104729 + 29))
	for i := range f.Pix {
		f.Pix[i] += float32(6 * (nrng.Float64() - 0.5))
	}
}

// splat adds a Gaussian blob of the given amplitude at a hotspot.
func (s *Scene) splat(f *frame.Frame, h hotspot, amp, sharp float64) {
	r2 := h.r * h.r
	x0 := clamp(int(h.x-3*h.r), 0, s.W-1)
	x1 := clamp(int(h.x+3*h.r), 0, s.W-1)
	y0 := clamp(int(h.y-3*h.r), 0, s.H-1)
	y1 := clamp(int(h.y+3*h.r), 0, s.H-1)
	for y := y0; y <= y1; y++ {
		for x := x0; x <= x1; x++ {
			d2 := (float64(x)-h.x)*(float64(x)-h.x) + (float64(y)-h.y)*(float64(y)-h.y)
			f.Pix[y*s.W+x] += float32(amp * math.Exp(-sharp*d2/r2))
		}
	}
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

package hls

import (
	"math"
	"math/rand"
	"testing"

	"zynqfusion/internal/frame"
	"zynqfusion/internal/signal"
	"zynqfusion/internal/wavelet"
)

func TestFixedConversionRoundTrip(t *testing.T) {
	for _, v := range []float32{0, 1, -1, 0.5, 123.456, -250.25} {
		got := fromFixed(toFixed(v))
		if math.Abs(float64(got-v)) > 1.0/float64(fixedOne)+1e-7 {
			t.Errorf("round trip %g -> %g", v, got)
		}
	}
}

func TestFixedSaturates(t *testing.T) {
	huge := float32(math.MaxFloat32)
	if x := toFixed(huge); x != int64(1)<<47-1 {
		t.Errorf("positive saturation failed: %d", x)
	}
	if x := toFixed(-huge); x != -(int64(1)<<47 - 1) {
		t.Errorf("negative saturation failed: %d", x)
	}
}

func TestFixedKernelCloseToFloat(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	b := wavelet.CDF97
	m := 32
	px := make([]float32, 2*m+signal.TapCount)
	for i := range px {
		px[i] = float32(rng.Float64()*500 - 250)
	}
	wantLo := make([]float32, m)
	wantHi := make([]float32, m)
	signal.AnalyzeRef(&b.AL, &b.AH, px, wantLo, wantHi)
	lo := make([]float32, m)
	hi := make([]float32, m)
	FixedKernel{}.Analyze(&b.AL, &b.AH, px, lo, hi)
	for i := 0; i < m; i++ {
		if d := math.Abs(float64(lo[i] - wantLo[i])); d > 0.05 {
			t.Errorf("lo[%d] quantization error %g", i, d)
		}
		if d := math.Abs(float64(hi[i] - wantHi[i])); d > 0.05 {
			t.Errorf("hi[%d] quantization error %g", i, d)
		}
	}
}

func TestFixedKernelRoundTripThroughWavelet(t *testing.T) {
	// Full DT-CWT through the quantized datapath: reconstruction must
	// stay within a fraction of a grey level (the fixed-point design is
	// usable, which is the point of the ablation).
	rng := rand.New(rand.NewSource(82))
	fr := frame.New(48, 40)
	for i := range fr.Pix {
		fr.Pix[i] = float32(rng.Intn(256))
	}
	tr := wavelet.NewDTCWT(wavelet.NewXfm(FixedKernel{}), wavelet.DefaultTreeBanks())
	p, err := tr.Forward(fr, 3)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := tr.Inverse(p)
	if err != nil {
		t.Fatal(err)
	}
	var worst float64
	for i := range rec.Pix {
		if d := math.Abs(float64(rec.Pix[i] - fr.Pix[i])); d > worst {
			worst = d
		}
	}
	if worst > 0.5 {
		t.Errorf("fixed-point DT-CWT round trip error %g grey levels", worst)
	}
}

func TestFixedPointResourcesFarBelowFloat(t *testing.T) {
	fx := EstimateFixedPointEngine()
	fl := EstimateWaveEngine()
	if fx.LUTs >= fl.LUTs/2 || fx.Registers >= fl.Registers/2 {
		t.Errorf("fixed-point engine (%d LUTs, %d FFs) should be far below float (%d, %d)",
			fx.LUTs, fx.Registers, fl.LUTs, fl.Registers)
	}
	if fx.BUFG != fl.BUFG {
		t.Error("clocking unchanged between datapaths")
	}
}

package hls

import (
	"zynqfusion/internal/signal"
	"zynqfusion/internal/zynq"
)

// This file models the classic alternative to the paper's floating-point
// datapath: a Q16.16 fixed-point engine. Fixed-point multiply-accumulate
// maps directly onto DSP48 slices, cutting fabric cost dramatically, at
// the price of quantization error. The FixedKernel lets the whole fusion
// pipeline run through the quantized datapath so the quality cost is
// measurable end to end.

// FixedFrac is the fractional bit count of the Q16.16 format.
const FixedFrac = 16

// fixedOne is the fixed-point representation of 1.0.
const fixedOne = int64(1) << FixedFrac

// toFixed quantizes a float to Q16.16 with saturation. The clamp happens
// in the float domain: converting an out-of-range float to int64 is
// implementation-defined in Go.
func toFixed(v float32) int64 {
	f := float64(v) * float64(fixedOne)
	const limit = int64(1)<<47 - 1 // 48-bit accumulator headroom
	if f >= float64(limit) {
		return limit
	}
	if f <= -float64(limit) {
		return -limit
	}
	return int64(f)
}

// fromFixed converts back to float.
func fromFixed(x int64) float32 {
	return float32(float64(x) / float64(fixedOne))
}

// fixedMAC is one Q16.16 multiply-accumulate with a 48-bit accumulator
// (the DSP48 structure): the product of two Q16.16 values is Q32.32,
// renormalized to Q32.16 before accumulation.
func fixedMAC(acc, a, b int64) int64 {
	return acc + (a*b)>>FixedFrac
}

// FixedKernel implements signal.Kernel on the fixed-point datapath. It is
// deterministic and engine-agnostic (timing is identical to the float
// engine — II=1 either way — only fabric cost and accuracy change).
type FixedKernel struct{}

// Analyze implements signal.Kernel with quantized arithmetic.
func (FixedKernel) Analyze(al, ah *signal.Taps, px []float32, lo, hi []float32) {
	m := len(lo)
	if len(hi) != m || len(px) != 2*m+signal.TapCount {
		panic("hls.FixedKernel: inconsistent lengths")
	}
	var cl, ch [signal.TapCount]int64
	for j := 0; j < signal.TapCount; j++ {
		cl[j] = toFixed(al[j])
		ch[j] = toFixed(ah[j])
	}
	for i := 0; i < m; i++ {
		var accL, accH int64
		for j := 0; j < signal.TapCount; j++ {
			x := toFixed(px[2*i+j])
			accL = fixedMAC(accL, cl[j], x)
			accH = fixedMAC(accH, ch[j], x)
		}
		lo[i] = fromFixed(accL)
		hi[i] = fromFixed(accH)
	}
}

// Synthesize implements signal.Kernel with quantized arithmetic.
func (FixedKernel) Synthesize(sl, sh *signal.Taps, plo, phi []float32, out []float32) {
	m := len(out) / 2
	const half = signal.TapCount / 2
	if len(out) != 2*m || len(plo) != m+half-1 || len(phi) != m+half-1 {
		panic("hls.FixedKernel: inconsistent lengths")
	}
	var se, so, he, ho [half]int64
	for k := 0; k < half; k++ {
		se[k] = toFixed(sl[2*k])
		so[k] = toFixed(sl[2*k+1])
		he[k] = toFixed(sh[2*k])
		ho[k] = toFixed(sh[2*k+1])
	}
	for i := 0; i < m; i++ {
		var even, odd int64
		base := i + half - 1
		for k := 0; k < half; k++ {
			l := toFixed(plo[base-k])
			h := toFixed(phi[base-k])
			even = fixedMAC(even, se[k], l)
			even = fixedMAC(even, he[k], h)
			odd = fixedMAC(odd, so[k], l)
			odd = fixedMAC(odd, ho[k], h)
		}
		out[2*i] = fromFixed(even)
		out[2*i+1] = fromFixed(odd)
	}
}

// EstimateFixedPointEngine estimates the fixed-point variant's fabric
// cost: each Q16.16 MAC is one DSP48 plus a small LUT/FF overhead instead
// of a multi-hundred-LUT floating-point operator, so the datapath nearly
// vanishes from the fabric budget while the AXI and control logic remain.
func EstimateFixedPointEngine() Resources {
	const (
		macs    = 2 * 12 // same unrolled structure as the float engine
		macLUTs = 18     // alignment and rounding glue per DSP48 MAC
		macFFs  = 49     // pipeline registers around the DSP
	)
	luts := macs*macLUTs + axiMasterLUTs + axiLiteLUTs + controlLUTs + shiftRegMuxLUTs
	ffs := macs*macFFs + axiMasterFFs + axiLiteFFs + controlFFs + shiftRegFFs
	slices := int(float64(max(ffs/8, luts/4))/slicePacking + 0.5)
	return Resources{
		Part:      zynq.Part,
		Registers: ffs,
		LUTs:      luts,
		Slices:    slices,
		BUFG:      3,
	}
}

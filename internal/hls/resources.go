package hls

import (
	"fmt"

	"zynqfusion/internal/zynq"
)

// Resources is an FPGA utilization estimate in the shape of the paper's
// Table I.
type Resources struct {
	Part      string
	Registers int
	LUTs      int
	Slices    int
	BUFG      int
}

// Utilization returns the percentage rows of Table I (truncated to integer
// percent, matching the published table).
func (r Resources) Utilization() (regs, luts, slices, bufg int) {
	pct := func(used, avail int) int { return used * 100 / avail }
	return pct(r.Registers, zynq.AvailRegisters),
		pct(r.LUTs, zynq.AvailLUTs),
		pct(r.Slices, zynq.AvailSlices),
		pct(r.BUFG, zynq.AvailBUFG)
}

func (r Resources) String() string {
	re, lu, sl, bu := r.Utilization()
	return fmt.Sprintf("part=%s registers=%d(%d%%) luts=%d(%d%%) slices=%d(%d%%) bufg=%d(%d%%)",
		r.Part, r.Registers, re, r.LUTs, lu, r.Slices, sl, r.BUFG, bu)
}

// Per-component costs of the synthesized datapath on 7-series fabric.
// These are calibrated so that the estimator's total matches the paper's
// synthesis report (Table I) for the 12-tap dual-filter engine; they sit
// within the plausible range for VIVADO_HLS floating-point operators with
// DSP48 usage folded into fabric equivalents.
const (
	fpAdderLUTs                 = 384
	fpAdderFFs                  = 540
	fpMultLUTs                  = 139
	fpMultFFs                   = 204
	axiMasterLUTs, axiMasterFFs = 1886, 2610
	axiLiteLUTs, axiLiteFFs     = 492, 716
	// Control covers the mode FSM, loop counters, memcpy address
	// generators and the II=1 pipeline control logic.
	controlLUTs, controlFFs = 2263, 1846
	shiftRegMuxLUTs         = 212
	shiftRegFFs             = 12 * 32 // 12-deep, 32-bit
	// slicePacking is the observed FF/LUT-to-slice packing efficiency of
	// the placed design.
	slicePacking = 0.55145
)

// EstimateWaveEngine estimates the implementation complexity of the
// hardware wavelet engine: the fully unrolled 12-tap dual-output datapath
// (24 multipliers, 24 accumulating adders at II=1), the AXI4-Master/ACP
// DMA, the AXI4-Lite slave, the mode control FSM and the shift register.
func EstimateWaveEngine() Resources {
	const (
		multipliers = 2 * 12 // hp and lp filters, fully unrolled
		adders      = 2 * 12 // accumulation chains, pipelined for II=1
	)
	luts := multipliers*fpMultLUTs + adders*fpAdderLUTs +
		axiMasterLUTs + axiLiteLUTs + controlLUTs + shiftRegMuxLUTs
	ffs := multipliers*fpMultFFs + adders*fpAdderFFs +
		axiMasterFFs + axiLiteFFs + controlFFs + shiftRegFFs
	slices := int(float64(max(ffs/8, luts/4))/slicePacking + 0.5)
	return Resources{
		Part:      zynq.Part,
		Registers: ffs,
		LUTs:      luts,
		Slices:    slices,
		// System, thermal-camera and generated pixel clocks (Fig. 7).
		BUFG: 3,
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

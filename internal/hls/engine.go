// Package hls models the hardware wavelet engine that VIVADO_HLS
// synthesizes from the paper's C++ (Fig. 4): a 12-coefficient dual-output
// filter datapath fed through a 12-deep shift register, hardware memcpy
// transfers between DDR and the internal BRAMs over the ACP, an AXI4-Lite
// command/coefficient interface, and three operating modes (coefficient
// load, forward transform, inverse transform).
//
// The model is functional (it computes the same arithmetic in the same
// order as the synthesized engine, so results are bit-exact against the
// scalar reference) and timing-accurate at the transaction level (II=1
// pipeline, non-overlapped memcpys, burst costs from the axi package).
package hls

import (
	"errors"
	"fmt"

	"zynqfusion/internal/axi"
	"zynqfusion/internal/signal"
	"zynqfusion/internal/sim"
)

// Mode selects the engine operation, written over AXI4-Lite.
type Mode uint32

// Engine modes (paper, section V).
const (
	ModeLoadCoeff Mode = 1
	ModeForward   Mode = 2
	ModeInverse   Mode = 3
)

// Register map of the AXI4-Lite slave interface.
const (
	RegCtrl      uint32 = 0x00 // command/start
	RegStatus    uint32 = 0x04 // done flag
	RegInOffset  uint32 = 0x08 // input offset into the shared buffer
	RegOutOffset uint32 = 0x0c // output offset into the shared buffer
	RegWidth     uint32 = 0x10 // output pair count for the row
	RegCoeffBase uint32 = 0x40 // 48 coefficient words follow
)

// BRAMArea is the size of one double-buffer area in 32-bit words: the
// paper's 4096-word buffers are split into two 2048-word areas, suitable
// for an image width up to 2048 pixels.
const BRAMArea = 2048

// PipelineDepth is the fill latency of the synthesized floating-point
// datapath in PL cycles (adder/multiplier stages plus control).
const PipelineDepth = 42

// Errors returned by the engine model.
var (
	ErrRowTooWide    = errors.New("hls: row exceeds the 2048-word BRAM area")
	ErrNoCoeffs      = errors.New("hls: filter coefficients not loaded")
	ErrBadLength     = errors.New("hls: buffer length inconsistent with width")
	ErrWidthTooSmall = errors.New("hls: output width must be positive")
)

// WaveEngine is one instance of the hardware wavelet engine.
type WaveEngine struct {
	Lite *axi.Lite
	ACP  *axi.Burst
	pl   sim.Clock

	analysisLP, analysisHP signal.Taps
	synthLP, synthHP       signal.Taps
	coeffLoaded            bool

	// Statistics.
	ForwardRows, InverseRows int64
	PLBusy                   sim.Time
}

// New returns a wave engine clocked by pl, with its AXI-Lite port timed in
// the ps domain and its DMA path using the given burst model.
func New(ps, pl sim.Clock, acp *axi.Burst) *WaveEngine {
	return &WaveEngine{Lite: axi.NewLite(ps), ACP: acp, pl: pl}
}

// LoadCoeffs writes the four 12-tap filter register files through the
// AXI4-Lite port (mode 1) and returns the PS time spent. It is performed
// once per filter-bank change, not per row.
func (e *WaveEngine) LoadCoeffs(al, ah, sl, sh *signal.Taps) sim.Time {
	var t sim.Time
	t += e.Lite.Write(RegCtrl, uint32(ModeLoadCoeff))
	addr := RegCoeffBase
	for _, taps := range []*signal.Taps{al, ah, sl, sh} {
		for _, c := range taps {
			t += e.Lite.Write(addr, f32bits(c))
			addr += 4
		}
	}
	e.analysisLP, e.analysisHP = *al, *ah
	e.synthLP, e.synthHP = *sl, *sh
	e.coeffLoaded = true
	return t
}

// CoeffsLoaded reports whether filters are resident.
func (e *WaveEngine) CoeffsLoaded() bool { return e.coeffLoaded }

// Forward runs one analysis row (mode 2). in holds 2*m+12 samples; out
// receives 2*m interleaved outputs with the highpass first in each pair
// (buff_out[2k] = hp, buff_out[2k+1] = lp, as in Fig. 4). It returns the
// PL-side busy time: input memcpy, pipeline, output memcpy, which the
// synthesized engine does not overlap.
func (e *WaveEngine) Forward(in, out []float32) (sim.Time, error) {
	m := len(out) / 2
	if err := e.checkRow(m, len(in), 2*m+signal.TapCount, len(out)); err != nil {
		return 0, err
	}

	// Functional model: the Fig. 4 dataflow. The shift register advances
	// by two samples per iteration; outputs start once it is full.
	var sr [signal.TapCount]float32
	for i := 0; i < m+6; i++ {
		inA := in[i*2]
		inB := in[i*2+1]
		var hpAcc, lpAcc float32
		hpAcc = e.analysisHP[0] * sr[0]
		lpAcc = e.analysisLP[0] * sr[0]
		for j := 1; j < signal.TapCount; j++ {
			hpAcc += e.analysisHP[j] * sr[j]
			lpAcc += e.analysisLP[j] * sr[j]
			if j < signal.TapCount-1 {
				sr[j-1] = sr[j+1]
			}
		}
		sr[signal.TapCount-2] = inA
		sr[signal.TapCount-1] = inB
		if i > 5 {
			out[i*2-12] = hpAcc
			out[i*2+1-12] = lpAcc
		}
	}

	e.ForwardRows++
	t := e.rowTime(len(in), m+6, len(out))
	e.PLBusy += t
	return t, nil
}

// Inverse runs one synthesis row (mode 3). in holds m+5 interleaved
// coefficient pairs (lo, hi per pair, 2*m+10 words); out receives 2*m
// reconstructed samples. Timing mirrors Forward.
func (e *WaveEngine) Inverse(in, out []float32) (sim.Time, error) {
	m := len(out) / 2
	if err := e.checkRow(m, len(in), 2*(m+signal.SynthesisPad), len(out)); err != nil {
		return 0, err
	}

	const half = signal.TapCount / 2
	var srLo, srHi [half]float32
	pairs := m + signal.SynthesisPad
	for i := 0; i < pairs; i++ {
		for j := 0; j < half-1; j++ {
			srLo[j] = srLo[j+1]
			srHi[j] = srHi[j+1]
		}
		srLo[half-1] = in[2*i]
		srHi[half-1] = in[2*i+1]
		if i < half-1 {
			continue
		}
		var even, odd float32
		for k := 0; k < half; k++ {
			even += e.synthLP[2*k]*srLo[half-1-k] + e.synthHP[2*k]*srHi[half-1-k]
			odd += e.synthLP[2*k+1]*srLo[half-1-k] + e.synthHP[2*k+1]*srHi[half-1-k]
		}
		o := i - (half - 1)
		out[2*o] = even
		out[2*o+1] = odd
	}

	e.InverseRows++
	t := e.rowTime(len(in), pairs, len(out))
	e.PLBusy += t
	return t, nil
}

func (e *WaveEngine) checkRow(m, inLen, wantIn, outLen int) error {
	if !e.coeffLoaded {
		return ErrNoCoeffs
	}
	if m <= 0 {
		return ErrWidthTooSmall
	}
	if inLen != wantIn || outLen != 2*m {
		return fmt.Errorf("%w: in=%d want=%d out=%d", ErrBadLength, inLen, wantIn, outLen)
	}
	if inLen > BRAMArea || outLen > BRAMArea {
		return fmt.Errorf("%w: in=%d out=%d area=%d", ErrRowTooWide, inLen, outLen, BRAMArea)
	}
	return nil
}

// rowTime is the non-overlapped input-memcpy + pipeline + output-memcpy
// latency of one row, per the paper's note that "the current VIVADO_HLS
// tools do not pipeline the memcpy's".
func (e *WaveEngine) rowTime(inWords, iters, outWords int) sim.Time {
	t := e.ACP.Transfer(inWords)
	t += e.pl.Cycles(int64(iters + PipelineDepth))
	t += e.ACP.Transfer(outWords)
	return t
}

// CommandTime returns the PS time to issue one row command: control,
// offset and width register writes plus completion polling ("App check for
// accelerator completion and activate", Fig. 5). polls is the number of
// status reads before the done flag is observed.
func (e *WaveEngine) CommandTime(polls int) sim.Time {
	t := e.Lite.Write(RegInOffset, 0)
	t += e.Lite.Write(RegOutOffset, 0)
	t += e.Lite.Write(RegWidth, 0)
	t += e.Lite.Write(RegCtrl, uint32(ModeForward))
	for i := 0; i < polls; i++ {
		_, rt := e.Lite.Read(RegStatus)
		t += rt
	}
	return t
}

// f32bits reinterprets a float32 register write without importing math
// into the hot path. Only used for the AXI-Lite coefficient image.
func f32bits(f float32) uint32 {
	// The register image is never read back numerically; a stable mapping
	// suffices and avoids unsafe. Scale preserves 3 decimal places.
	return uint32(int32(f * 1000))
}

package hls

import (
	"errors"
	"math/rand"
	"testing"

	"zynqfusion/internal/signal"
)

func TestInverseCapacityBounds(t *testing.T) {
	e := newEngine()
	loadDefault(t, e)
	// Largest legal inverse row: input pairs 2*(m+5) <= BRAMArea and
	// output 2m <= BRAMArea.
	m := BRAMArea/2 - signal.SynthesisPad
	in := make([]float32, 2*(m+signal.SynthesisPad))
	out := make([]float32, 2*m)
	if _, err := e.Inverse(in, out); err != nil {
		t.Errorf("max inverse row should fit: %v", err)
	}
	m++
	in = make([]float32, 2*(m+signal.SynthesisPad))
	out = make([]float32, 2*m)
	if _, err := e.Inverse(in, out); !errors.Is(err, ErrRowTooWide) {
		t.Errorf("oversized inverse row: %v", err)
	}
}

func TestInverseRequiresCoefficients(t *testing.T) {
	e := newEngine()
	m := 8
	in := make([]float32, 2*(m+signal.SynthesisPad))
	out := make([]float32, 2*m)
	if _, err := e.Inverse(in, out); !errors.Is(err, ErrNoCoeffs) {
		t.Errorf("inverse without coeffs: %v", err)
	}
}

func TestRowCountersAdvance(t *testing.T) {
	e := newEngine()
	loadDefault(t, e)
	m := 8
	fin := make([]float32, 2*m+signal.TapCount)
	fout := make([]float32, 2*m)
	iin := make([]float32, 2*(m+signal.SynthesisPad))
	iout := make([]float32, 2*m)
	for i := 0; i < 3; i++ {
		if _, err := e.Forward(fin, fout); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.Inverse(iin, iout); err != nil {
		t.Fatal(err)
	}
	if e.ForwardRows != 3 || e.InverseRows != 1 {
		t.Errorf("row counters %d/%d", e.ForwardRows, e.InverseRows)
	}
	if e.PLBusy <= 0 {
		t.Error("PL busy time not accumulated")
	}
}

func TestInverseTimingMirrorsForward(t *testing.T) {
	// Same word counts in and out must give identical PL time for both
	// directions (the engine is the same pipeline in both modes).
	e := newEngine()
	loadDefault(t, e)
	m := 50
	fin := make([]float32, 2*m+signal.TapCount)
	fout := make([]float32, 2*m)
	ft, err := e.Forward(fin, fout)
	if err != nil {
		t.Fatal(err)
	}
	// Inverse consuming the same input word count: pairs = m+6 ->
	// 2*(m+6) = 2m+12 input words; output 2*(m+1)... choose m2 with
	// matching geometry: inverse input words = 2*(m2+5), output 2*m2.
	m2 := m + 1 // gives input 2m+12, same as forward's
	iin := make([]float32, 2*(m2+signal.SynthesisPad))
	iout := make([]float32, 2*m2)
	it, err := e.Inverse(iin, iout)
	if err != nil {
		t.Fatal(err)
	}
	// Same input words and almost-same iteration/output counts: the two
	// times must be within a few PL cycles of each other.
	diff := int64(ft - it)
	if diff < 0 {
		diff = -diff
	}
	const fourPLCyclesPs = 4 * 10000
	if diff > fourPLCyclesPs {
		t.Errorf("forward %v vs inverse %v differ too much", ft, it)
	}
}

func TestForwardDeterministicAcrossRuns(t *testing.T) {
	run := func() []float32 {
		e := newEngine()
		loadDefault(t, e)
		m := 16
		in := make([]float32, 2*m+signal.TapCount)
		r := rand.New(rand.NewSource(7))
		for i := range in {
			in[i] = float32(r.Float64())
		}
		out := make([]float32, 2*m)
		if _, err := e.Forward(in, out); err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("engine model must be deterministic")
		}
	}
}

package hls

import (
	"errors"
	"math/rand"
	"testing"

	"zynqfusion/internal/axi"
	"zynqfusion/internal/signal"
	"zynqfusion/internal/sim"
	"zynqfusion/internal/wavelet"
	"zynqfusion/internal/zynq"
)

func newEngine() *WaveEngine {
	pl := zynq.PL()
	return New(zynq.PS(), pl, axi.NewACP(pl))
}

func loadDefault(t *testing.T, e *WaveEngine) *wavelet.Bank {
	t.Helper()
	b := wavelet.CDF97
	e.LoadCoeffs(&b.AL, &b.AH, &b.SL, &b.SH)
	return b
}

func TestForwardBitExactAgainstReference(t *testing.T) {
	e := newEngine()
	b := loadDefault(t, e)
	rng := rand.New(rand.NewSource(41))
	for _, m := range []int{1, 4, 11, 44, 100} {
		in := make([]float32, 2*m+signal.TapCount)
		for i := range in {
			in[i] = float32(rng.Float64()*200 - 100)
		}
		out := make([]float32, 2*m)
		if _, err := e.Forward(in, out); err != nil {
			t.Fatalf("m=%d: %v", m, err)
		}
		wantLo := make([]float32, m)
		wantHi := make([]float32, m)
		signal.AnalyzeRef(&b.AL, &b.AH, in, wantLo, wantHi)
		for i := 0; i < m; i++ {
			if out[2*i] != wantHi[i] || out[2*i+1] != wantLo[i] {
				t.Fatalf("m=%d pair %d: engine (%g,%g) ref (%g,%g)",
					m, i, out[2*i], out[2*i+1], wantHi[i], wantLo[i])
			}
		}
	}
}

func TestInverseBitExactAgainstReference(t *testing.T) {
	e := newEngine()
	b := loadDefault(t, e)
	rng := rand.New(rand.NewSource(42))
	for _, m := range []int{1, 4, 11, 44} {
		pairs := m + signal.SynthesisPad
		in := make([]float32, 2*pairs)
		plo := make([]float32, pairs)
		phi := make([]float32, pairs)
		for i := 0; i < pairs; i++ {
			plo[i] = float32(rng.Float64()*20 - 10)
			phi[i] = float32(rng.Float64()*20 - 10)
			in[2*i] = plo[i]
			in[2*i+1] = phi[i]
		}
		out := make([]float32, 2*m)
		if _, err := e.Inverse(in, out); err != nil {
			t.Fatalf("m=%d: %v", m, err)
		}
		want := make([]float32, 2*m)
		signal.SynthesizeRef(&b.SL, &b.SH, plo, phi, want)
		for i := range want {
			if out[i] != want[i] {
				t.Fatalf("m=%d sample %d: engine %g ref %g", m, i, out[i], want[i])
			}
		}
	}
}

func TestEngineRequiresCoefficients(t *testing.T) {
	e := newEngine()
	in := make([]float32, 2*4+signal.TapCount)
	out := make([]float32, 8)
	if _, err := e.Forward(in, out); !errors.Is(err, ErrNoCoeffs) {
		t.Errorf("Forward without coeffs: %v, want ErrNoCoeffs", err)
	}
}

func TestEngineRejectsOversizedRows(t *testing.T) {
	e := newEngine()
	loadDefault(t, e)
	m := (BRAMArea - signal.TapCount) / 2 // largest legal input
	in := make([]float32, 2*m+signal.TapCount)
	out := make([]float32, 2*m)
	if _, err := e.Forward(in, out); err != nil {
		t.Errorf("row of %d words should fit: %v", len(in), err)
	}
	m = BRAMArea / 2 // output 2m == BRAMArea fits, input 2m+12 does not
	in = make([]float32, 2*m+signal.TapCount)
	out = make([]float32, 2*m)
	if _, err := e.Forward(in, out); !errors.Is(err, ErrRowTooWide) {
		t.Errorf("oversized row: %v, want ErrRowTooWide", err)
	}
}

func TestEngineRejectsBadLengths(t *testing.T) {
	e := newEngine()
	loadDefault(t, e)
	if _, err := e.Forward(make([]float32, 20), make([]float32, 10)); !errors.Is(err, ErrBadLength) {
		t.Errorf("bad length: %v", err)
	}
	if _, err := e.Forward(make([]float32, signal.TapCount), make([]float32, 0)); !errors.Is(err, ErrWidthTooSmall) {
		t.Errorf("zero width: %v", err)
	}
}

func TestRowTimeComponents(t *testing.T) {
	// One row's PL time must be the sum of the two (non-overlapped)
	// memcpys plus the pipeline: (m+6) iterations + depth at 100 MHz.
	e := newEngine()
	loadDefault(t, e)
	m := 44
	in := make([]float32, 2*m+signal.TapCount)
	out := make([]float32, 2*m)
	acpBefore := *e.ACP
	got, err := e.Forward(in, out)
	if err != nil {
		t.Fatal(err)
	}
	pl := zynq.PL()
	fresh := axi.NewACP(pl)
	want := fresh.Transfer(len(in)) + pl.Cycles(int64(m+6+PipelineDepth)) + fresh.Transfer(len(out))
	if got != want {
		t.Errorf("row time %v, want %v", got, want)
	}
	if e.ACP.Transfers != acpBefore.Transfers+2 {
		t.Errorf("expected 2 DMA transfers, got %d", e.ACP.Transfers-acpBefore.Transfers)
	}
}

func TestPipelineIsIIOne(t *testing.T) {
	// Doubling the row width must add exactly the marginal DMA beats plus
	// one PL cycle per extra iteration: initiation interval of one.
	e := newEngine()
	loadDefault(t, e)
	run := func(m int) sim.Time {
		in := make([]float32, 2*m+signal.TapCount)
		out := make([]float32, 2*m)
		tm, err := e.Forward(in, out)
		if err != nil {
			t.Fatal(err)
		}
		return tm
	}
	t1 := run(100)
	t2 := run(200)
	pl := zynq.PL()
	acp := axi.NewACP(pl)
	wantDelta := pl.CyclesF(acp.BeatsPerWord*float64(2*100+2*100)) + pl.Cycles(100)
	delta := t2 - t1
	if delta != wantDelta {
		t.Errorf("marginal cost %v, want %v (II=1)", delta, wantDelta)
	}
}

func TestLoadCoeffsAccounting(t *testing.T) {
	e := newEngine()
	b := wavelet.CDF97
	tm := e.LoadCoeffs(&b.AL, &b.AH, &b.SL, &b.SH)
	// 1 mode write + 48 coefficient words.
	if e.Lite.Writes != 49 {
		t.Errorf("AXI-Lite writes = %d, want 49", e.Lite.Writes)
	}
	// Sum per access, matching the port's per-transaction accounting.
	var want sim.Time
	for i := 0; i < 49; i++ {
		want += zynq.PS().Cycles(axi.GPWordCycles)
	}
	if tm != want {
		t.Errorf("coefficient load time %v, want %v", tm, want)
	}
	if !e.CoeffsLoaded() {
		t.Error("coefficients should be resident")
	}
}

func TestCommandTime(t *testing.T) {
	e := newEngine()
	tm := e.CommandTime(2)
	var want sim.Time // 4 writes + 2 polls, summed per transaction
	for i := 0; i < 6; i++ {
		want += zynq.PS().Cycles(axi.GPWordCycles)
	}
	if tm != want {
		t.Errorf("command time %v, want %v", tm, want)
	}
}

func TestTableIResources(t *testing.T) {
	r := EstimateWaveEngine()
	if r.Part != zynq.Part {
		t.Errorf("part %q", r.Part)
	}
	if r.Registers != 23412 || r.LUTs != 17405 || r.Slices != 7890 || r.BUFG != 3 {
		t.Errorf("resources %+v, want Table I: 23412 regs, 17405 LUTs, 7890 slices, 3 BUFG", r)
	}
	regs, luts, slices, bufg := r.Utilization()
	if regs != 22 || luts != 32 || slices != 59 || bufg != 9 {
		t.Errorf("utilization %d%%/%d%%/%d%%/%d%%, want 22/32/59/9", regs, luts, slices, bufg)
	}
}

func TestGPTransferMotivatesDMA(t *testing.T) {
	// The ablation behind the custom DMA engine: moving one 88-pixel row
	// through the GP port with the CPU takes far longer than the ACP
	// burst.
	ps, pl := zynq.PS(), zynq.PL()
	words := 2*44 + signal.TapCount
	gp := axi.GPTransfer(ps, words)
	acp := axi.NewACP(pl).Transfer(words)
	if gp < 2*acp {
		t.Errorf("GP %v should be much slower than ACP %v", gp, acp)
	}
}

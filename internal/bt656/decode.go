package bt656

import (
	"zynqfusion/internal/frame"
)

// DecoderStats counts decoder events, mirroring the status outputs of the
// BT656_Decoder block in Fig. 7 (Active/HBlank/VBlank/Error).
type DecoderStats struct {
	Frames           int64 // complete fields emitted
	Lines            int64 // active lines accepted
	ProtectionErrors int64 // XY words failing the P3..P0 check
	LengthErrors     int64 // active lines with unexpected sample counts
	Resyncs          int64 // preamble matches that interrupted collection
}

// Decoder is the BT.656 stream decoder state machine. Feed bytes with
// Write; collect decoded luma fields with NextFrame. The zero value is not
// usable; call NewDecoder with the expected active width.
type Decoder struct {
	width int
	Stats DecoderStats

	pstate   int  // preamble match progress (0..3)
	active   bool // currently collecting an active line
	fieldBit bool
	haveF    bool

	line      []byte
	lines     [][]byte
	completed []*frame.Frame

	// Recycled storage: line buffers rotate through spareLines once their
	// field is emitted, and Recycle lets the consumer donate a drained
	// field frame back — the double-buffered capture frame stores of the
	// real decoder, which owns a fixed set rather than allocating per
	// field.
	spareLines  [][]byte
	spareFrames []*frame.Frame
}

// NewDecoder returns a decoder expecting the given active width in pixels.
func NewDecoder(width int) *Decoder {
	return &Decoder{width: width}
}

// Write consumes a chunk of the byte stream. It never fails; stream errors
// are counted in Stats. It implements io.Writer so camera models can pipe
// into it.
func (d *Decoder) Write(p []byte) (int, error) {
	for _, b := range p {
		d.step(b)
	}
	return len(p), nil
}

func (d *Decoder) step(b byte) {
	// Timing-reference preamble tracking runs even inside active video:
	// 0xFF cannot occur in payload, so a preamble always means control.
	// An EAV preamble while collecting is the normal line terminator; the
	// following XY word closes the line.
	switch {
	case b == preamble1:
		d.pstate = 1
		return
	case d.pstate == 1 && b == preamble2:
		d.pstate = 2
		return
	case d.pstate == 2 && b == preamble3:
		d.pstate = 3
		return
	case d.pstate == 3:
		d.pstate = 0
		d.handleXY(b)
		return
	}
	d.pstate = 0
	if d.active {
		d.line = append(d.line, b)
	}
}

func (d *Decoder) handleXY(b byte) {
	f, v, h, ok := DecodeXY(b)
	if !ok {
		d.Stats.ProtectionErrors++
		d.dropLine()
		return
	}
	if h {
		// EAV terminates the active line that preceded it (the EAV of
		// line n+1 closes line n's samples).
		d.endLine()
	}
	if d.haveF && f != d.fieldBit {
		// Field flip: everything collected belongs to the previous field.
		d.finishField()
	}
	d.fieldBit, d.haveF = f, true

	if h {
		if v && len(d.lines) > 0 {
			// Vertical blanking after active lines: field complete.
			d.finishField()
		}
		return
	}
	// SAV: start collecting when not in vertical blanking. A SAV while a
	// line is still open means the closing EAV was lost.
	if !v {
		if d.active {
			d.Stats.Resyncs++
		}
		d.active = true
		d.line = d.line[:0]
	}
}

func (d *Decoder) endLine() {
	if !d.active {
		return
	}
	d.active = false
	if len(d.line) != 2*d.width {
		if len(d.line) > 0 {
			d.Stats.LengthErrors++
		}
		return
	}
	var y []byte
	if n := len(d.spareLines); n > 0 {
		y = d.spareLines[n-1][:d.width]
		d.spareLines = d.spareLines[:n-1]
	} else {
		y = make([]byte, d.width)
	}
	for i := 0; i < d.width; i++ {
		y[i] = d.line[2*i+1] // Cb Y Cr Y multiplex: luma at odd offsets
	}
	d.lines = append(d.lines, y)
	d.Stats.Lines++
}

func (d *Decoder) dropLine() {
	d.active = false
	d.line = d.line[:0]
}

func (d *Decoder) finishField() {
	if len(d.lines) == 0 {
		return
	}
	f := d.takeFrame(d.width, len(d.lines))
	for r, y := range d.lines {
		row := f.Row(r)
		for i, v := range y {
			row[i] = float32(v)
		}
	}
	d.spareLines = append(d.spareLines, d.lines...)
	d.lines = d.lines[:0]
	d.completed = append(d.completed, f)
	d.Stats.Frames++
}

// takeFrame reuses a recycled field frame of the right shape, allocating
// only when none was donated back.
func (d *Decoder) takeFrame(w, h int) *frame.Frame {
	for i, f := range d.spareFrames {
		if f.W == w && f.H == h {
			last := len(d.spareFrames) - 1
			d.spareFrames[i] = d.spareFrames[last]
			d.spareFrames = d.spareFrames[:last]
			return f
		}
	}
	return frame.New(w, h)
}

// Recycle donates a fully consumed field frame back to the decoder's
// store, so steady-state decoding stops allocating per field. The caller
// must not touch the frame afterwards. Only plain frames from NextFrame
// should come back; anything else is dropped.
func (d *Decoder) Recycle(f *frame.Frame) {
	if f == nil || f.Leased() || f.IsView() || len(d.spareFrames) >= 4 {
		return
	}
	d.spareFrames = append(d.spareFrames, f)
}

// Flush emits any partially collected field (end of stream).
func (d *Decoder) Flush() {
	d.endLine()
	d.finishField()
}

// NextFrame pops the oldest decoded field, reporting false when none is
// pending.
func (d *Decoder) NextFrame() (*frame.Frame, bool) {
	if len(d.completed) == 0 {
		return nil, false
	}
	f := d.completed[0]
	d.completed = d.completed[1:]
	return f, true
}

package bt656

import "zynqfusion/internal/frame"

// OutputFIFO is the frame handshake buffer of Fig. 7: "the AXI control
// signals guarantee that a new frame will be stored in the output FIFO
// only after the previous frame is taken by the wave engine hardware."
// Push refuses new frames while one is pending; the camera side counts the
// refusals as dropped frames.
type OutputFIFO struct {
	slot    *frame.Frame
	Pushed  int64
	Dropped int64
	Popped  int64
}

// Push offers a frame; it returns false (and counts a drop) when the
// previous frame has not been taken yet.
func (f *OutputFIFO) Push(fr *frame.Frame) bool {
	if f.slot != nil {
		f.Dropped++
		return false
	}
	f.slot = fr
	f.Pushed++
	return true
}

// Pop takes the pending frame, freeing the slot for the camera side.
func (f *OutputFIFO) Pop() (*frame.Frame, bool) {
	if f.slot == nil {
		return nil, false
	}
	fr := f.slot
	f.slot = nil
	f.Popped++
	return fr, true
}

// Full reports whether a frame is pending.
func (f *OutputFIFO) Full() bool { return f.slot != nil }

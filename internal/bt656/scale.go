package bt656

import (
	"fmt"

	"zynqfusion/internal/frame"
)

// Scaler is the Video_Scale block of Fig. 7, converting the camera's
// native field geometry (720x243 per field for the thermal head) to the
// display/processing geometry (640x480, 60 Hz).
type Scaler struct {
	OutW, OutH int
	// Bilinear selects bilinear interpolation; false gives the cheaper
	// nearest-neighbor hardware.
	Bilinear bool
}

// Scale resamples src to the configured output geometry.
func (s Scaler) Scale(src *frame.Frame) (*frame.Frame, error) {
	if s.OutW <= 0 || s.OutH <= 0 {
		return nil, fmt.Errorf("bt656.Scaler: bad output size %dx%d", s.OutW, s.OutH)
	}
	dst := frame.New(s.OutW, s.OutH)
	if err := s.ScaleInto(dst, src); err != nil {
		return nil, err
	}
	return dst, nil
}

// ScaleInto resamples src into dst, which must already have the
// configured output geometry — the in-place form a hardware scaler block
// writing its fixed output frame store uses. Every output sample is
// written.
func (s Scaler) ScaleInto(dst, src *frame.Frame) error {
	if s.OutW <= 0 || s.OutH <= 0 {
		return fmt.Errorf("bt656.Scaler: bad output size %dx%d", s.OutW, s.OutH)
	}
	if src.W == 0 || src.H == 0 {
		return fmt.Errorf("bt656.Scaler: empty source")
	}
	if dst.W != s.OutW || dst.H != s.OutH {
		return fmt.Errorf("bt656.Scaler: destination %dx%d, want %dx%d", dst.W, dst.H, s.OutW, s.OutH)
	}
	sx := float64(src.W) / float64(s.OutW)
	sy := float64(src.H) / float64(s.OutH)
	for y := 0; y < s.OutH; y++ {
		fy := (float64(y)+0.5)*sy - 0.5
		for x := 0; x < s.OutW; x++ {
			fx := (float64(x)+0.5)*sx - 0.5
			if s.Bilinear {
				dst.Set(x, y, bilinear(src, fx, fy))
			} else {
				dst.Set(x, y, nearest(src, fx, fy))
			}
		}
	}
	return nil
}

func nearest(src *frame.Frame, fx, fy float64) float32 {
	x := clampInt(int(fx+0.5), 0, src.W-1)
	y := clampInt(int(fy+0.5), 0, src.H-1)
	return src.At(x, y)
}

func bilinear(src *frame.Frame, fx, fy float64) float32 {
	x0 := clampInt(int(fx), 0, src.W-1)
	y0 := clampInt(int(fy), 0, src.H-1)
	x1 := clampInt(x0+1, 0, src.W-1)
	y1 := clampInt(y0+1, 0, src.H-1)
	ax := float32(fx - float64(x0))
	ay := float32(fy - float64(y0))
	if ax < 0 {
		ax = 0
	}
	if ay < 0 {
		ay = 0
	}
	top := src.At(x0, y0)*(1-ax) + src.At(x1, y0)*ax
	bot := src.At(x0, y1)*(1-ax) + src.At(x1, y1)*ax
	return top*(1-ay) + bot*ay
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

package bt656

import (
	"fmt"

	"zynqfusion/internal/frame"
)

// Encoder serializes luma frames into a BT.656 byte stream, standing in
// for the thermal camera head (the Thermoteknix module emits monochrome
// video, so chroma is neutral).
type Encoder struct {
	// BlankingLines is the count of vertical blanking lines emitted before
	// the active field (default 20, NTSC-like).
	BlankingLines int
	// Field alternates when interlaced output is enabled.
	Interlaced bool
	field      bool
}

// Encode appends the BT.656 serialization of one field carrying f to dst
// and returns it. Luma is clamped to [1, 254] because 0x00 and 0xFF are
// reserved for timing reference codes.
func (e *Encoder) Encode(dst []byte, f *frame.Frame) []byte {
	blanking := e.BlankingLines
	if blanking == 0 {
		blanking = 20
	}
	field := e.field
	if e.Interlaced {
		e.field = !e.field
	}
	lineWords := f.W * 2

	appendLine := func(dst []byte, v bool, y []float32) []byte {
		// EAV of the previous line, blanking gap, then SAV + payload.
		dst = append(dst, preamble1, preamble2, preamble3, XY(field, v, true))
		for i := 0; i < 8; i++ {
			dst = append(dst, blankChroma, blankLuma)
		}
		dst = append(dst, preamble1, preamble2, preamble3, XY(field, v, false))
		if y == nil {
			for i := 0; i < lineWords/2; i++ {
				dst = append(dst, blankChroma, blankLuma)
			}
			return dst
		}
		for _, s := range y {
			dst = append(dst, blankChroma, clampLuma(s))
		}
		return dst
	}

	for i := 0; i < blanking; i++ {
		dst = appendLine(dst, true, nil)
	}
	for r := 0; r < f.H; r++ {
		dst = appendLine(dst, false, f.Row(r))
	}
	return dst
}

func clampLuma(v float32) byte {
	if v < 1 {
		return 1
	}
	if v > 254 {
		return 254
	}
	return byte(v + 0.5)
}

// CorruptBit flips one bit of the stream (test stimulus for the decoder's
// protection-bit checking). It panics on an out-of-range position.
func CorruptBit(stream []byte, byteIdx, bitIdx int) {
	if byteIdx < 0 || byteIdx >= len(stream) || bitIdx < 0 || bitIdx > 7 {
		panic(fmt.Sprintf("bt656.CorruptBit: position %d.%d out of range", byteIdx, bitIdx))
	}
	stream[byteIdx] ^= 1 << bitIdx
}

// Package bt656 implements the ITU-R BT.656 video interface the paper's
// thermal camera uses: the encoder (a test stimulus generator standing in
// for the camera head), the decoder state machine synthesized on the PL
// (Fig. 7), the video scaler and the frame-handshake output FIFO.
//
// The stream format: each line is framed by timing reference codes
// FF 00 00 XY. The XY word carries F (field), V (vertical blanking) and
// H (0 = SAV, start of active video; 1 = EAV, end of active video) plus
// four protection bits that let the decoder detect single-bit errors.
// Active video is 8-bit YCbCr 4:2:2 multiplexed as Cb Y Cr Y.
package bt656

// Timing reference code preamble bytes.
const (
	preamble1 = 0xFF
	preamble2 = 0x00
	preamble3 = 0x00
)

// Blanking filler values (BT.601 neutral chroma and black luma).
const (
	blankChroma = 0x80
	blankLuma   = 0x10
)

// XY encodes the timing reference word from the F, V and H flags,
// including the protection bits P3..P0 defined by BT.656:
//
//	P3 = V^H, P2 = F^H, P1 = F^V, P0 = F^V^H
func XY(f, v, h bool) byte {
	b := byte(0x80)
	fb, vb, hb := bit(f), bit(v), bit(h)
	b |= fb << 6
	b |= vb << 5
	b |= hb << 4
	b |= (vb ^ hb) << 3
	b |= (fb ^ hb) << 2
	b |= (fb ^ vb) << 1
	b |= fb ^ vb ^ hb
	return b
}

// DecodeXY validates the protection bits and extracts the flags. ok is
// false when the word fails protection (a transmission error).
func DecodeXY(b byte) (f, v, h, ok bool) {
	if b&0x80 == 0 {
		return false, false, false, false
	}
	fb := (b >> 6) & 1
	vb := (b >> 5) & 1
	hb := (b >> 4) & 1
	want := byte(0x80) | fb<<6 | vb<<5 | hb<<4 |
		(vb^hb)<<3 | (fb^hb)<<2 | (fb^vb)<<1 | (fb ^ vb ^ hb)
	if b != want {
		return false, false, false, false
	}
	return fb == 1, vb == 1, hb == 1, true
}

func bit(b bool) byte {
	if b {
		return 1
	}
	return 0
}

package bt656

import (
	"math/rand"
	"testing"
	"testing/quick"

	"zynqfusion/internal/frame"
)

func randLumaFrame(rng *rand.Rand, w, h int) *frame.Frame {
	f := frame.New(w, h)
	for i := range f.Pix {
		f.Pix[i] = float32(1 + rng.Intn(254)) // legal luma range
	}
	return f
}

func TestXYProtectionBitsRoundTrip(t *testing.T) {
	for _, f := range []bool{false, true} {
		for _, v := range []bool{false, true} {
			for _, h := range []bool{false, true} {
				b := XY(f, v, h)
				gf, gv, gh, ok := DecodeXY(b)
				if !ok || gf != f || gv != v || gh != h {
					t.Errorf("XY(%v,%v,%v)=0x%02X decoded to (%v,%v,%v,%v)", f, v, h, b, gf, gv, gh, ok)
				}
			}
		}
	}
}

func TestXYDetectsSingleBitErrors(t *testing.T) {
	// Every single-bit corruption of a valid XY word must fail the
	// protection check or decode to different flags — never silently alias
	// onto the same flags.
	for _, f := range []bool{false, true} {
		for _, v := range []bool{false, true} {
			for _, h := range []bool{false, true} {
				b := XY(f, v, h)
				for bit := 0; bit < 8; bit++ {
					c := b ^ (1 << bit)
					gf, gv, gh, ok := DecodeXY(c)
					if ok && gf == f && gv == v && gh == h {
						t.Errorf("bit %d flip of 0x%02X undetected", bit, b)
					}
				}
			}
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for _, sz := range []struct{ w, h int }{{720, 243}, {384, 288}, {88, 72}} {
		src := randLumaFrame(rng, sz.w, sz.h)
		var enc Encoder
		stream := enc.Encode(nil, src)
		dec := NewDecoder(sz.w)
		if _, err := dec.Write(stream); err != nil {
			t.Fatal(err)
		}
		dec.Flush()
		got, ok := dec.NextFrame()
		if !ok {
			t.Fatalf("%dx%d: no frame decoded", sz.w, sz.h)
		}
		if got.W != sz.w || got.H != sz.h {
			t.Fatalf("%dx%d: decoded %dx%d", sz.w, sz.h, got.W, got.H)
		}
		d, _ := frame.MaxAbsDiff(src, got)
		if d > 0.5 { // byte quantization only
			t.Errorf("%dx%d: max error %g", sz.w, sz.h, d)
		}
		if dec.Stats.ProtectionErrors != 0 || dec.Stats.LengthErrors != 0 {
			t.Errorf("%dx%d: unexpected errors %+v", sz.w, sz.h, dec.Stats)
		}
	}
}

func TestDecodeSurvivesChunkedInput(t *testing.T) {
	// Stream arrives in arbitrary chunks (byte-by-byte here); the FSM
	// must be insensitive to framing.
	rng := rand.New(rand.NewSource(102))
	src := randLumaFrame(rng, 64, 16)
	var enc Encoder
	stream := enc.Encode(nil, src)
	dec := NewDecoder(64)
	for _, b := range stream {
		if _, err := dec.Write([]byte{b}); err != nil {
			t.Fatal(err)
		}
	}
	dec.Flush()
	got, ok := dec.NextFrame()
	if !ok {
		t.Fatal("no frame decoded")
	}
	d, _ := frame.MaxAbsDiff(src, got)
	if d > 0.5 {
		t.Errorf("max error %g", d)
	}
}

func TestDecoderCountsProtectionErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	src := randLumaFrame(rng, 64, 16)
	var enc Encoder
	stream := enc.Encode(nil, src)
	// Find an XY word (follows FF 00 00) and corrupt a flag bit.
	for i := 0; i+3 < len(stream); i++ {
		if stream[i] == 0xFF && stream[i+1] == 0 && stream[i+2] == 0 {
			CorruptBit(stream, i+3, 5)
			break
		}
	}
	dec := NewDecoder(64)
	dec.Write(stream)
	dec.Flush()
	if dec.Stats.ProtectionErrors == 0 {
		t.Error("corrupted XY word not detected")
	}
}

func TestDecoderRecoversAfterCorruption(t *testing.T) {
	// A corrupted field must not poison subsequent fields.
	rng := rand.New(rand.NewSource(104))
	var enc Encoder
	a := randLumaFrame(rng, 64, 16)
	b := randLumaFrame(rng, 64, 16)
	stream := enc.Encode(nil, a)
	cut := len(stream)
	stream = enc.Encode(stream, b)
	CorruptBit(stream, cut/2, 3) // corrupt somewhere in the first field
	dec := NewDecoder(64)
	dec.Write(stream)
	dec.Flush()
	var last *frame.Frame
	for {
		f, ok := dec.NextFrame()
		if !ok {
			break
		}
		last = f
	}
	if last == nil {
		t.Fatal("no frames decoded at all")
	}
	d, _ := frame.MaxAbsDiff(b, last)
	if d > 0.5 {
		t.Errorf("second field corrupted: max error %g", d)
	}
}

func TestInterlacedFieldsSplit(t *testing.T) {
	rng := rand.New(rand.NewSource(105))
	enc := Encoder{Interlaced: true}
	a := randLumaFrame(rng, 32, 8)
	b := randLumaFrame(rng, 32, 8)
	stream := enc.Encode(nil, a)
	stream = enc.Encode(stream, b)
	dec := NewDecoder(32)
	dec.Write(stream)
	dec.Flush()
	n := 0
	for {
		if _, ok := dec.NextFrame(); !ok {
			break
		}
		n++
	}
	if n != 2 {
		t.Errorf("decoded %d fields, want 2 (field bit should split them)", n)
	}
}

func TestScalerGeometry(t *testing.T) {
	rng := rand.New(rand.NewSource(106))
	src := randLumaFrame(rng, 720, 243)
	for _, bl := range []bool{false, true} {
		s := Scaler{OutW: 640, OutH: 480, Bilinear: bl}
		out, err := s.Scale(src)
		if err != nil {
			t.Fatal(err)
		}
		if out.W != 640 || out.H != 480 {
			t.Fatalf("scaled to %dx%d", out.W, out.H)
		}
	}
	if _, err := (Scaler{}).Scale(src); err == nil {
		t.Error("zero output size should fail")
	}
}

func TestScalerPreservesConstants(t *testing.T) {
	src := frame.New(720, 243)
	src.Fill(127)
	for _, bl := range []bool{false, true} {
		out, err := Scaler{OutW: 640, OutH: 480, Bilinear: bl}.Scale(src)
		if err != nil {
			t.Fatal(err)
		}
		lo, hi := out.MinMax()
		if lo < 126.99 || hi > 127.01 {
			t.Errorf("bilinear=%v: constant image distorted to [%g,%g]", bl, lo, hi)
		}
	}
}

func TestScalerIdentityWhenSameSize(t *testing.T) {
	rng := rand.New(rand.NewSource(107))
	src := randLumaFrame(rng, 64, 48)
	out, err := Scaler{OutW: 64, OutH: 48}.Scale(src)
	if err != nil {
		t.Fatal(err)
	}
	d, _ := frame.MaxAbsDiff(src, out)
	if d != 0 {
		t.Errorf("same-size scale changed pixels (max %g)", d)
	}
}

func TestOutputFIFOHandshake(t *testing.T) {
	var fifo OutputFIFO
	a, b := frame.New(4, 4), frame.New(4, 4)
	if !fifo.Push(a) {
		t.Fatal("push into empty FIFO failed")
	}
	if fifo.Push(b) {
		t.Fatal("push into full FIFO must be refused")
	}
	if fifo.Dropped != 1 {
		t.Errorf("dropped=%d, want 1", fifo.Dropped)
	}
	got, ok := fifo.Pop()
	if !ok || got != a {
		t.Fatal("pop returned wrong frame")
	}
	if !fifo.Push(b) {
		t.Fatal("push after pop failed")
	}
	if _, ok := fifo.Pop(); !ok {
		t.Fatal("second pop failed")
	}
	if _, ok := fifo.Pop(); ok {
		t.Fatal("pop from empty FIFO should fail")
	}
	if fifo.Pushed != 2 || fifo.Popped != 2 {
		t.Errorf("counters %+v", fifo)
	}
}

func TestEncodeDecodeQuick(t *testing.T) {
	// Property: any luma frame survives the encode/decode path.
	f := func(seed int64, wSel, hSel uint8) bool {
		w := 8 + int(wSel%32)*2 // even widths 8..70
		h := 4 + int(hSel%16)
		rng := rand.New(rand.NewSource(seed))
		src := randLumaFrame(rng, w, h)
		var enc Encoder
		dec := NewDecoder(w)
		dec.Write(enc.Encode(nil, src))
		dec.Flush()
		got, ok := dec.NextFrame()
		if !ok || got.W != w || got.H != h {
			return false
		}
		d, _ := frame.MaxAbsDiff(src, got)
		return d <= 0.5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

package zynq

import "testing"

// The platform constants are the paper's fixed facts (section V and
// Table I); this test pins them so a refactor cannot silently drift the
// calibration anchors.

func TestClockConstants(t *testing.T) {
	if PSHz != 533e6 {
		t.Errorf("PSHz = %g, want the 533 MHz processing-system clock", PSHz)
	}
	if PLHz != 100e6 {
		t.Errorf("PLHz = %g, want the single 100 MHz wave-engine clock", PLHz)
	}
	if ps := PS(); ps.Name != "ps" || ps.Hertz() != PSHz {
		t.Errorf("PS() = %+v, want ps domain at PSHz", ps)
	}
	if pl := PL(); pl.Name != "pl" || pl.Hertz() != PLHz {
		t.Errorf("PL() = %+v, want pl domain at PLHz", pl)
	}
	// The picosecond ledger depends on these periods dividing cleanly.
	if got := PS().Period(); int64(got) != 1876 {
		t.Errorf("PS period = %dps, want 1876ps", int64(got))
	}
	if got := PL().Period(); int64(got) != 10000 {
		t.Errorf("PL period = %dps, want 10000ps", int64(got))
	}
}

func TestPart(t *testing.T) {
	if Part != "xc7z020clg484-1" {
		t.Errorf("Part = %q, want the ZC702's XC7Z020", Part)
	}
}

func TestResourceCapacities(t *testing.T) {
	// Table I, "Available" column for the XC7Z020.
	if AvailRegisters != 106400 {
		t.Errorf("AvailRegisters = %d, want 106400", AvailRegisters)
	}
	if AvailLUTs != 53200 {
		t.Errorf("AvailLUTs = %d, want 53200", AvailLUTs)
	}
	if AvailSlices != 13300 {
		t.Errorf("AvailSlices = %d, want 13300", AvailSlices)
	}
	if AvailBUFG != 32 {
		t.Errorf("AvailBUFG = %d, want 32", AvailBUFG)
	}
	// Registers are two per slice-pair LUT on 7-series: the table's
	// columns must stay consistent with each other.
	if AvailRegisters != 2*AvailLUTs {
		t.Errorf("register/LUT ratio inconsistent: %d vs %d", AvailRegisters, AvailLUTs)
	}
}

// Package zynq models the fixed parameters of the paper's platform: the
// ZYNQ XC7Z020 on a ZC702 board, with the processing system (PS, the
// Cortex-A9 side) at its default 533 MHz and the programmable logic (PL)
// wave engine at 100 MHz.
package zynq

import "zynqfusion/internal/sim"

// Clock frequencies of the two domains (paper, section V).
const (
	PSHz = 533e6 // processing-system clock
	PLHz = 100e6 // programmable-logic clock, "a single clock frequency of 100 MHz"
)

// PS returns the processing-system clock domain.
func PS() sim.Clock { return sim.NewClock("ps", PSHz) }

// PL returns the programmable-logic clock domain.
func PL() sim.Clock { return sim.NewClock("pl", PLHz) }

// Part identifies the FPGA device of the ZC702 board.
const Part = "xc7z020clg484-1"

// Device resource capacity of the XC7Z020 (Table I, "Available" column).
const (
	AvailRegisters = 106400
	AvailLUTs      = 53200
	AvailSlices    = 13300
	AvailBUFG      = 32
)

package profiler

import (
	"strings"
	"testing"

	"zynqfusion/internal/obs"
	"zynqfusion/internal/pipeline"
	"zynqfusion/internal/sim"
)

func sample() pipeline.StageTimes {
	return pipeline.StageTimes{
		Capture: 10 * sim.Millisecond,
		Forward: 50 * sim.Millisecond,
		Fuse:    10 * sim.Millisecond,
		Inverse: 25 * sim.Millisecond,
		Display: 5 * sim.Millisecond,
	}
}

func TestFromStagesShares(t *testing.T) {
	p := FromStages(sample())
	if p.Total != 100*sim.Millisecond {
		t.Errorf("total %v", p.Total)
	}
	if got := p.Share("forward DT-CWT"); got != 0.5 {
		t.Errorf("forward share %g", got)
	}
	if got := p.Share("inverse DT-CWT"); got != 0.25 {
		t.Errorf("inverse share %g", got)
	}
	if got := p.Share("unknown"); got != 0 {
		t.Errorf("unknown stage share %g", got)
	}
}

func TestDominantStage(t *testing.T) {
	p := FromStages(sample())
	if d := p.Dominant(); d.Stage != "forward DT-CWT" {
		t.Errorf("dominant %q", d.Stage)
	}
	var empty Profile
	if d := empty.Dominant(); d.Stage != "" {
		t.Errorf("empty profile dominant %q", d.Stage)
	}
}

func TestSortedDescending(t *testing.T) {
	p := FromStages(sample())
	for i := 1; i < len(p.Entries); i++ {
		if p.Entries[i].Share > p.Entries[i-1].Share {
			t.Fatalf("not sorted at %d", i)
		}
	}
}

func TestStringRendersBars(t *testing.T) {
	s := FromStages(sample()).String()
	for _, want := range []string{"forward DT-CWT", "50.0%", "#"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestZeroProfile(t *testing.T) {
	p := FromStages(pipeline.StageTimes{})
	if p.Total != 0 {
		t.Errorf("total %v", p.Total)
	}
	for _, e := range p.Entries {
		if e.Share != 0 {
			t.Errorf("share %g for empty profile", e.Share)
		}
	}
}

func TestFromHistogramPercentiles(t *testing.T) {
	s := obs.Summary{
		Count: 100, Sum: 1200,
		Min: 1, Max: 50, P50: 10, P95: 20, P99: 40,
	}
	p := FromHistogram("latency", s, sim.Millisecond)
	if p.Total != 1200*sim.Millisecond {
		t.Fatalf("total %v", p.Total)
	}
	// Sorted descending by share: max, p99, p95, p50.
	wantOrder := []string{"latency max", "latency p99", "latency p95", "latency p50"}
	for i, e := range p.Entries {
		if e.Stage != wantOrder[i] {
			t.Fatalf("entry %d = %q, want %q", i, e.Stage, wantOrder[i])
		}
	}
	if got := p.Share("latency p50"); got != 10.0/50.0 {
		t.Fatalf("p50 share %v", got)
	}
	if got := p.Dominant(); got.Stage != "latency max" || got.Time != 50*sim.Millisecond {
		t.Fatalf("dominant %+v", got)
	}
	// The bar-chart rendering carries over unchanged.
	out := p.String()
	for _, want := range []string{"latency p99", "80.0%", "#"} {
		if !strings.Contains(out, want) {
			t.Errorf("String() missing %q:\n%s", want, out)
		}
	}
}

func TestFromHistogramEmpty(t *testing.T) {
	p := FromHistogram("latency", obs.Summary{}, sim.Millisecond)
	if len(p.Entries) != 0 || p.Total != 0 {
		t.Fatalf("empty summary produced %+v", p)
	}
}

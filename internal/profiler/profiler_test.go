package profiler

import (
	"strings"
	"testing"

	"zynqfusion/internal/pipeline"
	"zynqfusion/internal/sim"
)

func sample() pipeline.StageTimes {
	return pipeline.StageTimes{
		Capture: 10 * sim.Millisecond,
		Forward: 50 * sim.Millisecond,
		Fuse:    10 * sim.Millisecond,
		Inverse: 25 * sim.Millisecond,
		Display: 5 * sim.Millisecond,
	}
}

func TestFromStagesShares(t *testing.T) {
	p := FromStages(sample())
	if p.Total != 100*sim.Millisecond {
		t.Errorf("total %v", p.Total)
	}
	if got := p.Share("forward DT-CWT"); got != 0.5 {
		t.Errorf("forward share %g", got)
	}
	if got := p.Share("inverse DT-CWT"); got != 0.25 {
		t.Errorf("inverse share %g", got)
	}
	if got := p.Share("unknown"); got != 0 {
		t.Errorf("unknown stage share %g", got)
	}
}

func TestDominantStage(t *testing.T) {
	p := FromStages(sample())
	if d := p.Dominant(); d.Stage != "forward DT-CWT" {
		t.Errorf("dominant %q", d.Stage)
	}
	var empty Profile
	if d := empty.Dominant(); d.Stage != "" {
		t.Errorf("empty profile dominant %q", d.Stage)
	}
}

func TestSortedDescending(t *testing.T) {
	p := FromStages(sample())
	for i := 1; i < len(p.Entries); i++ {
		if p.Entries[i].Share > p.Entries[i-1].Share {
			t.Fatalf("not sorted at %d", i)
		}
	}
}

func TestStringRendersBars(t *testing.T) {
	s := FromStages(sample()).String()
	for _, want := range []string{"forward DT-CWT", "50.0%", "#"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestZeroProfile(t *testing.T) {
	p := FromStages(pipeline.StageTimes{})
	if p.Total != 0 {
		t.Errorf("total %v", p.Total)
	}
	for _, e := range p.Entries {
		if e.Share != 0 {
			t.Errorf("share %g for empty profile", e.Share)
		}
	}
}

// Package profiler renders the stage-level execution profile of the
// fusion process — the Fig. 2 analysis that identifies the forward and
// inverse DT-CWT as the compute-intensive stages worth accelerating.
package profiler

import (
	"fmt"
	"sort"
	"strings"

	"zynqfusion/internal/obs"
	"zynqfusion/internal/pipeline"
	"zynqfusion/internal/sim"
)

// Entry is one profiled stage.
type Entry struct {
	Stage string
	Time  sim.Time
	Share float64 // fraction of total, [0,1]
}

// Profile is a per-stage breakdown, sorted by descending share.
type Profile struct {
	Entries []Entry
	Total   sim.Time
}

// FromStages builds a profile from accumulated stage times.
func FromStages(st pipeline.StageTimes) Profile {
	entries := []Entry{
		{Stage: "forward DT-CWT", Time: st.Forward},
		{Stage: "inverse DT-CWT", Time: st.Inverse},
		{Stage: "fusion rule", Time: st.Fuse},
		{Stage: "capture+convert", Time: st.Capture},
		{Stage: "display", Time: st.Display},
	}
	var total sim.Time
	for _, e := range entries {
		total += e.Time
	}
	if total > 0 {
		for i := range entries {
			entries[i].Share = float64(entries[i].Time) / float64(total)
		}
	}
	sort.SliceStable(entries, func(i, j int) bool { return entries[i].Share > entries[j].Share })
	return Profile{Entries: entries, Total: total}
}

// FromHistogram renders an obs latency summary as a percentile profile:
// one entry each for p50, p95, p99 and max, labeled "<label> p50" etc.,
// with Share relative to the max so the bar chart reads as a tail-latency
// staircase. unit converts one histogram unit into modeled time (the
// farm's latency histograms record milliseconds, so pass
// sim.Millisecond); Total is the distribution's summed observation time.
// An empty summary yields an empty profile.
func FromHistogram(label string, s obs.Summary, unit sim.Time) Profile {
	if s.Count == 0 {
		return Profile{}
	}
	toTime := func(v float64) sim.Time { return sim.Time(v * float64(unit)) }
	entries := []Entry{
		{Stage: label + " p50", Time: toTime(s.P50)},
		{Stage: label + " p95", Time: toTime(s.P95)},
		{Stage: label + " p99", Time: toTime(s.P99)},
		{Stage: label + " max", Time: toTime(s.Max)},
	}
	if max := entries[len(entries)-1].Time; max > 0 {
		for i := range entries {
			entries[i].Share = float64(entries[i].Time) / float64(max)
		}
	}
	sort.SliceStable(entries, func(i, j int) bool { return entries[i].Share > entries[j].Share })
	return Profile{Entries: entries, Total: toTime(s.Sum)}
}

// Dominant returns the stage with the largest share.
func (p Profile) Dominant() Entry {
	if len(p.Entries) == 0 {
		return Entry{}
	}
	return p.Entries[0]
}

// Share returns the fraction for a named stage (0 when absent).
func (p Profile) Share(stage string) float64 {
	for _, e := range p.Entries {
		if e.Stage == stage {
			return e.Share
		}
	}
	return 0
}

// String renders an ASCII bar chart in the shape of Fig. 2.
func (p Profile) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Profile results for image fusion (total %s)\n", p.Total)
	for _, e := range p.Entries {
		bar := strings.Repeat("#", int(e.Share*50+0.5))
		fmt.Fprintf(&b, "  %-16s %6.1f%% %s\n", e.Stage, e.Share*100, bar)
	}
	return b.String()
}

package engine

import (
	"zynqfusion/internal/dvfs"
	"zynqfusion/internal/signal"
	"zynqfusion/internal/sim"
)

// ARM is the scalar software engine: the baseline configuration where the
// Cortex-A9 executes the filter kernels itself.
type ARM struct {
	ps     sim.Clock
	op     dvfs.OperatingPoint
	watts  sim.Watts
	cycles float64
}

// NewARM returns a scalar engine at the nominal (533 MHz) operating point.
func NewARM() *ARM {
	return NewARMAt(dvfs.Nominal())
}

// NewARMAt returns a scalar engine at the given PS operating point: cycle
// counts convert to time at the point's clock and energy is charged at
// the point's scaled board power.
func NewARMAt(op dvfs.OperatingPoint) *ARM {
	return &ARM{ps: op.Clock(), op: op, watts: dvfs.ModePower("arm", op)}
}

// Name implements Engine.
func (a *ARM) Name() string { return "arm" }

// Analyze implements signal.Kernel with scalar loops.
func (a *ARM) Analyze(al, ah *signal.Taps, px []float32, lo, hi []float32) {
	signal.AnalyzeRef(al, ah, px, lo, hi)
	a.cycles += ARMRowOverheadCycles + ARMFwdPairCycles*float64(len(lo))
}

// Synthesize implements signal.Kernel with scalar loops.
func (a *ARM) Synthesize(sl, sh *signal.Taps, plo, phi []float32, out []float32) {
	signal.SynthesizeRef(sl, sh, plo, phi, out)
	a.cycles += ARMRowOverheadCycles + ARMInvPairCycles*float64(len(out)/2)
}

// ChargeCPU implements Engine.
func (a *ARM) ChargeCPU(samples int) {
	a.cycles += StructureCyclesPerSample * float64(samples)
}

// ChargeCPUCycles implements Engine.
func (a *ARM) ChargeCPUCycles(cycles float64) { a.cycles += cycles }

// Elapsed implements Engine.
func (a *ARM) Elapsed() sim.Time { return a.ps.CyclesF(a.cycles) }

// Reset implements Engine.
func (a *ARM) Reset() sim.Time {
	t := a.Elapsed()
	a.cycles = 0
	return t
}

// Power implements Engine.
func (a *ARM) Power() sim.Watts { return a.watts }

// Point reports the PS operating point the engine accounts at.
func (a *ARM) Point() dvfs.OperatingPoint { return a.op }

package engine

import (
	"zynqfusion/internal/dvfs"
	"zynqfusion/internal/kernels"
	"zynqfusion/internal/signal"
	"zynqfusion/internal/sim"
)

// ARM is the scalar software engine: the baseline configuration where the
// Cortex-A9 executes the filter kernels itself.
type ARM struct {
	ps     sim.Clock
	op     dvfs.OperatingPoint
	watts  sim.Watts
	cycles float64
}

// NewARM returns a scalar engine at the nominal (533 MHz) operating point.
func NewARM() *ARM {
	return NewARMAt(dvfs.Nominal())
}

// NewARMAt returns a scalar engine at the given PS operating point: cycle
// counts convert to time at the point's clock and energy is charged at
// the point's scaled board power.
func NewARMAt(op dvfs.OperatingPoint) *ARM {
	return &ARM{ps: op.Clock(), op: op, watts: dvfs.ModePower("arm", op)}
}

// Name implements Engine.
func (a *ARM) Name() string { return "arm" }

// Analyze implements signal.Kernel with scalar loops.
func (a *ARM) Analyze(al, ah *signal.Taps, px []float32, lo, hi []float32) {
	a.AnalyzeTile(al, ah, px, lo, hi)
	a.ChargeAnalyzeRow(len(lo))
}

// Synthesize implements signal.Kernel with scalar loops.
func (a *ARM) Synthesize(sl, sh *signal.Taps, plo, phi []float32, out []float32) {
	a.SynthesizeTile(sl, sh, plo, phi, out)
	a.ChargeSynthesizeRow(len(out) / 2)
}

// AnalyzeTile implements kernels.TileKernel: pure compute via the
// BCE-clean mirror of the scalar reference, safe for concurrent rows.
func (a *ARM) AnalyzeTile(al, ah *signal.Taps, px, lo, hi []float32) {
	kernels.AnalyzeRef(al, ah, px, lo, hi)
}

// SynthesizeTile implements kernels.TileKernel.
func (a *ARM) SynthesizeTile(sl, sh *signal.Taps, plo, phi, out []float32) {
	kernels.SynthesizeRef(sl, sh, plo, phi, out)
}

// ChargeAnalyzeRow implements kernels.TileKernel: the modeled cost of
// one analysis row of m output pairs.
func (a *ARM) ChargeAnalyzeRow(m int) {
	a.cycles += ARMRowOverheadCycles + ARMFwdPairCycles*float64(m)
}

// ChargeSynthesizeRow implements kernels.TileKernel.
func (a *ARM) ChargeSynthesizeRow(m int) {
	a.cycles += ARMRowOverheadCycles + ARMInvPairCycles*float64(m)
}

// ChargeCPU implements Engine.
func (a *ARM) ChargeCPU(samples int) {
	a.cycles += StructureCyclesPerSample * float64(samples)
}

// ChargeCPUCycles implements Engine.
func (a *ARM) ChargeCPUCycles(cycles float64) { a.cycles += cycles }

// Elapsed implements Engine.
func (a *ARM) Elapsed() sim.Time { return a.ps.CyclesF(a.cycles) }

// Reset implements Engine.
func (a *ARM) Reset() sim.Time {
	t := a.Elapsed()
	a.cycles = 0
	return t
}

// Power implements Engine.
func (a *ARM) Power() sim.Watts { return a.watts }

// Point reports the PS operating point the engine accounts at.
func (a *ARM) Point() dvfs.OperatingPoint { return a.op }

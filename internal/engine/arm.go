package engine

import (
	"zynqfusion/internal/power"
	"zynqfusion/internal/signal"
	"zynqfusion/internal/sim"
	"zynqfusion/internal/zynq"
)

// ARM is the scalar software engine: the baseline configuration where the
// Cortex-A9 executes the filter kernels itself.
type ARM struct {
	ps     sim.Clock
	cycles float64
}

// NewARM returns a scalar engine on the PS clock.
func NewARM() *ARM {
	return &ARM{ps: zynq.PS()}
}

// Name implements Engine.
func (a *ARM) Name() string { return "arm" }

// Analyze implements signal.Kernel with scalar loops.
func (a *ARM) Analyze(al, ah *signal.Taps, px []float32, lo, hi []float32) {
	signal.AnalyzeRef(al, ah, px, lo, hi)
	a.cycles += ARMRowOverheadCycles + ARMFwdPairCycles*float64(len(lo))
}

// Synthesize implements signal.Kernel with scalar loops.
func (a *ARM) Synthesize(sl, sh *signal.Taps, plo, phi []float32, out []float32) {
	signal.SynthesizeRef(sl, sh, plo, phi, out)
	a.cycles += ARMRowOverheadCycles + ARMInvPairCycles*float64(len(out)/2)
}

// ChargeCPU implements Engine.
func (a *ARM) ChargeCPU(samples int) {
	a.cycles += StructureCyclesPerSample * float64(samples)
}

// ChargeCPUCycles implements Engine.
func (a *ARM) ChargeCPUCycles(cycles float64) { a.cycles += cycles }

// Elapsed implements Engine.
func (a *ARM) Elapsed() sim.Time { return a.ps.CyclesF(a.cycles) }

// Reset implements Engine.
func (a *ARM) Reset() sim.Time {
	t := a.Elapsed()
	a.cycles = 0
	return t
}

// Power implements Engine.
func (a *ARM) Power() sim.Watts { return power.ARMActive }

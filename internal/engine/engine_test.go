package engine

import (
	"math"
	"math/rand"
	"testing"

	"zynqfusion/internal/frame"
	"zynqfusion/internal/signal"
	"zynqfusion/internal/wavelet"
)

func randSlice(rng *rand.Rand, n int) []float32 {
	s := make([]float32, n)
	for i := range s {
		s[i] = float32(rng.Float64()*200 - 100)
	}
	return s
}

func allEngines() []Engine {
	return []Engine{NewARM(), NewNEON(false), NewNEON(true), NewFPGA()}
}

func TestEnginesAgreeOnKernels(t *testing.T) {
	// All engines must produce numerically consistent kernel results —
	// the functional core of the reproduction.
	rng := rand.New(rand.NewSource(61))
	b := wavelet.CDF97
	for _, m := range []int{4, 11, 44} {
		px := randSlice(rng, 2*m+signal.TapCount)
		wantLo := make([]float32, m)
		wantHi := make([]float32, m)
		signal.AnalyzeRef(&b.AL, &b.AH, px, wantLo, wantHi)
		for _, e := range allEngines() {
			lo := make([]float32, m)
			hi := make([]float32, m)
			e.Analyze(&b.AL, &b.AH, px, lo, hi)
			for i := range lo {
				if d := math.Abs(float64(lo[i] - wantLo[i])); d > 2e-3 {
					t.Fatalf("%s m=%d lo[%d]: %g vs %g", e.Name(), m, i, lo[i], wantLo[i])
				}
				if d := math.Abs(float64(hi[i] - wantHi[i])); d > 2e-3 {
					t.Fatalf("%s m=%d hi[%d]: %g vs %g", e.Name(), m, i, hi[i], wantHi[i])
				}
			}
		}
	}
}

func TestEnginesAgreeOnSynthesis(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	b := wavelet.CDF97
	m := 22
	plo := randSlice(rng, m+signal.SynthesisPad)
	phi := randSlice(rng, m+signal.SynthesisPad)
	want := make([]float32, 2*m)
	signal.SynthesizeRef(&b.SL, &b.SH, plo, phi, want)
	for _, e := range allEngines() {
		out := make([]float32, 2*m)
		e.Synthesize(&b.SL, &b.SH, plo, phi, out)
		for i := range out {
			if d := math.Abs(float64(out[i] - want[i])); d > 2e-3 {
				t.Fatalf("%s out[%d]: %g vs %g", e.Name(), i, out[i], want[i])
			}
		}
	}
}

func TestElapsedMonotonicAndResettable(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	b := wavelet.CDF97
	for _, e := range allEngines() {
		px := randSlice(rng, 2*16+signal.TapCount)
		e.Analyze(&b.AL, &b.AH, px, make([]float32, 16), make([]float32, 16))
		t1 := e.Elapsed()
		if t1 <= 0 {
			t.Fatalf("%s: no time charged", e.Name())
		}
		e.Analyze(&b.AL, &b.AH, px, make([]float32, 16), make([]float32, 16))
		t2 := e.Elapsed()
		if t2 <= t1 {
			t.Fatalf("%s: elapsed not monotonic (%v then %v)", e.Name(), t1, t2)
		}
		if got := e.Reset(); got < t2 {
			t.Fatalf("%s: reset returned %v < %v", e.Name(), got, t2)
		}
		if e.Elapsed() != 0 {
			t.Fatalf("%s: elapsed nonzero after reset", e.Name())
		}
	}
}

func TestLargerRowsCostMore(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	b := wavelet.CDF97
	for _, e := range allEngines() {
		cost := func(m int) int64 {
			e.Reset()
			px := randSlice(rng, 2*m+signal.TapCount)
			e.Analyze(&b.AL, &b.AH, px, make([]float32, m), make([]float32, m))
			return int64(e.Reset())
		}
		c8, c64 := cost(8), cost(64)
		if c64 <= c8 {
			t.Errorf("%s: 64-pair row (%d) not costlier than 8-pair row (%d)", e.Name(), c64, c8)
		}
	}
}

func TestNEONFasterThanARMOnLargeRows(t *testing.T) {
	b := wavelet.CDF97
	rng := rand.New(rand.NewSource(65))
	arm, neonEng := NewARM(), NewNEON(false)
	m := 44
	px := randSlice(rng, 2*m+signal.TapCount)
	arm.Analyze(&b.AL, &b.AH, px, make([]float32, m), make([]float32, m))
	neonEng.Analyze(&b.AL, &b.AH, px, make([]float32, m), make([]float32, m))
	if neonEng.Elapsed() >= arm.Elapsed() {
		t.Errorf("NEON (%v) should beat ARM (%v) on a 44-pair row", neonEng.Elapsed(), arm.Elapsed())
	}
}

func TestFPGAReloadsCoefficientsOnBankSwitch(t *testing.T) {
	f := NewFPGA()
	rng := rand.New(rand.NewSource(66))
	m := 16
	px := randSlice(rng, 2*m+signal.TapCount)
	lo := make([]float32, m)
	hi := make([]float32, m)
	f.Analyze(&wavelet.CDF97.AL, &wavelet.CDF97.AH, px, lo, hi)
	writes1 := f.WaveEngine().Lite.Writes
	f.Analyze(&wavelet.CDF97.AL, &wavelet.CDF97.AH, px, lo, hi)
	// The repeat row issues only its 4 command-register writes — no
	// coefficient reload.
	if d := f.WaveEngine().Lite.Writes - writes1; d != 4 {
		t.Errorf("same bank: %d extra AXI-Lite writes, want 4 (command only)", d)
	}
	writes2 := f.WaveEngine().Lite.Writes
	f.Analyze(&wavelet.Daub4.AL, &wavelet.Daub4.AH, px, lo, hi)
	// The bank switch adds the 49-write coefficient load on top.
	if d := f.WaveEngine().Lite.Writes - writes2; d != 4+49 {
		t.Errorf("bank switch: %d extra AXI-Lite writes, want 53 (reload + command)", d)
	}
}

func TestMeasureAppliesModePower(t *testing.T) {
	arm := NewARM()
	arm.ChargeCPUCycles(533e6) // exactly one second at 533 MHz
	r := Measure(arm)
	if r.Engine != "arm" {
		t.Errorf("engine name %q", r.Engine)
	}
	if math.Abs(r.Time.Seconds()-1) > 1e-6 {
		t.Errorf("time %v, want 1s", r.Time)
	}
	if math.Abs(r.Energy.Millijoules()-533.3) > 0.5 {
		t.Errorf("energy %v, want ~533.3 mJ", r.Energy)
	}
}

func TestPowerDelta(t *testing.T) {
	// Section VII: ARM+FPGA consumes 19.2 mW (3.6%) more than ARM-only;
	// ARM and ARM+NEON are indistinguishable.
	arm, neonEng, fpga := NewARM(), NewNEON(false), NewFPGA()
	if arm.Power() != neonEng.Power() {
		t.Errorf("ARM %v vs NEON %v power should match", arm.Power(), neonEng.Power())
	}
	deltaW := (fpga.Power() - arm.Power()).Milliwatts()
	if math.Abs(deltaW-19.2) > 0.01 {
		t.Errorf("FPGA power delta %.2f mW, want 19.2", deltaW)
	}
	rel := deltaW / arm.Power().Milliwatts() * 100
	if math.Abs(rel-3.6) > 0.1 {
		t.Errorf("FPGA power delta %.2f%%, want 3.6%%", rel)
	}
}

// TestEnginesRunFullDTCWT exercises each engine through the complete
// transform stack and checks perfect reconstruction end to end.
func TestEnginesRunFullDTCWT(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	img := frame.New(40, 40)
	for i := range img.Pix {
		img.Pix[i] = float32(rng.Intn(256))
	}
	for _, e := range allEngines() {
		tr := wavelet.NewDTCWT(wavelet.NewXfm(e), wavelet.DefaultTreeBanks())
		p, err := tr.Forward(img, 3)
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		rec, err := tr.Inverse(p)
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		errMax, _ := frame.MaxAbsDiff(img, rec)
		if errMax > 5e-2 {
			t.Errorf("%s: DT-CWT round trip error %g", e.Name(), errMax)
		}
		if e.Elapsed() <= 0 {
			t.Errorf("%s: transform charged no time", e.Name())
		}
	}
}

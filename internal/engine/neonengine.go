package engine

import (
	"zynqfusion/internal/dvfs"
	"zynqfusion/internal/neon"
	"zynqfusion/internal/signal"
	"zynqfusion/internal/sim"
)

// NEON is the SIMD engine: kernels execute on the emulated NEON unit
// (lane-exact float32x4 arithmetic) and time follows the calibrated
// per-pair rates plus the scalar-tail penalty.
type NEON struct {
	ps     sim.Clock
	op     dvfs.OperatingPoint
	watts  sim.Watts
	unit   *neon.Unit
	kern   neon.Kernel
	cycles float64
}

// NewNEON returns a NEON engine at the nominal operating point. manual
// selects hand-written intrinsics (Fig. 3 left) over the auto-vectorized
// structure (Fig. 3 right); the two perform alike, as the paper observes.
func NewNEON(manual bool) *NEON {
	return NewNEONAt(manual, dvfs.Nominal())
}

// NewNEONAt returns a NEON engine at the given PS operating point (the
// NEON unit shares the PS clock domain).
func NewNEONAt(manual bool, op dvfs.OperatingPoint) *NEON {
	u := &neon.Unit{}
	return &NEON{
		ps:    op.Clock(),
		op:    op,
		watts: dvfs.ModePower("neon", op),
		unit:  u,
		kern:  neon.Kernel{U: u, Manual: manual},
	}
}

// Name implements Engine.
func (n *NEON) Name() string { return "neon" }

// Unit exposes the instruction ledger for inspection.
func (n *NEON) Unit() *neon.Unit { return n.unit }

// Analyze implements signal.Kernel on the NEON unit.
func (n *NEON) Analyze(al, ah *signal.Taps, px []float32, lo, hi []float32) {
	before := n.unit.C.ScalarOps
	n.kern.Analyze(al, ah, px, lo, hi)
	tail := (n.unit.C.ScalarOps - before) / (2 * signal.TapCount) // pairs done in scalar
	n.cycles += NEONRowOverheadCycles +
		NEONFwdPairCycles*float64(len(lo)) +
		NEONTailPairCycles*float64(tail)
}

// Synthesize implements signal.Kernel on the NEON unit.
func (n *NEON) Synthesize(sl, sh *signal.Taps, plo, phi []float32, out []float32) {
	before := n.unit.C.ScalarOps
	n.kern.Synthesize(sl, sh, plo, phi, out)
	tail := (n.unit.C.ScalarOps - before) / (2 * signal.TapCount)
	n.cycles += NEONRowOverheadCycles +
		NEONInvPairCycles*float64(len(out)/2) +
		NEONTailPairCycles*float64(tail)
}

// ChargeCPU implements Engine.
func (n *NEON) ChargeCPU(samples int) {
	n.cycles += StructureCyclesPerSample * float64(samples)
}

// ChargeCPUCycles implements Engine.
func (n *NEON) ChargeCPUCycles(cycles float64) { n.cycles += cycles }

// Elapsed implements Engine.
func (n *NEON) Elapsed() sim.Time { return n.ps.CyclesF(n.cycles) }

// Reset implements Engine.
func (n *NEON) Reset() sim.Time {
	t := n.Elapsed()
	n.cycles = 0
	return t
}

// Power implements Engine. The paper measures ARM+NEON board power
// indistinguishable from ARM-only.
func (n *NEON) Power() sim.Watts { return n.watts }

// Point reports the PS operating point the engine accounts at.
func (n *NEON) Point() dvfs.OperatingPoint { return n.op }

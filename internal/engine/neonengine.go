package engine

import (
	"zynqfusion/internal/dvfs"
	"zynqfusion/internal/kernels"
	"zynqfusion/internal/neon"
	"zynqfusion/internal/signal"
	"zynqfusion/internal/sim"
)

// NEON is the SIMD engine: kernels execute with lane-exact float32x4
// arithmetic and time follows the calibrated per-pair rates plus the
// scalar-tail penalty. By default the fast kernels in internal/kernels
// do the arithmetic — bit-for-bit identical to the emulated NEON unit,
// with the instruction ledger applied in closed form — and the engine
// supports tiled concurrent execution via kernels.TileKernel. The
// emulated-unit path (NewNEONEmulatedAt) remains as the wall-clock
// benchmark baseline and for ledger-mechanism tests; it produces
// byte-identical pixels, cycles and counts, just slower.
type NEON struct {
	ps      sim.Clock
	op      dvfs.OperatingPoint
	watts   sim.Watts
	unit    *neon.Unit
	kern    neon.Kernel
	manual  bool
	emulate bool
	cycles  float64
}

// NewNEON returns a NEON engine at the nominal operating point. manual
// selects hand-written intrinsics (Fig. 3 left) over the auto-vectorized
// structure (Fig. 3 right); the two perform alike, as the paper observes.
func NewNEON(manual bool) *NEON {
	return NewNEONAt(manual, dvfs.Nominal())
}

// NewNEONAt returns a NEON engine at the given PS operating point (the
// NEON unit shares the PS clock domain).
func NewNEONAt(manual bool, op dvfs.OperatingPoint) *NEON {
	u := &neon.Unit{}
	return &NEON{
		ps:     op.Clock(),
		op:     op,
		watts:  dvfs.ModePower("neon", op),
		unit:   u,
		kern:   neon.Kernel{U: u, Manual: manual},
		manual: manual,
	}
}

// NewNEONEmulated returns a NEON engine that routes every kernel call
// through the emulated NEON unit at the nominal operating point.
func NewNEONEmulated(manual bool) *NEON {
	return NewNEONEmulatedAt(manual, dvfs.Nominal())
}

// NewNEONEmulatedAt returns a NEON engine pinned to the per-op emulated
// unit: the pre-kernel-engine execution path, kept as the scalar
// wall-clock baseline benchmarks compare against. Results are
// byte-identical to the default fast path; the emulated unit is
// stateful, so this engine refuses tiled execution (TilingEnabled).
func NewNEONEmulatedAt(manual bool, op dvfs.OperatingPoint) *NEON {
	n := NewNEONAt(manual, op)
	n.emulate = true
	return n
}

// Name implements Engine.
func (n *NEON) Name() string { return "neon" }

// Unit exposes the instruction ledger for inspection.
func (n *NEON) Unit() *neon.Unit { return n.unit }

// Analyze implements signal.Kernel on the NEON unit.
func (n *NEON) Analyze(al, ah *signal.Taps, px []float32, lo, hi []float32) {
	if n.emulate {
		before := n.unit.C.ScalarOps
		n.kern.Analyze(al, ah, px, lo, hi)
		tail := (n.unit.C.ScalarOps - before) / (2 * signal.TapCount) // pairs done in scalar
		n.cycles += NEONRowOverheadCycles +
			NEONFwdPairCycles*float64(len(lo)) +
			NEONTailPairCycles*float64(tail)
		return
	}
	n.AnalyzeTile(al, ah, px, lo, hi)
	n.ChargeAnalyzeRow(len(lo))
}

// Synthesize implements signal.Kernel on the NEON unit.
func (n *NEON) Synthesize(sl, sh *signal.Taps, plo, phi []float32, out []float32) {
	if n.emulate {
		before := n.unit.C.ScalarOps
		n.kern.Synthesize(sl, sh, plo, phi, out)
		tail := (n.unit.C.ScalarOps - before) / (2 * signal.TapCount)
		n.cycles += NEONRowOverheadCycles +
			NEONInvPairCycles*float64(len(out)/2) +
			NEONTailPairCycles*float64(tail)
		return
	}
	n.SynthesizeTile(sl, sh, plo, phi, out)
	n.ChargeSynthesizeRow(len(out) / 2)
}

// AnalyzeTile implements kernels.TileKernel: pure compute through the
// fast bit-identical mirror of the emulated kernels, safe for
// concurrent rows.
func (n *NEON) AnalyzeTile(al, ah *signal.Taps, px, lo, hi []float32) {
	if n.manual {
		kernels.NeonAnalyzeManual(al, ah, px, lo, hi)
		return
	}
	kernels.NeonAnalyzeAuto(al, ah, px, lo, hi)
}

// SynthesizeTile implements kernels.TileKernel.
func (n *NEON) SynthesizeTile(sl, sh *signal.Taps, plo, phi, out []float32) {
	kernels.NeonSynthesize(sl, sh, plo, phi, out)
}

// ChargeAnalyzeRow implements kernels.TileKernel: the closed-form
// instruction-ledger delta plus the same cycle expression the emulated
// path charges. The scalar tail is m%4 pairs in auto style (the
// emulation's ScalarOps delta / 24), zero in manual style.
func (n *NEON) ChargeAnalyzeRow(m int) {
	n.unit.C.Add(kernels.CountsAnalyze(n.manual, m))
	tail := 0
	if !n.manual {
		tail = m % 4
	}
	n.cycles += NEONRowOverheadCycles +
		NEONFwdPairCycles*float64(m) +
		NEONTailPairCycles*float64(tail)
}

// ChargeSynthesizeRow implements kernels.TileKernel (both vectorization
// styles share the synthesis code path, so the tail is always m%4).
func (n *NEON) ChargeSynthesizeRow(m int) {
	n.unit.C.Add(kernels.CountsSynthesize(m))
	n.cycles += NEONRowOverheadCycles +
		NEONInvPairCycles*float64(m) +
		NEONTailPairCycles*float64(m%4)
}

// TilingEnabled reports whether concurrent tile compute is allowed:
// false when pinned to the stateful emulated unit.
func (n *NEON) TilingEnabled() bool { return !n.emulate }

// ChargeCPU implements Engine.
func (n *NEON) ChargeCPU(samples int) {
	n.cycles += StructureCyclesPerSample * float64(samples)
}

// ChargeCPUCycles implements Engine.
func (n *NEON) ChargeCPUCycles(cycles float64) { n.cycles += cycles }

// Elapsed implements Engine.
func (n *NEON) Elapsed() sim.Time { return n.ps.CyclesF(n.cycles) }

// Reset implements Engine.
func (n *NEON) Reset() sim.Time {
	t := n.Elapsed()
	n.cycles = 0
	return t
}

// Power implements Engine. The paper measures ARM+NEON board power
// indistinguishable from ARM-only.
func (n *NEON) Power() sim.Watts { return n.watts }

// Point reports the PS operating point the engine accounts at.
func (n *NEON) Point() dvfs.OperatingPoint { return n.op }

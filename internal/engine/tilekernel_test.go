package engine

import (
	"math"
	"math/rand"
	"testing"

	"zynqfusion/internal/kernels"
	"zynqfusion/internal/signal"
)

// These tests pin the kernel-engine determinism contract at the engine
// layer: the fast default path, the emulated baseline path, and the
// TileKernel compute+charge replay must agree byte-for-byte on pixels,
// modeled cycles, and the NEON instruction ledger.

func tileTestData(seed int64, m int) (al, ah signal.Taps, px, plo, phi []float32) {
	rng := rand.New(rand.NewSource(seed))
	for i := range al {
		al[i] = float32(rng.NormFloat64())
		ah[i] = float32(rng.NormFloat64())
	}
	px = make([]float32, 2*m+signal.TapCount)
	for i := range px {
		px[i] = float32(rng.NormFloat64() * 50)
	}
	plo = make([]float32, m+signal.SynthesisPad)
	phi = make([]float32, m+signal.SynthesisPad)
	for i := range plo {
		plo[i] = float32(rng.NormFloat64() * 50)
		phi[i] = float32(rng.NormFloat64() * 50)
	}
	return
}

func TestNEONFastMatchesEmulated(t *testing.T) {
	for _, manual := range []bool{false, true} {
		for _, m := range []int{1, 3, 4, 7, 16, 31, 240} {
			al, ah, px, plo, phi := tileTestData(int64(m), m)

			fast := NewNEON(manual)
			emu := NewNEONEmulated(manual)
			if !emu.emulate || fast.emulate {
				t.Fatal("constructor emulate flags wrong")
			}
			if emu.TilingEnabled() || !fast.TilingEnabled() {
				t.Fatal("TilingEnabled gates inverted")
			}

			fLo, fHi := make([]float32, m), make([]float32, m)
			eLo, eHi := make([]float32, m), make([]float32, m)
			fast.Analyze(&al, &ah, px, fLo, fHi)
			emu.Analyze(&al, &ah, px, eLo, eHi)
			fOut, eOut := make([]float32, 2*m), make([]float32, 2*m)
			fast.Synthesize(&al, &ah, plo, phi, fOut)
			emu.Synthesize(&al, &ah, plo, phi, eOut)

			for i := range fLo {
				if math.Float32bits(fLo[i]) != math.Float32bits(eLo[i]) ||
					math.Float32bits(fHi[i]) != math.Float32bits(eHi[i]) {
					t.Fatalf("manual=%v m=%d: analyze pixel %d differs", manual, m, i)
				}
			}
			for i := range fOut {
				if math.Float32bits(fOut[i]) != math.Float32bits(eOut[i]) {
					t.Fatalf("manual=%v m=%d: synthesize pixel %d differs", manual, m, i)
				}
			}
			if fast.cycles != emu.cycles {
				t.Fatalf("manual=%v m=%d: cycles %v != emulated %v", manual, m, fast.cycles, emu.cycles)
			}
			if fast.Unit().C != emu.Unit().C {
				t.Fatalf("manual=%v m=%d: ledger %+v != emulated %+v", manual, m, fast.Unit().C, emu.Unit().C)
			}
		}
	}
}

// TestTileKernelReplayMatchesSequential splits rows into arbitrary tile
// schedules and checks that compute-tiles + in-order charge replay
// reproduces the sequential engine exactly.
func TestTileKernelReplayMatchesSequential(t *testing.T) {
	engines := map[string]func() signal.Kernel{
		"arm":         func() signal.Kernel { return NewARM() },
		"neon-auto":   func() signal.Kernel { return NewNEON(false) },
		"neon-manual": func() signal.Kernel { return NewNEON(true) },
	}
	const rows, m = 13, 17
	for name, mk := range engines {
		seqEng := mk()
		tileEng := mk()
		tk, ok := kernels.AsTile(tileEng)
		if !ok {
			t.Fatalf("%s: engine does not provide TileKernel", name)
		}

		var al, ah signal.Taps
		pxs := make([][]float32, rows)
		for r := range pxs {
			a2, h2, px, _, _ := tileTestData(int64(r+99), m)
			if r == 0 {
				al, ah = a2, h2
			}
			pxs[r] = px
		}
		seqLo := make([][]float32, rows)
		seqHi := make([][]float32, rows)
		tileLo := make([][]float32, rows)
		tileHi := make([][]float32, rows)
		for r := 0; r < rows; r++ {
			seqLo[r], seqHi[r] = make([]float32, m), make([]float32, m)
			tileLo[r], tileHi[r] = make([]float32, m), make([]float32, m)
		}

		for r := 0; r < rows; r++ {
			seqEng.Analyze(&al, &ah, pxs[r], seqLo[r], seqHi[r])
		}
		// Tiled: compute rows in a scrambled order, then replay charges
		// in canonical order.
		order := rand.New(rand.NewSource(5)).Perm(rows)
		for _, r := range order {
			tk.AnalyzeTile(&al, &ah, pxs[r], tileLo[r], tileHi[r])
		}
		for r := 0; r < rows; r++ {
			tk.ChargeAnalyzeRow(m)
		}

		for r := 0; r < rows; r++ {
			for i := 0; i < m; i++ {
				if math.Float32bits(seqLo[r][i]) != math.Float32bits(tileLo[r][i]) ||
					math.Float32bits(seqHi[r][i]) != math.Float32bits(tileHi[r][i]) {
					t.Fatalf("%s: tiled pixels differ at row %d idx %d", name, r, i)
				}
			}
		}

		seqC := cyclesOf(t, seqEng)
		tileC := cyclesOf(t, tileEng)
		if seqC != tileC {
			t.Fatalf("%s: tiled cycles %v != sequential %v", name, tileC, seqC)
		}
		if sn, ok := seqEng.(*NEON); ok {
			tn := tileEng.(*NEON)
			if sn.Unit().C != tn.Unit().C {
				t.Fatalf("%s: tiled ledger differs from sequential", name)
			}
		}
	}
}

func cyclesOf(t *testing.T, k signal.Kernel) float64 {
	t.Helper()
	switch e := k.(type) {
	case *ARM:
		return e.cycles
	case *NEON:
		return e.cycles
	}
	t.Fatal("unknown engine type")
	return 0
}

// Package engine provides the three execution engines the paper compares
// for the forward and inverse DT-CWT — the ARM core, the NEON SIMD engine
// and the FPGA wave engine — behind one kernel interface, together with
// the calibrated cost model that reproduces the paper's measured times and
// energies.
package engine

// Calibrated cost-model constants.
//
// The paper reports measured wall times on a ZC702 board (Fig. 9) rather
// than instruction counts, so the host-side rates below are *effective*
// cycles — inclusive of cache and memory-system stalls on the in-order
// Cortex-A9 — calibrated so the model lands on the paper's anchors:
//
//	88x72, 10 frame pairs, 3 levels:
//	  forward  ARM 0.90s; NEON -10%; FPGA -55.6%
//	  inverse  ARM 0.60s; NEON -16%; FPGA -60.6%
//	  total    ARM 1.75s; NEON  -8%; FPGA -48.1%
//	crossovers: forward between 35x35 and 40x40; inverse at 40x40;
//	energy between 40x40 and 64x48; at 32x24 FPGA forward is 36.4%
//	slower than NEON.
//
// The shape of the curves (who wins where) is what the reproduction must
// preserve; see EXPERIMENTS.md for the measured-vs-paper table.
const (
	// ARMFwdPairCycles is the effective PS-cycle cost for the scalar
	// engine to produce one hp/lp analysis pair (24 float MACs plus the
	// strided window loads that miss in cache).
	ARMFwdPairCycles = 690.0
	// ARMInvPairCycles is the scalar cost per synthesis output pair; the
	// scattered interleaved writes make it costlier than analysis.
	ARMInvPairCycles = 920.0
	// ARMRowOverheadCycles is the loop set-up cost per 1-D kernel call.
	ARMRowOverheadCycles = 420.0

	// NEONFwdPairCycles is the NEON cost per analysis pair. The strided
	// (vld2q) gathers and the per-output horizontal adds keep the gain
	// over scalar modest, matching the paper's 10%.
	NEONFwdPairCycles = 622.0
	// NEONInvPairCycles is the NEON cost per synthesis pair: unit-stride
	// loads, no reductions, interleaving stores — a better fit for the
	// engine, matching the paper's larger 16% inverse gain.
	NEONInvPairCycles = 768.0
	// NEONRowOverheadCycles covers the per-row coefficient broadcasts and
	// loop set-up.
	NEONRowOverheadCycles = 220.0
	// NEONTailPairCycles is the extra cost per output pair computed in the
	// scalar remainder loop (trip counts not multiples of four) — the
	// degradation the paper works around by masking loop lengths.
	NEONTailPairCycles = 310.0

	// StructureCyclesPerSample prices the unaccelerated transform
	// structure work (padding, column gathers, subband reorder, q2c) that
	// runs on the ARM core in every configuration.
	StructureCyclesPerSample = 6.0

	// UserCopyCyclesPerWord is the user-level memcpy rate into/out of the
	// mmap'd kernel buffer.
	UserCopyCyclesPerWord = 1.5
	// SyscallCycles is the driver round trip per accelerator invocation:
	// ioctl entry, command set-up and the completion-check loop of Fig. 5.
	SyscallCycles = 8950
	// InverseExtraSyscallCycles is the additional per-row driver cost of
	// the inverse path (separate read/write offset ioctls and the
	// coefficient-pair marshalling bookkeeping).
	InverseExtraSyscallCycles = 2700
	// StatusPolls is the average number of AXI-Lite status reads before
	// the done flag is seen.
	StatusPolls = 2

	// PLFwdPairNominalCycles and PLInvPairNominalCycles are the wave
	// engine's effective PL time per output pair — transfer plus compute in
	// its fixed 100 MHz clock domain — expressed as PS-cycle equivalents at
	// the nominal 533 MHz clock. They are calibrated so the frequency-aware
	// NEON/FPGA crossover (sched.ThresholdForClock) lands exactly on the
	// default break-even widths at the nominal point; the cooperative split
	// policies (internal/split) estimate the FPGA lane rate from the same
	// numbers.
	PLFwdPairNominalCycles = 40.0
	PLInvPairNominalCycles = 53.625

	// SplitSyncCycles is the per-pass merge/sync overhead of cooperative
	// CPU+FPGA split execution: when a level's rows are partitioned across
	// the NEON and FPGA lanes, the core that finishes first waits on the
	// other lane's completion flag and the interleaved outputs are stitched
	// back into one subband layout. Charged once per pass that actually
	// used both lanes; exclusive (degenerate) routing never pays it.
	SplitSyncCycles = 2400.0

	// PipelineHandoffCycles is the per-stage-boundary cost of inter-frame
	// pipelined execution: publishing one stage's double-buffered frame
	// store to its successor (buffer-pointer swap, cache maintenance on the
	// shared frame pointers, and the inter-stage doorbell write), the same
	// handoff the paper's BT656→DMA→wave-engine chain pays between its
	// hardware frame stores. Charged once per stage boundary per frame when
	// stages of consecutive frames overlap (depth >= 2); the depth-1
	// degenerate path is the classic sequential schedule and never pays it.
	PipelineHandoffCycles = 1500.0

	// Downstream pipeline stage rates (PS cycles per frame pixel),
	// calibrated against the Fig. 2 profile: the fusion rule, capture/
	// greyscale conversion, and the OpenCV display path.
	FusionRuleCyclesPerPixel = 950.0
	CaptureCyclesPerPixel    = 500.0
	DisplayCyclesPerPixel    = 150.0
)

package engine

import (
	"zynqfusion/internal/signal"
	"zynqfusion/internal/sim"
)

// Engine is one execution resource for the wavelet kernels. An Engine is
// a signal.Kernel (the wavelet layer drives it row by row) plus the
// accounting surface the scheduler and benchmarks need. Engines are not
// safe for concurrent use.
type Engine interface {
	signal.Kernel
	// Name returns "arm", "neon" or "fpga".
	Name() string
	// ChargeCPU accounts unaccelerated host-side structure work touching
	// the given number of samples.
	ChargeCPU(samples int)
	// ChargeCPUCycles accounts explicit host-side work in PS cycles (used
	// by pipeline stages such as the fusion rule).
	ChargeCPUCycles(cycles float64)
	// Elapsed reports the simulated time consumed since the last Reset.
	Elapsed() sim.Time
	// Reset clears the elapsed time, returning the prior value.
	Reset() sim.Time
	// Power is the board power while this engine is computing.
	Power() sim.Watts
}

// Report summarizes one accounted activity span.
type Report struct {
	Engine string
	Time   sim.Time
	Energy sim.Joules
}

// Measure drains the engine's elapsed time into a report, applying the
// engine's power level.
func Measure(e Engine) Report {
	t := e.Reset()
	return Report{
		Engine: e.Name(),
		Time:   t,
		Energy: sim.EnergyOver(e.Power(), t),
	}
}

package engine

import (
	"math/rand"
	"testing"

	"zynqfusion/internal/signal"
	"zynqfusion/internal/wavelet"
)

func fpgaRowCost(t *testing.T, v FPGAVariant, rows, m int) int64 {
	t.Helper()
	f := NewFPGAVariant(v)
	rng := rand.New(rand.NewSource(71))
	b := wavelet.CDF97
	for k := 0; k < rows; k++ {
		px := randSlice(rng, 2*m+signal.TapCount)
		f.Analyze(&b.AL, &b.AH, px, make([]float32, m), make([]float32, m))
	}
	return int64(f.Elapsed())
}

func TestGPVariantSlowerThanDMA(t *testing.T) {
	gp := fpgaRowCost(t, FPGAVariant{GPPort: true, DoubleBuffered: true}, 16, 44)
	dma := fpgaRowCost(t, FPGAVariant{DoubleBuffered: true}, 16, 44)
	if gp <= dma {
		t.Errorf("GP-port variant (%d) should be slower than DMA (%d)", gp, dma)
	}
}

func TestCmdQueueVariantFaster(t *testing.T) {
	q1 := fpgaRowCost(t, FPGAVariant{DoubleBuffered: true, CmdQueueDepth: 1}, 16, 24)
	q4 := fpgaRowCost(t, FPGAVariant{DoubleBuffered: true, CmdQueueDepth: 4}, 16, 24)
	if q4 >= q1 {
		t.Errorf("queue depth 4 (%d) should beat per-row commands (%d)", q4, q1)
	}
}

func TestVariantsProduceIdenticalResults(t *testing.T) {
	// Design variants change timing only — never the data.
	rng := rand.New(rand.NewSource(72))
	b := wavelet.CDF97
	m := 20
	px := randSlice(rng, 2*m+signal.TapCount)
	var ref []float32
	for _, v := range []FPGAVariant{
		{DoubleBuffered: true},
		{DoubleBuffered: false},
		{GPPort: true, DoubleBuffered: true},
		{DoubleBuffered: true, CmdQueueDepth: 8},
	} {
		f := NewFPGAVariant(v)
		lo := make([]float32, m)
		hi := make([]float32, m)
		f.Analyze(&b.AL, &b.AH, px, lo, hi)
		if ref == nil {
			ref = append(lo[:len(lo):len(lo)], hi...)
			continue
		}
		got := append(lo[:len(lo):len(lo)], hi...)
		for i := range ref {
			if ref[i] != got[i] {
				t.Fatalf("variant %+v changed results at %d", v, i)
			}
		}
	}
}

func TestNEONManualAndAutoCostSimilar(t *testing.T) {
	// The paper: "both the manual and auto vectorization produced similar
	// performance enhancement". The two variants must land within 10% of
	// each other on a full row workload.
	rng := rand.New(rand.NewSource(73))
	b := wavelet.CDF97
	m := 44
	px := randSlice(rng, 2*m+signal.TapCount)
	cost := func(manual bool) int64 {
		e := NewNEON(manual)
		for k := 0; k < 50; k++ {
			e.Analyze(&b.AL, &b.AH, px, make([]float32, m), make([]float32, m))
		}
		return int64(e.Elapsed())
	}
	auto, manual := cost(false), cost(true)
	ratio := float64(auto) / float64(manual)
	if ratio < 0.90 || ratio > 1.10 {
		t.Errorf("auto/manual cost ratio %.3f outside [0.9, 1.1]", ratio)
	}
}

func TestNEONTailPenaltyVisible(t *testing.T) {
	// A 17-pair row (remainder 1) must cost more than 17/16 of a 16-pair
	// row would suggest, because the tail runs scalar.
	rng := rand.New(rand.NewSource(74))
	b := wavelet.CDF97
	cost := func(m int) float64 {
		e := NewNEON(false)
		px := randSlice(rng, 2*m+signal.TapCount)
		e.Analyze(&b.AL, &b.AH, px, make([]float32, m), make([]float32, m))
		return float64(e.Elapsed())
	}
	c16 := cost(16)
	c17 := cost(17)
	perPair16 := (c16 - 0) / 16
	marginal := c17 - c16
	if marginal <= perPair16 {
		t.Errorf("scalar-tail pair (%.0f) should cost more than a vector pair (%.0f)",
			marginal, perPair16)
	}
}

package engine

import (
	"fmt"

	"zynqfusion/internal/axi"
	"zynqfusion/internal/driver"
	"zynqfusion/internal/dvfs"
	"zynqfusion/internal/hls"
	"zynqfusion/internal/signal"
	"zynqfusion/internal/sim"
	"zynqfusion/internal/zynq"
)

// FPGA is the hardware engine: kernel rows run on the modeled HLS wave
// engine behind the kernel driver, with the Fig. 5 double-buffered
// schedule. Filter coefficients are reloaded over AXI4-Lite whenever the
// wavelet layer switches banks (tree or level changes), and that reload
// time is charged.
type FPGA struct {
	ps    sim.Clock
	op    dvfs.OperatingPoint
	watts sim.Watts
	dev   *driver.Device
	eng   *hls.WaveEngine

	loaded    bool
	curAL     signal.Taps
	curAH     signal.Taps
	curSL     signal.Taps
	curSH     signal.Taps
	haveSynth bool
}

// NewFPGA builds the full accelerator stack: ACP burst path, wave engine,
// and driver with the calibrated host-side costs.
func NewFPGA() *FPGA {
	return NewFPGAVariant(FPGAVariant{DoubleBuffered: true})
}

// FPGAVariant selects design alternatives for ablation studies.
type FPGAVariant struct {
	// GPPort replaces the DMA engine with CPU word transfers through the
	// general-purpose port (~25 cycles per 32-bit word, the baseline the
	// paper rejects in section V).
	GPPort bool
	// DoubleBuffered selects the Fig. 5 two-area schedule; false is the
	// sequential single-buffer baseline.
	DoubleBuffered bool
	// CmdQueueDepth > 1 enables the future-work command queue that
	// amortizes the driver round trip over that many rows.
	CmdQueueDepth int
}

// NewFPGAVariant builds an accelerator stack with the given design
// alternatives at the nominal operating point.
func NewFPGAVariant(v FPGAVariant) *FPGA {
	return NewFPGAVariantAt(v, dvfs.Nominal())
}

// NewFPGAAt builds the default accelerator stack at the given PS
// operating point. Only the host side moves with the point: the wave
// engine keeps its own 100 MHz PL clock, so as the PS slows the fixed
// PL compute time amortizes a relatively larger share of each row.
func NewFPGAAt(op dvfs.OperatingPoint) *FPGA {
	return NewFPGAVariantAt(FPGAVariant{DoubleBuffered: true}, op)
}

// NewFPGAVariantAt builds an accelerator stack with the given design
// alternatives at the given PS operating point.
func NewFPGAVariantAt(v FPGAVariant, op dvfs.OperatingPoint) *FPGA {
	ps, pl := op.Clock(), zynq.PL()
	eng := hls.New(ps, pl, axi.NewACP(pl))
	copyCost := float64(UserCopyCyclesPerWord)
	if v.GPPort {
		copyCost = axi.GPWordCycles
	}
	dev, err := driver.Open(eng, driver.Config{
		PS:                    ps,
		UserCopyCyclesPerWord: copyCost,
		SyscallCycles:         SyscallCycles,
		StatusPolls:           StatusPolls,
		DoubleBuffered:        v.DoubleBuffered,
		CmdQueueDepth:         v.CmdQueueDepth,
	})
	if err != nil {
		panic("engine: driver open failed: " + err.Error())
	}
	return &FPGA{ps: ps, op: op, watts: dvfs.ModePower("fpga", op), dev: dev, eng: eng}
}

// Name implements Engine.
func (f *FPGA) Name() string { return "fpga" }

// Device exposes the driver handle for inspection (tests, statistics).
func (f *FPGA) Device() *driver.Device { return f.dev }

// WaveEngine exposes the hardware model for inspection.
func (f *FPGA) WaveEngine() *hls.WaveEngine { return f.eng }

// ensureCoeffs reloads the engine register file if the requested filters
// are not resident, charging the AXI4-Lite transfer time.
func (f *FPGA) ensureCoeffs(al, ah, sl, sh *signal.Taps) {
	if f.loaded && f.curAL == *al && f.curAH == *ah &&
		(sl == nil || (f.haveSynth && f.curSL == *sl && f.curSH == *sh)) {
		return
	}
	if sl == nil {
		sl, sh = &f.curSL, &f.curSH
	}
	t := f.eng.LoadCoeffs(al, ah, sl, sh)
	f.dev.ChargeHost(t)
	f.curAL, f.curAH, f.curSL, f.curSH = *al, *ah, *sl, *sh
	f.loaded = true
	f.haveSynth = true
}

// Analyze implements signal.Kernel via the accelerator.
func (f *FPGA) Analyze(al, ah *signal.Taps, px []float32, lo, hi []float32) {
	f.ensureCoeffs(al, ah, nil, nil)
	if err := f.dev.ForwardRow(px, lo, hi); err != nil {
		panic(fmt.Sprintf("engine: FPGA forward row: %v", err))
	}
}

// Synthesize implements signal.Kernel via the accelerator.
func (f *FPGA) Synthesize(sl, sh *signal.Taps, plo, phi []float32, out []float32) {
	// Synthesis banks are keyed alongside the analysis pair; reload if the
	// requested synthesis filters are not resident.
	if !(f.loaded && f.haveSynth && f.curSL == *sl && f.curSH == *sh) {
		t := f.eng.LoadCoeffs(&f.curAL, &f.curAH, sl, sh)
		f.dev.ChargeHost(t)
		f.curSL, f.curSH = *sl, *sh
		f.loaded = true
		f.haveSynth = true
	}
	f.dev.ChargeHost(f.ps.Cycles(InverseExtraSyscallCycles))
	if err := f.dev.InverseRow(plo, phi, out); err != nil {
		panic(fmt.Sprintf("engine: FPGA inverse row: %v", err))
	}
}

// ChargeCPU implements Engine: structure work serializes on the host
// cursor of the driver timeline.
func (f *FPGA) ChargeCPU(samples int) {
	f.dev.ChargeHost(f.ps.CyclesF(StructureCyclesPerSample * float64(samples)))
}

// ChargeCPUCycles implements Engine.
func (f *FPGA) ChargeCPUCycles(cycles float64) {
	f.dev.ChargeHost(f.ps.CyclesF(cycles))
}

// Elapsed implements Engine: the drained timeline makespan.
func (f *FPGA) Elapsed() sim.Time { return f.dev.Elapsed() }

// Peek reports the makespan without draining the double-buffered
// schedule, for per-row cost probes.
func (f *FPGA) Peek() sim.Time { return f.dev.Peek() }

// Reset implements Engine.
func (f *FPGA) Reset() sim.Time { return f.dev.Reset() }

// Power implements Engine: ARM+FPGA mode draws the extra wave-engine
// power (+19.2 mW at the nominal point, +3.6%) on top of the PS share.
func (f *FPGA) Power() sim.Watts { return f.watts }

// Point reports the PS operating point the engine accounts at.
func (f *FPGA) Point() dvfs.OperatingPoint { return f.op }

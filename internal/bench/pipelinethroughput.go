package bench

import (
	"fmt"
	"io"

	"zynqfusion/internal/dvfs"
	"zynqfusion/internal/pipeline"
	"zynqfusion/internal/sched"
	"zynqfusion/internal/sim"
	"zynqfusion/internal/split"
)

// PipelineSteadyFrames is how many steady-state frames each cell measures
// after the pipeline has filled (the fill frames are excluded from the
// period and energy means).
const PipelineSteadyFrames = 3

// PipelineCell is one (frame size, operating point, depth) measurement of
// the pipeline-throughput sweep, run on the cooperative split-oracle
// schedule so both engines carry every wavelet stage.
type PipelineCell struct {
	Size      string  `json:"size"`
	Point     string  `json:"point"`
	Depth     int     `json:"depth"`
	PeriodMS  float64 `json:"period_ms"` // steady-state mean frame period
	FPS       float64 `json:"fps"`
	MJFrame   float64 `json:"mj_per_frame"` // steady-state mean, quiescent rebate applied
	LatencyMS float64 `json:"latency_ms"`   // steady-state end-to-end frame latency
	FillMS    float64 `json:"fill_ms"`      // first frame's completion (pipeline fill)
	InFlight  float64 `json:"mean_in_flight"`
}

// PipelineVerdict summarizes one (size, point) column: the sequential
// depth-1 baseline against the best overlapped depth, with the throughput
// and energy ratios the frontier is judged by.
type PipelineVerdict struct {
	Size      string  `json:"size"`
	Point     string  `json:"point"`
	Depth1MS  float64 `json:"depth1_ms"`
	Depth1MJ  float64 `json:"depth1_mj"`
	BestDepth int     `json:"best_depth"`
	BestMS    float64 `json:"best_ms"`
	BestMJ    float64 `json:"best_mj"`
	// Speedup is depth-1 period over the best depth's period (steady
	// state): >= 1.3 on 1080p cooperative-split workloads at 533 MHz is
	// the acceptance line.
	Speedup float64 `json:"speedup"`
}

// PipelineThroughputResult is the experiment's structured record.
type PipelineThroughputResult struct {
	Schema     string            `json:"schema"`
	Experiment string            `json:"experiment"`
	Steady     int               `json:"steady_frames_per_cell"`
	Cells      []PipelineCell    `json:"cells"`
	Verdicts   []PipelineVerdict `json:"verdicts"`
}

// pipelineAxes returns the sweep columns and depth axis, trimmed in Short
// mode. The full grid includes the 1080p cooperative-split column the
// acceptance criterion is defined on; 1080p stays on the nominal point
// only because its real (host) compute cost dominates the sweep.
func pipelineAxes() (cols []struct {
	Size  Size
	Point string
}, depths []int) {
	type col = struct {
		Size  Size
		Point string
	}
	if Short {
		return []col{{Size{64, 48}, "533MHz"}}, []int{1, 2, 4}
	}
	return []col{
		{Size{88, 72}, "533MHz"},
		{Size{88, 72}, "667MHz"},
		{Size{640, 360}, "533MHz"},
		{Size{1920, 1080}, "533MHz"},
	}, []int{1, 2, 4}
}

// MeasurePipelineCell fuses depth+PipelineSteadyFrames frames of one
// (size, point, depth) cell through the pipelined executor on a fresh
// split-oracle engine and returns the steady-state means.
func MeasurePipelineCell(s Size, op dvfs.OperatingPoint, depth int) (PipelineCell, error) {
	eng := sched.NewAdaptiveAt(sched.SplitDriven{S: split.NewOracle(op)}, op)
	fu := pipeline.New(eng, pipeline.Config{IncludeIO: true})
	pp, err := pipeline.NewPipelined(fu, depth)
	if err != nil {
		return PipelineCell{}, fmt.Errorf("bench: pipeline cell %s %s d%d: %w", s, op.Name, depth, err)
	}
	vis, ir := SourcePair(s)
	frames := depth + PipelineSteadyFrames
	var period, latency sim.Time
	var energy sim.Joules
	n := 0
	for i := 0; i < frames; i++ {
		_, st, err := pp.FuseFrames(vis, ir)
		if err != nil {
			return PipelineCell{}, fmt.Errorf("bench: pipeline cell %s %s d%d: %w", s, op.Name, depth, err)
		}
		if i >= depth { // pipeline filled: steady state
			period += st.Total
			latency += st.Latency
			energy += st.Energy
			n++
		}
	}
	stats := pp.Stats()
	cell := PipelineCell{
		Size:      s.String(),
		Point:     op.Name,
		Depth:     depth,
		PeriodMS:  (period / sim.Time(n)).Milliseconds(),
		MJFrame:   (energy / sim.Joules(n)).Millijoules(),
		LatencyMS: (latency / sim.Time(n)).Milliseconds(),
		FillMS:    stats.Fill.Milliseconds(),
		InFlight:  stats.MeanInFlight,
	}
	if cell.PeriodMS > 0 {
		cell.FPS = 1000 / cell.PeriodMS
	}
	return cell, nil
}

// PipelineThroughput runs the inter-frame pipelining sweep: depth × frame
// size × operating point on the cooperative split schedule, mapping the
// throughput/energy frontier of overlapped execution. Depth 1 is the
// sequential baseline; the steady-state period of deeper cells approaches
// max(slowest stage + handoff, frame latency / depth).
func PipelineThroughput() (PipelineThroughputResult, error) {
	cols, depths := pipelineAxes()
	res := PipelineThroughputResult{
		Schema:     ResultSchema,
		Experiment: "pipeline-throughput",
		Steady:     PipelineSteadyFrames,
	}
	for _, c := range cols {
		op, ok := dvfs.Lookup(c.Point)
		if !ok {
			return res, fmt.Errorf("bench: no operating point %q", c.Point)
		}
		v := PipelineVerdict{Size: c.Size.String(), Point: op.Name}
		for _, d := range depths {
			cell, err := MeasurePipelineCell(c.Size, op, d)
			if err != nil {
				return res, err
			}
			res.Cells = append(res.Cells, cell)
			switch {
			case d == 1:
				v.Depth1MS, v.Depth1MJ = cell.PeriodMS, cell.MJFrame
			case v.BestDepth == 0 || cell.PeriodMS < v.BestMS:
				v.BestDepth, v.BestMS, v.BestMJ = d, cell.PeriodMS, cell.MJFrame
			}
		}
		if v.BestMS > 0 {
			v.Speedup = v.Depth1MS / v.BestMS
		}
		res.Verdicts = append(res.Verdicts, v)
	}
	return res, nil
}

// RunPipelineThroughput prints the sweep: per (size, point), the
// sequential baseline against each overlapped depth, and the column
// verdicts. Overlap rebates the quiescent board draw over the shared
// span, so deeper cells are cheaper in mJ/frame as well as faster.
func RunPipelineThroughput(w io.Writer) error {
	res, err := PipelineThroughput()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-10s %-8s %6s %11s %8s %11s %11s %10s %9s\n",
		"size", "point", "depth", "period(ms)", "fps", "mJ/frame", "latency(ms)", "fill(ms)", "inflight")
	for _, c := range res.Cells {
		fmt.Fprintf(w, "%-10s %-8s %6d %11.3f %8.2f %11.4f %11.3f %10.3f %9.2f\n",
			c.Size, c.Point, c.Depth, c.PeriodMS, c.FPS, c.MJFrame, c.LatencyMS, c.FillMS, c.InFlight)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-10s %-8s %11s %6s %11s %9s\n", "size", "point", "depth1(ms)", "best", "best(ms)", "speedup")
	for _, v := range res.Verdicts {
		fmt.Fprintf(w, "%-10s %-8s %11.3f %6d %11.3f %8.2fx\n",
			v.Size, v.Point, v.Depth1MS, v.BestDepth, v.BestMS, v.Speedup)
	}
	fmt.Fprintln(w, "inter-frame pipelined execution: stage N of frame k overlaps stage N-1 of frame")
	fmt.Fprintln(w, "k+1, so the steady frame period tracks the slowest stage instead of the stage sum")
	return nil
}

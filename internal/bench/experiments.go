package bench

import (
	"fmt"
	"io"
	"math"

	"zynqfusion/internal/frame"
	"zynqfusion/internal/fusion"
	"zynqfusion/internal/hls"
	"zynqfusion/internal/profiler"
	"zynqfusion/internal/signal"
	"zynqfusion/internal/sim"
	"zynqfusion/internal/wavelet"
)

// RunFig2 regenerates the profiling chart: forward and inverse DT-CWT
// dominate the ARM-only fusion run.
func RunFig2(w io.Writer) error {
	m, err := Measure(KindARM, Size{88, 72})
	if err != nil {
		return err
	}
	p := profiler.FromStages(m.Stages)
	fmt.Fprint(w, p.String())
	fmt.Fprintf(w, "paper: the forward and inverse DT-CWT are the most compute-intensive stages\n")
	return nil
}

// RunTableI regenerates the implementation-complexity table.
func RunTableI(w io.Writer) error {
	r := hls.EstimateWaveEngine()
	regs, luts, slices, bufg := r.Utilization()
	fmt.Fprintf(w, "Wavelet engine implementation complexity, part %s\n", r.Part)
	fmt.Fprintf(w, "%-10s %10s %10s %10s   %s\n", "resource", "used", "available", "percent", "paper")
	fmt.Fprintf(w, "%-10s %10d %10d %9d%%   23412 / 22%%\n", "Registers", r.Registers, 106400, regs)
	fmt.Fprintf(w, "%-10s %10d %10d %9d%%   17405 / 32%%\n", "LUTs", r.LUTs, 53200, luts)
	fmt.Fprintf(w, "%-10s %10d %10d %9d%%   7890 / 59%%\n", "Slices", r.Slices, 13300, slices)
	fmt.Fprintf(w, "%-10s %10d %10d %9d%%   3 / 9%%\n", "BUFG", r.BUFG, 32, bufg)
	return nil
}

// paperFig9 holds the published curve values (seconds, 10 frames) used as
// reference columns. Values are read off the figures; 88x72 anchors come
// from the text.
var paperFig9 = map[string]map[Size][3]float64{
	// columns: ARM, NEON, FPGA
	"fig9a": {
		{32, 24}: {0.11, 0.10, 0.14}, {35, 35}: {0.19, 0.18, 0.19},
		{40, 40}: {0.24, 0.22, 0.21}, {64, 48}: {0.45, 0.41, 0.29},
		{88, 72}: {0.90, 0.81, 0.40},
	},
	"fig9c": {
		{32, 24}: {0.08, 0.07, 0.09}, {35, 35}: {0.13, 0.11, 0.12},
		{40, 40}: {0.16, 0.13, 0.13}, {64, 48}: {0.30, 0.25, 0.19},
		{88, 72}: {0.60, 0.50, 0.24},
	},
	"fig9b": {
		{32, 24}: {0.22, 0.20, 0.26}, {35, 35}: {0.37, 0.35, 0.36},
		{40, 40}: {0.46, 0.42, 0.41}, {64, 48}: {0.87, 0.79, 0.62},
		{88, 72}: {1.75, 1.61, 0.91},
	},
}

// runFig9 regenerates one of the Fig. 9 panels.
func runFig9(id string) func(io.Writer) error {
	return func(w io.Writer) error {
		res, err := Sweep([]EngineKind{KindARM, KindNEON, KindFPGA}, PaperSizes)
		if err != nil {
			return err
		}
		pick := func(m Measurement) float64 {
			switch id {
			case "fig9a":
				return m.Stages.Forward.Seconds()
			case "fig9c":
				return m.Stages.Inverse.Seconds()
			default:
				return m.Stages.Total.Seconds()
			}
		}
		fmt.Fprintf(w, "%-8s %10s %10s %10s   %-24s\n", "size", "ARM(s)", "NEON(s)", "FPGA(s)", "paper (ARM/NEON/FPGA)")
		for _, s := range PaperSizes {
			ref := paperFig9[id][s]
			fmt.Fprintf(w, "%-8s %10.4f %10.4f %10.4f   %.2f / %.2f / %.2f\n", s,
				pick(res[s][KindARM]), pick(res[s][KindNEON]), pick(res[s][KindFPGA]),
				ref[0], ref[1], ref[2])
		}
		m := res[Size{88, 72}]
		fmt.Fprintf(w, "88x72 vs ARM: NEON %s, FPGA %s\n",
			fmtPct(pickTime(id, m[KindNEON]), pickTime(id, m[KindARM])),
			fmtPct(pickTime(id, m[KindFPGA]), pickTime(id, m[KindARM])))
		switch id {
		case "fig9a":
			fmt.Fprintln(w, "paper: FPGA -55.6%, NEON -10%; crossover between 35x35 and 40x40")
		case "fig9c":
			fmt.Fprintln(w, "paper: FPGA -60.6%, NEON -16%; FPGA wins only past 40x40")
		default:
			fmt.Fprintln(w, "paper: FPGA -48.1%, NEON -8%; crossover just past 40x40")
		}
		return nil
	}
}

func pickTime(id string, m Measurement) sim.Time {
	switch id {
	case "fig9a":
		return m.Stages.Forward
	case "fig9c":
		return m.Stages.Inverse
	default:
		return m.Stages.Total
	}
}

// RunFig10 regenerates the energy comparison.
func RunFig10(w io.Writer) error {
	res, err := Sweep([]EngineKind{KindARM, KindNEON, KindFPGA}, PaperSizes)
	if err != nil {
		return err
	}
	paper := map[Size][3]float64{
		{32, 24}: {120, 110, 140}, {35, 35}: {200, 185, 195},
		{40, 40}: {245, 225, 230}, {64, 48}: {465, 420, 340},
		{88, 72}: {933, 858, 501},
	}
	fmt.Fprintf(w, "%-8s %10s %10s %10s   %-24s\n", "size", "ARM(mJ)", "NEON(mJ)", "FPGA(mJ)", "paper approx (mJ)")
	for _, s := range PaperSizes {
		ref := paper[s]
		fmt.Fprintf(w, "%-8s %10.1f %10.1f %10.1f   %.0f / %.0f / %.0f\n", s,
			res[s][KindARM].Stages.Energy.Millijoules(),
			res[s][KindNEON].Stages.Energy.Millijoules(),
			res[s][KindFPGA].Stages.Energy.Millijoules(),
			ref[0], ref[1], ref[2])
	}
	m := res[Size{88, 72}]
	fmt.Fprintf(w, "88x72 energy saving vs ARM: NEON %.1f%%, FPGA %.1f%% (paper: 8%%, 46.3%%)\n",
		(1-float64(m[KindNEON].Stages.Energy)/float64(m[KindARM].Stages.Energy))*100,
		(1-float64(m[KindFPGA].Stages.Energy)/float64(m[KindARM].Stages.Energy))*100)
	fmt.Fprintln(w, "paper: ARM+FPGA only more energy efficient than ARM+NEON above 40x40;")
	fmt.Fprintln(w, "       breaking point between 40x40 and 64x48")
	return nil
}

// RunAdaptive regenerates the extension experiment: the run-time selector
// of the paper's conclusion against the three static configurations.
func RunAdaptive(w io.Writer) error {
	kinds := []EngineKind{KindARM, KindNEON, KindFPGA, KindAdaptive, KindAdaptiveOnline}
	res, err := Sweep(kinds, PaperSizes)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-8s", "size")
	for _, k := range kinds {
		fmt.Fprintf(w, " %16s", k)
	}
	fmt.Fprintln(w, "   (total s / energy mJ)")
	for _, s := range PaperSizes {
		fmt.Fprintf(w, "%-8s", s)
		for _, k := range kinds {
			m := res[s][k]
			fmt.Fprintf(w, " %7.3f/%8.1f", m.Stages.Total.Seconds(), m.Stages.Energy.Millijoules())
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "the adaptive rows must match or beat the best static engine at every size —")
	fmt.Fprintln(w, "the paper's conclusion that run-time selection is the most efficient point")
	return nil
}

// RunAblationBus quantifies why the custom DMA engine exists: the paper
// measures ~25 CPU cycles per 32-bit transfer through the GP port.
func RunAblationBus(w io.Writer) error {
	fmt.Fprintf(w, "%-22s %14s %14s\n", "row width (pairs)", "GP port", "ACP DMA")
	for _, m := range []int{16, 22, 44, 512} {
		words := 2*m + signal.TapCount
		gp := gpRowTransfer(words + 2*m)
		acp := acpRowTransfer(words, 2*m)
		fmt.Fprintf(w, "%-22d %14s %14s\n", m, gp.String(), acp.String())
	}
	fullGP, err := measureFPGABus(true)
	if err != nil {
		return err
	}
	fullACP, err := measureFPGABus(false)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "full 88x72 fusion, 10 frames: GP %s vs ACP/DMA %s (%s)\n",
		fullGP, fullACP, fmtPct(fullACP, fullGP))
	fmt.Fprintln(w, "paper: every GP transfer costs ~25 clock cycles with the CPU moving data,")
	fmt.Fprintln(w, "       motivating the hardware memcpy DMA over the ACP")
	return nil
}

// RunAblationBuffer quantifies the Fig. 5 double-buffering gain.
func RunAblationBuffer(w io.Writer) error {
	double, err := measureFPGABuffering(true)
	if err != nil {
		return err
	}
	single, err := measureFPGABuffering(false)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "88x72 fusion, 10 frames: double-buffered %s vs single-buffered %s (%s)\n",
		double, single, fmtPct(double, single))
	fmt.Fprintln(w, "paper: the two-area kernel buffer parallelizes transfer and processing (Fig. 5)")
	return nil
}

// RunAblationQuality compares DT-CWT fusion against plain-DWT fusion on
// the quality measures, supporting the paper's section III claim.
func RunAblationQuality(w io.Writer) error {
	vis, ir := SourcePair(Size{88, 72})

	// DT-CWT fusion through the reference kernel.
	dt := wavelet.NewDTCWT(wavelet.NewXfm(signal.RefKernel{}), wavelet.DefaultTreeBanks())
	pa, err := dt.Forward(vis, 3)
	if err != nil {
		return err
	}
	pb, err := dt.Forward(ir, 3)
	if err != nil {
		return err
	}
	fp, err := fusion.Fuse(fusion.MaxMagnitude{}, pa, pb)
	if err != nil {
		return err
	}
	dtFused, err := dt.Inverse(fp)
	if err != nil {
		return err
	}

	dwtFused, err := fuseDWT(vis, ir)
	if err != nil {
		return err
	}

	report := func(name string, fused *frame.Frame) error {
		q, err := fusion.QABF(vis, ir, fused)
		if err != nil {
			return err
		}
		mi, err := fusion.FusionMI(vis, ir, fused)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-8s QABF %.4f   MI %.3f   entropy %.3f   spatial-freq %.2f\n",
			name, q, mi, fusion.Entropy(fused), fusion.SpatialFrequency(fused))
		return nil
	}
	if err := report("DT-CWT", dtFused); err != nil {
		return err
	}
	if err := report("DWT", dwtFused); err != nil {
		return err
	}

	dtShift, dwtShift := shiftSensitivity(vis)
	fmt.Fprintf(w, "shift sensitivity (rel. L2 magnitude change under 1px shift): DT-CWT %.4f, DWT %.4f\n",
		dtShift, dwtShift)
	fmt.Fprintln(w, "paper: the DT-CWT's approximate shift invariance and orientation selectivity")
	fmt.Fprintln(w, "       produce significant fusion quality improvement over the DWT")
	return nil
}

// fuseDWT performs max-abs fusion in the plain separable DWT domain.
func fuseDWT(vis, ir *frame.Frame) (*frame.Frame, error) {
	xf := wavelet.NewXfm(signal.RefKernel{})
	banks := []*wavelet.Bank{wavelet.CDF97, wavelet.CDF97, wavelet.CDF97}
	da, err := wavelet.Forward2D(xf, banks, banks, vis, 3)
	if err != nil {
		return nil, err
	}
	db, err := wavelet.Forward2D(xf, banks, banks, ir, 3)
	if err != nil {
		return nil, err
	}
	for lv := range da.Levels {
		for _, sel := range []func(wavelet.Bands) *frame.Frame{
			func(b wavelet.Bands) *frame.Frame { return b.HL },
			func(b wavelet.Bands) *frame.Frame { return b.LH },
			func(b wavelet.Bands) *frame.Frame { return b.HH },
		} {
			fa, fb := sel(da.Levels[lv]), sel(db.Levels[lv])
			for i := range fa.Pix {
				if abs32(fb.Pix[i]) > abs32(fa.Pix[i]) {
					fa.Pix[i] = fb.Pix[i]
				}
			}
		}
	}
	for i := range da.LL.Pix {
		da.LL.Pix[i] = 0.5 * (da.LL.Pix[i] + db.LL.Pix[i])
	}
	return wavelet.Inverse2D(xf, da)
}

func abs32(v float32) float32 {
	if v < 0 {
		return -v
	}
	return v
}

// shiftSensitivity measures the relative level-2 magnitude change of both
// transforms under a one-pixel shift.
func shiftSensitivity(img *frame.Frame) (dtcwt, dwt float64) {
	shifted := frame.New(img.W, img.H)
	for y := 0; y < img.H; y++ {
		for x := 0; x < img.W; x++ {
			shifted.Set(x, y, img.At((x+1)%img.W, y))
		}
	}
	dt := wavelet.NewDTCWT(wavelet.NewXfm(signal.RefKernel{}), wavelet.DefaultTreeBanks())
	pa, _ := dt.Forward(img, 2)
	pb, _ := dt.Forward(shifted, 2)
	var num, den float64
	for bi := range pa.Levels[1].Bands {
		ba, bb := pa.Levels[1].Bands[bi], pb.Levels[1].Bands[bi]
		for i := range ba.Re {
			ma, mb := ba.Mag(i), bb.Mag(i)
			num += (ma - mb) * (ma - mb)
			den += ma * ma
		}
	}
	dtcwt = sqrt(num / den)

	xf := wavelet.NewXfm(signal.RefKernel{})
	banks := []*wavelet.Bank{wavelet.CDF97, wavelet.CDF97}
	da, _ := wavelet.Forward2D(xf, banks, banks, img, 2)
	db, _ := wavelet.Forward2D(xf, banks, banks, shifted, 2)
	num, den = 0, 0
	for _, sel := range []func(wavelet.Bands) *frame.Frame{
		func(b wavelet.Bands) *frame.Frame { return b.HL },
		func(b wavelet.Bands) *frame.Frame { return b.LH },
		func(b wavelet.Bands) *frame.Frame { return b.HH },
	} {
		fa, fb := sel(da.Levels[1]), sel(db.Levels[1])
		for i := range fa.Pix {
			ma, mb := float64(abs32(fa.Pix[i])), float64(abs32(fb.Pix[i]))
			num += (ma - mb) * (ma - mb)
			den += ma * ma
		}
	}
	dwt = sqrt(num / den)
	return dtcwt, dwt
}

func sqrt(v float64) float64 {
	if v <= 0 {
		return 0
	}
	return math.Sqrt(v)
}

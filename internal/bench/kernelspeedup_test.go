package bench

import (
	"io"
	"runtime"
	"testing"
)

// TestKernelSpeedupShort runs the smoke-sized cell end to end and pins the
// experiment's hard guarantees: fused pixels and accumulated modeled
// StageTimes bit-identical between the scalar baseline and the tiled
// multi-worker engine. The wall-clock speedup itself is a property of the
// host (the pool is capped at GOMAXPROCS), so it is only asserted when the
// machine actually has cores to scale across.
func TestKernelSpeedupShort(t *testing.T) {
	defer func(prev bool) { Short = prev }(Short)
	Short = true
	res, err := KernelSpeedup()
	if err != nil {
		t.Fatal(err)
	}
	if res.Schema != ResultSchema {
		t.Fatalf("schema = %q", res.Schema)
	}
	if len(res.Cells) != 1 {
		t.Fatalf("short sweep shape: %d cells", len(res.Cells))
	}
	for _, c := range res.Cells {
		if !c.PixelsIdentical {
			t.Fatalf("%s: tiled pixels diverged from the scalar baseline", c.Size)
		}
		if !c.StagesIdentical {
			t.Fatalf("%s: tiled modeled StageTimes diverged from the scalar baseline", c.Size)
		}
		if c.Speedup <= 0 {
			t.Fatalf("%s: speedup %.2f not recorded", c.Size, c.Speedup)
		}
		if !c.FusedPixelsIdentical {
			t.Fatalf("%s: fused pixels diverged from the tiled reference", c.Size)
		}
		if !c.FusedStagesIdentical {
			t.Fatalf("%s: fused modeled StageTimes diverged from the tiled reference", c.Size)
		}
		if c.FusedOverTiled <= 0 {
			t.Fatalf("%s: fused speedup %.2f not recorded", c.Size, c.FusedOverTiled)
		}
		if c.FusedPlanesElided <= 0 || c.FusedBytesSaved <= 0 {
			t.Fatalf("%s: fusion elided nothing: %+v", c.Size, c)
		}
		t.Logf("%s: tiled %.2fx over scalar, fused %.2fx over tiled on %d workers",
			c.Size, c.Speedup, c.FusedOverTiled, c.Workers)
	}
	if err := RunKernelSpeedup(io.Discard); err != nil {
		t.Fatal(err)
	}
}

// TestKernelSpeedup1080pAcceptance pins the issue's acceptance line on
// capable hardware: at 1080p with workers = cores the tiled engine must be
// at least 4x faster than the scalar baseline. A host without at least 4
// schedulable cores cannot express that parallelism, so there the cell is
// only checked for output identity and the speedup is logged.
func TestKernelSpeedup1080pAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("1080p cells are expensive; run without -short")
	}
	// Wall-clock ratios are measured while the rest of the suite may be
	// hammering every core (go test runs packages in parallel), so the
	// ratio line gets a bounded retry: a real regression fails all three
	// attempts, a scheduler hiccup does not fail the build. The identity
	// columns are deterministic and must hold on every attempt.
	var cell KernelSpeedupCell
	for attempt := 1; ; attempt++ {
		var err error
		cell, err = MeasureKernelSpeedupCell(Size{1920, 1080}, 2)
		if err != nil {
			t.Fatal(err)
		}
		if !cell.PixelsIdentical || !cell.StagesIdentical {
			t.Fatalf("1080p tiled outputs diverged from the scalar baseline: %+v", cell)
		}
		if !cell.FusedPixelsIdentical || !cell.FusedStagesIdentical {
			t.Fatalf("1080p fused outputs diverged from the tiled reference: %+v", cell)
		}
		t.Logf("1080p: scalar %.1fms/frame, tiled %.1fms/frame (%.2fx), fused %.1fms/frame (%.2fx over tiled) on %d workers",
			cell.ScalarWallMS, cell.TiledWallMS, cell.Speedup,
			cell.FusedWallMS, cell.FusedOverTiled, cell.Workers)
		if cell.FusedOverTiled >= 1.3 {
			break
		}
		if attempt == 3 {
			t.Fatalf("1080p fused-over-tiled %.2fx below the 1.3x acceptance line after %d attempts",
				cell.FusedOverTiled, attempt)
		}
	}
	if runtime.GOMAXPROCS(0) < 4 {
		t.Skipf("only %d schedulable cores: the >=4x line needs >=4", runtime.GOMAXPROCS(0))
	}
	if cell.Speedup < 4 {
		t.Fatalf("1080p speedup %.2fx below the 4x acceptance line on %d cores",
			cell.Speedup, cell.Workers)
	}
}

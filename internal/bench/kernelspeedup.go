package bench

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"time"

	"zynqfusion/internal/engine"
	"zynqfusion/internal/frame"
	"zynqfusion/internal/pipeline"
)

// KernelSpeedupCell is one wall-clock comparison of the tiled multi-worker
// kernel engine against the scalar baseline (the NEON engine pinned to its
// emulated per-instruction unit, the pre-kernel-engine execution path) on
// the same frame sequence, plus the operator-fusion pass against the tiled
// engine it builds on. The modeled platform must be oblivious to the
// host-side execution strategy, so the cell also records whether the fused
// pixels and the accumulated modeled StageTimes (energy included) matched
// bit for bit — for fusion, across both a single-worker and a full-width
// run.
type KernelSpeedupCell struct {
	Size            string  `json:"size"`
	Frames          int     `json:"frames"`
	Workers         int     `json:"workers"` // tiled run's pool size (= host cores)
	ScalarWallMS    float64 `json:"scalar_wall_ms"`
	TiledWallMS     float64 `json:"tiled_wall_ms"`
	Speedup         float64 `json:"speedup"`
	PixelsIdentical bool    `json:"pixels_identical"`
	StagesIdentical bool    `json:"stages_identical"`

	// Operator-fusion columns: the fused run reuses the tiled engine and
	// worker pool, so FusedOverTiled isolates what the fusion pass itself
	// buys. The identity booleans AND the workers=1 and workers=N fused
	// runs against the unfused tiled reference.
	FusedWallMS          float64 `json:"fused_wall_ms"`
	FusedOverTiled       float64 `json:"fused_over_tiled"`
	FusedPixelsIdentical bool    `json:"fused_pixels_identical"`
	FusedStagesIdentical bool    `json:"fused_stages_identical"`
	FusedPlanesElided    int64   `json:"fused_planes_elided"`
	FusedBytesSaved      int64   `json:"fused_bytes_saved"`
}

// KernelSpeedupResult is the kernel-speedup experiment's structured record.
type KernelSpeedupResult struct {
	Schema     string              `json:"schema"`
	Experiment string              `json:"experiment"`
	Cores      int                 `json:"cores"` // GOMAXPROCS during the run
	Cells      []KernelSpeedupCell `json:"cells"`
}

// kernelSpeedupAxes returns the (size, frames) grid, trimmed in Short mode.
func kernelSpeedupAxes() []struct {
	size   Size
	frames int
} {
	if Short {
		return []struct {
			size   Size
			frames int
		}{{Size{320, 180}, 3}}
	}
	return []struct {
		size   Size
		frames int
	}{{Size{320, 180}, 8}, {Size{1920, 1080}, 3}}
}

// speedupReps is how many interleaved timing rounds the tiled-vs-fused
// comparison runs. Alternating the two variants round-robin and keeping
// each one's fastest round cancels the slow drift of a shared or noisy
// host, which a single back-to-back measurement folds straight into the
// ratio.
const speedupReps = 7

// kernelVariant is one warmed pipeline configuration under measurement.
type kernelVariant struct {
	fu      *pipeline.Fuser
	vis, ir *frame.Frame
}

// newKernelVariant builds and warms one NEON pipeline at s. emulated
// selects the scalar baseline unit; workers sizes the kernel pool
// (0 = GOMAXPROCS); fused enables the operator-fusion pass.
func newKernelVariant(s Size, emulated, fused bool, workers int) (*kernelVariant, error) {
	var eng engine.Engine
	if emulated {
		eng = engine.NewNEONEmulated(false)
	} else {
		eng = engine.NewNEON(false)
	}
	fu := pipeline.New(eng, pipeline.Config{IncludeIO: true, KernelWorkers: workers, KernelFusion: fused})
	v := &kernelVariant{fu: fu}
	v.vis, v.ir = SourcePair(s)
	warm, _, err := fu.FuseFrames(v.vis, v.ir) // lease planes, spawn workers
	if err != nil {
		fu.Close()
		return nil, err
	}
	warm.Release()
	return v, nil
}

func (v *kernelVariant) close() { v.fu.Close() }

// batch fuses frames pairs and returns the fastest single-frame
// wall-clock, the accumulated modeled stage record and, when keep is set,
// the final fused frame (caller releases; nil otherwise). The fastest
// frame — not the mean — is the estimator throughout this experiment:
// on a shared host the minimum tracks the code's cost while the mean
// tracks the neighbours'. The modeled record is deterministic, so any
// round's batch yields the canonical accumulation.
func (v *kernelVariant) batch(frames int, keep bool) (float64, pipeline.StageTimes, *frame.Frame, error) {
	var acc pipeline.StageTimes
	var last *frame.Frame
	minMS := math.Inf(1)
	for i := 0; i < frames; i++ {
		start := time.Now()
		out, st, err := v.fu.FuseFrames(v.vis, v.ir)
		if err != nil {
			if last != nil {
				last.Release()
			}
			return 0, pipeline.StageTimes{}, nil, err
		}
		if ms := float64(time.Since(start).Microseconds()) / 1e3; ms < minMS {
			minMS = ms
		}
		acc.Add(st)
		if keep && i == frames-1 {
			last = out
		} else {
			out.Release()
		}
	}
	return minMS, acc, last, nil
}

// samePixels reports bit-identity of two frames.
func samePixels(a, b *frame.Frame) bool {
	if !a.SameSize(b) {
		return false
	}
	for i := range a.Pix {
		if math.Float32bits(a.Pix[i]) != math.Float32bits(b.Pix[i]) {
			return false
		}
	}
	return true
}

// MeasureKernelSpeedupCell runs the scalar baseline, the tiled engine at
// workers = host cores, and the operator-fused engine at workers 1 and N
// over the same frames, and compares their outputs. The tiled and fused
// variants are timed as interleaved rounds with the fastest round kept,
// so the fused-over-tiled ratio is insensitive to host noise drifting
// between the two measurements.
func MeasureKernelSpeedupCell(s Size, frames int) (KernelSpeedupCell, error) {
	scalar, err := newKernelVariant(s, true, false, 1)
	if err != nil {
		return KernelSpeedupCell{}, err
	}
	scalarMS, scalarSt, scalarOut, err := scalar.batch(frames, true)
	scalar.close() // free the emulated pipeline before the timed rounds
	if err != nil {
		return KernelSpeedupCell{}, err
	}
	defer scalarOut.Release()
	tiled, err := newKernelVariant(s, false, false, 0)
	if err != nil {
		return KernelSpeedupCell{}, err
	}
	defer tiled.close()
	fused, err := newKernelVariant(s, false, true, 0)
	if err != nil {
		return KernelSpeedupCell{}, err
	}
	defer fused.close()
	tiledMS, tiledSt, tiledOut, err := tiled.batch(frames, true)
	if err != nil {
		return KernelSpeedupCell{}, err
	}
	defer tiledOut.Release()
	fusedMS, fusedSt, fusedOut, err := fused.batch(frames, true)
	if err != nil {
		return KernelSpeedupCell{}, err
	}
	defer fusedOut.Release()
	for r := 1; r < speedupReps; r++ {
		v, _, _, err := tiled.batch(frames, false)
		if err != nil {
			return KernelSpeedupCell{}, err
		}
		if v < tiledMS {
			tiledMS = v
		}
		if v, _, _, err = fused.batch(frames, false); err != nil {
			return KernelSpeedupCell{}, err
		}
		if v < fusedMS {
			fusedMS = v
		}
	}
	fstats := fused.fu.FusionStats()
	fused1, err := newKernelVariant(s, false, true, 1)
	if err != nil {
		return KernelSpeedupCell{}, err
	}
	defer fused1.close()
	_, fused1St, fused1Out, err := fused1.batch(frames, true)
	if err != nil {
		return KernelSpeedupCell{}, err
	}
	defer fused1Out.Release()
	cell := KernelSpeedupCell{
		Size:                 s.String(),
		Frames:               frames,
		Workers:              runtime.GOMAXPROCS(0),
		ScalarWallMS:         scalarMS,
		TiledWallMS:          tiledMS,
		FusedWallMS:          fusedMS,
		PixelsIdentical:      samePixels(scalarOut, tiledOut),
		StagesIdentical:      scalarSt == tiledSt,
		FusedPixelsIdentical: samePixels(tiledOut, fused1Out) && samePixels(tiledOut, fusedOut),
		FusedStagesIdentical: tiledSt == fused1St && tiledSt == fusedSt,
		FusedPlanesElided:    fstats.PlanesElided,
		FusedBytesSaved:      fstats.BytesSaved,
	}
	if tiledMS > 0 {
		cell.Speedup = scalarMS / tiledMS
	}
	if fusedMS > 0 {
		cell.FusedOverTiled = tiledMS / fusedMS
	}
	return cell, nil
}

// KernelSpeedup runs the tiled-kernel wall-clock experiment: the blocked,
// BCE-clean, goroutine-parallel hot loops against the scalar baseline, and
// the operator-fusion pass against the tiled engine, with the modeled
// outputs pinned identical. Speedups scale with host cores (the worker
// pool is capped at GOMAXPROCS), so the recorded figures are properties of
// the machine that ran the benchmark — the Cores field says which — while
// the identical-output columns must hold everywhere.
func KernelSpeedup() (KernelSpeedupResult, error) {
	res := KernelSpeedupResult{
		Schema:     ResultSchema,
		Experiment: "kernel-speedup",
		Cores:      runtime.GOMAXPROCS(0),
	}
	for _, ax := range kernelSpeedupAxes() {
		cell, err := MeasureKernelSpeedupCell(ax.size, ax.frames)
		if err != nil {
			return res, fmt.Errorf("bench: kernel speedup %s: %w", ax.size, err)
		}
		res.Cells = append(res.Cells, cell)
	}
	return res, nil
}

// RunKernelSpeedup prints the tiled-kernel wall-clock experiment.
func RunKernelSpeedup(w io.Writer) error {
	res, err := KernelSpeedup()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "tiled kernel engine vs scalar baseline, operator fusion vs tiled (NEON model, %d host cores):\n", res.Cores)
	fmt.Fprintf(w, "%-12s %7s %8s %13s %13s %8s %13s %8s %7s %7s\n",
		"size", "frames", "workers", "scalar(ms/f)", "tiled(ms/f)", "speedup", "fused(ms/f)", "fx/tiled", "pixels", "stages")
	okStr := map[bool]string{true: "same", false: "DIFFER"}
	for _, c := range res.Cells {
		fmt.Fprintf(w, "%-12s %7d %8d %13.2f %13.2f %7.2fx %13.2f %7.2fx %7s %7s\n",
			c.Size, c.Frames, c.Workers, c.ScalarWallMS, c.TiledWallMS, c.Speedup,
			c.FusedWallMS, c.FusedOverTiled,
			okStr[c.PixelsIdentical && c.FusedPixelsIdentical],
			okStr[c.StagesIdentical && c.FusedStagesIdentical])
	}
	fmt.Fprintln(w, "pixels and modeled StageTimes are required bit-identical: worker count and")
	fmt.Fprintln(w, "operator fusion are host scheduling only, never part of the modeled platform")
	return nil
}

package bench

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"time"

	"zynqfusion/internal/engine"
	"zynqfusion/internal/frame"
	"zynqfusion/internal/pipeline"
)

// KernelSpeedupCell is one wall-clock comparison of the tiled multi-worker
// kernel engine against the scalar baseline (the NEON engine pinned to its
// emulated per-instruction unit, the pre-kernel-engine execution path) on
// the same frame sequence. The modeled platform must be oblivious to the
// host-side execution strategy, so the cell also records whether the fused
// pixels and the accumulated modeled StageTimes matched bit for bit.
type KernelSpeedupCell struct {
	Size            string  `json:"size"`
	Frames          int     `json:"frames"`
	Workers         int     `json:"workers"` // tiled run's pool size (= host cores)
	ScalarWallMS    float64 `json:"scalar_wall_ms"`
	TiledWallMS     float64 `json:"tiled_wall_ms"`
	Speedup         float64 `json:"speedup"`
	PixelsIdentical bool    `json:"pixels_identical"`
	StagesIdentical bool    `json:"stages_identical"`
}

// KernelSpeedupResult is the kernel-speedup experiment's structured record.
type KernelSpeedupResult struct {
	Schema     string              `json:"schema"`
	Experiment string              `json:"experiment"`
	Cores      int                 `json:"cores"` // GOMAXPROCS during the run
	Cells      []KernelSpeedupCell `json:"cells"`
}

// kernelSpeedupAxes returns the (size, frames) grid, trimmed in Short mode.
func kernelSpeedupAxes() []struct {
	size   Size
	frames int
} {
	if Short {
		return []struct {
			size   Size
			frames int
		}{{Size{320, 180}, 3}}
	}
	return []struct {
		size   Size
		frames int
	}{{Size{320, 180}, 8}, {Size{1920, 1080}, 3}}
}

// runKernelVariant fuses frames pairs at s on one NEON pipeline and returns
// the wall-clock per measured frame, the accumulated modeled stage record,
// and the final fused frame (caller releases). emulated selects the scalar
// baseline unit; workers sizes the kernel pool (0 = GOMAXPROCS).
func runKernelVariant(s Size, frames int, emulated bool, workers int) (float64, pipeline.StageTimes, *frame.Frame, error) {
	var eng engine.Engine
	if emulated {
		eng = engine.NewNEONEmulated(false)
	} else {
		eng = engine.NewNEON(false)
	}
	fu := pipeline.New(eng, pipeline.Config{IncludeIO: true, KernelWorkers: workers})
	defer fu.Close()
	vis, ir := SourcePair(s)
	warm, _, err := fu.FuseFrames(vis, ir) // lease planes, spawn workers
	if err != nil {
		return 0, pipeline.StageTimes{}, nil, err
	}
	warm.Release()
	var acc pipeline.StageTimes
	var last *frame.Frame
	start := time.Now()
	for i := 0; i < frames; i++ {
		out, st, err := fu.FuseFrames(vis, ir)
		if err != nil {
			return 0, pipeline.StageTimes{}, nil, err
		}
		acc.Add(st)
		if i == frames-1 {
			last = out
		} else {
			out.Release()
		}
	}
	wallMS := float64(time.Since(start).Microseconds()) / 1e3 / float64(frames)
	return wallMS, acc, last, nil
}

// MeasureKernelSpeedupCell runs the scalar baseline and the tiled engine at
// workers = host cores over the same frames and compares their outputs.
func MeasureKernelSpeedupCell(s Size, frames int) (KernelSpeedupCell, error) {
	scalarMS, scalarSt, scalarOut, err := runKernelVariant(s, frames, true, 1)
	if err != nil {
		return KernelSpeedupCell{}, err
	}
	defer scalarOut.Release()
	tiledMS, tiledSt, tiledOut, err := runKernelVariant(s, frames, false, 0)
	if err != nil {
		return KernelSpeedupCell{}, err
	}
	defer tiledOut.Release()
	cell := KernelSpeedupCell{
		Size:            s.String(),
		Frames:          frames,
		Workers:         runtime.GOMAXPROCS(0),
		ScalarWallMS:    scalarMS,
		TiledWallMS:     tiledMS,
		PixelsIdentical: true,
		StagesIdentical: scalarSt == tiledSt,
	}
	if tiledMS > 0 {
		cell.Speedup = scalarMS / tiledMS
	}
	for i := range scalarOut.Pix {
		if math.Float32bits(scalarOut.Pix[i]) != math.Float32bits(tiledOut.Pix[i]) {
			cell.PixelsIdentical = false
			break
		}
	}
	return cell, nil
}

// KernelSpeedup runs the tiled-kernel wall-clock experiment: the blocked,
// BCE-clean, goroutine-parallel hot loops against the scalar baseline,
// with the modeled outputs pinned identical. Speedup scales with host
// cores (the worker pool is capped at GOMAXPROCS), so the recorded figure
// is a property of the machine that ran the benchmark — the Cores field
// says which — while the identical-output columns must hold everywhere.
func KernelSpeedup() (KernelSpeedupResult, error) {
	res := KernelSpeedupResult{
		Schema:     ResultSchema,
		Experiment: "kernel-speedup",
		Cores:      runtime.GOMAXPROCS(0),
	}
	for _, ax := range kernelSpeedupAxes() {
		cell, err := MeasureKernelSpeedupCell(ax.size, ax.frames)
		if err != nil {
			return res, fmt.Errorf("bench: kernel speedup %s: %w", ax.size, err)
		}
		res.Cells = append(res.Cells, cell)
	}
	return res, nil
}

// RunKernelSpeedup prints the tiled-kernel wall-clock experiment.
func RunKernelSpeedup(w io.Writer) error {
	res, err := KernelSpeedup()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "tiled kernel engine vs scalar baseline (NEON model, %d host cores):\n", res.Cores)
	fmt.Fprintf(w, "%-12s %7s %8s %16s %16s %9s %8s %8s\n",
		"size", "frames", "workers", "scalar(ms/f)", "tiled(ms/f)", "speedup", "pixels", "stages")
	okStr := map[bool]string{true: "same", false: "DIFFER"}
	for _, c := range res.Cells {
		fmt.Fprintf(w, "%-12s %7d %8d %16.2f %16.2f %8.2fx %8s %8s\n",
			c.Size, c.Frames, c.Workers, c.ScalarWallMS, c.TiledWallMS, c.Speedup,
			okStr[c.PixelsIdentical], okStr[c.StagesIdentical])
	}
	fmt.Fprintln(w, "pixels and modeled StageTimes are required bit-identical: worker count is")
	fmt.Fprintln(w, "host scheduling only, never part of the modeled platform")
	return nil
}

package bench

import (
	"fmt"
	"io"

	"zynqfusion/internal/engine"
	"zynqfusion/internal/frame"
	"zynqfusion/internal/fusion"
	"zynqfusion/internal/hls"
	"zynqfusion/internal/pipeline"
	"zynqfusion/internal/signal"
	"zynqfusion/internal/sim"
	"zynqfusion/internal/wavelet"
)

// RunLevelsSweep varies the DT-CWT decomposition depth at the full frame
// size ("in this test the decomposition level of the CT-DWT was varied",
// section VII). Deeper levels shrink the per-level workload, pushing the
// deep rows below the FPGA's profitability threshold — the mechanism
// behind the paper's frame-size finding, visible here per level.
func RunLevelsSweep(w io.Writer) error {
	s := Size{88, 72}
	vis, ir := SourcePair(s)
	maxLv := wavelet.MaxLevels(s.W, s.H)
	if maxLv > 5 {
		maxLv = 5
	}
	fmt.Fprintf(w, "%-8s %12s %12s %12s %14s\n", "levels", "ARM(s)", "NEON(s)", "FPGA(s)", "adaptive(s)")
	for lv := 1; lv <= maxLv; lv++ {
		var row [4]sim.Time
		for i, kind := range []EngineKind{KindARM, KindNEON, KindFPGA, KindAdaptive} {
			e, err := NewEngine(kind)
			if err != nil {
				return err
			}
			fu := pipeline.New(e, pipeline.Config{Levels: lv, IncludeIO: true})
			var acc pipeline.StageTimes
			for f := 0; f < Frames; f++ {
				_, st, err := fu.FuseFrames(vis, ir)
				if err != nil {
					return err
				}
				acc.Add(st)
			}
			row[i] = acc.Total
		}
		fmt.Fprintf(w, "%-8d %12.4f %12.4f %12.4f %14.4f\n", lv,
			row[0].Seconds(), row[1].Seconds(), row[2].Seconds(), row[3].Seconds())
	}
	fmt.Fprintln(w, "deeper decompositions add small-row work where the FPGA's per-row")
	fmt.Fprintln(w, "overhead dominates; the adaptive engine absorbs it by routing deep rows to NEON")
	return nil
}

// RunAblationCmdQueue evaluates the future-work command-queue: amortizing
// the driver round trip over N rows shifts the FPGA/NEON crossover toward
// smaller frames.
func RunAblationCmdQueue(w io.Writer) error {
	sizes := []Size{{32, 24}, {35, 35}, {40, 40}, {88, 72}}
	depths := []int{1, 2, 4, 8}
	neonRef := make(map[Size]sim.Time)
	for _, s := range sizes {
		m, err := Measure(KindNEON, s)
		if err != nil {
			return err
		}
		neonRef[s] = m.Stages.Forward
	}
	fmt.Fprintf(w, "forward DT-CWT time, 10 frames (NEON reference in last column)\n")
	fmt.Fprintf(w, "%-8s", "size")
	for _, d := range depths {
		fmt.Fprintf(w, " %11s", fmt.Sprintf("queue=%d", d))
	}
	fmt.Fprintf(w, " %11s\n", "NEON")
	for _, s := range sizes {
		fmt.Fprintf(w, "%-8s", s)
		for _, d := range depths {
			t, err := fpgaForwardWithQueue(s, d)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, " %10.4fs", t.Seconds())
		}
		fmt.Fprintf(w, " %10.4fs\n", neonRef[s].Seconds())
	}
	fmt.Fprintln(w, "a deeper command queue amortizes the ~8.4k-cycle driver round trip,")
	fmt.Fprintln(w, "moving the small-frame break-even point toward 32x24")
	return nil
}

// RunAblationFixedPoint compares the float32 wave engine against a Q16.16
// fixed-point datapath: fabric cost collapses (DSP48 MACs replace
// floating-point operators) while fusion output stays within a fraction
// of a grey level of the float path.
func RunAblationFixedPoint(w io.Writer) error {
	vis, ir := SourcePair(Size{88, 72})
	fuse := func(k signal.Kernel) (*frame.Frame, error) {
		dt := wavelet.NewDTCWT(wavelet.NewXfm(k), wavelet.DefaultTreeBanks())
		pa, err := dt.Forward(vis, 3)
		if err != nil {
			return nil, err
		}
		pb, err := dt.Forward(ir, 3)
		if err != nil {
			return nil, err
		}
		fp, err := fusion.Fuse(fusion.MaxMagnitude{}, pa, pb)
		if err != nil {
			return nil, err
		}
		return dt.Inverse(fp)
	}
	floatOut, err := fuse(signal.RefKernel{})
	if err != nil {
		return err
	}
	fixedOut, err := fuse(hls.FixedKernel{})
	if err != nil {
		return err
	}
	psnr, err := frame.PSNR(floatOut, fixedOut)
	if err != nil {
		return err
	}
	maxd, _ := frame.MaxAbsDiff(floatOut, fixedOut)
	fl := hls.EstimateWaveEngine()
	fx := hls.EstimateFixedPointEngine()
	fmt.Fprintf(w, "fusion output, Q16.16 vs float32 datapath: PSNR %.1f dB, max diff %.4f grey levels\n", psnr, maxd)
	fmt.Fprintf(w, "%-12s %10s %10s %10s\n", "datapath", "LUTs", "registers", "slices")
	fmt.Fprintf(w, "%-12s %10d %10d %10d\n", "float32", fl.LUTs, fl.Registers, fl.Slices)
	fmt.Fprintf(w, "%-12s %10d %10d %10d   (+%d DSP48)\n", "Q16.16", fx.LUTs, fx.Registers, fx.Slices, 24)
	fmt.Fprintln(w, "a fixed-point engine would free most of the paper's 59% slice budget at")
	fmt.Fprintln(w, "negligible quality cost — the main untaken design point of section V")
	return nil
}

func fpgaForwardWithQueue(s Size, depth int) (sim.Time, error) {
	e := engine.NewFPGAVariant(engine.FPGAVariant{DoubleBuffered: true, CmdQueueDepth: depth})
	vis, ir := SourcePair(s)
	fu := pipeline.New(e, pipeline.Config{IncludeIO: true})
	var acc pipeline.StageTimes
	for i := 0; i < Frames; i++ {
		_, st, err := fu.FuseFrames(vis, ir)
		if err != nil {
			return 0, err
		}
		acc.Add(st)
	}
	return acc.Forward, nil
}

package bench

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestSplitFrontierDominance is the experiment's acceptance criterion: in
// at least one (frame size, operating point) cell, a cooperative split
// has strictly lower frame time than both exclusive engines and strictly
// lower J/frame than the faster exclusive. Run in short mode so CI's
// smoke job and this test exercise the same grid.
func TestSplitFrontierDominance(t *testing.T) {
	defer func(prev bool) { Short = prev }(Short)
	Short = true
	res, err := SplitFrontier()
	if err != nil {
		t.Fatal(err)
	}
	if res.Schema != ResultSchema {
		t.Errorf("schema = %q, want %q", res.Schema, ResultSchema)
	}
	if len(res.Cells) == 0 || len(res.Verdicts) == 0 {
		t.Fatal("empty frontier")
	}
	dominated := 0
	for _, v := range res.Verdicts {
		if !v.Dominates {
			continue
		}
		dominated++
		if v.BestMS >= v.NEONMS || v.BestMS >= v.FPGAMS {
			t.Errorf("%s %s: verdict claims dominance but %.3f !< %.3f/%.3f",
				v.Size, v.Point, v.BestMS, v.NEONMS, v.FPGAMS)
		}
		if v.BestMJ >= v.FasterMJ {
			t.Errorf("%s %s: %.4f mJ !< faster exclusive %.4f", v.Size, v.Point, v.BestMJ, v.FasterMJ)
		}
	}
	if dominated == 0 {
		t.Fatal("no cell shows a cooperative split dominating exclusive routing")
	}
}

// TestSplitFrontierEndpointsMatchExclusives: the sweep's ratio-0 and
// ratio-1 cells are the degenerate splits, which the golden contract pins
// to the exclusive engines — so they must equal a fresh exclusive
// measurement exactly.
func TestSplitFrontierEndpointsMatchExclusives(t *testing.T) {
	defer func(prev bool) { Short = prev }(Short)
	Short = true
	res, err := SplitFrontier()
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Verdicts {
		if v.NEONMS <= 0 || v.FPGAMS <= 0 {
			t.Errorf("%s %s: missing exclusive endpoints %+v", v.Size, v.Point, v)
		}
	}
}

// TestSplitFrontierJSONDeterministic pins the bench-hygiene contract:
// repeated emissions of the same record are byte-identical (stable schema
// field, deterministic key order), so BENCH_*.json diffs across PRs show
// model changes and nothing else.
func TestSplitFrontierJSONDeterministic(t *testing.T) {
	defer func(prev bool) { Short = prev }(Short)
	Short = true
	e, ok := Find("split-frontier")
	if !ok {
		t.Fatal("split-frontier missing")
	}
	if e.JSON == nil {
		t.Fatal("split-frontier has no JSON emitter")
	}
	marshal := func() []byte {
		v, err := e.JSON()
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.MarshalIndent(v, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	a, b := marshal(), marshal()
	if !bytes.Equal(a, b) {
		t.Error("repeated JSON emissions differ")
	}
	if !strings.Contains(string(a), `"schema": "`+ResultSchema+`"`) {
		t.Errorf("record missing schema field:\n%.200s", a)
	}
	// Field order is declaration order: schema leads the record.
	if !strings.HasPrefix(string(a), "{\n  \"schema\":") {
		t.Errorf("schema is not the leading field:\n%.80s", a)
	}
}

// TestShortModeTrimsSweep keeps the smoke grid genuinely small so the CI
// job stays fast.
func TestShortModeTrimsSweep(t *testing.T) {
	defer func(prev bool) { Short = prev }(Short)
	Short = true
	sizes, points, ratios := splitFrontierAxes()
	short := len(sizes) * len(points) * len(ratios)
	Short = false
	sizes, points, ratios = splitFrontierAxes()
	full := len(sizes) * len(points) * len(ratios)
	if short >= full/4 {
		t.Errorf("short grid (%d cells) not meaningfully smaller than full (%d)", short, full)
	}
}

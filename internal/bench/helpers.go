package bench

import (
	"zynqfusion/internal/axi"
	"zynqfusion/internal/engine"
	"zynqfusion/internal/pipeline"
	"zynqfusion/internal/sim"
	"zynqfusion/internal/zynq"
)

// gpRowTransfer is the CPU time to move one row's words through the GP
// port (in plus out), the paper's rejected baseline.
func gpRowTransfer(words int) sim.Time {
	return axi.GPTransfer(zynq.PS(), words)
}

// acpRowTransfer is the DMA time for the same row over the ACP.
func acpRowTransfer(inWords, outWords int) sim.Time {
	acp := axi.NewACP(zynq.PL())
	return acp.Transfer(inWords) + acp.Transfer(outWords)
}

// measureFPGABus runs the 88x72 x 10-frame workload on the FPGA stack
// with either GP-port copies or the DMA engine.
func measureFPGABus(gpPort bool) (sim.Time, error) {
	return measureFPGAVariant(engine.FPGAVariant{GPPort: gpPort, DoubleBuffered: true})
}

// measureFPGABuffering runs the same workload double- or single-buffered.
func measureFPGABuffering(double bool) (sim.Time, error) {
	return measureFPGAVariant(engine.FPGAVariant{DoubleBuffered: double})
}

// pipelineNew builds a pipeline at a given decomposition depth (test
// helper shared with the levels sweep).
func pipelineNew(e engine.Engine, levels int) *pipeline.Fuser {
	return pipeline.New(e, pipeline.Config{Levels: levels, IncludeIO: true})
}

func measureFPGAVariant(v engine.FPGAVariant) (sim.Time, error) {
	e := engine.NewFPGAVariant(v)
	vis, ir := SourcePair(Size{88, 72})
	fu := pipeline.New(e, pipeline.Config{IncludeIO: true})
	var acc pipeline.StageTimes
	for i := 0; i < Frames; i++ {
		_, st, err := fu.FuseFrames(vis, ir)
		if err != nil {
			return 0, err
		}
		acc.Add(st)
	}
	return acc.Total, nil
}

package bench

import (
	"io"
	"testing"

	"zynqfusion/internal/dvfs"
)

// TestPipelineThroughputShort runs the smoke-sized sweep end to end and
// checks the record shape and the frontier's direction: every column's
// best overlapped depth must beat the sequential baseline in both period
// and mJ/frame.
func TestPipelineThroughputShort(t *testing.T) {
	defer func(prev bool) { Short = prev }(Short)
	Short = true
	res, err := PipelineThroughput()
	if err != nil {
		t.Fatal(err)
	}
	if res.Schema != ResultSchema {
		t.Fatalf("schema = %q", res.Schema)
	}
	if len(res.Cells) != 3 || len(res.Verdicts) != 1 {
		t.Fatalf("short sweep shape: %d cells, %d verdicts", len(res.Cells), len(res.Verdicts))
	}
	for _, v := range res.Verdicts {
		if v.BestDepth < 2 {
			t.Fatalf("%s %s: best depth %d, want an overlapped depth", v.Size, v.Point, v.BestDepth)
		}
		if v.Speedup < 1.3 {
			t.Errorf("%s %s: speedup %.2fx below 1.3x", v.Size, v.Point, v.Speedup)
		}
		if v.BestMJ >= v.Depth1MJ {
			t.Errorf("%s %s: best mJ/frame %.4f not below sequential %.4f", v.Size, v.Point, v.BestMJ, v.Depth1MJ)
		}
	}
	if err := RunPipelineThroughput(io.Discard); err != nil {
		t.Fatal(err)
	}
}

// TestPipelineThroughput1080pAcceptance pins the issue's acceptance line:
// on the 1080p cooperative-split workload at 533 MHz, depth 2 must reach
// at least 1.3x the depth-1 frame rate. The cell is real 1080p wavelet
// compute, so the test is skipped in -short runs.
func TestPipelineThroughput1080pAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("1080p cells are expensive; run without -short")
	}
	op, ok := dvfs.Lookup("533MHz")
	if !ok {
		t.Fatal("no 533MHz point")
	}
	s := Size{1920, 1080}
	d1, err := MeasurePipelineCell(s, op, 1)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := MeasurePipelineCell(s, op, 2)
	if err != nil {
		t.Fatal(err)
	}
	speedup := d1.PeriodMS / d2.PeriodMS
	t.Logf("1080p 533MHz: depth1 %.1fms (%.2f fps), depth2 %.1fms (%.2f fps), speedup %.2fx",
		d1.PeriodMS, d1.FPS, d2.PeriodMS, d2.FPS, speedup)
	if speedup < 1.3 {
		t.Fatalf("depth-2 speedup %.2fx below the 1.3x acceptance line", speedup)
	}
	if d2.MJFrame >= d1.MJFrame {
		t.Errorf("depth-2 mJ/frame %.3f not below depth-1 %.3f", d2.MJFrame, d1.MJFrame)
	}
	if d2.InFlight <= 1.2 {
		t.Errorf("depth-2 mean in-flight %.2f, want > 1.2", d2.InFlight)
	}
}

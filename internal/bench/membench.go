package bench

import (
	"fmt"
	"io"
	"runtime"

	"zynqfusion/internal/bufpool"
	"zynqfusion/internal/dvfs"
	"zynqfusion/internal/farm"
	"zynqfusion/internal/pipeline"
	"zynqfusion/internal/sched"
	"zynqfusion/internal/split"
)

// MemFuserCell is one steady-state allocation measurement of a single
// fusion pipeline: the pooled frame-store path against the allocating
// baseline on the same engine and schedule.
type MemFuserCell struct {
	Mode           string  `json:"mode"` // "pooled" or "allocating"
	Depth          int     `json:"depth"`
	Frames         int     `json:"frames"`
	AllocsPerFrame float64 `json:"allocs_per_frame"`
	KBPerFrame     float64 `json:"kb_per_frame"`
	GCCycles       uint32  `json:"gc_cycles"`
	PoolHitRate    float64 `json:"pool_hit_rate"`
	// PoolHighWaterKB is the arena's peak footprint — the fixed frame-
	// store budget the run actually needed (0 for the allocating mode).
	PoolHighWaterKB int64 `json:"pool_high_water_kb"`
}

// MemFarmCell is one farm-scale steady-state memory measurement.
type MemFarmCell struct {
	Streams         int     `json:"streams"`
	Fused           int64   `json:"fused"`
	AllocsPerFrame  float64 `json:"allocs_per_frame"`
	KBPerFrame      float64 `json:"kb_per_frame"`
	GCCycles        uint32  `json:"gc_cycles"`
	GCPauseMS       float64 `json:"gc_pause_ms"`
	HeapAllocKB     int64   `json:"heap_alloc_kb"` // steady-state live heap after the run
	PoolHitRate     float64 `json:"pool_hit_rate"`
	PoolHighWaterKB int64   `json:"pool_high_water_kb"`
}

// MemSteadyStateResult is the mem-steadystate experiment's structured
// record.
type MemSteadyStateResult struct {
	Schema     string         `json:"schema"`
	Experiment string         `json:"experiment"`
	Fuser      []MemFuserCell `json:"fuser"`
	Farm       []MemFarmCell  `json:"farm"`
}

// memAxes returns the per-cell frame count and the farm stream counts,
// trimmed in Short mode (the CI smoke).
func memAxes() (fuserFrames int, farmStreams []int, farmFrames int64) {
	if Short {
		return 12, []int{1, 4}, 6
	}
	return 40, []int{1, 16, 64}, 16
}

// measureMemFuser runs one warmed pipeline for frames fusions and returns
// the process-wide allocation deltas per frame. The engine is the
// cooperative split-oracle schedule at depth 2 — the farm's hot
// configuration — so both the NEON lane and the FPGA driver boundary are
// on the measured path.
func measureMemFuser(mode string, depth, frames int) (MemFuserCell, error) {
	pool := bufpool.New(bufpool.Options{})
	if mode == "allocating" {
		pool = bufpool.Passthrough()
	}
	eng := sched.NewAdaptive(sched.SplitDriven{S: split.NewOracle(dvfs.Nominal())})
	pp, err := pipeline.NewPipelined(pipeline.New(eng, pipeline.Config{IncludeIO: true, Pool: pool}), depth)
	if err != nil {
		return MemFuserCell{}, err
	}
	vis, ir := SourcePair(Size{88, 72})
	run := func(n int) error {
		for i := 0; i < n; i++ {
			out, _, err := pp.FuseFrames(vis, ir)
			if err != nil {
				return err
			}
			out.Release()
		}
		return nil
	}
	if err := run(depth + 3); err != nil { // fill the pipeline and the pool
		return MemFuserCell{}, err
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	if err := run(frames); err != nil {
		return MemFuserCell{}, err
	}
	runtime.ReadMemStats(&after)
	cell := MemFuserCell{
		Mode:           mode,
		Depth:          depth,
		Frames:         frames,
		AllocsPerFrame: float64(after.Mallocs-before.Mallocs) / float64(frames),
		KBPerFrame:     float64(after.TotalAlloc-before.TotalAlloc) / float64(frames) / 1024,
		GCCycles:       after.NumGC - before.NumGC,
	}
	if mode == "pooled" {
		st := pool.Stats()
		cell.PoolHitRate = st.HitRate()
		cell.PoolHighWaterKB = st.HighWaterBytes / 1024
	}
	pp.Close()
	return cell, nil
}

// measureMemFarm runs a whole farm of bounded streams and reports the
// process allocation rate per fused frame plus the shared arena's ledger.
func measureMemFarm(streams int, frames int64) (MemFarmCell, error) {
	f := farm.New(farm.Config{})
	defer f.Close()
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	for i := 0; i < streams; i++ {
		if _, err := f.Submit(farm.StreamConfig{Seed: int64(i + 1), Frames: frames, Pipelined: true, Depth: 2}); err != nil {
			return MemFarmCell{}, err
		}
	}
	f.Wait()
	m := f.Metrics()
	runtime.ReadMemStats(&after)
	cell := MemFarmCell{
		Streams:         streams,
		Fused:           m.Aggregate.Fused,
		GCCycles:        after.NumGC - before.NumGC,
		GCPauseMS:       float64(after.PauseTotalNs-before.PauseTotalNs) / 1e6,
		HeapAllocKB:     int64(after.HeapAlloc / 1024),
		PoolHitRate:     m.Memory.PoolHitRate,
		PoolHighWaterKB: m.Memory.Pool.HighWaterBytes / 1024,
	}
	if cell.Fused > 0 {
		cell.AllocsPerFrame = float64(after.Mallocs-before.Mallocs) / float64(cell.Fused)
		cell.KBPerFrame = float64(after.TotalAlloc-before.TotalAlloc) / float64(cell.Fused) / 1024
	}
	return cell, nil
}

// MemSteadyState runs the frame-store experiment: pooled vs allocating
// allocation rates on one pipeline, then the pooled farm at increasing
// stream counts. The pooled fuser rows land at (near) zero allocations
// per frame — the measurement behind the AllocsPerRun CI guard — while
// the allocating rows show the churn the refactor removed.
func MemSteadyState() (MemSteadyStateResult, error) {
	fuserFrames, farmStreams, farmFrames := memAxes()
	res := MemSteadyStateResult{Schema: ResultSchema, Experiment: "mem-steadystate"}
	for _, mode := range []string{"pooled", "allocating"} {
		cell, err := measureMemFuser(mode, 2, fuserFrames)
		if err != nil {
			return res, fmt.Errorf("bench: mem fuser %s: %w", mode, err)
		}
		res.Fuser = append(res.Fuser, cell)
	}
	for _, n := range farmStreams {
		cell, err := measureMemFarm(n, farmFrames)
		if err != nil {
			return res, fmt.Errorf("bench: mem farm %d: %w", n, err)
		}
		res.Farm = append(res.Farm, cell)
	}
	return res, nil
}

// RunMemSteadyState prints the frame-store pooling experiment.
func RunMemSteadyState(w io.Writer) error {
	res, err := MemSteadyState()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "single pipeline (88x72, split-oracle, depth 2, %d frames):\n", res.Fuser[0].Frames)
	fmt.Fprintf(w, "%-12s %14s %12s %6s %10s %14s\n", "mode", "allocs/frame", "KB/frame", "GCs", "hit rate", "highwater(KB)")
	for _, c := range res.Fuser {
		fmt.Fprintf(w, "%-12s %14.1f %12.1f %6d %9.0f%% %14d\n",
			c.Mode, c.AllocsPerFrame, c.KBPerFrame, c.GCCycles, c.PoolHitRate*100, c.PoolHighWaterKB)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "fusion farm (pooled, pipelined depth 2):")
	fmt.Fprintf(w, "%-8s %7s %14s %12s %6s %12s %10s %14s\n",
		"streams", "fused", "allocs/frame", "KB/frame", "GCs", "gc pause(ms)", "hit rate", "highwater(KB)")
	for _, c := range res.Farm {
		fmt.Fprintf(w, "%-8d %7d %14.1f %12.1f %6d %12.2f %9.0f%% %14d\n",
			c.Streams, c.Fused, c.AllocsPerFrame, c.KBPerFrame, c.GCCycles, c.GCPauseMS, c.PoolHitRate*100, c.PoolHighWaterKB)
	}
	fmt.Fprintln(w, "the board never allocates per frame: VDMA streams capture and display through")
	fmt.Fprintln(w, "fixed DDR frame stores; the pooled path reproduces that — leases, not garbage")
	return nil
}

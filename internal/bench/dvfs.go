package bench

import (
	"fmt"
	"io"

	"zynqfusion/internal/dvfs"
	"zynqfusion/internal/farm"
	"zynqfusion/internal/sim"
)

// DVFSFrames is the per-stream frame budget of the DVFS experiments; the
// queues are sized to it so the J/frame figures are drop-free.
const DVFSFrames = 6

// probeFrameTime fuses one uncontended frame of the given mode and size
// at an operating point, through the same farm probe the deadline-pace
// governor calibrates its predictor with — the bench baselines and the
// governor's picks come from one code path.
func probeFrameTime(kind EngineKind, s Size, op dvfs.OperatingPoint) (sim.Time, error) {
	t, err := farm.ProbeFrameTime(farm.StreamConfig{W: s.W, H: s.H, Engine: string(kind)}, op)
	if err != nil {
		return 0, fmt.Errorf("bench: probe %s %s: %w", kind, s, err)
	}
	return t, nil
}

// runDeadlineFarm fuses DVFSFrames frames on n streams under one deadline
// and DVFS policy, returning the farm metrics.
func runDeadlineFarm(kind EngineKind, s Size, n int, deadlineMS float64, policy string) (farm.Metrics, error) {
	fm := farm.New(farm.Config{})
	defer fm.Close()
	for i := 0; i < n; i++ {
		_, err := fm.Submit(farm.StreamConfig{
			W:          s.W,
			H:          s.H,
			Seed:       int64(i + 1),
			Engine:     string(kind),
			Frames:     DVFSFrames,
			QueueCap:   DVFSFrames,
			DeadlineMS: deadlineMS,
			DVFSPolicy: policy,
		})
		if err != nil {
			return farm.Metrics{}, fmt.Errorf("bench: dvfs submit: %w", err)
		}
	}
	fm.Wait()
	return fm.Metrics(), nil
}

// residencyMix formats a stream set's operating-point frame counts in
// ascending frequency order.
func residencyMix(teles []farm.StreamTelemetry) string {
	counts := make(map[string]int64)
	for _, t := range teles {
		for p, n := range t.OpFrames {
			counts[p] += n
		}
	}
	out := ""
	for _, op := range dvfs.List() {
		if counts[op.Name] == 0 {
			continue
		}
		if out != "" {
			out += " "
		}
		out += fmt.Sprintf("%s:%d", op.Name, counts[op.Name])
	}
	if out == "" {
		return "-"
	}
	return out
}

// jPerPeriod is the farm-wide energy per frame period: active energy
// plus idled-out deadline slack, per fused frame.
func jPerPeriod(m farm.Metrics) sim.Joules {
	if m.Aggregate.Fused == 0 {
		return 0
	}
	return (m.Aggregate.Energy + m.Aggregate.SlackEnergy) / sim.Joules(m.Aggregate.Fused)
}

// RunDVFSPareto sweeps frame-rate targets for one stream per engine mode
// and prints the energy-vs-deadline frontier: at each fps target, the
// race-to-idle governor fuses at the fastest point and idles out the
// slack, while deadline-pace stretches the frame into the slack at a
// lower operating point. Energy per frame period scales with V², so
// wherever slack exists the paced point sits strictly below the raced one
// — the Pareto frontier of J/frame against deadline tightness.
func RunDVFSPareto(w io.Writer) error {
	size := Size{64, 48}
	slackFactors := []float64{1.15, 1.5, 2.0, 3.0}
	fmt.Fprintf(w, "%-10s %8s %10s %16s %12s %8s %-24s\n",
		"mode", "fps", "dl(ms)", "governor", "J/period(mJ)", "misses", "points")
	for _, kind := range []EngineKind{KindNEON, KindAdaptive} {
		base, err := probeFrameTime(kind, size, dvfs.Nominal())
		if err != nil {
			return err
		}
		for _, k := range slackFactors {
			deadlineMS := base.Milliseconds() * k
			fps := 1e3 / deadlineMS
			for _, policy := range []string{dvfs.PolicyRaceToIdle, dvfs.PolicyDeadlinePace} {
				m, err := runDeadlineFarm(kind, size, 1, deadlineMS, policy)
				if err != nil {
					return err
				}
				fmt.Fprintf(w, "%-10s %8.1f %10.3f %16s %12.4f %8d %-24s\n",
					kind, fps, deadlineMS, policy,
					jPerPeriod(m).Millijoules(), m.Aggregate.DeadlineMisses,
					residencyMix(m.Streams))
			}
		}
	}
	fmt.Fprintln(w, "pace beats race wherever slack exists: the paced frame runs at a lower V,")
	fmt.Fprintln(w, "and energy over the frame period scales with V**2")
	return nil
}

// RunDVFSFarm runs the tight/loose deadline scenario family across 1, 4
// and 16 streams sharing the one wave engine. Under contention, streams
// that lose the per-frame FPGA arbitration fall back to NEON and run
// longer than the governor predicted — tight deadlines start missing as
// the farm grows, while loose deadlines absorb the contention at the
// low-voltage points.
func RunDVFSFarm(w io.Writer) error {
	size := Size{64, 48}
	base, err := probeFrameTime(KindAdaptive, size, dvfs.Nominal())
	if err != nil {
		return err
	}
	scenarios := []struct {
		name   string
		factor float64
	}{
		{"tight", 1.15},
		{"loose", 3.0},
	}
	fmt.Fprintf(w, "%-8s %8s %10s %8s %8s %12s %8s %10s %-24s\n",
		"deadline", "streams", "dl(ms)", "fused", "misses", "J/period(mJ)", "fpga%", "denials", "points")
	for _, sc := range scenarios {
		deadlineMS := base.Milliseconds() * sc.factor
		for _, n := range []int{1, 4, 16} {
			m, err := runDeadlineFarm(KindAdaptive, size, n, deadlineMS, dvfs.PolicyDeadlinePace)
			if err != nil {
				return err
			}
			var kernel, fpga int64
			for _, t := range m.Streams {
				for k, v := range t.RoutedTime {
					kernel += int64(v)
					if k == "fpga" {
						fpga += int64(v)
					}
				}
			}
			var share float64
			if kernel > 0 {
				share = float64(fpga) / float64(kernel)
			}
			fmt.Fprintf(w, "%-8s %8d %10.3f %8d %8d %12.4f %7.1f%% %10d %-24s\n",
				sc.name, n, deadlineMS,
				m.Aggregate.Fused, m.Aggregate.DeadlineMisses,
				jPerPeriod(m).Millijoules(), share*100, m.Governor.Denials,
				residencyMix(m.Streams))
		}
	}
	fmt.Fprintln(w, "deadline-pace across a contended farm: losing the FPGA lease stretches frames")
	fmt.Fprintln(w, "past the uncontended prediction, so tight deadlines miss as streams multiply")
	return nil
}

package bench

import (
	"fmt"
	"io"

	"zynqfusion/internal/farm"
)

// FarmStreamCounts are the stream counts of the farm scaling experiment.
var FarmStreamCounts = []int{1, 4, 16, 64}

// FarmFramesPerStream is the bounded per-stream frame budget used by the
// scaling experiment. The queues are sized to the budget so no frames are
// dropped and the J/frame figures are drop-free.
const FarmFramesPerStream = 4

// RunFarmScale measures farm throughput and energy efficiency as the
// stream count grows with one shared wave engine. Modeled throughput is
// total fused frames over the farm's makespan (streams run in parallel);
// the FPGA share and denial counts show the governor serializing access:
// with one stream the adaptive policy routes its wide rows to the FPGA
// almost every frame, while at 64 streams most streams lose the per-frame
// arbitration and fall back to NEON — J/frame drifts toward the NEON
// operating point exactly as the paper's Fig. 10 energy ordering predicts.
func RunFarmScale(w io.Writer) error {
	size := Size{64, 48}
	fmt.Fprintf(w, "%-8s %8s %8s %12s %12s %12s %10s %10s\n",
		"streams", "fused", "dropped", "wall(ms)", "frames/s", "J/frame(mJ)", "fpga%", "denials")
	for _, n := range FarmStreamCounts {
		fm := farm.New(farm.Config{})
		for i := 0; i < n; i++ {
			_, err := fm.Submit(farm.StreamConfig{
				W:        size.W,
				H:        size.H,
				Seed:     int64(i + 1),
				Engine:   "adaptive",
				Frames:   FarmFramesPerStream,
				QueueCap: FarmFramesPerStream,
			})
			if err != nil {
				return fmt.Errorf("bench: farm submit: %w", err)
			}
		}
		fm.Wait()
		m := fm.Metrics()
		var fpgaShare float64
		var kernel, fpga int64
		for _, t := range m.Streams {
			for k, v := range t.RoutedTime {
				kernel += int64(v)
				if k == "fpga" {
					fpga += int64(v)
				}
			}
		}
		if kernel > 0 {
			fpgaShare = float64(fpga) / float64(kernel)
		}
		fmt.Fprintf(w, "%-8d %8d %8d %12.3f %12.1f %12.4f %9.1f%% %10d\n",
			n,
			m.Aggregate.Fused,
			m.Aggregate.Dropped,
			m.Aggregate.WallTime.Milliseconds(),
			m.Aggregate.FusedPerSecond,
			m.Aggregate.EnergyPerFrame.Millijoules(),
			fpgaShare*100,
			m.Governor.Denials)
		fm.Close()
	}
	fmt.Fprintln(w, "one shared wave engine: contention pushes streams to NEON, trading the")
	fmt.Fprintln(w, "FPGA's speed for NEON's lower board draw; farm throughput still scales with workers")
	return nil
}

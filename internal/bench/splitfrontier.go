package bench

import (
	"fmt"
	"io"

	"zynqfusion/internal/dvfs"
	"zynqfusion/internal/pipeline"
	"zynqfusion/internal/sched"
	"zynqfusion/internal/split"
)

// Short trims the sweep experiments to a single smoke cell per axis; the
// CI smoke job and fusionbench -short set it so the experiments stay
// exercised without paying for the full grids.
var Short bool

// SplitFrontierFrames is the per-cell frame budget of the split-frontier
// experiment.
const SplitFrontierFrames = 2

// SplitCell is one (frame size, operating point, split ratio) measurement
// of the split-frontier sweep.
type SplitCell struct {
	Size    string  `json:"size"`
	Point   string  `json:"point"`
	Ratio   float64 `json:"ratio"`
	FrameMS float64 `json:"frame_ms"`
	MJFrame float64 `json:"mj_per_frame"`
}

// SplitVerdict summarizes one (size, point) column of the sweep: the two
// exclusive endpoints, the best cooperative ratio, and whether it strictly
// dominates — faster than both exclusives and fewer joules than the faster
// one.
type SplitVerdict struct {
	Size      string  `json:"size"`
	Point     string  `json:"point"`
	NEONMS    float64 `json:"neon_ms"`
	FPGAMS    float64 `json:"fpga_ms"`
	BestRatio float64 `json:"best_ratio"`
	BestMS    float64 `json:"best_ms"`
	BestMJ    float64 `json:"best_mj"`
	FasterMJ  float64 `json:"faster_exclusive_mj"`
	Dominates bool    `json:"dominates"`
}

// SplitFrontierResult is the structured record of the split-frontier
// experiment, emitted under the stable bench-result schema.
type SplitFrontierResult struct {
	Schema     string         `json:"schema"`
	Experiment string         `json:"experiment"`
	Frames     int            `json:"frames_per_cell"`
	Cells      []SplitCell    `json:"cells"`
	Verdicts   []SplitVerdict `json:"verdicts"`
}

// splitFrontierAxes returns the sweep axes, trimmed in Short mode.
func splitFrontierAxes() (sizes []Size, points []string, ratios []float64) {
	if Short {
		return []Size{{64, 48}},
			[]string{"533MHz"},
			[]float64{0, 0.25, 0.5, 0.75, 1}
	}
	return []Size{{40, 40}, {64, 48}, {88, 72}},
		[]string{"222MHz", "533MHz", "667MHz"},
		[]float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1}
}

// measureSplitCell fuses the per-cell frame budget at one fixed split
// ratio and returns mean per-frame milliseconds and millijoules.
func measureSplitCell(s Size, op dvfs.OperatingPoint, ratio float64) (ms, mj float64, err error) {
	eng := sched.NewAdaptiveAt(sched.SplitDriven{S: split.Fixed{Frac: ratio}}, op)
	vis, ir := SourcePair(s)
	fu := pipeline.New(eng, pipeline.Config{IncludeIO: true})
	var acc pipeline.StageTimes
	for i := 0; i < SplitFrontierFrames; i++ {
		_, st, ferr := fu.FuseFrames(vis, ir)
		if ferr != nil {
			return 0, 0, fmt.Errorf("bench: split cell %s %s %.2f: %w", s, op.Name, ratio, ferr)
		}
		acc.Add(st)
	}
	n := float64(SplitFrontierFrames)
	return acc.Total.Milliseconds() / n, acc.Energy.Millijoules() / n, nil
}

// SplitFrontier runs the cooperative-execution sweep: split ratio × frame
// size × operating point, each cell a fixed Partition{FPGA: ratio} driven
// through the adaptive engine. The endpoints (ratio 0 and 1) are the
// exclusive NEON and FPGA routings the fixed system chooses between; the
// interior is what it leaves on the table.
func SplitFrontier() (SplitFrontierResult, error) {
	sizes, points, ratios := splitFrontierAxes()
	res := SplitFrontierResult{
		Schema:     ResultSchema,
		Experiment: "split-frontier",
		Frames:     SplitFrontierFrames,
	}
	for _, s := range sizes {
		for _, pt := range points {
			op, ok := dvfs.Lookup(pt)
			if !ok {
				return res, fmt.Errorf("bench: no operating point %q", pt)
			}
			v := SplitVerdict{Size: s.String(), Point: op.Name}
			bestSet := false
			for _, r := range ratios {
				ms, mj, err := measureSplitCell(s, op, r)
				if err != nil {
					return res, err
				}
				res.Cells = append(res.Cells, SplitCell{
					Size: s.String(), Point: op.Name, Ratio: r, FrameMS: ms, MJFrame: mj,
				})
				switch r {
				case 0:
					v.NEONMS = ms
				case 1:
					v.FPGAMS = ms
				default:
					if !bestSet || ms < v.BestMS {
						v.BestRatio, v.BestMS, v.BestMJ = r, ms, mj
						bestSet = true
					}
				}
			}
			// The faster exclusive's energy needs both endpoints known, so
			// it is resolved from the recorded cells after the sweep.
			v.FasterMJ = fasterExclusiveMJ(res.Cells, v)
			v.Dominates = bestSet &&
				v.BestMS < v.NEONMS && v.BestMS < v.FPGAMS && v.BestMJ < v.FasterMJ
			res.Verdicts = append(res.Verdicts, v)
		}
	}
	return res, nil
}

// fasterExclusiveMJ finds the energy of the faster exclusive endpoint of
// one (size, point) column.
func fasterExclusiveMJ(cells []SplitCell, v SplitVerdict) float64 {
	want := 1.0
	if v.NEONMS < v.FPGAMS {
		want = 0.0
	}
	for _, c := range cells {
		if c.Size == v.Size && c.Point == v.Point && c.Ratio == want {
			return c.MJFrame
		}
	}
	return 0
}

// RunSplitFrontier prints the sweep: per (size, point), the exclusive
// endpoints against the best cooperative split. Wherever both engines
// have nonzero throughput the cooperative point is strictly faster than
// either exclusive — the previously idle engine now carries part of every
// level — and cheaper in J/frame than the faster exclusive, because the
// overlapped span stops paying the quiescent draw twice.
func RunSplitFrontier(w io.Writer) error {
	res, err := SplitFrontier()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-8s %-8s %10s %10s %8s %10s %10s %10s %10s\n",
		"size", "point", "neon(ms)", "fpga(ms)", "best", "coop(ms)", "coop(mJ)", "excl(mJ)", "verdict")
	for _, v := range res.Verdicts {
		verdict := "-"
		if v.Dominates {
			verdict = "dominates"
		}
		fmt.Fprintf(w, "%-8s %-8s %10.3f %10.3f %8.2f %10.3f %10.4f %10.4f %10s\n",
			v.Size, v.Point, v.NEONMS, v.FPGAMS, v.BestRatio, v.BestMS, v.BestMJ, v.FasterMJ, verdict)
	}
	fmt.Fprintln(w, "cooperative CPU+FPGA split execution: the fixed system's either/or routing is")
	fmt.Fprintln(w, "the ratio-0/1 endpoints; partitioning each level across both engines beats both")
	return nil
}

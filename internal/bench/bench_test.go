package bench

import (
	"bytes"
	"strings"
	"testing"
)

func TestAllExperimentsRun(t *testing.T) {
	for _, e := range All() {
		var buf bytes.Buffer
		if err := e.Run(&buf); err != nil {
			t.Errorf("%s: %v", e.ID, err)
			continue
		}
		if buf.Len() == 0 {
			t.Errorf("%s: produced no output", e.ID)
		}
	}
}

func TestFindExperiments(t *testing.T) {
	for _, id := range []string{"fig2", "table1", "fig9a", "fig9b", "fig9c", "fig10",
		"adaptive", "levels", "ablation-bus", "ablation-buffer", "ablation-cmdqueue",
		"ablation-fixedpoint", "ablation-quality", "farm-scale", "split-frontier"} {
		if _, ok := Find(id); !ok {
			t.Errorf("experiment %q missing", id)
		}
	}
	if _, ok := Find("fig99"); ok {
		t.Error("unknown experiment should not resolve")
	}
}

func TestMeasureRejectsUnknownKind(t *testing.T) {
	if _, err := Measure(EngineKind("gpu"), Size{32, 24}); err == nil {
		t.Error("unknown engine kind should fail")
	}
}

func TestSourcePairDeterministic(t *testing.T) {
	a, _ := SourcePair(Size{40, 40})
	b, _ := SourcePair(Size{40, 40})
	for i := range a.Pix {
		if a.Pix[i] != b.Pix[i] {
			t.Fatal("source frames must be deterministic")
		}
	}
}

func TestFig9aOutputMentionsCrossover(t *testing.T) {
	e, ok := Find("fig9a")
	if !ok {
		t.Fatal("fig9a missing")
	}
	var buf bytes.Buffer
	if err := e.Run(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"88x72", "32x24", "NEON", "FPGA", "crossover"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig9a output missing %q:\n%s", want, out)
		}
	}
}

func TestAblationBufferShowsGain(t *testing.T) {
	double, err := measureFPGABuffering(true)
	if err != nil {
		t.Fatal(err)
	}
	single, err := measureFPGABuffering(false)
	if err != nil {
		t.Fatal(err)
	}
	if double >= single {
		t.Errorf("double buffering (%v) must beat single (%v)", double, single)
	}
}

func TestAblationBusShowsGain(t *testing.T) {
	gp, err := measureFPGABus(true)
	if err != nil {
		t.Fatal(err)
	}
	acp, err := measureFPGABus(false)
	if err != nil {
		t.Fatal(err)
	}
	if acp >= gp {
		t.Errorf("DMA over ACP (%v) must beat GP-port copies (%v)", acp, gp)
	}
	// The gap should be substantial — the GP path moves every word at ~25
	// CPU cycles.
	if float64(gp-acp)/float64(gp) < 0.10 {
		t.Errorf("DMA saves only %.1f%% over GP", 100*float64(gp-acp)/float64(gp))
	}
}

func TestCmdQueueAmortizesDriverOverhead(t *testing.T) {
	// Deeper command queues must monotonically reduce the FPGA forward
	// time, and at depth 4 the FPGA must beat NEON even at 32x24 — the
	// quantified payoff of the paper's future-work optimization.
	s := Size{32, 24}
	var prev float64 = 1e18
	for _, depth := range []int{1, 2, 4} {
		tm, err := fpgaForwardWithQueue(s, depth)
		if err != nil {
			t.Fatal(err)
		}
		if float64(tm) >= prev {
			t.Errorf("depth %d (%v) not faster than shallower queue", depth, tm)
		}
		prev = float64(tm)
	}
	neon, err := Measure(KindNEON, s)
	if err != nil {
		t.Fatal(err)
	}
	deep, err := fpgaForwardWithQueue(s, 4)
	if err != nil {
		t.Fatal(err)
	}
	if deep >= neon.Stages.Forward {
		t.Errorf("queue=4 FPGA (%v) should beat NEON (%v) at 32x24", deep, neon.Stages.Forward)
	}
}

func TestLevelsSweepAdaptiveGainGrowsWithDepth(t *testing.T) {
	// The deeper the decomposition, the more narrow rows exist, so the
	// adaptive engine's advantage over pure FPGA must grow with depth.
	vis, ir := SourcePair(Size{88, 72})
	gain := func(levels int) float64 {
		run := func(kind EngineKind) float64 {
			e, err := NewEngine(kind)
			if err != nil {
				t.Fatal(err)
			}
			fu := pipelineNew(e, levels)
			var acc float64
			for i := 0; i < 3; i++ {
				_, st, err := fu.FuseFrames(vis, ir)
				if err != nil {
					t.Fatal(err)
				}
				acc += st.Total.Seconds()
			}
			return acc
		}
		fpga := run(KindFPGA)
		ada := run(KindAdaptive)
		return (fpga - ada) / fpga
	}
	if g1, g4 := gain(1), gain(4); g4 <= g1 {
		t.Errorf("adaptive gain at 4 levels (%.4f) should exceed 1 level (%.4f)", g4, g1)
	}
}

func TestAdaptiveNeverLosesToStatic(t *testing.T) {
	res, err := Sweep([]EngineKind{KindNEON, KindFPGA, KindAdaptive}, PaperSizes)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range PaperSizes {
		best := res[s][KindNEON].Stages.Total
		if f := res[s][KindFPGA].Stages.Total; f < best {
			best = f
		}
		ada := res[s][KindAdaptive].Stages.Total
		if float64(ada) > 1.02*float64(best) {
			t.Errorf("%s: adaptive %v more than 2%% behind best static %v", s, ada, best)
		}
	}
}

package bench

import (
	"fmt"
	"io"
	"time"

	"zynqfusion/internal/farm"
	"zynqfusion/internal/fleet"
	"zynqfusion/internal/sim"
)

// FleetBoards is the board count M of the fleet-scale experiment.
const FleetBoards = 8

// FleetStreamCounts is the stream-count axis, trimmed in Short mode (the
// CI smoke keeps the 64-stream cell only).
func fleetStreamCounts() []int {
	if Short {
		return []int{64}
	}
	return []int{64, 256, 1024}
}

// fleetFramesPerStream keeps each placement cheap: the experiment
// measures the coordinator (placement spread, J/frame rollup), not
// per-stream steady state, which farm-scale already covers.
const fleetFramesPerStream = 2

// FleetScaleCell is one stream-count row of the fleet-scale record.
type FleetScaleCell struct {
	Streams int   `json:"streams"`
	Boards  int   `json:"boards"`
	Fused   int64 `json:"fused"`
	Dropped int64 `json:"dropped"`
	// EnergyPerFrameMJ is fleet modeled J/frame in millijoules.
	EnergyPerFrameMJ float64 `json:"energy_per_frame_mj"`
	// MaxLoad and BoundedCap pin the placement guarantee: MaxLoad must
	// not exceed the ceil(c·K/M) cap, so Imbalance stays under c (1.25).
	MaxLoad    int     `json:"max_load"`
	BoundedCap int     `json:"bounded_cap"`
	Imbalance  float64 `json:"imbalance"`
	WallMS     float64 `json:"wall_ms"`
}

// FleetMigrationCell is one pipeline-depth row of the migration cost
// curve: the same paced stream is migrated mid-run at depth D and its
// total modeled energy compared against an unmigrated reference run —
// the delta is the migration's modeled cost (one pipeline refill plus
// the re-lease of the continuation's working set).
type FleetMigrationCell struct {
	Depth     int   `json:"depth"`
	Frames    int64 `json:"frames"`
	ResumeSeq int64 `json:"resume_seq"`
	// MigratedMJ and ReferenceMJ are total modeled energy with and
	// without the migration; CostMJ their difference.
	MigratedMJ  float64 `json:"migrated_mj"`
	ReferenceMJ float64 `json:"reference_mj"`
	CostMJ      float64 `json:"cost_mj"`
	// HandoffWallMS is the wall-clock duration of the Migrate call:
	// drain the source segment, re-lease on the target.
	HandoffWallMS float64 `json:"handoff_wall_ms"`
}

// FleetScaleResult is the fleet-scale experiment's structured record.
type FleetScaleResult struct {
	Schema     string               `json:"schema"`
	Experiment string               `json:"experiment"`
	Boards     int                  `json:"boards"`
	LoadFactor float64              `json:"load_factor"`
	Cells      []FleetScaleCell     `json:"cells"`
	Migration  []FleetMigrationCell `json:"migration_cost"`
}

// FleetScale runs the fleet-scale experiment: K streams across M=8
// boards for K in the stream-count axis, plus the migration cost curve
// at pipeline depths 1, 2 and 4.
func FleetScale() (*FleetScaleResult, error) {
	res := &FleetScaleResult{
		Schema:     ResultSchema,
		Experiment: "fleet-scale",
		Boards:     FleetBoards,
		LoadFactor: fleet.DefaultLoadFactor,
	}
	for _, k := range fleetStreamCounts() {
		cell, err := fleetScaleCell(k)
		if err != nil {
			return nil, err
		}
		res.Cells = append(res.Cells, cell)
	}
	for _, depth := range []int{1, 2, 4} {
		cell, err := fleetMigrationCell(depth)
		if err != nil {
			return nil, err
		}
		res.Migration = append(res.Migration, cell)
	}
	return res, nil
}

func fleetScaleCell(k int) (FleetScaleCell, error) {
	c, err := fleet.New(fleet.Config{Boards: FleetBoards})
	if err != nil {
		return FleetScaleCell{}, err
	}
	defer c.Close()
	start := time.Now()
	for i := 0; i < k; i++ {
		_, _, err := c.Submit(farm.StreamConfig{
			ID: fmt.Sprintf("s%d", i), Seed: int64(i + 1),
			W: 32, H: 24, Engine: "neon",
			Frames: fleetFramesPerStream, QueueCap: fleetFramesPerStream,
		})
		if err != nil {
			return FleetScaleCell{}, fmt.Errorf("bench: fleet submit %d/%d: %w", i, k, err)
		}
	}
	c.Wait()
	wall := time.Since(start)
	r := c.Rollup()
	maxLoad := 0
	for _, b := range r.Boards {
		if b.Streams > maxLoad {
			maxLoad = b.Streams
		}
	}
	cell := FleetScaleCell{
		Streams: k, Boards: FleetBoards,
		Fused:            r.Totals.Fused,
		EnergyPerFrameMJ: r.Totals.EnergyPerFrame.Millijoules(),
		MaxLoad:          maxLoad,
		BoundedCap:       fleet.BoundedCap(k, FleetBoards, fleet.DefaultLoadFactor),
		Imbalance:        r.Totals.Imbalance,
		WallMS:           float64(wall.Microseconds()) / 1000,
	}
	for _, p := range r.Placements {
		cell.Dropped += p.Dropped
	}
	return cell, nil
}

func fleetMigrationCell(depth int) (FleetMigrationCell, error) {
	const frames = 40
	// The queue is sized to the frame budget so neither run drops a
	// frame — the energy delta is then the migration alone.
	cfg := farm.StreamConfig{
		ID: "mig", Seed: 9, W: 32, H: 24, Engine: "neon",
		Frames: frames, QueueCap: frames, IntervalMS: 2,
		Pipelined: true, Depth: depth,
	}
	c, err := fleet.New(fleet.Config{Boards: 2})
	if err != nil {
		return FleetMigrationCell{}, err
	}
	defer c.Close()
	s, _, err := c.Submit(cfg)
	if err != nil {
		return FleetMigrationCell{}, err
	}
	for i := 0; s.Telemetry().Fused < frames/4; i++ {
		if i > 5000 {
			return FleetMigrationCell{}, fmt.Errorf("bench: migration stream stalled at depth %d", depth)
		}
		time.Sleep(time.Millisecond)
	}
	hStart := time.Now()
	m, err := c.Migrate("mig", "", "bench")
	if err != nil {
		return FleetMigrationCell{}, err
	}
	handoff := time.Since(hStart)
	c.Wait()
	var migrated sim.Joules
	for _, p := range c.Rollup().Placements {
		migrated += p.Energy
	}

	// Unmigrated reference: same stream, one farm, free-running (pacing
	// is wall-side only and does not touch modeled energy).
	ref := cfg
	ref.IntervalMS = 0
	fm := farm.New(farm.Config{})
	defer fm.Close()
	rs, err := fm.Submit(ref)
	if err != nil {
		return FleetMigrationCell{}, err
	}
	fm.Wait()
	refEnergy := rs.Telemetry().Stages.Energy

	return FleetMigrationCell{
		Depth: depth, Frames: frames, ResumeSeq: m.ResumeSeq,
		MigratedMJ:    migrated.Millijoules(),
		ReferenceMJ:   refEnergy.Millijoules(),
		CostMJ:        (migrated - refEnergy).Millijoules(),
		HandoffWallMS: float64(handoff.Microseconds()) / 1000,
	}, nil
}

// RunFleetScale prints the fleet-scale experiment: placement spread and
// J/frame as the stream count grows across 8 boards, then the migration
// cost curve over pipeline depth.
func RunFleetScale(w io.Writer) error {
	res, err := FleetScale()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "fleet of %d boards, bounded-load factor %.2f\n", res.Boards, res.LoadFactor)
	fmt.Fprintf(w, "%-8s %8s %8s %12s %9s %9s %10s %12s\n",
		"streams", "fused", "dropped", "J/frame(mJ)", "maxload", "cap", "imbalance", "wall(ms)")
	for _, c := range res.Cells {
		fmt.Fprintf(w, "%-8d %8d %8d %12.4f %9d %9d %10.3f %12.1f\n",
			c.Streams, c.Fused, c.Dropped, c.EnergyPerFrameMJ,
			c.MaxLoad, c.BoundedCap, c.Imbalance, c.WallMS)
	}
	fmt.Fprintf(w, "\nmigration cost vs pipeline depth (stream of %d frames, migrated mid-run)\n",
		res.Migration[0].Frames)
	fmt.Fprintf(w, "%-6s %10s %12s %12s %10s %14s\n",
		"depth", "resume", "migrated(mJ)", "baseline(mJ)", "cost(mJ)", "handoff(ms)")
	for _, m := range res.Migration {
		fmt.Fprintf(w, "%-6d %10d %12.4f %12.4f %10.4f %14.3f\n",
			m.Depth, m.ResumeSeq, m.MigratedMJ, m.ReferenceMJ, m.CostMJ, m.HandoffWallMS)
	}
	fmt.Fprintln(w, "bounded-load consistent hashing caps imbalance at the load factor by construction;")
	fmt.Fprintln(w, "migration cost is the modeled pipeline refill — energy, not pixels (bit-identical)")
	return nil
}

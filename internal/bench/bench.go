// Package bench is the experiment harness: it regenerates every table and
// figure of the paper's evaluation (section VII) from the modeled system,
// printing rows in the paper's shape alongside the published reference
// values. The cmd/fusionbench tool and the root benchmark suite drive it.
package bench

import (
	"fmt"
	"io"

	"zynqfusion/internal/camera"
	"zynqfusion/internal/engine"
	"zynqfusion/internal/frame"
	"zynqfusion/internal/pipeline"
	"zynqfusion/internal/sched"
	"zynqfusion/internal/sim"
)

// Size is one evaluation frame geometry.
type Size struct{ W, H int }

func (s Size) String() string { return fmt.Sprintf("%dx%d", s.W, s.H) }

// PaperSizes are the five frame sizes of Fig. 9/10: the full 88x72 sensor
// frame and the four smaller extractions.
var PaperSizes = []Size{{32, 24}, {35, 35}, {40, 40}, {64, 48}, {88, 72}}

// Frames is the per-measurement frame count: "the results were obtained by
// profiling when 10 input frames were decomposed, fused and reconstructed
// continuously".
const Frames = 10

// EngineKind names a fixed engine configuration.
type EngineKind string

// The engine configurations of the paper plus the adaptive extensions.
const (
	KindARM            EngineKind = "arm"
	KindNEON           EngineKind = "neon"
	KindFPGA           EngineKind = "fpga"
	KindAdaptive       EngineKind = "adaptive"
	KindAdaptiveOnline EngineKind = "adaptive-online"
)

// NewEngine constructs a fresh engine of the given kind.
func NewEngine(kind EngineKind) (engine.Engine, error) {
	switch kind {
	case KindARM:
		return engine.NewARM(), nil
	case KindNEON:
		return engine.NewNEON(false), nil
	case KindFPGA:
		return engine.NewFPGA(), nil
	case KindAdaptive:
		return sched.NewAdaptive(sched.Threshold{}), nil
	case KindAdaptiveOnline:
		return sched.NewAdaptive(sched.NewOnline(2)), nil
	default:
		return nil, fmt.Errorf("bench: unknown engine kind %q", kind)
	}
}

// SourcePair returns deterministic visible/thermal test frames at a size.
func SourcePair(s Size) (vis, ir *frame.Frame) {
	sc := camera.NewScene(s.W, s.H, 42)
	return sc.Visible(), sc.Thermal()
}

// Measurement is one (size, engine) cell of the evaluation.
type Measurement struct {
	Size    Size
	Kind    EngineKind
	Stages  pipeline.StageTimes // accumulated over Frames fusions
	Profile pipeline.StageTimes // per-frame mean
}

// Measure fuses Frames frame pairs at the given size on a fresh engine.
func Measure(kind EngineKind, s Size) (Measurement, error) {
	e, err := NewEngine(kind)
	if err != nil {
		return Measurement{}, err
	}
	vis, ir := SourcePair(s)
	fu := pipeline.New(e, pipeline.Config{IncludeIO: true})
	var acc pipeline.StageTimes
	for i := 0; i < Frames; i++ {
		_, st, err := fu.FuseFrames(vis, ir)
		if err != nil {
			return Measurement{}, fmt.Errorf("bench: %s %s: %w", kind, s, err)
		}
		acc.Add(st)
	}
	return Measurement{Size: s, Kind: kind, Stages: acc}, nil
}

// Sweep measures every engine kind at every size.
func Sweep(kinds []EngineKind, sizes []Size) (map[Size]map[EngineKind]Measurement, error) {
	out := make(map[Size]map[EngineKind]Measurement)
	for _, s := range sizes {
		out[s] = make(map[EngineKind]Measurement)
		for _, k := range kinds {
			m, err := Measure(k, s)
			if err != nil {
				return nil, err
			}
			out[s][k] = m
		}
	}
	return out, nil
}

// ResultSchema is the stable schema id stamped into every structured
// experiment record (the BENCH_<id>.json files): consumers match on it,
// and diffs across PRs stay reviewable because the record shape only
// changes with the schema version.
const ResultSchema = "zynqfusion/bench-result/v1"

// Experiment regenerates one table or figure.
type Experiment struct {
	ID    string
	Title string
	Run   func(w io.Writer) error
	// JSON produces the experiment's structured result record (stamped
	// with ResultSchema, deterministic key order) for BENCH_<id>.json
	// emission; nil for text-only experiments.
	JSON func() (any, error)
}

// All returns every experiment in stable order.
func All() []Experiment {
	exps := []Experiment{
		{ID: "fig2", Title: "Fig. 2 — profile of the fusion stages (ARM, 88x72)", Run: RunFig2},
		{ID: "table1", Title: "Table I — wave engine implementation complexity", Run: RunTableI},
		{ID: "fig9a", Title: "Fig. 9a — forward DT-CWT time vs frame size", Run: runFig9("fig9a")},
		{ID: "fig9b", Title: "Fig. 9b — total fusion time vs frame size", Run: runFig9("fig9b")},
		{ID: "fig9c", Title: "Fig. 9c — inverse DT-CWT time vs frame size", Run: runFig9("fig9c")},
		{ID: "fig10", Title: "Fig. 10 — total energy vs frame size", Run: RunFig10},
		{ID: "adaptive", Title: "Extension — adaptive engine selection (paper section VIII)", Run: RunAdaptive},
		{ID: "levels", Title: "Extension — decomposition-level sweep (section VII protocol)", Run: RunLevelsSweep},
		{ID: "ablation-bus", Title: "Ablation — GP port vs ACP DMA (section V)", Run: RunAblationBus},
		{ID: "ablation-buffer", Title: "Ablation — double vs single buffering (Fig. 5)", Run: RunAblationBuffer},
		{ID: "ablation-cmdqueue", Title: "Ablation — future-work driver command queue", Run: RunAblationCmdQueue},
		{ID: "ablation-fixedpoint", Title: "Ablation — Q16.16 vs float32 wave-engine datapath", Run: RunAblationFixedPoint},
		{ID: "ablation-quality", Title: "Ablation — DWT vs DT-CWT fusion quality (section III)", Run: RunAblationQuality},
		{ID: "farm-scale", Title: "Extension — farm scaling: throughput and J/frame vs stream count", Run: RunFarmScale},
		{ID: "dvfs-pareto", Title: "Extension — DVFS energy-vs-deadline Pareto frontier (J/frame vs fps target)", Run: RunDVFSPareto},
		{ID: "dvfs-farm", Title: "Extension — DVFS deadline scenarios: tight/loose deadlines x 1/4/16 streams", Run: RunDVFSFarm},
		{ID: "split-frontier", Title: "Extension — cooperative CPU+FPGA split frontier: ratio x size x operating point",
			Run:  RunSplitFrontier,
			JSON: func() (any, error) { return SplitFrontier() }},
		{ID: "pipeline-throughput", Title: "Extension — inter-frame pipelined execution: depth x size x operating point",
			Run:  RunPipelineThroughput,
			JSON: func() (any, error) { return PipelineThroughput() }},
		{ID: "mem-steadystate", Title: "Extension — zero-copy frame stores: allocs/frame, GC and arena footprint, 1-64 streams",
			Run:  RunMemSteadyState,
			JSON: func() (any, error) { return MemSteadyState() }},
		{ID: "kernel-speedup", Title: "Extension — tiled multi-core kernel engine vs scalar baseline: wall-clock, outputs pinned",
			Run:  RunKernelSpeedup,
			JSON: func() (any, error) { return KernelSpeedup() }},
		{ID: "fleet-scale", Title: "Extension — fleet scaling: 64-1024 streams over 8 boards, placement imbalance, migration cost",
			Run:  RunFleetScale,
			JSON: func() (any, error) { return FleetScale() }},
	}
	return exps // declaration order
}

// Find returns the experiment with the given id.
func Find(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// fmtPct formats a saving of a versus base in percent.
func fmtPct(a, base sim.Time) string {
	if base == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%+.1f%%", (float64(a)/float64(base)-1)*100)
}

package bench

import (
	"fmt"
	"io"

	"zynqfusion/internal/farm"
	"zynqfusion/internal/obs"
)

// TraceDemo runs a short two-stream pipelined farm to completion and
// writes its merged Chrome trace_event JSON to w — the payload behind
// `fusionbench -trace out.json`, loadable in Perfetto or chrome://tracing.
// One process per stream with a track per pipeline station, plus the
// governor's fpga-lease process, so the stage overlap and the shared wave
// engine's interleaving are visible on one timeline.
func TraceDemo(w io.Writer) error {
	fm := farm.New(farm.Config{})
	defer fm.Close()
	for i := 0; i < 2; i++ {
		cfg := farm.StreamConfig{
			Seed:      int64(i + 1),
			Frames:    12,
			QueueCap:  12,
			Pipelined: true,
			Depth:     3,
		}
		if _, err := fm.Submit(cfg); err != nil {
			return fmt.Errorf("bench: trace demo stream %d: %w", i+1, err)
		}
	}
	fm.Wait()
	views, _ := fm.Trace("", 0)
	return obs.WriteTrace(w, views)
}

package signal

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randTaps(rng *rand.Rand) Taps {
	var t Taps
	for i := range t {
		t[i] = float32(rng.Float64()*2 - 1)
	}
	return t
}

func TestNewTapsPlacement(t *testing.T) {
	taps := NewTaps([]float32{1, 2, 3}, 4)
	if taps[4] != 1 || taps[5] != 2 || taps[6] != 3 || taps[0] != 0 || taps[11] != 0 {
		t.Errorf("placement wrong: %v", taps)
	}
}

func TestNewTapsRejectsOverflow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewTaps(make([]float32, 13), 0)
}

func TestShiftedMovesCoefficients(t *testing.T) {
	taps := NewTaps([]float32{5}, 3)
	s := taps.Shifted(2)
	if s[5] != 5 || s[3] != 0 {
		t.Errorf("shift wrong: %v", s)
	}
	back := s.Shifted(-2)
	if back != taps {
		t.Error("shift round trip failed")
	}
}

func TestAnalyzeRefImpulse(t *testing.T) {
	// An impulse in the padded input reads the taps back out.
	var al, ah Taps
	for j := range al {
		al[j] = float32(j + 1)
		ah[j] = float32(-(j + 1))
	}
	m := 4
	px := make([]float32, 2*m+TapCount)
	px[7] = 1 // within the window of several outputs
	lo := make([]float32, m)
	hi := make([]float32, m)
	AnalyzeRef(&al, &ah, px, lo, hi)
	// Output m covers px[2m .. 2m+11]; px[7] contributes al[7-2m].
	for i := 0; i < m; i++ {
		j := 7 - 2*i
		var want float32
		if j >= 0 && j < TapCount {
			want = al[j]
		}
		if lo[i] != want {
			t.Errorf("lo[%d]=%g want %g", i, lo[i], want)
		}
		if hi[i] != -want {
			t.Errorf("hi[%d]=%g want %g", i, hi[i], want)
		}
	}
}

func TestAnalyzeRefLinearity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	al, ah := randTaps(rng), randTaps(rng)
	m := 8
	a := make([]float32, 2*m+TapCount)
	b := make([]float32, 2*m+TapCount)
	sum := make([]float32, 2*m+TapCount)
	for i := range a {
		a[i] = float32(rng.Float64()*10 - 5)
		b[i] = float32(rng.Float64()*10 - 5)
		sum[i] = a[i] + b[i]
	}
	loA := make([]float32, m)
	hiA := make([]float32, m)
	loB := make([]float32, m)
	hiB := make([]float32, m)
	loS := make([]float32, m)
	hiS := make([]float32, m)
	AnalyzeRef(&al, &ah, a, loA, hiA)
	AnalyzeRef(&al, &ah, b, loB, hiB)
	AnalyzeRef(&al, &ah, sum, loS, hiS)
	for i := 0; i < m; i++ {
		if math.Abs(float64(loS[i]-(loA[i]+loB[i]))) > 1e-3 {
			t.Fatalf("lo not linear at %d", i)
		}
	}
}

func TestSynthesizeRefImpulse(t *testing.T) {
	var sl, sh Taps
	for j := range sl {
		sl[j] = float32(10 + j)
		sh[j] = float32(20 + j)
	}
	m := 4
	plo := make([]float32, m+SynthesisPad)
	phi := make([]float32, m+SynthesisPad)
	plo[SynthesisPad] = 1 // coefficient for output pair 0 at k=0
	out := make([]float32, 2*m)
	SynthesizeRef(&sl, &sh, plo, phi, out)
	// out[2m] = sum_k sl[2k] plo[m+5-k]; plo[5]=1 contributes sl[2k] when
	// m+5-k == 5, i.e. k == m.
	for i := 0; i < m; i++ {
		if i < TapCount/2 {
			if out[2*i] != sl[2*i] || out[2*i+1] != sl[2*i+1] {
				t.Errorf("pair %d: (%g,%g) want (%g,%g)", i, out[2*i], out[2*i+1], sl[2*i], sl[2*i+1])
			}
		}
	}
}

func TestPadPeriodicWraps(t *testing.T) {
	x := []float32{0, 1, 2, 3, 4, 5}
	px := PadPeriodic(x, nil)
	if len(px) != len(x)+TapCount {
		t.Fatalf("len %d", len(px))
	}
	for i := range px {
		want := x[((i-AnalysisPad)%6+6)%6]
		if px[i] != want {
			t.Fatalf("px[%d]=%g want %g", i, px[i], want)
		}
	}
}

func TestPadPeriodicReusesBuffer(t *testing.T) {
	x := make([]float32, 32)
	buf := make([]float32, 0, 64)
	px := PadPeriodic(x, buf)
	if cap(px) != 64 {
		t.Error("buffer not reused")
	}
}

func TestPadPeriodicRejectsOddLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for odd length")
		}
	}()
	PadPeriodic(make([]float32, 5), nil)
}

func TestPadPeriodicPairsWraps(t *testing.T) {
	c := []float32{1, 2, 3, 4}
	p := PadPeriodicPairs(c, nil)
	if len(p) != len(c)+SynthesisPad {
		t.Fatalf("len %d", len(p))
	}
	for i := range p {
		want := c[((i-SynthesisPad)%4+4)%4]
		if p[i] != want {
			t.Fatalf("p[%d]=%g want %g", i, p[i], want)
		}
	}
}

func TestRotate(t *testing.T) {
	x := []float32{0, 1, 2, 3}
	dst := make([]float32, 4)
	Rotate(dst, x, 1)
	want := []float32{1, 2, 3, 0}
	for i := range dst {
		if dst[i] != want[i] {
			t.Fatalf("rotate: %v", dst)
		}
	}
	Rotate(dst, x, -1)
	if dst[0] != 3 {
		t.Errorf("negative rotate: %v", dst)
	}
	Rotate(dst, x, 0)
	for i := range dst {
		if dst[i] != x[i] {
			t.Fatal("zero rotate should copy")
		}
	}
}

func TestRotateQuickInverse(t *testing.T) {
	fn := func(seed int64, byRaw int8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(60)
		by := int(byRaw)
		x := make([]float32, n)
		for i := range x {
			x[i] = rng.Float32()
		}
		a := make([]float32, n)
		b := make([]float32, n)
		Rotate(a, x, by)
		Rotate(b, a, -by)
		for i := range b {
			if b[i] != x[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestRefKernelImplementsContract(t *testing.T) {
	var k Kernel = RefKernel{}
	rng := rand.New(rand.NewSource(3))
	al, ah := randTaps(rng), randTaps(rng)
	m := 6
	px := make([]float32, 2*m+TapCount)
	for i := range px {
		px[i] = rng.Float32()
	}
	lo := make([]float32, m)
	hi := make([]float32, m)
	k.Analyze(&al, &ah, px, lo, hi)
	wantLo := make([]float32, m)
	wantHi := make([]float32, m)
	AnalyzeRef(&al, &ah, px, wantLo, wantHi)
	for i := range lo {
		if lo[i] != wantLo[i] || hi[i] != wantHi[i] {
			t.Fatal("RefKernel must match AnalyzeRef exactly")
		}
	}
}

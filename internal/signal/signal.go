// Package signal provides the one-dimensional filtering machinery beneath
// the wavelet transforms: the 12-tap dual-output polyphase kernel contract
// shared by every execution engine, periodic extension helpers, and a
// scalar reference kernel.
//
// The kernel contract mirrors the paper's HLS wavelet engine (Fig. 4): the
// analysis datapath consumes two samples per step through a 12-deep shift
// register and produces one highpass/lowpass output pair per step after a
// six-pair warm-up; the synthesis datapath consumes one lowpass/highpass
// coefficient pair per step and emits two interleaved output samples.
// Filters shorter than 12 taps are zero-padded, exactly as a fixed-geometry
// hardware engine would load them.
package signal

// TapCount is the fixed filter length of the engine datapath. The paper's
// HLS engine stores 12 coefficients per filter (coeff_register[0..11]).
const TapCount = 12

// halfTaps is the per-phase synthesis filter length (TapCount / 2).
const halfTaps = TapCount / 2

// Taps is one zero-padded engine filter.
type Taps [TapCount]float32

// NewTaps places coeffs into a Taps array at the given offset, zero-filling
// the rest. It panics if the coefficients do not fit, since filter banks
// are package-level constants and a bad placement is a programming error.
func NewTaps(coeffs []float32, offset int) Taps {
	var t Taps
	if offset < 0 || offset+len(coeffs) > TapCount {
		panic("signal.NewTaps: coefficients do not fit in the 12-tap datapath")
	}
	copy(t[offset:], coeffs)
	return t
}

// Shifted returns the taps delayed by n slots (tree-B level-1 filters are
// the tree-A filters delayed by one sample). It panics if nonzero taps
// would be shifted out.
func (t Taps) Shifted(n int) Taps {
	var s Taps
	for i := TapCount - 1; i >= 0; i-- {
		j := i + n
		if j < 0 || j >= TapCount {
			if t[i] != 0 {
				panic("signal: Shifted would drop nonzero taps")
			}
			continue
		}
		s[j] = t[i]
	}
	return s
}

// Reversed returns the time-reversed taps (q-shift-style tree-B filters at
// levels >= 2 are the time reverse of tree A).
func (t Taps) Reversed() Taps {
	var r Taps
	for i := range t {
		r[TapCount-1-i] = t[i]
	}
	return r
}

// Kernel is the execution contract for the inner filter loops. The three
// engines (ARM scalar, NEON, FPGA) implement Kernel; the wavelet layer is
// engine-agnostic.
//
// Analyze: px has length 2*M+TapCount; it writes M coefficients into each
// of lo and hi:
//
//	lo[m] = sum_j al[j] * px[2m+j]
//	hi[m] = sum_j ah[j] * px[2m+j]
//
// Synthesize: plo and phi have length M+halfTaps-1; it writes 2*M samples
// into out:
//
//	out[2m]   = sum_k sl[2k]*plo[m+halfTaps-1-k] + sh[2k]*phi[m+halfTaps-1-k]
//	out[2m+1] = sum_k sl[2k+1]*plo[m+halfTaps-1-k] + sh[2k+1]*phi[m+halfTaps-1-k]
//
// for k in [0, halfTaps). Implementations must be numerically equivalent to
// the reference kernel up to float32 association.
type Kernel interface {
	Analyze(al, ah *Taps, px []float32, lo, hi []float32)
	Synthesize(sl, sh *Taps, plo, phi []float32, out []float32)
}

// AnalyzeRef is the scalar reference analysis filter. It is the ground
// truth the accelerated kernels are tested against.
func AnalyzeRef(al, ah *Taps, px []float32, lo, hi []float32) {
	m := len(lo)
	if len(hi) != m || len(px) != 2*m+TapCount {
		panic("signal.AnalyzeRef: inconsistent lengths")
	}
	for i := 0; i < m; i++ {
		var accL, accH float32
		win := px[2*i : 2*i+TapCount]
		for j := 0; j < TapCount; j++ {
			accL += al[j] * win[j]
			accH += ah[j] * win[j]
		}
		lo[i] = accL
		hi[i] = accH
	}
}

// SynthesizeRef is the scalar reference synthesis filter.
func SynthesizeRef(sl, sh *Taps, plo, phi []float32, out []float32) {
	m := len(out) / 2
	if len(out) != 2*m || len(plo) != m+halfTaps-1 || len(phi) != m+halfTaps-1 {
		panic("signal.SynthesizeRef: inconsistent lengths")
	}
	for i := 0; i < m; i++ {
		var even, odd float32
		base := i + halfTaps - 1
		for k := 0; k < halfTaps; k++ {
			l := plo[base-k]
			h := phi[base-k]
			even += sl[2*k]*l + sh[2*k]*h
			odd += sl[2*k+1]*l + sh[2*k+1]*h
		}
		out[2*i] = even
		out[2*i+1] = odd
	}
}

// RefKernel is the scalar reference implementation of Kernel.
type RefKernel struct{}

// Analyze implements Kernel.
func (RefKernel) Analyze(al, ah *Taps, px []float32, lo, hi []float32) {
	AnalyzeRef(al, ah, px, lo, hi)
}

// Synthesize implements Kernel.
func (RefKernel) Synthesize(sl, sh *Taps, plo, phi []float32, out []float32) {
	SynthesizeRef(sl, sh, plo, phi, out)
}

// PadPeriodic builds the padded analysis input for a signal of even length
// n: px[i] = x[(i - AnalysisPad) mod n], len(px) = n + TapCount. Periodic
// extension keeps every perfect-reconstruction filter bank exactly
// invertible regardless of tap symmetry.
func PadPeriodic(x []float32, px []float32) []float32 {
	n := len(x)
	if n == 0 || n%2 != 0 {
		panic("signal.PadPeriodic: signal length must be even and nonzero")
	}
	need := n + TapCount
	if cap(px) < need {
		px = make([]float32, need)
	}
	px = px[:need]
	for i := range px {
		px[i] = x[mod(i-AnalysisPad, n)]
	}
	return px
}

// AnalysisPad is the number of leading wrap-around samples in a padded
// analysis input. With px[i] = x[i-AnalysisPad], coefficient m covers
// x[2m-AnalysisPad .. 2m-AnalysisPad+11].
const AnalysisPad = 10

// SynthesisPad is the number of leading wrap-around coefficients in a
// padded synthesis input.
const SynthesisPad = halfTaps - 1

// PadPeriodicPairs builds the padded synthesis input for a subband of
// length m: p[i] = c[(i - SynthesisPad) mod m], len(p) = m + SynthesisPad.
func PadPeriodicPairs(c []float32, p []float32) []float32 {
	m := len(c)
	if m == 0 {
		panic("signal.PadPeriodicPairs: empty subband")
	}
	need := m + SynthesisPad
	if cap(p) < need {
		p = make([]float32, need)
	}
	p = p[:need]
	for i := range p {
		p[i] = c[mod(i-SynthesisPad, m)]
	}
	return p
}

// Rotate writes rotate(x, by) into dst: dst[i] = x[(i+by) mod n]. dst and x
// must not alias unless identical lengths and by == 0. The rotation is two
// block copies — a left part sourced from x[s:] and a wrapped part from
// x[:s] — so no per-element index arithmetic runs on this hot path.
func Rotate(dst, x []float32, by int) {
	n := len(x)
	if len(dst) != n {
		panic("signal.Rotate: length mismatch")
	}
	if n == 0 {
		return
	}
	s := by % n
	if s < 0 {
		s += n
	}
	copy(dst, x[s:])
	copy(dst[n-s:], x[:s])
}

func mod(a, n int) int {
	a %= n
	if a < 0 {
		a += n
	}
	return a
}

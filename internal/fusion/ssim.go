package fusion

import (
	"math"

	"zynqfusion/internal/frame"
)

// SSIM computes the mean structural similarity index between two frames
// over 8x8 windows with the standard constants (K1=0.01, K2=0.03, L=255).
// It returns a value in (-1, 1], 1 for identical images.
func SSIM(a, b *frame.Frame) (float64, error) {
	if !a.SameSize(b) {
		return 0, frame.ErrSizeMismatch
	}
	const win = 8
	if a.W < win || a.H < win {
		return 0, frame.ErrSizeMismatch
	}
	const (
		c1 = (0.01 * 255) * (0.01 * 255)
		c2 = (0.03 * 255) * (0.03 * 255)
	)
	var sum float64
	var n int
	for y := 0; y+win <= a.H; y += win {
		for x := 0; x+win <= a.W; x += win {
			ma, mb, va, vb, cov := windowStats(a, b, x, y, win)
			num := (2*ma*mb + c1) * (2*cov + c2)
			den := (ma*ma + mb*mb + c1) * (va + vb + c2)
			sum += num / den
			n++
		}
	}
	if n == 0 {
		return 0, nil
	}
	return sum / float64(n), nil
}

func windowStats(a, b *frame.Frame, x0, y0, win int) (ma, mb, va, vb, cov float64) {
	inv := 1.0 / float64(win*win)
	for y := y0; y < y0+win; y++ {
		for x := x0; x < x0+win; x++ {
			ma += float64(a.At(x, y))
			mb += float64(b.At(x, y))
		}
	}
	ma *= inv
	mb *= inv
	for y := y0; y < y0+win; y++ {
		for x := x0; x < x0+win; x++ {
			da := float64(a.At(x, y)) - ma
			db := float64(b.At(x, y)) - mb
			va += da * da
			vb += db * db
			cov += da * db
		}
	}
	va *= inv
	vb *= inv
	cov *= inv
	return ma, mb, va, vb, cov
}

// FusionSSIM scores a fused image as the mean of its SSIM against both
// sources — a structural analogue of FusionMI.
func FusionSSIM(a, b, fused *frame.Frame) (float64, error) {
	sa, err := SSIM(a, fused)
	if err != nil {
		return 0, err
	}
	sb, err := SSIM(b, fused)
	if err != nil {
		return 0, err
	}
	return (sa + sb) / 2, nil
}

// MeanGradientRatio reports how much of the sources' mean gradient
// magnitude survives into the fused image (sharpness retention; > 1 means
// the fusion sharpened beyond both sources).
func MeanGradientRatio(a, b, fused *frame.Frame) (float64, error) {
	if !a.SameSize(b) || !a.SameSize(fused) {
		return 0, frame.ErrSizeMismatch
	}
	ga, _ := sobel(a)
	gb, _ := sobel(b)
	gf, _ := sobel(fused)
	var src, dst float64
	for i := range gf {
		src += math.Max(ga[i], gb[i])
		dst += gf[i]
	}
	if src == 0 {
		return 1, nil
	}
	return dst / src, nil
}

package fusion

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"testing"

	"zynqfusion/internal/bufpool"
	"zynqfusion/internal/frame"
	"zynqfusion/internal/kernels"
	"zynqfusion/internal/signal"
	"zynqfusion/internal/wavelet"
)

// buildPyramidPair makes two shaped, coefficient-filled pyramids of the
// same geometry plus an empty fusion destination.
func buildPyramidPair(t testing.TB, w, h, levels int, seed int64) (a, b, dst *wavelet.DTPyramid) {
	t.Helper()
	dt := wavelet.NewDTCWT(wavelet.NewXfm(signal.RefKernel{}), wavelet.DefaultTreeBanks())
	rng := rand.New(rand.NewSource(seed))
	mk := func() *wavelet.DTPyramid {
		img := frame.New(w, h)
		for i := range img.Pix {
			img.Pix[i] = float32(rng.NormFloat64() * 60)
		}
		p, err := dt.Forward(img, levels)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	a, b = mk(), mk()
	dst = &wavelet.DTPyramid{}
	if err := dt.ShapePyramid(dst, w, h, levels); err != nil {
		t.Fatal(err)
	}
	return a, b, dst
}

func comparePyramidBits(t *testing.T, label string, a, b *wavelet.DTPyramid) {
	t.Helper()
	for lv := range a.Levels {
		for bi := range a.Levels[lv].Bands {
			ba, bb := a.Levels[lv].Bands[bi], b.Levels[lv].Bands[bi]
			for i := range ba.Re {
				if math.Float32bits(ba.Re[i]) != math.Float32bits(bb.Re[i]) ||
					math.Float32bits(ba.Im[i]) != math.Float32bits(bb.Im[i]) {
					t.Fatalf("%s: level %d band %d differs at %d", label, lv+1, bi, i)
				}
			}
		}
	}
	for c := range a.LLs {
		for i := range a.LLs[c].Pix {
			if math.Float32bits(a.LLs[c].Pix[i]) != math.Float32bits(b.LLs[c].Pix[i]) {
				t.Fatalf("%s: LL %d differs at %d", label, c, i)
			}
		}
	}
}

// TestWorkspaceRulesBitExact pins every built-in rule's workspace path —
// pooled scratch, tiled dispatch, any worker count — bit-for-bit against
// the legacy sequential FuseInto.
func TestWorkspaceRulesBitExact(t *testing.T) {
	prev := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(prev)
	rules := []Rule{
		MaxMagnitude{},
		Average{},
		WindowEnergy{R: 0},
		WindowEnergy{R: 1},
		WindowEnergy{R: 2},
	}
	for _, sz := range []struct{ w, h int }{{7, 5}, {33, 31}, {64, 48}} {
		a, b, want := buildPyramidPair(t, sz.w, sz.h, 2, int64(sz.w))
		for _, rule := range rules {
			if err := FuseInto(rule, want, a, b); err != nil {
				t.Fatal(err)
			}
			ref := want.CloneStructure()
			for _, workers := range []int{1, 4} {
				for _, pooled := range []bool{false, true} {
					label := fmt.Sprintf("%s %dx%d workers=%d pooled=%v", rule.Name(), sz.w, sz.h, workers, pooled)
					var pool *bufpool.Pool
					if pooled {
						pool = bufpool.New(bufpool.Options{})
					}
					wk := kernels.NewWorkers(workers)
					ws := NewWorkspace(pool, wk)
					_, _, got := buildPyramidPair(t, sz.w, sz.h, 2, int64(sz.w))
					if err := FuseIntoWorkspace(ws, rule, got, a, b); err != nil {
						t.Fatal(err)
					}
					comparePyramidBits(t, label, ref, got)
					ws.Release()
					if pooled {
						if n := pool.Stats().Outstanding; n != 0 {
							t.Fatalf("%s: %d scratch leases left outstanding", label, n)
						}
					}
					wk.Close()
				}
			}
		}
	}
}

// TestWorkspaceFusionZeroAllocs pins the satellite claim: through a
// workspace, WindowEnergy fusion performs zero steady-state allocations —
// the activity maps that used to be two fresh planes per band per frame
// come from pooled scratch.
func TestWorkspaceFusionZeroAllocs(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	a, b, dst := buildPyramidPair(t, 64, 48, 2, 3)
	for _, workers := range []int{1, 4} {
		wk := kernels.NewWorkers(workers)
		ws := NewWorkspace(bufpool.New(bufpool.Options{}), wk)
		rule := WindowEnergy{R: 1}
		for i := 0; i < 3; i++ { // warm scratch and the worker pool
			if err := FuseIntoWorkspace(ws, rule, dst, a, b); err != nil {
				t.Fatal(err)
			}
		}
		allocs := testing.AllocsPerRun(10, func() {
			if err := FuseIntoWorkspace(ws, rule, dst, a, b); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Fatalf("workers=%d: window-energy fusion allocates %.1f per frame, want 0", workers, allocs)
		}
		ws.Release()
		wk.Close()
	}
}

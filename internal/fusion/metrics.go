package fusion

import (
	"math"

	"zynqfusion/internal/frame"
)

// Metrics in this file evaluate fused-image quality. The paper's related
// work (Mohamed & El-Den) applies five measures to fusion output; we
// implement the standard set: entropy, spatial frequency, mutual
// information against each source, and the Xydeas-Petrovic edge-transfer
// measure Q^AB/F.

// Entropy returns the Shannon entropy (bits/pixel) of the 8-bit-quantized
// frame. Higher entropy indicates more information content.
func Entropy(f *frame.Frame) float64 {
	hist := histogram256(f)
	n := float64(len(f.Pix))
	if n == 0 {
		return 0
	}
	var e float64
	for _, c := range hist {
		if c == 0 {
			continue
		}
		p := float64(c) / n
		e -= p * math.Log2(p)
	}
	return e
}

// SpatialFrequency measures overall activity as the root of the mean
// squared horizontal and vertical first differences. Higher is sharper.
func SpatialFrequency(f *frame.Frame) float64 {
	if f.W < 2 || f.H < 2 {
		return 0
	}
	var rf, cf float64
	for y := 0; y < f.H; y++ {
		for x := 1; x < f.W; x++ {
			d := float64(f.At(x, y) - f.At(x-1, y))
			rf += d * d
		}
	}
	for y := 1; y < f.H; y++ {
		for x := 0; x < f.W; x++ {
			d := float64(f.At(x, y) - f.At(x, y-1))
			cf += d * d
		}
	}
	n := float64(f.W * f.H)
	return math.Sqrt(rf/n + cf/n)
}

// MutualInformation returns the mutual information (bits) between the
// 8-bit-quantized intensities of a and b. It is symmetric and zero for
// independent images.
func MutualInformation(a, b *frame.Frame) (float64, error) {
	if !a.SameSize(b) {
		return 0, frame.ErrSizeMismatch
	}
	n := len(a.Pix)
	if n == 0 {
		return 0, nil
	}
	ab := a.Bytes()
	bb := b.Bytes()
	joint := make([]int, 256*256)
	var ha, hb [256]int
	for i := 0; i < n; i++ {
		joint[int(ab[i])*256+int(bb[i])]++
		ha[ab[i]]++
		hb[bb[i]]++
	}
	nf := float64(n)
	var mi float64
	for va := 0; va < 256; va++ {
		if ha[va] == 0 {
			continue
		}
		pa := float64(ha[va]) / nf
		row := joint[va*256 : va*256+256]
		for vb, c := range row {
			if c == 0 {
				continue
			}
			pj := float64(c) / nf
			pb := float64(hb[vb]) / nf
			mi += pj * math.Log2(pj/(pa*pb))
		}
	}
	return mi, nil
}

// FusionMI is the standard MI-based fusion score: MI(a,fused)+MI(b,fused).
func FusionMI(a, b, fused *frame.Frame) (float64, error) {
	ma, err := MutualInformation(a, fused)
	if err != nil {
		return 0, err
	}
	mb, err := MutualInformation(b, fused)
	if err != nil {
		return 0, err
	}
	return ma + mb, nil
}

// QABF computes the Xydeas-Petrovic gradient-based fusion quality measure
// Q^AB/F in [0, 1]: how much edge strength and orientation information from
// the sources survives into the fused image, weighted by source edge
// strength.
func QABF(a, b, fused *frame.Frame) (float64, error) {
	if !a.SameSize(b) || !a.SameSize(fused) {
		return 0, frame.ErrSizeMismatch
	}
	ga, aa := sobel(a)
	gb, ab := sobel(b)
	gf, af := sobel(fused)

	// Standard constants from the Xydeas-Petrovic paper.
	const (
		gammaG, kG, sigmaG = 0.9994, -15.0, 0.5
		gammaA, kA, sigmaA = 0.9879, -22.0, 0.8
	)
	edgePreserve := func(gs, as, gfv, afv float64) float64 {
		var gq float64
		switch {
		case gs == 0 && gfv == 0:
			gq = 1
		case gs > gfv:
			gq = gfv / gs
		case gfv > 0:
			gq = gs / gfv
		}
		aq := 1 - math.Abs(as-afv)/(math.Pi/2)
		qg := gammaG / (1 + math.Exp(kG*(gq-sigmaG)))
		qa := gammaA / (1 + math.Exp(kA*(aq-sigmaA)))
		return qg * qa
	}

	var num, den float64
	for i := range ga {
		qaf := edgePreserve(ga[i], aa[i], gf[i], af[i])
		qbf := edgePreserve(gb[i], ab[i], gf[i], af[i])
		num += qaf*ga[i] + qbf*gb[i]
		den += ga[i] + gb[i]
	}
	if den == 0 {
		return 1, nil
	}
	return num / den, nil
}

// sobel returns per-pixel gradient magnitude and orientation (absolute
// angle folded into [0, pi/2]).
func sobel(f *frame.Frame) (mag, ang []float64) {
	mag = make([]float64, len(f.Pix))
	ang = make([]float64, len(f.Pix))
	at := func(x, y int) float64 {
		if x < 0 {
			x = 0
		}
		if y < 0 {
			y = 0
		}
		if x >= f.W {
			x = f.W - 1
		}
		if y >= f.H {
			y = f.H - 1
		}
		return float64(f.At(x, y))
	}
	for y := 0; y < f.H; y++ {
		for x := 0; x < f.W; x++ {
			gx := at(x+1, y-1) + 2*at(x+1, y) + at(x+1, y+1) -
				at(x-1, y-1) - 2*at(x-1, y) - at(x-1, y+1)
			gy := at(x-1, y+1) + 2*at(x, y+1) + at(x+1, y+1) -
				at(x-1, y-1) - 2*at(x, y-1) - at(x+1, y-1)
			i := y*f.W + x
			mag[i] = math.Hypot(gx, gy)
			if gx == 0 && gy == 0 {
				ang[i] = 0
			} else {
				ang[i] = math.Abs(math.Atan2(gy, gx))
				if ang[i] > math.Pi/2 {
					ang[i] = math.Pi - ang[i]
				}
			}
		}
	}
	return mag, ang
}

func histogram256(f *frame.Frame) [256]int {
	var h [256]int
	for _, b := range f.Bytes() {
		h[b]++
	}
	return h
}

package fusion

import (
	"math"
	"math/rand"
	"testing"

	"zynqfusion/internal/frame"
	"zynqfusion/internal/signal"
	"zynqfusion/internal/wavelet"
)

func randFrame(rng *rand.Rand, w, h int) *frame.Frame {
	f := frame.New(w, h)
	for i := range f.Pix {
		f.Pix[i] = float32(rng.Intn(256))
	}
	return f
}

func newDT() *wavelet.DTCWT {
	return wavelet.NewDTCWT(wavelet.NewXfm(signal.RefKernel{}), wavelet.DefaultTreeBanks())
}

func TestFuseIdenticalIsIdentity(t *testing.T) {
	// Fusing an image with itself must reconstruct the image itself, for
	// every rule: the core functional-correctness invariant of the whole
	// pipeline.
	rng := rand.New(rand.NewSource(21))
	tr := newDT()
	img := randFrame(rng, 64, 48)
	pa, err := tr.Forward(img, 3)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := tr.Forward(img, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, rule := range []Rule{MaxMagnitude{}, Average{}, WindowEnergy{R: 1}} {
		fp, err := Fuse(rule, pa, pb)
		if err != nil {
			t.Fatalf("%s: %v", rule.Name(), err)
		}
		rec, err := tr.Inverse(fp)
		if err != nil {
			t.Fatal(err)
		}
		e, _ := frame.MaxAbsDiff(img, rec)
		if e > 5e-2 {
			t.Errorf("%s: fuse(A,A) error %g", rule.Name(), e)
		}
	}
}

func TestFuseDoesNotMutateSources(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	tr := newDT()
	a := randFrame(rng, 32, 32)
	b := randFrame(rng, 32, 32)
	pa, _ := tr.Forward(a, 2)
	pb, _ := tr.Forward(b, 2)
	before := pa.Levels[0].Bands[0].Clone()
	if _, err := Fuse(MaxMagnitude{}, pa, pb); err != nil {
		t.Fatal(err)
	}
	for i := range before.Re {
		if before.Re[i] != pa.Levels[0].Bands[0].Re[i] {
			t.Fatal("Fuse mutated its source pyramid")
		}
	}
}

func TestFuseSizeMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	tr := newDT()
	pa, _ := tr.Forward(randFrame(rng, 32, 32), 2)
	pb, _ := tr.Forward(randFrame(rng, 64, 48), 2)
	if _, err := Fuse(MaxMagnitude{}, pa, pb); err == nil {
		t.Error("expected geometry mismatch error")
	}
}

func TestMaxMagnitudePicksStrongerSource(t *testing.T) {
	// A flat image vs. a textured image: the fused result should inherit
	// the texture (detail energy close to the textured source).
	rng := rand.New(rand.NewSource(24))
	tr := newDT()
	flat := frame.New(64, 64)
	flat.Fill(128)
	tex := randFrame(rng, 64, 64)
	pf, _ := tr.Forward(flat, 2)
	pt, _ := tr.Forward(tex, 2)
	fused, err := Fuse(MaxMagnitude{}, pf, pt)
	if err != nil {
		t.Fatal(err)
	}
	for lv := range fused.Levels {
		ef := fused.Levels[lv].Bands[0].Energy()
		et := pt.Levels[lv].Bands[0].Energy()
		if ef < 0.9*et {
			t.Errorf("level %d: fused energy %g lost texture energy %g", lv+1, ef, et)
		}
	}
}

func TestAverageHalvesOpposingDetails(t *testing.T) {
	// Averaging a signal with its negation (around the mean) cancels
	// detail: fused band energy should be far below source energy.
	tr := newDT()
	a := frame.New(32, 32)
	b := frame.New(32, 32)
	for y := 0; y < 32; y++ {
		for x := 0; x < 32; x++ {
			v := float32(100 * math.Cos(math.Pi*float64(x)))
			a.Set(x, y, 128+v)
			b.Set(x, y, 128-v)
		}
	}
	pa, _ := tr.Forward(a, 1)
	pb, _ := tr.Forward(b, 1)
	fp, err := Fuse(Average{}, pa, pb)
	if err != nil {
		t.Fatal(err)
	}
	for bi := range fp.Levels[0].Bands {
		ea := pa.Levels[0].Bands[bi].Energy()
		ef := fp.Levels[0].Bands[bi].Energy()
		if ea > 1 && ef > 0.05*ea {
			t.Errorf("band %d: average rule kept %g of %g opposing energy", bi, ef, ea)
		}
	}
}

func TestWindowEnergyMatchesMaxOnDisjointContent(t *testing.T) {
	// When the two sources have spatially disjoint features, window-energy
	// and max-magnitude should make mostly the same selections.
	tr := newDT()
	a := frame.New(64, 64)
	b := frame.New(64, 64)
	a.Fill(128)
	b.Fill(128)
	for y := 8; y < 24; y++ {
		for x := 8; x < 24; x++ {
			a.Set(x, y, 250)
		}
	}
	for y := 40; y < 56; y++ {
		for x := 40; x < 56; x++ {
			b.Set(x, y, 10)
		}
	}
	pa, _ := tr.Forward(a, 2)
	pb, _ := tr.Forward(b, 2)
	f1, err := Fuse(MaxMagnitude{}, pa, pb)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := Fuse(WindowEnergy{R: 1}, pa, pb)
	if err != nil {
		t.Fatal(err)
	}
	r1, _ := newDT().Inverse(f1)
	r2, _ := newDT().Inverse(f2)
	psnr, _ := frame.PSNR(r1, r2)
	if psnr < 25 {
		t.Errorf("max vs window-energy differ too much on disjoint content: PSNR %.1f dB", psnr)
	}
}

func TestEntropyBounds(t *testing.T) {
	flat := frame.New(32, 32)
	flat.Fill(100)
	if e := Entropy(flat); e != 0 {
		t.Errorf("entropy of constant image = %g, want 0", e)
	}
	// Uniform histogram: maximal entropy 8 bits.
	f := frame.New(16, 16)
	for i := range f.Pix {
		f.Pix[i] = float32(i % 256)
	}
	if e := Entropy(f); math.Abs(e-8) > 1e-9 {
		t.Errorf("entropy of uniform image = %g, want 8", e)
	}
}

func TestSpatialFrequencyOrdering(t *testing.T) {
	flat := frame.New(32, 32)
	flat.Fill(77)
	rng := rand.New(rand.NewSource(25))
	noisy := randFrame(rng, 32, 32)
	if sf, sn := SpatialFrequency(flat), SpatialFrequency(noisy); sf >= sn {
		t.Errorf("flat SF %g should be below noisy SF %g", sf, sn)
	}
}

func TestMutualInformationProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	a := randFrame(rng, 48, 48)
	b := randFrame(rng, 48, 48)
	miAA, err := MutualInformation(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if miAA < Entropy(a)-1e-6 {
		t.Errorf("MI(a,a)=%g should equal H(a)=%g", miAA, Entropy(a))
	}
	miAB, _ := MutualInformation(a, b)
	miBA, _ := MutualInformation(b, a)
	if math.Abs(miAB-miBA) > 1e-9 {
		t.Errorf("MI not symmetric: %g vs %g", miAB, miBA)
	}
	// The histogram MI estimator carries small-sample bias, so assert the
	// ordering rather than an absolute value: a correlated pair must carry
	// clearly more MI than an independent pair.
	corr := a.Clone()
	corr.Apply(func(v float32) float32 { return v + float32(rng.Intn(9)) - 4 })
	miCorr, _ := MutualInformation(a, corr)
	if miCorr <= miAB+0.5 {
		t.Errorf("MI(correlated)=%g should clearly exceed MI(independent)=%g", miCorr, miAB)
	}
	if _, err := MutualInformation(a, frame.New(3, 3)); err == nil {
		t.Error("size mismatch should error")
	}
}

func TestQABFIdentityFusionScoresHigh(t *testing.T) {
	// Fusing two identical images: any sensible measure should score the
	// "fused" copy higher than a blurred or constant output.
	rng := rand.New(rand.NewSource(27))
	img := randFrame(rng, 48, 48)
	qGood, err := QABF(img, img, img)
	if err != nil {
		t.Fatal(err)
	}
	flat := frame.New(48, 48)
	flat.Fill(128)
	qBad, err := QABF(img, img, flat)
	if err != nil {
		t.Fatal(err)
	}
	if qGood <= qBad {
		t.Errorf("QABF(identity)=%g should beat QABF(flat)=%g", qGood, qBad)
	}
	if qGood < 0 || qGood > 1 || qBad < 0 || qBad > 1 {
		t.Errorf("QABF out of [0,1]: %g, %g", qGood, qBad)
	}
}

func TestFusionMIRanksRealFusionAboveConstant(t *testing.T) {
	rng := rand.New(rand.NewSource(28))
	tr := newDT()
	a := randFrame(rng, 48, 48)
	b := randFrame(rng, 48, 48)
	pa, _ := tr.Forward(a, 2)
	pb, _ := tr.Forward(b, 2)
	fp, _ := Fuse(MaxMagnitude{}, pa, pb)
	fused, _ := tr.Inverse(fp)
	miFused, err := FusionMI(a, b, fused)
	if err != nil {
		t.Fatal(err)
	}
	flat := frame.New(48, 48)
	flat.Fill(128)
	miFlat, _ := FusionMI(a, b, flat)
	if miFused <= miFlat {
		t.Errorf("FusionMI fused=%g should beat constant=%g", miFused, miFlat)
	}
}

// Package fusion implements the pixel-level coefficient fusion rules that
// combine two DT-CWT pyramids into one, plus the image-fusion quality
// metrics used to evaluate them.
//
// The paper fuses the transformed coefficients of the visible and infrared
// frames with a pixel-level rule and reconstructs with the inverse DT-CWT.
package fusion

import (
	"errors"
	"fmt"

	"zynqfusion/internal/frame"
	"zynqfusion/internal/kernels"
	"zynqfusion/internal/wavelet"
)

// Rule combines corresponding subbands of two pyramids. Implementations
// must be deterministic and size-preserving.
type Rule interface {
	// Name identifies the rule in reports.
	Name() string
	// FuseBand writes the fusion of a and b into dst (all same size).
	FuseBand(dst, a, b *wavelet.ComplexBand)
	// FuseLL writes the fusion of the lowpass residuals into dst.
	FuseLL(dst, a, b *frame.Frame)
}

// ErrPyramidMismatch reports pyramids with differing geometry.
var ErrPyramidMismatch = errors.New("fusion: pyramid geometry mismatch")

// Fuse combines two DT-CWT pyramids level by level with the given rule,
// returning a new pyramid that shares the geometry of a. The inputs are not
// modified.
func Fuse(rule Rule, a, b *wavelet.DTPyramid) (*wavelet.DTPyramid, error) {
	out := a.CloneStructure()
	if err := FuseInto(rule, out, a, b); err != nil {
		return nil, err
	}
	return out, nil
}

// FuseInto combines a and b into dst, a pyramid already shaped for the
// same geometry (DTCWT.ShapePyramid, or a prior fusion's output). Every
// fused coefficient — detail bands and lowpass residuals — is written, so
// dst's prior contents never leak through; this is the zero-copy hot path
// that replaces the CloneStructure deep copy on every frame. The inputs
// are not modified, and dst must not alias either of them.
func FuseInto(rule Rule, dst, a, b *wavelet.DTPyramid) error {
	return FuseIntoWorkspace(nil, rule, dst, a, b)
}

// FuseIntoWorkspace is FuseInto running through a workspace: built-in
// rules lease their activity scratch from the workspace's pool and tile
// their per-pixel loops across its worker pool, bit-identically to the
// plain path. A nil workspace — or a custom Rule — selects the rule's own
// FuseBand/FuseLL.
func FuseIntoWorkspace(ws *Workspace, rule Rule, dst, a, b *wavelet.DTPyramid) error {
	if a.W != b.W || a.H != b.H || a.NumLevels() != b.NumLevels() {
		return fmt.Errorf("%w: %dx%d/%d vs %dx%d/%d", ErrPyramidMismatch,
			a.W, a.H, a.NumLevels(), b.W, b.H, b.NumLevels())
	}
	if dst.W != a.W || dst.H != a.H || dst.NumLevels() != a.NumLevels() {
		return fmt.Errorf("%w: destination %dx%d/%d for sources %dx%d/%d", ErrPyramidMismatch,
			dst.W, dst.H, dst.NumLevels(), a.W, a.H, a.NumLevels())
	}
	fast, _ := rule.(wsRule)
	for lv := range a.Levels {
		for bi := range a.Levels[lv].Bands {
			ba, bb := a.Levels[lv].Bands[bi], b.Levels[lv].Bands[bi]
			if ba.W != bb.W || ba.H != bb.H {
				return fmt.Errorf("%w: level %d band %d", ErrPyramidMismatch, lv+1, bi)
			}
			if ws != nil && fast != nil {
				fast.fuseBandWS(ws, dst.Levels[lv].Bands[bi], ba, bb)
			} else {
				rule.FuseBand(dst.Levels[lv].Bands[bi], ba, bb)
			}
		}
	}
	for c := range a.LLs {
		if !a.LLs[c].SameSize(b.LLs[c]) {
			return fmt.Errorf("%w: lowpass residual %d", ErrPyramidMismatch, c)
		}
		if ws != nil && fast != nil {
			fast.fuseLLWS(ws, dst.LLs[c], a.LLs[c], b.LLs[c])
		} else {
			rule.FuseLL(dst.LLs[c], a.LLs[c], b.LLs[c])
		}
	}
	return nil
}

// MaxMagnitude is the classic choose-max fusion rule: for every complex
// coefficient pick the source with the larger magnitude (the stronger
// salient feature); lowpass residuals are averaged.
type MaxMagnitude struct{}

// Name implements Rule.
func (MaxMagnitude) Name() string { return "max-magnitude" }

// FuseBand implements Rule.
func (MaxMagnitude) FuseBand(dst, a, b *wavelet.ComplexBand) {
	for i := range dst.Re {
		ma := a.Re[i]*a.Re[i] + a.Im[i]*a.Im[i]
		mb := b.Re[i]*b.Re[i] + b.Im[i]*b.Im[i]
		if ma >= mb {
			dst.Re[i], dst.Im[i] = a.Re[i], a.Im[i]
		} else {
			dst.Re[i], dst.Im[i] = b.Re[i], b.Im[i]
		}
	}
}

// FuseLL implements Rule.
func (MaxMagnitude) FuseLL(dst, a, b *frame.Frame) {
	for i := range dst.Pix {
		dst.Pix[i] = 0.5 * (a.Pix[i] + b.Pix[i])
	}
}

func (MaxMagnitude) fuseBandWS(ws *Workspace, dst, a, b *wavelet.ComplexBand) {
	w := ws.workers()
	n := len(dst.Re)
	ws.max = maxMagBandTask{dstRe: dst.Re, dstIm: dst.Im, aRe: a.Re, aIm: a.Im, bRe: b.Re, bIm: b.Im}
	w.Run(n, kernels.Grain(n, 24, w.N()), &ws.max)
}

func (MaxMagnitude) fuseLLWS(ws *Workspace, dst, a, b *frame.Frame) {
	averageLLWS(ws, dst, a, b)
}

// averageLLWS is the shared tiled lowpass blend all built-in rules use.
func averageLLWS(ws *Workspace, dst, a, b *frame.Frame) {
	w := ws.workers()
	n := len(dst.Pix)
	ws.avgP = avgPixTask{dst: dst.Pix, a: a.Pix, b: b.Pix}
	w.Run(n, kernels.Grain(n, 12, w.N()), &ws.avgP)
}

// Average blends both sources equally everywhere. It is the baseline rule:
// simple, artifact-free, but it halves feature contrast.
type Average struct{}

// Name implements Rule.
func (Average) Name() string { return "average" }

// FuseBand implements Rule.
func (Average) FuseBand(dst, a, b *wavelet.ComplexBand) {
	for i := range dst.Re {
		dst.Re[i] = 0.5 * (a.Re[i] + b.Re[i])
		dst.Im[i] = 0.5 * (a.Im[i] + b.Im[i])
	}
}

// FuseLL implements Rule.
func (Average) FuseLL(dst, a, b *frame.Frame) {
	for i := range dst.Pix {
		dst.Pix[i] = 0.5 * (a.Pix[i] + b.Pix[i])
	}
}

func (Average) fuseBandWS(ws *Workspace, dst, a, b *wavelet.ComplexBand) {
	w := ws.workers()
	n := len(dst.Re)
	ws.avgB = avgBandTask{dstRe: dst.Re, dstIm: dst.Im, aRe: a.Re, aIm: a.Im, bRe: b.Re, bIm: b.Im}
	w.Run(n, kernels.Grain(n, 24, w.N()), &ws.avgB)
}

func (Average) fuseLLWS(ws *Workspace, dst, a, b *frame.Frame) {
	averageLLWS(ws, dst, a, b)
}

// WindowEnergy selects per coefficient by comparing local activity (the
// summed squared magnitude over a (2R+1)^2 window), which is less noise-
// sensitive than the pointwise max rule. R = 1 gives the usual 3x3 window.
type WindowEnergy struct {
	R int // window radius; 0 degenerates to MaxMagnitude
}

// Name implements Rule.
func (w WindowEnergy) Name() string { return fmt.Sprintf("window-energy-r%d", w.R) }

// FuseBand implements Rule.
func (w WindowEnergy) FuseBand(dst, a, b *wavelet.ComplexBand) {
	ea := bandActivity(a, w.R)
	eb := bandActivity(b, w.R)
	for i := range dst.Re {
		if ea[i] >= eb[i] {
			dst.Re[i], dst.Im[i] = a.Re[i], a.Im[i]
		} else {
			dst.Re[i], dst.Im[i] = b.Re[i], b.Im[i]
		}
	}
}

// FuseLL implements Rule.
func (w WindowEnergy) FuseLL(dst, a, b *frame.Frame) {
	for i := range dst.Pix {
		dst.Pix[i] = 0.5 * (a.Pix[i] + b.Pix[i])
	}
}

func (w WindowEnergy) fuseBandWS(ws *Workspace, dst, a, b *wavelet.ComplexBand) {
	ea := bandActivityWS(ws, &ws.mag2A, &ws.actA, a, w.R)
	eb := bandActivityWS(ws, &ws.mag2B, &ws.actB, b, w.R)
	wk := ws.workers()
	n := len(dst.Re)
	ws.sel = selBandTask{dstRe: dst.Re, dstIm: dst.Im, aRe: a.Re, aIm: a.Im, bRe: b.Re, bIm: b.Im, ea: ea, eb: eb}
	wk.Run(n, kernels.Grain(n, 32, wk.N()), &ws.sel)
}

func (w WindowEnergy) fuseLLWS(ws *Workspace, dst, a, b *frame.Frame) {
	averageLLWS(ws, dst, a, b)
}

// bandActivity returns the windowed squared-magnitude map of a band.
func bandActivity(b *wavelet.ComplexBand, r int) []float32 {
	mag2 := make([]float32, len(b.Re))
	for i := range b.Re {
		mag2[i] = b.Re[i]*b.Re[i] + b.Im[i]*b.Im[i]
	}
	if r <= 0 {
		return mag2
	}
	out := make([]float32, len(mag2))
	for y := 0; y < b.H; y++ {
		for x := 0; x < b.W; x++ {
			var s float32
			for dy := -r; dy <= r; dy++ {
				yy := y + dy
				if yy < 0 || yy >= b.H {
					continue
				}
				for dx := -r; dx <= r; dx++ {
					xx := x + dx
					if xx < 0 || xx >= b.W {
						continue
					}
					s += mag2[yy*b.W+xx]
				}
			}
			out[y*b.W+x] = s
		}
	}
	return out
}

package fusion

import (
	"math"
	"math/rand"
	"runtime"
	"testing"

	"zynqfusion/internal/engine"
	"zynqfusion/internal/frame"
	"zynqfusion/internal/kernels"
	"zynqfusion/internal/wavelet"
)

// noQuadRule is a custom rule without a fused quad kernel: the planner
// must refuse to fuse it and FuseQuads must reject it.
type noQuadRule struct{}

func (noQuadRule) Name() string                            { return "no-quad" }
func (noQuadRule) FuseBand(dst, a, b *wavelet.ComplexBand) {}
func (noQuadRule) FuseLL(dst, a, b *frame.Frame)           {}

func TestCanFuseRule(t *testing.T) {
	for _, rule := range []Rule{MaxMagnitude{}, Average{}, WindowEnergy{}, WindowEnergy{R: 2}} {
		if !CanFuseRule(rule) {
			t.Errorf("%s: built-in rule reported unfusable", rule.Name())
		}
	}
	if CanFuseRule(noQuadRule{}) {
		t.Error("custom rule without a quad kernel reported fusable")
	}
}

// TestFuseQuadsBitExact pins the fused combine+rule+distribute kernels
// against the unfused chain end to end: dual-stream quad forward →
// FuseQuads → fused inverse must reconstruct bit-identically to unfused
// forwards → complex-band Fuse → distributing inverse, with the modeled
// charge totals equal — for every built-in rule, sequential and across a
// worker pool.
func TestFuseQuadsBitExact(t *testing.T) {
	prev := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(prev)
	rng := rand.New(rand.NewSource(31))
	const w, h, levels = 64, 48, 3
	vis := randFrame(rng, w, h)
	ir := randFrame(rng, w, h)
	for _, rule := range []Rule{MaxMagnitude{}, Average{}, WindowEnergy{}, WindowEnergy{R: 2}} {
		for _, workers := range []int{1, 4} {
			t.Run(rule.Name(), func(t *testing.T) {
				var pool *kernels.Workers
				if workers > 1 {
					pool = kernels.NewWorkers(workers)
					defer pool.Close()
				}

				refK := engine.NewNEON(false)
				refX := wavelet.NewXfm(refK)
				refX.SetWorkers(pool)
				refDT := wavelet.NewDTCWT(refX, wavelet.DefaultTreeBanks())
				pa, err := refDT.Forward(vis, levels)
				if err != nil {
					t.Fatal(err)
				}
				pb, err := refDT.Forward(ir, levels)
				if err != nil {
					t.Fatal(err)
				}
				fp, err := Fuse(rule, pa, pb)
				if err != nil {
					t.Fatal(err)
				}
				recRef, err := refDT.Inverse(fp)
				if err != nil {
					t.Fatal(err)
				}

				qK := engine.NewNEON(false)
				qX := wavelet.NewXfm(qK)
				qX.SetWorkers(pool)
				qDT := wavelet.NewDTCWT(qX, wavelet.DefaultTreeBanks())
				qa, qb := &wavelet.DTPyramid{}, &wavelet.DTPyramid{}
				if err := qDT.ForwardPairInto(qa, qb, vis, ir, levels, false); err != nil {
					t.Fatal(err)
				}
				dst := &wavelet.DTPyramid{}
				if err := qDT.ShapeQuadPyramid(dst, w, h, levels); err != nil {
					t.Fatal(err)
				}
				ws := NewWorkspace(nil, pool)
				defer ws.Release()
				if err := FuseQuads(ws, rule, dst, qa, qb); err != nil {
					t.Fatal(err)
				}
				recQ, err := qDT.InverseFused(dst)
				if err != nil {
					t.Fatal(err)
				}

				if recRef.W != recQ.W || recRef.H != recQ.H {
					t.Fatalf("size mismatch %dx%d vs %dx%d", recRef.W, recRef.H, recQ.W, recQ.H)
				}
				for i := range recRef.Pix {
					if math.Float32bits(recRef.Pix[i]) != math.Float32bits(recQ.Pix[i]) {
						t.Fatalf("workers=%d: fused reconstruction differs at %d: %g vs %g",
							workers, i, recRef.Pix[i], recQ.Pix[i])
					}
				}
				if refK.Elapsed() != qK.Elapsed() {
					t.Fatalf("workers=%d: fused modeled time %v, unfused %v",
						workers, qK.Elapsed(), refK.Elapsed())
				}
				if refK.Unit().C != qK.Unit().C {
					t.Fatalf("workers=%d: fused instruction ledger diverged", workers)
				}
			})
		}
	}
}

func TestFuseQuadsErrors(t *testing.T) {
	dt := wavelet.NewDTCWT(wavelet.NewXfm(engine.NewNEON(false)), wavelet.DefaultTreeBanks())
	shape := func(w, h int) *wavelet.DTPyramid {
		p := &wavelet.DTPyramid{}
		if err := dt.ShapeQuadPyramid(p, w, h, 2); err != nil {
			t.Fatal(err)
		}
		return p
	}
	a, b, dst := shape(32, 32), shape(32, 32), shape(32, 32)
	ws := NewWorkspace(nil, nil)
	if err := FuseQuads(ws, noQuadRule{}, dst, a, b); err == nil {
		t.Error("rule without a quad kernel accepted")
	}
	if err := FuseQuads(ws, MaxMagnitude{}, dst, a, shape(64, 48)); err == nil {
		t.Error("source geometry mismatch accepted")
	}
	if err := FuseQuads(ws, MaxMagnitude{}, shape(64, 48), a, b); err == nil {
		t.Error("destination geometry mismatch accepted")
	}
	if err := FuseQuads(ws, MaxMagnitude{}, dst, a, b); err != nil {
		t.Errorf("well-shaped quad fusion failed: %v", err)
	}
}

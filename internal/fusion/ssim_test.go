package fusion

import (
	"math"
	"math/rand"
	"testing"

	"zynqfusion/internal/frame"
)

func TestSSIMIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	f := randFrame(rng, 32, 32)
	s, err := SSIM(f, f)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s-1) > 1e-9 {
		t.Errorf("SSIM(f,f)=%g, want 1", s)
	}
}

func TestSSIMOrdersDegradations(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := randFrame(rng, 64, 64)
	slightlyNoisy := f.Clone()
	veryNoisy := f.Clone()
	for i := range f.Pix {
		slightlyNoisy.Pix[i] += float32(rng.NormFloat64() * 3)
		veryNoisy.Pix[i] += float32(rng.NormFloat64() * 40)
	}
	s1, err := SSIM(f, slightlyNoisy)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := SSIM(f, veryNoisy)
	if err != nil {
		t.Fatal(err)
	}
	if !(s1 > s2) {
		t.Errorf("SSIM ordering broken: slight %g vs heavy %g", s1, s2)
	}
	if s1 < 0.5 {
		t.Errorf("slight noise scored too low: %g", s1)
	}
}

func TestSSIMValidatesSizes(t *testing.T) {
	a := frame.New(32, 32)
	if _, err := SSIM(a, frame.New(16, 16)); err == nil {
		t.Error("size mismatch should fail")
	}
	if _, err := SSIM(frame.New(4, 4), frame.New(4, 4)); err == nil {
		t.Error("frames below the window size should fail")
	}
}

func TestFusionSSIMPrefersRealFusion(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	a := randFrame(rng, 48, 48)
	b := randFrame(rng, 48, 48)
	avg := frame.New(48, 48)
	for i := range avg.Pix {
		avg.Pix[i] = 0.5 * (a.Pix[i] + b.Pix[i])
	}
	flat := frame.New(48, 48)
	flat.Fill(128)
	sAvg, err := FusionSSIM(a, b, avg)
	if err != nil {
		t.Fatal(err)
	}
	sFlat, err := FusionSSIM(a, b, flat)
	if err != nil {
		t.Fatal(err)
	}
	if sAvg <= sFlat {
		t.Errorf("FusionSSIM avg=%g should beat flat=%g", sAvg, sFlat)
	}
}

func TestMeanGradientRatio(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	a := randFrame(rng, 48, 48)
	b := randFrame(rng, 48, 48)
	// The per-pixel max-gradient source bound: averaging blurs, so its
	// ratio must be below 1; an identical copy of the sharper union comes
	// closer.
	avg := frame.New(48, 48)
	for i := range avg.Pix {
		avg.Pix[i] = 0.5 * (a.Pix[i] + b.Pix[i])
	}
	rAvg, err := MeanGradientRatio(a, b, avg)
	if err != nil {
		t.Fatal(err)
	}
	if rAvg >= 1 {
		t.Errorf("averaging should lose gradient: ratio %g", rAvg)
	}
	rSelf, err := MeanGradientRatio(a, a, a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rSelf-1) > 1e-9 {
		t.Errorf("self ratio %g, want 1", rSelf)
	}
	if _, err := MeanGradientRatio(a, b, frame.New(3, 3)); err == nil {
		t.Error("size mismatch should fail")
	}
}

package fusion

import (
	"fmt"
	"runtime"
	"testing"

	"zynqfusion/internal/bufpool"
	"zynqfusion/internal/kernels"
)

// Wall-clock microbenchmarks of the tiled fusion-rule hot loops (the
// third leg of the CI kernel-bench smoke surface, next to the 1D signal
// kernels and the 2D transform passes).

func benchRule(b *testing.B, rule Rule, workers int) {
	prev := runtime.GOMAXPROCS(max(workers, runtime.GOMAXPROCS(0)))
	defer runtime.GOMAXPROCS(prev)
	pa, pb, dst := buildPyramidPair(b, 320, 180, 3, 5)
	var w *kernels.Workers
	if workers > 1 {
		w = kernels.NewWorkers(workers)
		defer w.Close()
	}
	ws := NewWorkspace(bufpool.New(bufpool.Options{}), w)
	defer ws.Release()
	if err := FuseIntoWorkspace(ws, rule, dst, pa, pb); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(4 * 320 * 180))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := FuseIntoWorkspace(ws, rule, dst, pa, pb); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKernelFuseMaxMagnitude(b *testing.B) {
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			benchRule(b, MaxMagnitude{}, workers)
		})
	}
}

func BenchmarkKernelFuseWindowEnergy(b *testing.B) {
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			benchRule(b, WindowEnergy{R: 1}, workers)
		})
	}
}

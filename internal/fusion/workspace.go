package fusion

import (
	"zynqfusion/internal/bufpool"
	"zynqfusion/internal/frame"
	"zynqfusion/internal/kernels"
	"zynqfusion/internal/wavelet"
)

// Workspace is the zero-allocation, tiled execution context for the
// built-in fusion rules. It owns the activity-map scratch WindowEnergy
// needs (leased from the frame-store arena when one is attached, so the
// windowed rule stops allocating two planes per band per frame) and the
// worker pool the per-pixel rule loops fan out across.
//
// A nil *Workspace is valid everywhere and selects the legacy sequential
// path. Rules run through a workspace produce bit-identical coefficients
// to their plain FuseBand/FuseLL: the per-pixel expressions and their
// evaluation order per output are unchanged — only the scheduling and the
// scratch backing store differ. Custom Rule implementations simply fall
// back to their own methods.
//
// A Workspace is not safe for concurrent use; it belongs to one fuser.
type Workspace struct {
	pool *bufpool.Pool
	w    *kernels.Workers

	mag2A, mag2B, actA, actB planeScratch
	// The fused quad path of WindowEnergy holds z1 and z2 activity alive
	// at once (the unfused path processes the complex bands one at a
	// time), so it needs a second scratch bank.
	mag2A2, mag2B2, actA2, actB2 planeScratch

	// Reusable task boxes: pointer-through-interface keeps dispatch at
	// zero allocations per frame.
	max  maxMagBandTask
	avgB avgBandTask
	avgP avgPixTask
	sel  selBandTask
	mag  mag2Task
	win  winSumTask
	maxQ maxMagQuadTask
	avgQ avgQuadTask
	selQ selQuadTask
	magQ quadMag2Task
}

// NewWorkspace returns a workspace leasing scratch from pool (nil → plain
// allocations on growth) and dispatching across w (nil → sequential).
// Neither is owned: the caller closes the pool and workers.
func NewWorkspace(pool *bufpool.Pool, w *kernels.Workers) *Workspace {
	return &Workspace{pool: pool, w: w}
}

// Release returns the workspace's scratch leases. The workspace stays
// usable; scratch is re-acquired on the next fusion.
func (ws *Workspace) Release() {
	if ws == nil {
		return
	}
	ws.mag2A.release()
	ws.mag2B.release()
	ws.actA.release()
	ws.actB.release()
	ws.mag2A2.release()
	ws.mag2B2.release()
	ws.actA2.release()
	ws.actB2.release()
}

// workers is nil-receiver-safe so rule code can dispatch unconditionally.
func (ws *Workspace) workers() *kernels.Workers {
	if ws == nil {
		return nil
	}
	return ws.w
}

// planeScratch is one reusable activity plane, pool-leased when possible.
type planeScratch struct {
	buf   []float32
	lease *frame.Frame
}

func (s *planeScratch) grow(pool *bufpool.Pool, n int) []float32 {
	if cap(s.buf) >= n {
		s.buf = s.buf[:n]
		return s.buf
	}
	if s.lease != nil {
		s.lease.Release()
		s.lease = nil
	}
	s.buf = nil
	if pool != nil {
		if f, err := pool.Get(n, 1); err == nil {
			s.lease = f
			s.buf = f.Pix[:n]
		}
	}
	if s.buf == nil {
		s.buf = make([]float32, n)
	}
	return s.buf
}

func (s *planeScratch) release() {
	if s.lease != nil {
		s.lease.Release()
		s.lease = nil
	}
	s.buf = nil
}

// wsRule is the workspace-aware fast path the built-in rules provide.
type wsRule interface {
	fuseBandWS(ws *Workspace, dst, a, b *wavelet.ComplexBand)
	fuseLLWS(ws *Workspace, dst, a, b *frame.Frame)
}

// bandActivityWS is bandActivity with pooled scratch and tiled dispatch:
// the pointwise squared-magnitude map, then (for r > 0) the windowed sum,
// each output accumulated in the same order as the sequential code.
func bandActivityWS(ws *Workspace, mag2S, actS *planeScratch, b *wavelet.ComplexBand, r int) []float32 {
	n := len(b.Re)
	w := ws.workers()
	mag2 := mag2S.grow(ws.pool, n)
	ws.mag = mag2Task{dst: mag2, re: b.Re, im: b.Im}
	w.Run(n, kernels.Grain(n, 12, w.N()), &ws.mag)
	if r <= 0 {
		return mag2
	}
	out := actS.grow(ws.pool, n)
	ws.win = winSumTask{dst: out, mag2: mag2, w: b.W, h: b.H, r: r}
	w.Run(b.H, kernels.Grain(b.H, 8*b.W, w.N()), &ws.win)
	return out
}

// Tile tasks mirroring the rule loops expression for expression.

type maxMagBandTask struct {
	dstRe, dstIm, aRe, aIm, bRe, bIm []float32
}

func (t *maxMagBandTask) Tile(lo, hi, _ int) {
	for i := lo; i < hi; i++ {
		ma := t.aRe[i]*t.aRe[i] + t.aIm[i]*t.aIm[i]
		mb := t.bRe[i]*t.bRe[i] + t.bIm[i]*t.bIm[i]
		if ma >= mb {
			t.dstRe[i], t.dstIm[i] = t.aRe[i], t.aIm[i]
		} else {
			t.dstRe[i], t.dstIm[i] = t.bRe[i], t.bIm[i]
		}
	}
}

type avgBandTask struct {
	dstRe, dstIm, aRe, aIm, bRe, bIm []float32
}

func (t *avgBandTask) Tile(lo, hi, _ int) {
	for i := lo; i < hi; i++ {
		t.dstRe[i] = 0.5 * (t.aRe[i] + t.bRe[i])
		t.dstIm[i] = 0.5 * (t.aIm[i] + t.bIm[i])
	}
}

type avgPixTask struct {
	dst, a, b []float32
}

func (t *avgPixTask) Tile(lo, hi, _ int) {
	for i := lo; i < hi; i++ {
		t.dst[i] = 0.5 * (t.a[i] + t.b[i])
	}
}

type selBandTask struct {
	dstRe, dstIm, aRe, aIm, bRe, bIm, ea, eb []float32
}

func (t *selBandTask) Tile(lo, hi, _ int) {
	for i := lo; i < hi; i++ {
		if t.ea[i] >= t.eb[i] {
			t.dstRe[i], t.dstIm[i] = t.aRe[i], t.aIm[i]
		} else {
			t.dstRe[i], t.dstIm[i] = t.bRe[i], t.bIm[i]
		}
	}
}

type mag2Task struct {
	dst, re, im []float32
}

func (t *mag2Task) Tile(lo, hi, _ int) {
	for i := lo; i < hi; i++ {
		t.dst[i] = t.re[i]*t.re[i] + t.im[i]*t.im[i]
	}
}

type winSumTask struct {
	dst, mag2 []float32
	w, h, r   int
}

func (t *winSumTask) Tile(lo, hi, _ int) {
	for y := lo; y < hi; y++ {
		for x := 0; x < t.w; x++ {
			var s float32
			for dy := -t.r; dy <= t.r; dy++ {
				yy := y + dy
				if yy < 0 || yy >= t.h {
					continue
				}
				for dx := -t.r; dx <= t.r; dx++ {
					xx := x + dx
					if xx < 0 || xx >= t.w {
						continue
					}
					s += t.mag2[yy*t.w+xx]
				}
			}
			t.dst[y*t.w+x] = s
		}
	}
}

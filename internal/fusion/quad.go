package fusion

import (
	"fmt"

	"zynqfusion/internal/kernels"
	"zynqfusion/internal/wavelet"
)

// Fused combine+rule+distribute kernels. The unfused data path
// materializes six complex band planes per stream per level (q2c), runs
// the rule over them, then re-materializes the fused complex planes before
// distributing back to quad (tree) layout (c2q). The quad kernels below
// execute all three per tile: they read the four tree planes of each
// stream, form the z1/z2 complex pairs as float32 register locals with
// exactly the q2c expressions, select with exactly the rule expressions,
// and write the fused coefficients straight back in quad layout with
// exactly the c2q expressions — so the fused pyramid's tree planes are
// bit-identical to the unfused combine → rule → distribute chain, while
// every intermediate complex plane of all three pyramids is elided.

const invSqrt2 = wavelet.InvSqrt2

// quadRule is the fused fast path the built-in rules provide: fuse detail
// band pair (bi, 5-bi) of one level straight from quad layout to quad
// layout. Custom rules without it keep the unfused combine/distribute
// path (dual-stream loop fusion still applies).
type quadRule interface {
	fuseQuadBand(ws *Workspace, lv, bi int, dst, a, b *wavelet.DTPyramid)
}

// CanFuseRule reports whether rule has a fused quad kernel — the
// planner's RuleFusable legality input.
func CanFuseRule(rule Rule) bool {
	_, ok := rule.(quadRule)
	return ok
}

// FuseQuads combines two quad-shaped pyramids into dst entirely in quad
// (tree) layout: per level and band pair one fused combine+rule+distribute
// kernel, then the averaged lowpass residuals per tree. All three
// pyramids may be quad-shaped (complex planes elided); dst's tree planes
// and residuals come out bit-identical to the unfused
// FuseIntoWorkspace + distribute chain.
func FuseQuads(ws *Workspace, rule Rule, dst, a, b *wavelet.DTPyramid) error {
	if a.W != b.W || a.H != b.H || a.NumLevels() != b.NumLevels() {
		return fmt.Errorf("%w: %dx%d/%d vs %dx%d/%d", ErrPyramidMismatch,
			a.W, a.H, a.NumLevels(), b.W, b.H, b.NumLevels())
	}
	if dst.W != a.W || dst.H != a.H || dst.NumLevels() != a.NumLevels() {
		return fmt.Errorf("%w: destination %dx%d/%d for sources %dx%d/%d", ErrPyramidMismatch,
			dst.W, dst.H, dst.NumLevels(), a.W, a.H, a.NumLevels())
	}
	qr, ok := rule.(quadRule)
	if !ok {
		return fmt.Errorf("fusion: rule %s has no fused quad kernel", rule.Name())
	}
	levels := a.NumLevels()
	for lv := 0; lv < levels; lv++ {
		for bi := 0; bi < 3; bi++ {
			fa, fb := a.TreeBand(wavelet.TreeAA, lv, bi), b.TreeBand(wavelet.TreeAA, lv, bi)
			if !fa.SameSize(fb) {
				return fmt.Errorf("%w: level %d band %d", ErrPyramidMismatch, lv+1, bi)
			}
			qr.fuseQuadBand(ws, lv, bi, dst, a, b)
		}
	}
	for c := range a.LLs {
		if !a.LLs[c].SameSize(b.LLs[c]) {
			return fmt.Errorf("%w: lowpass residual %d", ErrPyramidMismatch, c)
		}
		averageLLWS(ws, dst.LLs[c], a.LLs[c], b.LLs[c])
	}
	return nil
}

// quadPlanes gathers the four tree planes of band bi at level lv in q2c
// order: p = AA, q = BB, r = AB, s = BA.
func quadPlanes(p *wavelet.DTPyramid, lv, bi int) (pp, qq, rr, ss []float32) {
	return p.TreeBand(wavelet.TreeAA, lv, bi).Pix,
		p.TreeBand(wavelet.TreeBB, lv, bi).Pix,
		p.TreeBand(wavelet.TreeAB, lv, bi).Pix,
		p.TreeBand(wavelet.TreeBA, lv, bi).Pix
}

func (MaxMagnitude) fuseQuadBand(ws *Workspace, lv, bi int, dst, a, b *wavelet.DTPyramid) {
	w := ws.workers()
	n := len(a.TreeBand(wavelet.TreeAA, lv, bi).Pix)
	t := &ws.maxQ
	t.pa, t.qa, t.ra, t.sa = quadPlanes(a, lv, bi)
	t.pb, t.qb, t.rb, t.sb = quadPlanes(b, lv, bi)
	t.pf, t.qf, t.rf, t.sf = quadPlanes(dst, lv, bi)
	w.Run(n, kernels.Grain(n, 48, w.N()), t)
}

func (Average) fuseQuadBand(ws *Workspace, lv, bi int, dst, a, b *wavelet.DTPyramid) {
	w := ws.workers()
	n := len(a.TreeBand(wavelet.TreeAA, lv, bi).Pix)
	t := &ws.avgQ
	t.pa, t.qa, t.ra, t.sa = quadPlanes(a, lv, bi)
	t.pb, t.qb, t.rb, t.sb = quadPlanes(b, lv, bi)
	t.pf, t.qf, t.rf, t.sf = quadPlanes(dst, lv, bi)
	w.Run(n, kernels.Grain(n, 48, w.N()), t)
}

func (we WindowEnergy) fuseQuadBand(ws *Workspace, lv, bi int, dst, a, b *wavelet.DTPyramid) {
	w := ws.workers()
	band := a.TreeBand(wavelet.TreeAA, lv, bi)
	n := len(band.Pix)
	if we.R <= 0 {
		// Degenerate window: activity is the pointwise squared magnitude,
		// computed inline from the quads — the fused pass needs no scratch.
		t := &ws.maxQ
		t.pa, t.qa, t.ra, t.sa = quadPlanes(a, lv, bi)
		t.pb, t.qb, t.rb, t.sb = quadPlanes(b, lv, bi)
		t.pf, t.qf, t.rf, t.sf = quadPlanes(dst, lv, bi)
		w.Run(n, kernels.Grain(n, 48, w.N()), t)
		return
	}
	// Windowed activity reads neighbors, so the four squared-magnitude
	// maps (z1/z2 of each stream) materialize in scratch — the same two
	// passes per complex band the unfused rule runs, fed from quads.
	activity := func(t *quadMag2Task, mag2S, actS *planeScratch, p *wavelet.DTPyramid) []float32 {
		t.p, t.q, t.r, t.s = quadPlanes(p, lv, bi)
		t.dst = mag2S.grow(ws.pool, n)
		w.Run(n, kernels.Grain(n, 24, w.N()), t)
		out := actS.grow(ws.pool, n)
		ws.win = winSumTask{dst: out, mag2: t.dst, w: band.W, h: band.H, r: we.R}
		w.Run(band.H, kernels.Grain(band.H, 8*band.W, w.N()), &ws.win)
		return out
	}
	ws.magQ.second = false
	e1a := activity(&ws.magQ, &ws.mag2A, &ws.actA, a)
	e1b := activity(&ws.magQ, &ws.mag2B, &ws.actB, b)
	ws.magQ.second = true
	e2a := activity(&ws.magQ, &ws.mag2A2, &ws.actA2, a)
	e2b := activity(&ws.magQ, &ws.mag2B2, &ws.actB2, b)
	t := &ws.selQ
	t.pa, t.qa, t.ra, t.sa = quadPlanes(a, lv, bi)
	t.pb, t.qb, t.rb, t.sb = quadPlanes(b, lv, bi)
	t.pf, t.qf, t.rf, t.sf = quadPlanes(dst, lv, bi)
	t.e1a, t.e1b, t.e2a, t.e2b = e1a, e1b, e2a, e2b
	w.Run(n, kernels.Grain(n, 64, w.N()), t)
}

// maxMagQuadTask fuses one band pair under the max-magnitude rule in a
// single traversal: q2c both streams into register locals, pick the
// larger-magnitude coefficient per complex band, c2q the winners back to
// quad layout. Expression shapes mirror q2cTask / maxMagBandTask /
// c2qTask exactly.
type maxMagQuadTask struct {
	pa, qa, ra, sa []float32
	pb, qb, rb, sb []float32
	pf, qf, rf, sf []float32
}

func (t *maxMagQuadTask) Tile(lo, hi, _ int) {
	pa, qa, ra, sa := t.pa, t.qa, t.ra, t.sa
	pb, qb, rb, sb := t.pb, t.qb, t.rb, t.sb
	pf, qf, rf, sf := t.pf, t.qf, t.rf, t.sf
	for i := lo; i < hi; i++ {
		ppa, qqa, rra, ssa := pa[i], qa[i], ra[i], sa[i]
		z1ra := (ppa - qqa) * invSqrt2
		z1ia := (rra + ssa) * invSqrt2
		z2ra := (ppa + qqa) * invSqrt2
		z2ia := (ssa - rra) * invSqrt2
		ppb, qqb, rrb, ssb := pb[i], qb[i], rb[i], sb[i]
		z1rb := (ppb - qqb) * invSqrt2
		z1ib := (rrb + ssb) * invSqrt2
		z2rb := (ppb + qqb) * invSqrt2
		z2ib := (ssb - rrb) * invSqrt2
		f1r, f1i := z1ra, z1ia
		ma := z1ra*z1ra + z1ia*z1ia
		mb := z1rb*z1rb + z1ib*z1ib
		if !(ma >= mb) {
			f1r, f1i = z1rb, z1ib
		}
		f2r, f2i := z2ra, z2ia
		ma = z2ra*z2ra + z2ia*z2ia
		mb = z2rb*z2rb + z2ib*z2ib
		if !(ma >= mb) {
			f2r, f2i = z2rb, z2ib
		}
		pf[i] = (f1r + f2r) * invSqrt2
		qf[i] = (f2r - f1r) * invSqrt2
		rf[i] = (f1i - f2i) * invSqrt2
		sf[i] = (f1i + f2i) * invSqrt2
	}
}

// avgQuadTask fuses one band pair under the average rule in a single
// traversal: q2c both streams, blend equally, c2q back.
type avgQuadTask struct {
	pa, qa, ra, sa []float32
	pb, qb, rb, sb []float32
	pf, qf, rf, sf []float32
}

func (t *avgQuadTask) Tile(lo, hi, _ int) {
	pa, qa, ra, sa := t.pa, t.qa, t.ra, t.sa
	pb, qb, rb, sb := t.pb, t.qb, t.rb, t.sb
	pf, qf, rf, sf := t.pf, t.qf, t.rf, t.sf
	for i := lo; i < hi; i++ {
		ppa, qqa, rra, ssa := pa[i], qa[i], ra[i], sa[i]
		z1ra := (ppa - qqa) * invSqrt2
		z1ia := (rra + ssa) * invSqrt2
		z2ra := (ppa + qqa) * invSqrt2
		z2ia := (ssa - rra) * invSqrt2
		ppb, qqb, rrb, ssb := pb[i], qb[i], rb[i], sb[i]
		z1rb := (ppb - qqb) * invSqrt2
		z1ib := (rrb + ssb) * invSqrt2
		z2rb := (ppb + qqb) * invSqrt2
		z2ib := (ssb - rrb) * invSqrt2
		f1r := 0.5 * (z1ra + z1rb)
		f1i := 0.5 * (z1ia + z1ib)
		f2r := 0.5 * (z2ra + z2rb)
		f2i := 0.5 * (z2ia + z2ib)
		pf[i] = (f1r + f2r) * invSqrt2
		qf[i] = (f2r - f1r) * invSqrt2
		rf[i] = (f1i - f2i) * invSqrt2
		sf[i] = (f1i + f2i) * invSqrt2
	}
}

// quadMag2Task materializes the squared-magnitude map of one complex band
// (z1, or z2 when second) straight from quad layout.
type quadMag2Task struct {
	p, q, r, s []float32
	dst        []float32
	second     bool
}

func (t *quadMag2Task) Tile(lo, hi, _ int) {
	p, q, r, s, dst := t.p, t.q, t.r, t.s, t.dst
	if !t.second {
		for i := lo; i < hi; i++ {
			pp, qq, rr, ss := p[i], q[i], r[i], s[i]
			re := (pp - qq) * invSqrt2
			im := (rr + ss) * invSqrt2
			dst[i] = re*re + im*im
		}
		return
	}
	for i := lo; i < hi; i++ {
		pp, qq, rr, ss := p[i], q[i], r[i], s[i]
		re := (pp + qq) * invSqrt2
		im := (ss - rr) * invSqrt2
		dst[i] = re*re + im*im
	}
}

// selQuadTask fuses one band pair under the window-energy rule: q2c both
// streams, select per complex band by precomputed activity, c2q back.
type selQuadTask struct {
	pa, qa, ra, sa     []float32
	pb, qb, rb, sb     []float32
	pf, qf, rf, sf     []float32
	e1a, e1b, e2a, e2b []float32
}

func (t *selQuadTask) Tile(lo, hi, _ int) {
	pa, qa, ra, sa := t.pa, t.qa, t.ra, t.sa
	pb, qb, rb, sb := t.pb, t.qb, t.rb, t.sb
	pf, qf, rf, sf := t.pf, t.qf, t.rf, t.sf
	e1a, e1b, e2a, e2b := t.e1a, t.e1b, t.e2a, t.e2b
	for i := lo; i < hi; i++ {
		ppa, qqa, rra, ssa := pa[i], qa[i], ra[i], sa[i]
		z1ra := (ppa - qqa) * invSqrt2
		z1ia := (rra + ssa) * invSqrt2
		z2ra := (ppa + qqa) * invSqrt2
		z2ia := (ssa - rra) * invSqrt2
		ppb, qqb, rrb, ssb := pb[i], qb[i], rb[i], sb[i]
		z1rb := (ppb - qqb) * invSqrt2
		z1ib := (rrb + ssb) * invSqrt2
		z2rb := (ppb + qqb) * invSqrt2
		z2ib := (ssb - rrb) * invSqrt2
		f1r, f1i := z1ra, z1ia
		if !(e1a[i] >= e1b[i]) {
			f1r, f1i = z1rb, z1ib
		}
		f2r, f2i := z2ra, z2ia
		if !(e2a[i] >= e2b[i]) {
			f2r, f2i = z2rb, z2ib
		}
		pf[i] = (f1r + f2r) * invSqrt2
		qf[i] = (f2r - f1r) * invSqrt2
		rf[i] = (f1i - f2i) * invSqrt2
		sf[i] = (f1i + f2i) * invSqrt2
	}
}

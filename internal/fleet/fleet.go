package fleet

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"zynqfusion/internal/farm"
	"zynqfusion/internal/frame"
	"zynqfusion/internal/sim"
)

// Sentinel errors, matchable with errors.Is. Submit also wraps
// farm.ErrSLOBurning when every board refuses admission, so fusiond's
// 503 mapping works unchanged fleet-wide.
var (
	// ErrClosed reports an operation on a closed fleet.
	ErrClosed = errors.New("fleet: closed")
	// ErrUnknownStream reports an id with no placement.
	ErrUnknownStream = errors.New("fleet: unknown stream")
	// ErrUnknownBoard reports an id with no board.
	ErrUnknownBoard = errors.New("fleet: unknown board")
	// ErrStreamLost reports an operation on a stream that died with an
	// unevacuated board kill.
	ErrStreamLost = errors.New("fleet: stream lost with its board")
)

// Config configures a Fleet.
type Config struct {
	// Boards is the board count M (at least 1).
	Boards int `json:"boards"`
	// PowerBudget is the fleet-wide power cap the coordinator arbitrates
	// across the per-board governors as demand shifts; each board is
	// guaranteed at least budget/(2M) so a cold board can still win its
	// first wave-engine lease. Zero leaves every board at the template's
	// own budget, unarbitrated.
	PowerBudget sim.Watts `json:"power_budget_watts"`
	// Board is the per-board farm template: queue defaults, per-board
	// bufpool arena bounds, SLO rules. Its PowerBudget field is the
	// per-board cap used when the fleet-wide budget is zero.
	Board farm.Config `json:"board"`
	// LoadFactor is the bounded-load expansion c (<= 0 selects 1.25):
	// no board holds more than ceil(c·K/M) of K placed streams.
	LoadFactor float64 `json:"load_factor"`
	// VNodes is the consistent-hash virtual-node count per board (<= 0
	// selects DefaultVNodes).
	VNodes int `json:"vnodes"`
}

// board is one modeled Zynq board: its own farm — wave engine, DVFS
// ladder, power governor, bufpool arena — plus fleet bookkeeping.
type board struct {
	id    string
	farm  *farm.Farm
	up    bool
	epoch int // restore generations
	// budget is the board's current arbitrated power cap.
	budget sim.Watts
}

// placement is one stream's fleet record: where it runs now, its
// migration lineage, and the accounting of retired (pre-migration)
// segments, which leave their boards' farms when the stream moves on.
type placement struct {
	id    string
	board string
	cfg   farm.StreamConfig // effective config of the current segment
	moves int
	dead  bool // lost to an unevacuated board kill

	// Retired-segment accumulators (the live segment's telemetry comes
	// from its farm).
	priorFused   int64
	priorDropped int64
	priorMisses  int64
	priorEnergy  sim.Joules
	priorBusy    sim.Time

	// lastSnap preserves the newest fused frame across a migration (a
	// plain clone), so /snapshot keeps serving through the handoff gap
	// before the continuation's first frame fuses.
	lastSnap *frame.Frame
}

// Fleet coordinates M boards behind consistent-hash placement with
// bounded load, fleet-wide admission control and power arbitration, and
// live stream migration. All methods are safe for concurrent use; the
// control plane is serialized on one mutex while the streams themselves
// fuse concurrently inside their boards' farms.
type Fleet struct {
	cfg  Config
	ring *Ring

	mu         sync.Mutex
	boards     map[string]*board
	order      []string // board ids in construction order
	placements map[string]*placement
	placeOrder []string // stream ids in submission order
	migrations []Migration
	retired    []*farm.Farm // closed farms of killed boards, kept for leak checks
	refused    int64        // fleet-wide admission refusals
	nextID     int64
	closed     bool
}

// New builds a fleet of cfg.Boards boards named board0..board{M-1}.
func New(cfg Config) (*Fleet, error) {
	if cfg.Boards < 1 {
		return nil, fmt.Errorf("fleet: need at least 1 board, got %d", cfg.Boards)
	}
	if cfg.LoadFactor <= 0 {
		cfg.LoadFactor = DefaultLoadFactor
	}
	c := &Fleet{
		cfg:        cfg,
		ring:       NewRing(cfg.VNodes),
		boards:     make(map[string]*board),
		placements: make(map[string]*placement),
	}
	for i := 0; i < cfg.Boards; i++ {
		id := fmt.Sprintf("board%d", i)
		c.boards[id] = &board{id: id, farm: farm.New(c.boardConfig()), up: true,
			budget: c.boardConfig().PowerBudget}
		c.order = append(c.order, id)
		c.ring.Add(id)
	}
	c.mu.Lock()
	c.arbitrateLocked()
	c.mu.Unlock()
	return c, nil
}

// boardConfig derives one board's farm config from the template: with a
// fleet-wide budget the board starts at an even share (arbitration
// re-splits it as demand shifts), otherwise the template's own cap
// applies.
func (c *Fleet) boardConfig() farm.Config {
	fc := c.cfg.Board
	if c.cfg.PowerBudget > 0 {
		fc.PowerBudget = c.cfg.PowerBudget / sim.Watts(c.cfg.Boards)
	}
	return fc
}

// upBoardsLocked returns the live board ids in construction order.
func (c *Fleet) upBoardsLocked() []string {
	out := make([]string, 0, len(c.order))
	for _, id := range c.order {
		if c.boards[id].up {
			out = append(out, id)
		}
	}
	return out
}

// loadLocked counts live (non-dead) placements per board.
func (c *Fleet) loadLocked() map[string]int {
	load := make(map[string]int, len(c.boards))
	for _, p := range c.placements {
		if !p.dead {
			load[p.board]++
		}
	}
	return load
}

// liveCountLocked counts live placements fleet-wide.
func (c *Fleet) liveCountLocked() int {
	n := 0
	for _, p := range c.placements {
		if !p.dead {
			n++
		}
	}
	return n
}

// Submit places and starts a stream on the fleet. An empty id gets a
// fleet-assigned "f<n>". Placement is consistent-hash with bounded load
// over the live boards; a board whose farm refuses admission (its SLO
// error budget is burning) is skipped and the walk continues, so one
// burning board shifts load instead of browning out the fleet — only
// when *every* live board refuses does Submit fail, wrapping
// farm.ErrSLOBurning so HTTP clients still see the 503 backpressure
// contract.
func (c *Fleet) Submit(cfg farm.StreamConfig) (*farm.Stream, string, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, "", ErrClosed
	}
	if cfg.ID == "" {
		for {
			c.nextID++
			cfg.ID = fmt.Sprintf("f%d", c.nextID)
			if _, taken := c.placements[cfg.ID]; !taken {
				break
			}
			cfg.ID = ""
		}
	}
	if _, taken := c.placements[cfg.ID]; taken {
		return nil, "", c.unlockErr(fmt.Errorf("fleet: duplicate stream id %q: %w", cfg.ID, farm.ErrDuplicate))
	}
	load := c.loadLocked()
	capPer := BoundedCap(c.liveCountLocked()+1, len(c.upBoardsLocked()), c.cfg.LoadFactor)
	refusing := map[string]struct{}{}
	for {
		bid, err := c.ring.Place(cfg.ID, load, capPer, func(b string) bool {
			if !c.boards[b].up {
				return false
			}
			_, r := refusing[b]
			return !r
		})
		if err != nil {
			if len(refusing) > 0 {
				c.refused++
				return nil, "", c.unlockErr(fmt.Errorf("fleet: every live board refused admission: %w", farm.ErrSLOBurning))
			}
			return nil, "", c.unlockErr(err)
		}
		s, err := c.boards[bid].farm.Submit(cfg)
		switch {
		case err == nil:
			p := &placement{id: cfg.ID, board: bid, cfg: s.Config()}
			c.placements[cfg.ID] = p
			c.placeOrder = append(c.placeOrder, cfg.ID)
			c.arbitrateLocked()
			c.mu.Unlock()
			return s, bid, nil
		case errors.Is(err, farm.ErrSLOBurning):
			// This board is shedding; walk on.
			refusing[bid] = struct{}{}
		default:
			return nil, "", c.unlockErr(err)
		}
	}
}

// unlockErr releases the fleet lock and passes the error through — the
// error-path unlock helper for methods that hold c.mu across farm calls.
func (c *Fleet) unlockErr(err error) error {
	c.mu.Unlock()
	return err
}

// Get returns a stream and the board it currently runs on.
func (c *Fleet) Get(id string) (*farm.Stream, string, bool) {
	c.mu.Lock()
	p, ok := c.placements[id]
	if !ok || p.dead {
		c.mu.Unlock()
		return nil, "", false
	}
	b := c.boards[p.board]
	c.mu.Unlock()
	s, ok := b.farm.Get(id)
	return s, b.id, ok
}

// Stop stops one stream (waiting for its worker) wherever it runs.
func (c *Fleet) Stop(id string) error {
	s, _, ok := c.Get(id)
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownStream, id)
	}
	s.Stop()
	<-s.Done()
	return nil
}

// Wait blocks until every live placement's current segment has finished.
// Unbounded streams must be stopped first.
func (c *Fleet) Wait() {
	for {
		c.mu.Lock()
		var pending *farm.Stream
		for _, id := range c.placeOrder {
			p := c.placements[id]
			if p.dead {
				continue
			}
			if s, ok := c.boards[p.board].farm.Get(id); ok {
				select {
				case <-s.Done():
				default:
					pending = s
				}
			}
			if pending != nil {
				break
			}
		}
		c.mu.Unlock()
		if pending == nil {
			return
		}
		// Wait outside the lock: a migration may move other streams
		// meanwhile, so re-scan after this one drains.
		<-pending.Done()
	}
}

// Close stops every board's farm and refuses further fleet operations.
func (c *Fleet) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	boards := make([]*board, 0, len(c.order))
	for _, id := range c.order {
		boards = append(boards, c.boards[id])
	}
	c.mu.Unlock()
	for _, b := range boards {
		b.farm.Close()
	}
}

// Closed reports whether the fleet has begun shutting down.
func (c *Fleet) Closed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}

// Kill takes a board down. With evacuate, its live streams migrate to
// the surviving boards first (bounded-load ring walk, in stream-id
// order — deterministic); without it they are lost: stopped with the
// board, their placements marked dead. Either way the board's farm is
// closed — every bufpool lease drains — and retained for post-mortem
// reads and leak checks. It returns the ids of the streams lost.
func (c *Fleet) Kill(boardID string, evacuate bool) ([]string, error) {
	c.mu.Lock()
	b, ok := c.boards[boardID]
	if !ok {
		return nil, c.unlockErr(fmt.Errorf("%w: %q", ErrUnknownBoard, boardID))
	}
	if !b.up {
		return nil, c.unlockErr(fmt.Errorf("fleet: board %q already down", boardID))
	}
	b.up = false // no longer a placement or migration target
	resident := c.streamsOnLocked(boardID)
	var lost []string
	if evacuate {
		for _, id := range resident {
			if _, err := c.migrateLocked(id, "", "evacuate:"+boardID); err != nil {
				// No surviving board can take it (all down or at capacity):
				// it goes down with this one.
				lost = append(lost, id)
			}
		}
	} else {
		lost = resident
	}
	for _, id := range lost {
		c.placements[id].dead = true
	}
	farmRef := b.farm
	c.retired = append(c.retired, farmRef)
	c.arbitrateLocked()
	c.mu.Unlock()
	// Close outside the lock: it waits for every resident stream to
	// drain, and control-plane reads should not block behind that.
	farmRef.Close()
	return lost, nil
}

// Restore brings a killed board back: a fresh farm (new epoch) joins
// placement with zero streams and its arbitrated budget share.
func (c *Fleet) Restore(boardID string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	b, ok := c.boards[boardID]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownBoard, boardID)
	}
	if b.up {
		return fmt.Errorf("fleet: board %q already up", boardID)
	}
	b.farm = farm.New(c.boardConfig())
	b.up = true
	b.epoch++
	b.budget = c.boardConfig().PowerBudget
	c.arbitrateLocked()
	return nil
}

// streamsOnLocked returns the live stream ids placed on a board, sorted.
func (c *Fleet) streamsOnLocked(boardID string) []string {
	var out []string
	for id, p := range c.placements {
		if p.board == boardID && !p.dead {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}

// SetPowerBudget rebinds the fleet-wide power cap and re-arbitrates the
// per-board splits immediately — the lever a power-budget flap pulls.
func (c *Fleet) SetPowerBudget(w sim.Watts) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cfg.PowerBudget = w
	if w <= 0 {
		// Back to the template's unarbitrated per-board cap.
		for _, id := range c.order {
			b := c.boards[id]
			b.budget = c.cfg.Board.PowerBudget
			if b.up {
				b.farm.SetPowerBudget(b.budget)
			}
		}
		return
	}
	c.arbitrateLocked()
}

// Arbitrate re-splits the fleet power budget across the live boards by
// current demand. Submit, Migrate, Kill, Restore and SetPowerBudget all
// run it implicitly; exposing it lets operators (and the chaos harness)
// force a re-split.
func (c *Fleet) Arbitrate() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.arbitrateLocked()
}

// arbitrateLocked splits the fleet budget over the live boards: half
// evenly — so every board keeps at least budget/(2·live) and a cold
// board can still win its first wave-engine grant — and half
// proportionally to each board's current modeled draw, so the cap
// follows the demand. Callers hold c.mu.
func (c *Fleet) arbitrateLocked() {
	if c.cfg.PowerBudget <= 0 {
		return
	}
	ups := c.upBoardsLocked()
	if len(ups) == 0 {
		return
	}
	demand := make(map[string]sim.Watts, len(ups))
	var total sim.Watts
	for _, id := range ups {
		d := c.boards[id].farm.Governor().Stats().AggregatePower
		demand[id] = d
		total += d
	}
	even := c.cfg.PowerBudget / sim.Watts(len(ups))
	for _, id := range ups {
		b := c.boards[id]
		w := even
		if total > 0 {
			w = even/2 + (c.cfg.PowerBudget/2)*(demand[id]/total)
		}
		b.budget = w
		b.farm.SetPowerBudget(w)
	}
}

package fleet

import (
	"fmt"
	"math/rand"
	"testing"
)

// keySets are the property-test corpora: three differently-shaped
// 1024-key populations (sequential stream ids, zero-padded camera names,
// seeded-random hex). The ring must meet the uniformity and disruption
// bounds on every one — the hash has no favorite key shape.
func keySets() map[string][]string {
	const K = 1024
	sets := map[string][]string{}
	seq := make([]string, K)
	for i := range seq {
		seq[i] = fmt.Sprintf("s%d", i)
	}
	sets["sequential"] = seq
	cam := make([]string, K)
	for i := range cam {
		cam[i] = fmt.Sprintf("cam-%04d", i)
	}
	sets["padded"] = cam
	rng := rand.New(rand.NewSource(99))
	hex := make([]string, K)
	for i := range hex {
		hex[i] = fmt.Sprintf("%016x", rng.Uint64())
	}
	sets["random"] = hex
	return sets
}

func boards(m int) []string {
	out := make([]string, m)
	for i := range out {
		out[i] = fmt.Sprintf("board%d", i)
	}
	return out
}

// TestRingBoundedLoadUniformity places 1024 keys on M ∈ {2..16} boards
// through the bounded-load path the coordinator uses and asserts the
// structural guarantee: no board exceeds ceil(c·K/M) keys, i.e.
// placement imbalance is capped at the load factor c = 1.25 over ideal.
func TestRingBoundedLoadUniformity(t *testing.T) {
	for name, keys := range keySets() {
		for m := 2; m <= 16; m++ {
			r := NewRing(0)
			for _, b := range boards(m) {
				r.Add(b)
			}
			load := map[string]int{}
			for i, key := range keys {
				cap := BoundedCap(i+1, m, DefaultLoadFactor)
				b, err := r.Place(key, load, cap, nil)
				if err != nil {
					t.Fatalf("%s m=%d: key %q unplaceable: %v", name, m, key, err)
				}
				load[b]++
			}
			bound := BoundedCap(len(keys), m, DefaultLoadFactor)
			for b, n := range load {
				if n > bound {
					t.Errorf("%s m=%d: board %s holds %d keys, bounded-load cap %d", name, m, b, n, bound)
				}
			}
		}
	}
}

// TestRingUnboundedSpread bounds the raw (load-blind) consistent-hash
// spread: with 128 virtual nodes per board the hottest board stays under
// 1.5x the ideal K/M share for every M ∈ {2..16} and every key corpus.
// This is the statistical layer; the bounded-load cap above is the hard
// one.
func TestRingUnboundedSpread(t *testing.T) {
	for name, keys := range keySets() {
		for m := 2; m <= 16; m++ {
			r := NewRing(0)
			for _, b := range boards(m) {
				r.Add(b)
			}
			load := map[string]int{}
			for _, key := range keys {
				b, err := r.Owner(key)
				if err != nil {
					t.Fatal(err)
				}
				load[b]++
			}
			for b, n := range load {
				if n*m*2 > len(keys)*3 { // n > 1.5 * K/m
					t.Errorf("%s m=%d: board %s owns %d of %d keys (> 1.5x ideal %d)",
						name, m, b, n, len(keys), len(keys)/m)
				}
			}
		}
	}
}

// TestRingMinimalDisruption pins the consistent-hashing contract on
// join and leave for M ∈ {2..16}:
//
//   - join: every moved key moves *to* the new board, and at most
//     ceil(K/M)+slack keys move (slack = K/16 covers vnode-arc variance);
//   - leave: exactly the departed board's keys move, every key that was
//     on a surviving board stays put.
func TestRingMinimalDisruption(t *testing.T) {
	const slackDiv = 16
	for name, keys := range keySets() {
		for m := 2; m <= 16; m++ {
			r := NewRing(0)
			for _, b := range boards(m) {
				r.Add(b)
			}
			owner := map[string]string{}
			for _, key := range keys {
				b, err := r.Owner(key)
				if err != nil {
					t.Fatal(err)
				}
				owner[key] = b
			}

			// Join.
			r.Add("boardX")
			moved := 0
			for _, key := range keys {
				b, _ := r.Owner(key)
				if b != owner[key] {
					if b != "boardX" {
						t.Fatalf("%s m=%d: key %q moved %s->%s on join, not to the new board",
							name, m, key, owner[key], b)
					}
					moved++
				}
			}
			bound := (len(keys)+m-1)/m + len(keys)/slackDiv
			if moved > bound {
				t.Errorf("%s m=%d: join moved %d keys, bound ceil(K/M)+K/%d = %d",
					name, m, moved, slackDiv, bound)
			}

			// Leave (remove the joined board): everything returns to its
			// pre-join owner — leave disruption is exactly the departed
			// board's keys, and the round trip is lossless.
			r.Remove("boardX")
			for _, key := range keys {
				b, _ := r.Owner(key)
				if b != owner[key] {
					t.Fatalf("%s m=%d: key %q on %s after join+leave, was on %s",
						name, m, key, b, owner[key])
				}
			}

			// Leave of an original member: only its keys move.
			r.Remove("board0")
			movedLeave := 0
			for _, key := range keys {
				b, _ := r.Owner(key)
				if owner[key] == "board0" {
					if b == "board0" {
						t.Fatalf("%s m=%d: key %q still on removed board", name, m, key)
					}
					movedLeave++
				} else if b != owner[key] {
					t.Fatalf("%s m=%d: key %q moved %s->%s though its board survived",
						name, m, key, owner[key], b)
				}
			}
			if movedLeave > bound {
				t.Errorf("%s m=%d: leave moved %d keys, bound %d", name, m, movedLeave, bound)
			}
		}
	}
}

// TestRingPlaceSkipsDownAndFull exercises the walk's liveness and
// capacity skips: a down home board is passed over, a full board is
// passed over, and when nothing is eligible Place reports ErrNoBoard.
func TestRingPlaceSkipsDownAndFull(t *testing.T) {
	r := NewRing(0)
	r.Add("a")
	r.Add("b")
	home, err := r.Owner("key")
	if err != nil {
		t.Fatal(err)
	}
	other := "a"
	if home == "a" {
		other = "b"
	}
	up := func(b string) bool { return b != home }
	if got, err := r.Place("key", nil, 0, up); err != nil || got != other {
		t.Fatalf("down home: placed on %q (%v), want %q", got, err, other)
	}
	load := map[string]int{home: 5}
	if got, err := r.Place("key", load, 5, nil); err != nil || got != other {
		t.Fatalf("full home: placed on %q (%v), want %q", got, err, other)
	}
	load[other] = 5
	if _, err := r.Place("key", load, 5, nil); err != ErrNoBoard {
		t.Fatalf("all full: err = %v, want ErrNoBoard", err)
	}
	if _, err := r.Place("key", nil, 0, func(string) bool { return false }); err != ErrNoBoard {
		t.Fatalf("all down: err = %v, want ErrNoBoard", err)
	}
	if _, err := NewRing(0).Owner("key"); err != ErrNoBoard {
		t.Fatalf("empty ring: err = %v, want ErrNoBoard", err)
	}
}

func TestBoundedCap(t *testing.T) {
	cases := []struct {
		k, m int
		c    float64
		want int
	}{
		{256, 8, 1.25, 40}, // the acceptance figure: 1.25x ideal 32
		{1024, 16, 1.25, 80},
		{10, 3, 1.25, 5},
		{1, 4, 1.25, 1},
		{0, 4, 1.25, 1},
		{5, 0, 1.25, 0},
		{8, 4, 0, 3}, // c<=0 takes the default 1.25
	}
	for _, c := range cases {
		if got := BoundedCap(c.k, c.m, c.c); got != c.want {
			t.Errorf("BoundedCap(%d, %d, %g) = %d, want %d", c.k, c.m, c.c, got, c.want)
		}
	}
}

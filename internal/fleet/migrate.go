package fleet

import (
	"fmt"

	"zynqfusion/internal/sim"
)

// Migration is one completed stream handoff, kept in the fleet's history
// (newest last) and served on /fleet.
type Migration struct {
	Stream string `json:"stream"`
	From   string `json:"from"`
	To     string `json:"to"`
	// Reason records what triggered the move: "hotspot", "drain",
	// "evacuate:<board>", an operator's reason, ...
	Reason string `json:"reason"`
	// ResumeSeq is the first capture sequence the continuation fuses on
	// the target board (the frames below it fused on the source).
	ResumeSeq int64 `json:"resume_seq"`
	// Completed marks a stream that had already fused its whole bounded
	// run when the migration landed: the placement moved, no
	// continuation was started.
	Completed bool `json:"completed,omitempty"`
	// SegmentFused and SegmentEnergy are the retired source segment's
	// accounting — together with the continuation's telemetry they let a
	// reader reconstruct the stream's full history, and the difference
	// against an unmigrated run is the migration's modeled cost (one
	// pipeline refill at the configured depth).
	SegmentFused  int64      `json:"segment_fused"`
	SegmentEnergy sim.Joules `json:"segment_energy_joules"`
}

// Migrate moves one live stream to another board: the source segment is
// stopped — the pipelined executor drains its in-flight depth and every
// bufpool lease returns — and a continuation stream re-leases on the
// target with StartSeq at the first unfused frame. Captured frames are a
// pure function of (Seed, seq), so the continuation's pixels are
// bit-identical to the frames the unmigrated stream would have fused;
// the modeled cost of the move is one pipeline refill on the target.
//
// An empty target picks the next live board on the stream's ring walk
// (bounded load, never the source); naming a down, full or unknown board
// is an error. The newest fused frame survives the handoff as the
// stream's served snapshot until the continuation's first frame lands.
func (c *Fleet) Migrate(id, to, reason string) (Migration, error) {
	c.mu.Lock()
	m, err := c.migrateLocked(id, to, reason)
	c.mu.Unlock()
	return m, err
}

func (c *Fleet) migrateLocked(id, to, reason string) (Migration, error) {
	p, ok := c.placements[id]
	if !ok {
		return Migration{}, fmt.Errorf("%w: %q", ErrUnknownStream, id)
	}
	if p.dead {
		return Migration{}, fmt.Errorf("%w: %q", ErrStreamLost, id)
	}
	src := c.boards[p.board]

	// Pick the target before touching the stream, so a placement failure
	// leaves the source segment running.
	if to == "" {
		load := c.loadLocked()
		capPer := BoundedCap(c.liveCountLocked(), len(c.upBoardsLocked()), c.cfg.LoadFactor)
		t, err := c.ring.Place(id, load, capPer, func(b string) bool {
			return b != p.board && c.boards[b].up
		})
		if err != nil {
			return Migration{}, fmt.Errorf("fleet: no board can take %q: %w", id, err)
		}
		to = t
	}
	dst, ok := c.boards[to]
	if !ok {
		return Migration{}, fmt.Errorf("%w: %q", ErrUnknownBoard, to)
	}
	if !dst.up {
		return Migration{}, fmt.Errorf("fleet: target board %q is down", to)
	}
	if to == p.board {
		return Migration{}, fmt.Errorf("fleet: stream %q already on %q", id, to)
	}

	s, ok := src.farm.Get(id)
	if !ok {
		// The stream's last segment completed and a previous migration
		// already retired it from its farm; only the placement moves.
		// Handled as a completed handoff — not an error — so a migration's
		// outcome stays a pure function of the request sequence no matter
		// when the segment happened to finish.
		m := Migration{
			Stream: id, From: p.board, To: to, Reason: reason,
			ResumeSeq: p.cfg.Frames, Completed: true,
		}
		p.board = to
		p.moves++
		c.migrations = append(c.migrations, m)
		c.arbitrateLocked()
		return m, nil
	}

	// Drain the source segment: Stop flushes the capture queue, the
	// in-flight pipeline depth completes, the final snapshot materializes
	// out of the pool and the sub-pool drains — zero leases outstanding.
	s.Stop()
	<-s.Done()
	tele := s.Telemetry()
	if snap := s.Snapshot(); snap != nil {
		p.lastSnap = snap // plain clone: serving continuity across the gap
	}
	resume := s.LastFusedSeq() + 1
	cfg := s.Config()
	if err := src.farm.Forget(id); err != nil {
		return Migration{}, fmt.Errorf("fleet: retiring source segment: %w", err)
	}
	p.priorFused += tele.Fused
	p.priorDropped += tele.Dropped
	p.priorMisses += tele.DeadlineMisses
	p.priorEnergy += tele.Stages.Energy
	p.priorBusy += tele.Stages.Total

	m := Migration{
		Stream: id, From: p.board, To: to, Reason: reason,
		ResumeSeq: resume, SegmentFused: tele.Fused, SegmentEnergy: tele.Stages.Energy,
	}
	m.Completed = cfg.Frames > 0 && resume >= cfg.Frames
	if !m.Completed {
		cfg.StartSeq = resume
		if _, err := dst.farm.Submit(cfg); err != nil {
			// The target refused (burning, closing). Resume on the source:
			// it was fusing this stream a moment ago.
			if _, backErr := src.farm.Submit(cfg); backErr != nil {
				p.dead = true
				return Migration{}, fmt.Errorf("fleet: migration of %q stranded (target: %v; source: %v)", id, err, backErr)
			}
			p.cfg = cfg
			return Migration{}, fmt.Errorf("fleet: target %q refused %q, resumed on %q: %w", to, id, p.board, err)
		}
	}
	p.board = to
	p.cfg = cfg
	p.moves++
	c.migrations = append(c.migrations, m)
	c.arbitrateLocked()
	return m, nil
}

// AppendSnapshotPGM appends the stream's newest fused frame as binary
// PGM. It prefers the live segment's snapshot and falls back to the
// frame preserved at the last migration, so the stream stays servable
// through a handoff (and after it completes, wherever it last ran).
func (c *Fleet) AppendSnapshotPGM(id string, dst []byte) ([]byte, bool) {
	c.mu.Lock()
	p, ok := c.placements[id]
	if !ok {
		c.mu.Unlock()
		return dst, false
	}
	var b *board
	if !p.dead {
		b = c.boards[p.board]
	}
	snap := p.lastSnap
	c.mu.Unlock()
	if b != nil {
		if s, ok := b.farm.Get(id); ok {
			if out, ok := s.AppendSnapshotPGM(dst); ok {
				return out, true
			}
		}
	}
	if snap != nil {
		return snap.AppendPGM(dst), true
	}
	return dst, false
}

package fleet

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"sync"

	"zynqfusion/internal/farm"
)

// NewServer returns the fusiond --fleet HTTP handler over a coordinator.
//
//	GET    /healthz                   liveness probe (503 while draining)
//	GET    /fleet                     fleet rollup JSON: boards, placements,
//	                                  migration history, totals
//	GET    /metrics                   the same rollup
//	GET    /metrics?format=prometheus fleet_* families in Prometheus text format
//	GET    /boards/{id}               one board's full farm Metrics document
//	POST   /boards/{id}/kill          take the board down (?evacuate=false to
//	                                  drop its streams instead of migrating)
//	POST   /boards/{id}/restore       bring a killed board back (fresh epoch)
//	POST   /streams                   submit a stream (farm StreamConfig JSON);
//	                                  the coordinator places it
//	GET    /streams                   placement telemetry for every stream
//	GET    /streams/{id}              one stream's placement telemetry
//	DELETE /streams/{id}              stop a stream wherever it runs
//	POST   /streams/{id}/migrate      move the stream (?to=boardN pins the
//	                                  target, otherwise the ring picks one)
//	GET    /streams/{id}/snapshot.pgm latest fused frame as binary PGM,
//	                                  servable across a migration handoff
func NewServer(c *Fleet) http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if c.Closed() {
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte("draining\n"))
			return
		}
		w.Write([]byte("ok\n"))
	})

	rollup := func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("format") == "prometheus" {
			var buf bytes.Buffer
			if err := WritePrometheus(&buf, c.Rollup()); err != nil {
				writeError(w, http.StatusInternalServerError, err.Error())
				return
			}
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			w.Write(buf.Bytes())
			return
		}
		writeJSON(w, http.StatusOK, c.Rollup())
	}
	mux.HandleFunc("GET /fleet", rollup)
	mux.HandleFunc("GET /metrics", rollup)

	mux.HandleFunc("GET /boards/{id}", func(w http.ResponseWriter, r *http.Request) {
		m, ok := c.BoardMetrics(r.PathValue("id"))
		if !ok {
			writeError(w, http.StatusNotFound, "no such board")
			return
		}
		writeJSON(w, http.StatusOK, m)
	})

	mux.HandleFunc("POST /boards/{id}/kill", func(w http.ResponseWriter, r *http.Request) {
		evacuate := r.URL.Query().Get("evacuate") != "false"
		lost, err := c.Kill(r.PathValue("id"), evacuate)
		if err != nil {
			status := http.StatusConflict
			if errors.Is(err, ErrUnknownBoard) {
				status = http.StatusNotFound
			}
			writeError(w, status, err.Error())
			return
		}
		if lost == nil {
			lost = []string{}
		}
		writeJSON(w, http.StatusOK, map[string]any{"killed": r.PathValue("id"), "lost": lost})
	})

	mux.HandleFunc("POST /boards/{id}/restore", func(w http.ResponseWriter, r *http.Request) {
		if err := c.Restore(r.PathValue("id")); err != nil {
			status := http.StatusConflict
			if errors.Is(err, ErrUnknownBoard) {
				status = http.StatusNotFound
			}
			writeError(w, status, err.Error())
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"restored": r.PathValue("id")})
	})

	mux.HandleFunc("POST /streams", func(w http.ResponseWriter, r *http.Request) {
		var cfg farm.StreamConfig
		if err := json.NewDecoder(r.Body).Decode(&cfg); err != nil {
			writeError(w, http.StatusBadRequest, "bad stream config: "+err.Error())
			return
		}
		s, boardID, err := c.Submit(cfg)
		if err != nil {
			status := http.StatusBadRequest
			switch {
			case errors.Is(err, ErrClosed), errors.Is(err, farm.ErrSLOBurning), errors.Is(err, ErrNoBoard):
				status = http.StatusServiceUnavailable
			case errors.Is(err, farm.ErrDuplicate):
				status = http.StatusConflict
			}
			writeError(w, status, err.Error())
			return
		}
		writeJSON(w, http.StatusCreated, map[string]any{
			"board": boardID, "stream": s.Telemetry(),
		})
	})

	mux.HandleFunc("GET /streams", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, c.Rollup().Placements)
	})

	mux.HandleFunc("GET /streams/{id}", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		for _, p := range c.Rollup().Placements {
			if p.Stream == id {
				writeJSON(w, http.StatusOK, p)
				return
			}
		}
		writeError(w, http.StatusNotFound, "no such stream")
	})

	mux.HandleFunc("DELETE /streams/{id}", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		if err := c.Stop(id); err != nil {
			writeError(w, http.StatusNotFound, err.Error())
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"stopped": id})
	})

	mux.HandleFunc("POST /streams/{id}/migrate", func(w http.ResponseWriter, r *http.Request) {
		reason := r.URL.Query().Get("reason")
		if reason == "" {
			reason = "operator"
		}
		m, err := c.Migrate(r.PathValue("id"), r.URL.Query().Get("to"), reason)
		if err != nil {
			status := http.StatusConflict
			switch {
			case errors.Is(err, ErrUnknownStream), errors.Is(err, ErrUnknownBoard):
				status = http.StatusNotFound
			case errors.Is(err, ErrStreamLost):
				status = http.StatusGone
			case errors.Is(err, farm.ErrSLOBurning), errors.Is(err, ErrNoBoard):
				status = http.StatusServiceUnavailable
			}
			writeError(w, status, err.Error())
			return
		}
		writeJSON(w, http.StatusOK, m)
	})

	// Same recycling discipline as the per-farm server: encode straight
	// into a borrowed buffer, no per-request clone.
	snapBufs := sync.Pool{New: func() any { return new([]byte) }}
	mux.HandleFunc("GET /streams/{id}/snapshot.pgm", func(w http.ResponseWriter, r *http.Request) {
		bp := snapBufs.Get().(*[]byte)
		defer snapBufs.Put(bp)
		buf, ok := c.AppendSnapshotPGM(r.PathValue("id"), (*bp)[:0])
		*bp = buf[:0]
		if !ok {
			writeError(w, http.StatusNotFound, "no fused frame yet")
			return
		}
		w.Header().Set("Content-Type", "image/x-portable-graymap")
		w.Write(buf)
	})

	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

package fleet

import (
	"io"

	"zynqfusion/internal/bufpool"
	"zynqfusion/internal/farm"
	"zynqfusion/internal/obs"
	"zynqfusion/internal/sim"
)

// BoardTelemetry is one board's rollup row on /fleet.
type BoardTelemetry struct {
	ID string `json:"id"`
	Up bool   `json:"up"`
	// Epoch counts restores: 0 is the original farm, each Restore after
	// a Kill increments it.
	Epoch int `json:"epoch"`
	// Streams counts live placements assigned here; Active the segment
	// workers actually running right now.
	Streams int `json:"streams"`
	Active  int `json:"active"`
	// PowerBudget is the board's arbitrated share of the fleet budget;
	// AggregatePower its current modeled draw.
	PowerBudget    sim.Watts  `json:"power_budget_watts"`
	AggregatePower sim.Watts  `json:"aggregate_power_watts"`
	Fused          int64      `json:"fused"`
	Dropped        int64      `json:"dropped"`
	DeadlineMisses int64      `json:"deadline_misses"`
	Energy         sim.Joules `json:"energy_joules"`
	// Grants and Denials are the board's wave-engine lease ledger.
	Grants  int64 `json:"fpga_grants"`
	Denials int64 `json:"fpga_denials"`
	// Pool is the board's frame-store arena ledger — Outstanding must
	// read zero once every resident stream has ended.
	Pool bufpool.Stats `json:"pool"`
}

// PlacementTelemetry is one stream's fleet-level record: current board,
// migration lineage, and counters *cumulative across segments* (a
// migrated stream's retired segments left their farms, but not the
// fleet's ledger).
type PlacementTelemetry struct {
	Stream         string     `json:"stream"`
	Board          string     `json:"board"`
	Moves          int        `json:"moves"`
	Dead           bool       `json:"dead,omitempty"`
	Running        bool       `json:"running"`
	Fused          int64      `json:"fused"`
	Dropped        int64      `json:"dropped"`
	DeadlineMisses int64      `json:"deadline_misses"`
	Energy         sim.Joules `json:"energy_joules"`
	// Busy is the stream's cumulative modeled busy time across all its
	// segments.
	Busy sim.Time `json:"busy_ps"`
}

// Totals is the fleet-wide rollup.
type Totals struct {
	Boards   int `json:"boards"`
	BoardsUp int `json:"boards_up"`
	// Streams counts live placements; Lost the streams that died with
	// unevacuated board kills.
	Streams int        `json:"streams"`
	Lost    int        `json:"lost"`
	Fused   int64      `json:"fused"`
	Energy  sim.Joules `json:"energy_joules"`
	// EnergyPerFrame is fleet J/frame over every fused frame, retired
	// segments included.
	EnergyPerFrame   sim.Joules `json:"energy_per_frame_joules"`
	Migrations       int64      `json:"migrations_total"`
	AdmissionRefused int64      `json:"admission_refused_total"`
	PowerBudget      sim.Watts  `json:"power_budget_watts"`
	// Imbalance is max live placements on a live board over the ideal
	// even share — bounded-load placement keeps it at or under the
	// configured load factor (1.25 by default).
	Imbalance float64 `json:"placement_imbalance"`
}

// Telemetry is the full /fleet document.
type Telemetry struct {
	Boards     []BoardTelemetry     `json:"boards"`
	Placements []PlacementTelemetry `json:"placements"`
	Migrations []Migration          `json:"migrations"`
	Totals     Totals               `json:"totals"`
}

// Rollup snapshots the fleet: per-board rows in board order, placements
// in submission order, the migration history and the fleet totals.
func (c *Fleet) Rollup() Telemetry {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := Telemetry{
		Boards:     make([]BoardTelemetry, 0, len(c.order)),
		Placements: make([]PlacementTelemetry, 0, len(c.placeOrder)),
		Migrations: append([]Migration(nil), c.migrations...),
	}
	load := c.loadLocked()
	for _, id := range c.order {
		b := c.boards[id]
		gov := b.farm.Governor().Stats()
		row := BoardTelemetry{
			ID: id, Up: b.up, Epoch: b.epoch,
			Streams:        load[id],
			PowerBudget:    b.budget,
			AggregatePower: gov.AggregatePower,
			Energy:         gov.Energy,
			Grants:         gov.Grants,
			Denials:        gov.Denials,
			Pool:           b.farm.Pool().Stats(),
		}
		for _, s := range b.farm.List() {
			st := s.Telemetry()
			if st.Running {
				row.Active++
			}
			row.Fused += st.Fused
			row.Dropped += st.Dropped
			row.DeadlineMisses += st.DeadlineMisses
		}
		t.Boards = append(t.Boards, row)
		if b.up {
			t.Totals.BoardsUp++
		}
	}
	t.Totals.Boards = len(c.order)
	t.Totals.Migrations = int64(len(c.migrations))
	t.Totals.AdmissionRefused = c.refused
	t.Totals.PowerBudget = c.cfg.PowerBudget

	maxLoad := 0
	for _, id := range c.placeOrder {
		p := c.placements[id]
		row := PlacementTelemetry{
			Stream: id, Board: p.board, Moves: p.moves, Dead: p.dead,
			Fused: p.priorFused, Dropped: p.priorDropped,
			DeadlineMisses: p.priorMisses, Energy: p.priorEnergy,
			Busy: p.priorBusy,
		}
		if !p.dead {
			t.Totals.Streams++
			if load[p.board] > maxLoad {
				maxLoad = load[p.board]
			}
			if s, ok := c.boards[p.board].farm.Get(id); ok {
				st := s.Telemetry()
				row.Running = st.Running
				row.Fused += st.Fused
				row.Dropped += st.Dropped
				row.DeadlineMisses += st.DeadlineMisses
				row.Energy += st.Stages.Energy
				row.Busy += st.Stages.Total
			}
		}
		t.Totals.Fused += row.Fused
		t.Totals.Energy += row.Energy
		t.Placements = append(t.Placements, row)
	}
	if t.Totals.Fused > 0 {
		t.Totals.EnergyPerFrame = t.Totals.Energy / sim.Joules(t.Totals.Fused)
	}
	if t.Totals.Streams > 0 && t.Totals.BoardsUp > 0 {
		ideal := float64(t.Totals.Streams) / float64(t.Totals.BoardsUp)
		t.Totals.Imbalance = float64(maxLoad) / ideal
	}
	return t
}

// BoardMetrics returns one live or retired-in-place board's full farm
// Metrics document (the same shape fusiond serves per farm), so a fleet
// operator can drill from the rollup into any board.
func (c *Fleet) BoardMetrics(boardID string) (farm.Metrics, bool) {
	c.mu.Lock()
	b, ok := c.boards[boardID]
	c.mu.Unlock()
	if !ok {
		return farm.Metrics{}, false
	}
	return b.farm.Metrics(), true
}

// CheckLeaks asserts zero outstanding bufpool leases across every farm
// the fleet ever ran — live boards and the retired farms of killed
// epochs alike. The chaos harness's "zero lost leases" invariant is
// exactly this call returning nil after all streams end.
func (c *Fleet) CheckLeaks() error {
	c.mu.Lock()
	farms := make([]*farm.Farm, 0, len(c.order)+len(c.retired))
	for _, id := range c.order {
		farms = append(farms, c.boards[id].farm)
	}
	farms = append(farms, c.retired...)
	c.mu.Unlock()
	for _, f := range farms {
		if err := f.Pool().CheckLeaks(); err != nil {
			return err
		}
	}
	return nil
}

// WritePrometheus renders the fleet rollup in the Prometheus text
// exposition format: fleet_* families labeled by board, layered above
// the per-board farm_* families each board's own endpoint serves.
func WritePrometheus(w io.Writer, t Telemetry) error {
	p := obs.NewProm(w)
	bl := func(id string) obs.Label { return obs.Label{K: "board", V: id} }

	bgauge := func(name, help string, get func(b BoardTelemetry) float64) {
		p.Family(name, "gauge", help)
		for _, b := range t.Boards {
			p.Sample("", get(b), bl(b.ID))
		}
	}
	bcounter := func(name, help string, get func(b BoardTelemetry) float64) {
		p.Family(name, "counter", help)
		for _, b := range t.Boards {
			p.Sample("", get(b), bl(b.ID))
		}
	}
	bgauge("fleet_board_up", "1 while the board is live, 0 after a kill.",
		func(b BoardTelemetry) float64 {
			if b.Up {
				return 1
			}
			return 0
		})
	bgauge("fleet_board_streams", "Live stream placements assigned to the board.",
		func(b BoardTelemetry) float64 { return float64(b.Streams) })
	bgauge("fleet_board_active_streams", "Stream workers currently running on the board.",
		func(b BoardTelemetry) float64 { return float64(b.Active) })
	bgauge("fleet_board_power_budget_watts", "The board's arbitrated share of the fleet power budget.",
		func(b BoardTelemetry) float64 { return float64(b.PowerBudget) })
	bgauge("fleet_board_power_watts", "The board's current modeled draw.",
		func(b BoardTelemetry) float64 { return float64(b.AggregatePower) })
	bcounter("fleet_board_fused_total", "Frames fused on the board (current epoch).",
		func(b BoardTelemetry) float64 { return float64(b.Fused) })
	bcounter("fleet_board_energy_joules_total", "Modeled energy drained on the board (current epoch).",
		func(b BoardTelemetry) float64 { return float64(b.Energy) })
	bcounter("fleet_board_fpga_grants_total", "Wave-engine lease grants on the board.",
		func(b BoardTelemetry) float64 { return float64(b.Grants) })
	bcounter("fleet_board_fpga_denials_total", "Wave-engine lease denials on the board.",
		func(b BoardTelemetry) float64 { return float64(b.Denials) })
	bgauge("fleet_board_pool_outstanding_leases", "Outstanding frame-store leases on the board's arena.",
		func(b BoardTelemetry) float64 { return float64(b.Pool.Outstanding) })

	p.Family("fleet_boards", "gauge", "Boards in the fleet.")
	p.Sample("", float64(t.Totals.Boards))
	p.Family("fleet_boards_up", "gauge", "Boards currently live.")
	p.Sample("", float64(t.Totals.BoardsUp))
	p.Family("fleet_streams", "gauge", "Live stream placements fleet-wide.")
	p.Sample("", float64(t.Totals.Streams))
	p.Family("fleet_streams_lost_total", "counter", "Streams lost to unevacuated board kills.")
	p.Sample("", float64(t.Totals.Lost))
	p.Family("fleet_fused_total", "counter", "Frames fused fleet-wide, retired segments included.")
	p.Sample("", float64(t.Totals.Fused))
	p.Family("fleet_energy_joules_total", "counter", "Modeled energy fleet-wide, retired segments included.")
	p.Sample("", float64(t.Totals.Energy))
	p.Family("fleet_energy_per_frame_joules", "gauge", "Fleet J per fused frame.")
	p.Sample("", float64(t.Totals.EnergyPerFrame))
	p.Family("fleet_migrations_total", "counter", "Completed stream migrations.")
	p.Sample("", float64(t.Totals.Migrations))
	p.Family("fleet_admission_refused_total", "counter", "Submissions refused with every board burning.")
	p.Sample("", float64(t.Totals.AdmissionRefused))
	p.Family("fleet_power_budget_watts", "gauge", "Fleet-wide arbitrated power budget (0 = unlimited).")
	p.Sample("", float64(t.Totals.PowerBudget))
	p.Family("fleet_placement_imbalance", "gauge", "Max live placements per board over the ideal even share.")
	p.Sample("", t.Totals.Imbalance)
	return p.Flush()
}

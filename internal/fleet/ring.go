package fleet

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"sort"
)

// ErrNoBoard reports a placement request no board can take: every board
// is down or at its bounded-load capacity.
var ErrNoBoard = errors.New("fleet: no board can take the stream")

// DefaultVNodes is the virtual-node count per board. 128 points per
// board keeps the arc-length spread tight enough that 1024 keys land
// within the bounded-load envelope without cascading (the ring property
// test pins the exact figures).
const DefaultVNodes = 128

// DefaultLoadFactor is the bounded-load expansion c of
// consistent-hashing-with-bounded-loads: no board carries more than
// ceil(c·K/M) of the K placed keys, so placement imbalance is capped at
// c times ideal by construction.
const DefaultLoadFactor = 1.25

// Ring is a consistent-hash ring over board ids with virtual nodes.
// Placement walks clockwise from the key's point, so adding or removing
// one board only moves the keys whose arcs it gains or loses — the
// minimal-disruption property the ring test pins. Ring is not safe for
// concurrent use; the fleet coordinator serializes access.
type Ring struct {
	vnodes int
	points []ringPoint // sorted by hash
	boards map[string]struct{}
}

type ringPoint struct {
	hash  uint64
	board string
}

// NewRing builds an empty ring with the given virtual-node count per
// board (<= 0 selects DefaultVNodes).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	return &Ring{vnodes: vnodes, boards: make(map[string]struct{})}
}

// hashKey is FNV-1a with a splitmix64 finalizer. Raw FNV clusters badly
// on short sequential keys ("s0", "s1", ...): whole runs of stream ids
// land on one arc and some boards see none at all. The finalizer's
// avalanche spreads them; the constants are splitmix64's, fixed forever
// so placements are stable across builds.
func hashKey(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Add inserts a board's virtual nodes. Adding a present board is a no-op.
func (r *Ring) Add(board string) {
	if _, ok := r.boards[board]; ok {
		return
	}
	r.boards[board] = struct{}{}
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, ringPoint{
			hash:  hashKey(fmt.Sprintf("%s#%d", board, i)),
			board: board,
		})
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].board < r.points[j].board
	})
}

// Remove deletes a board's virtual nodes. Removing an absent board is a
// no-op.
func (r *Ring) Remove(board string) {
	if _, ok := r.boards[board]; !ok {
		return
	}
	delete(r.boards, board)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.board != board {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Boards returns the member board ids, sorted.
func (r *Ring) Boards() []string {
	out := make([]string, 0, len(r.boards))
	for b := range r.boards {
		out = append(out, b)
	}
	sort.Strings(out)
	return out
}

// Owner returns the key's unconstrained home board: the first virtual
// node clockwise from the key's hash. It ignores load and liveness —
// Place layers those on — and reports ErrNoBoard on an empty ring.
func (r *Ring) Owner(key string) (string, error) {
	b, err := r.Place(key, nil, 0, nil)
	return b, err
}

// Place returns the board for key under bounded-load placement: the walk
// starts at the key's home point and skips boards that are down (up
// returns false) or already at capacity (load[board] >= cap), taking the
// first eligible board clockwise. A nil up accepts every board; cap <= 0
// disables the load bound. The walk visits each distinct board at most
// once and reports ErrNoBoard when none is eligible.
//
// Determinism: the outcome is a pure function of (ring membership, key,
// load, cap, up) — no randomness, no iteration-order dependence — which
// is what lets the chaos harness assert two-run-identical placements.
func (r *Ring) Place(key string, load map[string]int, capPer int, up func(string) bool) (string, error) {
	if len(r.points) == 0 {
		return "", ErrNoBoard
	}
	h := hashKey(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	seen := make(map[string]struct{}, len(r.boards))
	for i := 0; i < len(r.points) && len(seen) < len(r.boards); i++ {
		p := r.points[(start+i)%len(r.points)]
		if _, dup := seen[p.board]; dup {
			continue
		}
		seen[p.board] = struct{}{}
		if up != nil && !up(p.board) {
			continue
		}
		if capPer > 0 && load[p.board] >= capPer {
			continue
		}
		return p.board, nil
	}
	return "", ErrNoBoard
}

// BoundedCap returns the per-board key capacity for K keys across m
// eligible boards at load factor c: ceil(c·K/m), at least 1. It is the
// cap the coordinator passes to Place, making max-load <= c times the
// ideal K/m a structural invariant rather than a statistical hope.
func BoundedCap(k, m int, c float64) int {
	if m <= 0 {
		return 0
	}
	if c <= 0 {
		c = DefaultLoadFactor
	}
	cap := int(math.Ceil(c * float64(k) / float64(m)))
	if cap < 1 {
		cap = 1
	}
	return cap
}

// Package fleet coordinates M modeled Zynq boards — each with its own
// wave engine, DVFS ladder, power governor and bufpool arena (a
// farm.Farm) — behind one placement and control plane.
//
// Placement is consistent hashing with bounded loads: a stream's id
// hashes onto a virtual-node ring and walks clockwise past boards that
// are down, at their ceil(c·K/M) load cap (c = 1.25 by default), or
// refusing admission because their SLO error budget is burning. The
// structure gives three properties at once: placement imbalance capped
// at c times ideal, minimal key movement when boards join or leave, and
// fleet-wide backpressure — Submit fails wrapping farm.ErrSLOBurning
// only when every live board refuses.
//
// A fleet-wide power budget is arbitrated across the per-board
// governors: half split evenly (so a cold board can always win its
// first wave-engine lease) and half proportionally to each board's
// modeled draw, re-split on every submit, migration, kill, restore and
// budget change.
//
// Streams migrate live. Migrate drains the source segment — the
// pipelined executor's in-flight depth completes and every bufpool
// lease returns — then re-leases a continuation on the target with
// StartSeq at the first unfused frame. Captured frames are a pure
// function of (Seed, seq), so the continuation's pixels are
// bit-identical to what the unmigrated stream would have fused; the
// modeled migration cost is one pipeline refill at the configured
// depth. The newest fused frame is preserved across the handoff so
// snapshot serving never goes dark.
//
// Everything the coordinator decides — placement, evacuation order,
// migration targets — is a deterministic function of the request
// sequence, which is what lets the chaostest harness assert that two
// runs of the same seeded fault schedule produce identical event
// sequences and bit-identical survivor output.
//
// NewServer exposes the coordinator over HTTP (fusiond --fleet):
// /fleet for the rollup, Prometheus fleet_* families on /metrics,
// stream submit/stop/migrate/snapshot, and board kill/restore.
package fleet

package fleet

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"zynqfusion/internal/farm"
)

// runReference fuses one stream to completion on a bare single-board
// farm and returns its final fused frame (PGM bytes) and telemetry.
func runReference(t *testing.T, cfg farm.StreamConfig) ([]byte, farm.StreamTelemetry) {
	t.Helper()
	fm := farm.New(farm.Config{})
	defer fm.Close()
	s, err := fm.Submit(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fm.Wait()
	pgm, ok := s.AppendSnapshotPGM(nil)
	if !ok {
		t.Fatalf("reference %+v fused nothing", cfg)
	}
	return pgm, s.Telemetry()
}

// TestMigrationGolden pins the migration contract at pipeline depths 1,
// 2 and 4: a stream migrated mid-run ends with pixels bit-identical to
// an unmigrated run, and each segment's modeled energy is bit-for-bit
// the energy of a fresh run covering exactly that segment's frames —
// segment A equals a run bounded at the migration point j, segment B a
// run resumed at StartSeq j. The segments are pinned against *fresh*
// runs (not against each other) so the invariant is exact bitwise
// float equality, with no summation-order slack.
func TestMigrationGolden(t *testing.T) {
	const frames = 40
	for _, depth := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("depth%d", depth), func(t *testing.T) {
			c, err := New(Config{Boards: 2})
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()

			cfg := tinyStream("m", 42, frames)
			cfg.IntervalMS = 3 // paced so the migration lands mid-run
			cfg.Pipelined = true
			cfg.Depth = depth
			s, from, err := c.Submit(cfg)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; s.Telemetry().Fused < 4; i++ {
				if i > 2000 {
					t.Fatal("stream never fused 4 frames")
				}
				time.Sleep(time.Millisecond)
			}
			m, err := c.Migrate("m", "", "golden")
			if err != nil {
				t.Fatal(err)
			}
			if m.Completed || m.ResumeSeq <= 0 || m.ResumeSeq >= frames {
				t.Fatalf("migration did not land mid-run: %+v", m)
			}
			if m.From != from || m.To == from {
				t.Fatalf("migration endpoints: %+v (submitted on %s)", m, from)
			}
			j := m.ResumeSeq
			if m.SegmentFused != j {
				t.Fatalf("segment A fused %d frames, resume seq %d", m.SegmentFused, j)
			}

			c.Wait()
			cont, _, ok := c.Get("m")
			if !ok {
				t.Fatal("continuation lost")
			}
			contTele := cont.Telemetry()
			if contTele.Fused != frames-j {
				t.Fatalf("continuation fused %d, want %d", contTele.Fused, frames-j)
			}
			migPGM, ok := c.AppendSnapshotPGM("m", nil)
			if !ok {
				t.Fatal("no final snapshot")
			}

			// Reference U: the unmigrated run. The headline assertion —
			// migration is pixel-invisible.
			full := cfg
			uPGM, _ := runReference(t, full)
			if !bytes.Equal(migPGM, uPGM) {
				t.Fatalf("depth %d: migrated final frame differs from unmigrated run", depth)
			}

			// Reference A: a fresh run bounded at j reproduces segment A's
			// modeled energy exactly.
			segA := cfg
			segA.Frames = j
			_, aTele := runReference(t, segA)
			if aTele.Stages.Energy != m.SegmentEnergy {
				t.Fatalf("depth %d: segment A energy %v, reference %v",
					depth, m.SegmentEnergy, aTele.Stages.Energy)
			}
			if aTele.Fused != m.SegmentFused {
				t.Fatalf("depth %d: segment A fused %d, reference %d",
					depth, m.SegmentFused, aTele.Fused)
			}

			// Reference B: a fresh run resumed at j reproduces the
			// continuation — pixels and energy both bitwise.
			segB := cfg
			segB.StartSeq = j
			bPGM, bTele := runReference(t, segB)
			if !bytes.Equal(migPGM, bPGM) {
				t.Fatalf("depth %d: continuation final frame differs from fresh StartSeq=%d run", depth, j)
			}
			if bTele.Stages.Energy != contTele.Stages.Energy {
				t.Fatalf("depth %d: continuation energy %v, reference %v",
					depth, contTele.Stages.Energy, bTele.Stages.Energy)
			}

			// The fleet ledger rolls the segments up: total fused across
			// both segments covers every frame exactly once.
			r := c.Rollup()
			if r.Totals.Fused != frames {
				t.Fatalf("depth %d: fleet fused %d frames total, want %d", depth, r.Totals.Fused, frames)
			}
			c.Close()
			if err := c.CheckLeaks(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

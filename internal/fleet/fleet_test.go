package fleet

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"zynqfusion/internal/farm"
	"zynqfusion/internal/sim"
	"zynqfusion/internal/slo"
)

func tinyStream(id string, seed, frames int64) farm.StreamConfig {
	return farm.StreamConfig{ID: id, Seed: seed, W: 32, H: 24, Engine: "neon", Frames: frames}
}

// TestFleetPlacementDeterministicAndBounded submits 256 streams to two
// independent 8-board fleets and pins the acceptance properties:
// identical placements on both (placement is a pure function of the
// submission sequence) and max board load within the bounded-load cap,
// i.e. imbalance <= 1.25x the ideal 32 streams per board.
func TestFleetPlacementDeterministicAndBounded(t *testing.T) {
	place := func() (map[string]string, *Fleet) {
		c, err := New(Config{Boards: 8})
		if err != nil {
			t.Fatal(err)
		}
		got := make(map[string]string, 256)
		for i := 0; i < 256; i++ {
			id := fmt.Sprintf("s%d", i)
			_, bid, err := c.Submit(tinyStream(id, int64(i), 1))
			if err != nil {
				t.Fatalf("submit %s: %v", id, err)
			}
			got[id] = bid
		}
		return got, c
	}
	a, ca := place()
	b, cb := place()
	defer ca.Close()
	defer cb.Close()
	for id, bid := range a {
		if b[id] != bid {
			t.Fatalf("stream %s placed on %s and %s across identical runs", id, bid, b[id])
		}
	}

	load := map[string]int{}
	for _, bid := range a {
		load[bid]++
	}
	bound := BoundedCap(256, 8, DefaultLoadFactor) // 40 = 1.25 * ideal 32
	for bid, n := range load {
		if n > bound {
			t.Errorf("board %s holds %d streams, bounded-load cap %d", bid, n, bound)
		}
	}

	ca.Wait()
	cb.Wait()
	r := ca.Rollup()
	if r.Totals.Imbalance > DefaultLoadFactor+1e-9 {
		t.Errorf("rollup imbalance %.3f exceeds load factor %.2f", r.Totals.Imbalance, DefaultLoadFactor)
	}
	if r.Totals.Fused != 256 {
		t.Errorf("fleet fused %d frames, want 256", r.Totals.Fused)
	}
	ca.Close()
	cb.Close()
	if err := ca.CheckLeaks(); err != nil {
		t.Fatal(err)
	}
	if err := cb.CheckLeaks(); err != nil {
		t.Fatal(err)
	}
}

// TestFleetAdmissionRefusal drives every board's SLO budget into a page
// burn (impossible latency bound, degradation off) and checks the
// fleet-wide gate: a board that refuses is skipped — only when *all*
// live boards refuse does Submit fail, wrapping farm.ErrSLOBurning, and
// the refusal is counted on the rollup.
func TestFleetAdmissionRefusal(t *testing.T) {
	c, err := New(Config{
		Boards: 2,
		Board: farm.Config{SLO: &slo.Rules{
			WindowScale:   1e-3,
			NoDegradation: true,
			Default:       &slo.SLO{LatencyBoundMS: 0.0001},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Four streams guarantee each of the two boards hosts at least one
	// (bounded-load caps are 1,2,2,3 as K grows), so both budgets burn.
	boards := map[string]bool{}
	for i := 0; i < 4; i++ {
		_, bid, err := c.Submit(tinyStream(fmt.Sprintf("burn%d", i), int64(i+1), 40))
		if err != nil {
			t.Fatal(err)
		}
		boards[bid] = true
	}
	if len(boards) != 2 {
		t.Fatalf("burning streams landed on %d boards, want both", len(boards))
	}
	c.Wait()

	_, _, err = c.Submit(tinyStream("late", 99, 1))
	if !errors.Is(err, farm.ErrSLOBurning) {
		t.Fatalf("Submit with every board burning: %v, want farm.ErrSLOBurning", err)
	}
	if got := c.Rollup().Totals.AdmissionRefused; got != 1 {
		t.Fatalf("AdmissionRefused = %d, want 1", got)
	}
}

// TestFleetKillRestore exercises the failure control plane: an
// evacuated kill migrates every resident stream to the survivors, an
// unevacuated kill loses them (placements dead, snapshots gone), and a
// restore brings the board back at a fresh epoch with zero streams —
// with zero bufpool leases outstanding across live and retired farms.
func TestFleetKillRestore(t *testing.T) {
	c, err := New(Config{Boards: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	for i := 0; i < 9; i++ {
		cfg := tinyStream(fmt.Sprintf("s%d", i), int64(i+1), 0) // unbounded
		cfg.IntervalMS = 1
		if _, _, err := c.Submit(cfg); err != nil {
			t.Fatal(err)
		}
	}
	load := c.loadSnapshot()
	var victim string
	for bid, n := range load {
		if n > 0 {
			victim = bid
			break
		}
	}
	evacuated := c.streamsOn(victim)

	lost, err := c.Kill(victim, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(lost) != 0 {
		t.Fatalf("evacuated kill lost %v", lost)
	}
	r := c.Rollup()
	if r.Totals.BoardsUp != 2 || r.Totals.Streams != 9 {
		t.Fatalf("after evacuated kill: up=%d streams=%d, want 2/9", r.Totals.BoardsUp, r.Totals.Streams)
	}
	for _, id := range evacuated {
		_, bid, ok := c.Get(id)
		if !ok || bid == victim {
			t.Fatalf("evacuee %s on %q (ok=%v) after kill of %s", id, bid, ok, victim)
		}
	}
	if _, err := c.Kill(victim, true); err == nil {
		t.Fatal("second kill of a down board succeeded")
	}

	// Unevacuated kill of a second board: residents go down with it.
	var second string
	for _, bid := range []string{"board0", "board1", "board2"} {
		if bid != victim && c.loadSnapshot()[bid] > 0 {
			second = bid
			break
		}
	}
	lost, err = c.Kill(second, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(lost) == 0 {
		t.Fatalf("unevacuated kill of loaded board %s lost nothing", second)
	}
	for _, id := range lost {
		if _, _, ok := c.Get(id); ok {
			t.Fatalf("lost stream %s still reachable", id)
		}
		if _, err := c.Migrate(id, "", "test"); !errors.Is(err, ErrStreamLost) {
			t.Fatalf("migrating lost stream: %v, want ErrStreamLost", err)
		}
	}
	r = c.Rollup()
	if r.Totals.Streams != 9-len(lost) {
		t.Fatalf("live streams %d, want %d", r.Totals.Streams, 9-len(lost))
	}

	if err := c.Restore(victim); err != nil {
		t.Fatal(err)
	}
	if err := c.Restore(victim); err == nil {
		t.Fatal("second restore of an up board succeeded")
	}
	r = c.Rollup()
	for _, b := range r.Boards {
		if b.ID == victim && (!b.Up || b.Epoch != 1 || b.Streams != 0) {
			t.Fatalf("restored board: %+v", b)
		}
	}

	// Drain everything and assert the fleet-wide lease ledger is clean —
	// including the two retired farms.
	for _, p := range c.Rollup().Placements {
		if !p.Dead {
			if err := c.Stop(p.Stream); err != nil {
				t.Fatal(err)
			}
		}
	}
	c.Close()
	if err := c.CheckLeaks(); err != nil {
		t.Fatal(err)
	}
}

// TestFleetPowerArbitration pins the budget split invariants: the live
// boards' arbitrated caps sum to the fleet budget, every live board
// keeps at least budget/(2·live) (the even half of the split), and the
// split follows membership changes and budget rebinds.
func TestFleetPowerArbitration(t *testing.T) {
	const budget = sim.Watts(2.0)
	c, err := New(Config{Boards: 4, PowerBudget: budget})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	check := func(up int) {
		t.Helper()
		r := c.Rollup()
		var sum sim.Watts
		floor := budget / sim.Watts(2*up)
		for _, b := range r.Boards {
			if !b.Up {
				continue
			}
			sum += b.PowerBudget
			if b.PowerBudget < floor-1e-9 {
				t.Fatalf("board %s budget %v below floor %v", b.ID, b.PowerBudget, floor)
			}
		}
		if sum < budget-1e-9 || sum > budget+1e-9 {
			t.Fatalf("live budgets sum to %v, want %v", sum, budget)
		}
	}
	check(4)

	if _, err := c.Kill("board2", true); err != nil {
		t.Fatal(err)
	}
	check(3)

	if err := c.Restore("board2"); err != nil {
		t.Fatal(err)
	}
	check(4)

	// With some draw on one board the demand half skews toward it but the
	// floor still holds.
	cfg := tinyStream("hot", 5, 0)
	cfg.IntervalMS = 1
	cfg.Engine = "fpga"
	if _, _, err := c.Submit(cfg); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	c.Arbitrate()
	check(4)

	// Dropping the fleet budget to zero restores the template's (here
	// unlimited) per-board caps.
	c.SetPowerBudget(0)
	for _, b := range c.Rollup().Boards {
		if b.PowerBudget != 0 {
			t.Fatalf("board %s budget %v after unsetting the fleet budget", b.ID, b.PowerBudget)
		}
	}
	if err := c.Stop("hot"); err != nil {
		t.Fatal(err)
	}
}

// loadSnapshot and streamsOn expose locked helpers to tests.
func (c *Fleet) loadSnapshot() map[string]int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.loadLocked()
}

func (c *Fleet) streamsOn(boardID string) []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.streamsOnLocked(boardID)
}

// TestFleetServer walks the fusiond --fleet HTTP surface: submit,
// rollup JSON and Prometheus rendering, live migration, snapshot
// serving across the handoff, stop, kill, restore, and the error
// statuses (404 unknown, 409 conflict, 400 bad body).
func TestFleetServer(t *testing.T) {
	c, err := New(Config{Boards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	srv := httptest.NewServer(NewServer(c))
	defer srv.Close()

	post := func(path string, body []byte) *http.Response {
		t.Helper()
		resp, err := http.Post(srv.URL+path, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	get := func(path string) *http.Response {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	if resp := get("/healthz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz: %d", resp.StatusCode)
	}

	cfg := tinyStream("web1", 7, 0)
	cfg.IntervalMS = 1
	body, _ := json.Marshal(cfg)
	resp := post("/streams", body)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST /streams: %d", resp.StatusCode)
	}
	var created struct {
		Board  string               `json:"board"`
		Stream farm.StreamTelemetry `json:"stream"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
		t.Fatal(err)
	}
	if created.Board == "" || created.Stream.ID != "web1" {
		t.Fatalf("created: %+v", created)
	}
	if resp := post("/streams", []byte("{nope")); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad body: %d", resp.StatusCode)
	}
	if resp := post("/streams", body); resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate submit: %d, want 409 like the single-farm surface", resp.StatusCode)
	}

	var tele Telemetry
	resp = get("/fleet")
	if err := json.NewDecoder(resp.Body).Decode(&tele); err != nil {
		t.Fatal(err)
	}
	if tele.Totals.Boards != 2 || tele.Totals.Streams != 1 {
		t.Fatalf("/fleet totals: %+v", tele.Totals)
	}

	resp = get("/metrics?format=prometheus")
	var promBuf bytes.Buffer
	if _, err := promBuf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	prom := promBuf.String()
	for _, want := range []string{"fleet_boards 2", "fleet_streams 1", `fleet_board_up{board="board0"} 1`} {
		if !strings.Contains(prom, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, prom)
		}
	}

	// Wait for a first fused frame, then check the snapshot survives a
	// live migration byte-for-byte (same newest-or-older frame contract).
	s, _, _ := c.Get("web1")
	for i := 0; s.Telemetry().Fused == 0; i++ {
		if i > 500 {
			t.Fatal("no frame fused")
		}
		time.Sleep(2 * time.Millisecond)
	}
	resp = get("/streams/web1/snapshot.pgm")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot: %d", resp.StatusCode)
	}
	var pgm bytes.Buffer
	pgm.ReadFrom(resp.Body)
	if !bytes.HasPrefix(pgm.Bytes(), []byte("P5\n")) {
		t.Fatalf("snapshot is not binary PGM: %q", pgm.Bytes()[:8])
	}

	resp = post("/streams/web1/migrate?reason=hotspot", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("migrate: %d", resp.StatusCode)
	}
	var m Migration
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.From == m.To || m.Reason != "hotspot" || m.ResumeSeq != m.SegmentFused {
		t.Fatalf("migration record: %+v", m)
	}
	if resp := get("/streams/web1/snapshot.pgm"); resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot across handoff: %d", resp.StatusCode)
	}
	if resp := post("/streams/web1/migrate?to=nope", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("migrate to unknown board: %d", resp.StatusCode)
	}

	resp = get("/boards/" + m.To)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /boards/%s: %d", m.To, resp.StatusCode)
	}
	if resp := get("/boards/nope"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown board: %d", resp.StatusCode)
	}

	if resp := http.DefaultClient; resp == nil {
		t.Fatal("unreachable")
	}
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/streams/web1", nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE /streams/web1: %d", dresp.StatusCode)
	}

	if resp := post("/boards/board0/kill", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("kill: %d", resp.StatusCode)
	}
	if resp := post("/boards/board0/kill", nil); resp.StatusCode != http.StatusConflict {
		t.Fatalf("double kill: %d", resp.StatusCode)
	}
	if resp := post("/boards/board0/restore", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("restore: %d", resp.StatusCode)
	}
	if resp := get("/streams/ghost"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown stream: %d", resp.StatusCode)
	}

	c.Close()
	if resp := get("/healthz"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/healthz after close: %d", resp.StatusCode)
	}
	if err := c.CheckLeaks(); err != nil {
		t.Fatal(err)
	}
}

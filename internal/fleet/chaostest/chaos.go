// Package chaostest is a deterministic chaos harness for the fleet
// coordinator: a seeded fault injector — board kills with and without
// evacuation, restores, power-budget flaps, hotspot bursts, migration
// storms — driven against a live fleet, with every *decision* and every
// *placement outcome* recorded as an event.
//
// The harness is built on one discipline: events record only values
// that are pure functions of the injected fault sequence. Placement is
// consistent hashing over deterministic load counts, evacuation walks
// residents in sorted id order, and fault choices come from the seeded
// generator over sorted board and stream ids — so two runs with the
// same Options produce the identical event sequence, the identical
// survivor set on the identical boards, and (because captured frames
// are a pure function of (Seed, seq)) bit-identical final fused frames
// for every survivor. Wall-clock-dependent values — resume sequences,
// lease grants, arbitrated budget splits, energies — are deliberately
// excluded from events; they vary run to run while the coordinator's
// decisions do not.
package chaostest

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"strconv"
	"time"

	"zynqfusion/internal/farm"
	"zynqfusion/internal/fleet"
	"zynqfusion/internal/sim"
)

// Options configures a chaos run. The zero value is not runnable; use
// Defaults() for a sensible small fleet.
type Options struct {
	// Seed drives the fault injector. Identical Options ⇒ identical
	// event sequence.
	Seed int64
	// Boards, Streams size the fleet under test.
	Boards  int
	Streams int
	// Frames bounds every stream; IntervalMS paces its captures so
	// faults land mid-run.
	Frames     int64
	IntervalMS int
	// DeadlineMS is each stream's per-frame deadline. Defaults() picks
	// one no modeled frame can miss, so any miss is a harness bug.
	DeadlineMS float64
	// Steps is the number of fault-injection steps; StepSleepMS the wall
	// pause between them (lets streams make progress; never recorded).
	Steps       int
	StepSleepMS int
	// PowerBudget is the initial fleet-wide cap the flap fault perturbs.
	PowerBudget sim.Watts
}

// Defaults returns the small-fleet configuration the package tests use:
// 3 boards, 12 mixed-engine streams, 24 fault steps.
func Defaults(seed int64) Options {
	return Options{
		Seed:        seed,
		Boards:      3,
		Streams:     12,
		Frames:      30,
		IntervalMS:  3,
		DeadlineMS:  80, // NEON fuses a 32x24 frame in ~20 modeled ms
		Steps:       24,
		StepSleepMS: 4,
		PowerBudget: 4,
	}
}

// Event is one deterministic chaos event. Kind is one of "kill",
// "restore", "flap", "migrate", "migrate-fail", "lost".
type Event struct {
	Step   int    `json:"step"`
	Kind   string `json:"kind"`
	Board  string `json:"board,omitempty"`
	Stream string `json:"stream,omitempty"`
	// Detail carries deterministic context only: the migration target,
	// the evacuate flag, the flapped budget value.
	Detail string `json:"detail,omitempty"`
}

// Result is a chaos run's outcome. Events, Survivors, Lost, FinalBoards
// and PixelHash are deterministic per Options; SimTime and
// UnaffectedMisses are invariants (reported for threshold assertions,
// not for run-to-run comparison).
type Result struct {
	Events []Event
	// Survivors are the streams still placed at the end (sorted);
	// Lost went down with unevacuated board kills (sorted).
	Survivors []string
	Lost      []string
	// FinalBoards maps each survivor to its final board.
	FinalBoards map[string]string
	// PixelHash maps each survivor to the FNV-64a hash of its final
	// fused frame's PGM bytes — the bit-identity witness.
	PixelHash map[string]uint64
	// SimTime is the aggregate modeled busy time across every stream
	// and segment.
	SimTime sim.Time
	// UnaffectedMisses counts deadline misses on streams that were
	// neither migrated nor lost — chaos must not bleed into them.
	UnaffectedMisses int64
	// Migrations is the fleet's completed-migration count.
	Migrations int
}

// StreamConfigFor is the workload generator: stream i's exact config
// under Options o. Exported so tests can rebuild any chaos stream as an
// unmigrated single-farm reference run and compare pixels bit-for-bit.
// The mix cycles NEON-only, FPGA-preferring (degrades to NEON under the
// flapping budget) and pipelined streams; fused pixels are engine- and
// depth-invariant, so the mix stresses the control plane without
// touching the bit-identity contract.
func StreamConfigFor(i int, o Options) farm.StreamConfig {
	cfg := farm.StreamConfig{
		ID: fmt.Sprintf("c%d", i), Seed: int64(1000 + i),
		W: 32, H: 24, Frames: o.Frames,
		IntervalMS: o.IntervalMS, DeadlineMS: o.DeadlineMS,
	}
	switch i % 3 {
	case 0:
		cfg.Engine = "neon"
	case 1:
		cfg.Engine = "fpga"
	case 2:
		cfg.Engine = "neon"
		cfg.Pipelined = true
		cfg.Depth = 2
	}
	return cfg
}

// Run executes one seeded chaos schedule and returns its result. The
// fleet is fully drained before return; the zero-lost-leases invariant
// is checked across every farm the fleet ever ran (live and retired)
// and reported as an error.
func Run(o Options) (*Result, error) {
	c, err := fleet.New(fleet.Config{Boards: o.Boards, PowerBudget: o.PowerBudget})
	if err != nil {
		return nil, err
	}
	defer c.Close()

	for i := 0; i < o.Streams; i++ {
		if _, _, err := c.Submit(StreamConfigFor(i, o)); err != nil {
			return nil, fmt.Errorf("chaos: seeding stream %d: %w", i, err)
		}
	}

	res := &Result{FinalBoards: map[string]string{}, PixelHash: map[string]uint64{}}
	rng := rand.New(rand.NewSource(o.Seed))
	record := func(step int, kind, board, stream, detail string) {
		res.Events = append(res.Events, Event{Step: step, Kind: kind, Board: board, Stream: stream, Detail: detail})
	}
	// recordMigrations appends the migration records the last operation
	// produced, stripped to their deterministic fields.
	seenMigs := 0
	recordMigrations := func(step int) {
		migs := c.Rollup().Migrations
		for _, m := range migs[seenMigs:] {
			record(step, "migrate", m.To, m.Stream, "from="+m.From+" reason="+m.Reason)
		}
		seenMigs = len(migs)
	}
	liveStreams := func() []string {
		var out []string
		for _, p := range c.Rollup().Placements {
			if !p.Dead {
				out = append(out, p.Stream)
			}
		}
		sort.Strings(out)
		return out
	}
	boardsByState := func(up bool) []string {
		var out []string
		for _, b := range c.Rollup().Boards {
			if b.Up == up {
				out = append(out, b.ID)
			}
		}
		sort.Strings(out)
		return out
	}

	for step := 0; step < o.Steps; step++ {
		if o.StepSleepMS > 0 {
			time.Sleep(time.Duration(o.StepSleepMS) * time.Millisecond)
		}
		switch pick := rng.Intn(100); {
		case pick < 25: // board kill, mostly evacuated
			ups := boardsByState(true)
			if len(ups) < 2 {
				break // never kill the last board
			}
			b := ups[rng.Intn(len(ups))]
			evac := rng.Intn(4) != 0
			lost, err := c.Kill(b, evac)
			if err != nil {
				return nil, fmt.Errorf("chaos step %d: kill %s: %w", step, b, err)
			}
			record(step, "kill", b, "", "evacuate="+strconv.FormatBool(evac))
			recordMigrations(step)
			sort.Strings(lost)
			for _, id := range lost {
				record(step, "lost", b, id, "")
			}
		case pick < 45: // restore a down board
			downs := boardsByState(false)
			if len(downs) == 0 {
				break
			}
			b := downs[rng.Intn(len(downs))]
			if err := c.Restore(b); err != nil {
				return nil, fmt.Errorf("chaos step %d: restore %s: %w", step, b, err)
			}
			record(step, "restore", b, "", "")
		case pick < 62: // power-budget flap
			w := sim.Watts(0)
			if rng.Intn(5) != 0 { // 1 in 5 flaps lifts the cap entirely
				w = sim.Watts(0.5 + 4*rng.Float64())
			}
			c.SetPowerBudget(w)
			record(step, "flap", "", "", strconv.FormatFloat(float64(w), 'g', -1, 64))
		case pick < 80: // hotspot burst: shed the hottest board
			var hot string
			hotLoad := -1
			for _, b := range c.Rollup().Boards {
				if b.Up && (b.Streams > hotLoad || (b.Streams == hotLoad && b.ID < hot)) {
					hot, hotLoad = b.ID, b.Streams
				}
			}
			if hotLoad < 1 {
				break
			}
			var resident []string
			for _, p := range c.Rollup().Placements {
				if !p.Dead && p.Board == hot {
					resident = append(resident, p.Stream)
				}
			}
			sort.Strings(resident)
			n := rng.Intn(3) + 1
			if n > len(resident) {
				n = len(resident)
			}
			for _, id := range resident[:n] {
				if _, err := c.Migrate(id, "", "hotspot"); err != nil {
					record(step, "migrate-fail", hot, id, "")
					continue
				}
			}
			recordMigrations(step)
		default: // migration storm: scatter random streams
			live := liveStreams()
			if len(live) == 0 {
				break
			}
			n := rng.Intn(4) + 1
			for i := 0; i < n; i++ {
				id := live[rng.Intn(len(live))]
				if _, err := c.Migrate(id, "", "storm"); err != nil {
					record(step, "migrate-fail", "", id, "")
				}
			}
			recordMigrations(step)
		}
	}

	// Drain: every surviving stream's current segment runs to its
	// bounded end, then the fleet closes and the lease ledger is
	// audited across live and retired farms.
	c.Wait()
	final := c.Rollup()
	for _, p := range final.Placements {
		if p.Dead {
			res.Lost = append(res.Lost, p.Stream)
			continue
		}
		res.Survivors = append(res.Survivors, p.Stream)
		res.FinalBoards[p.Stream] = p.Board
		pgm, ok := c.AppendSnapshotPGM(p.Stream, nil)
		if !ok {
			return nil, fmt.Errorf("chaos: survivor %s has no final frame", p.Stream)
		}
		h := fnv.New64a()
		h.Write(pgm)
		res.PixelHash[p.Stream] = h.Sum64()
		res.SimTime += p.Busy
		if p.Moves == 0 {
			res.UnaffectedMisses += p.DeadlineMisses
		}
	}
	sort.Strings(res.Survivors)
	sort.Strings(res.Lost)
	res.Migrations = len(final.Migrations)
	c.Close()
	if err := c.CheckLeaks(); err != nil {
		return nil, fmt.Errorf("chaos: lease leak after drain: %w", err)
	}
	return res, nil
}

package chaostest

import (
	"hash/fnv"
	"reflect"
	"strconv"
	"testing"
	"time"

	"zynqfusion/internal/farm"
	"zynqfusion/internal/sim"
)

// TestChaosDeterminism is the tentpole assertion: two runs of the same
// seeded fault schedule produce the identical event sequence, the
// identical survivor and lost sets, identical final placements, and
// bit-identical final fused frames for every survivor. Everything the
// coordinator decides is a pure function of the injected faults.
func TestChaosDeterminism(t *testing.T) {
	o := Defaults(7)
	r1, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(r1.Events, r2.Events) {
		t.Fatalf("event sequences diverged:\nrun1: %v\nrun2: %v", r1.Events, r2.Events)
	}
	if !reflect.DeepEqual(r1.Survivors, r2.Survivors) {
		t.Fatalf("survivor sets diverged: %v vs %v", r1.Survivors, r2.Survivors)
	}
	if !reflect.DeepEqual(r1.Lost, r2.Lost) {
		t.Fatalf("lost sets diverged: %v vs %v", r1.Lost, r2.Lost)
	}
	if !reflect.DeepEqual(r1.FinalBoards, r2.FinalBoards) {
		t.Fatalf("final placements diverged: %v vs %v", r1.FinalBoards, r2.FinalBoards)
	}
	if !reflect.DeepEqual(r1.PixelHash, r2.PixelHash) {
		t.Fatalf("survivor pixels diverged: %v vs %v", r1.PixelHash, r2.PixelHash)
	}

	// The schedule must actually exercise the machinery, or determinism
	// is vacuous.
	kinds := map[string]int{}
	for _, ev := range r1.Events {
		kinds[ev.Kind]++
	}
	if kinds["kill"] == 0 || kinds["flap"] == 0 || kinds["migrate"] == 0 {
		t.Fatalf("seed %d produced a toothless schedule: %v", o.Seed, kinds)
	}
	if len(r1.Survivors) == 0 {
		t.Fatal("no survivors — every stream was lost, nothing was asserted")
	}

	// A different seed produces a different schedule (sanity that the
	// injector actually listens to the seed).
	r3, err := Run(Defaults(8))
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(r1.Events, r3.Events) {
		t.Fatal("seeds 7 and 8 produced identical event sequences")
	}
}

// TestChaosSurvivorPixelIdentity pins the survivor bit-identity claim
// against the ground truth: every survivor's final fused frame equals,
// byte for byte, the final frame of an *unmigrated* run of the same
// stream config on a bare single farm — no kills, no flaps, no
// migrations. Chaos may move a stream; it may not touch its pixels.
func TestChaosSurvivorPixelIdentity(t *testing.T) {
	o := Defaults(11)
	r, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Survivors) == 0 {
		t.Fatal("no survivors to compare")
	}
	fm := farm.New(farm.Config{})
	defer fm.Close()
	for _, id := range r.Survivors {
		i, err := strconv.Atoi(id[1:]) // ids are "c<i>"
		if err != nil {
			t.Fatal(err)
		}
		cfg := StreamConfigFor(i, o)
		cfg.IntervalMS = 0 // free-run the reference
		s, err := fm.Submit(cfg)
		if err != nil {
			t.Fatal(err)
		}
		<-s.Done()
		pgm, ok := s.AppendSnapshotPGM(nil)
		if !ok {
			t.Fatalf("reference %s fused nothing", id)
		}
		h := fnv.New64a()
		h.Write(pgm)
		if got := h.Sum64(); got != r.PixelHash[id] {
			t.Errorf("survivor %s: chaos pixels %x, unmigrated reference %x", id, r.PixelHash[id], got)
		}
	}
}

// TestChaosSoak is the -race CI gate: 3 boards x 12 streams under
// kills, restores and power flaps, at least 2 modeled seconds of fusion
// — with zero outstanding bufpool leases across live and retired farms
// (Run fails otherwise), and zero deadline misses on the streams chaos
// never touched.
func TestChaosSoak(t *testing.T) {
	o := Defaults(3)
	o.Steps = 32
	start := time.Now()
	r, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("soak: %d events, %d migrations, %d survivors, %v modeled, %v wall",
		len(r.Events), r.Migrations, len(r.Survivors), r.SimTime, time.Since(start))

	kinds := map[string]int{}
	for _, ev := range r.Events {
		kinds[ev.Kind]++
	}
	if kinds["kill"] == 0 || kinds["restore"] == 0 || kinds["flap"] == 0 {
		t.Fatalf("soak schedule missed a fault class: %v", kinds)
	}
	if r.SimTime < 2*sim.Second {
		t.Fatalf("soak covered only %v modeled time, want >= 2s", r.SimTime)
	}
	if r.UnaffectedMisses != 0 {
		t.Fatalf("%d deadline misses on streams chaos never touched", r.UnaffectedMisses)
	}
}

package pipeline

import (
	"math/rand"
	"testing"

	"zynqfusion/internal/engine"
	"zynqfusion/internal/sim"
)

// This file is the standing calibration gate: it re-derives the paper's
// Fig. 9 / Fig. 10 curves from the cost model and asserts every
// qualitative claim of section VII. If a cost-model constant drifts, these
// tests fail.

type sweepResult struct {
	fwd, inv, tot sim.Time
	energy        sim.Joules
}

func runMode(t *testing.T, mk func() engine.Engine, w, h, frames int) sweepResult {
	t.Helper()
	rng := rand.New(rand.NewSource(80))
	vis := randFrame(rng, w, h)
	ir := randFrame(rng, w, h)
	fu := New(mk(), Config{IncludeIO: true})
	var acc StageTimes
	for i := 0; i < frames; i++ {
		_, st, err := fu.FuseFrames(vis, ir)
		if err != nil {
			t.Fatal(err)
		}
		acc.Add(st)
	}
	return sweepResult{fwd: acc.Forward, inv: acc.Inverse, tot: acc.Total, energy: acc.Energy}
}

func sweep(t *testing.T, w, h int) (arm, neon, fpga sweepResult) {
	t.Helper()
	const frames = 10 // the paper profiles 10 consecutive fused frames
	arm = runMode(t, func() engine.Engine { return engine.NewARM() }, w, h, frames)
	neon = runMode(t, func() engine.Engine { return engine.NewNEON(false) }, w, h, frames)
	fpga = runMode(t, func() engine.Engine { return engine.NewFPGA() }, w, h, frames)
	return arm, neon, fpga
}

func pctLess(a, b sim.Time) float64 { // how much smaller a is than b, in %
	return (1 - float64(a)/float64(b)) * 100
}

func TestCalibration88x72Anchors(t *testing.T) {
	arm, neon, fpga := sweep(t, 88, 72)

	// Absolute scale: ARM forward for 10 frames is ~0.9 s in Fig. 9a.
	if s := arm.fwd.Seconds(); s < 0.80 || s > 1.00 {
		t.Errorf("ARM forward %0.3fs outside [0.80, 1.00]", s)
	}
	// ARM inverse ~0.6 s (Fig. 9c).
	if s := arm.inv.Seconds(); s < 0.52 || s > 0.70 {
		t.Errorf("ARM inverse %0.3fs outside [0.52, 0.70]", s)
	}
	// Forward: FPGA saves ~55.6%, NEON ~10% (tolerate a few points).
	if p := pctLess(fpga.fwd, arm.fwd); p < 48 || p > 60 {
		t.Errorf("FPGA forward saving %.1f%%, paper 55.6%%", p)
	}
	if p := pctLess(neon.fwd, arm.fwd); p < 6 || p > 14 {
		t.Errorf("NEON forward saving %.1f%%, paper 10%%", p)
	}
	// Inverse: FPGA large saving (paper 60.6%; the monotone row-cost model
	// lands lower — see EXPERIMENTS.md), NEON ~16%.
	if p := pctLess(fpga.inv, arm.inv); p < 45 || p > 63 {
		t.Errorf("FPGA inverse saving %.1f%%, paper 60.6%%", p)
	}
	if p := pctLess(neon.inv, arm.inv); p < 11 || p > 20 {
		t.Errorf("NEON inverse saving %.1f%%, paper 16%%", p)
	}
	// Total: FPGA ~48.1%, NEON ~8%.
	if p := pctLess(fpga.tot, arm.tot); p < 40 || p > 53 {
		t.Errorf("FPGA total saving %.1f%%, paper 48.1%%", p)
	}
	if p := pctLess(neon.tot, arm.tot); p < 5 || p > 13 {
		t.Errorf("NEON total saving %.1f%%, paper 8%%", p)
	}
	// Energy: FPGA saves ~46.3%, NEON ~8%.
	if p := (1 - float64(fpga.energy)/float64(arm.energy)) * 100; p < 38 || p > 50 {
		t.Errorf("FPGA energy saving %.1f%%, paper 46.3%%", p)
	}
	if p := (1 - float64(neon.energy)/float64(arm.energy)) * 100; p < 5 || p > 13 {
		t.Errorf("NEON energy saving %.1f%%, paper 8%%", p)
	}
}

func TestCalibrationForwardCrossover(t *testing.T) {
	// Fig. 9a: FPGA loses to NEON at 32x24 and 35x35, wins at 40x40 and
	// above — "the breaking point at frame size between 35x35 and 40x40".
	_, neon32, fpga32 := sweep(t, 32, 24)
	if float64(fpga32.fwd) <= float64(neon32.fwd) {
		t.Errorf("32x24 forward: FPGA (%v) must lose to NEON (%v)", fpga32.fwd, neon32.fwd)
	}
	// "36.4% performance degradation" at 32x24 vs NEON.
	if r := float64(fpga32.fwd)/float64(neon32.fwd) - 1; r < 0.20 || r > 0.50 {
		t.Errorf("32x24 forward: FPGA %.1f%% slower than NEON, paper 36.4%%", r*100)
	}
	_, neon35, fpga35 := sweep(t, 35, 35)
	if float64(fpga35.fwd) <= float64(neon35.fwd) {
		t.Errorf("35x35 forward: FPGA (%v) must still lose to NEON (%v)", fpga35.fwd, neon35.fwd)
	}
	_, neon40, fpga40 := sweep(t, 40, 40)
	if float64(fpga40.fwd) >= float64(neon40.fwd) {
		t.Errorf("40x40 forward: FPGA (%v) must beat NEON (%v)", fpga40.fwd, neon40.fwd)
	}
}

func TestCalibrationInverseCrossover(t *testing.T) {
	// Fig. 9c: FPGA worse than NEON at 32x24 and 35x35, and it "only
	// outperformed the NEON engine when the frame size increased past
	// 40x40" — at 40x40 the two are at parity.
	_, neon32, fpga32 := sweep(t, 32, 24)
	if float64(fpga32.inv) <= float64(neon32.inv) {
		t.Errorf("32x24 inverse: FPGA (%v) must lose to NEON (%v)", fpga32.inv, neon32.inv)
	}
	_, neon35, fpga35 := sweep(t, 35, 35)
	if float64(fpga35.inv) <= float64(neon35.inv) {
		t.Errorf("35x35 inverse: FPGA (%v) must lose to NEON (%v)", fpga35.inv, neon35.inv)
	}
	_, neon40, fpga40 := sweep(t, 40, 40)
	if r := float64(fpga40.inv) / float64(neon40.inv); r < 0.95 || r > 1.08 {
		t.Errorf("40x40 inverse: FPGA/NEON ratio %.3f, want parity [0.95, 1.08]", r)
	}
	_, neon64, fpga64 := sweep(t, 64, 48)
	if float64(fpga64.inv) >= float64(neon64.inv) {
		t.Errorf("64x48 inverse: FPGA (%v) must beat NEON (%v)", fpga64.inv, neon64.inv)
	}
}

func TestCalibrationEnergyCrossover(t *testing.T) {
	// Fig. 10: "the use of ARM+FPGA is only more energy efficient than
	// ARM+NEON when the frame size is larger than 40x40; the breaking
	// point exists between 40x40 and 64x48".
	_, neon40, fpga40 := sweep(t, 40, 40)
	if float64(fpga40.energy) < 0.98*float64(neon40.energy) {
		t.Errorf("40x40 energy: FPGA (%v) should not clearly beat NEON (%v)", fpga40.energy, neon40.energy)
	}
	_, neon64, fpga64 := sweep(t, 64, 48)
	if float64(fpga64.energy) >= 0.92*float64(neon64.energy) {
		t.Errorf("64x48 energy: FPGA (%v) must clearly beat NEON (%v)", fpga64.energy, neon64.energy)
	}
	_, neon32, fpga32 := sweep(t, 32, 24)
	if float64(fpga32.energy) <= float64(neon32.energy) {
		t.Errorf("32x24 energy: FPGA (%v) must lose to NEON (%v)", fpga32.energy, neon32.energy)
	}
}

func TestCalibrationMonotonicInFrameSize(t *testing.T) {
	// Larger frames cost more on every engine — the basic sanity of the
	// whole sweep.
	sizes := []struct{ w, h int }{{32, 24}, {35, 35}, {40, 40}, {64, 48}, {88, 72}}
	var prev [3]sweepResult
	for i, s := range sizes {
		arm, neon, fpga := sweep(t, s.w, s.h)
		cur := [3]sweepResult{arm, neon, fpga}
		if i > 0 {
			for j, name := range []string{"arm", "neon", "fpga"} {
				if cur[j].tot <= prev[j].tot {
					t.Errorf("%s: total at %dx%d (%v) not above previous size (%v)",
						name, s.w, s.h, cur[j].tot, prev[j].tot)
				}
			}
		}
		prev = cur
	}
}

package pipeline

import (
	"testing"

	"zynqfusion/internal/camera"
	"zynqfusion/internal/dvfs"
	"zynqfusion/internal/engine"
	"zynqfusion/internal/sched"
	"zynqfusion/internal/split"
)

// goldenEngines builds the three schedule families the paper compares:
// exclusive NEON, exclusive FPGA, and the cooperative CPU+FPGA split.
// Each call returns a fresh engine so paired runs start from identical
// state.
func goldenEngines() map[string]func() engine.Engine {
	op := dvfs.Nominal()
	return map[string]func() engine.Engine{
		"neon": func() engine.Engine { return engine.NewNEONAt(false, op) },
		"fpga": func() engine.Engine { return engine.NewFPGAAt(op) },
		"split": func() engine.Engine {
			return sched.NewAdaptiveAt(sched.SplitDriven{S: split.NewOracle(op)}, op)
		},
	}
}

// TestGoldenDepth1PipelinedMatchesSequential pins the depth-1 degenerate
// path bit-for-bit against the sequential FuseFrames — pixels, every
// stage's cycle-derived span, and joules — across the NEON-only,
// FPGA-only and cooperative-split schedules, over several consecutive
// frames (the second frame amortizes coefficient loads differently from
// the first, so one frame alone would not pin the schedule).
func TestGoldenDepth1PipelinedMatchesSequential(t *testing.T) {
	sc := camera.NewScene(64, 48, 7)
	vis, ir := sc.Visible(), sc.Thermal()
	for name, build := range goldenEngines() {
		t.Run(name, func(t *testing.T) {
			cfg := Config{Levels: 3, IncludeIO: true}
			seq := New(build(), cfg)
			pp, err := NewPipelined(New(build(), cfg), 1)
			if err != nil {
				t.Fatal(err)
			}
			for frameN := 0; frameN < 3; frameN++ {
				wantPix, wantST, err := seq.FuseFrames(vis, ir)
				if err != nil {
					t.Fatal(err)
				}
				gotPix, gotST, err := pp.FuseFrames(vis, ir)
				if err != nil {
					t.Fatal(err)
				}
				if gotST != wantST {
					t.Fatalf("frame %d: stage times diverge:\npipelined  %+v\nsequential %+v", frameN, gotST, wantST)
				}
				if !gotPix.SameSize(wantPix) {
					t.Fatalf("frame %d: size %dx%d != %dx%d", frameN, gotPix.W, gotPix.H, wantPix.W, wantPix.H)
				}
				for i := range gotPix.Pix {
					if gotPix.Pix[i] != wantPix.Pix[i] {
						t.Fatalf("frame %d: pixel %d differs: pipelined %v, sequential %v",
							frameN, i, gotPix.Pix[i], wantPix.Pix[i])
					}
				}
			}
			st := pp.Stats()
			if st.Depth != 1 || st.Frames != 3 {
				t.Fatalf("stats = %+v, want depth 1 over 3 frames", st)
			}
			if st.MeanInFlight < 0.999 || st.MeanInFlight > 1.001 {
				t.Errorf("sequential mean in-flight = %g, want 1", st.MeanInFlight)
			}
		})
	}
}

package pipeline

import (
	"strings"
	"testing"

	"zynqfusion/internal/camera"
	"zynqfusion/internal/dvfs"
	"zynqfusion/internal/engine"
	"zynqfusion/internal/sched"
	"zynqfusion/internal/sim"
	"zynqfusion/internal/split"
)

func TestNewPipelinedValidation(t *testing.T) {
	fu := New(engine.NewNEON(false), Config{})
	cases := []struct {
		name    string
		f       *Fuser
		depth   int
		wantErr string
	}{
		{"nil fuser", nil, 2, "requires a Fuser"},
		{"zero depth", fu, 0, "depth must be >= 1"},
		{"negative depth", fu, -3, "depth must be >= 1"},
		{"absurd depth", fu, MaxDepth + 1, "exceeds MaxDepth"},
		{"depth one ok", fu, 1, ""},
		{"max depth ok", fu, MaxDepth, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p, err := NewPipelined(tc.f, tc.depth)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				if p.Depth() != tc.depth {
					t.Fatalf("depth = %d, want %d", p.Depth(), tc.depth)
				}
				return
			}
			if err == nil {
				t.Fatalf("no error for %s", tc.name)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// TestPipelinedPixelsMatchSequentialAtAnyDepth: overlapping the timeline
// must never move a pixel — the work is executed identically, only the
// modeled schedule changes.
func TestPipelinedPixelsMatchSequentialAtAnyDepth(t *testing.T) {
	sc := camera.NewScene(64, 48, 3)
	vis, ir := sc.Visible(), sc.Thermal()
	op := dvfs.Nominal()
	cfg := Config{Levels: 3, IncludeIO: true}
	seq := New(sched.NewAdaptiveAt(sched.SplitDriven{S: split.NewOracle(op)}, op), cfg)
	want, _, err := seq.FuseFrames(vis, ir)
	if err != nil {
		t.Fatal(err)
	}
	for _, depth := range []int{2, 4, 8} {
		pp, err := NewPipelined(New(sched.NewAdaptiveAt(sched.SplitDriven{S: split.NewOracle(op)}, op), cfg), depth)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := pp.FuseFrames(vis, ir)
		if err != nil {
			t.Fatal(err)
		}
		for i := range got.Pix {
			if got.Pix[i] != want.Pix[i] {
				t.Fatalf("depth %d: pixel %d differs: %v vs %v", depth, i, got.Pix[i], want.Pix[i])
			}
		}
	}
}

// TestPipelinedSteadyStatePeriod checks the executor against the pipeline
// period model: once filled, the per-frame period must sit at or above
// the bottleneck station (no station processes two frames at once) and
// strictly below the sequential stage sum (consecutive frames genuinely
// overlap), and the energy rebate must leave J/frame below sequential.
func TestPipelinedSteadyStatePeriod(t *testing.T) {
	sc := camera.NewScene(88, 72, 5)
	vis, ir := sc.Visible(), sc.Thermal()
	op := dvfs.Nominal()
	cfg := Config{Levels: 3, IncludeIO: true}
	mk := func() *Fuser {
		return New(sched.NewAdaptiveAt(sched.SplitDriven{S: split.NewOracle(op)}, op), cfg)
	}

	// Sequential reference: steady frame cost after the first frame.
	seq := mk()
	if _, _, err := seq.FuseFrames(vis, ir); err != nil {
		t.Fatal(err)
	}
	_, seqST, err := seq.FuseFrames(vis, ir)
	if err != nil {
		t.Fatal(err)
	}

	for _, depth := range []int{2, 4} {
		pp, err := NewPipelined(mk(), depth)
		if err != nil {
			t.Fatal(err)
		}
		const frames = 10
		var lastST StageTimes
		var steady sim.Time
		var steadyE sim.Joules
		steadyN := 0
		for i := 0; i < frames; i++ {
			_, st, err := pp.FuseFrames(vis, ir)
			if err != nil {
				t.Fatal(err)
			}
			if i >= depth {
				steady += st.Total
				steadyE += st.Energy
				steadyN++
			}
			lastST = st
		}
		period := steady / sim.Time(steadyN)
		if period >= seqST.Total {
			t.Fatalf("depth %d: steady period %v not below sequential frame time %v", depth, period, seqST.Total)
		}

		stats := pp.Stats()
		var bottleneck sim.Time
		for _, s := range stats.Stages {
			if per := s.Busy / sim.Time(stats.Frames); per > bottleneck {
				bottleneck = per
			}
		}
		// The cumulative mean includes the first frame's one-time coefficient
		// loads, so allow a sliver of slack below the bottleneck mean.
		if period < bottleneck-bottleneck/200 {
			t.Fatalf("depth %d: period %v beat the bottleneck station %v — a station ran two frames at once", depth, period, bottleneck)
		}
		if lastST.Latency <= lastST.Total {
			t.Errorf("depth %d: steady latency %v should exceed period %v", depth, lastST.Latency, lastST.Total)
		}
		if lastST.PipelineOverlap <= 0 {
			t.Errorf("depth %d: steady frame reports no pipeline overlap", depth)
		}
		if ePerFrame := steadyE / sim.Joules(steadyN); ePerFrame >= seqST.Energy {
			t.Errorf("depth %d: steady J/frame %v not below sequential %v (quiescent rebate missing?)", depth, ePerFrame, seqST.Energy)
		}
		if stats.MeanInFlight <= 1.2 {
			t.Errorf("depth %d: mean in-flight %g, want > 1.2", depth, stats.MeanInFlight)
		}
		if stats.Fill <= 0 || stats.Makespan < stats.Fill {
			t.Errorf("depth %d: fill %v / makespan %v inconsistent", depth, stats.Fill, stats.Makespan)
		}
	}
}

// TestPipelinedDeeperNeverSlower: the throughput frontier must be
// monotone — more in-flight frames can only lower (or hold) the steady
// period.
func TestPipelinedDeeperNeverSlower(t *testing.T) {
	sc := camera.NewScene(64, 48, 9)
	vis, ir := sc.Visible(), sc.Thermal()
	cfg := Config{Levels: 3, IncludeIO: true}
	var prev sim.Time
	for i, depth := range []int{1, 2, 4, 8} {
		pp, err := NewPipelined(New(engine.NewNEON(false), cfg), depth)
		if err != nil {
			t.Fatal(err)
		}
		frames := depth + 4
		var steady sim.Time
		n := 0
		for f := 0; f < frames; f++ {
			_, st, err := pp.FuseFrames(vis, ir)
			if err != nil {
				t.Fatal(err)
			}
			if f >= depth {
				steady += st.Total
				n++
			}
		}
		period := steady / sim.Time(n)
		// Handoff charges mean depth 2 is not strictly cheaper than the
		// sequential path on a single-engine schedule where every station
		// shares the one CPU lane; allow the calibrated handoff margin.
		slackCycles := float64(len(stageGraph(true))-1) * engine.PipelineHandoffCycles
		slack := dvfs.Nominal().Clock().CyclesF(slackCycles)
		if i > 0 && period > prev+slack {
			t.Fatalf("depth %d steady period %v regressed past depth %d period %v (+%v handoff slack)",
				depth, period, []int{1, 2, 4, 8}[i-1], prev, slack)
		}
		prev = period
	}
}

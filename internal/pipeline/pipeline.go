// Package pipeline assembles the complete fusion dataflow of the paper's
// system: capture and greyscale conversion, forward DT-CWT of both source
// frames, coefficient fusion, inverse DT-CWT, and display — with per-stage
// simulated timing and energy on a selectable execution engine.
package pipeline

import (
	"errors"
	"fmt"

	"zynqfusion/internal/bufpool"
	"zynqfusion/internal/dvfs"
	"zynqfusion/internal/engine"
	"zynqfusion/internal/frame"
	"zynqfusion/internal/fusion"
	"zynqfusion/internal/kernels"
	"zynqfusion/internal/sim"
	"zynqfusion/internal/wavelet"
)

// Config selects the transform and fusion parameters.
type Config struct {
	// Levels is the DT-CWT decomposition depth (the paper uses deeper
	// decomposition to shrink per-level workloads; 3 is the default).
	Levels int
	// Banks are the dual-tree filter banks; zero value selects the
	// defaults.
	Banks wavelet.TreeBanks
	// Rule is the coefficient fusion rule; nil selects max-magnitude.
	Rule fusion.Rule
	// IncludeIO charges the capture and display stages (on for system
	// simulations, off for transform micro-benchmarks).
	IncludeIO bool
	// Pool is the frame-store arena the fuser leases every working plane
	// from — pyramids, per-level scratch, reconstructions — so the steady-
	// state hot path allocates nothing, like the board's fixed DDR frame
	// stores. Nil builds a private unbounded pool; bufpool.Passthrough()
	// selects the allocating baseline the golden tests compare against.
	Pool *bufpool.Pool
	// KernelWorkers sizes the worker pool the wavelet and fusion hot
	// loops tile across: 0 selects GOMAXPROCS, 1 runs fully sequential,
	// and any value is capped at GOMAXPROCS. Worker count never changes
	// results — compute runs in disjoint tiles and all modeled accounting
	// replays in sequential order — so pixels, StageTimes and energy are
	// byte-identical at any setting. The pool's helper goroutines spawn
	// lazily on the first parallel pass and are parked by Close.
	KernelWorkers int
	// KernelFusion enables the operator-fusion pass: a per-shape planner
	// may run both forward transforms as one interleaved dual-stream
	// traversal, execute the q2c combine + fusion rule + c2q distribute
	// per tile straight in quad (tree) layout — eliding every
	// intermediate complex band plane — and fold the inverse's four-tree
	// average into its final accumulation. Fusion never changes results:
	// pixels, StageTimes and the energy ledger stay bit-identical to the
	// unfused path at every worker count, because per-element arithmetic
	// order is preserved and all modeled charges replay sequentially in
	// unfused order. Engines that veto tiling also veto fusion, custom
	// fusion rules keep only the dual-stream pass, and the inter-frame
	// pipelined executor (depth >= 2) runs unfused.
	KernelFusion bool
}

// DefaultLevels is the decomposition depth a zero Config.Levels selects.
const DefaultLevels = 3

func (c Config) withDefaults() Config {
	if c.Levels == 0 {
		c.Levels = DefaultLevels
	}
	if c.Banks == (wavelet.TreeBanks{}) {
		c.Banks = wavelet.DefaultTreeBanks()
	}
	if c.Rule == nil {
		c.Rule = fusion.MaxMagnitude{}
	}
	return c
}

// StageTimes reports the simulated cost of one fused frame, split by
// pipeline stage (the Fig. 2 decomposition), plus the per-engine
// concurrent-lane accounting of cooperative CPU+FPGA split execution.
type StageTimes struct {
	Capture sim.Time
	Forward sim.Time // both source transforms
	Fuse    sim.Time
	Inverse sim.Time
	Display sim.Time
	Total   sim.Time
	Energy  sim.Joules

	// CPUBusy and FPGABusy are the frame's per-lane busy times under a
	// lane-aware engine (the adaptive scheduler): CPU-side structure, ARM
	// and NEON work on one lane, the wave engine plus its host driving on
	// the other. Overlap is the span during which both lanes ran
	// concurrently; Total already nets it out (Total = CPUBusy + FPGABusy
	// − Overlap). All three are zero for single-engine fusers, whose Total
	// is the single lane.
	CPUBusy  sim.Time
	FPGABusy sim.Time
	Overlap  sim.Time

	// Latency is the frame's end-to-end span through the stage graph, from
	// the moment its first stage engaged to the completion of its last.
	// For the sequential executor it equals Total; under the inter-frame
	// pipelined executor it exceeds Total, because Total then reports the
	// frame *period* — the net advance of the pipeline's completion clock,
	// which in steady state approaches the slowest stage instead of the
	// stage sum. PipelineOverlap is the span of this frame's stage work
	// that ran concurrently with neighbouring frames' stages (already
	// netted out of Total); it is zero for sequential execution.
	Latency         sim.Time
	PipelineOverlap sim.Time
}

// Add accumulates other into s.
func (s *StageTimes) Add(other StageTimes) {
	s.Capture += other.Capture
	s.Forward += other.Forward
	s.Fuse += other.Fuse
	s.Inverse += other.Inverse
	s.Display += other.Display
	s.Total += other.Total
	s.Energy += other.Energy
	s.CPUBusy += other.CPUBusy
	s.FPGABusy += other.FPGABusy
	s.Overlap += other.Overlap
	s.Latency += other.Latency
	s.PipelineOverlap += other.PipelineOverlap
}

// energyDrainer is implemented by engines whose power level varies over
// the drained span (the adaptive scheduler); plain engines use a constant
// mode power.
type energyDrainer interface {
	DrainEnergy() (sim.Time, sim.Joules)
}

// laneDrainer is implemented by engines that drive the CPU and FPGA lanes
// concurrently (the adaptive scheduler under a cooperative split policy);
// it reports per-lane busy time and the overlapped span of a drained run.
type laneDrainer interface {
	DrainLanes() (cpu, fpga, overlap sim.Time)
}

// Fuser runs the fusion pipeline on one engine.
type Fuser struct {
	eng     engine.Engine
	dt      *wavelet.DTCWT
	cfg     Config
	pool    *bufpool.Pool
	workers *kernels.Workers
	fws     *fusion.Workspace

	// Hot-path workspaces, reused frame over frame like the board's fixed
	// transform frame stores: the two source pyramids and the fused one.
	pa, pb, fused *wavelet.DTPyramid

	// Operator-fusion planning state: the planner caches a FusionPlan per
	// execution shape, and the single-entry memo in front of it makes the
	// steady-state per-frame probe a struct compare.
	planner   *kernels.FusionPlanner
	plan      kernels.FusionPlan
	planShape kernels.FusionShape
	planValid bool
	fstats    FusionStats
}

// FusionStats reports the operator-fusion pass's activity: the active
// plan, how many frames ran fused, the intermediate planes (and bytes)
// the fused kernels never materialized, and the planner cache's hit/miss
// counts.
type FusionStats struct {
	Enabled      bool
	Plan         kernels.FusionPlan
	FusedFrames  int64
	PlanesElided int64
	BytesSaved   int64
	PlanHits     int
	PlanMisses   int
}

// New returns a Fuser bound to the engine.
func New(eng engine.Engine, cfg Config) *Fuser {
	cfg = cfg.withDefaults()
	pool := cfg.Pool
	if pool == nil {
		pool = bufpool.New(bufpool.Options{})
	}
	workers := kernels.NewWorkers(cfg.KernelWorkers)
	x := wavelet.NewXfm(eng)
	x.SetWorkers(workers)
	x.UseScratchPool(pool)
	return &Fuser{
		eng:     eng,
		dt:      wavelet.NewDTCWTPooled(x, cfg.Banks, pool),
		cfg:     cfg,
		pool:    pool,
		workers: workers,
		fws:     fusion.NewWorkspace(pool, workers),
		pa:      &wavelet.DTPyramid{},
		pb:      &wavelet.DTPyramid{},
		fused:   &wavelet.DTPyramid{},
	}
}

// Engine returns the bound engine.
func (f *Fuser) Engine() engine.Engine { return f.eng }

// Config returns the effective configuration.
func (f *Fuser) Config() Config { return f.cfg }

// Pool returns the fuser's frame-store arena.
func (f *Fuser) Pool() *bufpool.Pool { return f.pool }

// Close releases the fuser's workspace pyramids and scratch back to the
// pool and parks the kernel worker goroutines. After Close (and after
// releasing any fused frames still held), the pool's Outstanding count
// returns to zero — the leak detector's invariant. The fuser remains
// usable; workspaces are reshaped, scratch re-leased and workers
// respawned on the next frame.
func (f *Fuser) Close() {
	f.pa.Release()
	f.pb.Release()
	f.fused.Release()
	f.dt.X.ReleaseScratch()
	f.fws.Release()
	f.workers.Close()
}

// drain returns the engine time consumed since the last drain.
func (f *Fuser) drain() sim.Time { return f.eng.Reset() }

// fusionPlan resolves the operator-fusion plan for a frame geometry. With
// KernelFusion off it returns the zero (fully unfused) plan without
// touching the planner. Any shape change — geometry, depth, worker count,
// engine, operating point, rule fusability — invalidates the single-entry
// memo and re-probes the planner, which replans only on genuinely new
// shapes.
func (f *Fuser) fusionPlan(w, h int) kernels.FusionPlan {
	if !f.cfg.KernelFusion {
		return kernels.FusionPlan{}
	}
	shape := kernels.FusionShape{
		W: w, H: h,
		Levels:      f.cfg.Levels,
		Workers:     f.workers.N(),
		Engine:      f.eng.Name(),
		PointMHz:    f.Point().MHz(),
		Tiled:       f.dt.X.TileCapable(),
		RuleFusable: fusion.CanFuseRule(f.cfg.Rule),
	}
	if f.planValid && shape == f.planShape {
		return f.plan
	}
	if f.planner == nil {
		f.planner = kernels.NewFusionPlanner()
	}
	f.plan = f.planner.Plan(shape)
	f.planShape = shape
	f.planValid = true
	return f.plan
}

// FusionStats returns the accumulated operator-fusion counters. Plan is
// the most recently resolved plan (zero until the first fused-eligible
// frame).
func (f *Fuser) FusionStats() FusionStats {
	s := f.fstats
	s.Enabled = f.cfg.KernelFusion
	s.Plan = f.plan
	if f.planner != nil {
		s.PlanHits, s.PlanMisses, _ = f.planner.Stats()
	}
	return s
}

// validatePair is the shared admission check of both executors: non-nil
// same-size sources and a decomposition depth the geometry supports.
func validatePair(vis, ir *frame.Frame, levels int) error {
	if vis == nil || ir == nil {
		return errors.New("pipeline: nil input frame")
	}
	if !vis.SameSize(ir) {
		return fmt.Errorf("pipeline: source sizes differ: %dx%d vs %dx%d",
			vis.W, vis.H, ir.W, ir.H)
	}
	if maxLv := wavelet.MaxLevels(vis.W, vis.H); levels > maxLv {
		return fmt.Errorf("pipeline: %d levels exceed max %d for %dx%d",
			levels, maxLv, vis.W, vis.H)
	}
	return nil
}

// FuseFrames fuses one visible/infrared frame pair. The returned frame is
// leased from the fuser's pool with the caller as its owner: Release it
// once done to recycle the plane for a later frame (holding it leaks
// nothing — the pool only reuses released planes — but forfeits the
// reuse). All intermediate state lives in workspace pyramids reused frame
// over frame, so the steady-state call allocates nothing.
//
// The stage bodies below are mirrored by the pipelined executor's
// stageGraph (pipelined.go), which drains the engine per station instead
// of per Fig. 2 stage; any charge added or retuned here must be applied
// there too, or the depth >= 2 cost parity breaks while the depth-1
// golden tests stay green.
func (f *Fuser) FuseFrames(vis, ir *frame.Frame) (*frame.Frame, StageTimes, error) {
	levels := f.cfg.Levels
	if err := validatePair(vis, ir, levels); err != nil {
		return nil, StageTimes{}, err
	}
	var st StageTimes
	px := float64(vis.W * vis.H)
	plan := f.fusionPlan(vis.W, vis.H)
	f.drain() // discard anything pending
	if ld, ok := f.eng.(laneDrainer); ok {
		ld.DrainLanes() // discard pending lane accounting with it
	}

	if f.cfg.IncludeIO {
		f.eng.ChargeCPUCycles(2 * px * engine.CaptureCyclesPerPixel)
		st.Capture = f.drain()
	}

	// Every fused stage body replays the unfused path's modeled charges in
	// unfused order before its drain, so each stage's time — and the
	// float64 cycle accumulators behind it — matches the unfused branch
	// bit for bit. The q2c combine keeps its Forward attribution and the
	// c2q distribute its Inverse attribution even when the rule fusion
	// absorbs their compute.
	if plan.DualStream {
		if err := f.dt.ForwardPairInto(f.pa, f.pb, vis, ir, levels, !plan.CombineRule); err != nil {
			return nil, st, err
		}
	} else {
		if _, err := f.dt.ForwardInto(f.pa, vis, levels); err != nil {
			return nil, st, err
		}
		if _, err := f.dt.ForwardInto(f.pb, ir, levels); err != nil {
			return nil, st, err
		}
	}
	st.Forward = f.drain()

	if plan.CombineRule && plan.RuleDistribute {
		if err := f.dt.ShapeQuadPyramid(f.fused, vis.W, vis.H, levels); err != nil {
			return nil, st, err
		}
		if err := fusion.FuseQuads(f.fws, f.cfg.Rule, f.fused, f.pa, f.pb); err != nil {
			return nil, st, err
		}
	} else {
		if err := f.dt.ShapePyramid(f.fused, vis.W, vis.H, levels); err != nil {
			return nil, st, err
		}
		if err := fusion.FuseIntoWorkspace(f.fws, f.cfg.Rule, f.fused, f.pa, f.pb); err != nil {
			return nil, st, err
		}
	}
	f.eng.ChargeCPUCycles(px * engine.FusionRuleCyclesPerPixel)
	st.Fuse = f.drain()

	var rec *frame.Frame
	var err error
	if plan.RuleDistribute {
		rec, err = f.dt.InverseFused(f.fused)
	} else {
		rec, err = f.dt.Inverse(f.fused)
	}
	if err != nil {
		return nil, st, err
	}
	st.Inverse = f.drain()

	if plan.Any() {
		f.fstats.FusedFrames++
		f.fstats.PlanesElided += int64(plan.PlanesElided)
		f.fstats.BytesSaved += plan.BytesSaved
	}

	if f.cfg.IncludeIO {
		f.eng.ChargeCPUCycles(px * engine.DisplayCyclesPerPixel)
		st.Display = f.drain()
	}

	st.Total = st.Capture + st.Forward + st.Fuse + st.Inverse + st.Display
	st.Latency = st.Total // sequential: the frame occupies the whole period
	st.Energy = f.energyFor(st.Total)
	if ld, ok := f.eng.(laneDrainer); ok {
		st.CPUBusy, st.FPGABusy, st.Overlap = ld.DrainLanes()
	}
	return rec, st, nil
}

// energyFor converts a span to energy at the engine's mode power. The
// wave engine's clock and static power are drawn for the whole fusion
// while the FPGA mode is active, which is how the paper measures its flat
// +19.2 mW.
func (f *Fuser) energyFor(t sim.Time) sim.Joules {
	if d, ok := f.eng.(energyDrainer); ok {
		_, e := d.DrainEnergy()
		return e
	}
	return sim.EnergyOver(f.eng.Power(), t)
}

// ForwardOnly runs just the two forward transforms of a frame pair,
// returning the pyramids and the forward stage time (Fig. 9a workloads).
func (f *Fuser) ForwardOnly(vis, ir *frame.Frame) (pa, pb *wavelet.DTPyramid, t sim.Time, err error) {
	f.drain()
	pa, err = f.dt.Forward(vis, f.cfg.Levels)
	if err != nil {
		return nil, nil, 0, err
	}
	pb, err = f.dt.Forward(ir, f.cfg.Levels)
	if err != nil {
		return nil, nil, 0, err
	}
	return pa, pb, f.drain(), nil
}

// InverseOnly reconstructs from a fused pyramid, returning the inverse
// stage time (Fig. 9c workloads).
func (f *Fuser) InverseOnly(p *wavelet.DTPyramid) (*frame.Frame, sim.Time, error) {
	f.drain()
	rec, err := f.dt.Inverse(p)
	if err != nil {
		return nil, 0, err
	}
	return rec, f.drain(), nil
}

// ModePower reports the board power of the fuser's engine mode at the
// engine's operating point (the quiescent power for composite engines
// like the adaptive scheduler, whose draw varies over a span).
func (f *Fuser) ModePower() sim.Watts {
	return dvfs.ModePower(f.eng.Name(), f.Point())
}

// pointed is implemented by operating-point-aware engines.
type pointed interface {
	Point() dvfs.OperatingPoint
}

// Point reports the PS operating point the engine accounts this
// pipeline's stages at. Engines that predate the DVFS subsystem report
// the nominal 533 MHz point, the platform's fixed calibration.
func (f *Fuser) Point() dvfs.OperatingPoint {
	if p, ok := f.eng.(pointed); ok {
		return p.Point()
	}
	return dvfs.Nominal()
}

package pipeline

import (
	"fmt"
	"testing"

	"zynqfusion/internal/bufpool"
	"zynqfusion/internal/camera"
	"zynqfusion/internal/dvfs"
	"zynqfusion/internal/engine"
	"zynqfusion/internal/sched"
	"zynqfusion/internal/split"
)

// poolGoldenEngines builds fresh engine pairs for the pooled-vs-allocating
// parity matrix: the paper's two exclusive accelerated modes plus the
// cooperative split schedule, which exercises the FPGA driver boundary and
// the NEON lane in the same frame.
func poolGoldenEngines() map[string]func() engine.Engine {
	return map[string]func() engine.Engine{
		"neon": func() engine.Engine { return engine.NewNEON(false) },
		"fpga": func() engine.Engine { return engine.NewFPGA() },
		"split-oracle": func() engine.Engine {
			return sched.NewAdaptive(sched.SplitDriven{S: split.NewOracle(dvfs.Nominal())})
		},
	}
}

// TestGoldenPooledMatchesAllocating pins the zero-copy refactor: a fuser
// leasing every plane from the pool must produce bit-for-bit the pixels —
// and exactly the modeled times and joules — of the allocating baseline,
// across engines, pipeline depths 1/2/4 and a moving scene. Any stale
// pixel leaking out of a reused (uncleared) plane fails here.
func TestGoldenPooledMatchesAllocating(t *testing.T) {
	const frames = 5
	for name, mk := range poolGoldenEngines() {
		for _, depth := range []int{1, 2, 4} {
			t.Run(fmt.Sprintf("%s/depth%d", name, depth), func(t *testing.T) {
				pooledPool := bufpool.New(bufpool.Options{})
				pooled, err := NewPipelined(New(mk(), Config{IncludeIO: true, Pool: pooledPool}), depth)
				if err != nil {
					t.Fatal(err)
				}
				alloc, err := NewPipelined(New(mk(), Config{IncludeIO: true, Pool: bufpool.Passthrough()}), depth)
				if err != nil {
					t.Fatal(err)
				}
				scene := camera.NewScene(88, 72, 11)
				for i := 0; i < frames; i++ {
					scene.Advance()
					vis, ir := scene.Visible(), scene.Thermal()
					gotF, gotSt, err := pooled.FuseFrames(vis, ir)
					if err != nil {
						t.Fatal(err)
					}
					wantF, wantSt, err := alloc.FuseFrames(vis, ir)
					if err != nil {
						t.Fatal(err)
					}
					if gotF.W != wantF.W || gotF.H != wantF.H {
						t.Fatalf("frame %d: geometry %dx%d vs %dx%d", i, gotF.W, gotF.H, wantF.W, wantF.H)
					}
					for j := range gotF.Pix {
						if gotF.Pix[j] != wantF.Pix[j] {
							t.Fatalf("frame %d: pixel %d differs: pooled %v allocating %v",
								i, j, gotF.Pix[j], wantF.Pix[j])
						}
					}
					if gotSt != wantSt {
						t.Fatalf("frame %d: stage times diverged:\npooled     %+v\nallocating %+v", i, gotSt, wantSt)
					}
					gotF.Release()
				}
				// The pooled run's working set must be fixed and fully
				// recycled: no leases outstanding once the executor closes.
				pooled.Close()
				if err := pooledPool.CheckLeaks(); err != nil {
					t.Fatal(err)
				}
				if st := pooledPool.Stats(); st.Hits == 0 {
					t.Fatalf("pool never hit: %+v", st)
				}
			})
		}
	}
}

// TestGoldenPooledSequentialFuser runs the same parity check through the
// plain sequential Fuser (no pipelined wrapper), the configuration every
// pre-refactor caller uses.
func TestGoldenPooledSequentialFuser(t *testing.T) {
	for name, mk := range poolGoldenEngines() {
		t.Run(name, func(t *testing.T) {
			pool := bufpool.New(bufpool.Options{})
			pooled := New(mk(), Config{IncludeIO: true, Pool: pool})
			alloc := New(mk(), Config{IncludeIO: true, Pool: bufpool.Passthrough()})
			scene := camera.NewScene(64, 48, 23)
			for i := 0; i < 4; i++ {
				scene.Advance()
				vis, ir := scene.Visible(), scene.Thermal()
				gotF, gotSt, err := pooled.FuseFrames(vis, ir)
				if err != nil {
					t.Fatal(err)
				}
				wantF, wantSt, err := alloc.FuseFrames(vis, ir)
				if err != nil {
					t.Fatal(err)
				}
				for j := range gotF.Pix {
					if gotF.Pix[j] != wantF.Pix[j] {
						t.Fatalf("frame %d pixel %d: pooled %v allocating %v", i, j, gotF.Pix[j], wantF.Pix[j])
					}
				}
				if gotSt != wantSt {
					t.Fatalf("frame %d stage times diverged", i)
				}
				gotF.Release()
			}
			pooled.Close()
			if err := pool.CheckLeaks(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

package pipeline

import (
	"math"
	"testing"

	"zynqfusion/internal/camera"
	"zynqfusion/internal/engine"
	"zynqfusion/internal/frame"
	"zynqfusion/internal/wavelet"
)

// FuzzRoundTrip drives the wavelet forward→inverse round trip over fuzzed
// frame geometry, decomposition depth, engine and scene content. The
// DT-CWT is near-perfect-reconstruction, so for every reachable
// configuration the reconstruction must stay within the calibrated
// tolerance of the source — and no size/level/engine combination may
// panic or produce non-finite pixels. The seed corpus spans the paper's
// frame sizes, the level range, and all three engines; CI runs a short
// -fuzztime smoke on top of the seeds.
func FuzzRoundTrip(f *testing.F) {
	// (w, h, levels, engine selector, scene seed)
	f.Add(uint8(32), uint8(24), uint8(1), uint8(0), int64(1))   // arm, shallow
	f.Add(uint8(35), uint8(35), uint8(2), uint8(1), int64(2))   // neon, odd size
	f.Add(uint8(40), uint8(40), uint8(3), uint8(2), int64(3))   // fpga, paper size
	f.Add(uint8(64), uint8(48), uint8(3), uint8(1), int64(4))   // neon, largest cheap
	f.Add(uint8(9), uint8(9), uint8(4), uint8(2), int64(5))     // tiny odd, deep request
	f.Add(uint8(255), uint8(0), uint8(255), uint8(3), int64(6)) // clamp extremes
	f.Fuzz(func(t *testing.T, w, h, levels, engSel uint8, seed int64) {
		// Clamp geometry to the cheap range; parity and tiny sizes stay
		// reachable so padding and MaxLevels edges get exercised.
		W := 8 + int(w)%57 // 8..64
		H := 8 + int(h)%57
		maxLv := wavelet.MaxLevels(W, H)
		if maxLv < 1 {
			t.Skip("degenerate geometry")
		}
		lv := 1 + int(levels)%maxLv
		var eng engine.Engine
		switch engSel % 3 {
		case 0:
			eng = engine.NewARM()
		case 1:
			eng = engine.NewNEON(false)
		default:
			eng = engine.NewFPGA()
		}
		sc := camera.NewScene(W, H, seed)
		src := sc.Visible()

		fu := New(eng, Config{Levels: lv})
		pa, pb, _, err := fu.ForwardOnly(src, src)
		if err != nil {
			t.Fatalf("%dx%d lv=%d: forward: %v", W, H, lv, err)
		}
		// Identical sources must transform identically regardless of engine
		// scheduling.
		for li := range pa.Levels {
			for bi := range pa.Levels[li].Bands {
				ba, bb := pa.Levels[li].Bands[bi], pb.Levels[li].Bands[bi]
				for i := range ba.Re {
					if ba.Re[i] != bb.Re[i] || ba.Im[i] != bb.Im[i] {
						t.Fatalf("%dx%d lv=%d: twin forward transforms diverge at level %d band %d idx %d", W, H, lv, li, bi, i)
					}
				}
			}
		}
		rec, _, err := fu.InverseOnly(pa)
		if err != nil {
			t.Fatalf("%dx%d lv=%d: inverse: %v", W, H, lv, err)
		}
		if !rec.SameSize(src) {
			t.Fatalf("%dx%d lv=%d: reconstruction is %dx%d", W, H, lv, rec.W, rec.H)
		}
		e, _ := frame.MaxAbsDiff(src, rec)
		if math.IsNaN(e) || math.IsInf(e, 0) {
			t.Fatalf("%dx%d lv=%d: non-finite reconstruction error", W, H, lv)
		}
		// The wavelet suite pins the reference kernel at 5e-2 max-abs on
		// [0,1] frames; the engine datapaths share the float32 math.
		if e > 5e-2 {
			t.Fatalf("%dx%d lv=%d engine=%s: reconstruction error %g exceeds 5e-2", W, H, lv, eng.Name(), e)
		}
	})
}

package pipeline

import (
	"fmt"
	"testing"

	"zynqfusion/internal/camera"
	"zynqfusion/internal/dvfs"
	"zynqfusion/internal/engine"
	"zynqfusion/internal/fusion"
)

// TestForwardInverseRoundTripMatchesFuseFrames drives the staged API
// (ForwardOnly → fusion rule → InverseOnly) and the one-shot FuseFrames
// over the same frame pair, and requires bit-for-bit identical
// reconstructions — on both the NEON and FPGA engines, at the nominal
// 533 MHz point and the 667 MHz overdrive point. The operating point may
// move every modeled time; it must never move a pixel.
func TestForwardInverseRoundTripMatchesFuseFrames(t *testing.T) {
	sc := camera.NewScene(64, 48, 11)
	vis, ir := sc.Visible(), sc.Thermal()
	points := []string{"533MHz", "667MHz"}
	builders := map[string]func(op dvfs.OperatingPoint) engine.Engine{
		"neon": func(op dvfs.OperatingPoint) engine.Engine { return engine.NewNEONAt(false, op) },
		"fpga": func(op dvfs.OperatingPoint) engine.Engine { return engine.NewFPGAAt(op) },
	}
	for name, build := range builders {
		for _, pt := range points {
			t.Run(fmt.Sprintf("%s/%s", name, pt), func(t *testing.T) {
				op, ok := dvfs.Lookup(pt)
				if !ok {
					t.Fatalf("no operating point %s", pt)
				}
				cfg := Config{Levels: 3}

				oneShot := New(build(op), cfg)
				want, _, err := oneShot.FuseFrames(vis, ir)
				if err != nil {
					t.Fatal(err)
				}

				staged := New(build(op), cfg)
				pa, pb, fwdT, err := staged.ForwardOnly(vis, ir)
				if err != nil {
					t.Fatal(err)
				}
				if fwdT <= 0 {
					t.Error("forward stage reported no time")
				}
				fused, err := fusion.Fuse(staged.Config().Rule, pa, pb)
				if err != nil {
					t.Fatal(err)
				}
				got, invT, err := staged.InverseOnly(fused)
				if err != nil {
					t.Fatal(err)
				}
				if invT <= 0 {
					t.Error("inverse stage reported no time")
				}

				if !got.SameSize(want) {
					t.Fatalf("size %dx%d != %dx%d", got.W, got.H, want.W, want.H)
				}
				for i := range got.Pix {
					if got.Pix[i] != want.Pix[i] {
						t.Fatalf("pixel %d differs: staged %v, one-shot %v", i, got.Pix[i], want.Pix[i])
					}
				}
			})
		}
	}
}

package pipeline

import (
	"fmt"
	"runtime"
	"testing"

	"zynqfusion/internal/camera"
	"zynqfusion/internal/engine"
	"zynqfusion/internal/frame"
	"zynqfusion/internal/fusion"
	"zynqfusion/internal/wavelet"
)

// fusePair runs one frame pair through a fresh fuser and returns the
// result; the caller compares across configurations.
func fusePair(t testing.TB, eng engine.Engine, cfg Config, vis, ir *frame.Frame) (*frame.Frame, StageTimes) {
	t.Helper()
	fu := New(eng, cfg)
	defer fu.Close()
	rec, st, err := fu.FuseFrames(vis, ir)
	if err != nil {
		t.Fatalf("FuseFrames(fusion=%v workers=%d): %v", cfg.KernelFusion, cfg.KernelWorkers, err)
	}
	return rec, st
}

func assertIdentical(t *testing.T, label string, ref, got *frame.Frame, refSt, gotSt StageTimes) {
	t.Helper()
	if !ref.SameSize(got) {
		t.Fatalf("%s: size %dx%d vs %dx%d", label, ref.W, ref.H, got.W, got.H)
	}
	for i := range ref.Pix {
		if ref.Pix[i] != got.Pix[i] {
			t.Fatalf("%s: pixel %d diverges: %x vs %x", label, i,
				ref.Pix[i], got.Pix[i])
		}
	}
	if refSt != gotSt {
		t.Fatalf("%s: StageTimes diverge:\nref %+v\ngot %+v", label, refSt, gotSt)
	}
}

// TestFusedEquivalence pins the operator-fusion determinism contract:
// with KernelFusion on, pixels and the full StageTimes (including energy)
// are bit-identical to the unfused path, for every built-in rule, a
// custom rule (dual-stream fusion only), odd geometry, and worker counts
// 1 and 4.
func TestFusedEquivalence(t *testing.T) {
	// Real parallelism for the workers=4 rows, whatever the host core
	// count: worker pools cap at GOMAXPROCS.
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	sc := camera.NewScene(96, 72, 7)
	vis, ir := sc.Visible(), sc.Thermal()
	scOdd := camera.NewScene(97, 71, 8)
	visOdd, irOdd := scOdd.Visible(), scOdd.Thermal()

	rules := []fusion.Rule{
		nil, // default max-magnitude
		fusion.Average{},
		fusion.WindowEnergy{R: 1},
		fusion.WindowEnergy{R: 0},
		customRule{},
	}
	for _, rule := range rules {
		name := "default"
		if rule != nil {
			name = rule.Name()
		}
		for _, pair := range []struct {
			tag     string
			vis, ir *frame.Frame
		}{{"even", vis, ir}, {"odd", visOdd, irOdd}} {
			for _, workers := range []int{1, 4} {
				label := fmt.Sprintf("%s/%s/w%d", name, pair.tag, workers)
				base := Config{Levels: 3, Rule: rule, IncludeIO: true, KernelWorkers: 1}
				refRec, refSt := fusePair(t, engine.NewNEON(false), base, pair.vis, pair.ir)
				cfg := base
				cfg.KernelWorkers = workers
				cfg.KernelFusion = true
				gotRec, gotSt := fusePair(t, engine.NewNEON(false), cfg, pair.vis, pair.ir)
				assertIdentical(t, label, refRec, gotRec, refSt, gotSt)
				refRec.Release()
				gotRec.Release()
			}
		}
	}
}

// customRule has no fused quad kernel, so the planner keeps only the
// dual-stream pass for it.
type customRule struct{}

func (customRule) Name() string { return "custom-avg" }
func (customRule) FuseBand(dst, a, b *wavelet.ComplexBand) {
	for i := range dst.Re {
		dst.Re[i] = 0.5 * (a.Re[i] + b.Re[i])
		dst.Im[i] = 0.5 * (a.Im[i] + b.Im[i])
	}
}
func (customRule) FuseLL(dst, a, b *frame.Frame) {
	for i := range dst.Pix {
		dst.Pix[i] = 0.5 * (a.Pix[i] + b.Pix[i])
	}
}

// TestFusedStatsAccumulate checks the fuser-side fusion accounting: fused
// frames count, plane/byte elision accumulates, and the single-entry memo
// means the planner sees one miss for a stable shape.
func TestFusedStatsAccumulate(t *testing.T) {
	sc := camera.NewScene(64, 48, 3)
	fu := New(engine.NewNEON(false), Config{Levels: 2, KernelFusion: true})
	defer fu.Close()
	const frames = 4
	for i := 0; i < frames; i++ {
		rec, _, err := fu.FuseFrames(sc.Visible(), sc.Thermal())
		if err != nil {
			t.Fatal(err)
		}
		rec.Release()
		sc.Advance()
	}
	s := fu.FusionStats()
	if !s.Enabled || s.FusedFrames != frames {
		t.Fatalf("stats: %+v", s)
	}
	if !s.Plan.DualStream || !s.Plan.CombineRule || !s.Plan.RuleDistribute {
		t.Fatalf("full fusion expected for NEON fast: %+v", s.Plan)
	}
	if s.PlanesElided != frames*int64(s.Plan.PlanesElided) || s.BytesSaved != frames*s.Plan.BytesSaved {
		t.Fatalf("elision accounting: %+v", s)
	}
	if s.PlanMisses != 1 {
		t.Fatalf("stable shape should plan once, got %d misses", s.PlanMisses)
	}
	if fu2 := New(engine.NewNEON(false), Config{Levels: 2}); true {
		defer fu2.Close()
		rec, _, err := fu2.FuseFrames(sc.Visible(), sc.Thermal())
		if err != nil {
			t.Fatal(err)
		}
		rec.Release()
		s2 := fu2.FusionStats()
		if s2.Enabled || s2.FusedFrames != 0 || s2.Plan.Any() {
			t.Fatalf("fusion off must stay unfused: %+v", s2)
		}
	}
}

// TestFusedVetoEmulatedEngine: the emulated NEON engine vetoes tiling and
// therefore fusion; KernelFusion on must be a no-op (and still correct).
func TestFusedVetoEmulatedEngine(t *testing.T) {
	sc := camera.NewScene(64, 48, 5)
	vis, ir := sc.Visible(), sc.Thermal()
	base := Config{Levels: 2, IncludeIO: true}
	refRec, refSt := fusePair(t, engine.NewNEONEmulated(false), base, vis, ir)
	cfg := base
	cfg.KernelFusion = true
	gotRec, gotSt := fusePair(t, engine.NewNEONEmulated(false), cfg, vis, ir)
	assertIdentical(t, "emulated-veto", refRec, gotRec, refSt, gotSt)
	refRec.Release()
	gotRec.Release()

	fu := New(engine.NewNEONEmulated(false), cfg)
	defer fu.Close()
	rec, _, err := fu.FuseFrames(vis, ir)
	if err != nil {
		t.Fatal(err)
	}
	rec.Release()
	if s := fu.FusionStats(); s.FusedFrames != 0 || s.Plan.Any() {
		t.Fatalf("emulated engine must veto fusion: %+v", s)
	}
}

// FuzzFusedEquivalence fuzzes the fused-vs-unfused equivalence over
// geometry, depth, engine, worker count and scene content: with
// KernelFusion on, pixels and StageTimes must be bit-identical to the
// unfused reference — whether the shape fuses fully, partially (custom
// rules, small sizes) or not at all (vetoed engines).
func FuzzFusedEquivalence(f *testing.F) {
	// (w, h, levels, engine selector, workers, seed)
	f.Add(uint8(32), uint8(24), uint8(1), uint8(1), uint8(1), int64(1))
	f.Add(uint8(35), uint8(35), uint8(2), uint8(1), uint8(4), int64(2))
	f.Add(uint8(40), uint8(40), uint8(3), uint8(2), uint8(2), int64(3))
	f.Add(uint8(64), uint8(48), uint8(3), uint8(0), uint8(3), int64(4))
	f.Add(uint8(57), uint8(63), uint8(4), uint8(1), uint8(2), int64(5))
	f.Fuzz(func(t *testing.T, w, h, levels, engSel, workers uint8, seed int64) {
		W := 8 + int(w)%57 // 8..64
		H := 8 + int(h)%57
		maxLv := wavelet.MaxLevels(W, H)
		if maxLv < 1 {
			t.Skip("degenerate geometry")
		}
		lv := 1 + int(levels)%maxLv
		eng := func() engine.Engine {
			switch engSel % 3 {
			case 0:
				eng := engine.NewARM()
				return eng
			case 1:
				return engine.NewNEON(false)
			default:
				return engine.NewNEONEmulated(false)
			}
		}
		wk := 1 + int(workers)%4
		if wk > runtime.GOMAXPROCS(0) {
			defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(wk))
		}
		sc := camera.NewScene(W, H, seed)
		vis, ir := sc.Visible(), sc.Thermal()

		base := Config{Levels: lv, IncludeIO: true, KernelWorkers: 1}
		refRec, refSt := fusePair(t, eng(), base, vis, ir)
		cfg := base
		cfg.KernelWorkers = wk
		cfg.KernelFusion = true
		gotRec, gotSt := fusePair(t, eng(), cfg, vis, ir)
		label := fmt.Sprintf("%dx%d lv=%d eng=%d w=%d", W, H, lv, engSel%3, wk)
		assertIdentical(t, label, refRec, gotRec, refSt, gotSt)
		refRec.Release()
		gotRec.Release()
	})
}

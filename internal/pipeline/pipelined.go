package pipeline

import (
	"errors"
	"fmt"

	"zynqfusion/internal/engine"
	"zynqfusion/internal/frame"
	"zynqfusion/internal/fusion"
	"zynqfusion/internal/power"
	"zynqfusion/internal/sim"
	"zynqfusion/internal/wavelet"
)

// The paper's real system streams frames through BT656 capture, DMA and
// the PL wave engine with double-buffered frame stores, so stage N of
// frame k overlaps stage N-1 of frame k+1. PipelinedFuser reproduces that
// schedule over the modeled stage graph: each stage is a station with its
// own frame store, a frame flows through the stations in order, and a
// station processes one frame at a time. The steady-state frame period
// then approaches
//
//	max(slowest stage + handoff, frame latency / depth)
//
// instead of the stage sum — the handoff being the calibrated
// engine.PipelineHandoffCycles buffer-swap charge per stage boundary.

// MaxDepth is a sanity bound on the in-flight frame budget, set well
// above any useful depth: throughput saturates once depth reaches the
// station count (at most 6), and beyond that extra depth only buys
// frame-store memory. Depths up to MaxDepth are accepted — and behave
// like the saturated pipeline — so sweeps can probe the flat region;
// anything larger is a configuration error.
const MaxDepth = 64

// Stage is one station of the pipelined executor's stage graph.
type Stage struct {
	// Name identifies the station ("capture", "forward-vis", "forward-ir",
	// "fuse", "inverse", "display").
	Name string
	// Wavelet marks stages that drive the wavelet kernels — the stages a
	// governed farm stream needs the FPGA lease for. CPU-only stages
	// (capture, fuse, display) never touch the wave engine, so a per-stage
	// scheduler releases the lease across them.
	Wavelet bool

	run func(f *Fuser, c *frameJob) error
}

// frameJob carries one frame pair's intermediate state between stations.
// The pyramids are the owning Fuser's reused workspaces: the executor
// walks a frame's stations to completion before admitting the next call,
// so one frame's stores suffice regardless of the modeled depth.
type frameJob struct {
	px       float64
	vis, ir  *frame.Frame
	pa, pb   *wavelet.DTPyramid
	fusedPyr *wavelet.DTPyramid
	rec      *frame.Frame
}

// stageGraph decomposes the fusion dataflow into the stations the
// pipelined executor overlaps. The forward transform splits into its two
// independent source transforms — each source has its own capture path and
// frame store in the paper's hardware — so no single station carries half
// the frame time.
//
// The station bodies mirror Fuser.FuseFrames stage for stage; keep the
// two in sync when adding or retuning a charge (the parity tests pin
// pixels at every depth, but cost charges are only reviewed by hand).
func stageGraph(includeIO bool) []Stage {
	var st []Stage
	if includeIO {
		st = append(st, Stage{Name: "capture", run: func(f *Fuser, c *frameJob) error {
			f.eng.ChargeCPUCycles(2 * c.px * engine.CaptureCyclesPerPixel)
			return nil
		}})
	}
	st = append(st,
		Stage{Name: "forward-vis", Wavelet: true, run: func(f *Fuser, c *frameJob) error {
			var err error
			c.pa, err = f.dt.ForwardInto(f.pa, c.vis, f.cfg.Levels)
			return err
		}},
		Stage{Name: "forward-ir", Wavelet: true, run: func(f *Fuser, c *frameJob) error {
			var err error
			c.pb, err = f.dt.ForwardInto(f.pb, c.ir, f.cfg.Levels)
			return err
		}},
		Stage{Name: "fuse", run: func(f *Fuser, c *frameJob) error {
			if err := f.dt.ShapePyramid(f.fused, c.vis.W, c.vis.H, f.cfg.Levels); err != nil {
				return err
			}
			if err := fusion.FuseIntoWorkspace(f.fws, f.cfg.Rule, f.fused, c.pa, c.pb); err != nil {
				return err
			}
			c.fusedPyr = f.fused
			f.eng.ChargeCPUCycles(c.px * engine.FusionRuleCyclesPerPixel)
			return nil
		}},
		Stage{Name: "inverse", Wavelet: true, run: func(f *Fuser, c *frameJob) error {
			var err error
			c.rec, err = f.dt.Inverse(c.fusedPyr)
			return err
		}},
	)
	if includeIO {
		st = append(st, Stage{Name: "display", run: func(f *Fuser, c *frameJob) error {
			f.eng.ChargeCPUCycles(c.px * engine.DisplayCyclesPerPixel)
			return nil
		}})
	}
	return st
}

// sequentialStageNames are the occupancy buckets of the depth-1 degenerate
// path, which delegates to the classic FuseFrames and therefore measures
// the forward transforms as one undivided stage.
func sequentialStageNames(includeIO bool) []string {
	if includeIO {
		return []string{"capture", "forward", "fuse", "inverse", "display"}
	}
	return []string{"forward", "fuse", "inverse"}
}

// Hooks brackets each station run of a pipelined fusion. The farm uses
// them to hold the shared-FPGA lease per stage instead of per frame: it
// acquires around the wavelet stations and releases across the CPU-only
// ones, so stages of different streams' frames interleave on the one
// modeled wave engine. All hooks run synchronously on the fusing
// goroutine. StageEnd always fires for a started stage, even when the
// stage errors, so a hook that acquired a resource can release it.
//
// FrameDone fires once per completed frame with the frame's stations
// *placed* on the executor's modeled pipeline timeline — the exact spans
// the period/latency accounting is derived from, which is what a trace
// exporter needs (stage k of frame n+1 genuinely overlapping stage k+1 of
// frame n). The spans slice is reused between frames: it is valid only
// during the call and must be copied to be retained.
type Hooks struct {
	StageStart func(s Stage, frame int64)
	StageEnd   func(s Stage, frame int64, d sim.Time)
	FrameDone  func(frame int64, spans []StageSpan)
}

// StageSpan is one station's placed occupation on the pipelined executor's
// modeled timeline.
type StageSpan struct {
	// Name is the station name ("capture", "forward-vis", …).
	Name string
	// Start and End delimit the station's span; spans on the same station
	// never overlap across frames, and within a frame stations run in
	// graph order.
	Start, End sim.Time
}

// stageAware mirrors sched.StageAware structurally (pipeline does not
// import sched): engines that schedule per stage are notified before each
// station runs.
type stageAware interface {
	BeginStage(stage string, frame int64)
}

// StageOccupancy is one station's share of the pipeline's cumulative
// record.
type StageOccupancy struct {
	// Name is the station name.
	Name string `json:"name"`
	// Busy is the station's accumulated processing time.
	Busy sim.Time `json:"busy_ps"`
	// Utilization is Busy over the pipeline makespan: how full this
	// station's frame store has been. The bottleneck station's utilization
	// approaches 1 in steady state.
	Utilization float64 `json:"utilization"`
}

// PipelineStats is the executor's cumulative occupancy record.
type PipelineStats struct {
	// Depth is the configured in-flight frame budget.
	Depth int `json:"depth"`
	// Frames counts completed fusions.
	Frames int64 `json:"frames"`
	// Fill is the completion time of the first frame — the pipeline-fill
	// latency before steady-state overlap begins.
	Fill sim.Time `json:"fill_ps"`
	// Makespan is the completion time of the latest frame on the modeled
	// pipeline timeline.
	Makespan sim.Time `json:"makespan_ps"`
	// MeanInFlight is the time-averaged number of frames in flight
	// (Little's law: summed latency over makespan). It is 1 for the
	// sequential path and approaches min(depth, stations) as the pipeline
	// fills.
	MeanInFlight float64 `json:"mean_in_flight"`
	// Stages is the per-station occupancy in graph order.
	Stages []StageOccupancy `json:"stages"`
}

// PipelinedFuser runs the fusion stage graph with up to depth frames in
// flight, overlapping the stages of consecutive frames the way the
// paper's double-buffered capture→transform→display hardware chain does.
// Work is executed exactly as the sequential Fuser would execute it — the
// fused pixels are bit-for-bit identical at every depth — while the
// modeled timeline advances per stage: each frame's reported Total is its
// *period* (the net advance of the pipeline completion clock) and Latency
// its end-to-end span. Depth 1 degenerates to the sequential executor
// bit-for-bit: it delegates to Fuser.FuseFrames and pays no handoff.
//
// Like Fuser, a PipelinedFuser is not safe for concurrent use.
type PipelinedFuser struct {
	f      *Fuser
	depth  int
	stages []Stage
	hooks  Hooks

	seq        int64      // frames completed
	avail      []sim.Time // per-station free times on the pipeline timeline
	ring       []sim.Time // circular frame-completion times, len == depth
	lastDone   sim.Time   // completion time of the most recent frame
	fill       sim.Time   // completion time of the first frame
	latencySum sim.Time
	order      []string // occupancy bucket order
	stageBusy  map[string]sim.Time
	handoffT   sim.Time // per-boundary handoff span (depth >= 2)

	// Per-call scratch reused frame over frame, keeping the steady-state
	// hot path allocation-free.
	job   frameJob
	durs  []sim.Time
	spans []StageSpan
}

// NewPipelined wraps a Fuser in the inter-frame pipelined executor with
// the given in-flight frame budget. Depth must be in [1, MaxDepth]: depth
// 1 selects the degenerate sequential schedule, larger depths overlap
// that many consecutive frames across the stage graph.
func NewPipelined(f *Fuser, depth int) (*PipelinedFuser, error) {
	if f == nil {
		return nil, errors.New("pipeline: NewPipelined requires a Fuser")
	}
	if depth < 1 {
		return nil, fmt.Errorf("pipeline: depth must be >= 1, got %d (1 = sequential, >= 2 overlaps frames)", depth)
	}
	if depth > MaxDepth {
		return nil, fmt.Errorf("pipeline: depth %d exceeds MaxDepth %d (extra depth past the station count buys only frame-store memory)", depth, MaxDepth)
	}
	p := &PipelinedFuser{
		f:         f,
		depth:     depth,
		stageBusy: make(map[string]sim.Time),
	}
	if depth == 1 {
		p.order = sequentialStageNames(f.cfg.IncludeIO)
		return p, nil
	}
	p.stages = stageGraph(f.cfg.IncludeIO)
	p.avail = make([]sim.Time, len(p.stages))
	p.ring = make([]sim.Time, depth)
	p.durs = make([]sim.Time, len(p.stages))
	p.spans = make([]StageSpan, len(p.stages))
	for _, s := range p.stages {
		p.order = append(p.order, s.Name)
	}
	return p, nil
}

// SetHooks installs the per-stage bracketing hooks. Hooks only fire on the
// overlapped path (depth >= 2); the depth-1 degenerate path runs the
// classic sequential schedule, which has no stage boundaries to announce.
func (p *PipelinedFuser) SetHooks(h Hooks) { p.hooks = h }

// Depth returns the in-flight frame budget.
func (p *PipelinedFuser) Depth() int { return p.depth }

// Frames returns how many fusions have completed on this executor's
// timeline — below Depth the pipeline is still filling, and a frame's
// period carries part of the one-time ramp to steady state.
func (p *PipelinedFuser) Frames() int64 { return p.seq }

// Fuser returns the wrapped sequential fuser.
func (p *PipelinedFuser) Fuser() *Fuser { return p.f }

// Close releases the wrapped fuser's workspace planes back to the pool.
func (p *PipelinedFuser) Close() { p.f.Close() }

// Stages returns the stage graph the executor overlaps (nil for the
// depth-1 degenerate path, which has no stations of its own).
func (p *PipelinedFuser) Stages() []Stage { return p.stages }

// FuseFrames fuses one visible/infrared frame pair through the pipelined
// stage graph. The returned frame is bit-for-bit the sequential fusion;
// the StageTimes report the pipelined timeline: Total is the frame's
// period, Latency its end-to-end span, and Energy the active stage energy
// with the quiescent board draw over the overlapped span rebated (that
// span passes once on the wall clock, not twice).
func (p *PipelinedFuser) FuseFrames(vis, ir *frame.Frame) (*frame.Frame, StageTimes, error) {
	if p.depth == 1 {
		rec, st, err := p.f.FuseFrames(vis, ir)
		if err != nil {
			return rec, st, err
		}
		p.recordSequential(st)
		return rec, st, nil
	}
	if err := validatePair(vis, ir, p.f.cfg.Levels); err != nil {
		return nil, StageTimes{}, err
	}
	p.discardPending()

	p.job = frameJob{px: float64(vis.W * vis.H), vis: vis, ir: ir}
	job := &p.job
	var st StageTimes
	durs := p.durs
	var activeE sim.Joules
	for i, stage := range p.stages {
		d, e, err := p.runStage(stage, job, i == len(p.stages)-1)
		if err != nil {
			return nil, st, err
		}
		durs[i] = d
		activeE += e
		p.chargeStage(&st, stage.Name, d)
		if ld, ok := p.f.eng.(laneDrainer); ok {
			cpu, fpga, ov := ld.DrainLanes()
			st.CPUBusy += cpu
			st.FPGABusy += fpga
			st.Overlap += ov
		}
	}
	p.advance(&st, durs, activeE)
	return job.rec, st, nil
}

// discardPending drains anything charged to the engine outside the
// executor (mirrors the sequential FuseFrames preamble).
func (p *PipelinedFuser) discardPending() {
	if ed, ok := p.f.eng.(energyDrainer); ok {
		ed.DrainEnergy()
	} else {
		p.f.drain()
	}
	if ld, ok := p.f.eng.(laneDrainer); ok {
		ld.DrainLanes()
	}
}

// runStage executes one station: announce the boundary to a stage-aware
// engine, bracket with the hooks, run, charge the buffer handoff (every
// boundary but the last), and drain the station's span and energy.
func (p *PipelinedFuser) runStage(s Stage, job *frameJob, last bool) (sim.Time, sim.Joules, error) {
	if sa, ok := p.f.eng.(stageAware); ok {
		sa.BeginStage(s.Name, p.seq)
	}
	if p.hooks.StageStart != nil {
		p.hooks.StageStart(s, p.seq)
	}
	err := s.run(p.f, job)
	if err == nil && !last {
		p.f.eng.ChargeCPUCycles(engine.PipelineHandoffCycles)
	}
	var d sim.Time
	var e sim.Joules
	if ed, ok := p.f.eng.(energyDrainer); ok {
		d, e = ed.DrainEnergy()
	} else {
		d = p.f.eng.Reset()
		e = sim.EnergyOver(p.f.eng.Power(), d)
	}
	if p.hooks.StageEnd != nil {
		p.hooks.StageEnd(s, p.seq, d)
	}
	return d, e, err
}

// chargeStage maps a station's span onto the classic StageTimes slot.
func (p *PipelinedFuser) chargeStage(st *StageTimes, name string, d sim.Time) {
	switch name {
	case "capture":
		st.Capture += d
	case "forward-vis", "forward-ir":
		st.Forward += d
	case "fuse":
		st.Fuse += d
	case "inverse":
		st.Inverse += d
	case "display":
		st.Display += d
	}
	p.stageBusy[name] += d
}

// advance plays the frame's station spans onto the pipeline timeline: a
// frame is admitted once frame seq-depth has completed (the in-flight
// bound of the depth frame stores), each station processes one frame at a
// time, and a frame's stages run in order. Total becomes the frame's
// period, Latency its span, and the energy rebates the quiescent draw
// over the span this frame overlapped its neighbours.
func (p *PipelinedFuser) advance(st *StageTimes, durs []sim.Time, activeE sim.Joules) {
	// The ring is circular over the last depth completions: slot seq%depth
	// holds frame seq-depth's completion — exactly the admission gate.
	slot := int(p.seq % int64(p.depth))
	var admit sim.Time
	if p.seq >= int64(p.depth) {
		admit = p.ring[slot]
	}
	start := admit
	if p.avail[0] > start {
		start = p.avail[0]
	}
	t := start
	var busy sim.Time
	for i, d := range durs {
		if p.avail[i] > t {
			t = p.avail[i]
		}
		p.spans[i] = StageSpan{Name: p.stages[i].Name, Start: t, End: t + d}
		t += d
		p.avail[i] = t
		busy += d
	}
	p.ring[slot] = t
	period := t - p.lastDone
	p.lastDone = t
	if p.seq == 0 {
		p.fill = t
	}
	frameSeq := p.seq
	p.seq++

	st.Total = period
	st.Latency = t - start
	p.latencySum += st.Latency
	if over := busy - period; over > 0 {
		st.PipelineOverlap = over
	}
	// Both stations' active power is genuinely spent; only the quiescent
	// board draw over the overlapped span is saved, because that span now
	// passes once on the wall clock instead of once per station. A bubble
	// (period beyond this frame's own busy time) idles the board and is
	// charged at the same quiescent draw, keeping the ledger conservative.
	st.Energy = activeE + sim.EnergyOver(power.Idle, period-busy)
	if p.hooks.FrameDone != nil {
		p.hooks.FrameDone(frameSeq, p.spans)
	}
}

// recordSequential folds a delegated depth-1 frame into the cumulative
// record, using the classic undivided stage breakdown.
func (p *PipelinedFuser) recordSequential(st StageTimes) {
	p.stageBusy["capture"] += st.Capture
	p.stageBusy["forward"] += st.Forward
	p.stageBusy["fuse"] += st.Fuse
	p.stageBusy["inverse"] += st.Inverse
	p.stageBusy["display"] += st.Display
	p.lastDone += st.Total
	p.latencySum += st.Latency
	if p.seq == 0 {
		p.fill = st.Total
	}
	p.seq++
}

// Stats snapshots the executor's cumulative occupancy record.
func (p *PipelinedFuser) Stats() PipelineStats {
	ps := PipelineStats{
		Depth:    p.depth,
		Frames:   p.seq,
		Fill:     p.fill,
		Makespan: p.lastDone,
	}
	if p.lastDone > 0 {
		ps.MeanInFlight = float64(p.latencySum) / float64(p.lastDone)
	}
	for _, n := range p.order {
		o := StageOccupancy{Name: n, Busy: p.stageBusy[n]}
		if p.lastDone > 0 {
			o.Utilization = float64(o.Busy) / float64(p.lastDone)
		}
		ps.Stages = append(ps.Stages, o)
	}
	return ps
}

// Config returns the wrapped fuser's effective configuration.
func (p *PipelinedFuser) Config() Config { return p.f.Config() }

// Engine returns the bound engine.
func (p *PipelinedFuser) Engine() engine.Engine { return p.f.Engine() }

package pipeline

import (
	"math/rand"
	"testing"

	"zynqfusion/internal/engine"
	"zynqfusion/internal/frame"
	"zynqfusion/internal/fusion"
)

func randFrame(rng *rand.Rand, w, h int) *frame.Frame {
	f := frame.New(w, h)
	for i := range f.Pix {
		f.Pix[i] = float32(rng.Intn(256))
	}
	return f
}

func TestFuseFramesProducesFiniteOutput(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	vis := randFrame(rng, 64, 48)
	ir := randFrame(rng, 64, 48)
	for _, e := range []engine.Engine{engine.NewARM(), engine.NewNEON(false), engine.NewFPGA()} {
		fu := New(e, Config{IncludeIO: true})
		out, st, err := fu.FuseFrames(vis, ir)
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		if out.W != 64 || out.H != 48 {
			t.Fatalf("%s: output %dx%d", e.Name(), out.W, out.H)
		}
		if st.Total <= 0 || st.Energy <= 0 {
			t.Errorf("%s: empty accounting %+v", e.Name(), st)
		}
		if st.Total != st.Capture+st.Forward+st.Fuse+st.Inverse+st.Display {
			t.Errorf("%s: stages do not sum to total", e.Name())
		}
		if st.Forward <= 0 || st.Inverse <= 0 || st.Fuse <= 0 {
			t.Errorf("%s: missing stage time %+v", e.Name(), st)
		}
	}
}

func TestFuseIdenticalReconstructsInput(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	img := randFrame(rng, 88, 72)
	fu := New(engine.NewFPGA(), Config{})
	out, _, err := fu.FuseFrames(img, img)
	if err != nil {
		t.Fatal(err)
	}
	e, _ := frame.MaxAbsDiff(img, out)
	if e > 5e-2 {
		t.Errorf("fuse(A,A) through the FPGA stack: max error %g", e)
	}
}

func TestFuseFramesValidatesInput(t *testing.T) {
	fu := New(engine.NewARM(), Config{})
	a := frame.New(32, 32)
	if _, _, err := fu.FuseFrames(a, frame.New(16, 16)); err == nil {
		t.Error("size mismatch should fail")
	}
	if _, _, err := fu.FuseFrames(nil, a); err == nil {
		t.Error("nil frame should fail")
	}
	deep := New(engine.NewARM(), Config{Levels: 9})
	if _, _, err := deep.FuseFrames(a, a); err == nil {
		t.Error("too many levels should fail")
	}
}

func TestIncludeIOChargesCaptureAndDisplay(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	vis := randFrame(rng, 32, 24)
	ir := randFrame(rng, 32, 24)
	with := New(engine.NewARM(), Config{IncludeIO: true})
	without := New(engine.NewARM(), Config{IncludeIO: false})
	_, stWith, err := with.FuseFrames(vis, ir)
	if err != nil {
		t.Fatal(err)
	}
	_, stWithout, err := without.FuseFrames(vis, ir)
	if err != nil {
		t.Fatal(err)
	}
	if stWith.Capture <= 0 || stWith.Display <= 0 {
		t.Error("IncludeIO should charge capture and display")
	}
	if stWithout.Capture != 0 || stWithout.Display != 0 {
		t.Error("micro-benchmark mode should not charge IO stages")
	}
	if stWith.Total <= stWithout.Total {
		t.Error("IO stages should increase total")
	}
}

func TestRuleSelectionAffectsOutput(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	vis := randFrame(rng, 48, 48)
	ir := randFrame(rng, 48, 48)
	maxF := New(engine.NewARM(), Config{Rule: fusion.MaxMagnitude{}})
	avgF := New(engine.NewARM(), Config{Rule: fusion.Average{}})
	a, _, err := maxF.FuseFrames(vis, ir)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := avgF.FuseFrames(vis, ir)
	if err != nil {
		t.Fatal(err)
	}
	d, _ := frame.MaxAbsDiff(a, b)
	if d < 1 {
		t.Errorf("max and average rules produced near-identical output (maxdiff %g)", d)
	}
}

func TestForwardOnlyAndInverseOnlyRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(75))
	vis := randFrame(rng, 40, 40)
	ir := randFrame(rng, 40, 40)
	fu := New(engine.NewNEON(false), Config{})
	pa, pb, tf, err := fu.ForwardOnly(vis, ir)
	if err != nil {
		t.Fatal(err)
	}
	if tf <= 0 {
		t.Error("forward time not charged")
	}
	fp, err := fusion.Fuse(fusion.MaxMagnitude{}, pa, pb)
	if err != nil {
		t.Fatal(err)
	}
	rec, ti, err := fu.InverseOnly(fp)
	if err != nil {
		t.Fatal(err)
	}
	if ti <= 0 {
		t.Error("inverse time not charged")
	}
	if rec.W != 40 || rec.H != 40 {
		t.Errorf("reconstruction %dx%d", rec.W, rec.H)
	}
}

func TestStageSplitMatchesFig2Profile(t *testing.T) {
	// Fig. 2: the forward and inverse DT-CWT dominate the ARM-only fusion
	// profile, with the forward the single largest stage.
	rng := rand.New(rand.NewSource(76))
	vis := randFrame(rng, 88, 72)
	ir := randFrame(rng, 88, 72)
	fu := New(engine.NewARM(), Config{IncludeIO: true})
	_, st, err := fu.FuseFrames(vis, ir)
	if err != nil {
		t.Fatal(err)
	}
	tot := float64(st.Total)
	fwd := float64(st.Forward) / tot
	inv := float64(st.Inverse) / tot
	if fwd < 0.40 || fwd > 0.60 {
		t.Errorf("forward share %.2f outside the Fig. 2 band [0.40,0.60]", fwd)
	}
	if inv < 0.25 || inv > 0.45 {
		t.Errorf("inverse share %.2f outside the Fig. 2 band [0.25,0.45]", inv)
	}
	if fwd+inv < 0.75 {
		t.Errorf("transforms share %.2f; the DT-CWTs must dominate the profile", fwd+inv)
	}
	if fwd <= inv {
		t.Errorf("forward (%.2f) should exceed inverse (%.2f)", fwd, inv)
	}
}

package kernels

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Task is one tiled parallel-for body. Tile processes the half-open index
// range [lo, hi); worker identifies the executing worker (0 for the
// caller, 1..N-1 for pool goroutines) so tasks can index per-worker
// scratch without sharing. Tiles never overlap, so a Task that writes
// only to ranges derived from [lo, hi) needs no further synchronization.
//
// Implement Task on a pointer to a reusable struct: passing a pointer
// through the interface does not allocate, which keeps parallel dispatch
// at zero allocations per frame.
type Task interface {
	Tile(lo, hi, worker int)
}

// Workers is a bounded pool of goroutines for tiled parallel-for
// dispatch. The zero worker is always the calling goroutine, so a
// 1-worker pool (or a nil *Workers) degenerates to a plain sequential
// loop with no goroutines and no channel traffic.
//
// Helper goroutines are spawned lazily on the first parallel Run and
// parked between runs on a channel receive, so an idle pool costs
// nothing but N-1 parked goroutines. Close parks them permanently; a
// later Run transparently respawns, so owners can Close on teardown
// without making the pool unusable.
//
// A Workers is not safe for concurrent Runs: it belongs to one logical
// execution context (one Fuser). Run must not be called from inside a
// Tile.
type Workers struct {
	n int // configured worker count, >= 1

	mu     sync.Mutex // guards spawn/close state transitions
	live   int        // helper goroutines currently parked or running
	closed bool
	start  chan struct{}
	done   chan struct{}

	// Per-run dispatch state, published to helpers by the start-channel
	// send (happens-before their receive) and quiesced by the done-channel
	// receives before Run returns.
	task  Task
	grain int64
	limit int64
	next  atomic.Int64
}

// NewWorkers returns a pool of n workers. n <= 0 selects GOMAXPROCS;
// any n is capped at GOMAXPROCS, since extra workers beyond the
// schedulable parallelism only add contention on the tile counter.
func NewWorkers(n int) *Workers {
	if max := runtime.GOMAXPROCS(0); n <= 0 || n > max {
		n = max
	}
	w := &Workers{n: n}
	w.start = make(chan struct{}, w.n)
	w.done = make(chan struct{}, w.n)
	return w
}

// N reports the worker count: the size per-worker scratch must be
// dimensioned for. A nil pool runs everything on the caller (N = 1).
func (w *Workers) N() int {
	if w == nil {
		return 1
	}
	return w.n
}

// Run executes t.Tile over [0, n) in tiles of at most grain indices,
// using the caller plus up to N-1 pool goroutines, and returns when
// every tile has completed. Tiles are claimed dynamically (atomic
// counter), so uneven tile costs self-balance. When the pool is nil,
// single-worker, closed-and-empty, or n fits in one tile, the whole
// range runs inline on the caller.
func (w *Workers) Run(n, grain int, t Task) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	if w == nil || w.n <= 1 || n <= grain {
		t.Tile(0, n, 0)
		return
	}
	helpers, start, done := w.ensure()
	if helpers == 0 {
		t.Tile(0, n, 0)
		return
	}
	w.task = t
	w.grain = int64(grain)
	w.limit = int64(n)
	w.next.Store(0)
	for i := 0; i < helpers; i++ {
		start <- struct{}{}
	}
	w.work(0)
	for i := 0; i < helpers; i++ {
		<-done
	}
	w.task = nil
}

// ensure spawns missing helpers (and reopens a closed pool), returning
// the helper count and the channels that address this generation of
// helpers.
func (w *Workers) ensure() (int, chan struct{}, chan struct{}) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		// Reopen: the old generation exits on its closed start channel;
		// fresh channels keep stragglers from stealing new tokens.
		w.closed = false
		w.start = make(chan struct{}, w.n)
		w.done = make(chan struct{}, w.n)
	}
	for w.live < w.n-1 {
		w.live++
		go w.helper(w.live, w.start, w.done)
	}
	return w.n - 1, w.start, w.done
}

func (w *Workers) helper(id int, start <-chan struct{}, done chan<- struct{}) {
	for range start {
		w.work(id)
		done <- struct{}{}
	}
}

// work claims and executes tiles until the range is exhausted.
func (w *Workers) work(id int) {
	g := w.grain
	limit := w.limit
	t := w.task
	for {
		lo := w.next.Add(g) - g
		if lo >= limit {
			return
		}
		hi := lo + g
		if hi > limit {
			hi = limit
		}
		t.Tile(int(lo), int(hi), id)
	}
}

// Close parks and releases the helper goroutines. The pool stays
// usable: a subsequent Run respawns helpers on demand. Close must not
// race a Run on the same pool. Closing a nil or never-parallel pool is
// a no-op.
func (w *Workers) Close() {
	if w == nil {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed || w.live == 0 {
		w.closed = true
		return
	}
	w.closed = true
	close(w.start)
	w.live = 0
}

package kernels

import (
	"math"
	"math/rand"
	"testing"

	"zynqfusion/internal/neon"
	"zynqfusion/internal/signal"
)

// testTaps returns filter pairs exercising asymmetric, shifted and
// reversed coefficient layouts, like the real DT-CWT banks.
func testTaps(rng *rand.Rand) (a, b signal.Taps) {
	for i := range a {
		a[i] = float32(rng.NormFloat64())
		b[i] = float32(rng.NormFloat64())
	}
	// A zero and a negative-zero tap to exercise sign-of-zero edges.
	a[3] = 0
	b[7] = float32(math.Copysign(0, -1))
	return a, b
}

func randSlice(rng *rand.Rand, n int) []float32 {
	s := make([]float32, n)
	for i := range s {
		s[i] = float32(rng.NormFloat64() * 100)
	}
	return s
}

// bitsEqual compares float32 slices bit-for-bit (distinguishes -0 from
// +0 and NaN payloads, which tolerance comparison would hide).
func bitsEqual(t *testing.T, name string, got, want []float32) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d != %d", name, len(got), len(want))
	}
	for i := range got {
		if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
			t.Fatalf("%s: [%d] = %x (%v) want %x (%v)",
				name, i, math.Float32bits(got[i]), got[i],
				math.Float32bits(want[i]), want[i])
		}
	}
}

var kernelSizes = []int{1, 2, 3, 4, 5, 7, 8, 11, 16, 17, 23, 31, 32, 40, 61, 97, 240, 960}

func TestAnalyzeRefMatchesSignal(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, m := range kernelSizes {
		al, ah := testTaps(rng)
		px := randSlice(rng, 2*m+signal.TapCount)
		wantLo, wantHi := make([]float32, m), make([]float32, m)
		signal.AnalyzeRef(&al, &ah, px, wantLo, wantHi)
		gotLo, gotHi := make([]float32, m), make([]float32, m)
		AnalyzeRef(&al, &ah, px, gotLo, gotHi)
		bitsEqual(t, "lo", gotLo, wantLo)
		bitsEqual(t, "hi", gotHi, wantHi)
	}
}

func TestSynthesizeRefMatchesSignal(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, m := range kernelSizes {
		sl, sh := testTaps(rng)
		plo := randSlice(rng, m+signal.SynthesisPad)
		phi := randSlice(rng, m+signal.SynthesisPad)
		want := make([]float32, 2*m)
		signal.SynthesizeRef(&sl, &sh, plo, phi, want)
		got := make([]float32, 2*m)
		SynthesizeRef(&sl, &sh, plo, phi, got)
		bitsEqual(t, "out", got, want)
	}
}

func TestNeonAnalyzeMatchesEmulation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var u neon.Unit
	for _, manual := range []bool{false, true} {
		for _, m := range kernelSizes {
			al, ah := testTaps(rng)
			px := randSlice(rng, 2*m+signal.TapCount)
			wantLo, wantHi := make([]float32, m), make([]float32, m)
			if manual {
				neon.AnalyzeManual(&u, &al, &ah, px, wantLo, wantHi)
			} else {
				neon.AnalyzeAuto(&u, &al, &ah, px, wantLo, wantHi)
			}
			gotLo, gotHi := make([]float32, m), make([]float32, m)
			if manual {
				NeonAnalyzeManual(&al, &ah, px, gotLo, gotHi)
			} else {
				NeonAnalyzeAuto(&al, &ah, px, gotLo, gotHi)
			}
			bitsEqual(t, "lo", gotLo, wantLo)
			bitsEqual(t, "hi", gotHi, wantHi)
		}
	}
}

func TestNeonSynthesizeMatchesEmulation(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var u neon.Unit
	for _, m := range kernelSizes {
		sl, sh := testTaps(rng)
		plo := randSlice(rng, m+signal.SynthesisPad)
		phi := randSlice(rng, m+signal.SynthesisPad)
		want := make([]float32, 2*m)
		neon.SynthesizeAuto(&u, &sl, &sh, plo, phi, want)
		got := make([]float32, 2*m)
		NeonSynthesize(&sl, &sh, plo, phi, got)
		bitsEqual(t, "out", got, want)
	}
}

// FuzzKernelEquivalence drives all fast kernels against their emulated
// and reference originals on fuzz-chosen sizes and data.
func FuzzKernelEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(7))
	f.Add(int64(99), uint8(240))
	f.Fuzz(func(t *testing.T, seed int64, mRaw uint8) {
		m := int(mRaw)%64 + 1
		rng := rand.New(rand.NewSource(seed))
		al, ah := testTaps(rng)
		px := randSlice(rng, 2*m+signal.TapCount)
		wantLo, wantHi := make([]float32, m), make([]float32, m)
		gotLo, gotHi := make([]float32, m), make([]float32, m)

		signal.AnalyzeRef(&al, &ah, px, wantLo, wantHi)
		AnalyzeRef(&al, &ah, px, gotLo, gotHi)
		bitsEqual(t, "ref lo", gotLo, wantLo)
		bitsEqual(t, "ref hi", gotHi, wantHi)

		var u neon.Unit
		neon.AnalyzeAuto(&u, &al, &ah, px, wantLo, wantHi)
		NeonAnalyzeAuto(&al, &ah, px, gotLo, gotHi)
		bitsEqual(t, "auto lo", gotLo, wantLo)
		bitsEqual(t, "auto hi", gotHi, wantHi)

		neon.AnalyzeManual(&u, &al, &ah, px, wantLo, wantHi)
		NeonAnalyzeManual(&al, &ah, px, gotLo, gotHi)
		bitsEqual(t, "manual lo", gotLo, wantLo)
		bitsEqual(t, "manual hi", gotHi, wantHi)

		plo := randSlice(rng, m+signal.SynthesisPad)
		phi := randSlice(rng, m+signal.SynthesisPad)
		want := make([]float32, 2*m)
		got := make([]float32, 2*m)
		signal.SynthesizeRef(&al, &ah, plo, phi, want)
		SynthesizeRef(&al, &ah, plo, phi, got)
		bitsEqual(t, "ref syn", got, want)
		neon.SynthesizeAuto(&u, &al, &ah, plo, phi, want)
		NeonSynthesize(&al, &ah, plo, phi, got)
		bitsEqual(t, "neon syn", got, want)
	})
}

func TestCountsMatchEmulation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, m := range kernelSizes {
		al, ah := testTaps(rng)
		px := randSlice(rng, 2*m+signal.TapCount)
		lo, hi := make([]float32, m), make([]float32, m)

		var u neon.Unit
		neon.AnalyzeAuto(&u, &al, &ah, px, lo, hi)
		if got, want := CountsAnalyze(false, m), u.Reset(); got != want {
			t.Fatalf("CountsAnalyze(auto, %d) = %+v want %+v", m, got, want)
		}
		neon.AnalyzeManual(&u, &al, &ah, px, lo, hi)
		if got, want := CountsAnalyze(true, m), u.Reset(); got != want {
			t.Fatalf("CountsAnalyze(manual, %d) = %+v want %+v", m, got, want)
		}

		plo := randSlice(rng, m+signal.SynthesisPad)
		phi := randSlice(rng, m+signal.SynthesisPad)
		out := make([]float32, 2*m)
		neon.SynthesizeAuto(&u, &al, &ah, plo, phi, out)
		if got, want := CountsSynthesize(m), u.Reset(); got != want {
			t.Fatalf("CountsSynthesize(%d) = %+v want %+v", m, got, want)
		}
		neon.SynthesizeManual(&u, &al, &ah, plo, phi, out)
		if got, want := CountsSynthesize(m), u.Reset(); got != want {
			t.Fatalf("CountsSynthesize(manual, %d) = %+v want %+v", m, got, want)
		}
	}
}

func TestPadPeriodicMatchesSignal(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, n := range []int{2, 4, 6, 8, 10, 12, 16, 34, 96, 240} {
		x := randSlice(rng, n)
		want := signal.PadPeriodic(x, nil)
		got := PadPeriodic(x, nil)
		bitsEqual(t, "pad", got, want)
		// In-place reuse keeps the provided backing array.
		buf := make([]float32, 0, n+signal.TapCount)
		got2 := PadPeriodic(x, buf)
		bitsEqual(t, "pad reuse", got2, want)
		if cap(got2) != cap(buf) {
			t.Fatalf("PadPeriodic reallocated despite sufficient cap")
		}
	}
	for _, m := range []int{1, 2, 3, 4, 5, 6, 9, 17, 120} {
		c := randSlice(rng, m)
		want := signal.PadPeriodicPairs(c, nil)
		got := PadPeriodicPairs(c, nil)
		bitsEqual(t, "pairs", got, want)
	}
}

func TestGrain(t *testing.T) {
	cases := []struct {
		n, itemBytes, workers, want int
	}{
		{0, 100, 4, 1},
		{10, 0, 1, 10},                    // no byte info, sequential: one tile
		{10, 1 << 20, 4, 1},               // huge rows: one per tile
		{1080, 7680, 4, TileBytes / 7680}, // 1080p rows: cache-bound
		{64, 4, 16, 1},                    // load-balance bound: 4*16 tiles
		{100, 4, 2, 13},                   // ceil(100/8)
	}
	for _, c := range cases {
		if got := Grain(c.n, c.itemBytes, c.workers); got != c.want {
			t.Errorf("Grain(%d, %d, %d) = %d want %d", c.n, c.itemBytes, c.workers, got, c.want)
		}
	}
	for n := 1; n < 200; n++ {
		g := Grain(n, 64, 3)
		if g < 1 || g > n {
			t.Fatalf("Grain(%d,...) = %d out of range", n, g)
		}
	}
}

package kernels

import (
	"math/rand"
	"testing"

	"zynqfusion/internal/neon"
	"zynqfusion/internal/signal"
)

// Wall-clock microbenchmarks over one 1080p-width row (m = 960 output
// pairs from 1920 samples). The CI kernel-bench job compares the fast
// kernels against their emulated/reference originals and fails on
// regression; run locally with:
//
//	go test ./internal/kernels -bench . -benchmem

const benchM = 960

type benchRow struct {
	al, ah   signal.Taps
	px       []float32
	lo, hi   []float32
	plo, phi []float32
	out      []float32
}

func newBenchRow() *benchRow {
	rng := rand.New(rand.NewSource(42))
	r := &benchRow{
		px:  randBench(rng, 2*benchM+signal.TapCount),
		lo:  make([]float32, benchM),
		hi:  make([]float32, benchM),
		plo: randBench(rng, benchM+signal.SynthesisPad),
		phi: randBench(rng, benchM+signal.SynthesisPad),
		out: make([]float32, 2*benchM),
	}
	for i := range r.al {
		r.al[i] = float32(rng.NormFloat64())
		r.ah[i] = float32(rng.NormFloat64())
	}
	return r
}

func randBench(rng *rand.Rand, n int) []float32 {
	s := make([]float32, n)
	for i := range s {
		s[i] = float32(rng.NormFloat64())
	}
	return s
}

func BenchmarkAnalyzeRefSignal(b *testing.B) {
	r := newBenchRow()
	b.SetBytes(2 * benchM * 4)
	for i := 0; i < b.N; i++ {
		signal.AnalyzeRef(&r.al, &r.ah, r.px, r.lo, r.hi)
	}
}

func BenchmarkAnalyzeRefFast(b *testing.B) {
	r := newBenchRow()
	b.SetBytes(2 * benchM * 4)
	for i := 0; i < b.N; i++ {
		AnalyzeRef(&r.al, &r.ah, r.px, r.lo, r.hi)
	}
}

func BenchmarkNeonAnalyzeAutoEmulated(b *testing.B) {
	r := newBenchRow()
	var u neon.Unit
	b.SetBytes(2 * benchM * 4)
	for i := 0; i < b.N; i++ {
		neon.AnalyzeAuto(&u, &r.al, &r.ah, r.px, r.lo, r.hi)
	}
}

func BenchmarkNeonAnalyzeAutoFast(b *testing.B) {
	r := newBenchRow()
	b.SetBytes(2 * benchM * 4)
	for i := 0; i < b.N; i++ {
		NeonAnalyzeAuto(&r.al, &r.ah, r.px, r.lo, r.hi)
	}
}

func BenchmarkNeonAnalyzeManualEmulated(b *testing.B) {
	r := newBenchRow()
	var u neon.Unit
	b.SetBytes(2 * benchM * 4)
	for i := 0; i < b.N; i++ {
		neon.AnalyzeManual(&u, &r.al, &r.ah, r.px, r.lo, r.hi)
	}
}

func BenchmarkNeonAnalyzeManualFast(b *testing.B) {
	r := newBenchRow()
	b.SetBytes(2 * benchM * 4)
	for i := 0; i < b.N; i++ {
		NeonAnalyzeManual(&r.al, &r.ah, r.px, r.lo, r.hi)
	}
}

func BenchmarkNeonSynthesizeEmulated(b *testing.B) {
	r := newBenchRow()
	var u neon.Unit
	b.SetBytes(2 * benchM * 4)
	for i := 0; i < b.N; i++ {
		neon.SynthesizeAuto(&u, &r.al, &r.ah, r.plo, r.phi, r.out)
	}
}

func BenchmarkNeonSynthesizeFast(b *testing.B) {
	r := newBenchRow()
	b.SetBytes(2 * benchM * 4)
	for i := 0; i < b.N; i++ {
		NeonSynthesize(&r.al, &r.ah, r.plo, r.phi, r.out)
	}
}

func BenchmarkPadPeriodicSignal(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	x := randBench(rng, 1920)
	px := make([]float32, 1920+signal.TapCount)
	for i := 0; i < b.N; i++ {
		signal.PadPeriodic(x, px)
	}
}

func BenchmarkPadPeriodicFast(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	x := randBench(rng, 1920)
	px := make([]float32, 1920+signal.TapCount)
	for i := 0; i < b.N; i++ {
		PadPeriodic(x, px)
	}
}

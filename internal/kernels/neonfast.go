package kernels

import (
	"zynqfusion/internal/neon"
	"zynqfusion/internal/signal"
)

// This file re-implements the emulated NEON kernels (internal/neon) as
// direct float32 code. The emulation's per-lane arithmetic chains are
// independent per output coefficient, so each output can be computed
// scalar-style as long as every chain performs the same operations in
// the same order and the same expression shapes (mul-first in the
// vectorized body, accumulate-from-zero in the scalar tail; acc + a*b
// for each multiply-accumulate). That makes these functions bit-for-bit
// identical to the emulation on every platform — including arm64, where
// the compiler fuses acc + a*b into an FMA in both versions — while
// skipping the method-call and ledger bookkeeping that made the
// emulation the wall-clock bottleneck. The instruction ledger the cycle
// model needs is reproduced in closed form by CountsAnalyze /
// CountsSynthesize, pinned against the live emulation by tests.
//
// Loops walk shrinking slices with constant-length windows so every
// bounds check is discharged at compile time (see the check_bce lint).

// NeonAnalyzeAuto mirrors neon.AnalyzeAuto: four-wide vectorized body
// (coefficients broadcast, mul-first accumulation through taps 0..11)
// plus the scalar remainder tail (accumulate from zero) for the last
// m%4 outputs.
func NeonAnalyzeAuto(al, ah *signal.Taps, px, lo, hi []float32) {
	if len(hi) != len(lo) || len(px) != 2*len(lo)+signal.TapCount {
		panic("kernels.NeonAnalyzeAuto: inconsistent lengths")
	}
	tail := len(lo) % 4
	// Vectorized body: per-lane chain is al[0]*win[0] then + taps 1..11.
	for len(lo) > tail && len(hi) > 0 && len(px) >= signal.TapCount {
		win := px[:signal.TapCount]
		accL := al[0] * win[0]
		accH := ah[0] * win[0]
		accL = accL + al[1]*win[1]
		accH = accH + ah[1]*win[1]
		accL = accL + al[2]*win[2]
		accH = accH + ah[2]*win[2]
		accL = accL + al[3]*win[3]
		accH = accH + ah[3]*win[3]
		accL = accL + al[4]*win[4]
		accH = accH + ah[4]*win[4]
		accL = accL + al[5]*win[5]
		accH = accH + ah[5]*win[5]
		accL = accL + al[6]*win[6]
		accH = accH + ah[6]*win[6]
		accL = accL + al[7]*win[7]
		accH = accH + ah[7]*win[7]
		accL = accL + al[8]*win[8]
		accH = accH + ah[8]*win[8]
		accL = accL + al[9]*win[9]
		accH = accH + ah[9]*win[9]
		accL = accL + al[10]*win[10]
		accH = accH + ah[10]*win[10]
		accL = accL + al[11]*win[11]
		accH = accH + ah[11]*win[11]
		lo[0] = accL
		hi[0] = accH
		lo = lo[1:]
		hi = hi[1:]
		px = px[2:]
	}
	// Scalar remainder: accumulators start at zero (0 + a*b first step),
	// exactly like the emulated ScalarMAC tail.
	for len(lo) > 0 && len(hi) > 0 && len(px) >= signal.TapCount {
		win := px[:signal.TapCount]
		var accL, accH float32
		accL = accL + al[0]*win[0]
		accH = accH + ah[0]*win[0]
		accL = accL + al[1]*win[1]
		accH = accH + ah[1]*win[1]
		accL = accL + al[2]*win[2]
		accH = accH + ah[2]*win[2]
		accL = accL + al[3]*win[3]
		accH = accH + ah[3]*win[3]
		accL = accL + al[4]*win[4]
		accH = accH + ah[4]*win[4]
		accL = accL + al[5]*win[5]
		accH = accH + ah[5]*win[5]
		accL = accL + al[6]*win[6]
		accH = accH + ah[6]*win[6]
		accL = accL + al[7]*win[7]
		accH = accH + ah[7]*win[7]
		accL = accL + al[8]*win[8]
		accH = accH + ah[8]*win[8]
		accL = accL + al[9]*win[9]
		accH = accH + ah[9]*win[9]
		accL = accL + al[10]*win[10]
		accH = accH + ah[10]*win[10]
		accL = accL + al[11]*win[11]
		accH = accH + ah[11]*win[11]
		lo[0] = accL
		hi[0] = accH
		lo = lo[1:]
		hi = hi[1:]
		px = px[2:]
	}
}

// NeonAnalyzeManual mirrors neon.AnalyzeManual: three quad multiply-
// accumulates per filter (four independent lane chains over taps t,
// t+4, t+8) reduced by the emulated vpadd chain (l0+l2)+(l1+l3).
func NeonAnalyzeManual(al, ah *signal.Taps, px, lo, hi []float32) {
	if len(hi) != len(lo) || len(px) != 2*len(lo)+signal.TapCount {
		panic("kernels.NeonAnalyzeManual: inconsistent lengths")
	}
	for len(lo) > 0 && len(hi) > 0 && len(px) >= signal.TapCount {
		win := px[:signal.TapCount]
		l0 := al[0] * win[0]
		l1 := al[1] * win[1]
		l2 := al[2] * win[2]
		l3 := al[3] * win[3]
		l0 = l0 + al[4]*win[4]
		l1 = l1 + al[5]*win[5]
		l2 = l2 + al[6]*win[6]
		l3 = l3 + al[7]*win[7]
		l0 = l0 + al[8]*win[8]
		l1 = l1 + al[9]*win[9]
		l2 = l2 + al[10]*win[10]
		l3 = l3 + al[11]*win[11]
		h0 := ah[0] * win[0]
		h1 := ah[1] * win[1]
		h2 := ah[2] * win[2]
		h3 := ah[3] * win[3]
		h0 = h0 + ah[4]*win[4]
		h1 = h1 + ah[5]*win[5]
		h2 = h2 + ah[6]*win[6]
		h3 = h3 + ah[7]*win[7]
		h0 = h0 + ah[8]*win[8]
		h1 = h1 + ah[9]*win[9]
		h2 = h2 + ah[10]*win[10]
		h3 = h3 + ah[11]*win[11]
		lo[0] = (l0 + l2) + (l1 + l3)
		hi[0] = (h0 + h2) + (h1 + h3)
		lo = lo[1:]
		hi = hi[1:]
		px = px[2:]
	}
}

// NeonSynthesize mirrors neon.SynthesizeAuto (and SynthesizeManual,
// which is the same function): four-wide body with mul-first chains
// interleaving sl-even, sl-odd, sh-even, sh-odd per step, then the
// scalar tail with chains from zero ordered sl-even, sh-even, sl-odd,
// sh-odd — the interleave differs between body and tail in the
// emulation, and both chains are preserved exactly.
func NeonSynthesize(sl, sh *signal.Taps, plo, phi, out []float32) {
	m := len(out) / 2
	if len(out) != 2*m || len(plo) != m+signal.SynthesisPad || len(phi) != m+signal.SynthesisPad {
		panic("kernels.NeonSynthesize: inconsistent lengths")
	}
	// The tail covers the last m%4 output pairs = len(out)%8 samples.
	tail := len(out) % 8
	for len(out) > tail+1 && len(plo) >= synWindow && len(phi) >= synWindow {
		wl := plo[:synWindow]
		wh := phi[:synWindow]
		// k=0: l = wl[5], h = wh[5]; mul-first like VmulqF32.
		even := sl[0] * wl[5]
		odd := sl[1] * wl[5]
		even = even + sh[0]*wh[5]
		odd = odd + sh[1]*wh[5]
		// k=1..5: VmlaqF32 order se, so, he, ho.
		even = even + sl[2]*wl[4]
		odd = odd + sl[3]*wl[4]
		even = even + sh[2]*wh[4]
		odd = odd + sh[3]*wh[4]
		even = even + sl[4]*wl[3]
		odd = odd + sl[5]*wl[3]
		even = even + sh[4]*wh[3]
		odd = odd + sh[5]*wh[3]
		even = even + sl[6]*wl[2]
		odd = odd + sl[7]*wl[2]
		even = even + sh[6]*wh[2]
		odd = odd + sh[7]*wh[2]
		even = even + sl[8]*wl[1]
		odd = odd + sl[9]*wl[1]
		even = even + sh[8]*wh[1]
		odd = odd + sh[9]*wh[1]
		even = even + sl[10]*wl[0]
		odd = odd + sl[11]*wl[0]
		even = even + sh[10]*wh[0]
		odd = odd + sh[11]*wh[0]
		out[0] = even
		out[1] = odd
		out = out[2:]
		plo = plo[1:]
		phi = phi[1:]
	}
	for len(out) >= 2 && len(plo) >= synWindow && len(phi) >= synWindow {
		wl := plo[:synWindow]
		wh := phi[:synWindow]
		var even, odd float32
		// ScalarMAC order per k: even+=sl, even+=sh, odd+=sl, odd+=sh.
		even = even + sl[0]*wl[5]
		even = even + sh[0]*wh[5]
		odd = odd + sl[1]*wl[5]
		odd = odd + sh[1]*wh[5]
		even = even + sl[2]*wl[4]
		even = even + sh[2]*wh[4]
		odd = odd + sl[3]*wl[4]
		odd = odd + sh[3]*wh[4]
		even = even + sl[4]*wl[3]
		even = even + sh[4]*wh[3]
		odd = odd + sl[5]*wl[3]
		odd = odd + sh[5]*wh[3]
		even = even + sl[6]*wl[2]
		even = even + sh[6]*wh[2]
		odd = odd + sl[7]*wl[2]
		odd = odd + sh[7]*wh[2]
		even = even + sl[8]*wl[1]
		even = even + sh[8]*wh[1]
		odd = odd + sl[9]*wl[1]
		odd = odd + sh[9]*wh[1]
		even = even + sl[10]*wl[0]
		even = even + sh[10]*wh[0]
		odd = odd + sl[11]*wl[0]
		odd = odd + sh[11]*wh[0]
		out[0] = even
		out[1] = odd
		out = out[2:]
		plo = plo[1:]
		phi = phi[1:]
	}
}

// CountsAnalyze returns the neon.Counts delta one emulated analysis row
// of m output pairs records, for the given vectorization style. Pinned
// bit-for-bit against the live emulation by TestCountsMatchEmulation.
func CountsAnalyze(manual bool, m int) neon.Counts {
	if manual {
		return neon.Counts{
			KernelRows: 1,
			Loads:      int64(6 + 3*m),
			Muls:       int64(2 * m),
			Mlas:       int64(4 * m),
			HAdds:      int64(2 * m),
		}
	}
	q, t := m/4, m%4
	return neon.Counts{
		KernelRows: 1,
		Dups:       24,
		Loads2:     int64(6 * q),
		Muls:       int64(2 * q),
		Mlas:       int64(22 * q),
		Stores:     int64(2 * q),
		ScalarOps:  int64(24 * t),
		ScalarMem:  int64(14 * t),
	}
}

// CountsSynthesize returns the neon.Counts delta one emulated synthesis
// row of m coefficient pairs records (both styles share the code path).
func CountsSynthesize(m int) neon.Counts {
	q, t := m/4, m%4
	return neon.Counts{
		KernelRows: 1,
		Dups:       24,
		Loads:      int64(12 * q),
		Muls:       int64(2 * q),
		Mlas:       int64(22 * q),
		Stores2:    int64(q),
		ScalarOps:  int64(24 * t),
		ScalarMem:  int64(14 * t),
	}
}

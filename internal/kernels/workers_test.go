package kernels

import (
	"runtime"
	"sync/atomic"
	"testing"
)

// coverTask marks each index it is given and counts per-worker hits.
type coverTask struct {
	hits    []atomic.Int32
	perWork []atomic.Int64
}

func (c *coverTask) Tile(lo, hi, worker int) {
	for i := lo; i < hi; i++ {
		c.hits[i].Add(1)
	}
	c.perWork[worker].Add(int64(hi - lo))
}

func testPool(t *testing.T, n int) *Workers {
	t.Helper()
	w := NewWorkers(n)
	t.Cleanup(w.Close)
	return w
}

func TestWorkersCoverage(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8} {
		w := testPool(t, workers)
		for _, n := range []int{0, 1, 2, 3, 7, 64, 1000} {
			for _, grain := range []int{1, 3, 16, 4096} {
				task := &coverTask{
					hits:    make([]atomic.Int32, n+1),
					perWork: make([]atomic.Int64, w.N()),
				}
				w.Run(n, grain, task)
				var total int64
				for i := 0; i < n; i++ {
					if got := task.hits[i].Load(); got != 1 {
						t.Fatalf("workers=%d n=%d grain=%d: index %d ran %d times", workers, n, grain, i, got)
					}
				}
				for i := range task.perWork {
					total += task.perWork[i].Load()
				}
				if total != int64(n) {
					t.Fatalf("workers=%d n=%d grain=%d: total work %d", workers, n, grain, total)
				}
			}
		}
	}
}

func TestWorkersCloseReopen(t *testing.T) {
	w := NewWorkers(4)
	defer w.Close()
	task := &coverTask{hits: make([]atomic.Int32, 100), perWork: make([]atomic.Int64, w.N())}
	w.Run(100, 5, task)
	w.Close()
	w.Close() // idempotent
	// Still usable after Close: respawns helpers transparently.
	task2 := &coverTask{hits: make([]atomic.Int32, 100), perWork: make([]atomic.Int64, w.N())}
	w.Run(100, 5, task2)
	for i := range task2.hits {
		if task2.hits[i].Load() != 1 {
			t.Fatalf("index %d not covered after reopen", i)
		}
	}
}

func TestWorkersCloseStopsGoroutines(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 2 {
		t.Skip("needs >1 proc for helper goroutines")
	}
	before := runtime.NumGoroutine()
	w := NewWorkers(0)
	task := &coverTask{hits: make([]atomic.Int32, 1000), perWork: make([]atomic.Int64, w.N())}
	w.Run(1000, 1, task)
	w.Close()
	for i := 0; i < 100; i++ {
		if runtime.NumGoroutine() <= before {
			return
		}
		runtime.Gosched()
	}
	t.Fatalf("goroutines leaked after Close: before=%d now=%d", before, runtime.NumGoroutine())
}

func TestWorkersNilAndSequential(t *testing.T) {
	var nilPool *Workers
	if nilPool.N() != 1 {
		t.Fatalf("nil pool N = %d", nilPool.N())
	}
	task := &coverTask{hits: make([]atomic.Int32, 10), perWork: make([]atomic.Int64, 1)}
	nilPool.Run(10, 4, task)
	nilPool.Close()
	for i := range task.hits {
		if task.hits[i].Load() != 1 {
			t.Fatalf("nil pool missed index %d", i)
		}
	}
	if task.perWork[0].Load() != 10 {
		t.Fatalf("nil pool should run everything on worker 0")
	}
}

func TestWorkersWorkerIDsInRange(t *testing.T) {
	w := testPool(t, 4)
	var bad atomic.Int32
	task := &idCheckTask{n: w.N(), bad: &bad}
	for round := 0; round < 50; round++ {
		w.Run(256, 1, task)
	}
	if bad.Load() != 0 {
		t.Fatalf("worker id out of [0,%d)", w.N())
	}
}

type idCheckTask struct {
	n   int
	bad *atomic.Int32
}

func (c *idCheckTask) Tile(lo, hi, worker int) {
	if worker < 0 || worker >= c.n {
		c.bad.Add(1)
	}
}

func TestWorkersRunZeroAllocs(t *testing.T) {
	w := testPool(t, 0)
	task := &coverTask{hits: make([]atomic.Int32, 4096), perWork: make([]atomic.Int64, w.N())}
	w.Run(4096, 32, task) // warm up: spawn helpers
	allocs := testing.AllocsPerRun(100, func() {
		w.Run(4096, 32, task)
	})
	if allocs != 0 {
		t.Fatalf("Run allocates %.1f per call, want 0", allocs)
	}
}

func BenchmarkWorkersDispatch(b *testing.B) {
	w := NewWorkers(0)
	defer w.Close()
	task := &coverTask{hits: make([]atomic.Int32, 1024), perWork: make([]atomic.Int64, w.N())}
	w.Run(1024, 8, task)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Run(1024, 8, task)
	}
}

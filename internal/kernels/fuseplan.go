package kernels

// Operator-fusion planning. The fused data path — one interleaved tiled
// traversal running both source transforms (dual-stream loop fusion), the
// q2c combine + fusion rule executing per tile straight from the quad
// (tree) coefficient planes, and the fused coefficients written back in
// quad layout without materializing complex band planes — is only legal
// for engines whose kernels offer concurrency-safe tile compute, and only
// profitable above a size floor. The planner folds those decisions into a
// FusionPlan per shape, cached so the per-frame hot path pays one map
// probe (and, on the Fuser, usually not even that).

// FusionPlan records which operator fusions apply to one execution shape,
// plus the memory the plan elides when the rule fusions are active.
type FusionPlan struct {
	// DualStream runs the visible and infrared forward DT-CWTs as one
	// interleaved tiled traversal over shared pad/scratch geometry and
	// bank expansions, sharing the level-1 row passes and column gathers
	// the separate transforms would repeat.
	DualStream bool
	// CombineRule fuses the q2c tree combination and the fusion rule
	// (including window-energy activity) into one per-tile kernel reading
	// the quad planes of both streams, eliding every per-stream complex
	// band plane.
	CombineRule bool
	// RuleDistribute fuses the rule's selected coefficients through the
	// c2q inverse combination, writing directly in quad (tree) layout and
	// eliding the fused pyramid's complex band planes.
	RuleDistribute bool

	// PlanesElided counts the intermediate complex planes the plan never
	// materializes per frame; BytesSaved is their total footprint.
	PlanesElided int
	BytesSaved   int64
}

// Any reports whether the plan enables any fusion at all.
func (p FusionPlan) Any() bool { return p.DualStream || p.CombineRule || p.RuleDistribute }

// FusionShape is the cache key a plan is decided for: frame geometry,
// decomposition depth, worker count, and the engine facts that gate
// legality. Any change — a DVFS retune, a worker-pool resize, an engine
// swap — is a different shape and replans.
type FusionShape struct {
	W, H    int
	Levels  int
	Workers int
	// Engine and PointMHz identify the engine and its PS operating point;
	// fused and unfused execution charge identical modeled cycles, but a
	// retuned engine must not reuse a stale plan's profitability numbers.
	Engine   string
	PointMHz float64
	// Tiled reports whether the engine offers concurrency-safe tile
	// compute (kernels.AsTile succeeded). Engines that veto tiling via
	// TilingEnabled also veto fusion: the fused traversals are built from
	// the same charge-free tile kernels.
	Tiled bool
	// RuleFusable reports whether the fusion rule has a fused quad kernel
	// (the built-in rules do; custom rules run unfused combine/distribute
	// but still benefit from dual-stream loop fusion).
	RuleFusable bool
	// Pipelined marks the inter-frame pipelined executor (depth >= 2),
	// whose per-station stage accounting the cross-stage fusions would
	// break; it runs unfused.
	Pipelined bool
}

// MinFusePixels is the profitability floor: below it the fused traversal's
// extra live planes (the shared level-1 row outputs) outweigh the elided
// traffic, and degenerate geometries stay on the reference path.
const MinFusePixels = 1024

// FusionPlanner decides and caches fusion plans. It is not safe for
// concurrent use; each Fuser owns one.
type FusionPlanner struct {
	plans  map[FusionShape]FusionPlan
	hits   int
	misses int
}

// NewFusionPlanner returns an empty planner.
func NewFusionPlanner() *FusionPlanner {
	return &FusionPlanner{plans: make(map[FusionShape]FusionPlan)}
}

// Plan returns the fusion plan for a shape, computing and caching it on
// first sight. A shape change (operating point, workers, geometry, rule)
// misses the cache and replans; re-presenting a seen shape is a hit.
func (fp *FusionPlanner) Plan(s FusionShape) FusionPlan {
	if p, ok := fp.plans[s]; ok {
		fp.hits++
		return p
	}
	fp.misses++
	p := planFor(s)
	fp.plans[s] = p
	return p
}

// Stats reports the cache hit/miss counts and the number of cached plans.
func (fp *FusionPlanner) Stats() (hits, misses, cached int) {
	return fp.hits, fp.misses, len(fp.plans)
}

// Reset drops every cached plan (the counters persist).
func (fp *FusionPlanner) Reset() {
	clear(fp.plans)
}

// planFor decides a shape's plan. Legality: tile-capable engine, the
// sequential executor, a non-degenerate geometry. The two rule fusions
// share their legality conditions exactly (a fusable rule on a legal
// shape), so they enable together or not at all; a custom rule keeps
// dual-stream loop fusion alone.
func planFor(s FusionShape) FusionPlan {
	if !s.Tiled || s.Pipelined || s.Levels < 1 || s.W*s.H < MinFusePixels {
		return FusionPlan{}
	}
	p := FusionPlan{DualStream: true}
	if !s.RuleFusable {
		return p
	}
	p.CombineRule = true
	p.RuleDistribute = true
	// Three pyramids (two sources and the fused workspace) each elide six
	// complex bands — two planes per band — at every level.
	const planesPerLevel = 3 * 6 * 2
	cw, ch := s.W, s.H
	for lv := 0; lv < s.Levels; lv++ {
		mw, mh := (cw+cw%2)/2, (ch+ch%2)/2
		p.PlanesElided += planesPerLevel
		p.BytesSaved += int64(planesPerLevel) * int64(mw) * int64(mh) * 4
		cw, ch = mw, mh
	}
	return p
}

package kernels

import "zynqfusion/internal/signal"

// Fast periodic-extension builders. signal.PadPeriodic computes a mod
// per element; for the common case (signal at least as long as the
// wrap-around region) the same result is three straight copies. Pure
// data movement, so bit-identity with the signal versions is
// structural; tiny signals where the extension wraps more than once
// fall back to the reference. The fallbacks are called through
// variables so their mod-indexed loops are not inlined into this
// (check_bce-clean) package.

var (
	padPeriodicRef      = signal.PadPeriodic
	padPeriodicPairsRef = signal.PadPeriodicPairs
)

// PadPeriodic is the fast equivalent of signal.PadPeriodic:
// px[i] = x[(i-AnalysisPad) mod n], len(px) = n + TapCount.
func PadPeriodic(x, px []float32) []float32 {
	n := len(x)
	if n == 0 || n%2 != 0 {
		panic("kernels.PadPeriodic: signal length must be even and nonzero")
	}
	need := n + signal.TapCount
	if need < signal.TapCount { // n + TapCount overflowed
		return padPeriodicRef(x, px)
	}
	px = px[:cap(px)]
	if len(px) < need {
		px = make([]float32, need)
	} else {
		px = px[:need]
	}
	if n < signal.AnalysisPad || len(px) != need {
		return padPeriodicRef(x, px)
	}
	copy(px[:signal.AnalysisPad], x[n-signal.AnalysisPad:])
	copy(px[signal.AnalysisPad:], x)
	copy(px[len(px)-(signal.TapCount-signal.AnalysisPad):], x[:signal.TapCount-signal.AnalysisPad])
	return px
}

// PadPeriodicPairs is the fast equivalent of signal.PadPeriodicPairs:
// p[i] = c[(i-SynthesisPad) mod m], len(p) = m + SynthesisPad.
func PadPeriodicPairs(c, p []float32) []float32 {
	m := len(c)
	if m == 0 {
		panic("kernels.PadPeriodicPairs: empty subband")
	}
	need := m + signal.SynthesisPad
	if need < signal.SynthesisPad { // m + SynthesisPad overflowed
		return padPeriodicPairsRef(c, p)
	}
	p = p[:cap(p)]
	if len(p) < need {
		p = make([]float32, need)
	} else {
		p = p[:need]
	}
	if m < signal.SynthesisPad || len(p) != need {
		return padPeriodicPairsRef(c, p)
	}
	copy(p[:signal.SynthesisPad], c[m-signal.SynthesisPad:])
	copy(p[signal.SynthesisPad:], c)
	return p
}

package kernels

import "zynqfusion/internal/signal"

// This file holds the bounds-check-eliminated mirror of the scalar
// reference kernels in internal/signal. Bit-for-bit equivalence is the
// whole point, so the floating-point operations are the same operations
// in the same order and association as the reference loops — the taps
// are only unrolled (constant indices into constant-length windows) and
// the loops restated over shrinking slices, whose constant-bound
// conditions the compiler's prove pass discharges without runtime
// checks. Equivalence is pinned by TestAnalyzeRefMatchesSignal /
// TestSynthesizeRefMatchesSignal; BCE cleanliness by the check_bce CI
// lint.

// AnalyzeRef is the BCE-clean mirror of signal.AnalyzeRef: lo[i] and
// hi[i] are the 12-tap dot products of al/ah with px[2i:2i+12],
// accumulated in tap order from zero, exactly like the reference.
func AnalyzeRef(al, ah *signal.Taps, px, lo, hi []float32) {
	if len(hi) != len(lo) || len(px) != 2*len(lo)+signal.TapCount {
		panic("kernels.AnalyzeRef: inconsistent lengths")
	}
	for len(lo) > 0 && len(hi) > 0 && len(px) >= signal.TapCount {
		win := px[:signal.TapCount]
		var accL, accH float32
		accL += al[0] * win[0]
		accH += ah[0] * win[0]
		accL += al[1] * win[1]
		accH += ah[1] * win[1]
		accL += al[2] * win[2]
		accH += ah[2] * win[2]
		accL += al[3] * win[3]
		accH += ah[3] * win[3]
		accL += al[4] * win[4]
		accH += ah[4] * win[4]
		accL += al[5] * win[5]
		accH += ah[5] * win[5]
		accL += al[6] * win[6]
		accH += ah[6] * win[6]
		accL += al[7] * win[7]
		accH += ah[7] * win[7]
		accL += al[8] * win[8]
		accH += ah[8] * win[8]
		accL += al[9] * win[9]
		accH += ah[9] * win[9]
		accL += al[10] * win[10]
		accH += ah[10] * win[10]
		accL += al[11] * win[11]
		accH += ah[11] * win[11]
		lo[0] = accL
		hi[0] = accH
		lo = lo[1:]
		hi = hi[1:]
		px = px[2:]
	}
}

// synWindow is the synthesis sliding-window length: SynthesisPad + 1
// live coefficients per output pair.
const synWindow = signal.SynthesisPad + 1

// SynthesizeRef is the BCE-clean mirror of signal.SynthesizeRef:
// out[2i]/out[2i+1] are the six-step polyphase sums over the reversed
// windows plo[i:i+6]/phi[i:i+6], with the reference's fused
// sl*l + sh*h addend shape preserved per step.
func SynthesizeRef(sl, sh *signal.Taps, plo, phi, out []float32) {
	m := len(out) / 2
	if len(out) != 2*m || len(plo) != m+signal.SynthesisPad || len(phi) != m+signal.SynthesisPad {
		panic("kernels.SynthesizeRef: inconsistent lengths")
	}
	for len(out) >= 2 && len(plo) >= synWindow && len(phi) >= synWindow {
		wl := plo[:synWindow]
		wh := phi[:synWindow]
		var even, odd float32
		// k walks the taps as in the reference: l = plo[base-k] = wl[5-k].
		even += sl[0]*wl[5] + sh[0]*wh[5]
		odd += sl[1]*wl[5] + sh[1]*wh[5]
		even += sl[2]*wl[4] + sh[2]*wh[4]
		odd += sl[3]*wl[4] + sh[3]*wh[4]
		even += sl[4]*wl[3] + sh[4]*wh[3]
		odd += sl[5]*wl[3] + sh[5]*wh[3]
		even += sl[6]*wl[2] + sh[6]*wh[2]
		odd += sl[7]*wl[2] + sh[7]*wh[2]
		even += sl[8]*wl[1] + sh[8]*wh[1]
		odd += sl[9]*wl[1] + sh[9]*wh[1]
		even += sl[10]*wl[0] + sh[10]*wh[0]
		odd += sl[11]*wl[0] + sh[11]*wh[0]
		out[0] = even
		out[1] = odd
		out = out[2:]
		plo = plo[1:]
		phi = phi[1:]
	}
}

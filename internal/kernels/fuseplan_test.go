package kernels

import "testing"

func fusableShape() FusionShape {
	return FusionShape{
		W: 320, H: 240, Levels: 3, Workers: 2,
		Engine: "neon", PointMHz: 533,
		Tiled: true, RuleFusable: true,
	}
}

func TestFusionPlannerFullPlan(t *testing.T) {
	fp := NewFusionPlanner()
	p := fp.Plan(fusableShape())
	if !p.DualStream || !p.CombineRule || !p.RuleDistribute {
		t.Fatalf("tile-capable shape with fusable rule must fuse fully: %+v", p)
	}
	// 3 pyramids x 6 bands x 2 planes at each of 3 levels.
	if want := 3 * 36; p.PlanesElided != want {
		t.Fatalf("planes elided: got %d want %d", p.PlanesElided, want)
	}
	// Level sizes 160x120, 80x60, 40x30; 36 float32 planes each.
	want := int64(36) * 4 * (160*120 + 80*60 + 40*30)
	if p.BytesSaved != want {
		t.Fatalf("bytes saved: got %d want %d", p.BytesSaved, want)
	}
}

func TestFusionPlannerVetoes(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*FusionShape)
	}{
		{"non-tiling engine", func(s *FusionShape) { s.Tiled = false }},
		{"pipelined executor", func(s *FusionShape) { s.Pipelined = true }},
		{"zero levels", func(s *FusionShape) { s.Levels = 0 }},
		{"degenerate size", func(s *FusionShape) { s.W, s.H = 16, 16 }},
	}
	for _, tc := range cases {
		fp := NewFusionPlanner()
		s := fusableShape()
		tc.mutate(&s)
		if p := fp.Plan(s); p.Any() {
			t.Errorf("%s: expected full veto, got %+v", tc.name, p)
		}
	}
	// A custom rule without a quad kernel keeps dual-stream fusion only.
	s := fusableShape()
	s.RuleFusable = false
	p := NewFusionPlanner().Plan(s)
	if !p.DualStream || p.CombineRule || p.RuleDistribute {
		t.Fatalf("unfusable rule must keep dual-stream only: %+v", p)
	}
	if p.PlanesElided != 0 || p.BytesSaved != 0 {
		t.Fatalf("dual-stream alone elides no planes: %+v", p)
	}
}

func TestFusionPlannerSizeFloor(t *testing.T) {
	s := fusableShape()
	s.W, s.H = 32, 32 // exactly MinFusePixels
	if p := NewFusionPlanner().Plan(s); !p.Any() {
		t.Fatalf("%d pixels is at the floor and must fuse", s.W*s.H)
	}
	s.W, s.H = 32, 31
	if p := NewFusionPlanner().Plan(s); p.Any() {
		t.Fatalf("%d pixels is under the floor and must not fuse", s.W*s.H)
	}
}

// TestFusionPlannerCache: re-presenting a shape hits the cache;
// operating-point and worker changes are new shapes that replan.
func TestFusionPlannerCache(t *testing.T) {
	fp := NewFusionPlanner()
	s := fusableShape()
	first := fp.Plan(s)
	for i := 0; i < 5; i++ {
		if got := fp.Plan(s); got != first {
			t.Fatalf("cached plan changed: %+v vs %+v", got, first)
		}
	}
	hits, misses, cached := fp.Stats()
	if hits != 5 || misses != 1 || cached != 1 {
		t.Fatalf("stable shape: hits=%d misses=%d cached=%d", hits, misses, cached)
	}

	retuned := s
	retuned.PointMHz = 250 // DVFS retune
	fp.Plan(retuned)
	resized := s
	resized.Workers = 8 // worker-pool resize
	fp.Plan(resized)
	hits, misses, cached = fp.Stats()
	if hits != 5 || misses != 3 || cached != 3 {
		t.Fatalf("retune+resize must replan: hits=%d misses=%d cached=%d", hits, misses, cached)
	}

	// Both new shapes now hit.
	fp.Plan(retuned)
	fp.Plan(resized)
	if hits, _, _ := fp.Stats(); hits != 7 {
		t.Fatalf("replanned shapes must cache: hits=%d", hits)
	}

	fp.Reset()
	if _, _, cached := fp.Stats(); cached != 0 {
		t.Fatalf("Reset must drop plans, %d remain", cached)
	}
	fp.Plan(s)
	if _, misses, _ := fp.Stats(); misses != 4 {
		t.Fatalf("post-Reset probe must replan: misses=%d", misses)
	}
}

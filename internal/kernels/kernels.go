// Package kernels is the tiled multi-core kernel execution engine beneath
// the wavelet and fusion hot loops.
//
// The paper's speedups come from restructuring exactly these loops for the
// hardware (NEON vectorization, FPGA streaming); the reproduction *models*
// those cycles, but the Go code that actually computes the coefficients
// used to walk every row scalar-style on one goroutine through the
// emulated NEON unit — wall-clock, not the modeled Zynq, had become the
// binding constraint on fleet-scale benches. This package removes that
// constraint twice over:
//
//   - Fast kernels: bit-identical re-implementations of the scalar
//     reference and emulated-NEON filter kernels with bounds-check-
//     eliminated inner loops (verified with -gcflags=-d=ssa/check_bce).
//     Every floating-point operation is performed in the same order and
//     association as the emulated original, so outputs match bit for bit;
//     the per-instruction NEON ledger the cycle model reads is applied in
//     closed form (CountsAnalyze/CountsSynthesize), pinned against the
//     emulation by tests.
//
//   - Tile dispatch: a bounded, restartable worker pool (Workers) that
//     splits independent row/column/pixel ranges into cache-sized tiles
//     and fans them out across goroutines with zero steady-state
//     allocations. Tiles write disjoint output ranges, so pixel results
//     are deterministic regardless of scheduling.
//
// Determinism contract: compute is separated from accounting. Engines
// that support tiling implement TileKernel — concurrency-safe compute
// methods plus per-row charge methods the caller replays sequentially in
// canonical row order after the parallel region. Because the modeled
// cycle accumulators are float64 (addition order matters), the replay
// performs the same additions in the same order as the scalar path, so
// chargeCPU totals, StageTimes and every golden output stay byte-
// identical at any worker count.
package kernels

import "zynqfusion/internal/signal"

// TileKernel is the compute/accounting split an engine offers when its
// kernel rows may execute concurrently. AnalyzeTile and SynthesizeTile
// are pure compute — bit-identical to the engine's Analyze/Synthesize,
// safe to call from many goroutines at once — while ChargeAnalyzeRow and
// ChargeSynthesizeRow apply the modeled cost of one row and must be
// called sequentially, once per row in canonical row order, after the
// parallel region. The sum of (compute, charge) over any schedule equals
// the engine's sequential Analyze/Synthesize byte for byte: pixels,
// cycles and instruction ledger alike.
type TileKernel interface {
	// AnalyzeTile computes one analysis row (lo/hi each m outputs from a
	// padded input of 2m+signal.TapCount samples) without accounting.
	AnalyzeTile(al, ah *signal.Taps, px, lo, hi []float32)
	// SynthesizeTile computes one synthesis row (2m interleaved outputs
	// from padded subbands of m+signal.SynthesisPad coefficients) without
	// accounting.
	SynthesizeTile(sl, sh *signal.Taps, plo, phi, out []float32)
	// ChargeAnalyzeRow applies the modeled cost of one analysis row of m
	// output pairs — exactly what Analyze would have charged.
	ChargeAnalyzeRow(m int)
	// ChargeSynthesizeRow applies the modeled cost of one synthesis row
	// of m coefficient pairs — exactly what Synthesize would have charged.
	ChargeSynthesizeRow(m int)
}

// AsTile returns the TileKernel view of k when k supports concurrent
// tile compute. A kernel that additionally implements
// interface{ TilingEnabled() bool } can veto at runtime — e.g. a NEON
// engine pinned to its emulated unit as the wall-clock benchmark
// baseline, whose per-op ledger is stateful and must run sequentially.
func AsTile(k any) (TileKernel, bool) {
	t, ok := k.(TileKernel)
	if !ok {
		return nil, false
	}
	if v, ok := k.(interface{ TilingEnabled() bool }); ok && !v.TilingEnabled() {
		return nil, false
	}
	return t, true
}

// TileBytes is the approximate per-tile working set the tilers target: a
// comfortable fit in a per-core L1 data cache with room for the output,
// so a tile's samples stay resident across the filter taps that re-read
// them. Tiles also shrink to keep every worker busy (at least four tasks
// per worker), whichever bound is tighter.
const TileBytes = 32 << 10

// Grain returns the tile length (rows, columns or samples per task) for
// fanning n items of itemBytes each across the given worker count: the
// cache bound TileBytes/itemBytes, tightened so the pool sees at least
// four tiles per worker for load balance, and clamped to [1, n].
func Grain(n, itemBytes, workers int) int {
	if n < 1 {
		return 1
	}
	g := n
	if itemBytes > 0 {
		if byCache := TileBytes / itemBytes; byCache < g {
			g = byCache
		}
	}
	if workers > 1 {
		if byLoad := (n + 4*workers - 1) / (4 * workers); byLoad < g {
			g = byLoad
		}
	}
	if g < 1 {
		g = 1
	}
	return g
}

package bufpool

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestGetHitMissAndStats(t *testing.T) {
	p := New(Options{})
	f, err := p.Get(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if f.W != 8 || f.H != 4 || len(f.Pix) != 32 {
		t.Fatalf("bad lease geometry %dx%d len %d", f.W, f.H, len(f.Pix))
	}
	if !f.Leased() || f.Refs() != 1 {
		t.Fatalf("lease not armed: leased=%v refs=%d", f.Leased(), f.Refs())
	}
	if got := p.Stats(); got.Gets != 1 || got.Misses != 1 || got.Hits != 0 || got.Outstanding != 1 {
		t.Fatalf("after miss: %+v", got)
	}
	f.Pix[0] = 42
	f.Release()
	if got := p.Stats(); got.Outstanding != 0 || got.Releases != 1 || got.PooledBytes != 128 {
		t.Fatalf("after release: %+v", got)
	}

	g, err := p.Get(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if g != f {
		t.Fatal("same-shape Get did not reuse the released plane")
	}
	if g.Pix[0] != 42 {
		t.Fatal("lease contract: pixels are not cleared on reuse")
	}
	if got := p.Stats(); got.Hits != 1 || got.HighWaterBytes != 128 {
		t.Fatalf("after hit: %+v", got)
	}
	// A different shape with the same pixel count reuses the storage too.
	g.Release()
	h, err := p.Get(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if h != g || h.W != 4 || h.H != 8 {
		t.Fatalf("shape class reuse failed: %p vs %p, %dx%d", h, g, h.W, h.H)
	}
	h.Release()
}

func TestCapBytesFailingAcquire(t *testing.T) {
	// Cap fits exactly one 8x8 plane (256 bytes).
	p := New(Options{CapBytes: 256})
	a, err := p.Get(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Get(8, 8); !errors.Is(err, ErrOverCap) {
		t.Fatalf("want ErrOverCap, got %v", err)
	}
	a.Release()
	// Released bytes stay in the arena; a same-shape Get reuses them.
	b, err := p.Get(8, 8)
	if err != nil {
		t.Fatalf("post-release acquire: %v", err)
	}
	// A differently-shaped Get at the cap sheds the pooled plane first.
	b.Release()
	c, err := p.Get(4, 4)
	if err != nil {
		t.Fatalf("shed-then-allocate: %v", err)
	}
	c.Release()
	if err := p.CheckLeaks(); err != nil {
		t.Fatal(err)
	}
}

func TestCapBytesBlockingAcquire(t *testing.T) {
	p := New(Options{CapBytes: 256, Block: true})
	a, err := p.Get(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() {
		b, err := p.Get(8, 8)
		if err == nil {
			b.Release()
		}
		got <- err
	}()
	select {
	case err := <-got:
		t.Fatalf("blocking Get returned before release: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	a.Release()
	select {
	case err := <-got:
		if err != nil {
			t.Fatalf("blocked Get failed after release: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("blocked Get never woke after release")
	}
	if st := p.Stats(); st.BlockedGets == 0 {
		t.Fatalf("blocked acquire not counted: %+v", st)
	}
}

func TestSubPoolBudgetsAndParentCharge(t *testing.T) {
	root := New(Options{CapBytes: 1024})
	sub := root.Sub(256)
	a, err := sub.Get(8, 8) // 256 bytes: fills the sub budget
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sub.Get(2, 2); !errors.Is(err, ErrOverCap) {
		t.Fatalf("sub-pool over budget: want ErrOverCap, got %v", err)
	}
	// The sub-pool's bytes charge the root arena too.
	if st := root.Stats(); st.OutstandingBytes != 256 || st.Outstanding != 1 {
		t.Fatalf("root not charged for sub lease: %+v", st)
	}
	// A second sub-pool is bounded by the remaining root budget.
	other := root.Sub(0)
	b, err := other.Get(16, 12) // 768 bytes: exactly the remainder
	if err != nil {
		t.Fatal(err)
	}
	if _, err := other.Get(1, 1); !errors.Is(err, ErrOverCap) {
		t.Fatalf("root cap must bound sub-pools: got %v", err)
	}
	if st := root.Stats(); st.HighWaterBytes != 1024 {
		t.Fatalf("root high water: %+v", st)
	}
	a.Release()
	b.Release()
	if root.Outstanding() != 0 {
		t.Fatalf("outstanding after releases: %d", root.Outstanding())
	}
}

// TestSubPoolDrainReleasesParentCap pins the stream-churn fix: retiring
// sub-pools (farm streams stopping and restarting) must hand their arena
// slice back, so an endless churn of one-plane sub-pools fits a parent
// cap sized for a single plane's working set.
func TestSubPoolDrainReleasesParentCap(t *testing.T) {
	root := New(Options{CapBytes: 4096})
	for i := 0; i < 5; i++ {
		sub := root.Sub(0)
		f, err := sub.Get(16, 16) // 1024 bytes
		if err != nil {
			t.Fatalf("churn iteration %d: %v", i, err)
		}
		f.Release()
		sub.Drain()
	}
	if st := root.Stats(); st.Outstanding != 0 || st.OutstandingBytes != 0 {
		t.Fatalf("after churn: %+v", st)
	}
	// A pool's own parked planes must not starve its own fresh shapes at
	// an ancestor cap either: shed-and-retry frees them.
	sub := root.Sub(0)
	big, err := sub.Get(32, 32) // 4096 bytes: the whole parent cap
	if err != nil {
		t.Fatal(err)
	}
	big.Release() // parked in sub's free list, parent still fully charged
	if _, err := sub.Get(16, 16); err != nil {
		t.Fatalf("shed-and-retry at parent cap: %v", err)
	}
}

func TestDoubleReleasePanics(t *testing.T) {
	p := New(Options{})
	f, err := p.Get(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	f.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("double release did not panic")
		}
	}()
	f.Release()
}

func TestRetainDefersRecycle(t *testing.T) {
	p := New(Options{})
	f, err := p.Get(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	f.Retain()
	f.Release()
	if p.Stats().Outstanding != 1 {
		t.Fatal("retained frame recycled early")
	}
	f.Release()
	if p.Stats().Outstanding != 0 {
		t.Fatal("final release did not recycle")
	}
}

func TestPassthroughNeverReuses(t *testing.T) {
	p := Passthrough()
	f, err := p.Get(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if f.Leased() {
		t.Fatal("passthrough lease should be a plain frame")
	}
	f.Release() // must be a safe no-op
	g, _ := p.Get(4, 4)
	if g == f {
		t.Fatal("passthrough reused a plane")
	}
	if st := p.Stats(); st.Hits != 0 || st.Misses != 2 {
		t.Fatalf("passthrough stats: %+v", st)
	}
	if sub := p.Sub(128); !sub.opts.Passthrough {
		t.Fatal("sub-pool of a passthrough pool must stay passthrough")
	}
}

func TestConcurrentGetRelease(t *testing.T) {
	p := New(Options{CapBytes: 1 << 20, Block: true})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				f, err := p.Get(32, 24+seed%3)
				if err != nil {
					t.Error(err)
					return
				}
				f.Pix[0] = float32(i)
				f.Release()
			}
		}(g)
	}
	wg.Wait()
	if err := p.CheckLeaks(); err != nil {
		t.Fatal(err)
	}
}

func TestBadShapeAndMustGet(t *testing.T) {
	p := New(Options{})
	if _, err := p.Get(-1, 4); err == nil {
		t.Fatal("negative shape accepted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustGet over cap did not panic")
		}
	}()
	tiny := New(Options{CapBytes: 4})
	tiny.MustGet(100, 100)
}

// TestHitRateBeforeFirstAcquire: a pool that has never served an acquire
// reports a hit rate of exactly 1.0 — vacuously perfect — never a
// misleading 0% that would trip "cache ineffective" dashboards at boot.
func TestHitRateBeforeFirstAcquire(t *testing.T) {
	p := New(Options{})
	if got := p.Stats().HitRate(); got != 1.0 {
		t.Fatalf("zero-acquire HitRate = %v, want 1.0", got)
	}
	// The first acquire is necessarily a miss; the rate must drop to 0.
	f, err := p.Get(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Stats().HitRate(); got != 0 {
		t.Fatalf("after one miss HitRate = %v, want 0", got)
	}
	f.Release()
	// A recycled lease is a hit; the rate recovers to 1/2.
	g, err := p.Get(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Release()
	if got := p.Stats().HitRate(); got != 0.5 {
		t.Fatalf("after miss+hit HitRate = %v, want 0.5", got)
	}
}

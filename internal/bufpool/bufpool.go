// Package bufpool provides the frame-store arena of the reproduction: a
// sized, reference-counted pool of pixel planes modeled on the board's
// fixed set of VDMA frame stores in DDR.
//
// The paper's Zynq system never allocates per frame — capture, transform
// and display all read and write a small, fixed set of double-buffered
// frame stores, and memory traffic (not compute) bounds both speed and
// energy. The Go data path mirrors that: a Pool hands out leased
// frame.Frame planes from per-shape free lists, every stage passes the
// lease along instead of copying, and the final holder's Release returns
// the plane for the next frame. In steady state the fusion hot path
// performs no heap allocation at all.
//
// CapBytes bounds the arena the way the board's DDR budget does: once the
// pool's total footprint (leased + pooled bytes) reaches the cap, Get
// either fails (ErrOverCap, the default) or blocks until another holder
// releases, selectable per pool. Sub-pools carve a budgeted slice out of a
// parent arena, giving each farm stream a deterministic memory ceiling.
//
// A leased plane's pixels are NOT cleared on reuse; the lease contract is
// that every sample is written before it is read, which the golden tests
// pin bit-for-bit against the allocating path.
package bufpool

import (
	"errors"
	"fmt"
	"sync"

	"zynqfusion/internal/frame"
)

// ErrOverCap reports a failed acquire on a pool at its byte cap.
var ErrOverCap = errors.New("bufpool: arena cap exceeded")

// Budget is the public sizing knob for a fuser's or farm's frame-store
// arena (zynqfusion.Options.BufferPool / farm.Config.BufferPool).
type Budget struct {
	// CapBytes bounds the whole arena's pixel-plane footprint in bytes
	// (0 = unbounded).
	CapBytes int64 `json:"cap_bytes"`
	// PerStream bounds each farm stream's budgeted sub-pool in bytes
	// (0 = bounded only by CapBytes). Ignored outside a farm.
	PerStream int64 `json:"per_stream_bytes"`
}

// bytesPerPixel is the footprint of one float32 sample.
const bytesPerPixel = 4

// Options configures a Pool.
type Options struct {
	// CapBytes bounds the arena footprint (leased plus pooled bytes).
	// Zero disables the bound.
	CapBytes int64
	// Block makes an at-cap Get wait for a Release instead of failing
	// with ErrOverCap. Blocking acquires come from other goroutines'
	// releases, so a single-goroutine pipeline must size its cap for its
	// whole working set or use the failing mode. A blocked waiter is only
	// woken by planes coming back to the pool it waits on — bytes parked
	// on a sibling sub-pool's free list do not count until that sub-pool
	// sheds or drains — so sub-pool arrangements should prefer the
	// failing mode (the farm's choice).
	Block bool
	// Passthrough disables pooling entirely: Get allocates a fresh plain
	// frame and Release recycles nothing. It is the allocating baseline
	// the golden tests and benchmarks compare the pooled path against.
	Passthrough bool
}

// Stats is a pool's telemetry snapshot.
type Stats struct {
	// Gets counts acquires; Hits of them were served from a free list,
	// Misses allocated fresh storage. Releases counts planes returned.
	Gets     int64 `json:"gets"`
	Hits     int64 `json:"hits"`
	Misses   int64 `json:"misses"`
	Releases int64 `json:"releases"`
	// Outstanding is the number of currently leased planes and
	// OutstandingBytes their footprint; PooledBytes is the free-list
	// footprint. Outstanding and OutstandingBytes include sub-pools.
	Outstanding      int64 `json:"outstanding"`
	OutstandingBytes int64 `json:"outstanding_bytes"`
	PooledBytes      int64 `json:"pooled_bytes"`
	// HighWaterBytes is the largest arena footprint (leased + pooled,
	// sub-pools included) ever reached — the working-set bound a fixed
	// frame-store budget would need.
	HighWaterBytes int64 `json:"high_water_bytes"`
	// CapBytes echoes the configured bound (0 = unbounded).
	CapBytes int64 `json:"cap_bytes"`
	// BlockedGets counts acquires that had to wait at the cap.
	BlockedGets int64 `json:"blocked_gets"`
}

// HitRate returns the fraction of acquires served without allocating.
// Before any acquire the rate is vacuously perfect, reported as an
// explicit 1.0 so dashboards do not render a cold pool as a 0% hit rate.
func (s Stats) HitRate() float64 {
	if s.Gets == 0 {
		return 1
	}
	return float64(s.Hits) / float64(s.Gets)
}

// Pool is a reference-counted frame-store arena. All methods are safe for
// concurrent use. The zero value is not usable; call New.
type Pool struct {
	opts   Options
	parent *Pool // non-nil for sub-pools; storage bytes charge upward

	mu       sync.Mutex
	cond     *sync.Cond             // lazily created for blocking acquires
	free     map[int][]*frame.Frame // per-shape free lists, keyed by pixel count
	children []*Pool

	gets, hits, misses, releases int64
	outstanding                  int64 // leased planes (this pool only)
	outstandingBytes             int64
	pooledBytes                  int64
	childBytes                   int64 // sub-pool arena bytes charged here
	highWater                    int64
	blockedGets                  int64

	// onShed, when set, observes every plane dropped at the cap (argument
	// is the plane's bytes). It runs with p.mu held, so it must only touch
	// leaf-locked state — an event ring, a counter — and never call back
	// into the pool.
	onShed func(planeBytes int64)
}

// New builds a pool.
func New(opts Options) *Pool {
	if opts.CapBytes < 0 {
		opts.CapBytes = 0
	}
	return &Pool{opts: opts, free: make(map[int][]*frame.Frame)}
}

// Passthrough returns the allocating baseline: a pool that never reuses.
func Passthrough() *Pool {
	return New(Options{Passthrough: true})
}

// Sub carves a budgeted sub-pool out of p: the child keeps its own free
// lists, caps and telemetry, while every byte it allocates also charges
// p's cap and high-water ledger. capBytes <= 0 leaves the child bounded
// only by the parent. Sub-pools of a passthrough pool are passthrough.
func (p *Pool) Sub(capBytes int64) *Pool {
	c := New(Options{CapBytes: capBytes, Block: p.opts.Block, Passthrough: p.opts.Passthrough})
	c.parent = p
	p.mu.Lock()
	p.children = append(p.children, c)
	p.mu.Unlock()
	return c
}

// Cap reports the configured byte bound (0 = unbounded).
func (p *Pool) Cap() int64 { return p.opts.CapBytes }

// SetShedHook installs a callback observing every pooled plane this pool
// drops at the cap. The hook runs with the pool lock held (see onShed);
// install it before the pool sees traffic.
func (p *Pool) SetShedHook(fn func(planeBytes int64)) {
	p.mu.Lock()
	p.onShed = fn
	p.mu.Unlock()
}

// footprint is the arena total this pool answers for. Callers hold p.mu.
func (p *Pool) footprintLocked() int64 {
	return p.outstandingBytes + p.pooledBytes + p.childBytes
}

// Get leases a w x h plane with one reference: a per-shape free-list hit
// reuses a plane (pixels NOT cleared), a miss allocates within CapBytes.
// At the cap, Get trims the free lists first, then fails with ErrOverCap
// (or blocks for a Release when the pool was built with Block).
func (p *Pool) Get(w, h int) (*frame.Frame, error) {
	if w < 0 || h < 0 {
		return nil, fmt.Errorf("bufpool: bad shape %dx%d", w, h)
	}
	if p.opts.Passthrough {
		p.mu.Lock()
		p.gets++
		p.misses++
		p.mu.Unlock()
		return frame.New(w, h), nil
	}
	n := w * h
	bytes := int64(n) * bytesPerPixel

	p.mu.Lock()
	p.gets++
	if list := p.free[n]; len(list) > 0 {
		f := list[len(list)-1]
		p.free[n] = list[:len(list)-1]
		p.hits++
		p.pooledBytes -= bytes
		p.outstanding++
		p.outstandingBytes += bytes
		p.mu.Unlock()
		if !f.Rearm(w, h) {
			panic("bufpool: free-list plane lost its storage")
		}
		return f, nil
	}
	// Miss: admit fresh bytes under the cap, shedding pooled planes of
	// other shapes first — the arena is shared, not partitioned.
	for p.opts.CapBytes > 0 && p.footprintLocked()+bytes > p.opts.CapBytes {
		if p.shedLocked() {
			continue
		}
		if !p.opts.Block {
			p.mu.Unlock()
			return nil, fmt.Errorf("%w: need %d bytes for %dx%d, cap %d, leased %d",
				ErrOverCap, bytes, w, h, p.opts.CapBytes, p.outstandingBytes+p.childBytes)
		}
		p.blockedGets++
		if p.cond == nil {
			p.cond = sync.NewCond(&p.mu)
		}
		p.cond.Wait()
		// A release may have parked a matching plane; retry the hit path.
		if list := p.free[n]; len(list) > 0 {
			f := list[len(list)-1]
			p.free[n] = list[:len(list)-1]
			p.hits++
			p.pooledBytes -= bytes
			p.outstanding++
			p.outstandingBytes += bytes
			p.mu.Unlock()
			if !f.Rearm(w, h) {
				panic("bufpool: free-list plane lost its storage")
			}
			return f, nil
		}
	}
	p.misses++
	p.outstanding++
	p.outstandingBytes += bytes
	p.mu.Unlock()

	// Fresh bytes must also fit the ancestors' arenas. When an ancestor
	// refuses, shed this pool's own parked planes (uncharging the chain)
	// and retry, so bytes idling on our free lists never starve our own
	// acquires; the peak ledger is only stamped once admission succeeds.
	for p.parent != nil {
		err := p.parent.admitChild(bytes)
		if err == nil {
			break
		}
		p.mu.Lock()
		shed := p.shedLocked()
		p.mu.Unlock()
		if !shed {
			p.mu.Lock()
			p.misses--
			p.outstanding--
			p.outstandingBytes -= bytes
			p.mu.Unlock()
			return nil, err
		}
	}
	p.mu.Lock()
	p.noteHighWaterLocked()
	p.mu.Unlock()
	return frame.NewLeased(w, h, p.recycle), nil
}

// shedLocked drops one pooled plane to make room, preferring the largest.
// It reports whether anything was freed. Callers hold p.mu.
func (p *Pool) shedLocked() bool {
	best := -1
	for n, list := range p.free {
		if len(list) > 0 && n > best {
			best = n
		}
	}
	if best < 0 {
		return false
	}
	list := p.free[best]
	f := list[len(list)-1]
	p.free[best] = list[:len(list)-1]
	bytes := int64(cap(f.Pix)) * bytesPerPixel
	p.pooledBytes -= bytes
	if p.onShed != nil {
		p.onShed(bytes)
	}
	if p.parent != nil {
		p.parent.releaseChild(bytes)
	}
	return true
}

// admitChild charges a sub-pool's fresh allocation against this pool's cap
// (and, recursively, its ancestors'). The bytes stay charged for as long
// as they live in the child's arena — leased or parked on its free lists —
// and are uncharged only when the child sheds the plane for good.
func (p *Pool) admitChild(bytes int64) error {
	p.mu.Lock()
	for p.opts.CapBytes > 0 && p.footprintLocked()+bytes > p.opts.CapBytes {
		if p.shedLocked() {
			continue
		}
		if !p.opts.Block {
			p.mu.Unlock()
			return fmt.Errorf("%w: sub-pool needs %d bytes, parent cap %d, leased %d",
				ErrOverCap, bytes, p.opts.CapBytes, p.outstandingBytes+p.childBytes)
		}
		p.blockedGets++
		if p.cond == nil {
			p.cond = sync.NewCond(&p.mu)
		}
		p.cond.Wait()
	}
	p.childBytes += bytes
	p.mu.Unlock()
	if p.parent != nil {
		if err := p.parent.admitChild(bytes); err != nil {
			p.mu.Lock()
			p.childBytes -= bytes
			p.mu.Unlock()
			return err
		}
	}
	p.mu.Lock()
	p.noteHighWaterLocked()
	p.mu.Unlock()
	return nil
}

// releaseChild uncharges sub-pool bytes freed for good (a shed plane).
func (p *Pool) releaseChild(bytes int64) {
	p.mu.Lock()
	p.childBytes -= bytes
	if p.cond != nil {
		p.cond.Broadcast()
	}
	p.mu.Unlock()
	if p.parent != nil {
		p.parent.releaseChild(bytes)
	}
}

// noteHighWaterLocked records the footprint peak. Callers hold p.mu.
func (p *Pool) noteHighWaterLocked() {
	if fp := p.footprintLocked(); fp > p.highWater {
		p.highWater = fp
	}
}

// recycle parks a fully released plane on its shape's free list; it is the
// frame lease's recycler, invoked by the final frame.Release. Pool-owned
// planes always have len(Pix) == cap(Pix) (leases are cut exactly to
// shape), so the free lists key by capacity and every same-shape Get is a
// hit.
func (p *Pool) recycle(f *frame.Frame) {
	n := cap(f.Pix)
	bytes := int64(n) * bytesPerPixel
	p.mu.Lock()
	p.releases++
	p.outstanding--
	p.outstandingBytes -= bytes
	p.pooledBytes += bytes
	p.free[n] = append(p.free[n], f)
	if p.cond != nil {
		p.cond.Broadcast()
	}
	p.mu.Unlock()
}

// Drain empties the pool's free lists, uncharging the freed bytes from
// every ancestor's arena, and — once no leases are outstanding — detaches
// the pool from its parent so a retired sub-pool stops occupying the
// shared cap and the parent's child ledger. A farm stream drains its
// sub-pool when it finishes; without this, stream churn under a capped
// arena would permanently strand each dead stream's parked planes. The
// drained pool remains usable for telemetry (and even new acquires, which
// simply re-admit against its own cap alone once detached).
func (p *Pool) Drain() {
	p.mu.Lock()
	var freed int64
	for n, list := range p.free {
		for _, f := range list {
			freed += int64(cap(f.Pix)) * bytesPerPixel
		}
		delete(p.free, n)
	}
	p.pooledBytes = 0
	outstanding := p.outstanding
	kids := append([]*Pool(nil), p.children...)
	if p.cond != nil {
		p.cond.Broadcast()
	}
	p.mu.Unlock()
	for _, c := range kids {
		outstanding += c.Outstanding()
	}
	parent := p.parent
	if parent == nil {
		return
	}
	if freed > 0 {
		parent.releaseChild(freed)
	}
	if outstanding == 0 {
		parent.detach(p)
		p.parent = nil
	}
}

// detach removes a drained sub-pool from the child list.
func (p *Pool) detach(c *Pool) {
	p.mu.Lock()
	for i, k := range p.children {
		if k == c {
			last := len(p.children) - 1
			p.children[i] = p.children[last]
			p.children[last] = nil
			p.children = p.children[:last]
			break
		}
	}
	p.mu.Unlock()
}

// Outstanding reports the number of live leases, sub-pools included — the
// leak detector's probe: after every pipeline and stream has closed it
// must be zero.
func (p *Pool) Outstanding() int64 {
	p.mu.Lock()
	out := p.outstanding
	kids := p.children
	p.mu.Unlock()
	for _, c := range kids {
		out += c.Outstanding()
	}
	return out
}

// CheckLeaks returns an error describing any lease still out.
func (p *Pool) CheckLeaks() error {
	st := p.Stats()
	if st.Outstanding != 0 {
		return fmt.Errorf("bufpool: %d leases unreturned (%d bytes)",
			st.Outstanding, st.OutstandingBytes)
	}
	return nil
}

// Stats snapshots the pool's telemetry. Every counter except CapBytes and
// HighWaterBytes rolls up the sub-pools, so a farm's root pool reports the
// whole arena's traffic; HighWaterBytes is already arena-wide (sub-pool
// bytes charge their ancestors as they are admitted), and each sub-pool's
// own Stats gives the per-stream view.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	st := Stats{
		Gets:             p.gets,
		Hits:             p.hits,
		Misses:           p.misses,
		Releases:         p.releases,
		Outstanding:      p.outstanding,
		OutstandingBytes: p.outstandingBytes,
		PooledBytes:      p.pooledBytes,
		HighWaterBytes:   p.highWater,
		CapBytes:         p.opts.CapBytes,
		BlockedGets:      p.blockedGets,
	}
	kids := p.children
	p.mu.Unlock()
	for _, c := range kids {
		cs := c.Stats()
		st.Gets += cs.Gets
		st.Hits += cs.Hits
		st.Misses += cs.Misses
		st.Releases += cs.Releases
		st.Outstanding += cs.Outstanding
		st.OutstandingBytes += cs.OutstandingBytes
		st.PooledBytes += cs.PooledBytes
		st.BlockedGets += cs.BlockedGets
	}
	return st
}

// MustGet is Get for in-pipeline scratch where a failed acquire has no
// recovery path (the caller sized the pool, or it is unbounded).
func (p *Pool) MustGet(w, h int) *frame.Frame {
	f, err := p.Get(w, h)
	if err != nil {
		panic("bufpool: " + err.Error())
	}
	return f
}

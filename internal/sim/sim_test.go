package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTimeConversions(t *testing.T) {
	if Second != 1e12*Picosecond {
		t.Fatal("unit ladder broken")
	}
	tm := 1500 * Millisecond
	if tm.Seconds() != 1.5 {
		t.Errorf("Seconds %g", tm.Seconds())
	}
	if tm.Milliseconds() != 1500 {
		t.Errorf("Milliseconds %g", tm.Milliseconds())
	}
	if got := (2500 * Nanosecond).Microseconds(); got != 2.5 {
		t.Errorf("Microseconds %g", got)
	}
	if (3 * Millisecond).Duration().Milliseconds() != 3 {
		t.Error("Duration conversion")
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{2 * Second, "2.0000s"},
		{5 * Millisecond, "5.000ms"},
		{7 * Microsecond, "7.000us"},
		{42 * Picosecond, "42ps"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("%d: %q want %q", int64(c.t), got, c.want)
		}
	}
}

func TestClockCycles(t *testing.T) {
	pl := NewClock("pl", 100e6) // 10 ns period
	if pl.Period() != 10*Nanosecond {
		t.Errorf("period %v", pl.Period())
	}
	if pl.Cycles(100) != Microsecond {
		t.Errorf("100 cycles = %v", pl.Cycles(100))
	}
	if got := pl.ToCycles(Microsecond); math.Abs(got-100) > 1e-9 {
		t.Errorf("ToCycles %g", got)
	}
	ps := NewClock("ps", 533e6)
	if got := ps.Cycles(533e6); math.Abs(got.Seconds()-1) > 1e-6 {
		t.Errorf("one second of cycles = %v", got)
	}
}

func TestClockCyclesFractional(t *testing.T) {
	c := NewClock("c", 1e9)
	if got := c.CyclesF(2.5); got != 2500*Picosecond {
		t.Errorf("2.5 cycles = %v", got)
	}
}

func TestEnergyOver(t *testing.T) {
	e := EnergyOver(Watts(0.5), 2*Second)
	if math.Abs(float64(e)-1.0) > 1e-12 {
		t.Errorf("0.5W x 2s = %v J", float64(e))
	}
	if e.Millijoules() != 1000 {
		t.Errorf("mJ %g", e.Millijoules())
	}
	if Watts(0.5333).Milliwatts() != 533.3 {
		t.Errorf("mW %g", Watts(0.5333).Milliwatts())
	}
}

func TestLedger(t *testing.T) {
	l := NewLedger("cpu")
	if l.Name() != "cpu" {
		t.Errorf("name %q", l.Name())
	}
	l.Add(5 * Microsecond)
	l.Add(5 * Microsecond)
	if l.Total() != 10*Microsecond {
		t.Errorf("total %v", l.Total())
	}
	if got := l.Reset(); got != 10*Microsecond {
		t.Errorf("reset returned %v", got)
	}
	if l.Total() != 0 {
		t.Error("ledger not cleared")
	}
}

func TestCyclesRoundTripQuick(t *testing.T) {
	c := NewClock("q", 533e6)
	fn := func(nRaw uint16) bool {
		n := int64(nRaw)
		tm := c.Cycles(n)
		back := c.ToCycles(tm)
		return math.Abs(back-float64(n)) < 0.01
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Error(err)
	}
}

// Package sim provides the simulated-time and reporting primitives shared by
// every modeled component (CPU, NEON, FPGA, buses, driver).
//
// All timing produced by this repository is *modeled* time on the paper's
// ZYNQ ZC702 platform, carried as an integer picosecond ledger so that
// cycle counts at 533 MHz (1876 ps) and 100 MHz (10000 ps) combine without
// rounding drift. Wall-clock time of the Go process is never mixed into a
// sim.Time.
package sim

import (
	"fmt"
	"time"
)

// Time is a span of simulated time in picoseconds.
type Time int64

// Common spans.
const (
	Picosecond  Time = 1
	Nanosecond       = 1000 * Picosecond
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// Seconds returns t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Milliseconds returns t as floating-point milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// Microseconds returns t as floating-point microseconds.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// Duration converts t to a time.Duration (nanosecond resolution, for
// display only; sub-nanosecond information is truncated).
func (t Time) Duration() time.Duration { return time.Duration(t / Nanosecond) }

// String formats t with an auto-selected unit.
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.4fs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", t.Milliseconds())
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", t.Microseconds())
	default:
		return fmt.Sprintf("%dps", int64(t))
	}
}

// Clock describes one synchronous clock domain.
type Clock struct {
	Name   string
	HertzV float64 // frequency in Hz
}

// NewClock returns a clock domain running at hz Hertz.
func NewClock(name string, hz float64) Clock { return Clock{Name: name, HertzV: hz} }

// Hertz reports the clock frequency.
func (c Clock) Hertz() float64 { return c.HertzV }

// Period returns the duration of one cycle.
func (c Clock) Period() Time { return Time(float64(Second) / c.HertzV) }

// Cycles converts a cycle count in this domain to simulated time.
func (c Clock) Cycles(n int64) Time {
	return Time(float64(n) * float64(Second) / c.HertzV)
}

// CyclesF converts a fractional cycle count to simulated time.
func (c Clock) CyclesF(n float64) Time {
	return Time(n * float64(Second) / c.HertzV)
}

// ToCycles converts a time span to (fractional) cycles of this domain.
func (c Clock) ToCycles(t Time) float64 {
	return t.Seconds() * c.HertzV
}

// Joules is an energy amount.
type Joules float64

// Millijoules returns e in mJ.
func (e Joules) Millijoules() float64 { return float64(e) * 1e3 }

func (e Joules) String() string { return fmt.Sprintf("%.3fmJ", e.Millijoules()) }

// Watts is a power level.
type Watts float64

// Milliwatts returns p in mW.
func (p Watts) Milliwatts() float64 { return float64(p) * 1e3 }

func (p Watts) String() string { return fmt.Sprintf("%.1fmW", p.Milliwatts()) }

// EnergyOver integrates a constant power level over a span.
func EnergyOver(p Watts, t Time) Joules { return Joules(float64(p) * t.Seconds()) }

// Ledger accumulates simulated busy time for one resource. The zero value
// is an empty ledger ready for use.
type Ledger struct {
	name  string
	total Time
}

// NewLedger returns a named ledger.
func NewLedger(name string) *Ledger { return &Ledger{name: name} }

// Name reports the resource name ("" for anonymous ledgers).
func (l *Ledger) Name() string { return l.name }

// Add charges t of busy time.
func (l *Ledger) Add(t Time) { l.total += t }

// Total reports the accumulated busy time.
func (l *Ledger) Total() Time { return l.total }

// Reset clears the ledger and returns the value it held.
func (l *Ledger) Reset() Time {
	t := l.total
	l.total = 0
	return t
}

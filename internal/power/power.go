// Package power models the ZC702 board power rails and provides the
// sampling recorder the paper's "power-recording software" corresponds to.
//
// Calibration (paper, section VII): fusing on the ARM consumes
// approximately the same board power as ARM+NEON; ARM+FPGA adds a net
// 19.2 mW (+3.6%), the wave-engine PL power minus the PS reduction from
// the lowered processor load. +19.2 mW being +3.6% pins the ARM-mode board
// power at 533 mW.
package power

import (
	"fmt"
	"sort"
	"strings"

	"zynqfusion/internal/sim"
)

// Board power by active compute mode.
const (
	// ARMActive is the board power while the Cortex-A9 alone computes.
	ARMActive sim.Watts = 0.5333
	// NEONActive is the board power while the NEON engine computes; the
	// paper measures it indistinguishable from ARM-only.
	NEONActive sim.Watts = 0.5333
	// FPGADelta is the net extra board power while the wave engine is
	// active (PL dynamic power minus the PS savings from offloading).
	FPGADelta sim.Watts = 0.0192
	// FPGAActive is the board power in ARM+FPGA mode.
	FPGAActive = ARMActive + FPGADelta
	// Idle is the quiescent board power between frames. The paper's
	// measurements run back-to-back fusions, so Idle contributes only when
	// a pipeline stalls waiting for capture.
	Idle sim.Watts = 0.4100
)

// ModePower returns the board power for a named engine mode ("arm",
// "neon", "fpga", in any letter case); unknown names get the idle power.
func ModePower(mode string) sim.Watts {
	switch strings.ToLower(mode) {
	case "arm":
		return ARMActive
	case "neon":
		return NEONActive
	case "fpga":
		return FPGAActive
	default:
		return Idle
	}
}

// Phase is one interval of constant board power in a recording.
type Phase struct {
	Label string
	P     sim.Watts
	Dur   sim.Time
}

// Recorder integrates board power over labeled phases of simulated time,
// standing in for the power-recording software run alongside the fusion
// process in the paper. The zero value is ready to use.
type Recorder struct {
	phases []Phase
}

// Record appends a phase.
func (r *Recorder) Record(label string, p sim.Watts, dur sim.Time) {
	if dur < 0 {
		panic("power.Recorder: negative duration")
	}
	r.phases = append(r.phases, Phase{Label: label, P: p, Dur: dur})
}

// Total returns the recording length.
func (r *Recorder) Total() sim.Time {
	var t sim.Time
	for _, ph := range r.phases {
		t += ph.Dur
	}
	return t
}

// Energy integrates power over the whole recording.
func (r *Recorder) Energy() sim.Joules {
	var e sim.Joules
	for _, ph := range r.phases {
		e += sim.EnergyOver(ph.P, ph.Dur)
	}
	return e
}

// MeanPower returns energy divided by time (0 for an empty recording).
func (r *Recorder) MeanPower() sim.Watts {
	t := r.Total()
	if t == 0 {
		return 0
	}
	return sim.Watts(float64(r.Energy()) / t.Seconds())
}

// EnergyByLabel returns per-label energy totals in deterministic order.
func (r *Recorder) EnergyByLabel() []LabeledEnergy {
	acc := map[string]sim.Joules{}
	for _, ph := range r.phases {
		acc[ph.Label] += sim.EnergyOver(ph.P, ph.Dur)
	}
	keys := make([]string, 0, len(acc))
	for k := range acc {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]LabeledEnergy, len(keys))
	for i, k := range keys {
		out[i] = LabeledEnergy{Label: k, E: acc[k]}
	}
	return out
}

// LabeledEnergy pairs a phase label with its integrated energy.
type LabeledEnergy struct {
	Label string
	E     sim.Joules
}

func (l LabeledEnergy) String() string {
	return fmt.Sprintf("%s=%s", l.Label, l.E)
}

// Reset clears the recording.
func (r *Recorder) Reset() { r.phases = r.phases[:0] }

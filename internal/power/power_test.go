package power

import (
	"math"
	"testing"

	"zynqfusion/internal/sim"
)

func TestCalibratedPowerDeltas(t *testing.T) {
	// Section VII anchors: +19.2 mW is +3.6% over the ARM board power.
	delta := (FPGAActive - ARMActive).Milliwatts()
	if math.Abs(delta-19.2) > 1e-9 {
		t.Errorf("delta %g mW", delta)
	}
	rel := float64(FPGADelta) / float64(ARMActive) * 100
	if math.Abs(rel-3.6) > 0.01 {
		t.Errorf("delta %.3f%%, want 3.6%%", rel)
	}
	if ARMActive != NEONActive {
		t.Error("ARM and NEON board power should match (paper measurement)")
	}
}

func TestModePower(t *testing.T) {
	if ModePower("arm") != ARMActive || ModePower("ARM") != ARMActive {
		t.Error("arm lookup")
	}
	if ModePower("neon") != NEONActive {
		t.Error("neon lookup")
	}
	if ModePower("fpga") != FPGAActive {
		t.Error("fpga lookup")
	}
}

func TestModePowerCaseInsensitive(t *testing.T) {
	// The documented modes resolve in any letter case.
	cases := map[string]sim.Watts{
		"Arm": ARMActive, "aRm": ARMActive,
		"Neon": NEONActive, "NEON": NEONActive, "nEoN": NEONActive,
		"Fpga": FPGAActive, "FPGA": FPGAActive, "fPgA": FPGAActive,
	}
	for name, want := range cases {
		if got := ModePower(name); got != want {
			t.Errorf("ModePower(%q) = %v, want %v", name, got, want)
		}
	}
}

func TestModePowerUnknownFallsBackToIdle(t *testing.T) {
	// Unknown names — including near-misses and empty — report the
	// quiescent board power rather than failing.
	for _, name := range []string{"mystery", "", "arm64", "fpga2", "adaptive(threshold-f15-i16)"} {
		if got := ModePower(name); got != Idle {
			t.Errorf("ModePower(%q) = %v, want Idle %v", name, got, Idle)
		}
	}
}

func TestRecorderIntegration(t *testing.T) {
	var r Recorder
	r.Record("compute", ARMActive, 2*sim.Second)
	r.Record("wave", FPGAActive, sim.Second)
	if r.Total() != 3*sim.Second {
		t.Errorf("total %v", r.Total())
	}
	wantE := sim.EnergyOver(ARMActive, 2*sim.Second) + sim.EnergyOver(FPGAActive, sim.Second)
	if math.Abs(float64(r.Energy()-wantE)) > 1e-12 {
		t.Errorf("energy %v want %v", r.Energy(), wantE)
	}
	mean := r.MeanPower()
	if mean <= ARMActive || mean >= FPGAActive {
		t.Errorf("mean power %v outside bounds", mean)
	}
}

func TestRecorderByLabel(t *testing.T) {
	var r Recorder
	r.Record("b", ARMActive, sim.Second)
	r.Record("a", ARMActive, sim.Second)
	r.Record("b", ARMActive, sim.Second)
	byLabel := r.EnergyByLabel()
	if len(byLabel) != 2 || byLabel[0].Label != "a" || byLabel[1].Label != "b" {
		t.Fatalf("labels %v", byLabel)
	}
	if float64(byLabel[1].E) <= float64(byLabel[0].E) {
		t.Error("label b should carry twice the energy")
	}
	if byLabel[0].String() == "" {
		t.Error("empty label string")
	}
}

func TestRecorderReset(t *testing.T) {
	var r Recorder
	r.Record("x", ARMActive, sim.Second)
	r.Reset()
	if r.Total() != 0 || r.Energy() != 0 || r.MeanPower() != 0 {
		t.Error("reset did not clear")
	}
}

func TestRecorderRejectsNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	var r Recorder
	r.Record("x", ARMActive, -sim.Second)
}

package sched

import (
	"testing"

	"zynqfusion/internal/dvfs"
	"zynqfusion/internal/zynq"
)

func TestThresholdForClockNominalMatchesDefaults(t *testing.T) {
	th := ThresholdForClock(zynq.PS())
	if th.FwdPairs != DefaultFwdThreshold || th.InvPairs != DefaultInvThreshold {
		t.Fatalf("ThresholdForClock(nominal) = %+v, want defaults f%d/i%d",
			th, DefaultFwdThreshold, DefaultInvThreshold)
	}
	// The nominal policy must route identically to the fixed defaults.
	def := Threshold{}
	for _, pairs := range []int{1, 8, 14, 15, 16, 17, 44} {
		for _, inverse := range []bool{false, true} {
			if th.Pick(pairs, inverse) != def.Pick(pairs, inverse) {
				t.Errorf("routing diverges at pairs=%d inverse=%v", pairs, inverse)
			}
		}
	}
}

func TestThresholdForClockMovesWithFrequency(t *testing.T) {
	// The wave engine's PL time is fixed, so slowing the PS makes the
	// FPGA relatively cheaper (crossover no higher) and overclocking
	// makes it relatively dearer (crossover no lower) — and across the
	// full ladder the crossover must actually move.
	nominal := ThresholdForClock(dvfs.Nominal().Clock())
	slow := ThresholdForClock(dvfs.Min().Clock())
	fast := ThresholdForClock(dvfs.Max().Clock())
	if slow.FwdPairs > nominal.FwdPairs || slow.InvPairs > nominal.InvPairs {
		t.Errorf("slow-PS crossover above nominal: %+v vs %+v", slow, nominal)
	}
	if fast.FwdPairs < nominal.FwdPairs || fast.InvPairs < nominal.InvPairs {
		t.Errorf("fast-PS crossover below nominal: %+v vs %+v", fast, nominal)
	}
	if slow == fast {
		t.Errorf("crossover does not move across the DVFS ladder: %+v", slow)
	}
}

package sched

import (
	"zynqfusion/internal/sim"
	"zynqfusion/internal/split"
)

// Gate arbitrates access to the single shared FPGA wave engine. The farm
// governor implements it: a stream holds the FPGA lease for the duration
// of one fused frame, and every other stream's gate reports denied.
type Gate interface {
	// FPGAGranted reports whether the caller currently holds the wave
	// engine. Implementations must be safe for concurrent use.
	FPGAGranted() bool
}

// Governed wraps an inner policy with a Gate: whenever the inner policy
// picks the FPGA but the gate denies it, the row is downgraded to the
// fallback engine instead. This is how contending farm streams share the
// one modeled wave engine — the loser of the frame-level arbitration
// keeps fusing on NEON at full functional fidelity, only the cost model
// routing changes.
type Governed struct {
	// Inner is the wrapped policy (required).
	Inner Policy
	// Gate grants or denies the FPGA (required).
	Gate Gate
	// Fallback is the engine substituted for denied FPGA picks
	// (default "neon").
	Fallback string
}

// Name implements Policy.
func (g Governed) Name() string { return "governed(" + g.Inner.Name() + ")" }

// Pick implements Policy, downgrading denied FPGA picks.
func (g Governed) Pick(pairs int, inverse bool) string {
	e := g.Inner.Pick(pairs, inverse)
	if e == "fpga" && !g.Gate.FPGAGranted() {
		if g.Fallback != "" {
			return g.Fallback
		}
		return "neon"
	}
	return e
}

// Partition implements Partitioner: when the inner policy is
// partition-aware and the gate denies the FPGA, any cooperative split
// collapses to the all-CPU partition — the losing stream of the
// frame-level arbitration keeps fusing on NEON with zero wave-engine
// share, so the farm governor's fractional busy-time metering only ever
// sees lease holders. Classic inner policies report no partition and keep
// the Pick-based downgrade path.
func (g Governed) Partition(pairs int, inverse bool) (split.Partition, bool) {
	pp, ok := g.Inner.(Partitioner)
	if !ok {
		return split.Partition{}, false
	}
	p, use := pp.Partition(pairs, inverse)
	if !use {
		return split.Partition{}, false
	}
	if p.FPGA > 0 && !g.Gate.FPGAGranted() {
		return split.Partition{}, true
	}
	return p, true
}

// ObservePass implements split.Feedback by forwarding pass measurements
// to a partition-aware inner policy. Gated (all-CPU) passes are degenerate
// and carry no lane balance, so learners ignore them by construction.
func (g Governed) ObservePass(pairs int, inverse bool, obs split.PassObservation) {
	if fb, ok := g.Inner.(split.Feedback); ok {
		fb.ObservePass(pairs, inverse, obs)
	}
}

// Observe implements Feedback by forwarding to the inner policy when it
// learns. Downgraded rows report the engine that actually ran them, so an
// online learner keeps accumulating valid measurements either way.
func (g Governed) Observe(pairs int, inverse bool, engine string, cost sim.Time) {
	if fb, ok := g.Inner.(Feedback); ok {
		fb.Observe(pairs, inverse, engine, cost)
	}
}

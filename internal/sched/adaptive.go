package sched

import (
	"fmt"

	"zynqfusion/internal/dvfs"
	"zynqfusion/internal/engine"
	"zynqfusion/internal/power"
	"zynqfusion/internal/signal"
	"zynqfusion/internal/sim"
	"zynqfusion/internal/split"
)

// Adaptive is an engine.Engine that routes every kernel row to the ARM,
// NEON or FPGA engine according to a Policy, implementing the adaptive
// system of the paper's conclusion. Structure work (padding, gathers, the
// fusion rule) always runs on the CPU.
//
// When the policy is partition-aware (Partitioner), a row class may be
// split across the NEON and FPGA lanes instead of routed exclusively: the
// partition's share of rows interleaves onto the wave engine while the
// remainder runs on NEON, and the two lanes are charged as running
// concurrently — one A9 core drives the accelerator while the other runs
// SIMD rows. A pass (a run of same-class rows) then costs
// max(cpuTime, fpgaTime) plus the calibrated merge/sync overhead
// (engine.SplitSyncCycles), and the overlapped span is rebated at the
// quiescent board power, since it no longer passes on the wall clock.
// Degenerate (0%/100%) partitions take the classic exclusive path and
// reproduce it bit-for-bit: no merge charge, no overlap.
//
// Energy accounting differs from the fixed ARM+FPGA mode: the adaptive
// system clock-gates the wave engine while rows run on NEON, so only the
// spans actually spent in the FPGA draw the +19.2 mW.
type Adaptive struct {
	policy  Policy
	fb      Feedback    // policy's feedback hook, if any
	parts   Partitioner // policy's partition surface, if any
	splitFB split.Feedback

	ps        sim.Clock
	op        dvfs.OperatingPoint
	cpuPower  sim.Watts // board power while CPU-side engines compute
	fpgaPower sim.Watts // board power while the wave engine is held
	arm       *engine.ARM
	neon      *engine.NEON
	fpga      *engine.FPGA

	cpuCycles float64 // structure work

	// Cooperative-split pass state: a pass is a maximal run of same-class
	// rows; its two lanes overlap when both ran.
	passOpen bool
	passKey  rowClass
	pass     laneStat
	carry    map[rowClass]float64 // error-diffusion accumulators
	overlap  sim.Time             // closed-pass overlap since the last Reset

	// Drained accumulators (filled on Reset, emptied on DrainEnergy /
	// DrainLanes).
	accTime     sim.Time
	accEnergy   sim.Joules
	laneCPU     sim.Time
	laneFPGA    sim.Time
	laneOverlap sim.Time

	// Per-engine routed statistics since construction.
	RoutedTime map[string]sim.Time
	RoutedRows map[string]int64
	// SplitPasses counts passes that actually used both lanes.
	SplitPasses int64
}

// rowClass identifies one row workload shape.
type rowClass struct {
	pairs   int
	inverse bool
}

// laneStat accumulates one pass's per-lane rows and times.
type laneStat struct {
	neonRows, fpgaRows int
	neonT, fpgaT       sim.Time
}

// NewAdaptive builds the adaptive engine over fresh ARM/NEON/FPGA engines
// at the nominal (533 MHz) operating point.
func NewAdaptive(p Policy) *Adaptive {
	return NewAdaptiveAt(p, dvfs.Nominal())
}

// NewAdaptiveAt builds the adaptive engine with its CPU-side engines and
// the FPGA host path running at the given PS operating point. Energy
// accounting uses the point's scaled board powers.
func NewAdaptiveAt(p Policy, op dvfs.OperatingPoint) *Adaptive {
	a := &Adaptive{
		policy:     p,
		ps:         op.Clock(),
		op:         op,
		cpuPower:   dvfs.ModePower("arm", op),
		fpgaPower:  dvfs.ModePower("fpga", op),
		arm:        engine.NewARMAt(op),
		neon:       engine.NewNEONAt(false, op),
		fpga:       engine.NewFPGAAt(op),
		carry:      make(map[rowClass]float64),
		RoutedTime: make(map[string]sim.Time),
		RoutedRows: make(map[string]int64),
	}
	a.fb, _ = p.(Feedback)
	a.parts, _ = p.(Partitioner)
	a.splitFB, _ = p.(split.Feedback)
	return a
}

// Name implements engine.Engine.
func (a *Adaptive) Name() string { return "adaptive(" + a.policy.Name() + ")" }

// Policy returns the routing policy.
func (a *Adaptive) Policy() Policy { return a.policy }

// route resolves one row's engine: a partition-aware policy may split the
// class across the NEON and FPGA lanes; otherwise the classic exclusive
// Pick applies.
func (a *Adaptive) route(pairs int, inverse bool) engine.Engine {
	if a.parts != nil {
		if p, use := a.parts.Partition(pairs, inverse); use {
			return a.splitRoute(rowClass{pairs: pairs, inverse: inverse}, p.Clamp())
		}
	}
	a.closePass() // leaving partitioned territory ends any open pass
	switch a.policy.Pick(pairs, inverse) {
	case "arm":
		return a.arm
	case "fpga":
		return a.fpga
	case "neon":
		return a.neon
	default:
		panic(fmt.Sprintf("sched: policy %q picked unknown engine", a.policy.Name()))
	}
}

// splitRoute interleaves a partitioned class's rows across the two lanes
// with an error-diffusion accumulator, so any fraction lands exactly over
// a pass and the row order is deterministic. A class change closes the
// running pass (the lanes must sync before the next level/direction
// starts).
func (a *Adaptive) splitRoute(k rowClass, p split.Partition) engine.Engine {
	if a.passOpen && a.passKey != k {
		a.closePass()
	}
	if !a.passOpen {
		a.passOpen = true
		a.passKey = k
		a.pass = laneStat{}
	}
	c := a.carry[k] + p.FPGA
	// 1e-9 absorbs float accumulation error so FPGA=1.0 routes every row.
	if c >= 1-1e-9 {
		a.carry[k] = c - 1
		return a.fpga
	}
	a.carry[k] = c
	return a.neon
}

// closePass ends the running pass: the lanes sync, the overlapped span
// (both lanes busy, charged once on the wall clock) is recorded, the
// merge/stitch overhead is charged to the CPU, and the pass is reported
// to a learning split policy. Single-lane passes close for free — the
// degenerate path stays bit-for-bit the exclusive one.
func (a *Adaptive) closePass() {
	if !a.passOpen {
		return
	}
	ps := a.pass
	k := a.passKey
	a.passOpen = false
	a.pass = laneStat{}
	if ps.neonRows > 0 && ps.fpgaRows > 0 {
		ov := ps.neonT
		if ps.fpgaT < ov {
			ov = ps.fpgaT
		}
		a.overlap += ov
		a.cpuCycles += engine.SplitSyncCycles
		a.SplitPasses++
	}
	if a.splitFB != nil {
		a.splitFB.ObservePass(k.pairs, k.inverse, split.PassObservation{
			NEONRows: ps.neonRows,
			FPGARows: ps.fpgaRows,
			NEONTime: ps.neonT,
			FPGATime: ps.fpgaT,
		})
	}
}

// peeker is implemented by engines whose Elapsed would disturb internal
// pipelining (the FPGA drains its double buffer); Peek prices work without
// side effects.
type peeker interface {
	Peek() sim.Time
}

// probe reads an engine's running cost without draining it.
func probe(e engine.Engine) sim.Time {
	if p, ok := e.(peeker); ok {
		return p.Peek()
	}
	return e.Elapsed()
}

// Analyze implements signal.Kernel, routing by row width.
func (a *Adaptive) Analyze(al, ah *signal.Taps, px []float32, lo, hi []float32) {
	e := a.route(len(lo), false)
	before := probe(e)
	e.Analyze(al, ah, px, lo, hi)
	a.observe(len(lo), false, e, probe(e)-before)
}

// Synthesize implements signal.Kernel, routing by row width.
func (a *Adaptive) Synthesize(sl, sh *signal.Taps, plo, phi []float32, out []float32) {
	pairs := len(out) / 2
	e := a.route(pairs, true)
	before := probe(e)
	e.Synthesize(sl, sh, plo, phi, out)
	a.observe(pairs, true, e, probe(e)-before)
}

func (a *Adaptive) observe(pairs int, inverse bool, e engine.Engine, cost sim.Time) {
	a.RoutedTime[e.Name()] += cost
	a.RoutedRows[e.Name()]++
	if a.passOpen {
		switch e.Name() {
		case "neon":
			a.pass.neonRows++
			a.pass.neonT += cost
		case "fpga":
			a.pass.fpgaRows++
			a.pass.fpgaT += cost
		}
	}
	if a.fb != nil {
		a.fb.Observe(pairs, inverse, e.Name(), cost)
	}
}

// ChargeCPU implements engine.Engine (structure work on the ARM core).
func (a *Adaptive) ChargeCPU(samples int) {
	a.cpuCycles += engine.StructureCyclesPerSample * float64(samples)
}

// ChargeCPUCycles implements engine.Engine.
func (a *Adaptive) ChargeCPUCycles(cycles float64) { a.cpuCycles += cycles }

// Elapsed implements engine.Engine: the CPU-side spans add serially, and
// closed cooperative passes rebate the overlapped span their two lanes
// shared. An open pass's overlap is only known once it closes (Reset
// closes it).
func (a *Adaptive) Elapsed() sim.Time {
	return a.ps.CyclesF(a.cpuCycles) + a.arm.Elapsed() + a.neon.Elapsed() + a.fpga.Elapsed() - a.overlap
}

// Reset implements engine.Engine. The drained span's energy (CPU and NEON
// spans at base power, FPGA spans at the wave-engine power, the
// cooperative overlap rebated at the quiescent power) accumulates for
// DrainEnergy, and the per-lane concurrent accounting for DrainLanes.
func (a *Adaptive) Reset() sim.Time {
	a.closePass()
	cpu := a.ps.CyclesF(a.cpuCycles)
	a.cpuCycles = 0
	armT := a.arm.Reset()
	neonT := a.neon.Reset()
	fpgaT := a.fpga.Reset()
	overlap := a.overlap
	a.overlap = 0
	// The lanes' pass deltas telescope to at most their drained totals;
	// clamp anyway so the rebate can never exceed either lane.
	if overlap > neonT {
		overlap = neonT
	}
	if overlap > fpgaT {
		overlap = fpgaT
	}
	total := cpu + armT + neonT + fpgaT - overlap
	a.accTime += total
	a.accEnergy += sim.EnergyOver(a.cpuPower, cpu+armT+neonT)
	a.accEnergy += sim.EnergyOver(a.fpgaPower, fpgaT)
	// Both lanes' dynamic power is genuinely spent; only the quiescent
	// board draw over the overlapped span is saved, because that span now
	// passes once on the wall clock instead of twice.
	a.accEnergy -= sim.EnergyOver(power.Idle, overlap)
	a.laneCPU += cpu + armT + neonT
	a.laneFPGA += fpgaT
	a.laneOverlap += overlap
	return total
}

// DrainEnergy returns and clears the accumulated span and energy. It
// drains any un-Reset work first.
func (a *Adaptive) DrainEnergy() (sim.Time, sim.Joules) {
	a.Reset()
	t, e := a.accTime, a.accEnergy
	a.accTime, a.accEnergy = 0, 0
	return t, e
}

// DrainLanes returns and clears the concurrent-lane accounting of the
// spans drained so far: total CPU-side busy time (structure + ARM + NEON),
// FPGA lane busy time, and the overlapped span during which both lanes ran
// (already netted out of the drained totals). It drains any un-Reset work
// first.
func (a *Adaptive) DrainLanes() (cpu, fpga, overlap sim.Time) {
	a.Reset()
	cpu, fpga, overlap = a.laneCPU, a.laneFPGA, a.laneOverlap
	a.laneCPU, a.laneFPGA, a.laneOverlap = 0, 0, 0
	return cpu, fpga, overlap
}

// Power implements engine.Engine: the time-weighted mean power is only
// known after a span is drained, so the instantaneous value reports the
// base power at the operating point. Pipelines use DrainEnergy for exact
// accounting.
func (a *Adaptive) Power() sim.Watts { return a.cpuPower }

// Point reports the PS operating point the adaptive engine accounts at.
func (a *Adaptive) Point() dvfs.OperatingPoint { return a.op }

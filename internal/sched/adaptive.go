package sched

import (
	"fmt"

	"zynqfusion/internal/dvfs"
	"zynqfusion/internal/engine"
	"zynqfusion/internal/signal"
	"zynqfusion/internal/sim"
)

// Adaptive is an engine.Engine that routes every kernel row to the ARM,
// NEON or FPGA engine according to a Policy, implementing the adaptive
// system of the paper's conclusion. Structure work (padding, gathers, the
// fusion rule) always runs on the CPU.
//
// Energy accounting differs from the fixed ARM+FPGA mode: the adaptive
// system clock-gates the wave engine while rows run on NEON, so only the
// spans actually spent in the FPGA draw the +19.2 mW.
type Adaptive struct {
	policy Policy
	fb     Feedback // policy's feedback hook, if any

	ps        sim.Clock
	op        dvfs.OperatingPoint
	cpuPower  sim.Watts // board power while CPU-side engines compute
	fpgaPower sim.Watts // board power while the wave engine is held
	arm       *engine.ARM
	neon      *engine.NEON
	fpga      *engine.FPGA

	cpuCycles float64 // structure work

	// Drained accumulators (filled on Reset, emptied on DrainEnergy).
	accTime   sim.Time
	accEnergy sim.Joules

	// Per-engine routed-time statistics since construction.
	RoutedTime map[string]sim.Time
	RoutedRows map[string]int64
}

// NewAdaptive builds the adaptive engine over fresh ARM/NEON/FPGA engines
// at the nominal (533 MHz) operating point.
func NewAdaptive(p Policy) *Adaptive {
	return NewAdaptiveAt(p, dvfs.Nominal())
}

// NewAdaptiveAt builds the adaptive engine with its CPU-side engines and
// the FPGA host path running at the given PS operating point. Energy
// accounting uses the point's scaled board powers.
func NewAdaptiveAt(p Policy, op dvfs.OperatingPoint) *Adaptive {
	a := &Adaptive{
		policy:     p,
		ps:         op.Clock(),
		op:         op,
		cpuPower:   dvfs.ModePower("arm", op),
		fpgaPower:  dvfs.ModePower("fpga", op),
		arm:        engine.NewARMAt(op),
		neon:       engine.NewNEONAt(false, op),
		fpga:       engine.NewFPGAAt(op),
		RoutedTime: make(map[string]sim.Time),
		RoutedRows: make(map[string]int64),
	}
	a.fb, _ = p.(Feedback)
	return a
}

// Name implements engine.Engine.
func (a *Adaptive) Name() string { return "adaptive(" + a.policy.Name() + ")" }

// Policy returns the routing policy.
func (a *Adaptive) Policy() Policy { return a.policy }

func (a *Adaptive) route(pairs int, inverse bool) engine.Engine {
	switch a.policy.Pick(pairs, inverse) {
	case "arm":
		return a.arm
	case "fpga":
		return a.fpga
	case "neon":
		return a.neon
	default:
		panic(fmt.Sprintf("sched: policy %q picked unknown engine", a.policy.Name()))
	}
}

// peeker is implemented by engines whose Elapsed would disturb internal
// pipelining (the FPGA drains its double buffer); Peek prices work without
// side effects.
type peeker interface {
	Peek() sim.Time
}

// probe reads an engine's running cost without draining it.
func probe(e engine.Engine) sim.Time {
	if p, ok := e.(peeker); ok {
		return p.Peek()
	}
	return e.Elapsed()
}

// Analyze implements signal.Kernel, routing by row width.
func (a *Adaptive) Analyze(al, ah *signal.Taps, px []float32, lo, hi []float32) {
	e := a.route(len(lo), false)
	before := probe(e)
	e.Analyze(al, ah, px, lo, hi)
	a.observe(len(lo), false, e, probe(e)-before)
}

// Synthesize implements signal.Kernel, routing by row width.
func (a *Adaptive) Synthesize(sl, sh *signal.Taps, plo, phi []float32, out []float32) {
	pairs := len(out) / 2
	e := a.route(pairs, true)
	before := probe(e)
	e.Synthesize(sl, sh, plo, phi, out)
	a.observe(pairs, true, e, probe(e)-before)
}

func (a *Adaptive) observe(pairs int, inverse bool, e engine.Engine, cost sim.Time) {
	a.RoutedTime[e.Name()] += cost
	a.RoutedRows[e.Name()]++
	if a.fb != nil {
		a.fb.Observe(pairs, inverse, e.Name(), cost)
	}
}

// ChargeCPU implements engine.Engine (structure work on the ARM core).
func (a *Adaptive) ChargeCPU(samples int) {
	a.cpuCycles += engine.StructureCyclesPerSample * float64(samples)
}

// ChargeCPUCycles implements engine.Engine.
func (a *Adaptive) ChargeCPUCycles(cycles float64) { a.cpuCycles += cycles }

// Elapsed implements engine.Engine: the engines execute serially from the
// CPU's point of view, so spans add.
func (a *Adaptive) Elapsed() sim.Time {
	return a.ps.CyclesF(a.cpuCycles) + a.arm.Elapsed() + a.neon.Elapsed() + a.fpga.Elapsed()
}

// Reset implements engine.Engine. The drained span's energy (CPU and NEON
// spans at base power, FPGA spans at the wave-engine power) accumulates
// for DrainEnergy.
func (a *Adaptive) Reset() sim.Time {
	cpu := a.ps.CyclesF(a.cpuCycles)
	a.cpuCycles = 0
	armT := a.arm.Reset()
	neonT := a.neon.Reset()
	fpgaT := a.fpga.Reset()
	total := cpu + armT + neonT + fpgaT
	a.accTime += total
	a.accEnergy += sim.EnergyOver(a.cpuPower, cpu+armT+neonT)
	a.accEnergy += sim.EnergyOver(a.fpgaPower, fpgaT)
	return total
}

// DrainEnergy returns and clears the accumulated span and energy. It
// drains any un-Reset work first.
func (a *Adaptive) DrainEnergy() (sim.Time, sim.Joules) {
	a.Reset()
	t, e := a.accTime, a.accEnergy
	a.accTime, a.accEnergy = 0, 0
	return t, e
}

// Power implements engine.Engine: the time-weighted mean power is only
// known after a span is drained, so the instantaneous value reports the
// base power at the operating point. Pipelines use DrainEnergy for exact
// accounting.
func (a *Adaptive) Power() sim.Watts { return a.cpuPower }

// Point reports the PS operating point the adaptive engine accounts at.
func (a *Adaptive) Point() dvfs.OperatingPoint { return a.op }

package sched

import (
	"math/rand"
	"testing"

	"zynqfusion/internal/engine"
	"zynqfusion/internal/frame"
	"zynqfusion/internal/pipeline"
	"zynqfusion/internal/sim"
)

func randFrame(rng *rand.Rand, w, h int) *frame.Frame {
	f := frame.New(w, h)
	for i := range f.Pix {
		f.Pix[i] = float32(rng.Intn(256))
	}
	return f
}

func fuseTotal(t *testing.T, eng engine.Engine, w, h, frames int) (sim.Time, sim.Joules) {
	t.Helper()
	rng := rand.New(rand.NewSource(91))
	vis := randFrame(rng, w, h)
	ir := randFrame(rng, w, h)
	fu := pipeline.New(eng, pipeline.Config{IncludeIO: true})
	var acc pipeline.StageTimes
	for i := 0; i < frames; i++ {
		_, st, err := fu.FuseFrames(vis, ir)
		if err != nil {
			t.Fatal(err)
		}
		acc.Add(st)
	}
	return acc.Total, acc.Energy
}

func TestStaticPolicyRoutesEverything(t *testing.T) {
	for _, name := range []string{"arm", "neon", "fpga"} {
		a := NewAdaptive(Static{Engine: name})
		if _, _, err := pipeline.New(a, pipeline.Config{}).FuseFrames(
			randFrame(rand.New(rand.NewSource(92)), 32, 24),
			randFrame(rand.New(rand.NewSource(93)), 32, 24)); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for routed := range a.RoutedRows {
			if routed != name {
				t.Errorf("static-%s routed rows to %s", name, routed)
			}
		}
	}
}

func TestThresholdPickBoundaries(t *testing.T) {
	th := Threshold{}
	if th.Pick(DefaultFwdThreshold, false) != "fpga" {
		t.Error("at the forward threshold the FPGA should be picked")
	}
	if th.Pick(DefaultFwdThreshold-1, false) != "neon" {
		t.Error("below the forward threshold NEON should be picked")
	}
	if th.Pick(DefaultInvThreshold, true) != "fpga" {
		t.Error("at the inverse threshold the FPGA should be picked")
	}
	if th.Pick(DefaultInvThreshold-1, true) != "neon" {
		t.Error("below the inverse threshold NEON should be picked")
	}
	custom := Threshold{FwdPairs: 100, InvPairs: 5}
	if custom.Pick(50, false) != "neon" || custom.Pick(50, true) != "fpga" {
		t.Error("custom thresholds not honored")
	}
}

func TestThresholdRoutesMixedLevels(t *testing.T) {
	// At 88x72 the level-1/2 rows are wide (FPGA) and level-3 rows narrow
	// (NEON): the adaptive engine must actually split the work.
	a := NewAdaptive(Threshold{})
	rng := rand.New(rand.NewSource(94))
	fu := pipeline.New(a, pipeline.Config{})
	if _, _, err := fu.FuseFrames(randFrame(rng, 88, 72), randFrame(rng, 88, 72)); err != nil {
		t.Fatal(err)
	}
	if a.RoutedRows["fpga"] == 0 || a.RoutedRows["neon"] == 0 {
		t.Errorf("expected mixed routing, got %v", a.RoutedRows)
	}
}

func TestAdaptiveBeatsBothStaticEnginesAtFullFrame(t *testing.T) {
	// The paper's headline: run-time selection achieves the best time and
	// energy. At 88x72 the threshold policy must be at least as fast as
	// the better static engine (FPGA) because it offloads only the wide
	// rows and keeps narrow deep-level rows on NEON.
	const frames = 3
	neonT, neonE := fuseTotal(t, engine.NewNEON(false), 88, 72, frames)
	fpgaT, fpgaE := fuseTotal(t, engine.NewFPGA(), 88, 72, frames)
	adaT, adaE := fuseTotal(t, NewAdaptive(Threshold{}), 88, 72, frames)
	if adaT > fpgaT || adaT > neonT {
		t.Errorf("adaptive %v slower than static (neon %v, fpga %v)", adaT, neonT, fpgaT)
	}
	if adaE > fpgaE || adaE > neonE {
		t.Errorf("adaptive energy %v above static (neon %v, fpga %v)", adaE, neonE, fpgaE)
	}
}

func TestAdaptiveMatchesNEONAtSmallFrames(t *testing.T) {
	// At 32x24 even level-1 rows are near the crossover; the adaptive
	// engine must not lose to the better static engine by more than a
	// whisker at any size.
	const frames = 3
	neonT, _ := fuseTotal(t, engine.NewNEON(false), 32, 24, frames)
	fpgaT, _ := fuseTotal(t, engine.NewFPGA(), 32, 24, frames)
	adaT, _ := fuseTotal(t, NewAdaptive(Threshold{}), 32, 24, frames)
	best := neonT
	if fpgaT < best {
		best = fpgaT
	}
	if float64(adaT) > 1.02*float64(best) {
		t.Errorf("adaptive %v more than 2%% behind best static %v", adaT, best)
	}
}

func TestOnlineConvergesToThresholdChoices(t *testing.T) {
	// After exploration the online policy must route wide rows to the
	// FPGA and narrow rows to NEON, matching the calibrated crossover.
	o := NewOnline(2)
	a := NewAdaptive(o)
	rng := rand.New(rand.NewSource(95))
	fu := pipeline.New(a, pipeline.Config{})
	vis := randFrame(rng, 88, 72)
	ir := randFrame(rng, 88, 72)
	for i := 0; i < 6; i++ { // several frames so every width finishes exploring
		if _, _, err := fu.FuseFrames(vis, ir); err != nil {
			t.Fatal(err)
		}
	}
	// Analysis row widths present at 88x72/3 levels: 44, 36 (level 1),
	// 22, 18 (level 2), 11, 9 (level 3).
	if !o.Decided(44, false) || !o.Decided(11, false) {
		t.Fatal("online policy should have finished exploring the common widths")
	}
	if got := o.Pick(44, false); got != "fpga" {
		t.Errorf("wide analysis rows: online picked %s, want fpga", got)
	}
	if got := o.Pick(11, false); got != "neon" {
		t.Errorf("narrow analysis rows: online picked %s, want neon", got)
	}
}

func TestOnlineExploresBothCandidatesFirst(t *testing.T) {
	o := NewOnline(3)
	seen := map[string]int{}
	for i := 0; i < 6; i++ {
		e := o.Pick(20, false)
		seen[e]++
		o.Observe(20, false, e, sim.Time(1000*(i+1)))
	}
	if seen["neon"] != 3 || seen["fpga"] != 3 {
		t.Errorf("exploration unbalanced: %v", seen)
	}
}

func TestOnlineEnergyObjectiveWeighsPower(t *testing.T) {
	// With equal measured times, the energy objective must prefer the
	// lower-power engine (NEON); the time objective is indifferent but
	// deterministic.
	oT := NewOnline(1)
	oE := NewOnline(1)
	oE.Objective = MinEnergy
	for _, o := range []*Online{oT, oE} {
		o.Observe(20, false, "neon", sim.Time(1000))
		o.Observe(20, false, "fpga", sim.Time(1000))
	}
	if got := oE.Pick(20, false); got != "neon" {
		t.Errorf("energy objective picked %s at time parity, want neon", got)
	}
	// And when the FPGA is clearly faster, even the energy objective
	// must pick it (3.6%% power delta < time advantage).
	oE2 := NewOnline(1)
	oE2.Objective = MinEnergy
	oE2.Observe(44, false, "neon", sim.Time(2000))
	oE2.Observe(44, false, "fpga", sim.Time(1000))
	if got := oE2.Pick(44, false); got != "fpga" {
		t.Errorf("energy objective picked %s with 2x faster FPGA, want fpga", got)
	}
}

func TestAdaptiveEnergySplitsPower(t *testing.T) {
	// A drained adaptive span must price FPGA time at the elevated power
	// and the rest at base power: energy strictly between the two bounds
	// when routing is mixed.
	a := NewAdaptive(Threshold{})
	rng := rand.New(rand.NewSource(96))
	fu := pipeline.New(a, pipeline.Config{})
	if _, st, err := fu.FuseFrames(randFrame(rng, 88, 72), randFrame(rng, 88, 72)); err != nil {
		t.Fatal(err)
	} else {
		lower := sim.EnergyOver(engine.NewARM().Power(), st.Total)
		upper := sim.EnergyOver(engine.NewFPGA().Power(), st.Total)
		if st.Energy <= lower || st.Energy >= upper {
			t.Errorf("mixed-mode energy %v outside (%v, %v)", st.Energy, lower, upper)
		}
	}
}

func TestAdaptiveResetClearsState(t *testing.T) {
	a := NewAdaptive(Threshold{})
	a.ChargeCPUCycles(1e6)
	if a.Elapsed() <= 0 {
		t.Fatal("charge not recorded")
	}
	a.Reset()
	if a.Elapsed() != 0 {
		t.Error("elapsed should clear on reset")
	}
	tm, e := a.DrainEnergy()
	if tm <= 0 || e <= 0 {
		t.Error("drained accumulators should cover the pre-reset work")
	}
	tm2, e2 := a.DrainEnergy()
	if tm2 != 0 || e2 != 0 {
		t.Error("second drain should be empty")
	}
}

package sched

import (
	"testing"

	"zynqfusion/internal/camera"
	"zynqfusion/internal/dvfs"
	"zynqfusion/internal/frame"
	"zynqfusion/internal/sim"
	"zynqfusion/internal/split"
	"zynqfusion/internal/wavelet"
)

// fuseOnce runs one full forward→fuse-free→inverse transform pair through
// an adaptive engine at op and returns the reconstructed frame plus the
// drained time and energy. It drives the wavelet layer directly so the
// golden comparison pins the scheduling layer alone.
func fuseOnce(t *testing.T, policy Policy, op dvfs.OperatingPoint, frames int) (*frame.Frame, sim.Time, sim.Joules) {
	t.Helper()
	sc := camera.NewScene(64, 48, 7)
	vis := sc.Visible()
	a := NewAdaptiveAt(policy, op)
	dt := wavelet.NewDTCWT(wavelet.NewXfm(a), wavelet.DefaultTreeBanks())
	var rec *frame.Frame
	for i := 0; i < frames; i++ {
		p, err := dt.Forward(vis, 3)
		if err != nil {
			t.Fatal(err)
		}
		rec, err = dt.Inverse(p)
		if err != nil {
			t.Fatal(err)
		}
	}
	tm, en := a.DrainEnergy()
	return rec, tm, en
}

// TestGoldenDegenerateSplits pins the refactor's compatibility contract:
// Partition{FPGA: 1.0} reproduces the FPGA-only routing bit-for-bit and
// Partition{FPGA: 0.0} reproduces NEON-only — times, energy and pixels.
// The refactor changes no numbers unless a cooperative split is requested.
func TestGoldenDegenerateSplits(t *testing.T) {
	ops := []dvfs.OperatingPoint{dvfs.Nominal(), dvfs.Min()}
	for _, op := range ops {
		for _, tc := range []struct {
			frac   float64
			engine string
		}{
			{1.0, "fpga"},
			{0.0, "neon"},
		} {
			recSplit, tSplit, eSplit := fuseOnce(t, SplitDriven{S: split.Fixed{Frac: tc.frac}}, op, 2)
			recStat, tStat, eStat := fuseOnce(t, Static{Engine: tc.engine}, op, 2)
			if tSplit != tStat {
				t.Errorf("%s split %.0f%%: time %v != static %s %v", op.Name, tc.frac*100, tSplit, tc.engine, tStat)
			}
			if eSplit != eStat {
				t.Errorf("%s split %.0f%%: energy %v != static %s %v", op.Name, tc.frac*100, eSplit, tc.engine, eStat)
			}
			if len(recSplit.Pix) != len(recStat.Pix) {
				t.Fatalf("%s: size mismatch", op.Name)
			}
			for i := range recSplit.Pix {
				if recSplit.Pix[i] != recStat.Pix[i] {
					t.Errorf("%s split %.0f%%: pixel %d differs", op.Name, tc.frac*100, i)
					break
				}
			}
		}
	}
}

// TestGoldenDegenerateNoMergeCharge verifies degenerate partitions never
// pay the merge/sync overhead or record overlap.
func TestGoldenDegenerateNoMergeCharge(t *testing.T) {
	for _, frac := range []float64{0, 1} {
		a := NewAdaptiveAt(SplitDriven{S: split.Fixed{Frac: frac}}, dvfs.Nominal())
		sc := camera.NewScene(64, 48, 7)
		dt := wavelet.NewDTCWT(wavelet.NewXfm(a), wavelet.DefaultTreeBanks())
		if _, err := dt.Forward(sc.Visible(), 3); err != nil {
			t.Fatal(err)
		}
		a.Reset()
		if a.SplitPasses != 0 {
			t.Errorf("frac %g: %d merged passes, want 0", frac, a.SplitPasses)
		}
		if _, _, ov := a.DrainLanes(); ov != 0 {
			t.Errorf("frac %g: overlap %v, want 0", frac, ov)
		}
	}
}

// TestCooperativeSplitBeatsBothExclusives is the point of the refactor: at
// the full frame size, a balanced cooperative split finishes a transform
// strictly faster than either exclusive engine, because the idle lane of
// the either/or system now does real work.
func TestCooperativeSplitBeatsBothExclusives(t *testing.T) {
	op := dvfs.Nominal()
	_, tNEON, _ := fuseOnce(t, Static{Engine: "neon"}, op, 2)
	_, tFPGA, eFPGA := fuseOnce(t, Static{Engine: "fpga"}, op, 2)
	recC, tCoop, eCoop := fuseOnce(t, SplitDriven{S: split.NewOracle(op)}, op, 2)
	if tCoop >= tNEON || tCoop >= tFPGA {
		t.Errorf("cooperative %v should beat NEON %v and FPGA %v", tCoop, tNEON, tFPGA)
	}
	faster := eFPGA
	if tNEON < tFPGA {
		_, _, eNEON := fuseOnce(t, Static{Engine: "neon"}, op, 2)
		faster = eNEON
	}
	if eCoop >= faster {
		t.Errorf("cooperative energy %v should beat the faster exclusive %v", eCoop, faster)
	}
	// The cooperative output is still a faithful reconstruction.
	recN, _, _ := fuseOnce(t, Static{Engine: "neon"}, op, 1)
	psnr, err := frame.PSNR(recC, recN)
	if err != nil {
		t.Fatal(err)
	}
	if psnr < 100 {
		t.Errorf("cooperative reconstruction PSNR %.1f dB vs exclusive", psnr)
	}
}

// TestPartitionOfShim pins the classic policies' degenerate splits.
func TestPartitionOfShim(t *testing.T) {
	if p := PartitionOf(Static{Engine: "fpga"}, 44, false); p.FPGA != 1 {
		t.Errorf("static-fpga shim = %+v", p)
	}
	if p := PartitionOf(Static{Engine: "neon"}, 44, false); p.FPGA != 0 {
		t.Errorf("static-neon shim = %+v", p)
	}
	if p := PartitionOf(Static{Engine: "arm"}, 44, false); p.FPGA != 0 {
		t.Errorf("static-arm shim = %+v", p)
	}
	th := Threshold{}
	if p := PartitionOf(th, 44, false); p.FPGA != 1 {
		t.Errorf("threshold wide shim = %+v", p)
	}
	if p := PartitionOf(th, 4, false); p.FPGA != 0 {
		t.Errorf("threshold narrow shim = %+v", p)
	}
	if p := PartitionOf(SplitDriven{S: split.Fixed{Frac: 0.4}}, 44, false); p.FPGA != 0.4 {
		t.Errorf("split-driven shim = %+v", p)
	}
}

// TestGovernedPartitionGating verifies a denied gate collapses any
// cooperative split to the all-CPU partition, and a granted gate passes
// the inner split through.
func TestGovernedPartitionGating(t *testing.T) {
	inner := SplitDriven{S: split.Fixed{Frac: 0.6}}
	denied := Governed{Inner: inner, Gate: fixedGate(false)}
	if p, ok := denied.Partition(44, false); !ok || p.FPGA != 0 {
		t.Errorf("denied gate partition = %+v ok=%v", p, ok)
	}
	granted := Governed{Inner: inner, Gate: fixedGate(true)}
	if p, ok := granted.Partition(44, false); !ok || p.FPGA != 0.6 {
		t.Errorf("granted gate partition = %+v ok=%v", p, ok)
	}
	// A classic inner policy reports no partition and keeps Pick routing.
	classic := Governed{Inner: Static{Engine: "arm"}, Gate: fixedGate(true)}
	if _, ok := classic.Partition(44, false); ok {
		t.Error("classic inner policy should not report a partition")
	}
}

// fixedGate is a test Gate with a constant answer.
type fixedGate bool

func (g fixedGate) FPGAGranted() bool { return bool(g) }

// Package sched implements the run-time engine selection the paper
// concludes is optimal: "an adaptive system that intelligently selects
// between the SIMD engine and the FPGA achieves the most energy and
// performance efficiency point".
//
// Selection happens per kernel row, which in practice means per
// decomposition level and direction: every row of one level pass has the
// same width, and the paper's key observation is exactly that deeper
// (smaller) levels favor NEON while full-size levels favor the FPGA.
// Policies range from the static single-engine baselines through a fixed
// width threshold to an online learner that measures both engines and
// converges on the better one per workload size.
package sched

import (
	"fmt"

	"zynqfusion/internal/power"
	"zynqfusion/internal/sim"
	"zynqfusion/internal/split"
)

// Policy decides which engine runs a kernel call.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// Pick returns "arm", "neon" or "fpga" for a row of the given output
	// pair count and direction.
	Pick(pairs int, inverse bool) string
}

// Feedback is implemented by policies that learn from measured costs.
type Feedback interface {
	// Observe reports the simulated cost of one routed row.
	Observe(pairs int, inverse bool, engine string, cost sim.Time)
}

// Partitioner is the partition-aware policy surface: instead of routing a
// whole row class to exactly one engine, the policy may split it across
// the NEON and FPGA lanes, which the adaptive engine then drives
// concurrently. Partition returns ok=false when the policy has no split
// opinion for the class, in which case the caller falls back to Pick
// routing (the classic either/or path, preserved bit-for-bit).
type Partitioner interface {
	Policy
	Partition(pairs int, inverse bool) (p split.Partition, ok bool)
}

// PartitionOf is the shim between the classic and partition-aware policy
// surfaces: partition-aware policies report their split, and the existing
// Static/Threshold/Online policies degenerate to the 0%/100% splits their
// Pick implies — an FPGA pick is the all-FPGA partition, anything else the
// all-CPU one. It is the external two-lane projection of a policy; the
// adaptive engine itself routes classic policies through Pick directly,
// because Pick can also name the scalar ARM engine, which a two-lane
// partition cannot express.
func PartitionOf(p Policy, pairs int, inverse bool) split.Partition {
	if pp, ok := p.(Partitioner); ok {
		if part, use := pp.Partition(pairs, inverse); use {
			return part.Clamp()
		}
	}
	if p.Pick(pairs, inverse) == "fpga" {
		return split.Partition{FPGA: 1}
	}
	return split.Partition{}
}

// SplitDriven adapts a split.Policy into a scheduling policy: the
// partition comes from the split policy, and the classic Pick surface
// reports the partition's majority lane (for callers that only understand
// exclusive routing). Pass observations forward to the split policy when
// it learns (split.Feedback).
type SplitDriven struct {
	// S is the wrapped split policy (required).
	S split.Policy
}

// Name implements Policy.
func (sd SplitDriven) Name() string { return "split(" + sd.S.Name() + ")" }

// Pick implements Policy with the partition's majority lane.
func (sd SplitDriven) Pick(pairs int, inverse bool) string {
	if sd.S.Split(pairs, inverse).Clamp().FPGA >= 0.5 {
		return "fpga"
	}
	return "neon"
}

// Partition implements Partitioner.
func (sd SplitDriven) Partition(pairs int, inverse bool) (split.Partition, bool) {
	return sd.S.Split(pairs, inverse).Clamp(), true
}

// ObservePass implements split.Feedback by forwarding to the split policy.
func (sd SplitDriven) ObservePass(pairs int, inverse bool, obs split.PassObservation) {
	if fb, ok := sd.S.(split.Feedback); ok {
		fb.ObservePass(pairs, inverse, obs)
	}
}

// Static always picks one engine (the paper's three fixed configurations).
type Static struct{ Engine string }

// Name implements Policy.
func (s Static) Name() string { return "static-" + s.Engine }

// Pick implements Policy.
func (s Static) Pick(int, bool) string { return s.Engine }

// Threshold routes wide rows to the FPGA and narrow rows to NEON, the
// direct implementation of the paper's frame-size breaking point. The
// defaults derive from the calibrated cost model: the FPGA's ~9k-cycle
// per-invocation driver overhead amortizes once a row carries about 15
// output pairs.
type Threshold struct {
	// FwdPairs and InvPairs are the minimum output pair counts routed to
	// the FPGA for analysis and synthesis rows. Zero selects the defaults.
	FwdPairs, InvPairs int
}

// Default crossover widths from the calibrated cost model.
const (
	DefaultFwdThreshold = 15
	DefaultInvThreshold = 16
)

// Name implements Policy.
func (th Threshold) Name() string {
	f, i := th.thresholds()
	return fmt.Sprintf("threshold-f%d-i%d", f, i)
}

func (th Threshold) thresholds() (fwd, inv int) {
	fwd, inv = th.FwdPairs, th.InvPairs
	if fwd == 0 {
		fwd = DefaultFwdThreshold
	}
	if inv == 0 {
		inv = DefaultInvThreshold
	}
	return fwd, inv
}

// Pick implements Policy.
func (th Threshold) Pick(pairs int, inverse bool) string {
	fwd, inv := th.thresholds()
	limit := fwd
	if inverse {
		limit = inv
	}
	if pairs >= limit {
		return "fpga"
	}
	return "neon"
}

// Objective selects what the online policy minimizes.
type Objective int

// Optimization objectives.
const (
	// MinTime minimizes row latency (the performance-optimal point).
	MinTime Objective = iota
	// MinEnergy weights each row's latency by the board power of the
	// engine that ran it, minimizing energy. Because ARM+FPGA draws 3.6%
	// more board power, the energy objective flips decisions only near
	// the time-parity widths — exactly the paper's Fig. 10 observation
	// that the energy crossover sits above the time crossover.
	MinEnergy
)

// Online learns the best engine per (row width, direction) by running
// each candidate a fixed number of times and then exploiting the one with
// the lower mean cost under the configured objective. It is
// deterministic: exploration alternates candidates in order.
type Online struct {
	// Explore is the number of measurements per candidate before
	// exploitation starts (default 2).
	Explore int
	// Candidates are the engines considered (default neon, fpga).
	Candidates []string
	// Objective is what to minimize (default MinTime).
	Objective Objective

	stats map[onlineKey]*onlineStat
}

type onlineKey struct {
	pairs   int
	inverse bool
	engine  string
}

type onlineStat struct {
	n    int
	cost sim.Time
}

// NewOnline returns an online policy with the given exploration budget.
func NewOnline(explore int) *Online {
	if explore <= 0 {
		explore = 2
	}
	return &Online{Explore: explore, Candidates: []string{"neon", "fpga"}}
}

// Name implements Policy.
func (o *Online) Name() string { return fmt.Sprintf("online-x%d", o.Explore) }

// Pick implements Policy.
func (o *Online) Pick(pairs int, inverse bool) string {
	// Explore any candidate that lacks measurements.
	for _, c := range o.Candidates {
		if st := o.stat(pairs, inverse, c); st.n < o.Explore {
			return c
		}
	}
	// Exploit the lowest mean cost.
	best := o.Candidates[0]
	bestMean := o.mean(pairs, inverse, best)
	for _, c := range o.Candidates[1:] {
		if m := o.mean(pairs, inverse, c); m < bestMean {
			best, bestMean = c, m
		}
	}
	return best
}

// Observe implements Feedback.
func (o *Online) Observe(pairs int, inverse bool, engine string, cost sim.Time) {
	st := o.stat(pairs, inverse, engine)
	st.n++
	if o.Objective == MinEnergy {
		// Weight the span by the engine's board power: the ledger then
		// holds energy in arbitrary-but-consistent units.
		st.cost += sim.Time(float64(cost) * float64(power.ModePower(engine)))
		return
	}
	st.cost += cost
}

// Decided reports whether the policy has finished exploring the given
// workload shape.
func (o *Online) Decided(pairs int, inverse bool) bool {
	for _, c := range o.Candidates {
		if o.stat(pairs, inverse, c).n < o.Explore {
			return false
		}
	}
	return true
}

func (o *Online) stat(pairs int, inverse bool, engine string) *onlineStat {
	if o.stats == nil {
		o.stats = make(map[onlineKey]*onlineStat)
	}
	k := onlineKey{pairs: pairs, inverse: inverse, engine: engine}
	st, ok := o.stats[k]
	if !ok {
		st = &onlineStat{}
		o.stats[k] = st
	}
	return st
}

func (o *Online) mean(pairs int, inverse bool, engine string) float64 {
	st := o.stat(pairs, inverse, engine)
	if st.n == 0 {
		return 0
	}
	return float64(st.cost) / float64(st.n)
}

package sched

import (
	"math"

	"zynqfusion/internal/engine"
	"zynqfusion/internal/sim"
	"zynqfusion/internal/zynq"
)

// The NEON-vs-FPGA crossover moves with the PS frequency: NEON rows and
// the driver's per-row syscall cost both scale with 1/f, but the wave
// engine's compute time sits in its own fixed 100 MHz PL domain. As the
// PS slows, that fixed PL time amortizes a relatively larger share of a
// row, so the break-even width shrinks; overclocking the PS pushes it
// the other way. Equating the two row costs,
//
//	(NEONRowOverhead + NEONPair·p)/f  =  Syscall/f + p·τPL
//
// gives p = (Syscall − NEONRowOverhead) / (NEONPair − τPL·f), with τPL
// the effective PL seconds per output pair. τPL is expressed as PS-cycle
// equivalents at the nominal clock (engine.PLFwdPairNominalCycles /
// engine.PLInvPairNominalCycles), calibrated so that
// ThresholdForClock(zynq.PS()) lands exactly on the default crossovers
// (15 forward / 16 inverse) — the DVFS-aware path is bit-for-bit the
// fixed path at 533 MHz.

// ThresholdForClock returns the Threshold policy with the NEON/FPGA
// crossover widths computed for the given PS clock. At the nominal
// 533 MHz clock it returns exactly the default thresholds.
func ThresholdForClock(ps sim.Clock) Threshold {
	ratio := ps.Hertz() / zynq.PSHz
	return Threshold{
		FwdPairs: crossoverPairs(
			float64(engine.SyscallCycles)-engine.NEONRowOverheadCycles,
			engine.NEONFwdPairCycles,
			engine.PLFwdPairNominalCycles*ratio),
		InvPairs: crossoverPairs(
			float64(engine.SyscallCycles+engine.InverseExtraSyscallCycles)-engine.NEONRowOverheadCycles,
			engine.NEONInvPairCycles,
			engine.PLInvPairNominalCycles*ratio),
	}
}

// crossoverPairs solves the break-even row width and rounds up: rows at
// least that wide route to the FPGA. When the PS is fast enough that the
// scaled PL cost per pair matches or exceeds NEON's, the FPGA's fixed
// overhead can never amortize — no row width breaks even, so the
// threshold is unreachable and everything stays on NEON.
func crossoverPairs(fixedCycles, neonPairCycles, plPairCycles float64) int {
	denom := neonPairCycles - plPairCycles
	if denom <= 0 {
		return math.MaxInt32
	}
	return int(math.Ceil(fixedCycles / denom))
}

package sched

// StageAware is the per-stage scheduling surface of the inter-frame
// pipelined executor. The classic contract lets a policy see only rows;
// the pipelined executor additionally announces every stage boundary
// (forward-vis, forward-ir, fuse, inverse, ...) before the stage's first
// row, so policies and engines can re-evaluate state that must not leak
// across stages:
//
//   - the adaptive engine closes any open cooperative-split pass — the two
//     lanes sync at a stage boundary exactly as they do at a level
//     boundary, so a partition never spans the handoff between stages of
//     different frames;
//   - the Governed lease gate is re-consulted per stage rather than per
//     frame: a farm stream acquires the shared wave engine only around the
//     wavelet stages and releases it across capture/fuse/display, which is
//     what lets the stages of several streams' frames interleave on the
//     one modeled FPGA.
//
// Implementations must tolerate stages they do not recognize (future
// graphs may add stations).
type StageAware interface {
	// BeginStage announces that the named pipeline stage of the given
	// in-flight frame sequence number is about to run.
	BeginStage(stage string, frame int64)
}

// BeginStage implements StageAware for the adaptive engine: a stage
// boundary closes any open cooperative-split pass (the lanes must sync
// before work for a different stage — possibly a different frame — may
// start) and forwards the announcement to a stage-aware policy.
func (a *Adaptive) BeginStage(stage string, frame int64) {
	a.closePass()
	if sa, ok := a.policy.(StageAware); ok {
		sa.BeginStage(stage, frame)
	}
}

// BeginStage implements StageAware by forwarding to a stage-aware inner
// policy; the gate itself is stateless per stage — it is re-read on every
// row — so Governed has nothing of its own to reset.
func (g Governed) BeginStage(stage string, frame int64) {
	if sa, ok := g.Inner.(StageAware); ok {
		sa.BeginStage(stage, frame)
	}
}

// BeginStage implements StageAware by forwarding to a stage-aware split
// policy.
func (sd SplitDriven) BeginStage(stage string, frame int64) {
	if sa, ok := sd.S.(StageAware); ok {
		sa.BeginStage(stage, frame)
	}
}

package sched

import (
	"testing"

	"zynqfusion/internal/sim"
)

type fakeGate struct{ granted bool }

func (f *fakeGate) FPGAGranted() bool { return f.granted }

func TestGovernedDowngradesDeniedFPGA(t *testing.T) {
	g := &fakeGate{}
	p := Governed{Inner: Static{Engine: "fpga"}, Gate: g}
	if got := p.Pick(40, false); got != "neon" {
		t.Fatalf("denied FPGA pick should fall back to neon, got %q", got)
	}
	g.granted = true
	if got := p.Pick(40, false); got != "fpga" {
		t.Fatalf("granted FPGA pick should pass through, got %q", got)
	}
}

func TestGovernedLeavesCPUPicksAlone(t *testing.T) {
	g := &fakeGate{} // denied
	for _, eng := range []string{"arm", "neon"} {
		p := Governed{Inner: Static{Engine: eng}, Gate: g}
		if got := p.Pick(40, false); got != eng {
			t.Fatalf("%s pick should be untouched, got %q", eng, got)
		}
	}
}

func TestGovernedCustomFallback(t *testing.T) {
	p := Governed{Inner: Static{Engine: "fpga"}, Gate: &fakeGate{}, Fallback: "arm"}
	if got := p.Pick(40, false); got != "arm" {
		t.Fatalf("want arm fallback, got %q", got)
	}
}

func TestGovernedForwardsFeedback(t *testing.T) {
	o := NewOnline(1)
	g := &fakeGate{granted: true}
	p := Governed{Inner: o, Gate: g}
	p.Observe(20, false, "neon", 100*sim.Nanosecond)
	p.Observe(20, false, "fpga", 10*sim.Nanosecond)
	if !o.Decided(20, false) {
		t.Fatal("feedback should reach the inner online policy")
	}
	if got := p.Pick(20, false); got != "fpga" {
		t.Fatalf("inner learner should now prefer fpga, got %q", got)
	}
	// Once the gate closes, even the learned preference downgrades.
	g.granted = false
	if got := p.Pick(20, false); got != "neon" {
		t.Fatalf("closed gate must override learned fpga, got %q", got)
	}
}

func TestGovernedName(t *testing.T) {
	p := Governed{Inner: Threshold{}, Gate: &fakeGate{}}
	want := "governed(" + (Threshold{}).Name() + ")"
	if p.Name() != want {
		t.Fatalf("name %q, want %q", p.Name(), want)
	}
}

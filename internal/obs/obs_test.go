package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"zynqfusion/internal/sim"
)

func TestHistogramQuantiles(t *testing.T) {
	h := NewLogHistogram(0.001, 1e5, 4)
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i)) // uniform 1..1000
	}
	s := h.Snapshot()
	if s.Count != 1000 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.Min != 1 || s.Max != 1000 {
		t.Fatalf("min/max = %g/%g", s.Min, s.Max)
	}
	// Log buckets at 4/decade are coarse; allow the bucket-interpolation
	// error of one bucket ratio (10^(1/4) ~ 1.78x).
	checks := []struct{ q, want float64 }{{0.50, 500}, {0.95, 950}, {0.99, 990}}
	for _, c := range checks {
		got := s.Quantile(c.q)
		if got < c.want/1.8 || got > c.want*1.8 {
			t.Errorf("q%g = %g, want within bucket ratio of %g", c.q, got, c.want)
		}
	}
	if s.P50 != s.Quantile(0.50) || s.P99 != s.Quantile(0.99) {
		t.Error("snapshot percentiles disagree with Quantile")
	}
}

func TestHistogramEdgeCases(t *testing.T) {
	h := NewLogHistogram(1, 1000, 3)
	if s := h.Snapshot(); s.Count != 0 || s.P50 != 0 || s.Mean != 0 {
		t.Fatalf("empty snapshot not zero: %+v", s)
	}
	h.Observe(0)   // below lo: first bucket
	h.Observe(1e9) // above hi: overflow bucket
	h.Observe(-5)  // negative: first bucket, exact min kept
	s := h.Snapshot()
	if s.Count != 3 || s.Min != -5 || s.Max != 1e9 {
		t.Fatalf("edge snapshot: %+v", s)
	}
	if last := s.Buckets[len(s.Buckets)-1]; last.N != 2 {
		t.Fatalf("finite buckets hold %d, want 2 (one overflow)", last.N)
	}
	// The overflow-resident quantile reports the exact max.
	if q := s.Quantile(1.0); q != 1e9 {
		t.Fatalf("q100 = %g, want max", q)
	}
}

func TestHistogramDeterministic(t *testing.T) {
	mk := func() Summary {
		h := NewLogHistogram(0.001, 1e5, 4)
		v := 1.0
		for i := 0; i < 500; i++ {
			h.Observe(v)
			v = math.Mod(v*1.37+0.11, 900)
		}
		return h.Snapshot()
	}
	a, b := mk(), mk()
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if !bytes.Equal(ja, jb) {
		t.Fatalf("identical observation streams produced different summaries:\n%s\n%s", ja, jb)
	}
}

func TestHistogramMerge(t *testing.T) {
	h1 := NewLogHistogram(1, 1000, 3)
	h2 := NewLogHistogram(1, 1000, 3)
	all := NewLogHistogram(1, 1000, 3)
	for i := 1; i <= 100; i++ {
		h1.Observe(float64(i))
		all.Observe(float64(i))
	}
	for i := 500; i <= 700; i++ {
		h2.Observe(float64(i))
		all.Observe(float64(i))
	}
	s := h1.Snapshot()
	if err := s.Merge(h2.Snapshot()); err != nil {
		t.Fatal(err)
	}
	want := all.Snapshot()
	if s.Count != want.Count || s.Sum != want.Sum || s.Min != want.Min || s.Max != want.Max ||
		s.P50 != want.P50 || s.P95 != want.P95 || s.P99 != want.P99 {
		t.Fatalf("merged summary %+v != combined %+v", s, want)
	}
	// Mismatched layouts refuse.
	other := NewLogHistogram(1, 1000, 4).Snapshot()
	other.Count = 1 // non-empty so the layout check runs
	if err := s.Merge(other); err == nil {
		t.Fatal("merging mismatched layouts did not error")
	}
}

func TestHistogramObserveZeroAlloc(t *testing.T) {
	h := NewLogHistogram(0.001, 1e5, 4)
	v := 3.7
	if allocs := testing.AllocsPerRun(100, func() { h.Observe(v); v += 0.9 }); allocs != 0 {
		t.Fatalf("Observe allocates %.1f per call, want 0", allocs)
	}
}

func TestEventRingBoundedAndOrdered(t *testing.T) {
	l := NewEventLog(4)
	a := l.Ring("a")
	b := l.Ring("b")
	a.Push(EventDrop, 1, 0, "")
	b.Push(EventDeadlineMiss, 2, 0, "")
	a.Push(EventOpSwitch, 3, 0, "444MHz")
	for i := 0; i < 10; i++ {
		b.Push(EventDrop, int64(10+i), 0, "")
	}
	if b.Total() != 11 {
		t.Fatalf("b total = %d", b.Total())
	}
	// b's ring retains only the last 4; the merged view is seq-ordered.
	evs := l.Events("", 0)
	if len(evs) != 2+4 {
		t.Fatalf("merged events = %d, want 6", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Fatalf("events out of order at %d: %+v", i, evs)
		}
	}
	only := l.Events("a", 0)
	if len(only) != 2 || only[0].Kind != EventDrop || only[1].Label != "444MHz" {
		t.Fatalf("stream filter: %+v", only)
	}
	if n := len(l.Events("", 3)); n != 3 {
		t.Fatalf("n trim: %d", n)
	}
	if n := len(l.Events("missing", 0)); n != 0 {
		t.Fatalf("unknown stream: %d events", n)
	}
}

func TestEventPushZeroAlloc(t *testing.T) {
	l := NewEventLog(64)
	r := l.Ring("s1")
	if allocs := testing.AllocsPerRun(100, func() { r.Push(EventDrop, 7, 0, "") }); allocs != 0 {
		t.Fatalf("Push allocates %.1f per call, want 0", allocs)
	}
}

func TestTraceRecorderRingAndFilter(t *testing.T) {
	r := NewTraceRecorder("s1", 8)
	for f := int64(0); f < 6; f++ {
		r.Span(f, "fuse", "fuse", sim.Time(f)*sim.Millisecond, sim.Time(f)*sim.Millisecond+sim.Microsecond)
		r.Span(f, "inverse", "inverse", sim.Time(f)*sim.Millisecond, sim.Time(f)*sim.Millisecond+sim.Microsecond)
	}
	all := r.Spans(0)
	if len(all) != 8 { // 12 pushed, ring holds 8
		t.Fatalf("retained %d spans, want 8", len(all))
	}
	last2 := r.Spans(2)
	for _, s := range last2 {
		if s.Frame < 4 {
			t.Fatalf("frames filter leaked frame %d", s.Frame)
		}
	}
	if len(last2) != 4 {
		t.Fatalf("last 2 frames = %d spans, want 4", len(last2))
	}
}

func TestTraceRecorderZeroAlloc(t *testing.T) {
	r := NewTraceRecorder("s1", 128)
	if allocs := testing.AllocsPerRun(100, func() {
		r.Span(1, "fuse", "fuse", 0, sim.Microsecond)
		r.Counter(1, "split_ratio", sim.Microsecond, 0.5)
	}); allocs != 0 {
		t.Fatalf("trace recording allocates %.1f per call, want 0", allocs)
	}
}

func TestWriteTraceWellFormed(t *testing.T) {
	r := NewTraceRecorder("s1", 32)
	r.Span(0, "fuse", "fuse", 0, sim.Millisecond)
	r.Instant(0, "dvfs", "533MHz", 0)
	r.Counter(0, "split_ratio", sim.Millisecond, 0.4)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, []TraceView{{Process: r.Process(), Spans: r.Spans(0)}}); err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	phases := map[string]int{}
	for _, ev := range f.TraceEvents {
		phases[ev["ph"].(string)]++
	}
	if phases["M"] < 2 || phases["X"] != 1 || phases["i"] != 1 || phases["C"] != 1 {
		t.Fatalf("phases: %v", phases)
	}
}

func TestPromEncoder(t *testing.T) {
	var buf bytes.Buffer
	p := NewProm(&buf)
	p.Family("farm_fused_total", "counter", "Fused frames.")
	p.Sample("", 12, Label{K: "stream", V: "s1"})
	p.Sample("", 3, Label{K: "stream", V: `we"ird\n`})
	h := NewLogHistogram(1, 100, 2)
	h.Observe(5)
	h.Observe(50)
	p.Family("farm_latency_ms", "histogram", "Frame latency.")
	p.Histogram(h.Snapshot(), Label{K: "stream", V: "s1"})
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE farm_fused_total counter",
		`farm_fused_total{stream="s1"} 12`,
		`\"ird\\n`,
		`farm_latency_ms_bucket{stream="s1",le="+Inf"} 2`,
		`farm_latency_ms_count{stream="s1"} 2`,
		"farm_latency_ms_sum",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}

	// Duplicate series is an error.
	p2 := NewProm(&bytes.Buffer{})
	p2.Family("x_total", "counter", "x")
	p2.Sample("", 1)
	p2.Sample("", 2)
	if err := p2.Flush(); err == nil {
		t.Fatal("duplicate series not flagged")
	}
	// Bad names are errors.
	p3 := NewProm(&bytes.Buffer{})
	p3.Family("bad name", "counter", "x")
	if err := p3.Flush(); err == nil {
		t.Fatal("bad metric name not flagged")
	}
	p4 := NewProm(&bytes.Buffer{})
	p4.Family("ok_total", "counter", "x")
	p4.Sample("", 1, Label{K: "1bad", V: "v"})
	if err := p4.Flush(); err == nil {
		t.Fatal("bad label name not flagged")
	}
}

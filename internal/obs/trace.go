package obs

import (
	"encoding/json"
	"io"
	"sync"

	"zynqfusion/internal/sim"
)

// SpanKind distinguishes the trace_event phases the recorder can hold.
type SpanKind uint8

const (
	// SpanComplete is a duration span (Chrome phase "X").
	SpanComplete SpanKind = iota
	// SpanCounter is a sampled counter value (phase "C").
	SpanCounter
	// SpanInstant is a point event (phase "i").
	SpanInstant
)

// TraceSpan is one recorded trace entry on a process's modeled timeline.
type TraceSpan struct {
	// Frame is the frame sequence number the entry belongs to (for the
	// /trace?frames=N trim).
	Frame int64
	// Track names the thread-like lane inside the process ("forward-vis",
	// "fuse", "lease", …).
	Track string
	// Name labels the span itself (stage name, operating point, holder).
	Name string
	// Start and End delimit the span on the recorder's modeled timeline;
	// counters and instants use Start only.
	Start, End sim.Time
	Kind       SpanKind
	// Value carries a counter sample.
	Value float64
}

// TraceRecorder is a bounded ring of trace entries for one process (one
// farm stream, or the governor's lease timeline). Recording overwrites the
// oldest entry once the ring is full and never allocates, so a stream can
// trace every frame indefinitely at a fixed memory cost. Safe for
// concurrent use.
type TraceRecorder struct {
	process string

	mu    sync.Mutex
	ring  []TraceSpan
	next  int
	total int64
}

// DefaultTraceSpans is the per-recorder ring capacity when the caller
// passes 0: roughly 250 pipelined frames of stage spans.
const DefaultTraceSpans = 2048

// NewTraceRecorder builds a recorder for the named process with a ring of
// capSpans entries (0 selects DefaultTraceSpans).
func NewTraceRecorder(process string, capSpans int) *TraceRecorder {
	if capSpans <= 0 {
		capSpans = DefaultTraceSpans
	}
	return &TraceRecorder{process: process, ring: make([]TraceSpan, capSpans)}
}

// Process returns the recorder's process name.
func (r *TraceRecorder) Process() string { return r.process }

func (r *TraceRecorder) push(s TraceSpan) {
	r.mu.Lock()
	r.ring[r.next] = s
	r.next = (r.next + 1) % len(r.ring)
	r.total++
	r.mu.Unlock()
}

// Span records a completed duration span. Zero allocations.
func (r *TraceRecorder) Span(frame int64, track, name string, start, end sim.Time) {
	r.push(TraceSpan{Frame: frame, Track: track, Name: name, Start: start, End: end})
}

// Counter records a sampled counter value at a point in time.
func (r *TraceRecorder) Counter(frame int64, track string, at sim.Time, v float64) {
	r.push(TraceSpan{Frame: frame, Track: track, Name: track, Start: at, Kind: SpanCounter, Value: v})
}

// Instant records a point event (an operating-point switch, say).
func (r *TraceRecorder) Instant(frame int64, track, name string, at sim.Time) {
	r.push(TraceSpan{Frame: frame, Track: track, Name: name, Start: at, Kind: SpanInstant})
}

// Spans snapshots the ring in recording order, keeping only entries of the
// last lastFrames distinct frame numbers (<= 0 keeps everything retained).
func (r *TraceRecorder) Spans(lastFrames int) []TraceSpan {
	r.mu.Lock()
	var out []TraceSpan
	if r.total <= int64(len(r.ring)) {
		out = append(out, r.ring[:r.next]...)
	} else {
		out = append(out, r.ring[r.next:]...)
		out = append(out, r.ring[:r.next]...)
	}
	r.mu.Unlock()
	if lastFrames > 0 && len(out) > 0 {
		// Frame numbers are non-decreasing in recording order.
		cut := out[len(out)-1].Frame - int64(lastFrames) + 1
		lo := 0
		for lo < len(out) && out[lo].Frame < cut {
			lo++
		}
		out = out[lo:]
	}
	return out
}

// TraceView is one process's contribution to an exported trace.
type TraceView struct {
	Process string
	Spans   []TraceSpan
}

// traceEvent is one Chrome trace_event JSON object. Timestamps and
// durations are microseconds, the trace-viewer convention.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

func toMicros(t sim.Time) float64 { return float64(t) / float64(sim.Microsecond) }

// WriteTrace renders the views as Chrome trace_event JSON (the "JSON
// object" container format), loadable in Perfetto or chrome://tracing.
// Each view becomes one process; each track one named thread. Processes
// and threads are numbered in view order so identical inputs produce
// identical bytes.
func WriteTrace(w io.Writer, views []TraceView) error {
	var f traceFile
	f.DisplayTimeUnit = "ms"
	for vi, v := range views {
		pid := vi + 1
		f.TraceEvents = append(f.TraceEvents, traceEvent{
			Name: "process_name", Ph: "M", Pid: pid, Tid: 0,
			Args: map[string]any{"name": v.Process},
		})
		tids := make(map[string]int)
		for _, s := range v.Spans {
			tid, ok := tids[s.Track]
			if !ok {
				tid = len(tids) + 1
				tids[s.Track] = tid
				f.TraceEvents = append(f.TraceEvents, traceEvent{
					Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
					Args: map[string]any{"name": s.Track},
				})
			}
			ev := traceEvent{Name: s.Name, Pid: pid, Tid: tid, TS: toMicros(s.Start)}
			switch s.Kind {
			case SpanComplete:
				ev.Ph = "X"
				ev.Cat = "stage"
				ev.Dur = toMicros(s.End - s.Start)
				ev.Args = map[string]any{"frame": s.Frame}
			case SpanCounter:
				ev.Ph = "C"
				ev.Args = map[string]any{"value": s.Value}
			case SpanInstant:
				ev.Ph = "i"
				ev.S = "t"
				ev.Args = map[string]any{"frame": s.Frame}
			}
			f.TraceEvents = append(f.TraceEvents, ev)
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(f)
}

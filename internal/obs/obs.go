// Package obs is the observability layer of the reproduction: fixed-bucket
// log-spaced histograms for latency and energy distributions, a Prometheus
// text-format encoder, a per-stream Chrome trace_event recorder, and a
// bounded ring of structured operational events.
//
// The package is deliberately zero-dependency (standard library plus
// internal/sim only) and its recording paths — Histogram.Observe,
// EventRing.Push, TraceRecorder.Span — perform no heap allocation in
// steady state, so the farm can instrument its per-frame hot path without
// perturbing the alloc-regression guard or the modeled charges. Rendering
// (Prometheus text, trace JSON, event listings) allocates freely; it runs
// on scrape, not per frame.
package obs

package obs

import (
	"fmt"
	"math"
)

// Histogram is a fixed-bucket log-spaced histogram. The bucket layout is
// frozen at construction — upper bounds grow geometrically from Lo to Hi —
// so Observe touches no maps and allocates nothing: recording in a
// per-frame hot path is a bucket index plus a handful of scalar updates.
//
// A Histogram is not safe for concurrent use; callers serialize access
// (the farm records and snapshots under the stream lock).
type Histogram struct {
	bounds []float64 // ascending upper bounds; values above bounds[len-1] overflow
	counts []int64   // len(bounds)+1; counts[len(bounds)] is the overflow bucket
	count  int64
	sum    float64
	min    float64
	max    float64
}

// NewLogHistogram builds a histogram whose bucket upper bounds run
// geometrically from lo to hi with perDecade buckets per factor of ten.
// Values at or below lo land in the first bucket (so a zero observation is
// representable), values above hi in the overflow bucket. Identical
// arguments always produce the identical layout, which is what lets
// same-shaped histograms merge bucket-for-bucket.
func NewLogHistogram(lo, hi float64, perDecade int) *Histogram {
	if lo <= 0 || hi <= lo || perDecade <= 0 {
		panic(fmt.Sprintf("obs: bad histogram layout lo=%g hi=%g perDecade=%d", lo, hi, perDecade))
	}
	// n steps of ratio 10^(1/perDecade) from lo up to (at least) hi.
	n := int(math.Ceil(math.Log10(hi/lo)*float64(perDecade))) + 1
	bounds := make([]float64, n)
	for i := range bounds {
		bounds[i] = lo * math.Pow(10, float64(i)/float64(perDecade))
	}
	// Pin the last bound exactly at hi so layouts are stable under float
	// noise in the exponentiation.
	bounds[n-1] = hi
	return &Histogram{bounds: bounds, counts: make([]int64, n+1)}
}

// Observe records one value. Zero allocations, no maps: a binary search
// over the fixed bounds and scalar updates.
func (h *Histogram) Observe(v float64) {
	// Binary search for the first bound >= v.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.counts[lo]++
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
}

// Count reports the number of observations.
func (h *Histogram) Count() int64 { return h.count }

// Bucket is one cumulative histogram bucket: N observations were <= LE.
// The overflow bucket is implicit — Summary.Count minus the last bucket's
// N — which keeps +Inf (unrepresentable in JSON) out of the wire format.
type Bucket struct {
	LE float64 `json:"le"`
	N  int64   `json:"n"`
}

// Summary is a histogram snapshot: the order statistics a dashboard wants
// plus the full cumulative bucket vector, so summaries merge exactly and
// render as native Prometheus histograms.
type Summary struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
	// Buckets is cumulative over the fixed upper bounds (all buckets, zero
	// or not, so two summaries of the same layout merge index-for-index).
	Buckets []Bucket `json:"buckets"`
}

// Snapshot renders the histogram's current state. It allocates (the bucket
// vector); call it on scrape, not per frame.
func (h *Histogram) Snapshot() Summary {
	s := Summary{
		Count:   h.count,
		Sum:     h.sum,
		Min:     h.min,
		Max:     h.max,
		Buckets: make([]Bucket, len(h.bounds)),
	}
	var cum int64
	for i, b := range h.bounds {
		cum += h.counts[i]
		s.Buckets[i] = Bucket{LE: b, N: cum}
	}
	s.finish()
	return s
}

// finish derives the order statistics from the cumulative buckets.
func (s *Summary) finish() {
	if s.Count == 0 {
		return
	}
	s.Mean = s.Sum / float64(s.Count)
	s.P50 = s.Quantile(0.50)
	s.P95 = s.Quantile(0.95)
	s.P99 = s.Quantile(0.99)
}

// Quantile estimates the q-quantile (0 < q <= 1) by linear interpolation
// inside the owning bucket, clamped to the exactly-tracked [Min, Max]. The
// estimate is deterministic: identical observation streams produce
// identical summaries.
func (s Summary) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Buckets) == 0 {
		return 0
	}
	rank := q * float64(s.Count)
	var prevCum int64
	prevBound := s.Min
	for _, b := range s.Buckets {
		if float64(b.N) >= rank {
			inBucket := b.N - prevCum
			v := b.LE
			if inBucket > 0 {
				v = prevBound + (b.LE-prevBound)*(rank-float64(prevCum))/float64(inBucket)
			}
			return clamp(v, s.Min, s.Max)
		}
		prevCum = b.N
		prevBound = b.LE
	}
	// Rank falls in the overflow bucket: everything we know is that the
	// value exceeded the last bound; Max is the tightest honest answer.
	return s.Max
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Clone returns a deep copy with an independent bucket vector, so a
// caller can Merge into (or from) it without mutating the source — Merge
// folds buckets in place, and an empty receiver adopts the other
// summary's vector wholesale.
func (s Summary) Clone() Summary {
	s.Buckets = append([]Bucket(nil), s.Buckets...)
	return s
}

// Merge folds other into s bucket-for-bucket and recomputes the order
// statistics. Both summaries must come from the same layout (the farm's
// per-stream histograms share their constructors); mismatched layouts
// return an error instead of silently corrupting the distribution.
func (s *Summary) Merge(other Summary) error {
	if other.Count == 0 {
		return nil
	}
	if s.Count == 0 {
		*s = other
		return nil
	}
	if len(s.Buckets) != len(other.Buckets) {
		return fmt.Errorf("obs: merging summaries with %d vs %d buckets", len(s.Buckets), len(other.Buckets))
	}
	for i := range s.Buckets {
		if s.Buckets[i].LE != other.Buckets[i].LE {
			return fmt.Errorf("obs: merging summaries with mismatched bound %g vs %g at bucket %d",
				s.Buckets[i].LE, other.Buckets[i].LE, i)
		}
		s.Buckets[i].N += other.Buckets[i].N
	}
	s.Count += other.Count
	s.Sum += other.Sum
	if other.Min < s.Min {
		s.Min = other.Min
	}
	if other.Max > s.Max {
		s.Max = other.Max
	}
	s.finish()
	return nil
}

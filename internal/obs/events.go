package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Event kinds recorded by the farm. The set is closed on purpose: a
// dashboard can switch on Kind without defending against free-form text,
// and the hot-path Push never formats strings.
const (
	// EventDrop is a capture pair evicted by backpressure or shutdown.
	EventDrop = "drop"
	// EventDeadlineMiss is a frame that overran its deadline.
	EventDeadlineMiss = "deadline-miss"
	// EventLeaseDenial is a refused FPGA lease (Label "budget" when the
	// power budget, rather than contention, refused it).
	EventLeaseDenial = "lease-denial"
	// EventOpSwitch is a DVFS operating-point change (Label = new point).
	EventOpSwitch = "op-switch"
	// EventPoolShed is a frame-store plane dropped at the arena cap
	// (Value = plane bytes).
	EventPoolShed = "pool-shed"
	// EventStreamStart and EventStreamStop bracket a stream's lifetime.
	EventStreamStart = "stream-start"
	EventStreamStop  = "stream-stop"
	// EventStreamError is a terminal stream error (Label = error text).
	EventStreamError = "stream-error"
	// EventAlertFire and EventAlertClear are SLO burn-rate alert edges
	// (Label = "sli/severity", Value = the limiting window's burn rate).
	EventAlertFire  = "alert-fire"
	EventAlertClear = "alert-clear"
	// EventDegrade and EventRestore are degradation-controller actions
	// (Label = the action, Value = the resulting stage count).
	EventDegrade = "degrade"
	EventRestore = "restore"
	// EventAdmissionRefused is a stream submission refused while the farm
	// error budget was burning (Label = refused stream id, on the "farm"
	// ring).
	EventAdmissionRefused = "admission-refused"
)

// Event is one structured entry in a stream's event ring.
type Event struct {
	// Seq is a log-wide monotone sequence number; merging per-stream rings
	// by Seq reconstructs the farm-wide order of occurrence.
	Seq uint64 `json:"seq"`
	// WallNS is the host wall-clock at Push (UnixNano). Operational only —
	// the modeled timeline lives in the trace, not here.
	WallNS int64  `json:"wall_ns"`
	Stream string `json:"stream"`
	Kind   string `json:"kind"`
	// Frame is the stream frame the event belongs to (-1 when unknown,
	// e.g. a producer-side drop).
	Frame int64 `json:"frame"`
	// Value carries a numeric payload (shed bytes, slack overrun ms).
	Value float64 `json:"value,omitempty"`
	// Label carries a short categorical payload (new operating point,
	// error text, "budget").
	Label string `json:"label,omitempty"`
}

// EventLog owns the per-stream event rings and the shared sequence
// counter. All methods are safe for concurrent use.
type EventLog struct {
	seq     atomic.Uint64
	perRing int

	mu    sync.Mutex
	rings map[string]*EventRing
	order []string
}

// DefaultEventsPerStream is the ring capacity when NewEventLog gets 0.
const DefaultEventsPerStream = 256

// NewEventLog builds a log whose per-stream rings hold perRing events each
// (0 selects DefaultEventsPerStream).
func NewEventLog(perRing int) *EventLog {
	if perRing <= 0 {
		perRing = DefaultEventsPerStream
	}
	return &EventLog{perRing: perRing, rings: make(map[string]*EventRing)}
}

// Ring returns (creating on first use) the named stream's event ring.
func (l *EventLog) Ring(stream string) *EventRing {
	l.mu.Lock()
	defer l.mu.Unlock()
	r, ok := l.rings[stream]
	if !ok {
		r = &EventRing{log: l, stream: stream, ring: make([]Event, l.perRing)}
		l.rings[stream] = r
		l.order = append(l.order, stream)
	}
	return r
}

// Events returns up to n most recent events (n <= 0 means all retained),
// filtered to one stream when stream != "", otherwise merged across every
// ring in farm-wide order of occurrence.
func (l *EventLog) Events(stream string, n int) []Event {
	l.mu.Lock()
	var rings []*EventRing
	if stream != "" {
		if r, ok := l.rings[stream]; ok {
			rings = append(rings, r)
		}
	} else {
		for _, id := range l.order {
			rings = append(rings, l.rings[id])
		}
	}
	l.mu.Unlock()

	var out []Event
	for _, r := range rings {
		out = append(out, r.snapshot()...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	if n > 0 && len(out) > n {
		out = out[len(out)-n:]
	}
	return out
}

// EventsSince returns retained events with Seq > since in farm-wide
// order — the forward-pagination contract behind /events?since=N. Unlike
// Events, which keeps the n most *recent*, EventsSince keeps the n
// *oldest* matches (n <= 0 means all), so a poller walking the returned
// cursor never skips an event that is still retained and never reads one
// twice. The cursor is the last returned Seq (since itself when nothing
// matched); events evicted from a ring before the poller catches up are
// lost to it, as with any bounded buffer.
func (l *EventLog) EventsSince(stream string, since uint64, n int) ([]Event, uint64) {
	evs := l.Events(stream, 0)
	i := sort.Search(len(evs), func(i int) bool { return evs[i].Seq > since })
	evs = evs[i:]
	if n > 0 && len(evs) > n {
		evs = evs[:n]
	}
	next := since
	if len(evs) > 0 {
		next = evs[len(evs)-1].Seq
	}
	return evs, next
}

// EventRing is one stream's bounded event buffer. Push overwrites the
// oldest event once full and allocates nothing, so emitting an event is
// safe from any hot path (it is also safe under foreign locks: the ring
// lock is a leaf and Push calls nothing back). Safe for concurrent use.
type EventRing struct {
	log    *EventLog
	stream string

	mu    sync.Mutex
	ring  []Event
	next  int
	total int64
}

// Push appends an event, stamping the shared sequence number and the wall
// clock. Zero allocations.
func (r *EventRing) Push(kind string, frame int64, value float64, label string) {
	e := Event{
		Seq:    r.log.seq.Add(1),
		WallNS: time.Now().UnixNano(),
		Stream: r.stream,
		Kind:   kind,
		Frame:  frame,
		Value:  value,
		Label:  label,
	}
	r.mu.Lock()
	r.ring[r.next] = e
	r.next = (r.next + 1) % len(r.ring)
	r.total++
	r.mu.Unlock()
}

// snapshot copies the retained events in push order.
func (r *EventRing) snapshot() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Event
	if r.total <= int64(len(r.ring)) {
		out = append(out, r.ring[:r.next]...)
	} else {
		out = append(out, r.ring[r.next:]...)
		out = append(out, r.ring[:r.next]...)
	}
	return out
}

// Total reports how many events were ever pushed (including overwritten).
func (r *EventRing) Total() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

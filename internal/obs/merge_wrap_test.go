package obs

import (
	"reflect"
	"testing"

	"zynqfusion/internal/sim"
)

// --- Histogram.Merge degenerate cases ------------------------------------

func TestHistogramMergeEmptyIntoFull(t *testing.T) {
	h := NewLogHistogram(1, 1000, 3)
	for i := 1; i <= 50; i++ {
		h.Observe(float64(i))
	}
	s := h.Snapshot()
	before := s.Clone()
	if err := s.Merge(NewLogHistogram(1, 1000, 3).Snapshot()); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, before) {
		t.Fatalf("merging an empty summary changed the receiver:\n%+v\n%+v", s, before)
	}
	// The empty receiver adopts the full summary wholesale — even with a
	// different (empty) layout, since there is nothing to corrupt.
	var empty Summary
	if err := empty.Merge(before); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(empty, before) {
		t.Fatalf("empty receiver did not adopt the merged summary:\n%+v\n%+v", empty, before)
	}
}

func TestHistogramMergeSelf(t *testing.T) {
	h := NewLogHistogram(1, 1000, 3)
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i * i % 97))
	}
	h.Observe(0) // below lo: first bucket
	s := h.Snapshot()
	doubled := s.Clone()
	if err := doubled.Merge(s); err != nil {
		t.Fatal(err)
	}
	if doubled.Count != 2*s.Count || doubled.Sum != 2*s.Sum {
		t.Fatalf("self-merge count/sum: %+v", doubled)
	}
	if doubled.Min != s.Min || doubled.Max != s.Max {
		t.Fatalf("self-merge min/max: %+v", doubled)
	}
	// Duplicating every observation leaves the distribution — mean and
	// quantiles — unchanged.
	if doubled.Mean != s.Mean || doubled.P50 != s.P50 || doubled.P95 != s.P95 || doubled.P99 != s.P99 {
		t.Fatalf("self-merge moved the order statistics:\n%+v\n%+v", doubled, s)
	}
	// And the source must be untouched (Clone isolated the vectors).
	if !reflect.DeepEqual(s, h.Snapshot()) {
		t.Fatal("self-merge mutated the source summary")
	}
}

func TestHistogramMergeSaturatedOverflow(t *testing.T) {
	overflow := func(s Summary) int64 { return s.Count - s.Buckets[len(s.Buckets)-1].N }
	h1 := NewLogHistogram(1, 100, 3)
	h2 := NewLogHistogram(1, 100, 3)
	for i := 0; i < 10; i++ {
		h1.Observe(1e6) // far above hi: overflow bucket
		h2.Observe(1e7)
	}
	h2.Observe(5) // one in-range observation
	s1, s2 := h1.Snapshot(), h2.Snapshot()
	if overflow(s1) != 10 || overflow(s2) != 10 {
		t.Fatalf("overflow counts before merge: %d, %d", overflow(s1), overflow(s2))
	}
	if err := s1.Merge(s2); err != nil {
		t.Fatal(err)
	}
	if s1.Count != 21 || overflow(s1) != 20 {
		t.Fatalf("merged overflow: count %d overflow %d, want 21/20", s1.Count, overflow(s1))
	}
	if s1.Max != 1e7 || s1.Min != 5 {
		t.Fatalf("merged min/max: %+v", s1)
	}
	// A quantile landing in the overflow bucket has only one honest
	// answer: the tracked Max.
	if q := s1.Quantile(0.99); q != s1.Max {
		t.Fatalf("overflow quantile %g, want Max %g", q, s1.Max)
	}
}

// --- Trace-ring wraparound ordering ---------------------------------------

func TestTraceRingWraparoundOrdering(t *testing.T) {
	r := NewTraceRecorder("s1", 8)
	for f := int64(0); f < 20; f++ {
		r.Span(f, "fuse", "fuse", sim.Time(f)*sim.Millisecond, sim.Time(f)*sim.Millisecond+sim.Microsecond)
	}
	got := r.Spans(0)
	if len(got) != 8 {
		t.Fatalf("retained %d spans, want ring capacity 8", len(got))
	}
	// After wrapping twice, the snapshot must come back in recording
	// order — oldest retained first — not in raw ring-slot order.
	for i, s := range got {
		if want := int64(12 + i); s.Frame != want {
			t.Fatalf("span %d is frame %d, want %d (order: %v)", i, s.Frame, want, frames(got))
		}
	}
	for i := 1; i < len(got); i++ {
		if got[i].Start < got[i-1].Start {
			t.Fatalf("start times regress at %d: %v", i, frames(got))
		}
	}
}

func frames(spans []TraceSpan) []int64 {
	out := make([]int64, len(spans))
	for i, s := range spans {
		out[i] = s.Frame
	}
	return out
}

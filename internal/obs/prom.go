package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Label is one Prometheus label pair.
type Label struct {
	K, V string
}

// Prom encodes metric families in the Prometheus text exposition format
// (version 0.0.4) with no dependency beyond the standard library. Callers
// declare a family (HELP/TYPE header) and then emit its samples; the
// encoder escapes label values, formats floats deterministically, and
// flags duplicate series and malformed names so the farm's exporter can be
// linted by construction.
//
// Usage:
//
//	p := obs.NewProm(w)
//	p.Family("farm_fused_total", "counter", "Fused frames.")
//	p.Sample(nil, 12, obs.Label{K: "stream", V: "s1"})
//	err := p.Flush()
type Prom struct {
	w      *bufio.Writer
	family string
	seen   map[string]struct{}
	err    error
}

// NewProm returns an encoder writing to w.
func NewProm(w io.Writer) *Prom {
	return &Prom{w: bufio.NewWriter(w), seen: make(map[string]struct{})}
}

// Family opens a new metric family, emitting its # HELP and # TYPE lines.
// typ is one of "counter", "gauge", "histogram", "untyped".
func (p *Prom) Family(name, typ, help string) {
	if !validMetricName(name) {
		p.fail(fmt.Errorf("obs: bad metric name %q", name))
		return
	}
	switch typ {
	case "counter", "gauge", "histogram", "untyped":
	default:
		p.fail(fmt.Errorf("obs: bad metric type %q for %s", typ, name))
		return
	}
	if _, dup := p.seen["#"+name]; dup {
		p.fail(fmt.Errorf("obs: family %s declared twice", name))
		return
	}
	p.seen["#"+name] = struct{}{}
	p.family = name
	fmt.Fprintf(p.w, "# HELP %s %s\n", name, escapeHelp(help))
	fmt.Fprintf(p.w, "# TYPE %s %s\n", name, typ)
}

// Sample emits one sample of the open family. suffix is appended to the
// family name ("" for plain counters and gauges, "_bucket"/"_sum"/"_count"
// for histogram series).
func (p *Prom) Sample(suffix string, v float64, labels ...Label) {
	if p.err != nil {
		return
	}
	if p.family == "" {
		p.fail(fmt.Errorf("obs: Sample before Family"))
		return
	}
	name := p.family + suffix
	var b strings.Builder
	b.WriteString(name)
	if len(labels) > 0 {
		b.WriteByte('{')
		for i, l := range labels {
			if !validLabelName(l.K) {
				p.fail(fmt.Errorf("obs: bad label name %q on %s", l.K, name))
				return
			}
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(l.K)
			b.WriteString(`="`)
			b.WriteString(escapeLabel(l.V))
			b.WriteByte('"')
		}
		b.WriteByte('}')
	}
	series := b.String()
	if _, dup := p.seen[series]; dup {
		p.fail(fmt.Errorf("obs: duplicate series %s", series))
		return
	}
	p.seen[series] = struct{}{}
	fmt.Fprintf(p.w, "%s %s\n", series, formatValue(v))
}

// Histogram emits a Summary as a native Prometheus histogram of the open
// family: every cumulative bucket, the +Inf bucket, _sum and _count.
func (p *Prom) Histogram(s Summary, labels ...Label) {
	le := make([]Label, len(labels)+1)
	copy(le, labels)
	for _, b := range s.Buckets {
		le[len(labels)] = Label{K: "le", V: strconv.FormatFloat(b.LE, 'g', -1, 64)}
		p.Sample("_bucket", float64(b.N), le...)
	}
	le[len(labels)] = Label{K: "le", V: "+Inf"}
	p.Sample("_bucket", float64(s.Count), le...)
	p.Sample("_sum", s.Sum, labels...)
	p.Sample("_count", float64(s.Count), labels...)
}

// Flush writes out buffered text and reports the first encoding error
// (malformed name, duplicate series), if any.
func (p *Prom) Flush() error {
	if err := p.w.Flush(); err != nil && p.err == nil {
		p.err = err
	}
	return p.err
}

func (p *Prom) fail(err error) {
	if p.err == nil {
		p.err = err
	}
}

// formatValue renders a sample value the way Prometheus clients do:
// shortest round-trip representation, so integers stay integral.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || r == '_' || r == ':'
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" || strings.HasPrefix(s, "__") {
		return false
	}
	for i, r := range s {
		alpha := (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || r == '_'
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}

package slo

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"zynqfusion/internal/sim"
)

// --- Sliding windows ------------------------------------------------------

func TestWindowRotation(t *testing.T) {
	w := window{sub: 10}
	w.add(5, 1, 0) // bucket 0
	if w.sumGood != 1 || w.sumBad != 0 {
		t.Fatalf("after first add: good %d bad %d", w.sumGood, w.sumBad)
	}
	w.add(145, 0, 1) // bucket 14: same window, nothing evicted
	if w.sumGood != 1 || w.sumBad != 1 {
		t.Fatalf("full window: good %d bad %d", w.sumGood, w.sumBad)
	}
	// Bucket 15 wraps onto slot 0, evicting the first add: the new good
	// replaces the old one instead of accumulating to 2.
	w.add(155, 1, 0)
	if w.sumGood != 1 || w.sumBad != 1 {
		t.Fatalf("after eviction: good %d bad %d (want 1, 1)", w.sumGood, w.sumBad)
	}
}

func TestWindowGapReset(t *testing.T) {
	w := window{sub: 10}
	for i := 0; i < 10; i++ {
		w.add(sim.Time(i*10), 1, 1)
	}
	// A gap of >= the whole window span empties it.
	w.add(100000, 1, 0)
	if w.sumGood != 1 || w.sumBad != 0 {
		t.Fatalf("after gap reset: good %d bad %d (want 1, 0)", w.sumGood, w.sumBad)
	}
}

func TestWindowBurn(t *testing.T) {
	w := window{sub: 10}
	w.add(0, 1, 1)
	if b := w.burn(0.1, 12); b != 0 {
		t.Fatalf("burn below minEvents: %g, want 0", b)
	}
	for i := 0; i < 5; i++ {
		w.add(sim.Time(i), 1, 1)
	}
	// 12 events, half bad, 10% budget: burn 5x.
	if b := w.burn(0.1, 12); b != 5 {
		t.Fatalf("burn %g, want 5", b)
	}
}

// --- Tracker: alert state machine ----------------------------------------

// feedTracker drives n frames through a fresh latency tracker, each
// latency ms late or on time, spaced period apart, and returns every
// transition.
func feedTracker(t *testing.T, n int, late func(i int) bool) (*Tracker, []Transition) {
	t.Helper()
	// Objective 0.99: an all-bad stretch burns at 100x, far past both
	// thresholds. Scale 1e-9 turns the 5m window into 300ns of modeled
	// time; frames every 1ns put ~300 frames in the fast window.
	tr := NewTracker(SLO{LatencyBoundMS: 10, LatencyObjective: 0.99}, 1e-9, 0)
	var edges []Transition
	for i := 0; i < n; i++ {
		lat := 5.0
		if late(i) {
			lat = 50
		}
		o := FrameObs{Now: sim.Time(i+1) * sim.Nanosecond, LatencyMS: lat}
		for _, e := range tr.Observe(o) {
			edges = append(edges, e)
		}
	}
	return tr, edges
}

func TestTrackerFireAndClear(t *testing.T) {
	// 20 bad frames, then good forever: the page fires once both windows
	// hold DefaultMinEvents, and clears once the fast 5m window (300
	// frames) dilutes below threshold.
	tr, edges := feedTracker(t, 1000, func(i int) bool { return i < 20 })
	var fired, cleared []Transition
	for _, e := range edges {
		if e.Firing {
			fired = append(fired, e)
		} else {
			cleared = append(cleared, e)
		}
	}
	if len(fired) < 2 { // page and ticket
		t.Fatalf("fired %d alerts, want page and ticket: %+v", len(fired), edges)
	}
	for _, e := range fired {
		if e.SLI != SLILatency {
			t.Fatalf("fired on SLI %q", e.SLI)
		}
		if e.Burn < TicketBurn {
			t.Fatalf("fired with limiting burn %g below any threshold", e.Burn)
		}
	}
	if len(cleared) != len(fired) {
		t.Fatalf("%d fires but %d clears", len(fired), len(cleared))
	}
	if tr.PageActive() {
		t.Fatal("page still active after 980 good frames")
	}
	st := tr.Status()
	if st.SLIs[0].Alerts[0].Fired != 1 || st.SLIs[0].Alerts[0].Cleared != 1 {
		t.Fatalf("page fired/cleared counters: %+v", st.SLIs[0].Alerts[0])
	}
}

func TestTrackerNeverFiresOnGood(t *testing.T) {
	tr, edges := feedTracker(t, 500, func(int) bool { return false })
	if len(edges) != 0 {
		t.Fatalf("clean stream produced transitions: %+v", edges)
	}
	if h := tr.Health(); h != 100 {
		t.Fatalf("clean health %g, want 100", h)
	}
}

func TestTrackerDeterminism(t *testing.T) {
	late := func(i int) bool { return i%7 < 3 && i > 40 }
	t1, e1 := feedTracker(t, 2000, late)
	t2, e2 := feedTracker(t, 2000, late)
	if !reflect.DeepEqual(e1, e2) {
		t.Fatal("identical feeds produced different transition sequences")
	}
	if !reflect.DeepEqual(t1.Status(), t2.Status()) {
		t.Fatal("identical feeds produced different final status")
	}
}

func TestHealthCaps(t *testing.T) {
	// A short bad burst against a long good history leaves the cumulative
	// budget looking healthy — the active page must cap the score anyway.
	tr := NewTracker(SLO{LatencyBoundMS: 10}, 1e-9, 0)
	for i := 0; i < 100000; i++ {
		tr.Observe(FrameObs{Now: sim.Time(i+1) * sim.Nanosecond, LatencyMS: 1})
	}
	// Enough bad frames to push the slow 1h window (~3600 frames at this
	// spacing) past the page threshold too.
	base := sim.Time(100000) * sim.Nanosecond
	for i := 0; i < 700; i++ {
		tr.Observe(FrameObs{Now: base + sim.Time(i+1)*sim.Nanosecond, LatencyMS: 50})
	}
	if !tr.PageActive() {
		t.Fatal("page not active after 700 bad frames")
	}
	if h := tr.Health(); h > 25 {
		t.Fatalf("health %g while paging, cap is 25", h)
	}
}

func TestTrackerDropsAndDeadline(t *testing.T) {
	tr := NewTracker(SLO{DeadlineHitRatio: 0.9, MaxDropRate: 0.5}, 1e-9, 0)
	// Frames without a deadline record skip the deadline SLI entirely.
	tr.Observe(FrameObs{Now: sim.Microsecond, Dropped: 3})
	st := tr.Status()
	if st.SLIs[0].Name != SLIDeadline || st.SLIs[0].Good+st.SLIs[0].Bad != 0 {
		t.Fatalf("deadline SLI scored a deadline-free frame: %+v", st.SLIs[0])
	}
	if st.SLIs[1].Name != SLIDrops || st.SLIs[1].Good != 1 || st.SLIs[1].Bad != 3 {
		t.Fatalf("drop SLI: %+v", st.SLIs[1])
	}
	tr.Observe(FrameObs{Now: 2 * sim.Microsecond, HasDeadline: true, DeadlineMet: true})
	if st = tr.Status(); st.SLIs[0].Good != 1 {
		t.Fatalf("deadline SLI after met frame: %+v", st.SLIs[0])
	}
}

// --- Declarations and rules ----------------------------------------------

func TestSLOValidate(t *testing.T) {
	bad := []SLO{
		{LatencyBoundMS: 10, LatencyObjective: 1},  // no error budget
		{LatencyBoundMS: 10, LatencyObjective: -1}, // out of range
		{LatencyObjective: 0.99},                   // objective without bound
		{EnergyObjective: 0.9},                     // objective without budget
		{DeadlineHitRatio: 1.5},                    // out of range
		{MaxDropRate: 1},                           // no budget
		{LatencyBoundMS: -5},                       // negative bound
		{LatencyBoundMS: 10, WindowScale: -1},      // negative scale
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: %+v validated", i, s)
		}
	}
	good := SLO{LatencyBoundMS: 120, DeadlineHitRatio: 0.95, EnergyPerFrameMJ: 40, MaxDropRate: 0.05}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid declaration rejected: %v", err)
	}
	if !good.Enabled() || (SLO{}).Enabled() {
		t.Fatal("Enabled misreports")
	}
}

func TestRulesFor(t *testing.T) {
	r := &Rules{
		Default: &SLO{LatencyBoundMS: 100},
		Streams: map[string]SLO{"cam1": {EnergyPerFrameMJ: 40}},
	}
	if s, ok := r.For("cam1"); !ok || s.EnergyPerFrameMJ != 40 || s.LatencyBoundMS != 0 {
		t.Fatalf("per-stream entry did not win: %+v ok=%v", s, ok)
	}
	if s, ok := r.For("other"); !ok || s.LatencyBoundMS != 100 {
		t.Fatalf("default did not apply: %+v ok=%v", s, ok)
	}
	if _, ok := (&Rules{}).For("x"); ok {
		t.Fatal("empty rules resolved an SLO")
	}
	var nilRules *Rules
	if _, ok := nilRules.For("x"); ok {
		t.Fatal("nil rules resolved an SLO")
	}
	if sc := nilRules.Scale(SLO{}); sc != 1 {
		t.Fatalf("nil rules scale %g, want 1", sc)
	}
	if sc := (&Rules{WindowScale: 0.01}).Scale(SLO{WindowScale: 0.5}); sc != 0.5 {
		t.Fatalf("SLO scale did not win: %g", sc)
	}
}

func TestLoadRules(t *testing.T) {
	dir := t.TempDir()
	write := func(name, body string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	r, err := LoadRules(write("ok.json", `{
		"window_scale": 0.001,
		"default": {"p99_latency_ms": 120, "deadline_hit_ratio": 0.95},
		"streams": {"s3": {"energy_per_frame_mj": 40, "energy_objective": 0.9}}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if s, ok := r.For("s3"); !ok || s.EnergyPerFrameMJ != 40 {
		t.Fatalf("round trip lost the stream entry: %+v", s)
	}
	if _, err := LoadRules(write("typo.json", `{"default": {"p99_latency": 120}}`)); err == nil ||
		!strings.Contains(err.Error(), "unknown field") {
		t.Fatalf("typo'd field accepted: %v", err)
	}
	if _, err := LoadRules(write("bad.json", `{"default": {"p99_latency_ms": 120, "latency_objective": 1.0}}`)); err == nil {
		t.Fatal("objective of 1 accepted")
	}
	if _, err := LoadRules(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}

// --- Controller -----------------------------------------------------------

// fakeAct is a scripted actuator: each rung applies until its capacity is
// spent, and records the order of applies and reverts.
type fakeAct struct {
	caps  map[Action]int
	level map[Action]int
	log   []string
}

func (f *fakeAct) ApplyAction(a Action) bool {
	if f.level[a] >= f.caps[a] {
		return false
	}
	f.level[a]++
	f.log = append(f.log, "+"+string(a))
	return true
}

func (f *fakeAct) RevertAction(a Action) bool {
	if f.level[a] == 0 {
		return false
	}
	f.level[a]--
	f.log = append(f.log, "-"+string(a))
	return true
}

func newFakeAct(demote, down, shrink, shed int) *fakeAct {
	return &fakeAct{
		caps: map[Action]int{
			ActionDemoteDepth: demote, ActionDownclock: down,
			ActionShrinkQueue: shrink, ActionShed: shed,
		},
		level: map[Action]int{},
	}
}

func TestControllerLadder(t *testing.T) {
	fa := newFakeAct(2, 1, 1, 1)
	c := NewController(fa, 100)
	tick := func(now sim.Time, burning, timeSLI bool) (Action, bool, bool) {
		return c.Tick(now, burning, timeSLI)
	}
	if _, _, ok := tick(50, true, true); ok {
		t.Fatal("escalated before the hold elapsed")
	}
	// Burning on a time SLI: demote twice (the rung repeats), skip the
	// down-clock, shrink, shed.
	for i, want := range []Action{ActionDemoteDepth, ActionDemoteDepth, ActionShrinkQueue, ActionShed} {
		a, esc, ok := tick(sim.Time(100*(i+1)), true, true)
		if !ok || !esc || a != want {
			t.Fatalf("escalation %d: got %q esc=%v ok=%v, want %q", i, a, esc, ok, want)
		}
	}
	if _, _, ok := tick(1000, true, true); ok {
		t.Fatal("escalated past an exhausted ladder")
	}
	if c.Stage() != 4 {
		t.Fatalf("stage %d, want 4", c.Stage())
	}
	// Clear: restores pop in reverse order, one per recovery interval
	// (4x the hold).
	if _, _, ok := tick(500, false, false); ok {
		t.Fatal("restored before the recovery interval")
	}
	now := sim.Time(400)
	for i, want := range []Action{ActionShed, ActionShrinkQueue, ActionDemoteDepth, ActionDemoteDepth} {
		now += 400
		a, esc, ok := tick(now, false, false)
		if !ok || esc || a != want {
			t.Fatalf("restore %d: got %q esc=%v ok=%v, want %q", i, a, esc, ok, want)
		}
	}
	if c.Stage() != 0 {
		t.Fatalf("stage %d after full recovery, want 0", c.Stage())
	}
	// Recovered capacity is re-degradable: the ladder scans from the top
	// again.
	a, _, ok := tick(now+400, true, true)
	if !ok || a != ActionDemoteDepth {
		t.Fatalf("re-escalation got %q ok=%v, want demote", a, ok)
	}
}

func TestControllerDownclockOnEnergyBurn(t *testing.T) {
	fa := newFakeAct(0, 2, 0, 0)
	c := NewController(fa, 100)
	// Not a time SLI: the down-clock rung is the first applicable one.
	a, _, ok := c.Tick(100, true, false)
	if !ok || a != ActionDownclock {
		t.Fatalf("got %q ok=%v, want downclock", a, ok)
	}
	// A time SLI burn never down-clocks, even as the only rung left.
	if _, _, ok := c.Tick(200, true, true); ok {
		t.Fatal("down-clocked on a latency burn")
	}
}

func TestEscalationHold(t *testing.T) {
	if h := EscalationHold(1); h != 300*sim.Second {
		t.Fatalf("unit-scale hold %v", h)
	}
	if h := EscalationHold(0.001); h != 300*sim.Millisecond {
		t.Fatalf("scaled hold %v", h)
	}
}

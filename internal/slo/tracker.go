package slo

import (
	"sync"

	"zynqfusion/internal/sim"
)

// winBuckets is the ring-bucket count of each sliding window: the window
// span is covered by 15 sub-buckets, so the effective span wobbles by at
// most 1/15 as buckets rotate — plenty for burn-rate thresholds an order
// of magnitude apart.
const winBuckets = 15

// The four canonical alert windows. Pairs: (0,1) pages, (2,3) tickets;
// the even index is the fast window of its pair. Spans are scaled into
// modeled time by the tracker's WindowScale.
var windows = [4]struct {
	name string
	span sim.Time
}{
	{"5m", 300 * sim.Second},
	{"1h", 3600 * sim.Second},
	{"30m", 1800 * sim.Second},
	{"6h", 21600 * sim.Second},
}

// severity i (0 = page, 1 = ticket) reads windows[2i] and windows[2i+1]
// against burns[i].
var burns = [2]float64{PageBurn, TicketBurn}
var severities = [2]string{SevPage, SevTicket}

// window is one sliding good/bad counter over modeled time, bucketed on
// absolute sub-spans of the timeline so rotation is O(1) amortized and
// allocation-free.
type window struct {
	sub     sim.Time // bucket span = window span / winBuckets
	lastIdx int64    // absolute bucket index of the most recent add
	good    [winBuckets]int64
	bad     [winBuckets]int64
	sumGood int64
	sumBad  int64
}

func (w *window) add(now sim.Time, good, bad int64) {
	idx := int64(now / w.sub)
	if idx > w.lastIdx {
		if idx-w.lastIdx >= winBuckets {
			// The whole window elapsed since the last event.
			w.good = [winBuckets]int64{}
			w.bad = [winBuckets]int64{}
			w.sumGood, w.sumBad = 0, 0
		} else {
			for i := w.lastIdx + 1; i <= idx; i++ {
				slot := int(i % winBuckets)
				w.sumGood -= w.good[slot]
				w.sumBad -= w.bad[slot]
				w.good[slot], w.bad[slot] = 0, 0
			}
		}
		w.lastIdx = idx
	}
	slot := int(idx % winBuckets)
	w.good[slot] += good
	w.bad[slot] += bad
	w.sumGood += good
	w.sumBad += bad
}

// burn is the window's error-budget burn rate: the observed bad fraction
// over the sustainable bad fraction (1 - objective). Zero until the
// window holds minEvents — a handful of frames cannot establish a burn.
func (w *window) burn(budgetFrac float64, minEvents int64) float64 {
	total := w.sumGood + w.sumBad
	if total < minEvents || total <= 0 {
		return 0
	}
	return (float64(w.sumBad) / float64(total)) / budgetFrac
}

// alert is one severity's state on one SLI.
type alert struct {
	active  bool
	since   sim.Time
	fired   int64
	cleared int64
}

// sli is one objective's full evaluation state.
type sli struct {
	name       string
	objective  float64 // target good fraction in (0,1)
	bound      float64 // numeric threshold (ms or mJ), 0 when ratio-only
	budgetFrac float64 // 1 - objective
	windows    [4]window
	cumGood    int64
	cumBad     int64
	alerts     [2]alert
}

func newSLI(name string, objective, bound, scale float64) *sli {
	s := &sli{name: name, objective: objective, bound: bound, budgetFrac: 1 - objective}
	for i := range s.windows {
		sub := sim.Time(float64(windows[i].span)*scale) / winBuckets
		if sub < 1 {
			sub = 1
		}
		s.windows[i].sub = sub
	}
	return s
}

// budgetRemaining is the cumulative error-budget balance: 1 with a clean
// record, 0 when the observed bad fraction equals the budget, negative
// once overspent.
func (s *sli) budgetRemaining() float64 {
	total := s.cumGood + s.cumBad
	if total == 0 {
		return 1
	}
	badFrac := float64(s.cumBad) / float64(total)
	return 1 - badFrac/s.budgetFrac
}

// FrameObs is one fused frame's SLO-relevant record, all in modeled
// units.
type FrameObs struct {
	// Now is the stream's modeled period clock after this frame (busy
	// time plus idled-out deadline slack): the timeline the sliding
	// windows rotate on.
	Now sim.Time
	// LatencyMS is the frame's end-to-end modeled latency.
	LatencyMS float64
	// EnergyMJ is the frame's modeled energy.
	EnergyMJ float64
	// HasDeadline gates the deadline SLI; DeadlineMet reports whether the
	// frame's latency beat the stream deadline.
	HasDeadline bool
	DeadlineMet bool
	// Dropped is the number of capture pairs dropped since the previous
	// observation.
	Dropped int64
}

// Transition is one alert edge produced by an observation.
type Transition struct {
	SLI      string
	Severity string
	Firing   bool // true = fired, false = cleared
	// Burn is the limiting (smaller) of the pair's two window burn rates
	// at the edge.
	Burn float64
	At   sim.Time
}

// Tracker evaluates one stream's SLO. Observe is allocation-free in
// steady state and everything is keyed to modeled time, so identical
// workloads produce identical transition sequences. Safe for concurrent
// use; the lock is a leaf.
type Tracker struct {
	mu        sync.Mutex
	decl      SLO
	scale     float64
	minEvents int64
	slis      []*sli
	scratch   [8]Transition // max one edge per SLI x severity per frame
}

// NewTracker builds the evaluation state for a declaration. scale <= 0
// means 1; minEvents <= 0 selects DefaultMinEvents.
func NewTracker(decl SLO, scale float64, minEvents int64) *Tracker {
	if scale <= 0 {
		scale = 1
	}
	if minEvents <= 0 {
		minEvents = DefaultMinEvents
	}
	t := &Tracker{decl: decl, scale: scale, minEvents: minEvents}
	if decl.LatencyBoundMS > 0 {
		obj := decl.LatencyObjective
		if obj == 0 {
			obj = DefaultLatencyObjective
		}
		t.slis = append(t.slis, newSLI(SLILatency, obj, decl.LatencyBoundMS, scale))
	}
	if decl.DeadlineHitRatio > 0 {
		t.slis = append(t.slis, newSLI(SLIDeadline, decl.DeadlineHitRatio, 0, scale))
	}
	if decl.EnergyPerFrameMJ > 0 {
		obj := decl.EnergyObjective
		if obj == 0 {
			obj = DefaultEnergyObjective
		}
		t.slis = append(t.slis, newSLI(SLIEnergy, obj, decl.EnergyPerFrameMJ, scale))
	}
	if decl.MaxDropRate > 0 {
		t.slis = append(t.slis, newSLI(SLIDrops, 1-decl.MaxDropRate, 0, scale))
	}
	return t
}

// Observe scores one frame against every declared SLI, advances the
// sliding windows and alert state machines, and returns the alert edges
// this frame caused. The returned slice aliases an internal scratch
// buffer valid until the next Observe.
func (t *Tracker) Observe(o FrameObs) []Transition {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, s := range t.slis {
		var good, bad int64
		switch s.name {
		case SLILatency:
			if o.LatencyMS <= s.bound {
				good = 1
			} else {
				bad = 1
			}
		case SLIDeadline:
			if !o.HasDeadline {
				continue
			}
			if o.DeadlineMet {
				good = 1
			} else {
				bad = 1
			}
		case SLIEnergy:
			if o.EnergyMJ <= s.bound {
				good = 1
			} else {
				bad = 1
			}
		case SLIDrops:
			good, bad = 1, o.Dropped
		}
		s.cumGood += good
		s.cumBad += bad
		for i := range s.windows {
			s.windows[i].add(o.Now, good, bad)
		}
		for sev := range s.alerts {
			fast := s.windows[2*sev].burn(s.budgetFrac, t.minEvents)
			slow := s.windows[2*sev+1].burn(s.budgetFrac, t.minEvents)
			limiting := fast
			if slow < limiting {
				limiting = slow
			}
			firing := limiting >= burns[sev]
			a := &s.alerts[sev]
			if firing == a.active {
				continue
			}
			a.active = firing
			if firing {
				a.since = o.Now
				a.fired++
			} else {
				a.since = 0
				a.cleared++
			}
			t.scratch[n] = Transition{
				SLI: s.name, Severity: severities[sev],
				Firing: firing, Burn: limiting, At: o.Now,
			}
			n++
		}
	}
	return t.scratch[:n]
}

// PageActive reports whether any SLI's page alert is firing.
func (t *Tracker) PageActive() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, s := range t.slis {
		if s.alerts[0].active {
			return true
		}
	}
	return false
}

// Burning returns the first SLI (in declaration-priority order) with an
// active page alert; ok is false when none burns.
func (t *Tracker) Burning() (name string, ok bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, s := range t.slis {
		if s.alerts[0].active {
			return s.name, true
		}
	}
	return "", false
}

// Health is the stream's composite 0-100 score: 100 x the mean clamped
// cumulative budget remaining across SLIs, capped at 50 while a ticket
// burns and at 25 while a page burns (an actively-burning stream cannot
// report near-perfect health off an intact long-term budget).
func (t *Tracker) Health() float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.healthLocked()
}

func (t *Tracker) healthLocked() float64 {
	if len(t.slis) == 0 {
		return 100
	}
	var sum float64
	page, ticket := false, false
	for _, s := range t.slis {
		rem := s.budgetRemaining()
		if rem < 0 {
			rem = 0
		} else if rem > 1 {
			rem = 1
		}
		sum += rem
		page = page || s.alerts[0].active
		ticket = ticket || s.alerts[1].active
	}
	h := 100 * sum / float64(len(t.slis))
	switch {
	case page && h > 25:
		h = 25
	case ticket && h > 50:
		h = 50
	}
	return h
}

// WindowStatus is one sliding window's snapshot.
type WindowStatus struct {
	Window string   `json:"window"` // canonical name: 5m, 1h, 30m, 6h
	SpanPS sim.Time `json:"span_ps"`
	Good   int64    `json:"good"`
	Bad    int64    `json:"bad"`
	Burn   float64  `json:"burn_rate"`
}

// AlertStatus is one severity's snapshot on one SLI.
type AlertStatus struct {
	Severity  string   `json:"severity"`
	Threshold float64  `json:"burn_threshold"`
	Active    bool     `json:"active"`
	SincePS   sim.Time `json:"since_ps,omitempty"`
	Fired     int64    `json:"fired_total"`
	Cleared   int64    `json:"cleared_total"`
}

// SLIStatus is one objective's snapshot.
type SLIStatus struct {
	Name      string  `json:"sli"`
	Objective float64 `json:"objective"`
	// Bound is the numeric threshold (ms for latency, mJ for energy);
	// zero for the ratio-only SLIs.
	Bound     float64 `json:"bound,omitempty"`
	Good      int64   `json:"good_total"`
	Bad       int64   `json:"bad_total"`
	GoodRatio float64 `json:"good_ratio"`
	// BudgetRemaining is the cumulative error-budget balance: 1 clean, 0
	// exactly spent, negative overspent.
	BudgetRemaining float64        `json:"budget_remaining"`
	Windows         []WindowStatus `json:"windows"`
	Alerts          []AlertStatus  `json:"alerts"`
}

// Status is a stream's full SLO snapshot, served by GET /slo.
type Status struct {
	Health       float64     `json:"health"`
	PageActive   bool        `json:"page_active"`
	TicketActive bool        `json:"ticket_active"`
	SLIs         []SLIStatus `json:"slis"`
}

// Status snapshots the tracker. Scrape-path only: it allocates.
func (t *Tracker) Status() Status {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := Status{Health: t.healthLocked(), SLIs: make([]SLIStatus, 0, len(t.slis))}
	for _, s := range t.slis {
		si := SLIStatus{
			Name:            s.name,
			Objective:       s.objective,
			Bound:           s.bound,
			Good:            s.cumGood,
			Bad:             s.cumBad,
			GoodRatio:       1,
			BudgetRemaining: s.budgetRemaining(),
			Windows:         make([]WindowStatus, 0, len(s.windows)),
			Alerts:          make([]AlertStatus, 0, len(s.alerts)),
		}
		if total := s.cumGood + s.cumBad; total > 0 {
			si.GoodRatio = float64(s.cumGood) / float64(total)
		}
		for i := range s.windows {
			w := &s.windows[i]
			si.Windows = append(si.Windows, WindowStatus{
				Window: windows[i].name,
				SpanPS: w.sub * winBuckets,
				Good:   w.sumGood,
				Bad:    w.sumBad,
				Burn:   w.burn(s.budgetFrac, t.minEvents),
			})
		}
		for sev := range s.alerts {
			a := &s.alerts[sev]
			si.Alerts = append(si.Alerts, AlertStatus{
				Severity:  severities[sev],
				Threshold: burns[sev],
				Active:    a.active,
				SincePS:   a.since,
				Fired:     a.fired,
				Cleared:   a.cleared,
			})
			if a.active {
				if sev == 0 {
					st.PageActive = true
				} else {
					st.TicketActive = true
				}
			}
		}
		st.SLIs = append(st.SLIs, si)
	}
	return st
}

// Package slo is the farm's closed-loop service-level-objective engine.
//
// Streams declare objectives (a latency bound, a deadline-hit ratio, an
// energy-per-frame budget, a drop-rate cap); every fused frame is scored
// good or bad against each declared objective and fed into sliding
// windows over the stream's *modeled* timeline. Alerting follows the
// Google SRE multi-window multi-burn-rate recipe: a page fires while both
// a fast (5m) and a slow (1h) window burn error budget at >= 14.4x the
// sustainable rate, a ticket while both a 30m and a 6h window burn at
// >= 6x. The canonical window spans are scaled into modeled time by
// WindowScale so a bench-sized run exercises the same machinery a
// long-lived service would. A cumulative error-budget account per
// objective rolls up into a composite 0-100 health score, and a staged
// degradation Controller closes the loop: while a page burns, the stream
// is demoted one rung at a time (pipeline-depth demotion, DVFS
// down-clock, queue shrink, load shedding) until the budget stops
// burning, then restored rung by rung once the alerts clear.
//
// Everything operates on modeled time and modeled per-frame figures, so
// an identical workload produces an identical alert fire/clear sequence
// and identical final health scores, run after run.
package slo

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
)

// SLI names, in evaluation (and degradation-priority) order.
const (
	// SLILatency scores each frame's end-to-end latency against
	// LatencyBoundMS.
	SLILatency = "latency"
	// SLIDeadline scores each frame's end-to-end latency against the
	// stream's DeadlineMS. Note this is deliberately latency-based — a
	// pipelined stream's executor checks its *period* against the
	// deadline (a throughput deadline), while the SLO asks whether the
	// frame itself was delivered in time, which is what depth demotion
	// can actually recover.
	SLIDeadline = "deadline"
	// SLIEnergy scores each frame's modeled energy against
	// EnergyPerFrameMJ.
	SLIEnergy = "energy"
	// SLIDrops scores capture drops against fused frames: every drop is a
	// bad event, every fused frame a good one, so the bad fraction is the
	// stream's drop rate.
	SLIDrops = "drops"
)

// Alert severities.
const (
	// SevPage is the fast-burn pair: 5m and 1h windows at >= 14.4x burn.
	SevPage = "page"
	// SevTicket is the slow-burn pair: 30m and 6h windows at >= 6x burn.
	SevTicket = "ticket"
)

// Burn-rate thresholds of the two severity pairs (the canonical SRE
// workbook values: 14.4x spends 2% of a 30-day budget in an hour, 6x
// spends 5% in six hours).
const (
	PageBurn   = 14.4
	TicketBurn = 6.0
)

// DefaultMinEvents is the per-window event floor below which a burn rate
// reads as zero: a window holding a handful of frames cannot distinguish
// a burn from startup noise.
const DefaultMinEvents = 12

// SLO declares one stream's objectives. Zero-valued fields disable their
// SLI, so a stream can declare any subset.
type SLO struct {
	// LatencyBoundMS enables the latency SLI: a frame whose end-to-end
	// modeled latency exceeds the bound is a bad event.
	LatencyBoundMS float64 `json:"p99_latency_ms,omitempty"`
	// LatencyObjective is the target good fraction for the latency SLI
	// (default 0.99 — the bound is a p99 bound).
	LatencyObjective float64 `json:"latency_objective,omitempty"`

	// DeadlineHitRatio enables the deadline SLI: the target fraction of
	// frames delivered within the stream's DeadlineMS (which must be
	// configured on the stream).
	DeadlineHitRatio float64 `json:"deadline_hit_ratio,omitempty"`

	// EnergyPerFrameMJ enables the energy SLI: a frame whose modeled
	// energy exceeds the budget is a bad event.
	EnergyPerFrameMJ float64 `json:"energy_per_frame_mj,omitempty"`
	// EnergyObjective is the target good fraction for the energy SLI
	// (default 0.95).
	EnergyObjective float64 `json:"energy_objective,omitempty"`

	// MaxDropRate enables the drop SLI: the tolerated fraction of capture
	// pairs dropped instead of fused (the objective is 1 - MaxDropRate).
	MaxDropRate float64 `json:"max_drop_rate,omitempty"`

	// WindowScale shrinks the canonical 5m/30m/1h/6h alert windows into
	// modeled time (0.001 turns the 5m window into 300 modeled ms). Zero
	// inherits the Rules-level scale, or 1.
	WindowScale float64 `json:"window_scale,omitempty"`
}

// Enabled reports whether any SLI is declared.
func (s SLO) Enabled() bool {
	return s.LatencyBoundMS > 0 || s.DeadlineHitRatio > 0 ||
		s.EnergyPerFrameMJ > 0 || s.MaxDropRate > 0
}

// Validate checks the declaration. Objectives must leave a non-empty
// error budget: an objective of exactly 1 would make every bad event an
// infinite burn.
func (s SLO) Validate() error {
	if s.LatencyBoundMS < 0 {
		return fmt.Errorf("slo: negative p99_latency_ms %g", s.LatencyBoundMS)
	}
	if s.EnergyPerFrameMJ < 0 {
		return fmt.Errorf("slo: negative energy_per_frame_mj %g", s.EnergyPerFrameMJ)
	}
	if s.WindowScale < 0 {
		return fmt.Errorf("slo: negative window_scale %g", s.WindowScale)
	}
	check := func(name string, v, def float64) error {
		if v == 0 {
			v = def
		}
		if v <= 0 || v >= 1 {
			return fmt.Errorf("slo: %s must be in (0,1), got %g (1 leaves no error budget)", name, v)
		}
		return nil
	}
	if s.LatencyBoundMS > 0 {
		if err := check("latency_objective", s.LatencyObjective, DefaultLatencyObjective); err != nil {
			return err
		}
	} else if s.LatencyObjective != 0 {
		return fmt.Errorf("slo: latency_objective requires p99_latency_ms")
	}
	if s.DeadlineHitRatio != 0 {
		if err := check("deadline_hit_ratio", s.DeadlineHitRatio, 0); err != nil {
			return err
		}
	}
	if s.EnergyPerFrameMJ > 0 {
		if err := check("energy_objective", s.EnergyObjective, DefaultEnergyObjective); err != nil {
			return err
		}
	} else if s.EnergyObjective != 0 {
		return fmt.Errorf("slo: energy_objective requires energy_per_frame_mj")
	}
	if s.MaxDropRate != 0 {
		if err := check("max_drop_rate", s.MaxDropRate, 0); err != nil {
			return err
		}
	}
	return nil
}

// Default objectives for the bounded SLIs.
const (
	DefaultLatencyObjective = 0.99
	DefaultEnergyObjective  = 0.95
)

// Rules is the farm-level SLO configuration, the shape of a fusiond
// `-slo rules.json` file: a default declaration applied to every stream,
// per-stream overrides, and the closed-loop knobs.
type Rules struct {
	// WindowScale scales the canonical alert windows into modeled time
	// for every stream that does not set its own (default 1).
	WindowScale float64 `json:"window_scale,omitempty"`
	// MinEvents is the per-window event floor for burn evaluation
	// (default DefaultMinEvents).
	MinEvents int64 `json:"min_events,omitempty"`
	// Default, when set, applies to every stream without a per-stream
	// entry or a StreamConfig-level declaration.
	Default *SLO `json:"default,omitempty"`
	// Streams overrides Default by stream id.
	Streams map[string]SLO `json:"streams,omitempty"`
	// NoDegradation disables the staged degradation controller: alerts
	// still fire and score health, but burning streams are left alone.
	NoDegradation bool `json:"no_degradation,omitempty"`
	// NoAdmissionControl disables the admission gate: new streams are
	// accepted even while the farm budget is burning.
	NoAdmissionControl bool `json:"no_admission_control,omitempty"`
}

// For resolves the declaration for a stream id: the per-stream entry if
// present, else the default. ok is false when neither declares an SLI.
func (r *Rules) For(id string) (SLO, bool) {
	if r == nil {
		return SLO{}, false
	}
	if s, ok := r.Streams[id]; ok && s.Enabled() {
		return s, true
	}
	if r.Default != nil && r.Default.Enabled() {
		return *r.Default, true
	}
	return SLO{}, false
}

// Scale returns the effective window scale for a resolved declaration.
func (r *Rules) Scale(s SLO) float64 {
	if s.WindowScale > 0 {
		return s.WindowScale
	}
	if r != nil && r.WindowScale > 0 {
		return r.WindowScale
	}
	return 1
}

// Validate checks every declaration in the rule set.
func (r *Rules) Validate() error {
	if r == nil {
		return nil
	}
	if r.WindowScale < 0 {
		return fmt.Errorf("slo: negative window_scale %g", r.WindowScale)
	}
	if r.MinEvents < 0 {
		return fmt.Errorf("slo: negative min_events %d", r.MinEvents)
	}
	if r.Default != nil {
		if err := r.Default.Validate(); err != nil {
			return fmt.Errorf("default: %w", err)
		}
	}
	for id, s := range r.Streams {
		if err := s.Validate(); err != nil {
			return fmt.Errorf("stream %q: %w", id, err)
		}
	}
	return nil
}

// LoadRules reads and validates a rules.json file. Unknown fields are
// rejected so a typo'd objective cannot silently disable itself.
func LoadRules(path string) (*Rules, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("slo: %w", err)
	}
	var r Rules
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&r); err != nil {
		return nil, fmt.Errorf("slo: %s: %w", path, err)
	}
	if err := r.Validate(); err != nil {
		return nil, fmt.Errorf("slo: %s: %w", path, err)
	}
	return &r, nil
}

package slo

import "zynqfusion/internal/sim"

// Action is one degradation rung.
type Action string

const (
	// ActionDemoteDepth lowers a pipelined stream's effective depth by
	// one: less overlap, less queueing, lower end-to-end latency, at the
	// cost of throughput. Repeatable down to depth 1 (sequential).
	ActionDemoteDepth Action = "demote-depth"
	// ActionDownclock steps the stream's DVFS operating point one rung
	// below the governor's pick — the energy lever. Skipped while the
	// burning SLI is a time SLI (latency or deadline): down-clocking a
	// late stream only makes it later. Repeatable down to the slowest
	// point.
	ActionDownclock Action = "dvfs-downclock"
	// ActionShrinkQueue halves the capture-queue bound, shedding stale
	// backlog before it inflates latency further. Repeatable down to 1.
	ActionShrinkQueue Action = "queue-shrink"
	// ActionShed fuses only every second captured frame, dropping the
	// rest at admission — the last rung before giving up.
	ActionShed Action = "shed"
)

// Ladder is the escalation order. Each rung is retried (many rungs apply
// repeatedly: depth 4 demotes three times) before the controller moves to
// the next; inapplicable rungs are skipped.
var Ladder = [...]Action{ActionDemoteDepth, ActionDownclock, ActionShrinkQueue, ActionShed}

// Actuator is what a Controller degrades: the stream. Implementations
// run on the stream's consumer goroutine.
type Actuator interface {
	// ApplyAction attempts one rung, reporting whether it took effect
	// (false = inapplicable or exhausted; the ladder moves on).
	ApplyAction(a Action) bool
	// RevertAction undoes one previously applied rung.
	RevertAction(a Action) bool
}

// EscalationHold is the modeled-time pause between degradation actions at
// a window scale: the fast page window's span, so by the next decision
// the fast window is dominated by post-action frames and the burn rate
// reflects what the action bought.
func EscalationHold(scale float64) sim.Time {
	if scale <= 0 {
		scale = 1
	}
	return sim.Time(float64(windows[0].span) * scale)
}

// Controller is the staged degradation state machine of one stream. It
// is confined to the stream's consumer goroutine (Tick is called after
// each fused frame) and allocates only when an action actually applies.
type Controller struct {
	act        Actuator
	hold       sim.Time // min modeled time between escalations
	recover    sim.Time // min clear time before a rung is restored
	lastChange sim.Time
	next       int      // ladder index escalation scans from
	applied    []Action // stack of applied rungs, popped on restore
}

// NewController builds a controller over an actuator. hold <= 0 selects
// EscalationHold(1).
func NewController(act Actuator, hold sim.Time) *Controller {
	if hold <= 0 {
		hold = EscalationHold(1)
	}
	return &Controller{act: act, hold: hold, recover: 4 * hold}
}

// Tick advances the loop at modeled time now. While burning (a page
// alert is active) it escalates one rung per hold interval; once clear
// for the longer recovery interval it restores the most recent rung —
// a deliberate probe: if the restored capacity resumes the burn, the
// alert refires and the controller re-applies it. timeSLI marks the
// burning SLI as latency-shaped, which skips the down-clock rung.
// Returns the action taken, whether it was an escalation (false = a
// restore), and whether anything happened.
func (c *Controller) Tick(now sim.Time, burning, timeSLI bool) (Action, bool, bool) {
	if burning {
		if now-c.lastChange < c.hold || c.next >= len(Ladder) {
			return "", false, false
		}
		for i := c.next; i < len(Ladder); i++ {
			a := Ladder[i]
			if a == ActionDownclock && timeSLI {
				continue
			}
			if c.act.ApplyAction(a) {
				// Stay on this rung: most repeat until exhausted.
				c.next = i
				c.applied = append(c.applied, a)
				c.lastChange = now
				return a, true, true
			}
		}
		return "", false, false
	}
	if len(c.applied) == 0 || now-c.lastChange < c.recover {
		return "", false, false
	}
	a := c.applied[len(c.applied)-1]
	c.applied = c.applied[:len(c.applied)-1]
	c.act.RevertAction(a)
	for i, l := range Ladder {
		if l == a {
			if i < c.next {
				c.next = i
			}
			break
		}
	}
	c.lastChange = now
	return a, false, true
}

// Stage reports how many rungs are currently applied.
func (c *Controller) Stage() int { return len(c.applied) }

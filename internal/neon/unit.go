// Package neon emulates the ARM NEON SIMD engine the paper vectorizes for:
// 128-bit quad registers of four float32 lanes, the intrinsics used by the
// paper's kernels (Fig. 3), and a per-instruction ledger from which the
// engine layer derives Cortex-A9 NEON cycle counts.
//
// The emulation is functional (lane-exact arithmetic, so results match the
// scalar path up to float32 association) and observable (every operation
// is counted), which is what the timing model needs. It is not a
// micro-architectural pipeline simulator; stall behaviour is modeled by
// the cost weights in the engine layer.
package neon

// Float32x4 is a 128-bit quad register holding four float32 lanes,
// mirroring the float32x4_t type of arm_neon.h.
type Float32x4 [4]float32

// Float32x4x2 mirrors float32x4x2_t, the result of the de-interleaving
// vld2q load.
type Float32x4x2 struct {
	Val [2]Float32x4
}

// Counts is a snapshot of executed NEON operations by class.
type Counts struct {
	Loads      int64 // vld1q
	Loads2     int64 // vld2q (de-interleaving)
	Stores     int64 // vst1q
	Stores2    int64 // vst2q (interleaving)
	Muls       int64 // vmulq
	Mlas       int64 // vmlaq
	Adds       int64 // vaddq
	Dups       int64 // vdupq_n
	HAdds      int64 // horizontal reduction (vpadd chain)
	ScalarOps  int64 // scalar fallback arithmetic (tail loops)
	ScalarMem  int64 // scalar fallback loads/stores
	LaneOps    int64 // vgetq_lane / vsetq_lane
	KernelRows int64 // kernel invocations (for per-call overhead modeling)
}

// Add accumulates other into c.
func (c *Counts) Add(other Counts) {
	c.Loads += other.Loads
	c.Loads2 += other.Loads2
	c.Stores += other.Stores
	c.Stores2 += other.Stores2
	c.Muls += other.Muls
	c.Mlas += other.Mlas
	c.Adds += other.Adds
	c.Dups += other.Dups
	c.HAdds += other.HAdds
	c.ScalarOps += other.ScalarOps
	c.ScalarMem += other.ScalarMem
	c.LaneOps += other.LaneOps
	c.KernelRows += other.KernelRows
}

// Unit is one emulated NEON engine. The zero value is ready for use. Units
// are not safe for concurrent use; create one per goroutine.
type Unit struct {
	C Counts
}

// Reset clears the ledger and returns the previous snapshot.
func (u *Unit) Reset() Counts {
	c := u.C
	u.C = Counts{}
	return c
}

// Vld1qF32 loads four consecutive floats (vld1q_f32).
func (u *Unit) Vld1qF32(s []float32) Float32x4 {
	u.C.Loads++
	return Float32x4{s[0], s[1], s[2], s[3]}
}

// Vld2qF32 loads eight consecutive floats, de-interleaving even and odd
// elements into two registers (vld2q_f32). This is how a stride-2 access
// pattern — the downsampling filter windows — vectorizes on NEON.
func (u *Unit) Vld2qF32(s []float32) Float32x4x2 {
	u.C.Loads2++
	return Float32x4x2{Val: [2]Float32x4{
		{s[0], s[2], s[4], s[6]},
		{s[1], s[3], s[5], s[7]},
	}}
}

// Vst1qF32 stores four lanes to consecutive floats (vst1q_f32).
func (u *Unit) Vst1qF32(dst []float32, v Float32x4) {
	u.C.Stores++
	dst[0], dst[1], dst[2], dst[3] = v[0], v[1], v[2], v[3]
}

// Vst2qF32 stores two registers interleaved (vst2q_f32): dst receives
// a0,b0,a1,b1,... This writes the engine's interleaved even/odd synthesis
// output in one instruction.
func (u *Unit) Vst2qF32(dst []float32, a, b Float32x4) {
	u.C.Stores2++
	for i := 0; i < 4; i++ {
		dst[2*i] = a[i]
		dst[2*i+1] = b[i]
	}
}

// VdupqNF32 broadcasts a scalar to all four lanes (vdupq_n_f32).
func (u *Unit) VdupqNF32(x float32) Float32x4 {
	u.C.Dups++
	return Float32x4{x, x, x, x}
}

// VmulqF32 multiplies lanewise (vmulq_f32).
func (u *Unit) VmulqF32(a, b Float32x4) Float32x4 {
	u.C.Muls++
	return Float32x4{a[0] * b[0], a[1] * b[1], a[2] * b[2], a[3] * b[3]}
}

// VmlaqF32 is the fused multiply-accumulate acc + a*b (vmlaq_f32).
func (u *Unit) VmlaqF32(acc, a, b Float32x4) Float32x4 {
	u.C.Mlas++
	return Float32x4{
		acc[0] + a[0]*b[0],
		acc[1] + a[1]*b[1],
		acc[2] + a[2]*b[2],
		acc[3] + a[3]*b[3],
	}
}

// VaddqF32 adds lanewise (vaddq_f32).
func (u *Unit) VaddqF32(a, b Float32x4) Float32x4 {
	u.C.Adds++
	return Float32x4{a[0] + b[0], a[1] + b[1], a[2] + b[2], a[3] + b[3]}
}

// HAddF32 reduces the four lanes to their sum, as the paper does after
// vector accumulation ("the four floating point numbers residing in the
// 128-bit register added with each other"). On the A9 this is a vpadd
// chain; it is counted as one reduction.
func (u *Unit) HAddF32(v Float32x4) float32 {
	u.C.HAdds++
	return (v[0] + v[2]) + (v[1] + v[3])
}

// ScalarMAC models a scalar VFP multiply-accumulate in a remainder loop.
func (u *Unit) ScalarMAC(acc, a, b float32) float32 {
	u.C.ScalarOps++
	return acc + a*b
}

// ScalarLoad models a scalar load in a remainder loop.
func (u *Unit) ScalarLoad(s []float32, i int) float32 {
	u.C.ScalarMem++
	return s[i]
}

// ScalarStore models a scalar store in a remainder loop.
func (u *Unit) ScalarStore(s []float32, i int, v float32) {
	u.C.ScalarMem++
	s[i] = v
}

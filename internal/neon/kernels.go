package neon

import (
	"zynqfusion/internal/signal"
)

// This file implements the paper's Fig. 3 vectorizations of the wavelet
// filter kernels in both styles evaluated in the paper:
//
//   - "manual": NEON intrinsics around each 12-tap dot product, with the
//     horizontal add that returns the accumulated register to a scalar;
//   - "auto": the structure g++ -mfpu=neon -ftree-vectorize produces,
//     vectorizing across four consecutive outputs with de-interleaving
//     (vld2q) loads and broadcast (vdupq_n) coefficients, plus a scalar
//     remainder loop when the trip count is not a multiple of four.
//
// Both produce the reference results up to float32 association; the paper
// reports they perform similarly, which the cycle model reproduces.

// AnalyzeManual computes the analysis kernel with per-output intrinsics.
func AnalyzeManual(u *Unit, al, ah *signal.Taps, px []float32, lo, hi []float32) {
	m := len(lo)
	if len(hi) != m || len(px) != 2*m+signal.TapCount {
		panic("neon.AnalyzeManual: inconsistent lengths")
	}
	u.C.KernelRows++
	// Filter registers are loaded once per row (three quads per filter).
	al0 := u.Vld1qF32(al[0:4])
	al1 := u.Vld1qF32(al[4:8])
	al2 := u.Vld1qF32(al[8:12])
	ah0 := u.Vld1qF32(ah[0:4])
	ah1 := u.Vld1qF32(ah[4:8])
	ah2 := u.Vld1qF32(ah[8:12])
	for i := 0; i < m; i++ {
		win := px[2*i : 2*i+signal.TapCount]
		w0 := u.Vld1qF32(win[0:4])
		w1 := u.Vld1qF32(win[4:8])
		w2 := u.Vld1qF32(win[8:12])
		accL := u.VmulqF32(al0, w0)
		accL = u.VmlaqF32(accL, al1, w1)
		accL = u.VmlaqF32(accL, al2, w2)
		accH := u.VmulqF32(ah0, w0)
		accH = u.VmlaqF32(accH, ah1, w1)
		accH = u.VmlaqF32(accH, ah2, w2)
		lo[i] = u.HAddF32(accL)
		hi[i] = u.HAddF32(accH)
	}
}

// AnalyzeAuto computes the analysis kernel the way the auto-vectorizer
// does: four outputs per iteration, coefficients broadcast, windows
// gathered with stride-2 de-interleaving loads, scalar tail.
func AnalyzeAuto(u *Unit, al, ah *signal.Taps, px []float32, lo, hi []float32) {
	m := len(lo)
	if len(hi) != m || len(px) != 2*m+signal.TapCount {
		panic("neon.AnalyzeAuto: inconsistent lengths")
	}
	u.C.KernelRows++
	// Broadcast the 24 coefficients once per row.
	var cl, ch [signal.TapCount]Float32x4
	for j := 0; j < signal.TapCount; j++ {
		cl[j] = u.VdupqNF32(al[j])
		ch[j] = u.VdupqNF32(ah[j])
	}
	i := 0
	for ; i+4 <= m; i += 4 {
		var accL, accH Float32x4
		for j := 0; j < signal.TapCount; j += 2 {
			// px[2m+j] for m=i..i+3 are the even elements of the eight
			// floats at 2i+j; px[2m+j+1] are the odd ones. One vld2q
			// feeds two taps.
			pair := u.Vld2qF32(px[2*i+j : 2*i+j+8])
			if j == 0 {
				accL = u.VmulqF32(cl[0], pair.Val[0])
				accH = u.VmulqF32(ch[0], pair.Val[0])
			} else {
				accL = u.VmlaqF32(accL, cl[j], pair.Val[0])
				accH = u.VmlaqF32(accH, ch[j], pair.Val[0])
			}
			accL = u.VmlaqF32(accL, cl[j+1], pair.Val[1])
			accH = u.VmlaqF32(accH, ch[j+1], pair.Val[1])
		}
		u.Vst1qF32(lo[i:i+4], accL)
		u.Vst1qF32(hi[i:i+4], accH)
	}
	// Scalar remainder: the performance-degrading tail the paper avoids by
	// masking trip counts to multiples of four. Deep pyramid levels have
	// short rows, so the tail is exercised here.
	for ; i < m; i++ {
		var accL, accH float32
		for j := 0; j < signal.TapCount; j++ {
			v := u.ScalarLoad(px, 2*i+j)
			accL = u.ScalarMAC(accL, al[j], v)
			accH = u.ScalarMAC(accH, ah[j], v)
		}
		u.ScalarStore(lo, i, accL)
		u.ScalarStore(hi, i, accH)
	}
}

// SynthesizeAuto computes the synthesis kernel vectorized across four
// output pairs: unit-stride loads of the padded subbands, broadcast
// polyphase coefficients, interleaving vst2q stores, scalar tail. The
// synthesis loop has no strided gathers or horizontal reductions, which is
// why the paper measures a larger NEON gain on the inverse transform.
func SynthesizeAuto(u *Unit, sl, sh *signal.Taps, plo, phi []float32, out []float32) {
	m := len(out) / 2
	const half = signal.TapCount / 2
	if len(out) != 2*m || len(plo) != m+half-1 || len(phi) != m+half-1 {
		panic("neon.SynthesizeAuto: inconsistent lengths")
	}
	u.C.KernelRows++
	var se, so, he, ho [half]Float32x4
	for k := 0; k < half; k++ {
		se[k] = u.VdupqNF32(sl[2*k])
		so[k] = u.VdupqNF32(sl[2*k+1])
		he[k] = u.VdupqNF32(sh[2*k])
		ho[k] = u.VdupqNF32(sh[2*k+1])
	}
	i := 0
	for ; i+4 <= m; i += 4 {
		var even, odd Float32x4
		for k := 0; k < half; k++ {
			base := i + half - 1 - k
			l := u.Vld1qF32(plo[base : base+4])
			h := u.Vld1qF32(phi[base : base+4])
			if k == 0 {
				even = u.VmulqF32(se[0], l)
				odd = u.VmulqF32(so[0], l)
			} else {
				even = u.VmlaqF32(even, se[k], l)
				odd = u.VmlaqF32(odd, so[k], l)
			}
			even = u.VmlaqF32(even, he[k], h)
			odd = u.VmlaqF32(odd, ho[k], h)
		}
		u.Vst2qF32(out[2*i:2*i+8], even, odd)
	}
	for ; i < m; i++ {
		var even, odd float32
		base := i + half - 1
		for k := 0; k < half; k++ {
			l := u.ScalarLoad(plo, base-k)
			h := u.ScalarLoad(phi, base-k)
			even = u.ScalarMAC(even, sl[2*k], l)
			even = u.ScalarMAC(even, sh[2*k], h)
			odd = u.ScalarMAC(odd, sl[2*k+1], l)
			odd = u.ScalarMAC(odd, sh[2*k+1], h)
		}
		u.ScalarStore(out, 2*i, even)
		u.ScalarStore(out, 2*i+1, odd)
	}
}

// SynthesizeManual is the intrinsics-by-hand synthesis variant. It uses
// the same vectorize-across-outputs structure as SynthesizeAuto (the dot
// products are only six taps deep, so vectorizing within one output would
// waste lanes); the two differ only in bookkeeping, matching the paper's
// observation that manual and automatic vectorization perform alike.
func SynthesizeManual(u *Unit, sl, sh *signal.Taps, plo, phi []float32, out []float32) {
	SynthesizeAuto(u, sl, sh, plo, phi, out)
}

// Kernel adapts a Unit to the signal.Kernel contract using the chosen
// vectorization style.
type Kernel struct {
	U      *Unit
	Manual bool // manual intrinsics vs auto-vectorized structure
}

// Analyze implements signal.Kernel.
func (k Kernel) Analyze(al, ah *signal.Taps, px []float32, lo, hi []float32) {
	if k.Manual {
		AnalyzeManual(k.U, al, ah, px, lo, hi)
		return
	}
	AnalyzeAuto(k.U, al, ah, px, lo, hi)
}

// Synthesize implements signal.Kernel.
func (k Kernel) Synthesize(sl, sh *signal.Taps, plo, phi []float32, out []float32) {
	if k.Manual {
		SynthesizeManual(k.U, sl, sh, plo, phi, out)
		return
	}
	SynthesizeAuto(k.U, sl, sh, plo, phi, out)
}

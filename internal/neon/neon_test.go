package neon

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"zynqfusion/internal/signal"
)

func randTaps(rng *rand.Rand) signal.Taps {
	var t signal.Taps
	for i := range t {
		t[i] = float32(rng.Float64()*2 - 1)
	}
	return t
}

func randSlice(rng *rand.Rand, n int) []float32 {
	s := make([]float32, n)
	for i := range s {
		s[i] = float32(rng.Float64()*200 - 100)
	}
	return s
}

func maxAbs(a, b []float32) float64 {
	var m float64
	for i := range a {
		if d := math.Abs(float64(a[i] - b[i])); d > m {
			m = d
		}
	}
	return m
}

func TestIntrinsicsLaneExact(t *testing.T) {
	u := &Unit{}
	a := Float32x4{1, 2, 3, 4}
	b := Float32x4{5, 6, 7, 8}
	if got := u.VmulqF32(a, b); got != (Float32x4{5, 12, 21, 32}) {
		t.Errorf("VmulqF32 = %v", got)
	}
	if got := u.VaddqF32(a, b); got != (Float32x4{6, 8, 10, 12}) {
		t.Errorf("VaddqF32 = %v", got)
	}
	if got := u.VmlaqF32(a, a, b); got != (Float32x4{6, 14, 24, 36}) {
		t.Errorf("VmlaqF32 = %v", got)
	}
	if got := u.VdupqNF32(9); got != (Float32x4{9, 9, 9, 9}) {
		t.Errorf("VdupqNF32 = %v", got)
	}
	if got := u.HAddF32(a); got != 10 {
		t.Errorf("HAddF32 = %v", got)
	}
}

func TestVld2qDeinterleaves(t *testing.T) {
	u := &Unit{}
	s := []float32{0, 1, 2, 3, 4, 5, 6, 7}
	p := u.Vld2qF32(s)
	if p.Val[0] != (Float32x4{0, 2, 4, 6}) || p.Val[1] != (Float32x4{1, 3, 5, 7}) {
		t.Errorf("Vld2qF32 = %v", p)
	}
}

func TestVst2qInterleaves(t *testing.T) {
	u := &Unit{}
	dst := make([]float32, 8)
	u.Vst2qF32(dst, Float32x4{0, 2, 4, 6}, Float32x4{1, 3, 5, 7})
	for i, v := range dst {
		if v != float32(i) {
			t.Fatalf("dst[%d]=%v", i, v)
		}
	}
}

func TestAnalyzeVariantsMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, m := range []int{4, 8, 11, 16, 17, 44, 3, 1} {
		al, ah := randTaps(rng), randTaps(rng)
		px := randSlice(rng, 2*m+signal.TapCount)
		want1 := make([]float32, m)
		want2 := make([]float32, m)
		signal.AnalyzeRef(&al, &ah, px, want1, want2)

		u := &Unit{}
		lo := make([]float32, m)
		hi := make([]float32, m)
		AnalyzeManual(u, &al, &ah, px, lo, hi)
		if d := maxAbs(lo, want1) + maxAbs(hi, want2); d > 1e-2 {
			t.Errorf("manual m=%d: max err %g", m, d)
		}

		lo2 := make([]float32, m)
		hi2 := make([]float32, m)
		AnalyzeAuto(u, &al, &ah, px, lo2, hi2)
		if d := maxAbs(lo2, want1) + maxAbs(hi2, want2); d > 1e-2 {
			t.Errorf("auto m=%d: max err %g", m, d)
		}
	}
}

func TestSynthesizeVariantsMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for _, m := range []int{4, 8, 11, 16, 44, 3, 1} {
		sl, sh := randTaps(rng), randTaps(rng)
		plo := randSlice(rng, m+signal.TapCount/2-1)
		phi := randSlice(rng, m+signal.TapCount/2-1)
		want := make([]float32, 2*m)
		signal.SynthesizeRef(&sl, &sh, plo, phi, want)

		u := &Unit{}
		out := make([]float32, 2*m)
		SynthesizeAuto(u, &sl, &sh, plo, phi, out)
		if d := maxAbs(out, want); d > 1e-2 {
			t.Errorf("auto m=%d: max err %g", m, d)
		}
		out2 := make([]float32, 2*m)
		SynthesizeManual(u, &sl, &sh, plo, phi, out2)
		if d := maxAbs(out2, want); d > 1e-2 {
			t.Errorf("manual m=%d: max err %g", m, d)
		}
	}
}

func TestKernelInterfaceMatchesDirectCalls(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	al, ah := randTaps(rng), randTaps(rng)
	px := randSlice(rng, 2*16+signal.TapCount)
	want1 := make([]float32, 16)
	want2 := make([]float32, 16)
	signal.AnalyzeRef(&al, &ah, px, want1, want2)
	for _, manual := range []bool{false, true} {
		k := Kernel{U: &Unit{}, Manual: manual}
		lo := make([]float32, 16)
		hi := make([]float32, 16)
		k.Analyze(&al, &ah, px, lo, hi)
		if d := maxAbs(lo, want1) + maxAbs(hi, want2); d > 1e-2 {
			t.Errorf("Kernel(manual=%v): err %g", manual, d)
		}
	}
}

func TestTailLoopUsesScalarOps(t *testing.T) {
	// m = 7 leaves a remainder of 3 outputs; the auto kernel must fall
	// back to scalar ops for them (and only them).
	rng := rand.New(rand.NewSource(34))
	al, ah := randTaps(rng), randTaps(rng)
	m := 7
	px := randSlice(rng, 2*m+signal.TapCount)
	u := &Unit{}
	AnalyzeAuto(u, &al, &ah, px, make([]float32, m), make([]float32, m))
	wantScalarMACs := int64(3 * 2 * signal.TapCount)
	if u.C.ScalarOps != wantScalarMACs {
		t.Errorf("scalar MACs = %d, want %d", u.C.ScalarOps, wantScalarMACs)
	}
	u.Reset()
	AnalyzeAuto(u, &al, &ah, randSlice(rng, 2*8+signal.TapCount), make([]float32, 8), make([]float32, 8))
	if u.C.ScalarOps != 0 {
		t.Errorf("multiple-of-4 trip count should not use scalar ops, got %d", u.C.ScalarOps)
	}
}

func TestLedgerCountsAnalyzeManual(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	al, ah := randTaps(rng), randTaps(rng)
	m := 10
	px := randSlice(rng, 2*m+signal.TapCount)
	u := &Unit{}
	AnalyzeManual(u, &al, &ah, px, make([]float32, m), make([]float32, m))
	// 6 filter loads + 3 window loads per output.
	if want := int64(6 + 3*m); u.C.Loads != want {
		t.Errorf("loads = %d, want %d", u.C.Loads, want)
	}
	if want := int64(2 * m); u.C.Muls != want {
		t.Errorf("muls = %d, want %d", u.C.Muls, want)
	}
	if want := int64(4 * m); u.C.Mlas != want {
		t.Errorf("mlas = %d, want %d", u.C.Mlas, want)
	}
	if want := int64(2 * m); u.C.HAdds != want {
		t.Errorf("hadds = %d, want %d", u.C.HAdds, want)
	}
	if u.C.KernelRows != 1 {
		t.Errorf("kernel rows = %d, want 1", u.C.KernelRows)
	}
}

func TestResetReturnsAndClears(t *testing.T) {
	u := &Unit{}
	u.VdupqNF32(1)
	u.HAddF32(Float32x4{})
	c := u.Reset()
	if c.Dups != 1 || c.HAdds != 1 {
		t.Errorf("snapshot = %+v", c)
	}
	if u.C != (Counts{}) {
		t.Errorf("ledger not cleared: %+v", u.C)
	}
}

func TestCountsAddQuick(t *testing.T) {
	f := func(a, b int8) bool {
		var c Counts
		c.Loads = int64(a)
		var d Counts
		d.Loads = int64(b)
		c.Add(d)
		return c.Loads == int64(a)+int64(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

package frame

import (
	"bytes"
	"testing"
)

func TestLeaseRetainReleaseRecycle(t *testing.T) {
	var recycled *Frame
	f := NewLeased(4, 3, func(g *Frame) { recycled = g })
	if !f.Leased() || f.Refs() != 1 {
		t.Fatalf("fresh lease: leased=%v refs=%d", f.Leased(), f.Refs())
	}
	if f.Retain() != f {
		t.Fatal("Retain must return the frame")
	}
	f.Release()
	if recycled != nil {
		t.Fatal("recycled while a reference remained")
	}
	f.Release()
	if recycled != f {
		t.Fatal("final release did not recycle")
	}
}

func TestPlainFrameRetainReleaseNoops(t *testing.T) {
	f := New(4, 4)
	f.Retain()
	f.Release()
	f.Release() // never panics on plain frames
	if f.Leased() || f.Refs() != 0 {
		t.Fatal("plain frame must not be leased")
	}
}

func TestRearmReusesStorage(t *testing.T) {
	f := NewLeased(4, 4, func(*Frame) {})
	pix := &f.Pix[0]
	f.Release()
	if !f.Rearm(2, 8) {
		t.Fatal("rearm within capacity failed")
	}
	if f.W != 2 || f.H != 8 || f.Refs() != 1 || &f.Pix[0] != pix {
		t.Fatalf("rearm result %dx%d refs=%d", f.W, f.H, f.Refs())
	}
	f.Release()
	if f.Rearm(5, 5) {
		t.Fatal("rearm beyond capacity must refuse")
	}
}

// TestSubFrameIsIndependentOfPooledParent pins the ownership contract the
// refactor surfaced: SubFrame copies, so mutating the extraction can never
// corrupt a pooled parent that later frames reuse.
func TestSubFrameIsIndependentOfPooledParent(t *testing.T) {
	parent := NewLeased(8, 8, func(*Frame) {})
	parent.Fill(7)
	sub, err := parent.SubFrame(2, 2, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if sub.Leased() || sub.IsView() {
		t.Fatal("SubFrame must be a plain independent copy")
	}
	sub.Fill(99)
	if parent.At(3, 3) != 7 {
		t.Fatal("mutating a SubFrame corrupted the parent")
	}
}

func TestBandAliasesAndMaterializeEscapes(t *testing.T) {
	parent := New(6, 5)
	parent.Fill(1)
	band, err := parent.Band(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !band.IsView() || band.W != 6 || band.H != 2 {
		t.Fatalf("band shape %dx%d view=%v", band.W, band.H, band.IsView())
	}
	band.Set(0, 0, 42)
	if parent.At(0, 1) != 42 {
		t.Fatal("band writes must alias the parent")
	}
	// Materialize is the copy-on-write escape hatch.
	safe := band.Materialize()
	safe.Fill(9)
	if parent.At(0, 1) != 42 {
		t.Fatal("materialized copy still aliases the parent")
	}
	if plain := parent.Materialize(); plain != parent {
		t.Fatal("materializing a non-view must be the identity")
	}
	if _, err := parent.Band(4, 3); err == nil {
		t.Fatal("out-of-range band accepted")
	}
}

func TestBandOnLeasedParentHoldsReference(t *testing.T) {
	recycled := false
	parent := NewLeased(4, 4, func(*Frame) { recycled = true })
	band, err := parent.Band(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	parent.Release() // view still holds the parent
	if recycled {
		t.Fatal("parent recycled while a view was alive")
	}
	band.Release()
	if !recycled {
		t.Fatal("releasing the view must release the parent")
	}
}

func TestCloneOfLeasedFrameIsPlain(t *testing.T) {
	f := NewLeased(3, 3, func(*Frame) {})
	f.Fill(5)
	g := f.Clone()
	if g.Leased() {
		t.Fatal("clone must escape the lease")
	}
	g.Fill(1)
	if f.At(0, 0) != 5 {
		t.Fatal("clone aliases its source")
	}
}

func TestCloneIntoReusesStorage(t *testing.T) {
	src := New(4, 4)
	src.Fill(3)
	dst := New(4, 4)
	pix := &dst.Pix[0]
	if got := src.CloneInto(dst); got != dst || &dst.Pix[0] != pix {
		t.Fatal("CloneInto must reuse dst storage")
	}
	if dst.At(1, 1) != 3 {
		t.Fatal("CloneInto copied nothing")
	}
	if got := src.CloneInto(nil); got == nil || got.At(0, 0) != 3 {
		t.Fatal("CloneInto(nil) must clone")
	}
	small := New(1, 1)
	if got := src.CloneInto(small); got.W != 4 || got.H != 4 || got.At(2, 2) != 3 {
		t.Fatal("CloneInto must grow an undersized dst")
	}
}

func TestAppendBytesAndPGMReuseBuffer(t *testing.T) {
	f := New(3, 2)
	f.Fill(128)
	buf := f.AppendBytes(nil)
	if len(buf) != 6 {
		t.Fatalf("append length %d", len(buf))
	}
	again := f.AppendBytes(buf[:0])
	if &again[0] != &buf[0] {
		t.Fatal("AppendBytes did not reuse the buffer")
	}
	if !bytes.Equal(again, f.Bytes()) {
		t.Fatal("AppendBytes and Bytes disagree")
	}

	pgm := f.AppendPGM(nil)
	var w bytes.Buffer
	if err := f.WritePGM(&w); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pgm, w.Bytes()) {
		t.Fatal("AppendPGM and WritePGM disagree")
	}
	pgm2 := f.AppendPGM(pgm[:0])
	if &pgm2[0] != &pgm[0] || !bytes.Equal(pgm2, pgm) {
		t.Fatal("AppendPGM did not reuse the buffer")
	}
}

package frame

import (
	"bytes"
	"math"
	"math/rand"
	"path/filepath"
	"testing"
	"testing/quick"
)

func TestNewAndAccessors(t *testing.T) {
	f := New(4, 3)
	if f.W != 4 || f.H != 3 || len(f.Pix) != 12 {
		t.Fatalf("bad geometry %dx%d/%d", f.W, f.H, len(f.Pix))
	}
	f.Set(2, 1, 7)
	if f.At(2, 1) != 7 {
		t.Error("Set/At mismatch")
	}
	if f.Row(1)[2] != 7 {
		t.Error("Row view must alias pixels")
	}
}

func TestFromBytesValidates(t *testing.T) {
	if _, err := FromBytes(2, 2, []byte{1, 2, 3}); err == nil {
		t.Error("short buffer should fail")
	}
	f, err := FromBytes(2, 2, []byte{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if f.At(1, 1) != 4 {
		t.Error("byte order wrong")
	}
}

func TestBytesClampAndRound(t *testing.T) {
	f := New(5, 1)
	copy(f.Pix, []float32{-3, 0.4, 0.6, 254.6, 999})
	got := f.Bytes()
	want := []byte{0, 0, 1, 255, 255}
	if !bytes.Equal(got, want) {
		t.Errorf("Bytes() = %v, want %v", got, want)
	}
}

func TestSubFrame(t *testing.T) {
	f := New(8, 6)
	for i := range f.Pix {
		f.Pix[i] = float32(i)
	}
	s, err := f.SubFrame(2, 1, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if s.W != 3 || s.H != 2 {
		t.Fatalf("sub %dx%d", s.W, s.H)
	}
	if s.At(0, 0) != f.At(2, 1) || s.At(2, 1) != f.At(4, 2) {
		t.Error("sub-frame content wrong")
	}
	// Sub-frame must be a copy, not a view.
	s.Set(0, 0, -1)
	if f.At(2, 1) == -1 {
		t.Error("SubFrame must copy")
	}
	if _, err := f.SubFrame(6, 0, 3, 2); err == nil {
		t.Error("out-of-bounds region should fail")
	}
	if _, err := f.SubFrame(0, 0, -1, 2); err == nil {
		t.Error("negative size should fail")
	}
}

func TestCenterSubFrameMatchesPaperExtractions(t *testing.T) {
	full := New(88, 72)
	for _, s := range []struct{ w, h int }{{64, 48}, {40, 40}, {35, 35}, {32, 24}} {
		sub, err := full.CenterSubFrame(s.w, s.h)
		if err != nil {
			t.Fatalf("%dx%d: %v", s.w, s.h, err)
		}
		if sub.W != s.w || sub.H != s.h {
			t.Errorf("%dx%d: got %dx%d", s.w, s.h, sub.W, sub.H)
		}
	}
}

func TestStatsAndNormalize(t *testing.T) {
	f := New(2, 2)
	copy(f.Pix, []float32{0, 50, 100, 150})
	if m := f.Mean(); m != 75 {
		t.Errorf("mean %g", m)
	}
	if v := f.Variance(); math.Abs(v-3125) > 1e-9 {
		t.Errorf("variance %g", v)
	}
	lo, hi := f.MinMax()
	if lo != 0 || hi != 150 {
		t.Errorf("minmax %g %g", lo, hi)
	}
	f.Normalize()
	lo, hi = f.MinMax()
	if lo != 0 || hi != 255 {
		t.Errorf("normalized range [%g,%g]", lo, hi)
	}
	c := New(3, 3)
	c.Fill(42)
	c.Normalize()
	if c.At(1, 1) != 128 {
		t.Errorf("constant frame should normalize to 128, got %g", c.At(1, 1))
	}
}

func TestDiffMSEPSNR(t *testing.T) {
	a := New(2, 2)
	b := New(2, 2)
	copy(a.Pix, []float32{10, 20, 30, 40})
	copy(b.Pix, []float32{12, 20, 30, 40})
	d, err := Diff(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d.At(0, 0) != 2 {
		t.Errorf("diff %g", d.At(0, 0))
	}
	mse, _ := MSE(a, b)
	if mse != 1 {
		t.Errorf("mse %g", mse)
	}
	psnr, _ := PSNR(a, b)
	if math.Abs(psnr-10*math.Log10(255*255)) > 1e-9 {
		t.Errorf("psnr %g", psnr)
	}
	same, _ := PSNR(a, a)
	if !math.IsInf(same, 1) {
		t.Errorf("identical PSNR should be +Inf, got %g", same)
	}
	if _, err := MSE(a, New(3, 3)); err == nil {
		t.Error("size mismatch should fail")
	}
}

func TestGrayFromRGBWeights(t *testing.T) {
	// Pure red, green, blue pixels with BT.601 weights.
	rgb := []byte{255, 0, 0, 0, 255, 0, 0, 0, 255}
	f, err := GrayFromRGB(3, 1, rgb)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []float64{0.299 * 255, 0.587 * 255, 0.114 * 255} {
		if math.Abs(float64(f.Pix[i])-want) > 0.01 {
			t.Errorf("channel %d: %g want %g", i, f.Pix[i], want)
		}
	}
	if _, err := GrayFromRGB(2, 2, rgb); err == nil {
		t.Error("short RGB buffer should fail")
	}
}

func TestPGMRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := New(37, 23)
	for i := range f.Pix {
		f.Pix[i] = float32(rng.Intn(256))
	}
	var buf bytes.Buffer
	if err := f.WritePGM(&buf); err != nil {
		t.Fatal(err)
	}
	g, err := ReadPGM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !f.SameSize(g) {
		t.Fatalf("round trip %dx%d", g.W, g.H)
	}
	d, _ := MaxAbsDiff(f, g)
	if d > 0.5 {
		t.Errorf("PGM round trip error %g", d)
	}
}

func TestPGMFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.pgm")
	f := New(8, 8)
	f.Fill(77)
	if err := f.SavePGM(path); err != nil {
		t.Fatal(err)
	}
	g, err := LoadPGM(path)
	if err != nil {
		t.Fatal(err)
	}
	if g.At(3, 3) != 77 {
		t.Errorf("loaded %g", g.At(3, 3))
	}
}

func TestReadPGMRejectsBadInput(t *testing.T) {
	cases := []string{
		"P6\n2 2\n255\n",     // wrong magic
		"P5\n2 2\n65535\n",   // unsupported depth
		"P5\n-2 2\n255\n",    // negative size
		"P5\n2 2\n255\n\x00", // truncated pixels
	}
	for _, c := range cases {
		if _, err := ReadPGM(bytes.NewReader([]byte(c))); err == nil {
			t.Errorf("input %q should fail", c)
		}
	}
}

func TestApplyAndClone(t *testing.T) {
	f := New(2, 2)
	f.Fill(10)
	g := f.Clone()
	f.Apply(func(v float32) float32 { return v * 2 })
	if f.At(0, 0) != 20 || g.At(0, 0) != 10 {
		t.Error("Apply/Clone interaction wrong")
	}
}

func TestQuickPGMRoundTripAnyContent(t *testing.T) {
	fn := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w, h := 1+rng.Intn(40), 1+rng.Intn(40)
		f := New(w, h)
		for i := range f.Pix {
			f.Pix[i] = float32(rng.Intn(256))
		}
		var buf bytes.Buffer
		if err := f.WritePGM(&buf); err != nil {
			return false
		}
		g, err := ReadPGM(&buf)
		if err != nil {
			return false
		}
		d, _ := MaxAbsDiff(f, g)
		return d <= 0.5
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

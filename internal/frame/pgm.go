package frame

import (
	"bufio"
	"fmt"
	"io"
	"os"
)

// WritePGM writes the frame as a binary (P5) PGM image, clamping samples to
// 8 bits. PGM keeps the demo pipeline free of external image dependencies
// while remaining viewable everywhere.
func (f *Frame) WritePGM(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(f.AppendPGM(nil)); err != nil {
		return err
	}
	return bw.Flush()
}

// AppendPGM appends the complete binary (P5) PGM encoding — header and
// quantized pixels — to dst and returns the extended slice, so snapshot
// servers can reuse one encode buffer across requests instead of
// allocating a fresh byte slice per frame.
func (f *Frame) AppendPGM(dst []byte) []byte {
	dst = fmt.Appendf(dst, "P5\n%d %d\n255\n", f.W, f.H)
	return f.AppendBytes(dst)
}

// SavePGM writes the frame to the named file.
func (f *Frame) SavePGM(path string) error {
	fd, err := os.Create(path)
	if err != nil {
		return err
	}
	defer fd.Close()
	if err := f.WritePGM(fd); err != nil {
		return err
	}
	return fd.Close()
}

// ReadPGM parses a binary (P5) PGM image.
func ReadPGM(r io.Reader) (*Frame, error) {
	br := bufio.NewReader(r)
	var magic string
	if _, err := fmt.Fscan(br, &magic); err != nil {
		return nil, fmt.Errorf("frame.ReadPGM: %w", err)
	}
	if magic != "P5" {
		return nil, fmt.Errorf("frame.ReadPGM: bad magic %q", magic)
	}
	var w, h, maxv int
	if _, err := fmt.Fscan(br, &w, &h, &maxv); err != nil {
		return nil, fmt.Errorf("frame.ReadPGM: header: %w", err)
	}
	if maxv != 255 {
		return nil, fmt.Errorf("frame.ReadPGM: unsupported maxval %d", maxv)
	}
	if w <= 0 || h <= 0 || w*h > 1<<28 {
		return nil, fmt.Errorf("frame.ReadPGM: implausible size %dx%d", w, h)
	}
	// Exactly one whitespace byte separates the header from pixel data.
	if _, err := br.ReadByte(); err != nil {
		return nil, fmt.Errorf("frame.ReadPGM: %w", err)
	}
	b := make([]byte, w*h)
	if _, err := io.ReadFull(br, b); err != nil {
		return nil, fmt.Errorf("frame.ReadPGM: pixels: %w", err)
	}
	return FromBytes(w, h, b)
}

// LoadPGM reads the named PGM file.
func LoadPGM(path string) (*Frame, error) {
	fd, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer fd.Close()
	return ReadPGM(fd)
}

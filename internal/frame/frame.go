// Package frame provides the image-plane substrate used throughout the
// fusion system: single-channel float32 frames, pixel access helpers,
// sub-frame extraction (the paper evaluates "four sets of smaller frames"
// cut from the 88x72 sensor frames), format conversion and PGM I/O.
//
// Samples are float32 because the paper's accelerators (NEON float32x4
// lanes and the HLS engine's 32-bit float datapath) operate on 32-bit
// floats. Pixel intensity convention is [0,255] unless stated otherwise.
package frame

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"
)

// Frame is a single-channel raster of float32 samples in row-major order.
// The zero value is an empty frame; use New to allocate.
//
// # Ownership
//
// A plain frame (from New, FromBytes, Clone, ...) is owned by whoever holds
// it, like any Go value. A *leased* frame (from NewLeased, or handed out by
// a bufpool.Pool) is reference counted: Retain adds a holder, Release drops
// one, and when the count reaches zero the frame returns to its recycler —
// after which its pixels may be reused for another lease. Reading or
// writing a frame after its final Release is a use-after-free class bug;
// releasing it twice panics. Retain/Release are no-ops on plain frames, so
// code can handle both kinds uniformly.
//
// A *view* (from Band) aliases its parent's pixels: mutating either side is
// visible through the other. Materialize is the escape hatch that breaks
// the aliasing.
type Frame struct {
	W, H int
	Pix  []float32 // len == W*H, row-major

	lease  *lease // nil for plain frames
	parent *Frame // non-nil for aliasing views (Band)
}

// lease is the reference-count record of a pooled frame. It lives with the
// frame across recycles, so a free-list hit reuses it too.
type lease struct {
	refs    atomic.Int32
	recycle func(*Frame)
}

// New allocates a zeroed w x h frame.
func New(w, h int) *Frame {
	if w < 0 || h < 0 {
		panic(fmt.Sprintf("frame.New: negative size %dx%d", w, h))
	}
	return &Frame{W: w, H: h, Pix: make([]float32, w*h)}
}

// NewLeased allocates a w x h frame owned by a recycler (a buffer pool):
// the frame starts with one reference, and the final Release hands it to
// recycle instead of the garbage collector. recycle must not be nil.
func NewLeased(w, h int, recycle func(*Frame)) *Frame {
	if recycle == nil {
		panic("frame.NewLeased: nil recycler")
	}
	f := New(w, h)
	f.lease = &lease{recycle: recycle}
	f.lease.refs.Store(1)
	return f
}

// Leased reports whether the frame is reference counted by a recycler.
func (f *Frame) Leased() bool { return f.lease != nil }

// Refs reports the current reference count (0 for plain frames).
func (f *Frame) Refs() int32 {
	if f.lease == nil {
		return 0
	}
	return f.lease.refs.Load()
}

// Retain adds a reference to a leased frame and returns f, so a new holder
// can be registered in one expression. It replaces hot-path Clone calls
// whose only purpose was to outlive the producer: the paper's frame stores
// are shared, not copied. Retain on a plain frame is a no-op.
func (f *Frame) Retain() *Frame {
	if f.lease != nil {
		if f.lease.refs.Add(1) <= 1 {
			panic("frame.Retain: retain of released frame")
		}
	}
	return f
}

// Release drops one reference. The final Release recycles the frame (its
// pixels may then be handed to another lease — the frame must not be
// touched again); releasing an already-released frame panics, catching
// double-release bugs at the site. Release on a plain frame is a no-op.
func (f *Frame) Release() {
	if f.lease == nil {
		return
	}
	switch n := f.lease.refs.Add(-1); {
	case n == 0:
		f.lease.recycle(f)
	case n < 0:
		panic("frame.Release: release of already-released frame")
	}
}

// Rearm restamps a fully released leased frame to w x h with one reference
// and returns it, reusing its pixel storage. It reports false — leaving
// the frame untouched — when the storage is too small. Only recyclers
// (buffer pools) call this, from their free-list hit path; the pixels are
// NOT cleared, the lease contract being that every sample is written
// before it is read.
func (f *Frame) Rearm(w, h int) bool {
	if f.lease == nil {
		panic("frame.Rearm: not a leased frame")
	}
	if f.lease.refs.Load() != 0 {
		panic("frame.Rearm: frame still referenced")
	}
	if w < 0 || h < 0 || w*h > cap(f.Pix) {
		return false
	}
	f.W, f.H = w, h
	f.Pix = f.Pix[:w*h]
	f.lease.refs.Store(1)
	return true
}

// FromBytes builds a frame from 8-bit samples (e.g. a camera plane).
func FromBytes(w, h int, b []byte) (*Frame, error) {
	if len(b) != w*h {
		return nil, fmt.Errorf("frame.FromBytes: have %d bytes, want %d", len(b), w*h)
	}
	f := New(w, h)
	for i, v := range b {
		f.Pix[i] = float32(v)
	}
	return f, nil
}

// At returns the sample at (x, y). It panics if out of bounds, matching
// slice semantics.
func (f *Frame) At(x, y int) float32 { return f.Pix[y*f.W+x] }

// Set stores v at (x, y).
func (f *Frame) Set(x, y int, v float32) { f.Pix[y*f.W+x] = v }

// Row returns the y-th row as a shared sub-slice.
func (f *Frame) Row(y int) []float32 { return f.Pix[y*f.W : (y+1)*f.W] }

// Clone returns a deep copy. The copy is a plain frame regardless of the
// source's leasing: cloning is the explicit way to take data out of a
// pooled buffer's lifetime. On hot paths prefer Retain, which shares the
// buffer instead of copying it.
func (f *Frame) Clone() *Frame {
	g := New(f.W, f.H)
	copy(g.Pix, f.Pix)
	return g
}

// CloneInto copies f's pixels and geometry into dst, reusing dst's storage
// when it is large enough (dst is reallocated otherwise) and returning
// dst. It is the reusable-buffer form of Clone.
func (f *Frame) CloneInto(dst *Frame) *Frame {
	if dst == nil {
		return f.Clone()
	}
	n := f.W * f.H
	if cap(dst.Pix) < n {
		dst.Pix = make([]float32, n)
	}
	dst.W, dst.H = f.W, f.H
	dst.Pix = dst.Pix[:n]
	copy(dst.Pix, f.Pix)
	return dst
}

// Band returns the h full-width rows starting at row y as a zero-copy
// view: the view's pixels ARE the parent's pixels, exactly like a row
// partition of one of the board's DDR frame stores. Mutating the view
// mutates the parent (and vice versa) — use Materialize for an
// independent copy. If the parent is leased, the view holds a reference
// on it and the caller must Release the view when done; the view must
// never be handed to a buffer pool of its own.
func (f *Frame) Band(y, h int) (*Frame, error) {
	if y < 0 || h < 0 || y+h > f.H {
		return nil, fmt.Errorf("frame.Band: rows [%d,%d) outside height %d", y, y+h, f.H)
	}
	v := &Frame{W: f.W, H: h, Pix: f.Pix[y*f.W : (y+h)*f.W], parent: f}
	if f.lease != nil {
		f.Retain()
		v.lease = &lease{recycle: func(*Frame) { f.Release() }}
		v.lease.refs.Store(1)
	}
	return v, nil
}

// IsView reports whether the frame aliases another frame's pixels.
func (f *Frame) IsView() bool { return f.parent != nil }

// Materialize returns a frame that is safe to mutate without touching any
// other frame: a view is deep-copied off its parent (the copy-on-write
// escape hatch for Band), while an ordinary frame is returned as is.
func (f *Frame) Materialize() *Frame {
	if f.parent == nil {
		return f
	}
	return f.Clone()
}

// SameSize reports whether f and g have identical dimensions.
func (f *Frame) SameSize(g *Frame) bool { return f.W == g.W && f.H == g.H }

// Bytes quantizes the frame to 8-bit samples, clamping to [0,255] and
// rounding to nearest.
func (f *Frame) Bytes() []byte {
	return f.AppendBytes(nil)
}

// AppendBytes appends the frame's 8-bit quantization to dst and returns
// the extended slice, so an encode buffer can be reused across frames
// (append semantics: pass dst[:0] to overwrite in place).
func (f *Frame) AppendBytes(dst []byte) []byte {
	if need := len(dst) + len(f.Pix); cap(dst) < need {
		grown := make([]byte, len(dst), need)
		copy(grown, dst)
		dst = grown
	}
	for _, v := range f.Pix {
		dst = append(dst, clampByte(v))
	}
	return dst
}

func clampByte(v float32) byte {
	if v <= 0 {
		return 0
	}
	if v >= 255 {
		return 255
	}
	return byte(v + 0.5)
}

// SubFrame extracts the w x h region whose top-left corner is (x, y) as a
// fresh frame. This mirrors the paper's evaluation protocol, where smaller
// test frames (64x48 ... 32x24) are extracted from the full 88x72 frames.
// The result is an independent plain copy: mutating it never touches the
// source, even when the source is a pooled (leased) frame. For a zero-copy
// row-band view with the opposite (aliasing) semantics, see Band.
func (f *Frame) SubFrame(x, y, w, h int) (*Frame, error) {
	if x < 0 || y < 0 || w < 0 || h < 0 || x+w > f.W || y+h > f.H {
		return nil, fmt.Errorf("frame.SubFrame: region %dx%d@(%d,%d) outside %dx%d", w, h, x, y, f.W, f.H)
	}
	g := New(w, h)
	for r := 0; r < h; r++ {
		copy(g.Row(r), f.Pix[(y+r)*f.W+x:(y+r)*f.W+x+w])
	}
	return g, nil
}

// CenterSubFrame extracts a centered w x h region.
func (f *Frame) CenterSubFrame(w, h int) (*Frame, error) {
	return f.SubFrame((f.W-w)/2, (f.H-h)/2, w, h)
}

// Fill sets every sample to v.
func (f *Frame) Fill(v float32) {
	for i := range f.Pix {
		f.Pix[i] = v
	}
}

// Apply replaces every sample s with fn(s).
func (f *Frame) Apply(fn func(float32) float32) {
	for i, v := range f.Pix {
		f.Pix[i] = fn(v)
	}
}

// MinMax returns the smallest and largest samples. An empty frame returns
// (0, 0).
func (f *Frame) MinMax() (lo, hi float32) {
	if len(f.Pix) == 0 {
		return 0, 0
	}
	lo, hi = f.Pix[0], f.Pix[0]
	for _, v := range f.Pix {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// Mean returns the average sample value (0 for an empty frame).
func (f *Frame) Mean() float64 {
	if len(f.Pix) == 0 {
		return 0
	}
	var s float64
	for _, v := range f.Pix {
		s += float64(v)
	}
	return s / float64(len(f.Pix))
}

// Variance returns the population variance of the samples.
func (f *Frame) Variance() float64 {
	if len(f.Pix) == 0 {
		return 0
	}
	m := f.Mean()
	var s float64
	for _, v := range f.Pix {
		d := float64(v) - m
		s += d * d
	}
	return s / float64(len(f.Pix))
}

// Normalize linearly rescales samples to [0,255]. A constant frame maps to
// 128.
func (f *Frame) Normalize() {
	lo, hi := f.MinMax()
	if hi == lo {
		f.Fill(128)
		return
	}
	scale := 255 / (hi - lo)
	for i, v := range f.Pix {
		f.Pix[i] = (v - lo) * scale
	}
}

// ErrSizeMismatch reports frames of differing dimensions where identical
// ones are required.
var ErrSizeMismatch = errors.New("frame: size mismatch")

// Diff returns g - f as a new frame.
func Diff(f, g *Frame) (*Frame, error) {
	if !f.SameSize(g) {
		return nil, ErrSizeMismatch
	}
	d := New(f.W, f.H)
	for i := range d.Pix {
		d.Pix[i] = g.Pix[i] - f.Pix[i]
	}
	return d, nil
}

// MaxAbsDiff returns the largest absolute per-pixel difference.
func MaxAbsDiff(f, g *Frame) (float64, error) {
	if !f.SameSize(g) {
		return 0, ErrSizeMismatch
	}
	var m float64
	for i := range f.Pix {
		d := math.Abs(float64(f.Pix[i]) - float64(g.Pix[i]))
		if d > m {
			m = d
		}
	}
	return m, nil
}

// MSE returns the mean squared error between two frames.
func MSE(f, g *Frame) (float64, error) {
	if !f.SameSize(g) {
		return 0, ErrSizeMismatch
	}
	if len(f.Pix) == 0 {
		return 0, nil
	}
	var s float64
	for i := range f.Pix {
		d := float64(f.Pix[i]) - float64(g.Pix[i])
		s += d * d
	}
	return s / float64(len(f.Pix)), nil
}

// PSNR returns the peak signal-to-noise ratio in dB for peak value 255.
// Identical frames return +Inf.
func PSNR(f, g *Frame) (float64, error) {
	mse, err := MSE(f, g)
	if err != nil {
		return 0, err
	}
	if mse == 0 {
		return math.Inf(1), nil
	}
	return 10 * math.Log10(255*255/mse), nil
}

// GrayFromRGB converts interleaved 8-bit RGB data to a luma frame using the
// BT.601 weights, mirroring the paper's grey-scaling of the webcam video
// before fusion.
func GrayFromRGB(w, h int, rgb []byte) (*Frame, error) {
	if w < 0 || h < 0 || len(rgb) != w*h*3 {
		return nil, fmt.Errorf("frame.GrayFromRGB: have %d bytes, want %d", len(rgb), w*h*3)
	}
	f := New(w, h)
	if err := GrayFromRGBInto(f, rgb); err != nil {
		return nil, err
	}
	return f, nil
}

// GrayFromRGBInto converts interleaved 8-bit RGB data into dst, the
// reusable-frame (pooled capture buffer) form of GrayFromRGB. Every sample
// of dst is written.
func GrayFromRGBInto(dst *Frame, rgb []byte) error {
	if len(rgb) != dst.W*dst.H*3 {
		return fmt.Errorf("frame.GrayFromRGBInto: have %d bytes, want %d", len(rgb), dst.W*dst.H*3)
	}
	for i := range dst.Pix {
		r := float64(rgb[3*i])
		g := float64(rgb[3*i+1])
		b := float64(rgb[3*i+2])
		dst.Pix[i] = float32(0.299*r + 0.587*g + 0.114*b)
	}
	return nil
}

// Package frame provides the image-plane substrate used throughout the
// fusion system: single-channel float32 frames, pixel access helpers,
// sub-frame extraction (the paper evaluates "four sets of smaller frames"
// cut from the 88x72 sensor frames), format conversion and PGM I/O.
//
// Samples are float32 because the paper's accelerators (NEON float32x4
// lanes and the HLS engine's 32-bit float datapath) operate on 32-bit
// floats. Pixel intensity convention is [0,255] unless stated otherwise.
package frame

import (
	"errors"
	"fmt"
	"math"
)

// Frame is a single-channel raster of float32 samples in row-major order.
// The zero value is an empty frame; use New to allocate.
type Frame struct {
	W, H int
	Pix  []float32 // len == W*H, row-major
}

// New allocates a zeroed w x h frame.
func New(w, h int) *Frame {
	if w < 0 || h < 0 {
		panic(fmt.Sprintf("frame.New: negative size %dx%d", w, h))
	}
	return &Frame{W: w, H: h, Pix: make([]float32, w*h)}
}

// FromBytes builds a frame from 8-bit samples (e.g. a camera plane).
func FromBytes(w, h int, b []byte) (*Frame, error) {
	if len(b) != w*h {
		return nil, fmt.Errorf("frame.FromBytes: have %d bytes, want %d", len(b), w*h)
	}
	f := New(w, h)
	for i, v := range b {
		f.Pix[i] = float32(v)
	}
	return f, nil
}

// At returns the sample at (x, y). It panics if out of bounds, matching
// slice semantics.
func (f *Frame) At(x, y int) float32 { return f.Pix[y*f.W+x] }

// Set stores v at (x, y).
func (f *Frame) Set(x, y int, v float32) { f.Pix[y*f.W+x] = v }

// Row returns the y-th row as a shared sub-slice.
func (f *Frame) Row(y int) []float32 { return f.Pix[y*f.W : (y+1)*f.W] }

// Clone returns a deep copy.
func (f *Frame) Clone() *Frame {
	g := New(f.W, f.H)
	copy(g.Pix, f.Pix)
	return g
}

// SameSize reports whether f and g have identical dimensions.
func (f *Frame) SameSize(g *Frame) bool { return f.W == g.W && f.H == g.H }

// Bytes quantizes the frame to 8-bit samples, clamping to [0,255] and
// rounding to nearest.
func (f *Frame) Bytes() []byte {
	b := make([]byte, len(f.Pix))
	for i, v := range f.Pix {
		b[i] = clampByte(v)
	}
	return b
}

func clampByte(v float32) byte {
	if v <= 0 {
		return 0
	}
	if v >= 255 {
		return 255
	}
	return byte(v + 0.5)
}

// SubFrame extracts the w x h region whose top-left corner is (x, y) as a
// fresh frame. This mirrors the paper's evaluation protocol, where smaller
// test frames (64x48 ... 32x24) are extracted from the full 88x72 frames.
func (f *Frame) SubFrame(x, y, w, h int) (*Frame, error) {
	if x < 0 || y < 0 || w < 0 || h < 0 || x+w > f.W || y+h > f.H {
		return nil, fmt.Errorf("frame.SubFrame: region %dx%d@(%d,%d) outside %dx%d", w, h, x, y, f.W, f.H)
	}
	g := New(w, h)
	for r := 0; r < h; r++ {
		copy(g.Row(r), f.Pix[(y+r)*f.W+x:(y+r)*f.W+x+w])
	}
	return g, nil
}

// CenterSubFrame extracts a centered w x h region.
func (f *Frame) CenterSubFrame(w, h int) (*Frame, error) {
	return f.SubFrame((f.W-w)/2, (f.H-h)/2, w, h)
}

// Fill sets every sample to v.
func (f *Frame) Fill(v float32) {
	for i := range f.Pix {
		f.Pix[i] = v
	}
}

// Apply replaces every sample s with fn(s).
func (f *Frame) Apply(fn func(float32) float32) {
	for i, v := range f.Pix {
		f.Pix[i] = fn(v)
	}
}

// MinMax returns the smallest and largest samples. An empty frame returns
// (0, 0).
func (f *Frame) MinMax() (lo, hi float32) {
	if len(f.Pix) == 0 {
		return 0, 0
	}
	lo, hi = f.Pix[0], f.Pix[0]
	for _, v := range f.Pix {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// Mean returns the average sample value (0 for an empty frame).
func (f *Frame) Mean() float64 {
	if len(f.Pix) == 0 {
		return 0
	}
	var s float64
	for _, v := range f.Pix {
		s += float64(v)
	}
	return s / float64(len(f.Pix))
}

// Variance returns the population variance of the samples.
func (f *Frame) Variance() float64 {
	if len(f.Pix) == 0 {
		return 0
	}
	m := f.Mean()
	var s float64
	for _, v := range f.Pix {
		d := float64(v) - m
		s += d * d
	}
	return s / float64(len(f.Pix))
}

// Normalize linearly rescales samples to [0,255]. A constant frame maps to
// 128.
func (f *Frame) Normalize() {
	lo, hi := f.MinMax()
	if hi == lo {
		f.Fill(128)
		return
	}
	scale := 255 / (hi - lo)
	for i, v := range f.Pix {
		f.Pix[i] = (v - lo) * scale
	}
}

// ErrSizeMismatch reports frames of differing dimensions where identical
// ones are required.
var ErrSizeMismatch = errors.New("frame: size mismatch")

// Diff returns g - f as a new frame.
func Diff(f, g *Frame) (*Frame, error) {
	if !f.SameSize(g) {
		return nil, ErrSizeMismatch
	}
	d := New(f.W, f.H)
	for i := range d.Pix {
		d.Pix[i] = g.Pix[i] - f.Pix[i]
	}
	return d, nil
}

// MaxAbsDiff returns the largest absolute per-pixel difference.
func MaxAbsDiff(f, g *Frame) (float64, error) {
	if !f.SameSize(g) {
		return 0, ErrSizeMismatch
	}
	var m float64
	for i := range f.Pix {
		d := math.Abs(float64(f.Pix[i]) - float64(g.Pix[i]))
		if d > m {
			m = d
		}
	}
	return m, nil
}

// MSE returns the mean squared error between two frames.
func MSE(f, g *Frame) (float64, error) {
	if !f.SameSize(g) {
		return 0, ErrSizeMismatch
	}
	if len(f.Pix) == 0 {
		return 0, nil
	}
	var s float64
	for i := range f.Pix {
		d := float64(f.Pix[i]) - float64(g.Pix[i])
		s += d * d
	}
	return s / float64(len(f.Pix)), nil
}

// PSNR returns the peak signal-to-noise ratio in dB for peak value 255.
// Identical frames return +Inf.
func PSNR(f, g *Frame) (float64, error) {
	mse, err := MSE(f, g)
	if err != nil {
		return 0, err
	}
	if mse == 0 {
		return math.Inf(1), nil
	}
	return 10 * math.Log10(255*255/mse), nil
}

// GrayFromRGB converts interleaved 8-bit RGB data to a luma frame using the
// BT.601 weights, mirroring the paper's grey-scaling of the webcam video
// before fusion.
func GrayFromRGB(w, h int, rgb []byte) (*Frame, error) {
	if len(rgb) != w*h*3 {
		return nil, fmt.Errorf("frame.GrayFromRGB: have %d bytes, want %d", len(rgb), w*h*3)
	}
	f := New(w, h)
	for i := 0; i < w*h; i++ {
		r := float64(rgb[3*i])
		g := float64(rgb[3*i+1])
		b := float64(rgb[3*i+2])
		f.Pix[i] = float32(0.299*r + 0.587*g + 0.114*b)
	}
	return f, nil
}

// Package axi models the PS-PL interconnect paths of the ZYNQ device as
// the paper uses them: the AXI4-Lite slave port for commands and
// coefficients, the general-purpose (GP) port for CPU-driven word
// transfers, and AXI4-Master bursts over the Accelerator Coherency Port
// (ACP) for the DMA engine built with the HLS memcpy support.
//
// The models are timing-accurate at the transaction level: they return
// simulated durations and keep per-port statistics, while the actual data
// movement is performed by the caller on ordinary Go slices.
package axi

import (
	"fmt"

	"zynqfusion/internal/sim"
)

// GPWordCycles is the PS-clock cost of one 32-bit transfer over the
// general-purpose port with the CPU moving the data itself. The paper
// measures "around 25 clock cycles" per transfer, which is why the custom
// DMA engine exists.
const GPWordCycles = 25

// Lite is an AXI4-Lite slave port: single-beat register reads/writes,
// used to load filter coefficients and issue commands to the wave engine.
type Lite struct {
	ps   sim.Clock
	regs map[uint32]uint32
	// WriteCycles and ReadCycles are the PS-visible cycles per access.
	WriteCycles int64
	ReadCycles  int64
	// Writes and Reads count accesses.
	Writes, Reads int64
}

// NewLite returns an AXI4-Lite port in the given PS clock domain with the
// default single-beat access costs.
func NewLite(ps sim.Clock) *Lite {
	return &Lite{
		ps:          ps,
		regs:        make(map[uint32]uint32),
		WriteCycles: GPWordCycles,
		ReadCycles:  GPWordCycles,
	}
}

// Write stores a register value and returns the access time.
func (l *Lite) Write(addr, val uint32) sim.Time {
	l.regs[addr] = val
	l.Writes++
	return l.ps.Cycles(l.WriteCycles)
}

// Read fetches a register value and the access time.
func (l *Lite) Read(addr uint32) (uint32, sim.Time) {
	l.Reads++
	return l.regs[addr], l.ps.Cycles(l.ReadCycles)
}

// Burst models an AXI4-Master burst path (the ACP in this design). A
// transfer of n words costs Setup beats plus n*BeatsPerWord beats of the
// bus clock.
type Burst struct {
	clk sim.Clock
	// Setup is the fixed per-transfer overhead in bus cycles: address
	// handshake, ACP snoop, and the first-beat latency.
	Setup int64
	// BeatsPerWord is the sustained per-word cost in bus cycles; > 1
	// captures snoop and DDR contention on the ACP path.
	BeatsPerWord float64
	// Words and Transfers accumulate traffic statistics.
	Words     int64
	Transfers int64
}

// NewACP returns the burst model of the Accelerator Coherency Port used by
// the hardware memcpy. The defaults are calibrated in the engine cost
// model.
func NewACP(pl sim.Clock) *Burst {
	return &Burst{clk: pl, Setup: 30, BeatsPerWord: 1.5}
}

// Transfer accounts an n-word burst and returns its duration. It panics on
// a negative count, which can only be a programming error.
func (b *Burst) Transfer(words int) sim.Time {
	if words < 0 {
		panic(fmt.Sprintf("axi.Burst: negative transfer size %d", words))
	}
	b.Words += int64(words)
	b.Transfers++
	return b.clk.CyclesF(float64(b.Setup) + b.BeatsPerWord*float64(words))
}

// GPTransfer returns the time for the CPU to move n words through the
// general-purpose port itself (no DMA), the paper's rejected baseline.
func GPTransfer(ps sim.Clock, words int) sim.Time {
	return ps.Cycles(int64(words) * GPWordCycles)
}
